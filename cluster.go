package prisma

import (
	"fmt"
	"sync"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/distrib"
	"github.com/dsrhaslab/prisma-go/internal/ipc"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// ClusterStats is the public snapshot of one node's fabric traffic.
type ClusterStats struct {
	// Node is this node's ring name; Nodes lists every ring member.
	Node  string
	Nodes []string
	// LocalReads served from this node's own stage (ring-owned samples);
	// PeerReads forwarded to the owning peer's buffer; PeerServes answered
	// here on behalf of peers.
	LocalReads int64
	PeerReads  int64
	PeerServes int64
	// PeerErrors counts failed forwards; Failovers counts reads the slow
	// store served after a peer failure (correctness preserved, economy
	// lost).
	PeerErrors int64
	Failovers  int64
	// PeerWait is cumulative time spent inside successful peer forwards;
	// MaxFailoverLatency is the worst single peer-failure read (peer
	// attempt plus slow-store fallback).
	PeerWait           time.Duration
	MaxFailoverLatency time.Duration
}

func clusterStatsFrom(s distrib.ClusterStats) ClusterStats {
	return ClusterStats{
		Node:               s.Node,
		Nodes:              s.Nodes,
		LocalReads:         s.LocalReads,
		PeerReads:          s.PeerReads,
		PeerServes:         s.PeerServes,
		PeerErrors:         s.PeerErrors,
		Failovers:          s.Failovers,
		PeerWait:           s.PeerWait,
		MaxFailoverLatency: s.MaxFailoverLatency,
	}
}

// errClusterDisabled reports cluster API use on a non-cluster instance.
var errClusterDisabled = fmt.Errorf("prisma: cluster fabric not enabled (set Options.Cluster.Enable)")

// ClusterStats snapshots the fabric's traffic counters: how reads split
// between the local buffer, peer forwards, and slow-store failovers.
func (p *Prisma) ClusterStats() (ClusterStats, error) {
	if p.fabric == nil {
		return ClusterStats{}, errClusterDisabled
	}
	return clusterStatsFrom(p.fabric.Stats()), nil
}

// socketPeer is the real-mode peer transport: a lazily dialed IPC client
// to one peer prisma-server. The first forward dials and identifies the
// connection with a "peer" hello; transport failures surface to the fabric
// (which fails over to the slow store) and the next forward redials
// through the client's own poison-and-redial machinery. A peer that is
// not up yet simply fails forwards until it is — reads still succeed via
// failover, so cluster bring-up order does not matter.
type socketPeer struct {
	sock string
	mu   sync.Mutex
	c    *ipc.Client
}

func newSocketPeer(sock string) *socketPeer { return &socketPeer{sock: sock} }

func (sp *socketPeer) client() (*ipc.Client, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.c != nil {
		return sp.c, nil
	}
	c, err := ipc.Dial(sp.sock)
	if err != nil {
		return nil, err
	}
	// The role marks this connection as node-to-node on the serving side;
	// the empty identity resolves to the default tenant.
	if _, err := c.HelloRole("", "", "peer"); err != nil {
		c.Close()
		return nil, err
	}
	sp.c = c
	return c, nil
}

// PeerRead implements distrib.PeerReader over the socket.
func (sp *socketPeer) PeerRead(name string) (storage.Data, error) {
	c, err := sp.client()
	if err != nil {
		return storage.Data{}, err
	}
	return c.PeerRead(name)
}

func (sp *socketPeer) close() {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.c != nil {
		sp.c.Close()
		sp.c = nil
	}
}

// buildFabric assembles the placement ring and fabric for Open. slow is
// the fully composed backend chain, so failover reads keep resilience,
// tiering, and caching semantics.
func buildFabric(p *Prisma, opts ClusterOptions, slow storage.Backend) error {
	nodes := make([]string, 0, len(opts.Peers)+1)
	nodes = append(nodes, opts.NodeID)
	for name := range opts.Peers {
		nodes = append(nodes, name)
	}
	ring, err := distrib.NewRing(nodes, opts.VirtualNodes)
	if err != nil {
		return fmt.Errorf("prisma: cluster ring: %w", err)
	}
	fabric, err := distrib.NewFabric(p.env, distrib.FabricConfig{
		Node:               opts.NodeID,
		Ring:               ring,
		Stage:              p.stage,
		Slow:               slow,
		Tracer:             p.tracer,
		InstallPartitioner: !opts.DisablePartitioner,
	})
	if err != nil {
		return fmt.Errorf("prisma: cluster: %w", err)
	}
	for name, sock := range opts.Peers {
		sp := newSocketPeer(sock)
		fabric.SetPeer(name, sp)
		p.peers = append(p.peers, sp)
	}
	p.fabric = fabric
	return nil
}
