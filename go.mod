module github.com/dsrhaslab/prisma-go

go 1.22
