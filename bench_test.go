package prisma

// One testing.B benchmark per paper table/figure plus microbenchmarks of
// the data-plane primitives. Figure benchmarks execute the full simulated
// training run per iteration; the wall time testing.B reports is simulator
// throughput, while the paper-relevant quantity — the simulated training
// time extrapolated to full ImageNet scale — is attached as the custom
// metric "paper-sec/run" (plus figure-specific metrics such as
// "max-threads"). prisma-bench prints the corresponding tables.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/control"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/distrib"
	"github.com/dsrhaslab/prisma-go/internal/experiments"
	"github.com/dsrhaslab/prisma-go/internal/fairness"
	"github.com/dsrhaslab/prisma-go/internal/ipc"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/recordio"
	"github.com/dsrhaslab/prisma-go/internal/sharedcache"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/train"
)

// benchCal is the calibration used by figure benchmarks: single run at
// 1/512 scale (shapes preserved, ≈0.1-1 s of wall time per iteration).
func benchCal() experiments.Calibration {
	cal := experiments.Default()
	cal.Scale = 1.0 / 512
	cal.Runs = 1
	return cal
}

// BenchmarkFig2 regenerates every cell of Figure 2: average training time
// of {LeNet, AlexNet, ResNet-50} × batch {64, 128, 256} × {TF baseline,
// TF optimized, PRISMA}.
func BenchmarkFig2(b *testing.B) {
	cal := benchCal()
	for _, model := range train.Models() {
		for _, batch := range experiments.BatchSizes() {
			for _, setup := range experiments.TFSetups() {
				name := fmt.Sprintf("%s/b%d/%s", model.Name, batch, setup)
				b.Run(name, func(b *testing.B) {
					var last time.Duration
					for i := 0; i < b.N; i++ {
						m, err := experiments.RunTF(cal, model, batch, setup, cal.Seed+int64(i))
						if err != nil {
							b.Fatal(err)
						}
						last = m.Elapsed
					}
					b.ReportMetric(cal.PaperScale(last).Seconds(), "paper-sec/run")
				})
			}
		}
	}
}

// BenchmarkFig3 regenerates Figure 3: the concurrent-reader-thread
// distribution of TF optimized vs PRISMA per model at batch 256.
func BenchmarkFig3(b *testing.B) {
	cal := benchCal()
	for _, model := range train.Models() {
		for _, setup := range []string{"tf-optimized", "prisma"} {
			name := fmt.Sprintf("%s/%s", model.Name, setup)
			b.Run(name, func(b *testing.B) {
				var maxThreads int
				for i := 0; i < b.N; i++ {
					m, err := experiments.RunTF(cal, model, 256, setup, cal.Seed+int64(i))
					if err != nil {
						b.Fatal(err)
					}
					dist := make(map[int]time.Duration, len(m.Readers))
					for k, v := range m.Readers {
						if k > 0 {
							dist[k] = v
						}
					}
					maxThreads = metrics.MaxValue(dist)
				}
				b.ReportMetric(float64(maxThreads), "max-threads")
			})
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: PyTorch with 0-16 workers vs PRISMA
// for LeNet and AlexNet at batch 256.
func BenchmarkFig4(b *testing.B) {
	cal := benchCal()
	for _, model := range []train.Model{train.LeNet(), train.AlexNet()} {
		for _, workers := range experiments.WorkerCounts() {
			for _, setup := range []string{"pytorch", "prisma"} {
				name := fmt.Sprintf("%s/w%d/%s", model.Name, workers, setup)
				b.Run(name, func(b *testing.B) {
					var last time.Duration
					for i := 0; i < b.N; i++ {
						m, err := experiments.RunTorch(cal, model, 256, workers, setup, cal.Seed+int64(i))
						if err != nil {
							b.Fatal(err)
						}
						last = m.Elapsed
					}
					b.ReportMetric(cal.PaperScale(last).Seconds(), "paper-sec/run")
				})
			}
		}
	}
}

// BenchmarkAblationStaticT contrasts auto-tuning against pinned producer
// counts (LeNet, batch 256).
func BenchmarkAblationStaticT(b *testing.B) {
	cal := benchCal()
	for _, tval := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("static-t%d", tval), func(b *testing.B) {
			var rows []experiments.AblationRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.RunAblationStaticT(cal, []int{tval}, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cal.PaperScale(rows[0].Elapsed).Seconds(), "paper-sec/run")
		})
	}
}

// BenchmarkAblationAccessCost sweeps the serialized buffer/IPC access cost
// (the §V-B synchronization bottleneck).
func BenchmarkAblationAccessCost(b *testing.B) {
	cal := benchCal()
	for _, cost := range []time.Duration{0, 55 * time.Microsecond, 200 * time.Microsecond} {
		b.Run(cost.String(), func(b *testing.B) {
			var rows []experiments.AblationRow
			for i := 0; i < b.N; i++ {
				var err error
				rows, err = experiments.RunAblationAccessCost(cal, []time.Duration{cost}, nil)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(cal.PaperScale(rows[0].Elapsed).Seconds(), "paper-sec/run")
		})
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the primitives behind the figures.

// BenchmarkBufferPutTake measures the real-mode evict-on-read buffer.
func BenchmarkBufferPutTake(b *testing.B) {
	env := conc.NewReal()
	buf := core.NewBuffer(env, 64, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("f%d", i&1023)
		if err := buf.Put(core.Item{Name: name}); err != nil {
			b.Fatal(err)
		}
		if _, ok := buf.Take(name); !ok {
			b.Fatal("take failed")
		}
	}
}

// BenchmarkBufferShardedContended measures aggregate Put+Take throughput
// of the sharded buffer under the §V-B contention shape: 8 paired
// producer/consumer couples with a serialized per-access cost. K=1 is the
// paper's single shared buffer (every access behind one lock); K=8 lets
// couples on different shards overlap their access costs.
func BenchmarkBufferShardedContended(b *testing.B) {
	const couples = 8
	accessCost := 5 * time.Microsecond
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("K%d", shards), func(b *testing.B) {
			env := conc.NewReal()
			buf := core.NewShardedBuffer(env, couples*4, accessCost, shards)
			defer buf.Close()
			per := b.N/couples + 1
			b.ResetTimer()
			var wg sync.WaitGroup
			for c := 0; c < couples; c++ {
				c := c
				wg.Add(2)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						name := fmt.Sprintf("c%d/s%d", c, i)
						if err := buf.Put(core.Item{Name: name, Size: 1}); err != nil {
							b.Error(err)
							return
						}
					}
				}()
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						name := fmt.Sprintf("c%d/s%d", c, i)
						if _, ok := buf.Take(name); !ok {
							b.Error("take failed")
							return
						}
					}
				}()
			}
			wg.Wait()
			b.ReportMetric(float64(2*couples*per)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// BenchmarkQueue measures the generic blocking queue in real mode.
func BenchmarkQueue(b *testing.B) {
	env := conc.NewReal()
	q := conc.NewQueue[int](env, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = q.Put(i)
		if _, ok := q.Get(); !ok {
			b.Fatal("get failed")
		}
	}
}

// BenchmarkSimEngine measures raw event throughput of the discrete-event
// engine (events/s is the figure benchmarks' budget currency).
func BenchmarkSimEngine(b *testing.B) {
	b.ReportAllocs()
	s := sim.New()
	n := b.N
	s.Spawn("spinner", func(p *sim.Process) {
		for i := 0; i < n; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDeviceModel measures the analytic device under concurrent
// simulated readers.
func BenchmarkDeviceModel(b *testing.B) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	n := b.N
	s.Spawn("driver", func(*sim.Process) {
		dev, err := storage.NewDevice(env, storage.P4600())
		if err != nil {
			b.Fatal(err)
		}
		wg := env.NewWaitGroup()
		wg.Add(4)
		for w := 0; w < 4; w++ {
			env.Go(fmt.Sprintf("r%d", w), func() {
				defer wg.Done()
				for i := 0; i < n/4+1; i++ {
					dev.Read(113_000)
				}
			})
		}
		wg.Wait()
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAutotunerDecide measures one control decision.
func BenchmarkAutotunerDecide(b *testing.B) {
	a := control.NewAutotuner()
	pol := control.DefaultPolicy()
	prev := core.StageStats{Now: 0, QueueLen: 100}
	cur := core.StageStats{Now: time.Second, QueueLen: 100}
	cur.Buffer.ConsumerWait = 100 * time.Millisecond
	cur.Buffer.Takes = 1000
	tun := control.Tuning{Producers: 4, BufferCapacity: 64}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tun = a.Decide(prev, cur, tun, pol)
	}
}

// BenchmarkStageReadReal measures the full interception path over real
// files (prefetched, so reads come from memory).
func BenchmarkStageReadReal(b *testing.B) {
	dir := b.TempDir()
	const files = 256
	samples := make([]dataset.Sample, files)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("f%04d", i), Size: 4096}
	}
	man := dataset.MustNew(samples)
	if err := dataset.Generate(dir, man, 1); err != nil {
		b.Fatal(err)
	}
	env := conc.NewReal()
	backend := storage.NewDirBackend(dir)
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers: 4, MaxProducers: 8, InitialBufferCapacity: 64, MaxBufferCapacity: 256,
	})
	if err != nil {
		b.Fatal(err)
	}
	stage := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	pf.Start()
	defer stage.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := samples[i%files].Name
		if err := stage.SubmitPlan([]string{name}); err != nil {
			b.Fatal(err)
		}
		if _, err := stage.Read(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIPCRoundTrip measures one UDS read round trip (the per-request
// cost the §V-B bottleneck is made of).
func BenchmarkIPCRoundTrip(b *testing.B) {
	dir := b.TempDir()
	samples := []dataset.Sample{{Name: "f", Size: 4096}}
	man := dataset.MustNew(samples)
	if err := dataset.Generate(dir, man, 1); err != nil {
		b.Fatal(err)
	}
	env := conc.NewReal()
	backend := storage.NewDirBackend(dir)
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers: 1, MaxProducers: 2, InitialBufferCapacity: 4, MaxBufferCapacity: 8,
	})
	if err != nil {
		b.Fatal(err)
	}
	stage := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	pf.Start()
	defer stage.Close()

	sock := filepath.Join(b.TempDir(), "bench.sock")
	srv, err := ipc.Serve(sock, stage)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client, err := ipc.Dial(sock)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Read("f"); err != nil { // unplanned: bypass path
			b.Fatal(err)
		}
	}
}

// BenchmarkRecordCodec measures the packed-format encode/decode pair on a
// typical ImageNet-sized payload.
func BenchmarkRecordCodec(b *testing.B) {
	payload := make([]byte, 113_000)
	for i := range payload {
		payload[i] = byte(i)
	}
	var buf bytes.Buffer
	w := recordio.NewWriter(&buf)
	if _, _, err := w.WriteRecord(payload); err != nil {
		b.Fatal(err)
	}
	frame := buf.Bytes()
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := recordio.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSharedCacheHit measures the multi-job cache's hit path.
func BenchmarkSharedCacheHit(b *testing.B) {
	env := conc.NewReal()
	man := dataset.MustNew([]dataset.Sample{{Name: "hot", Size: 4096}})
	// A real-env modeled device with zero latency: only cache overhead
	// remains measurable.
	dev, err := storage.NewDevice(env, storage.DeviceSpec{BaseLatency: 0, BytesPerSecond: 1e18, Channels: 1})
	if err != nil {
		b.Fatal(err)
	}
	cache, err := sharedcache.New(env, storage.NewModeledBackend(man, dev, nil), 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cache.ReadFile("hot"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cache.ReadFile("hot"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenBucket measures the fairness throttle's uncontended cost.
func BenchmarkTokenBucket(b *testing.B) {
	env := conc.NewReal()
	bucket, err := fairness.NewTokenBucket(env, 1e12, 1e12)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bucket.Acquire(1)
	}
}

// BenchmarkDistribCluster measures one full 8-node coordinated training
// run in the simulator (the prisma-bench distrib row).
func BenchmarkDistribCluster(b *testing.B) {
	cfg := distrib.DefaultConfig()
	cfg.Mode = distrib.Coordinated
	cfg.TrainFiles = 4000
	cfg.Epochs = 1
	var res distrib.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = distrib.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Makespan.Seconds(), "sim-makespan-sec")
}

// BenchmarkEpochShuffle measures plan generation for a 10k-file epoch.
func BenchmarkEpochShuffle(b *testing.B) {
	man, err := dataset.Synthetic("train", 10_000, 113_000, 0.5, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = man.EpochFileList(7, i)
	}
}
