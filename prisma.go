package prisma

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/control"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/distrib"
	"github.com/dsrhaslab/prisma-go/internal/httpadmin"
	"github.com/dsrhaslab/prisma-go/internal/ipc"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/sharedcache"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/tenancy"
	"github.com/dsrhaslab/prisma-go/internal/tiering"
	"github.com/dsrhaslab/prisma-go/internal/trace"
)

// Prisma is one data-plane stage plus its control plane, serving a local
// dataset directory. It is safe for concurrent use.
type Prisma struct {
	env         *conc.Real
	manifest    *dataset.Manifest
	stage       *core.Stage
	ctl         *control.Controller
	server      *ipc.Server
	recorder    *trace.Recorder
	tracer      *obs.Tracer
	tenants     *tenancy.Manager   // nil unless Options.Tenancy.Enable
	cache       *sharedcache.Cache // nil unless SharedCacheBytes > 0
	tiered      *tiering.Backend   // nil unless Options.Tiering.Enable
	fabric      *distrib.Fabric    // nil unless Options.Cluster.Enable
	peers       []*socketPeer      // fabric peer transports, closed on Close
	traceTo     string
	spanTo      string
	enablePprof bool
	closed      bool
}

// Stats is the public monitoring snapshot (the stage's control-interface
// view).
type Stats struct {
	Reads           int64
	Hits            int64
	Bypasses        int64
	Errors          int64
	PrefetchedFiles int64
	ReadErrors      int64
	QueueLen        int
	Producers       int
	BufferLen       int
	BufferCapacity  int
	BufferShards    int
	ConsumerWait    time.Duration
	ProducerWait    time.Duration

	// Attribution inputs: how the consumer wait splits by cause, plus the
	// producers' cumulative storage time and the trace-sampling knob.
	ConsumerWaitStorage    time.Duration
	ConsumerWaitBufferFull time.Duration
	StorageBusy            time.Duration
	TraceSampling          float64

	// Resilience telemetry (zero-valued when DisableResilience is set).
	Retries      int64  // backend read attempts beyond the first
	BreakerOpens int64  // times the circuit breaker tripped open
	BreakerState string // "closed", "open", or "half-open" ("" when off)
	Degraded     bool   // breaker not closed: the backend is shedding load

	// Buffer-pool telemetry (zero-valued when BufferPool.Disable is set).
	PoolEnabled     bool
	PoolGets        int64   // buffers leased since Open
	PoolHitRate     float64 // fraction of leases served by recycling
	PoolOutstanding int64   // leases currently live (leak indicator)
	PoolFreeBuffers int     // recycled buffers parked in the pool
	PoolFreeBytes   int64   // bytes parked in the pool

	// Shared-cache telemetry (zero-valued unless Tenancy.SharedCacheBytes
	// is set). Rides the stage snapshot, so remote Client.Stats sees it
	// too.
	CacheEnabled     bool
	CacheHits        int64
	CacheMisses      int64
	CacheWaits       int64 // misses collapsed onto another tenant's in-flight read
	CacheEvictions   int64
	CacheDeviceReads int64 // misses that actually hit the backend
	CacheUsedBytes   int64
	CacheResidents   int
	CacheWaitTime    time.Duration // cumulative follower time spent coalesced on a leader's fetch

	// Tiering telemetry (zero-valued unless Tiering.Enable). Unlike the
	// cache fields this rides the stage snapshot, so remote Client.Stats
	// sees it too.
	TierEnabled            bool
	TierFastHits           int64
	TierSlowReads          int64
	TierPromotions         int64
	TierEvictions          int64
	TierPrefetchPromotions int64
	TierPrefetchSkips      int64
	TierUsedBytes          int64 // physical (compressed) occupancy
	TierLogicalBytes       int64 // decoded volume those bytes represent
	TierCapacityBytes      int64
	TierResidents          int
	TierTrackedNames       int
	TierAccessDecays       int64
	TierPromoteTime        time.Duration // cumulative time spent admitting samples into the tier
	TierDecodeTime         time.Duration // cumulative time spent decompressing tier hits

	// Batched-read telemetry (zero-valued unless Batch.Enable and the
	// dataset backend supports sample batching). Rides the stage snapshot,
	// so remote Client.Stats sees it too.
	BatchEnabled   bool
	BatchReads     int64 // vectored range reads issued
	BatchedSamples int64 // samples delivered through vectored reads
	BatchFallbacks int64 // batches that fell back to per-sample reads

	// Tenancy telemetry (zero-valued unless Tenancy.Enable).
	TenantsShed  int64         // reads refused at admission with ErrOverloaded
	ThrottleWait time.Duration // cumulative time reads spent queued at the admission gate

	// Plan-lifecycle telemetry (the epoch-aware plan manager).
	EpochsSubmitted int64 // plan epochs submitted since Open
	EpochsCancelled int64 // plan epochs cancelled (including aborted submissions)
	EpochsLive      int   // epochs currently submitting or active
	PlanPending     int   // registered plan entries not yet claimed
	PlanClaims      int   // consumer claims awaiting a buffered sample
	PlanDelivered   int64 // plan entries delivered to consumers
	PlanDropped     int64 // plan entries dropped by cancellation or abort
}

// Attribution is the critical-path latency breakdown: how consumer time
// divides between waiting on storage, waiting on buffer capacity, the
// shared cache (coalesced fetches), the fast tier (promotion and decode),
// the tenant admission gate, IPC overhead, and actually consuming. The
// shares sum to 1.
type Attribution struct {
	Window          time.Duration
	Consumers       int
	StorageShare    float64
	BufferFullShare float64
	CacheShare      float64
	TierShare       float64
	ThrottleShare   float64
	IPCShare        float64
	ConsumerShare   float64
	ConsumerWait    time.Duration
	StorageWait     time.Duration
	BufferWait      time.Duration
	CacheWait       time.Duration
	TierWait        time.Duration
	ThrottleWait    time.Duration
}

func attributionFrom(a obs.Attribution) Attribution {
	return Attribution{
		Window:          a.Window,
		Consumers:       a.Consumers,
		StorageShare:    a.StorageShare,
		BufferFullShare: a.BufferFullShare,
		CacheShare:      a.CacheShare,
		TierShare:       a.TierShare,
		ThrottleShare:   a.ThrottleShare,
		IPCShare:        a.IPCShare,
		ConsumerShare:   a.ConsumerShare,
		ConsumerWait:    a.ConsumerWait,
		StorageWait:     a.StorageWait,
		BufferWait:      a.BufferWait,
		CacheWait:       a.CacheWait,
		TierWait:        a.TierWait,
		ThrottleWait:    a.ThrottleWait,
	}
}

// statsFrom maps the internal stage snapshot to the public view.
func statsFrom(s core.StageStats) Stats {
	return Stats{
		Reads:           s.Reads,
		Hits:            s.Hits,
		Bypasses:        s.Bypasses,
		Errors:          s.Errors,
		PrefetchedFiles: s.PrefetchedFiles,
		ReadErrors:      s.ReadErrors,
		QueueLen:        s.QueueLen,
		Producers:       s.TargetProducers,
		BufferLen:       s.Buffer.Len,
		BufferCapacity:  s.Buffer.Capacity,
		BufferShards:    s.Buffer.Shards,
		ConsumerWait:    s.Buffer.ConsumerWait,
		ProducerWait:    s.Buffer.ProducerWait,

		ConsumerWaitStorage:    s.Buffer.ConsumerWaitStorage,
		ConsumerWaitBufferFull: s.Buffer.ConsumerWaitBufferFull,
		StorageBusy:            s.StorageBusy,
		TraceSampling:          s.TraceSampling,

		Retries:      s.Resilience.Retries,
		BreakerOpens: s.Resilience.BreakerOpens,
		BreakerState: s.Resilience.State,
		Degraded:     s.Resilience.Degraded,

		PoolEnabled:     s.PoolEnabled,
		PoolGets:        s.Pool.Gets,
		PoolHitRate:     s.Pool.HitRate,
		PoolOutstanding: s.Pool.Outstanding,
		PoolFreeBuffers: s.Pool.FreeBuffers,
		PoolFreeBytes:   s.Pool.FreeBytes,

		TierEnabled:            s.TieringEnabled,
		TierFastHits:           s.Tiering.FastHits,
		TierSlowReads:          s.Tiering.SlowReads,
		TierPromotions:         s.Tiering.Promotions,
		TierEvictions:          s.Tiering.Evictions,
		TierPrefetchPromotions: s.Tiering.PrefetchPromotions,
		TierPrefetchSkips:      s.Tiering.PrefetchSkips,
		TierUsedBytes:          s.Tiering.FastUsed,
		TierLogicalBytes:       s.Tiering.FastLogical,
		TierCapacityBytes:      s.Tiering.Capacity,
		TierResidents:          s.Tiering.Residents,
		TierTrackedNames:       s.Tiering.TrackedNames,
		TierAccessDecays:       s.Tiering.AccessDecays,
		TierPromoteTime:        s.Tiering.PromoteTime,
		TierDecodeTime:         s.Tiering.DecodeTime,

		CacheEnabled:     s.CacheEnabled,
		CacheHits:        s.Cache.Hits,
		CacheMisses:      s.Cache.Misses,
		CacheWaits:       s.Cache.Waits,
		CacheEvictions:   s.Cache.Evictions,
		CacheDeviceReads: s.Cache.DeviceReads,
		CacheUsedBytes:   s.Cache.UsedBytes,
		CacheResidents:   s.Cache.Residents,
		CacheWaitTime:    s.Cache.WaitTime,

		BatchEnabled:   s.BatchEnabled,
		BatchReads:     s.BatchReads,
		BatchedSamples: s.BatchedSamples,
		BatchFallbacks: s.BatchFallbacks,

		TenantsShed:  s.Shed,
		ThrottleWait: s.ThrottleWait,

		EpochsSubmitted: s.Plan.EpochsSubmitted,
		EpochsCancelled: s.Plan.EpochsCancelled,
		EpochsLive:      s.Plan.EpochsLive,
		PlanPending:     s.Plan.EntriesPending,
		PlanClaims:      s.Plan.ClaimsInFlight,
		PlanDelivered:   s.Plan.Delivered,
		PlanDropped:     s.Plan.Dropped,
	}
}

// batchSamples resolves the coalescer's sample cap from opts (0 when
// batching is off, so the prefetcher stays on the per-sample path).
func batchSamples(opts Options) int {
	if !opts.Batch.Enable {
		return 0
	}
	return opts.Batch.MaxSamples
}

// Open builds a PRISMA instance over opts.Dir. The directory is scanned
// once to build the dataset manifest (file names are slash-separated paths
// relative to Dir).
func Open(opts Options) (*Prisma, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	manifest, err := dataset.FromDir(opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("prisma: scanning %s: %w", opts.Dir, err)
	}
	if manifest.Len() == 0 {
		return nil, fmt.Errorf("prisma: no files under %s", opts.Dir)
	}
	env := conc.NewReal()
	var pool *mempool.Pool
	if !opts.BufferPool.Disable {
		pool = mempool.New(mempool.Config{
			MinSize:     opts.BufferPool.MinSize,
			MaxSize:     opts.BufferPool.MaxSize,
			PerClassCap: opts.BufferPool.PerClassCap,
		})
	}
	var backend storage.Backend = storage.NewDirBackend(opts.Dir)
	var recorder *trace.Recorder
	if opts.TraceFile != "" {
		recorder = trace.NewRecorder(env, backend)
		backend = recorder
	}
	var cache *sharedcache.Cache
	if opts.Tenancy.Enable && opts.Tenancy.SharedCacheBytes > 0 {
		// The cache sits above the recorder (so the I/O trace keeps seeing
		// only actual device reads) and below the resilient wrapper (so a
		// degraded backend still serves cached samples while the breaker
		// sheds misses).
		sc, err := sharedcache.New(env, backend, opts.Tenancy.SharedCacheBytes)
		if err != nil {
			return nil, fmt.Errorf("prisma: %w", err)
		}
		backend = sc
		cache = sc
	}
	var tiered *tiering.Backend
	if opts.Tiering.Enable {
		// The fast tier sits above the shared cache (a cache hit is
		// already memory-resident, so tiering only sees what the cache
		// missed) and below the resilient wrapper (so retried reads pass
		// back through the tier and hits keep flowing while the breaker
		// sheds slow-tier misses).
		tb, err := tiering.NewBackend(env, tiering.Config{
			FastCapacity: opts.Tiering.CapacityBytes,
			PromoteAfter: opts.Tiering.PromoteAfter,
			MaxTracked:   opts.Tiering.MaxTrackedNames,
			Compress:     opts.Tiering.Compress,
		}, backend, nil)
		if err != nil {
			return nil, fmt.Errorf("prisma: %w", err)
		}
		backend = tb
		tiered = tb
	}
	if !opts.DisableResilience {
		rcfg := storage.DefaultResilienceConfig()
		rcfg.MaxAttempts = opts.ReadRetries
		rcfg.BaseBackoff = opts.RetryBackoff
		rcfg.ReadDeadline = opts.ReadDeadline
		rcfg.BreakerCooldown = opts.BreakerCooldown
		if opts.BreakerThreshold < 0 {
			rcfg.BreakerThreshold = 0 // retries without a breaker
		} else {
			rcfg.BreakerThreshold = opts.BreakerThreshold
		}
		// Resilient goes outermost so the stage sees it as a
		// ResilienceReporter and retried reads re-enter the trace.
		rb, err := storage.NewResilientBackend(env, backend, rcfg)
		if err != nil {
			return nil, fmt.Errorf("prisma: %w", err)
		}
		backend = rb
	}
	if pool != nil {
		// Attach at the top of the wrapper chain; each wrapper delegates
		// down to the DirBackend that allocates payloads.
		if pa, ok := backend.(storage.PoolAttacher); ok {
			pa.SetBufferPool(pool)
		}
	}
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers:      opts.InitialProducers,
		MaxProducers:          opts.MaxProducers,
		InitialBufferCapacity: opts.InitialBuffer,
		MaxBufferCapacity:     opts.MaxBuffer,
		BufferShards:          opts.BufferShards,
		TakeDeadline:          opts.ConsumerDeadline,
		BatchSamples:          batchSamples(opts),
		BatchBytes:            opts.Batch.MaxBytes,
	})
	if err != nil {
		return nil, fmt.Errorf("prisma: %w", err)
	}
	stage := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	// The tracer exists even at sampling 0 so the runtime knob
	// (SetTraceSampling, prisma-ctl set-sampling, /tuning?sampling=) can
	// turn tracing on without a restart. It must attach before Start so
	// producers never race a nil-to-set transition.
	tracer := obs.NewTracer(env, obs.TracerOptions{Sampling: opts.TraceSampling})
	stage.SetTracer(tracer)
	stage.SetBufferPool(pool)
	if cache != nil {
		sc := cache
		sc.SetTracer(tracer)
		stage.SetCacheSource(func() core.CacheStats {
			cs := sc.Stats()
			return core.CacheStats{
				Hits:        cs.Hits,
				Misses:      cs.Misses,
				Waits:       cs.Waits,
				Evictions:   cs.Evictions,
				UsedBytes:   cs.UsedBytes,
				Residents:   cs.Residents,
				DeviceReads: cs.DeviceReads,
				WaitTime:    cs.WaitTime,
			}
		})
	}
	if tiered != nil {
		tb := tiered
		tb.SetTracer(tracer)
		stage.SetTieringSource(func() core.TieringStats {
			ts := tb.Stats()
			return core.TieringStats{
				FastHits:           ts.FastHits,
				SlowReads:          ts.SlowReads,
				Promotions:         ts.Promotions,
				Evictions:          ts.Evictions,
				PrefetchPromotions: ts.PrefetchPromotions,
				PrefetchSkips:      ts.PrefetchSkips,
				FastUsed:           ts.FastUsed,
				FastLogical:        ts.FastLogical,
				Capacity:           ts.Capacity,
				Residents:          ts.Residents,
				TrackedNames:       ts.TrackedNames,
				AccessDecays:       ts.AccessDecays,
				PromoteTime:        ts.PromoteTime,
				DecodeTime:         ts.DecodeTime,
			}
		})
		if opts.Tiering.PrefetchNextEpoch {
			// Hook the stage, not Prisma.SubmitEpoch: the IPC server
			// submits epochs straight to the stage, and remote data
			// loaders (the multi-process serving path) must warm the
			// tier too.
			stage.SetEpochPlanHook(tb.PrefetchPlan)
		}
	}
	pf.Start()

	p := &Prisma{
		env:         env,
		manifest:    manifest,
		stage:       stage,
		recorder:    recorder,
		tracer:      tracer,
		cache:       cache,
		tiered:      tiered,
		traceTo:     opts.TraceFile,
		spanTo:      opts.SpanFile,
		enablePprof: opts.EnablePprof,
	}
	if opts.Cluster.Enable {
		// The fabric sits in front of the stage: reads of ring-owned
		// samples stay local, the rest forward to the owner's buffer (or
		// fail over to the composed backend chain). With the partitioner
		// installed, submitted epoch plans are narrowed to this node's
		// owned subsequence before prefetching — clairvoyant placement.
		if err := buildFabric(p, opts.Cluster, backend); err != nil {
			stage.Close()
			return nil, err
		}
	}
	// The controller is built before the tenancy manager so SLO actions can
	// land in its decision audit log from the manager's first tick onward.
	if !opts.DisableAutoTune {
		pol := control.DefaultPolicy()
		pol.MinProducers = 1
		pol.MaxProducers = opts.MaxProducers
		pol.MinBuffer = 1
		pol.MaxBuffer = opts.MaxBuffer
		ctl := control.NewController(env, opts.ControlInterval)
		initial := control.Tuning{Producers: opts.InitialProducers, BufferCapacity: opts.InitialBuffer}
		if err := ctl.Attach("stage", stage, control.NewAutotuner(), pol, initial); err != nil {
			stage.Close()
			return nil, fmt.Errorf("prisma: %w", err)
		}
		ctl.Start()
		p.ctl = ctl
	}
	if opts.Tenancy.Enable {
		mqd := opts.Tenancy.MaxQueueDepth
		if mqd < 0 {
			mqd = 0 // -1 in the public options disables the check
		}
		// The pooled-byte pressure probe estimates the outstanding buffer
		// footprint as live leases times the mean sample size (the pool
		// tracks lease counts, not bytes).
		avgSample := int64(1)
		if n := manifest.Len(); n > 0 {
			if avgSample = manifest.TotalBytes() / int64(n); avgSample < 1 {
				avgSample = 1
			}
		}
		cfg := tenancy.Config{
			Capacity:       opts.Tenancy.Capacity,
			Burst:          opts.Tenancy.Burst,
			TickInterval:   opts.Tenancy.TickInterval,
			DegradedFactor: opts.Tenancy.DegradedFactor,
			MaxQueueDepth:  mqd,
			MaxPooledBytes: opts.Tenancy.MaxPooledBytes,
			MaxRetryAfter:  opts.Tenancy.MaxRetryAfter,
			SLOBoostFactor: opts.Tenancy.SLOBoostFactor,
			Load: func() tenancy.Load {
				s := stage.Stats()
				var pooled int64
				if pool != nil {
					pooled = pool.Outstanding() * avgSample
				}
				return tenancy.Load{
					QueueDepth:  s.QueueLen,
					PooledBytes: pooled,
					Degraded:    s.Resilience.Degraded,
				}
			},
		}
		if p.ctl != nil {
			// Every SLO actuation (breach boost, recovery restore, warn)
			// lands in the stage's decision audit log next to the
			// autotuner's own decisions.
			ctl := p.ctl
			cfg.OnSLOAction = func(act tenancy.SLOAction) {
				ctl.RecordEvent("stage", act.Rule+":"+act.Tenant)
			}
		}
		mgr, err := tenancy.New(env, cfg)
		if err != nil {
			if p.ctl != nil {
				p.ctl.Stop()
			}
			stage.Close()
			return nil, fmt.Errorf("prisma: %w", err)
		}
		for _, ts := range opts.Tenancy.Tenants {
			if err := mgr.Register(specFrom(ts)); err != nil {
				if p.ctl != nil {
					p.ctl.Stop()
				}
				stage.Close()
				return nil, fmt.Errorf("prisma: %w", err)
			}
		}
		stage.SetTenantGate(mgr)
		mgr.Start()
		p.tenants = mgr
	}
	return p, nil
}

// specFrom maps the public tenant declaration to the internal spec.
func specFrom(ts TenantSpec) tenancy.Spec {
	spec := tenancy.Spec{
		Name:           ts.Name,
		Weight:         ts.Weight,
		BytesPerSecond: ts.BytesPerSecond,
		Secret:         ts.Secret,
	}
	if ts.SLO != nil {
		spec.SLO = &obs.SLOConfig{
			Quantile:   ts.SLO.Quantile,
			Threshold:  ts.SLO.Threshold,
			ShedBudget: ts.SLO.ShedBudget,
			Window:     ts.SLO.Window,
			WarnBurn:   ts.SLO.WarnBurn,
			BreachBurn: ts.SLO.BreachBurn,
		}
	}
	return spec
}

// Read serves one file through the data plane: planned files come from the
// prefetch buffer (each is served exactly once per plan entry and evicted);
// unplanned files fall through to the filesystem. The returned slice is the
// caller's to keep: under pooling the pooled buffer is copied out and
// returned to the pool here. Allocation-sensitive consumers use ReadSample
// instead, which hands over the pooled buffer itself.
func (p *Prisma) Read(name string) ([]byte, error) {
	data, err := p.readData(name)
	if err != nil {
		return nil, err
	}
	if data.Ref == nil {
		return data.Bytes, nil
	}
	out := make([]byte, len(data.Bytes))
	copy(out, data.Bytes)
	data.Release()
	return out, nil
}

// Sample is one zero-copy read result: Bytes aliases a pooled buffer the
// caller must Release when done (after which the bytes may be reused for
// another sample). A Sample from a pool-disabled instance owns a plain
// allocation and Release is a no-op.
type Sample struct {
	Name string
	Size int64
	data storage.Data
}

// Bytes returns the sample payload; valid until Release.
func (s *Sample) Bytes() []byte { return s.data.Bytes }

// Release returns the payload buffer to the pool. Idempotent.
func (s *Sample) Release() { s.data.Release() }

// ReadSample is Read without the defensive copy: the pooled read buffer is
// handed to the caller, who must Release it after consuming the bytes —
// the zero-allocation fast path for in-process consumers.
func (p *Prisma) ReadSample(name string) (*Sample, error) {
	data, err := p.readData(name)
	if err != nil {
		return nil, err
	}
	return &Sample{Name: data.Name, Size: data.Size, data: data}, nil
}

// readData is the untagged read path shared by Read and ReadSample: with
// the cluster fabric enabled it routes by ring ownership (local buffer,
// peer forward, or slow-store failover); otherwise it goes straight to the
// stage. The empty tenant resolves to the default tenant under tenancy
// (the in-process analogue of an untagged connection) and is a free no-op
// without it. Tenant-attributed reads (ReadAs) stay local: admission
// control is per node, and forwarding them would double-count the tenant
// on the owner.
func (p *Prisma) readData(name string) (storage.Data, error) {
	if p.fabric != nil {
		return p.fabric.Read(name)
	}
	return p.stage.ReadTenant("", name)
}

// SubmitPlan shares one epoch's shuffled filename list with the data plane;
// producers read files in exactly this order, ahead of consumption.
func (p *Prisma) SubmitPlan(names []string) error {
	_, _, err := p.SubmitEpoch(names)
	return err
}

// EpochID identifies one submitted plan epoch (ids start at 1).
type EpochID uint64

// Plan-lifecycle errors, matchable with errors.Is.
var (
	// ErrEpochCancelled is returned to readers blocked on a sample whose
	// plan epoch was cancelled while they waited.
	ErrEpochCancelled = core.ErrEpochCancelled
	// ErrConsumerDeadline is returned when a read waited longer than
	// Options.ConsumerDeadline for its planned sample.
	ErrConsumerDeadline = core.ErrTakeDeadline
	// ErrUnknownEpoch is returned by CancelEpoch for an id that was never
	// issued or already aged out of the retained history.
	ErrUnknownEpoch = core.ErrUnknownEpoch
)

// EpochStatus is the monitoring view of one plan epoch.
type EpochStatus struct {
	ID        EpochID
	State     string // "submitting", "active", "cancelled", or "done"
	Submitted time.Duration
	Total     int   // plan length
	Enqueued  int   // entries that reached the prefetch queue
	Claimed   int64 // claims taken by consumers (cumulative)
	Delivered int64
	Dropped   int64 // entries dropped by cancellation or abort
}

func epochsFrom(eps []core.EpochStatus) []EpochStatus {
	out := make([]EpochStatus, len(eps))
	for i, e := range eps {
		out[i] = EpochStatus{
			ID:        EpochID(e.ID),
			State:     e.State,
			Submitted: e.Submitted,
			Total:     e.Total,
			Enqueued:  e.Enqueued,
			Claimed:   e.Claimed,
			Delivered: e.Delivered,
			Dropped:   e.Dropped,
		}
	}
	return out
}

// SubmitEpoch is SubmitPlan returning the issued epoch id and how many
// entries were enqueued. Registration is all-or-nothing: on error no entry
// of this plan is claimable and its residue has been dropped, so a reader
// can never block on a sample from a failed submission.
func (p *Prisma) SubmitEpoch(names []string) (EpochID, int, error) {
	for _, n := range names {
		if _, ok := p.manifest.Lookup(n); !ok {
			return 0, 0, fmt.Errorf("prisma: plan references unknown file %q", n)
		}
	}
	// The stage's epoch-plan hook (SetEpochPlanHook, wired in Open when
	// Tiering.PrefetchNextEpoch is set) hands the plan to the tier
	// warmer — for this call and for epochs submitted over IPC alike.
	res, err := p.stage.SubmitEpoch(names)
	return EpochID(res.Epoch), res.Enqueued, err
}

// CancelEpoch cancels a submitted plan epoch: its queued entries are
// dropped, buffered samples are released back to the pool, and readers
// blocked on its samples wake with ErrEpochCancelled. Idempotent on
// already-finished epochs; reports how many plan entries were removed.
func (p *Prisma) CancelEpoch(id EpochID) (int, error) {
	return p.stage.CancelEpoch(core.EpochID(id))
}

// Epochs lists the retained plan epochs' statuses in submission order.
func (p *Prisma) Epochs() []EpochStatus { return epochsFrom(p.stage.Epochs()) }

// SetConsumerDeadline adjusts Options.ConsumerDeadline at runtime
// (0 = wait forever).
func (p *Prisma) SetConsumerDeadline(d time.Duration) { p.stage.SetTakeDeadline(d) }

// ShuffledFileList produces the deterministic per-epoch shuffled filename
// list — the artifact the paper's job-script module shares between the
// framework and PRISMA (§IV). Calling it with the same (seed, epoch) in
// the training loop and in SubmitPlan keeps both sides in the same order
// without changing how the framework shuffles.
func (p *Prisma) ShuffledFileList(seed int64, epoch int) []string {
	return p.manifest.EpochFileList(seed, epoch)
}

// Files reports the number of files in the scanned dataset.
func (p *Prisma) Files() int { return p.manifest.Len() }

// TotalBytes reports the scanned dataset volume.
func (p *Prisma) TotalBytes() int64 { return p.manifest.TotalBytes() }

// Stats snapshots the data plane. Shared-cache counters ride the stage
// snapshot (SetCacheSource), so local and remote views agree.
func (p *Prisma) Stats() Stats {
	return statsFrom(p.stage.Stats())
}

// SetProducers pins the producer count t (disable AutoTune to keep it).
func (p *Prisma) SetProducers(n int) { p.stage.SetProducers(n) }

// SetBufferCapacity pins the buffer capacity N.
func (p *Prisma) SetBufferCapacity(n int) { p.stage.SetBufferCapacity(n) }

// SetBufferShards adjusts the buffer shard count K.
func (p *Prisma) SetBufferShards(k int) { p.stage.SetBufferShards(k) }

// SetTraceSampling adjusts the lifecycle-trace head-sampling probability
// at runtime (clamped to [0, 1]).
func (p *Prisma) SetTraceSampling(prob float64) { p.stage.SetTraceSampling(prob) }

// Attribution reports the critical-path latency breakdown accumulated
// since Open: the share of consumer time lost to storage waits, buffer
// capacity, and IPC, with the remainder meaning the data plane kept up.
// consumers is the number of consumer threads/processes (minimum 1).
func (p *Prisma) Attribution(consumers int) Attribution {
	s := p.stage.Stats()
	return attributionFrom(obs.Attribute(obs.AttributionInput{
		Window:       s.Now,
		Consumers:    consumers,
		ConsumerWait: s.Buffer.ConsumerWait,
		StorageWait:  s.Buffer.ConsumerWaitStorage,
		BufferWait:   s.Buffer.ConsumerWaitBufferFull,
		CacheWait:    s.Cache.WaitTime,
		TierWait:     s.Tiering.PromoteTime + s.Tiering.DecodeTime,
		ThrottleWait: s.ThrottleWait,
		StorageBusy:  s.StorageBusy,
		ProducerPark: s.Buffer.ProducerWait,
	}))
}

// DumpSpans writes the lifecycle spans collected so far as JSON lines
// (the prisma-trace attribute input format).
func (p *Prisma) DumpSpans(w io.Writer) error { return p.tracer.Export(w) }

// ErrOverloaded matches (with errors.Is) the typed, retryable rejection a
// read receives when the server sheds it at admission: the read provably
// did not execute, and the error unwraps to a retry-after hint the client
// backoff honors. Returned only from tenancy-enabled instances.
var ErrOverloaded = tenancy.ErrOverloaded

// TenantStats is one tenant's QoS snapshot.
type TenantStats struct {
	Name         string
	Weight       float64
	GrantedRate  float64 // reads/s granted by the max-min arbiter
	MeasuredRate float64 // demand estimate from the last tick
	Admitted     int64
	Shed         int64
	BytesRead    int64
	Errors       int64
	ByteBudget   float64 // bytes/s, 0 = unmetered
	InDebt       bool

	// SLO fields, meaningful only when HasSLO is set.
	HasSLO             bool
	SLOState           string  // "ok", "warn", or "breach"
	SLOBurnShort       float64 // error-budget burn rate over the short window
	SLOBurnLong        float64 // error-budget burn rate over the long window
	SLOBudgetRemaining float64 // fraction of the long-window budget left
	SLOBoosted         bool    // breach weight boost currently in force
}

// TenantsSnapshot is the control-plane view of every tenant, sorted by
// name.
type TenantsSnapshot struct {
	Overloaded bool
	Capacity   float64
	Tenants    []TenantStats
}

func tenantsFrom(s tenancy.Snapshot) TenantsSnapshot {
	out := TenantsSnapshot{Overloaded: s.Overloaded, Capacity: s.Capacity}
	for _, ts := range s.Tenants {
		pub := TenantStats{
			Name:         ts.Name,
			Weight:       ts.Weight,
			GrantedRate:  ts.GrantedRate,
			MeasuredRate: ts.MeasuredRate,
			Admitted:     ts.Admitted,
			Shed:         ts.Shed,
			BytesRead:    ts.BytesRead,
			Errors:       ts.Errors,
			ByteBudget:   ts.ByteBudget,
			InDebt:       ts.InDebt,
		}
		if ts.SLO != nil {
			pub.HasSLO = true
			pub.SLOState = ts.SLO.State
			pub.SLOBurnShort = ts.SLO.BurnShort
			pub.SLOBurnLong = ts.SLO.BurnLong
			pub.SLOBudgetRemaining = ts.SLO.BudgetRemaining
			pub.SLOBoosted = ts.SLOBoosted
		}
		out.Tenants = append(out.Tenants, pub)
	}
	return out
}

// errTenancyDisabled reports tenancy API use on a non-tenant instance.
var errTenancyDisabled = errors.New("prisma: tenancy not enabled (set Options.Tenancy.Enable)")

// RegisterTenant adds a tenant at runtime.
func (p *Prisma) RegisterTenant(spec TenantSpec) error {
	if p.tenants == nil {
		return errTenancyDisabled
	}
	if err := spec.SLO.validate(spec.Name); err != nil {
		return err
	}
	return p.tenants.Register(specFrom(spec))
}

// SetTenantSLO attaches (or replaces) a tenant's latency objective at
// runtime. Burn-rate tracking restarts from an empty window.
func (p *Prisma) SetTenantSLO(name string, slo SLOOptions) error {
	if p.tenants == nil {
		return errTenancyDisabled
	}
	if err := (&slo).validate(name); err != nil {
		return err
	}
	return p.tenants.SetSLO(name, obs.SLOConfig{
		Quantile:   slo.Quantile,
		Threshold:  slo.Threshold,
		ShedBudget: slo.ShedBudget,
		Window:     slo.Window,
		WarnBurn:   slo.WarnBurn,
		BreachBurn: slo.BreachBurn,
	})
}

// ClearTenantSLO detaches a tenant's latency objective, restoring the
// tenant's base arbitration weight if a breach boost was in force.
func (p *Prisma) ClearTenantSLO(name string) error {
	if p.tenants == nil {
		return errTenancyDisabled
	}
	p.tenants.ClearSLO(name)
	return nil
}

// UnregisterTenant removes a tenant; its share flows back to the rest at
// the next arbitration tick. The default tenant cannot be removed.
func (p *Prisma) UnregisterTenant(name string) error {
	if p.tenants == nil {
		return errTenancyDisabled
	}
	return p.tenants.Unregister(name)
}

// SetTenant adjusts a tenant's arbitration weight and/or byte budget at
// runtime (zero leaves the respective knob unchanged).
func (p *Prisma) SetTenant(name string, weight, bytesPerSecond float64) error {
	if p.tenants == nil {
		return errTenancyDisabled
	}
	return p.tenants.SetTenant(name, weight, bytesPerSecond)
}

// Tenants snapshots per-tenant QoS statistics.
func (p *Prisma) Tenants() (TenantsSnapshot, error) {
	if p.tenants == nil {
		return TenantsSnapshot{}, errTenancyDisabled
	}
	return tenantsFrom(p.tenants.Stats()), nil
}

// ReadAs is Read attributed to (and admission-controlled for) the named
// tenant — the in-process equivalent of a socket client that said Hello.
// Under overload an over-budget tenant gets ErrOverloaded instead of
// queueing.
func (p *Prisma) ReadAs(tenant, name string) ([]byte, error) {
	data, err := p.stage.ReadTenant(tenant, name)
	if err != nil {
		return nil, err
	}
	if data.Ref == nil {
		return data.Bytes, nil
	}
	out := make([]byte, len(data.Bytes))
	copy(out, data.Bytes)
	data.Release()
	return out, nil
}

// ReadSampleAs is ReadSample attributed to the named tenant.
func (p *Prisma) ReadSampleAs(tenant, name string) (*Sample, error) {
	data, err := p.stage.ReadTenant(tenant, name)
	if err != nil {
		return nil, err
	}
	return &Sample{Name: data.Name, Size: data.Size, data: data}, nil
}

// adminConfig assembles the httpadmin sources this instance can serve —
// shared by AdminHandler and the diagnostic-bundle builder so both
// surfaces expose the same view.
func (p *Prisma) adminConfig() httpadmin.Config {
	cfg := httpadmin.Config{EnablePprof: p.enablePprof, Tracer: p.tracer}
	if p.ctl != nil {
		cfg.Decisions = func() []control.DecisionRecord { return p.ctl.Decisions("stage") }
	}
	if p.tenants != nil {
		mgr := p.tenants
		cfg.Tenants = func() tenancy.Snapshot { return mgr.Stats() }
		cfg.SetTenant = mgr.SetTenant
	}
	if p.fabric != nil {
		fab := p.fabric
		cfg.Cluster = func() distrib.ClusterStats { return fab.Stats() }
	}
	return cfg
}

// Bundle captures the one-shot diagnostic bundle — stats (cache, tiering,
// pool, and plan counters included), latency attribution, per-tenant QoS
// and SLO states, plan epochs, the decision audit log, and recent spans —
// as one JSON document. The same document backs GET /debug/bundle and
// prisma-ctl bundle.
func (p *Prisma) Bundle() ([]byte, error) {
	return json.Marshal(httpadmin.BuildBundle(p.stage, p.adminConfig(), 0))
}

// AdminHandler returns an http.Handler exposing the stage's control
// interface for dashboards and scrapers: GET /healthz, GET /stats (JSON),
// GET /metrics (Prometheus text format), GET /attribution, GET /decisions,
// GET /tenants (and POST /tenants?name=X&weight=W&bytes=B on tenancy-
// enabled instances), GET /debug/bundle (one-shot diagnostic capture),
// POST /tuning?producers=N&buffer=M&shards=K&sampling=P,
// and (when Options.EnablePprof is set) /debug/pprof/.
func (p *Prisma) AdminHandler() http.Handler {
	return httpadmin.NewWithConfig(p.stage, p.adminConfig())
}

// ServeUnix exposes this stage to other processes over a UNIX domain
// socket — the integration path for multi-process data loaders (§IV's
// PyTorch client/server). Connect with Dial from this package.
func (p *Prisma) ServeUnix(socketPath string) error {
	if p.server != nil {
		return errors.New("prisma: already serving")
	}
	srv, err := ipc.Serve(socketPath, p.stage)
	if err != nil {
		return err
	}
	if p.tenants != nil {
		srv.SetTenantManager(p.tenants)
	}
	if p.fabric != nil {
		// Forwarded reads (OpPeerRead) are served by the fabric's owner-side
		// routine, joining the requester's trace and feeding the peer-serve
		// counters.
		fab := p.fabric
		srv.SetPeerReadHandler(func(name string, ctx obs.Ctx) (storage.Data, error) {
			return fab.ServePeerCtx(name, ctx)
		})
		// Client reads (OpRead) get the same ownership routing as in-process
		// Prisma.Read: owned samples from the local buffer, non-owned from
		// the owner's buffer over the peer fabric, slow-store failover when
		// a peer is down. Named tenants stay on the local admission path —
		// QoS control is per node, mirroring ReadAs (see readData).
		srv.SetReadRouter(func(tenant, name string, ctx obs.Ctx) (storage.Data, error) {
			if tenant == "" || tenant == tenancy.DefaultTenant {
				return fab.ReadCtx(name, ctx)
			}
			return p.stage.ReadTenantCtx(tenant, name, ctx)
		})
	}
	if p.ctl != nil {
		ctl := p.ctl
		srv.SetDecisionSource(func() ([]byte, error) {
			recs := ctl.Decisions("stage")
			if recs == nil {
				recs = []control.DecisionRecord{}
			}
			return json.Marshal(recs)
		})
	}
	srv.SetBundleSource(p.Bundle)
	p.server = srv
	return nil
}

// Close stops the control loop, the socket server (if any), and the data
// plane. Blocked readers are released with an error.
func (p *Prisma) Close() error {
	if p.closed {
		return nil
	}
	p.closed = true
	if p.ctl != nil {
		p.ctl.Stop()
	}
	if p.tenants != nil {
		p.tenants.Stop()
	}
	var err error
	if p.server != nil {
		err = p.server.Close()
	}
	for _, sp := range p.peers {
		sp.close()
	}
	p.stage.Close()
	if p.tiered != nil {
		p.tiered.Close()
	}
	if p.cache != nil {
		p.cache.Close()
	}
	if p.recorder != nil {
		if werr := p.dumpTrace(); err == nil {
			err = werr
		}
	}
	if p.spanTo != "" {
		if werr := p.dumpSpans(); err == nil {
			err = werr
		}
	}
	return err
}

// dumpSpans writes the collected lifecycle spans to Options.SpanFile.
func (p *Prisma) dumpSpans() error {
	f, err := os.Create(p.spanTo)
	if err != nil {
		return fmt.Errorf("prisma: spans: %w", err)
	}
	if err := p.tracer.Export(f); err != nil {
		f.Close()
		return fmt.Errorf("prisma: spans: %w", err)
	}
	return f.Close()
}

// dumpTrace writes the recorded backend I/O trace to Options.TraceFile.
func (p *Prisma) dumpTrace() error {
	f, err := os.Create(p.traceTo)
	if err != nil {
		return fmt.Errorf("prisma: trace: %w", err)
	}
	if err := p.recorder.Trace().Write(f); err != nil {
		f.Close()
		return fmt.Errorf("prisma: trace: %w", err)
	}
	return f.Close()
}

// Client is a per-worker-process connection to a PRISMA socket server.
type Client struct {
	c    *ipc.Client
	pool *mempool.Pool // non-nil after EnablePooledReads
}

// Dial connects to a PRISMA server started with ServeUnix (or the
// prisma-server command).
func Dial(socketPath string) (*Client, error) {
	return DialWithOptions(socketPath, DialOptions{})
}

// DialOptions tunes a client connection.
type DialOptions struct {
	// Tenant, when non-empty, is the identity this connection assumes at
	// dial time (equivalent to calling Hello right after Dial). The
	// identity survives transparent reconnects.
	Tenant string
	// Secret authenticates Tenant when the server requires one.
	Secret string
	// OverloadRetries is how many times a shed read is waited out (per
	// the server's retry-after hint) and resent before ErrOverloaded
	// surfaces to the caller (default 0 = surface immediately).
	OverloadRetries int
}

// DialWithOptions is Dial with explicit connection options.
func DialWithOptions(socketPath string, opts DialOptions) (*Client, error) {
	c, err := ipc.DialWithConfig(socketPath, ipc.DialConfig{OverloadRetries: opts.OverloadRetries})
	if err != nil {
		return nil, err
	}
	if opts.Tenant != "" {
		if _, err := c.Hello(opts.Tenant, opts.Secret); err != nil {
			c.Close()
			return nil, err
		}
	}
	return &Client{c: c}, nil
}

// EnablePooledReads gives the client its own buffer pool: ReadSample then
// receives payloads straight off the socket into recycled buffers, and
// Read copies out of them. opts zero value selects the pool defaults.
func (c *Client) EnablePooledReads(opts BufferPoolOptions) {
	if opts.Disable {
		c.c.SetBufferPool(nil)
		c.pool = nil
		return
	}
	c.pool = mempool.New(mempool.Config{
		MinSize:     opts.MinSize,
		MaxSize:     opts.MaxSize,
		PerClassCap: opts.PerClassCap,
	})
	c.c.SetBufferPool(c.pool)
}

// Read requests one file through the remote stage. The returned slice is
// the caller's to keep (pooled payloads are copied out and released).
func (c *Client) Read(name string) ([]byte, error) {
	data, err := c.c.Read(name)
	if err != nil {
		return nil, err
	}
	if data.Ref == nil {
		return data.Bytes, nil
	}
	out := make([]byte, len(data.Bytes))
	copy(out, data.Bytes)
	data.Release()
	return out, nil
}

// ReadSample requests one file and hands the pooled receive buffer to the
// caller, who must Release it — the zero-allocation read path for worker
// processes that enabled pooled reads.
func (c *Client) ReadSample(name string) (*Sample, error) {
	data, err := c.c.Read(name)
	if err != nil {
		return nil, err
	}
	return &Sample{Name: data.Name, Size: data.Size, data: data}, nil
}

// SubmitPlan forwards an epoch's shuffled filename list.
func (c *Client) SubmitPlan(names []string) error { return c.c.SubmitPlan(names) }

// SubmitEpoch forwards an epoch's plan and returns the server-issued epoch
// id plus how many entries were enqueued.
func (c *Client) SubmitEpoch(names []string) (EpochID, int, error) {
	res, err := c.c.SubmitEpoch(names)
	return EpochID(res.Epoch), res.Enqueued, err
}

// CancelEpoch cancels a plan epoch on the server, reporting how many plan
// entries were removed.
func (c *Client) CancelEpoch(id EpochID) (int, error) {
	return c.c.CancelEpoch(core.EpochID(id))
}

// Epochs fetches the server's retained plan-epoch statuses.
func (c *Client) Epochs() ([]EpochStatus, error) {
	eps, err := c.c.Epochs()
	if err != nil {
		return nil, err
	}
	return epochsFrom(eps), nil
}

// Stats fetches the remote stage's snapshot.
func (c *Client) Stats() (Stats, error) {
	s, err := c.c.Stats()
	if err != nil {
		return Stats{}, err
	}
	return statsFrom(s), nil
}

// SetProducers adjusts the remote stage's t.
func (c *Client) SetProducers(n int) error { return c.c.SetProducers(n) }

// SetBufferCapacity adjusts the remote stage's N.
func (c *Client) SetBufferCapacity(n int) error { return c.c.SetBufferCapacity(n) }

// SetBufferShards adjusts the remote stage's buffer shard count K.
func (c *Client) SetBufferShards(k int) error { return c.c.SetBufferShards(k) }

// SetTraceSampling adjusts the remote stage's trace head-sampling
// probability.
func (c *Client) SetTraceSampling(p float64) error { return c.c.SetTraceSampling(p) }

// Hello establishes this connection's tenant identity: every later read
// is attributed to (and admission-controlled for) the named tenant, and
// the identity is replayed transparently after a reconnect. Returns the
// resolved tenant name ("" maps to the default tenant).
func (c *Client) Hello(tenant, secret string) (string, error) { return c.c.Hello(tenant, secret) }

// Tenants fetches the server's per-tenant QoS snapshot.
func (c *Client) Tenants() (TenantsSnapshot, error) {
	snap, err := c.c.Tenants()
	if err != nil {
		return TenantsSnapshot{}, err
	}
	return tenantsFrom(snap), nil
}

// SetTenant adjusts a tenant's arbitration weight and/or byte budget on
// the server (zero leaves the respective knob unchanged).
func (c *Client) SetTenant(name string, weight, bytesPerSecond float64) error {
	return c.c.SetTenant(name, weight, bytesPerSecond)
}

// Decisions fetches the remote autotuner's decision audit log as raw JSON.
func (c *Client) Decisions() ([]byte, error) { return c.c.Decisions() }

// Bundle fetches the server's one-shot diagnostic bundle as raw JSON (the
// same document GET /debug/bundle serves).
func (c *Client) Bundle() ([]byte, error) { return c.c.Bundle() }

// Ping probes server liveness.
func (c *Client) Ping() error { return c.c.Ping() }

// Close severs the connection.
func (c *Client) Close() error { return c.c.Close() }
