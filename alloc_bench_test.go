package prisma

import (
	"bufio"
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/dsrhaslab/prisma-go/internal/experiments"
)

// BenchmarkHotPathAllocs measures allocations per delivered sample on the
// contended read path (4 IPC consumers over a UNIX socket, full pipeline:
// storage read → prefetch buffer → evict-on-read → IPC frame → client
// decode), with and without the buffer pool. `prisma-bench alloc` runs the
// same cells from a plain binary; results_alloc.txt records the sweep.
func BenchmarkHotPathAllocs(b *testing.B) {
	b.Run("unpooled", experiments.AllocBenchmark(experiments.AllocConfig{Pool: false}))
	b.Run("pooled", experiments.AllocBenchmark(experiments.AllocConfig{Pool: true}))
	b.Run("pooled-compressed", experiments.AllocBenchmark(experiments.AllocConfig{Pool: true, Compressed: true}))
	b.Run("pooled-batched", experiments.AllocBenchmark(experiments.AllocConfig{Pool: true, Batch: 4}))
}

// allocBudget is the committed allocation budget (alloc_budget.txt) the CI
// gate enforces. See CONTRIBUTING.md for how to re-baseline it.
type allocBudget struct {
	PooledAllocsPerOp     int64   // hard ceiling for the pooled variant
	MinReductionPct       float64 // required pooled-vs-unpooled drop
	CachedAllocsPerOp     int64   // hard ceiling for pooled + shared cache
	CompressedAllocsPerOp int64   // hard ceiling for pooled + compressed shards
	BatchedAllocsPerOp    int64   // hard ceiling for pooled + read coalescing
}

func readAllocBudget(t *testing.T, path string) allocBudget {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("alloc budget: %v", err)
	}
	defer f.Close()
	var b allocBudget
	seen := map[string]bool{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("alloc budget: malformed line %q", line)
		}
		switch fields[0] {
		case "pooled_allocs_per_op":
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("alloc budget: %q: %v", line, err)
			}
			b.PooledAllocsPerOp = v
		case "min_reduction_percent":
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("alloc budget: %q: %v", line, err)
			}
			b.MinReductionPct = v
		case "cached_allocs_per_op":
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("alloc budget: %q: %v", line, err)
			}
			b.CachedAllocsPerOp = v
		case "compressed_allocs_per_op":
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("alloc budget: %q: %v", line, err)
			}
			b.CompressedAllocsPerOp = v
		case "batched_allocs_per_op":
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("alloc budget: %q: %v", line, err)
			}
			b.BatchedAllocsPerOp = v
		default:
			t.Fatalf("alloc budget: unknown key %q", fields[0])
		}
		seen[fields[0]] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"pooled_allocs_per_op", "min_reduction_percent", "cached_allocs_per_op", "compressed_allocs_per_op", "batched_allocs_per_op"} {
		if !seen[key] {
			t.Fatalf("alloc budget: missing %s", key)
		}
	}
	return b
}

// TestAllocRegressionGate is the CI allocation gate: it benchmarks the
// pooled and unpooled hot paths and fails if the pooled variant exceeds
// the committed budget (alloc_budget.txt) or the reduction falls below
// the required floor. Skipped in -short runs (it benchmarks for several
// seconds) and under -race (instrumentation allocates).
func TestAllocRegressionGate(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate benchmarks for several seconds; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation adds allocations the budget does not model")
	}
	budget := readAllocBudget(t, "alloc_budget.txt")

	unpooled := experiments.RunAllocCell(experiments.AllocConfig{Pool: false})
	pooled := experiments.RunAllocCell(experiments.AllocConfig{Pool: true})
	reduction := experiments.AllocReduction(unpooled.AllocsPerOp, pooled.AllocsPerOp)
	t.Logf("unpooled: %d allocs/op (%d ops); pooled: %d allocs/op (%d ops); reduction %.1f%%",
		unpooled.AllocsPerOp, unpooled.Ops, pooled.AllocsPerOp, pooled.Ops, reduction)

	if pooled.AllocsPerOp > budget.PooledAllocsPerOp {
		t.Errorf("pooled hot path allocates %d/op, budget is %d/op (see CONTRIBUTING.md to re-baseline)",
			pooled.AllocsPerOp, budget.PooledAllocsPerOp)
	}
	if reduction < budget.MinReductionPct {
		t.Errorf("pooling reduces allocs/op by %.1f%%, budget requires >= %.1f%%",
			reduction, budget.MinReductionPct)
	}

	// Cache-on cell: the shared cache tier (sized to hold the whole
	// dataset, so steady state is all hits) must stay within its own
	// per-sample budget on top of the pool.
	cached := experiments.RunAllocCell(experiments.AllocConfig{Pool: true, SharedCache: 8 << 20})
	t.Logf("pooled+cache: %d allocs/op (%d ops)", cached.AllocsPerOp, cached.Ops)
	if cached.AllocsPerOp > budget.CachedAllocsPerOp {
		t.Errorf("pooled hot path with the shared cache allocates %d/op, budget is %d/op (see CONTRIBUTING.md to re-baseline)",
			cached.AllocsPerOp, budget.CachedAllocsPerOp)
	}
	// Compressed cell: LZ-packed shards decoded in place into pooled
	// buffers must stay within the same per-sample budget — transparent
	// compression is not allowed to cost the hot path its zero-alloc
	// property.
	compressed := experiments.RunAllocCell(experiments.AllocConfig{Pool: true, Compressed: true})
	t.Logf("pooled+compressed: %d allocs/op (%d ops)", compressed.AllocsPerOp, compressed.Ops)
	if compressed.AllocsPerOp > budget.CompressedAllocsPerOp {
		t.Errorf("pooled hot path over compressed shards allocates %d/op, budget is %d/op (see CONTRIBUTING.md to re-baseline)",
			compressed.AllocsPerOp, budget.CompressedAllocsPerOp)
	}
	// Batched cell: FIFO runs coalesced into vectored reads and split into
	// views aliasing the shared region buffer must keep the hot path at
	// zero allocations — batching exists to remove per-request costs, not
	// to trade them for per-sample ones.
	batched := experiments.RunAllocCell(experiments.AllocConfig{Pool: true, Batch: 4})
	t.Logf("pooled+batched: %d allocs/op (%d ops)", batched.AllocsPerOp, batched.Ops)
	if batched.AllocsPerOp > budget.BatchedAllocsPerOp {
		t.Errorf("pooled hot path with read coalescing allocates %d/op, budget is %d/op (see CONTRIBUTING.md to re-baseline)",
			batched.AllocsPerOp, budget.BatchedAllocsPerOp)
	}
	if unpooled.AllocsPerOp == 0 {
		t.Error("unpooled variant reported zero allocs/op: the benchmark is not measuring the hot path")
	}
}
