//go:build race

package prisma

// raceEnabled reports that this test binary was built with -race. The
// allocation-regression gate skips itself under the race detector, whose
// instrumentation adds allocations the budget does not model.
const raceEnabled = true
