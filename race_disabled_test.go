//go:build !race

package prisma

const raceEnabled = false
