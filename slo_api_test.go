package prisma

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/httpadmin"
)

func TestSLOOptionsValidation(t *testing.T) {
	dir := makeDataset(t, 1)
	withSLO := func(slo SLOOptions) func(*Options) {
		return func(o *Options) {
			o.Tenancy = TenancyOptions{
				Enable:  true,
				Tenants: []TenantSpec{{Name: "a", SLO: &slo}},
			}
		}
	}
	bad := []func(*Options){
		withSLO(SLOOptions{}), // no threshold
		withSLO(SLOOptions{Quantile: 1.5, Threshold: time.Millisecond}),
		withSLO(SLOOptions{Quantile: -0.1, Threshold: time.Millisecond}),
		withSLO(SLOOptions{Threshold: time.Millisecond, ShedBudget: 2}),
		withSLO(SLOOptions{Threshold: time.Millisecond, Window: -time.Second}),
		withSLO(SLOOptions{Threshold: time.Millisecond, WarnBurn: -1}),
		func(o *Options) {
			o.Tenancy = TenancyOptions{Enable: true, SLOBoostFactor: 0.5}
		},
	}
	for i, mutate := range bad {
		opts := Options{Dir: dir}
		mutate(&opts)
		if _, err := Open(opts); err == nil {
			t.Errorf("bad SLO options #%d accepted", i)
		}
	}

	// A valid objective opens fine and surfaces in the tenant snapshot.
	p := open(t, dir, withSLO(SLOOptions{Quantile: 0.95, Threshold: 50 * time.Millisecond}))
	s, err := p.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range s.Tenants {
		if ts.Name == "a" && (!ts.HasSLO || ts.SLOState != "ok") {
			t.Fatalf("tenant a = %+v, want fresh ok objective", ts)
		}
	}
}

// TestSLOBreachEndToEnd drives the full serving-path loop: an unmeetable
// objective makes every read bad, the tenancy tick flips the tenant to
// breach and boosts its weight, and the actuation is audited in the
// controller's decision log — all of it visible in one diagnostic bundle.
func TestSLOBreachEndToEnd(t *testing.T) {
	p, _ := openTenancy(t, 8, func(o *Options) {
		o.Tenancy.TickInterval = 10 * time.Millisecond
		o.Tenancy.Tenants = []TenantSpec{{
			Name: "victim",
			SLO:  &SLOOptions{Quantile: 0.99, Threshold: time.Nanosecond},
		}}
	})
	names := p.ShuffledFileList(1, 0)

	victim := func() TenantStats {
		s, err := p.Tenants()
		if err != nil {
			t.Fatal(err)
		}
		for _, ts := range s.Tenants {
			if ts.Name == "victim" {
				return ts
			}
		}
		t.Fatal("victim missing")
		return TenantStats{}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		for i := 0; i < 20; i++ {
			if _, err := p.ReadAs("victim", names[i%len(names)]); err != nil {
				t.Fatal(err)
			}
		}
		vs := victim()
		if vs.SLOState == "breach" {
			if !vs.HasSLO || !vs.SLOBoosted {
				t.Fatalf("breached victim = %+v, want boosted with objective", vs)
			}
			if vs.SLOBurnShort < 4 || vs.SLOBudgetRemaining != 0 {
				t.Fatalf("breached victim burn/budget = %v/%v", vs.SLOBurnShort, vs.SLOBudgetRemaining)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never breached: %+v", vs)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The breach actuation must be audited next to the autotuner's own
	// decisions, and the bundle carries the whole story in one document.
	raw, err := p.Bundle()
	if err != nil {
		t.Fatal(err)
	}
	var b httpadmin.Bundle
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.Stats.Reads == 0 || b.Tenants == nil {
		t.Fatalf("bundle missing stats/tenants: reads=%d", b.Stats.Reads)
	}
	audited := false
	for _, d := range b.Decisions {
		if d.Rule == "slo-breach:victim" {
			audited = true
		}
	}
	if !audited {
		t.Fatalf("slo-breach:victim not in decision log: %+v", b.Decisions)
	}
	found := false
	for _, ts := range b.Tenants.Tenants {
		if ts.Name == "victim" && ts.SLO != nil && ts.SLO.State == "breach" {
			found = true
		}
	}
	if !found {
		t.Fatalf("bundle tenants lack breached victim: %+v", b.Tenants.Tenants)
	}

	// Runtime objective management: clearing drops tracking and the boost;
	// re-setting a meetable objective starts fresh at ok.
	if err := p.ClearTenantSLO("victim"); err != nil {
		t.Fatal(err)
	}
	if vs := victim(); vs.HasSLO || vs.SLOBoosted {
		t.Fatalf("after ClearTenantSLO: %+v", vs)
	}
	if err := p.SetTenantSLO("victim", SLOOptions{Quantile: 0.5, Threshold: time.Minute}); err != nil {
		t.Fatal(err)
	}
	if err := p.SetTenantSLO("victim", SLOOptions{}); err == nil {
		t.Fatal("SetTenantSLO accepted an empty objective")
	}
	if err := p.SetTenantSLO("ghost", SLOOptions{Quantile: 0.5, Threshold: time.Minute}); err == nil {
		t.Fatal("SetTenantSLO accepted an unknown tenant")
	}
	if vs := victim(); !vs.HasSLO || vs.SLOState != "ok" {
		t.Fatalf("after SetTenantSLO: %+v", vs)
	}
}

// TestBundleOverSocket checks prisma-ctl's transport: OpBundle returns the
// same document shape GET /debug/bundle serves, through the IPC client.
func TestBundleOverSocket(t *testing.T) {
	p, _ := openTenancy(t, 4, func(o *Options) {
		o.TraceSampling = 1
	})
	sock := filepath.Join(t.TempDir(), "prisma.sock")
	if err := p.ServeUnix(sock); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	names := p.ShuffledFileList(1, 0)
	for _, n := range names {
		if _, err := c.Read(n); err != nil {
			t.Fatal(err)
		}
	}

	raw, err := c.Bundle()
	if err != nil {
		t.Fatal(err)
	}
	var remote httpadmin.Bundle
	if err := json.Unmarshal(raw, &remote); err != nil {
		t.Fatalf("remote bundle does not decode: %v (%s)", err, raw)
	}
	if remote.Stats.Reads == 0 {
		t.Fatal("remote bundle has zero reads")
	}
	if remote.Tenants == nil {
		t.Fatal("remote bundle lacks the tenants section")
	}
	if len(remote.Spans) == 0 {
		t.Fatal("remote bundle lacks spans despite sampling 1")
	}

	// Same builder serves both transports: the local capture matches in
	// shape (sections, not counters — the clock moved between captures).
	local, err := p.Bundle()
	if err != nil {
		t.Fatal(err)
	}
	var lb httpadmin.Bundle
	if err := json.Unmarshal(local, &lb); err != nil {
		t.Fatal(err)
	}
	if (lb.Tenants == nil) != (remote.Tenants == nil) {
		t.Fatal("local and remote bundles disagree on the tenants section")
	}
	if !strings.Contains(string(raw), "\"attribution\"") {
		t.Fatal("remote bundle lacks the attribution section")
	}
}
