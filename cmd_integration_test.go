package prisma_test

// End-to-end integration of the shipped binaries: prisma-datagen writes a
// dataset, prisma-server serves it on a UNIX socket, prisma-ctl inspects
// and tunes it over the same socket.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildCommands compiles the three binaries once into a temp dir.
func buildCommands(t *testing.T) string {
	t.Helper()
	bin := t.TempDir()
	for _, cmd := range []string{"prisma-server", "prisma-ctl", "prisma-datagen"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
	}
	return bin
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCommands(t)
	dataDir := t.TempDir()

	// 1. Generate a small dataset.
	out, err := exec.Command(filepath.Join(bin, "prisma-datagen"),
		"-dir", dataDir, "-train-files", "64", "-val-files", "8", "-mean-size", "4096").CombinedOutput()
	if err != nil {
		t.Fatalf("datagen: %v\n%s", err, out)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "manifest.txt")); err != nil {
		t.Fatalf("manifest missing: %v", err)
	}

	// 2. Start the server.
	sock := filepath.Join(t.TempDir(), "it.sock")
	server := exec.Command(filepath.Join(bin, "prisma-server"),
		"-dir", dataDir, "-socket", sock, "-interval", "50ms")
	serverOut := &strings.Builder{}
	server.Stdout, server.Stderr = serverOut, serverOut
	if err := server.Start(); err != nil {
		t.Fatalf("server start: %v", err)
	}
	defer func() {
		_ = server.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { _ = server.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			_ = server.Process.Kill()
			<-done
		}
	}()

	// Wait for the socket to appear.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(sock); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("socket never appeared; server output:\n%s", serverOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	ctl := func(args ...string) string {
		t.Helper()
		full := append([]string{"-socket", sock}, args...)
		out, err := exec.Command(filepath.Join(bin, "prisma-ctl"), full...).CombinedOutput()
		if err != nil {
			t.Fatalf("ctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// 3. Ping and tune over the control path.
	if got := ctl("ping"); !strings.Contains(got, "ok") {
		t.Fatalf("ping = %q", got)
	}
	ctl("set-producers", "4")
	ctl("set-buffer", "32")
	stats := ctl("stats")
	if !strings.Contains(stats, "producers (t):    4") {
		t.Fatalf("stats after set-producers:\n%s", stats)
	}
	if !strings.Contains(stats, "/32") {
		t.Fatalf("stats after set-buffer:\n%s", stats)
	}

	// 4. Submit a plan from a file (names come from the manifest).
	manifest, err := os.ReadFile(filepath.Join(dataDir, "manifest.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(string(manifest), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && strings.HasPrefix(fields[0], "train/") {
			names = append(names, fields[0])
		}
	}
	if len(names) != 64 {
		t.Fatalf("parsed %d train names, want 64", len(names))
	}
	planPath := filepath.Join(t.TempDir(), "plan.txt")
	if err := os.WriteFile(planPath, []byte(strings.Join(names, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := ctl("plan", planPath); !strings.Contains(got, "64 files") {
		t.Fatalf("plan = %q", got)
	}

	// 5. The plan must reach the data plane: queue length + prefetched
	//    counts become visible in stats once producers drain the queue.
	deadline = time.Now().Add(10 * time.Second)
	for {
		stats = ctl("stats")
		if strings.Contains(stats, "prefetched files: ") && !strings.Contains(stats, "prefetched files: 0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("producers never prefetched; stats:\n%s", stats)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// 6. Bad invocations fail cleanly.
	if out, err := exec.Command(filepath.Join(bin, "prisma-ctl"), "-socket", sock, "set-producers", "NaN").CombinedOutput(); err == nil {
		t.Fatalf("ctl accepted garbage: %s", out)
	}
	if out, err := exec.Command(filepath.Join(bin, "prisma-server"), "-socket", sock).CombinedOutput(); err == nil {
		t.Fatalf("server without -dir succeeded: %s", out)
	}
}

func TestBenchAndTraceBinaries(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := t.TempDir()
	for _, cmd := range []string{"prisma-bench", "prisma-trace"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, cmd), "./cmd/"+cmd).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", cmd, err, out)
		}
	}

	// A tiny fig3 run produces both CDF tables.
	out, err := exec.Command(filepath.Join(bin, "prisma-bench"),
		"-scale", "0.001", "-runs", "1", "-models", "lenet", "-quiet", "fig3").CombinedOutput()
	if err != nil {
		t.Fatalf("prisma-bench fig3: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"tf-optimized", "prisma", "cumulative", "max threads"} {
		if !strings.Contains(text, want) {
			t.Errorf("fig3 output missing %q:\n%s", want, text)
		}
	}
	// Unknown targets fail.
	if out, err := exec.Command(filepath.Join(bin, "prisma-bench"), "nonsense").CombinedOutput(); err == nil {
		t.Fatalf("unknown target accepted: %s", out)
	}

	// prisma-trace analyzes a hand-written trace.
	tracePath := filepath.Join(t.TempDir(), "t.jsonl")
	traceContent := `{"at":0,"name":"a","size":100,"latency":1000000}
{"at":500000,"name":"b","size":200,"latency":2000000}
`
	if err := os.WriteFile(tracePath, []byte(traceContent), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(filepath.Join(bin, "prisma-trace"), "summary", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("prisma-trace summary: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "events:        2") {
		t.Errorf("summary output unexpected:\n%s", out)
	}
	out, err = exec.Command(filepath.Join(bin, "prisma-trace"), "-bucket", "1ms", "timeline", tracePath).CombinedOutput()
	if err != nil {
		t.Fatalf("prisma-trace timeline: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "█") {
		t.Errorf("timeline output missing bars:\n%s", out)
	}
	// Garbage trace fails cleanly.
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	_ = os.WriteFile(bad, []byte("{nope"), 0o644)
	if out, err := exec.Command(filepath.Join(bin, "prisma-trace"), "summary", bad).CombinedOutput(); err == nil {
		t.Fatalf("garbage trace accepted: %s", out)
	}
}

func TestDatagenRejectsMissingDir(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildCommands(t)
	if out, err := exec.Command(filepath.Join(bin, "prisma-datagen")).CombinedOutput(); err == nil {
		t.Fatalf("datagen without -dir succeeded: %s", out)
	}
}
