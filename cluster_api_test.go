package prisma

// Real-mode cluster fabric tests: two prisma-server instances on loopback
// UNIX sockets, consistent-hash placement, peer forwarding over OpPeerRead,
// and slow-store failover when a peer dies — the socket-transport twin of
// the deterministic sim harness in internal/distrib. Plus the cluster
// overhead gate: a single-node instance with the fabric compiled in but
// effectively idle must stay within 5% of a fabric-free instance.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// clusterNode is one real-mode node: a Prisma instance serving a socket.
type clusterNode struct {
	p    *Prisma
	sock string
	name string
}

// startClusterNodes opens n instances over one shared dataset dir, each
// serving its own socket, with all-to-all peer wiring. The caller reads
// through node[i].p; forwards ride the sockets.
func startClusterNodes(t *testing.T, dir string, n int, mutate func(*Options)) []clusterNode {
	t.Helper()
	sockDir := t.TempDir()
	names := make([]string, n)
	socks := make([]string, n)
	for i := range names {
		names[i] = "node-" + string(rune('0'+i))
		socks[i] = filepath.Join(sockDir, names[i]+".sock")
	}
	nodes := make([]clusterNode, n)
	for i := range nodes {
		peers := make(map[string]string)
		for j := range names {
			if j != i {
				peers[names[j]] = socks[j]
			}
		}
		opts := Options{
			Dir:             dir,
			DisableAutoTune: true,
			Cluster: ClusterOptions{
				Enable: true,
				NodeID: names[i],
				Peers:  peers,
			},
		}
		if mutate != nil {
			mutate(&opts)
		}
		p, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.ServeUnix(socks[i]); err != nil {
			p.Close()
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		nodes[i] = clusterNode{p: p, sock: socks[i], name: names[i]}
	}
	return nodes
}

// Two nodes on loopback sockets: the full epoch plan is submitted to both
// (each prefetches only its owned subsequence), one consumer sweeps the
// epoch through node 0, and every non-owned sample arrives via an
// OpPeerRead forward from node 1's buffer — no duplicate backend reads, no
// failovers.
func TestClusterLoopbackForwarding(t *testing.T) {
	const files = 60
	dir := makeDataset(t, files)
	nodes := startClusterNodes(t, dir, 2, nil)
	p0, p1 := nodes[0].p, nodes[1].p

	full := p0.ShuffledFileList(7, 0)
	for _, n := range nodes {
		if err := n.p.SubmitPlan(full); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range full {
		got, err := p0.Read(name)
		if err != nil {
			t.Fatalf("Read(%s): %v", name, err)
		}
		want, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Read(%s): payload mismatch (%d vs %d bytes)", name, len(got), len(want))
		}
	}

	st0, err := p0.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	st1, err := p1.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if st0.LocalReads+st0.PeerReads != files {
		t.Fatalf("node-0 local %d + peer %d != %d", st0.LocalReads, st0.PeerReads, files)
	}
	if st0.LocalReads == 0 || st0.PeerReads == 0 {
		t.Fatalf("degenerate split: local %d, peer %d", st0.LocalReads, st0.PeerReads)
	}
	if st1.PeerServes != st0.PeerReads {
		t.Fatalf("node-1 served %d forwards, node-0 sent %d", st1.PeerServes, st0.PeerReads)
	}
	if st0.Failovers != 0 || st0.PeerErrors != 0 {
		t.Fatalf("healthy cluster recorded failovers=%d peerErrors=%d", st0.Failovers, st0.PeerErrors)
	}
	// Clairvoyant economy over the real transport: each node's stage served
	// exactly its owned subsequence from its buffer — one backend read per
	// sample cluster-wide.
	s0, s1 := p0.Stats(), p1.Stats()
	if s0.Hits != st0.LocalReads {
		t.Fatalf("node-0 buffer hits %d, want %d (owned reads)", s0.Hits, st0.LocalReads)
	}
	if s1.Hits != st1.PeerServes {
		t.Fatalf("node-1 buffer hits %d, want %d (forwarded serves)", s1.Hits, st1.PeerServes)
	}
	if s0.PrefetchedFiles+s1.PrefetchedFiles != files {
		t.Fatalf("cluster prefetched %d files, want %d (zero duplicates)",
			s0.PrefetchedFiles+s1.PrefetchedFiles, files)
	}
}

// Socket clients get the same ownership routing as in-process readers:
// OpRead on node 0's socket forwards non-owned samples to node 1's buffer
// through the read router.
func TestClusterSocketClientForwarding(t *testing.T) {
	const files = 48
	dir := makeDataset(t, files)
	nodes := startClusterNodes(t, dir, 2, nil)
	p0, p1 := nodes[0].p, nodes[1].p

	full := p0.ShuffledFileList(11, 0)
	for _, n := range nodes {
		if err := n.p.SubmitPlan(full); err != nil {
			t.Fatal(err)
		}
	}
	c, err := Dial(nodes[0].sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, name := range full {
		got, err := c.Read(name)
		if err != nil {
			t.Fatalf("client Read(%s): %v", name, err)
		}
		want, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("client Read(%s): payload mismatch", name)
		}
	}

	st0, err := p0.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	st1, err := p1.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if st0.LocalReads+st0.PeerReads != files {
		t.Fatalf("node-0 local %d + peer %d != %d", st0.LocalReads, st0.PeerReads, files)
	}
	if st0.PeerReads == 0 {
		t.Fatal("socket-client reads never forwarded to the owner")
	}
	if st1.PeerServes != st0.PeerReads {
		t.Fatalf("node-1 served %d forwards, node-0 sent %d", st1.PeerServes, st0.PeerReads)
	}
	if st0.Failovers != 0 || st0.PeerErrors != 0 {
		t.Fatalf("healthy cluster recorded failovers=%d peerErrors=%d", st0.Failovers, st0.PeerErrors)
	}
	s0, s1 := p0.Stats(), p1.Stats()
	if s0.PrefetchedFiles+s1.PrefetchedFiles != files {
		t.Fatalf("cluster prefetched %d files, want %d (zero duplicates)",
			s0.PrefetchedFiles+s1.PrefetchedFiles, files)
	}
}

// The /cluster admin endpoint and prisma_cluster_* metrics expose the
// fabric snapshot; non-cluster instances answer 501.
func TestClusterAdminSurfaces(t *testing.T) {
	const files = 24
	dir := makeDataset(t, files)
	nodes := startClusterNodes(t, dir, 2, nil)
	p0 := nodes[0].p

	full := p0.ShuffledFileList(3, 0)
	for _, n := range nodes {
		if err := n.p.SubmitPlan(full); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range full {
		if _, err := p0.Read(name); err != nil {
			t.Fatal(err)
		}
	}

	srv := httptest.NewServer(p0.AdminHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /cluster: %d", resp.StatusCode)
	}
	var snap struct {
		Node       string   `json:"node"`
		Nodes      []string `json:"nodes"`
		LocalReads int64    `json:"local_reads"`
		PeerReads  int64    `json:"peer_reads"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Node != "node-0" || len(snap.Nodes) != 2 {
		t.Fatalf("cluster snapshot: %+v", snap)
	}
	if snap.LocalReads+snap.PeerReads != files {
		t.Fatalf("snapshot reads %d+%d, want %d", snap.LocalReads, snap.PeerReads, files)
	}

	mresp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, mresp.Body); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"prisma_cluster_enabled 1",
		"prisma_cluster_nodes 2",
		"prisma_cluster_peer_reads_total",
		"prisma_cluster_local_reads_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// A fabric-free instance rejects the endpoint and reports the gauge off.
	plain := open(t, dir, nil)
	psrv := httptest.NewServer(plain.AdminHandler())
	defer psrv.Close()
	presp, err := psrv.Client().Get(psrv.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != 501 {
		t.Fatalf("non-cluster GET /cluster: %d, want 501", presp.StatusCode)
	}
	if _, err := plain.ClusterStats(); err == nil {
		t.Fatal("ClusterStats on a non-cluster instance succeeded")
	}
}

// Killing a peer mid-epoch: reads of its samples fail over to the shared
// slow store within the consumer deadline, correctness intact.
func TestClusterLoopbackFailover(t *testing.T) {
	const files = 40
	dir := makeDataset(t, files)
	nodes := startClusterNodes(t, dir, 2, func(o *Options) {
		o.ConsumerDeadline = 2 * time.Second
	})
	p0 := nodes[0].p

	// Node 1 dies before serving anything; only node 0 gets a plan.
	nodes[1].p.Close()
	full := p0.ShuffledFileList(5, 0)
	if err := p0.SubmitPlan(full); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for _, name := range full {
		got, err := p0.Read(name)
		if err != nil {
			t.Fatalf("Read(%s): %v", name, err)
		}
		want, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Read(%s): payload mismatch", name)
		}
	}
	elapsed := time.Since(start)

	st0, err := p0.ClusterStats()
	if err != nil {
		t.Fatal(err)
	}
	if st0.Failovers == 0 {
		t.Fatal("no failovers despite a dead peer")
	}
	if st0.Failovers != st0.PeerErrors {
		t.Fatalf("failovers %d != peer errors %d", st0.Failovers, st0.PeerErrors)
	}
	if st0.LocalReads+st0.Failovers != files {
		t.Fatalf("local %d + failover %d != %d", st0.LocalReads, st0.Failovers, files)
	}
	if st0.PeerReads != 0 {
		t.Fatalf("dead peer served %d forwards", st0.PeerReads)
	}
	// Failed dials surface immediately (connection refused, no take
	// deadline involved), so the whole sweep finishes promptly.
	if elapsed > 30*time.Second {
		t.Fatalf("failover sweep took %v", elapsed)
	}
}

// runClusterSweep submits one epoch and reads it back through p, returning
// the makespan.
func runClusterSweep(t *testing.T, p *Prisma, seed int64) time.Duration {
	t.Helper()
	full := p.ShuffledFileList(seed, 0)
	start := time.Now()
	if err := p.SubmitPlan(full); err != nil {
		t.Fatal(err)
	}
	for _, name := range full {
		s, err := p.ReadSample(name)
		if err != nil {
			t.Fatal(err)
		}
		s.Release()
	}
	return time.Since(start)
}

// TestClusterOverheadGate: a single-node instance with the cluster fabric
// compiled in and enabled (one-node ring, no peers — every read routes
// through the fabric but stays local) must stay within 5% of a fabric-free
// instance on an identical planned epoch sweep. Best paired ratio over
// interleaved rounds, like the tracing and serving-chain gates.
func TestClusterOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate: skipped with -short")
	}
	const (
		files  = 400
		rounds = 5
	)
	dir := makeDataset(t, files)
	plain := open(t, dir, func(o *Options) {
		o.DisableAutoTune = true
		o.InitialProducers = 4
		o.InitialBuffer = 64
	})
	fabric := open(t, dir, func(o *Options) {
		o.DisableAutoTune = true
		o.InitialProducers = 4
		o.InitialBuffer = 64
		o.Cluster = ClusterOptions{Enable: true, NodeID: "solo"}
	})

	runClusterSweep(t, plain, 1) // warm up both paths
	runClusterSweep(t, fabric, 1)

	ratio := float64(1 << 62)
	var base, fab time.Duration
	for i := 0; i < rounds; i++ {
		seed := int64(i + 2)
		p := runClusterSweep(t, plain, seed)
		d := runClusterSweep(t, fabric, seed)
		if r := float64(d) / float64(p); r < ratio {
			ratio, base, fab = r, p, d
		}
	}
	t.Logf("plain %v, fabric %v, ratio %.4f", base, fab, ratio)
	if ratio > 1.05 {
		t.Errorf("idle cluster fabric costs %.1f%% on the planned sweep (budget 5%%): plain %v, fabric %v",
			(ratio-1)*100, base, fab)
	}
}
