package prisma

import (
	"os"
	"path/filepath"
	"testing"
)

// openTenancy builds a tenancy-enabled instance with a shared cache over a
// small dataset.
func openTenancy(t *testing.T, n int, mutate func(*Options)) (*Prisma, string) {
	t.Helper()
	dir := makeDataset(t, n)
	p := open(t, dir, func(o *Options) {
		o.Tenancy = TenancyOptions{
			Enable:           true,
			Capacity:         50_000,
			SharedCacheBytes: 1 << 20,
		}
		if mutate != nil {
			mutate(o)
		}
	})
	return p, dir
}

func TestTenancyOptionsValidation(t *testing.T) {
	dir := makeDataset(t, 1)
	bad := []func(*Options){
		func(o *Options) { o.Tenancy = TenancyOptions{Enable: true, Capacity: -1} },
		func(o *Options) { o.Tenancy = TenancyOptions{Enable: true, DegradedFactor: 2} },
		func(o *Options) { o.Tenancy = TenancyOptions{Enable: true, MaxQueueDepth: -2} },
		func(o *Options) { o.Tenancy = TenancyOptions{Enable: true, SharedCacheBytes: -1} },
		func(o *Options) {
			o.Tenancy = TenancyOptions{Enable: true, Tenants: []TenantSpec{{Name: ""}}}
		},
	}
	for i, mutate := range bad {
		opts := Options{Dir: dir}
		mutate(&opts)
		if _, err := Open(opts); err == nil {
			t.Errorf("bad tenancy options #%d accepted", i)
		}
	}
}

func TestTenancyDisabledAPI(t *testing.T) {
	dir := makeDataset(t, 1)
	p := open(t, dir, nil)
	if _, err := p.Tenants(); err == nil {
		t.Error("Tenants on a non-tenant instance succeeded")
	}
	if err := p.RegisterTenant(TenantSpec{Name: "x"}); err == nil {
		t.Error("RegisterTenant on a non-tenant instance succeeded")
	}
	if err := p.SetTenant("x", 2, 0); err == nil {
		t.Error("SetTenant on a non-tenant instance succeeded")
	}
	// The sentinel must be usable for errors.Is even without tenancy on.
	if ErrOverloaded == nil {
		t.Fatal("ErrOverloaded is nil")
	}
}

func TestTenancyInProcessAttribution(t *testing.T) {
	p, _ := openTenancy(t, 8, func(o *Options) {
		o.Tenancy.Tenants = []TenantSpec{{Name: "job-a", Weight: 2}}
	})
	names := p.ShuffledFileList(1, 0)

	// Default-tenant read plus two attributed reads.
	if _, err := p.Read(names[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		blob, err := p.ReadAs("job-a", names[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) == 0 {
			t.Fatal("empty payload")
		}
	}
	s, err := p.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	var def, jobA TenantStats
	for _, ts := range s.Tenants {
		switch ts.Name {
		case "default":
			def = ts
		case "job-a":
			jobA = ts
		}
	}
	if def.Admitted != 1 || jobA.Admitted != 2 {
		t.Fatalf("admitted default=%d job-a=%d, want 1 and 2", def.Admitted, jobA.Admitted)
	}
	if jobA.Weight != 2 || jobA.BytesRead == 0 {
		t.Fatalf("job-a = %+v", jobA)
	}

	// Runtime knob adjustment is visible in the next snapshot.
	if err := p.SetTenant("job-a", 4, 1<<20); err != nil {
		t.Fatal(err)
	}
	s, _ = p.Tenants()
	for _, ts := range s.Tenants {
		if ts.Name == "job-a" && (ts.Weight != 4 || ts.ByteBudget != 1<<20) {
			t.Fatalf("job-a after SetTenant = %+v", ts)
		}
	}

	if err := p.RegisterTenant(TenantSpec{Name: "job-b"}); err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterTenant(TenantSpec{Name: "job-b"}); err == nil {
		t.Fatal("duplicate RegisterTenant accepted")
	}
	if err := p.UnregisterTenant("job-b"); err != nil {
		t.Fatal(err)
	}
	if err := p.UnregisterTenant("default"); err == nil {
		t.Fatal("default tenant unregistered")
	}
}

func TestTenancySharedCacheDedupes(t *testing.T) {
	p, _ := openTenancy(t, 4, nil)
	names := p.ShuffledFileList(2, 0)

	// Unplanned reads bypass the prefetch buffer and hit the backend chain;
	// the second read of the same file must come from the shared cache.
	for i := 0; i < 3; i++ {
		if _, err := p.ReadAs("job-a", names[0]); err != nil {
			t.Fatal(err)
		}
		if _, err := p.ReadAs("job-b", names[0]); err != nil {
			t.Fatal(err)
		}
	}
	s := p.Stats()
	if !s.CacheEnabled {
		t.Fatal("cache not reported enabled")
	}
	if s.CacheDeviceReads != 1 {
		t.Fatalf("device reads = %d, want 1 (co-located tenants multiplied backend load)", s.CacheDeviceReads)
	}
	if s.CacheHits < 4 {
		t.Fatalf("cache hits = %d, want >= 4", s.CacheHits)
	}
	if s.CacheUsedBytes == 0 || s.CacheResidents != 1 {
		t.Fatalf("cache stats = %+v", s)
	}
}

func TestTenancyOverSocket(t *testing.T) {
	p, _ := openTenancy(t, 6, nil)
	sock := filepath.Join(shortTempDir(t), "prisma.sock")
	if err := p.ServeUnix(sock); err != nil {
		t.Fatal(err)
	}
	names := p.ShuffledFileList(3, 0)

	c, err := DialWithOptions(sock, DialOptions{Tenant: "job-x", OverloadRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Read(names[i]); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := c.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ts := range snap.Tenants {
		if ts.Name == "job-x" {
			found = true
			if ts.Admitted != 3 || ts.BytesRead == 0 {
				t.Fatalf("job-x = %+v", ts)
			}
		}
	}
	if !found {
		t.Fatal("dial-time hello did not register job-x")
	}
	if err := c.SetTenant("job-x", 3, 0); err != nil {
		t.Fatal(err)
	}
	snap, _ = c.Tenants()
	for _, ts := range snap.Tenants {
		if ts.Name == "job-x" && ts.Weight != 3 {
			t.Fatalf("job-x weight = %g after SetTenant", ts.Weight)
		}
	}

	// A second connection without a hello lands on the default tenant.
	c2, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Read(names[0]); err != nil {
		t.Fatal(err)
	}
	snap, _ = c.Tenants()
	for _, ts := range snap.Tenants {
		if ts.Name == "default" && ts.Admitted == 0 {
			t.Fatal("untagged read not attributed to the default tenant")
		}
	}
}

func TestTenancyHelloAuthOverSocket(t *testing.T) {
	p, _ := openTenancy(t, 1, func(o *Options) {
		o.Tenancy.Tenants = []TenantSpec{{Name: "secure", Secret: "pw"}}
	})
	sock := filepath.Join(shortTempDir(t), "prisma.sock")
	if err := p.ServeUnix(sock); err != nil {
		t.Fatal(err)
	}
	if _, err := DialWithOptions(sock, DialOptions{Tenant: "secure", Secret: "wrong"}); err == nil {
		t.Fatal("bad secret accepted at dial time")
	}
	c, err := DialWithOptions(sock, DialOptions{Tenant: "secure", Secret: "pw"})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}

// shortTempDir works around the 104-byte UNIX socket path limit on some
// platforms: t.TempDir can exceed it under deeply nested test names.
func shortTempDir(t *testing.T) string {
	t.Helper()
	dir, err := os.MkdirTemp("", "prisma")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	return dir
}
