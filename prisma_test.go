package prisma

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/dataset"
)

// makeDataset writes n small files under a temp dir and returns it.
func makeDataset(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	samples := make([]dataset.Sample, n)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("train/%04d.jpg", i), Size: int64(2048 + i)}
	}
	if err := dataset.Generate(dir, dataset.MustNew(samples), 99); err != nil {
		t.Fatal(err)
	}
	return dir
}

func open(t *testing.T, dir string, mutate func(*Options)) *Prisma {
	t.Helper()
	opts := Options{Dir: dir}
	if mutate != nil {
		mutate(&opts)
	}
	p, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("empty Dir accepted")
	}
	if _, err := Open(Options{Dir: t.TempDir()}); err == nil {
		t.Error("empty dataset accepted")
	}
	dir := makeDataset(t, 1)
	if _, err := Open(Options{Dir: dir, InitialProducers: 5, MaxProducers: 2}); err == nil {
		t.Error("bad producer bounds accepted")
	}
	if _, err := Open(Options{Dir: dir, InitialBuffer: 50, MaxBuffer: 4}); err == nil {
		t.Error("bad buffer bounds accepted")
	}
	if _, err := Open(Options{Dir: dir, ControlInterval: -time.Second}); err == nil {
		t.Error("negative control interval accepted")
	}
}

func TestOpenScansManifest(t *testing.T) {
	dir := makeDataset(t, 10)
	p := open(t, dir, nil)
	if p.Files() != 10 {
		t.Fatalf("Files = %d, want 10", p.Files())
	}
	if p.TotalBytes() == 0 {
		t.Fatal("TotalBytes = 0")
	}
}

func TestPlannedReadsComeFromBuffer(t *testing.T) {
	dir := makeDataset(t, 20)
	p := open(t, dir, nil)
	plan := p.ShuffledFileList(7, 0)
	if err := p.SubmitPlan(plan); err != nil {
		t.Fatal(err)
	}
	for _, name := range plan {
		data, err := p.Read(name)
		if err != nil {
			t.Fatalf("Read(%s): %v", name, err)
		}
		if len(data) < 2048 {
			t.Fatalf("Read(%s): %d bytes", name, len(data))
		}
	}
	st := p.Stats()
	if st.Hits != 20 || st.Bypasses != 0 {
		t.Fatalf("stats = %+v, want 20 hits", st)
	}
}

func TestReadBytesMatchDisk(t *testing.T) {
	dir := makeDataset(t, 3)
	p := open(t, dir, nil)
	plan := p.ShuffledFileList(1, 0)
	_ = p.SubmitPlan(plan)
	viaPrisma, err := p.Read(plan[0])
	if err != nil {
		t.Fatal(err)
	}
	raw, err := readDisk(dir, plan[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaPrisma, raw) {
		t.Fatal("prefetched bytes differ from disk")
	}
}

func readDisk(dir, name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(dir, filepath.FromSlash(name)))
}

func TestUnplannedReadBypasses(t *testing.T) {
	dir := makeDataset(t, 5)
	p := open(t, dir, nil)
	if _, err := p.Read("train/0000.jpg"); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.Bypasses != 1 {
		t.Fatalf("Bypasses = %d, want 1", st.Bypasses)
	}
}

func TestSubmitPlanRejectsUnknownFiles(t *testing.T) {
	dir := makeDataset(t, 2)
	p := open(t, dir, nil)
	if err := p.SubmitPlan([]string{"ghost.jpg"}); err == nil {
		t.Fatal("unknown plan file accepted")
	}
}

func TestShuffledFileListDeterministic(t *testing.T) {
	dir := makeDataset(t, 30)
	p := open(t, dir, nil)
	a := p.ShuffledFileList(5, 2)
	b := p.ShuffledFileList(5, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same (seed, epoch) gave different lists")
		}
	}
	c := p.ShuffledFileList(5, 3)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different epochs gave identical lists")
	}
}

func TestManualTuningWithoutAutotune(t *testing.T) {
	dir := makeDataset(t, 5)
	p := open(t, dir, func(o *Options) { o.DisableAutoTune = true })
	p.SetProducers(3)
	p.SetBufferCapacity(7)
	// Producer changes are applied asynchronously but the target is
	// immediate.
	if st := p.Stats(); st.Producers != 3 || st.BufferCapacity != 7 {
		t.Fatalf("stats = %+v, want t=3 N=7", st)
	}
}

func TestCloseIdempotent(t *testing.T) {
	dir := makeDataset(t, 2)
	p := open(t, dir, nil)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// Reads after close fail instead of hanging.
	plan := p.ShuffledFileList(1, 0)
	if err := p.SubmitPlan(plan); err == nil {
		t.Fatal("SubmitPlan after Close succeeded")
	}
}

func TestServeUnixRoundTrip(t *testing.T) {
	dir := makeDataset(t, 16)
	p := open(t, dir, nil)
	sock := filepath.Join(t.TempDir(), "prisma.sock")
	if err := p.ServeUnix(sock); err != nil {
		t.Fatal(err)
	}
	if err := p.ServeUnix(sock); err == nil {
		t.Fatal("double ServeUnix accepted")
	}

	planner, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer planner.Close()
	if err := planner.Ping(); err != nil {
		t.Fatal(err)
	}
	plan := p.ShuffledFileList(3, 0)
	if err := planner.SubmitPlan(plan); err != nil {
		t.Fatal(err)
	}

	// Four "worker processes", one client each.
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(sock)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := w; i < len(plan); i += workers {
				data, err := c.Read(plan[i])
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if len(data) < 2048 {
					errs <- fmt.Errorf("worker %d: short read %d", w, len(data))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st, err := planner.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != int64(len(plan)) {
		t.Fatalf("remote Hits = %d, want %d", st.Hits, len(plan))
	}
	if err := planner.SetProducers(2); err != nil {
		t.Fatal(err)
	}
	if err := planner.SetBufferCapacity(64); err != nil {
		t.Fatal(err)
	}
}

func TestTraceFileWrittenOnClose(t *testing.T) {
	dir := makeDataset(t, 8)
	tracePath := filepath.Join(t.TempDir(), "io.trace")
	p, err := Open(Options{Dir: dir, TraceFile: tracePath})
	if err != nil {
		t.Fatal(err)
	}
	plan := p.ShuffledFileList(3, 0)
	if err := p.SubmitPlan(plan); err != nil {
		t.Fatal(err)
	}
	for _, name := range plan {
		if _, err := p.Read(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(raw), "\n")
	if lines != 8 {
		t.Fatalf("trace has %d events, want 8 (one per backend read)", lines)
	}
	if !strings.Contains(string(raw), `"name":"train/`) {
		t.Fatalf("trace content unexpected: %s", raw[:min(200, len(raw))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestAdminHandler(t *testing.T) {
	dir := makeDataset(t, 4)
	p := open(t, dir, nil)
	srv := httptest.NewServer(p.AdminHandler())
	defer srv.Close()

	plan := p.ShuffledFileList(1, 0)
	_ = p.SubmitPlan(plan)
	for _, n := range plan {
		if _, err := p.Read(n); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "prisma_buffer_hits_total 4") {
		t.Fatalf("metrics missing hit count:\n%s", body)
	}
	// Tuning over HTTP reaches the stage.
	post, err := http.Post(srv.URL+"/tuning?producers=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if got := p.Stats().Producers; got != 3 {
		t.Fatalf("producers = %d, want 3 via HTTP", got)
	}
}

func TestAutotuneAdjustsUnderLoad(t *testing.T) {
	dir := makeDataset(t, 400)
	p := open(t, dir, func(o *Options) { o.ControlInterval = 20 * time.Millisecond })
	for epoch := 0; epoch < 3; epoch++ {
		plan := p.ShuffledFileList(11, epoch)
		if err := p.SubmitPlan(plan); err != nil {
			t.Fatal(err)
		}
		for _, name := range plan {
			if _, err := p.Read(name); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := p.Stats()
	if st.Hits != 1200 {
		t.Fatalf("Hits = %d, want 1200", st.Hits)
	}
	if st.Producers < 1 || st.Producers > 32 {
		t.Fatalf("Producers = %d out of policy bounds", st.Producers)
	}
}
