// PyTorch scenario: multi-process data loading over a real UNIX domain
// socket — the paper's §IV PyTorch integration. A PRISMA server fronts a
// real on-disk dataset; "worker processes" (goroutines standing in for
// DataLoader workers, each with its own socket client, exactly the
// per-process client the paper describes) fetch shuffled batches through
// the shared data plane while its producers prefetch ahead.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"time"

	prisma "github.com/dsrhaslab/prisma-go"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
)

const (
	files   = 1024
	epochs  = 2
	workers = 4
	batch   = 32
)

func main() {
	dir, err := os.MkdirTemp("", "prisma-pytorch-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	man, err := dataset.Synthetic("train", files, 32<<10, 0.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.Generate(dir, man, 7); err != nil {
		log.Fatal(err)
	}

	// The PRISMA server process.
	p, err := prisma.Open(prisma.Options{Dir: dir, ControlInterval: 50 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	sock := filepath.Join(dir, "prisma.sock")
	if err := p.ServeUnix(sock); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PRISMA server: %d files on %s\n", p.Files(), sock)

	start := time.Now()
	for epoch := 0; epoch < epochs; epoch++ {
		// The job script shares the epoch's shuffled list with the data
		// plane before spawning workers — prefetching starts before the
		// epoch does (§V-B).
		plan := p.ShuffledFileList(99, epoch)
		planner, err := prisma.Dial(sock)
		if err != nil {
			log.Fatal(err)
		}
		if err := planner.SubmitPlan(plan); err != nil {
			log.Fatal(err)
		}
		planner.Close()

		// DataLoader: worker w loads batches with index % workers == w,
		// reading every sample through its own PRISMA client.
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				client, err := prisma.Dial(sock)
				if err != nil {
					errs <- err
					return
				}
				defer client.Close()
				for b := w; b*batch < len(plan); b += workers {
					lo, hi := b*batch, (b+1)*batch
					if hi > len(plan) {
						hi = len(plan)
					}
					for _, name := range plan[lo:hi] {
						if _, err := client.Read(name); err != nil {
							errs <- fmt.Errorf("worker %d: %w", w, err)
							return
						}
					}
					// <- collate + train step would consume the batch here
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			log.Fatal(err)
		}
		fmt.Printf("epoch %d: %d samples through %d workers\n", epoch, len(plan), workers)
	}
	elapsed := time.Since(start)

	st := p.Stats()
	fmt.Printf("\n%d reads in %v (%.0f samples/s), %d served from the prefetch buffer\n",
		st.Reads, elapsed.Round(time.Millisecond), float64(st.Reads)/elapsed.Seconds(), st.Hits)
	fmt.Printf("control plane converged to t=%d producers, N=%d buffer slots\n", st.Producers, st.BufferCapacity)
}
