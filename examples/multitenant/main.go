// Multi-tenant scenario: two DL jobs — one aggressive (8 reader threads),
// one modest (2) — compete for one shared storage device, the §II problem
// framework-intrinsic optimizations cannot see. The control plane's
// fairness arbiter (a §VII policy) measures each job's rate and enforces a
// weighted max-min split through per-job token buckets, restoring the
// modest job's share. Runs in the deterministic virtual-time simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/fairness"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

const (
	deviceLatency = 500 * time.Microsecond // 4 channels → 8 k reads/s total
	window        = 3 * time.Second
)

func main() {
	fmt.Println("Two jobs share one device (8,000 reads/s capacity).")
	fmt.Println()
	uncontrolled := run(false)
	controlled := run(true)

	report := func(title string, counts [2]int64) {
		total := counts[0] + counts[1]
		fmt.Printf("%-22s job A (8 threads): %6d reads (%4.1f%%)   job B (2 threads): %6d reads (%4.1f%%)\n",
			title,
			counts[0], 100*float64(counts[0])/float64(total),
			counts[1], 100*float64(counts[1])/float64(total))
	}
	report("without coordination:", uncontrolled)
	report("with fair arbiter:", controlled)
	fmt.Println()
	fmt.Println("Coordinated, system-wide control is exactly what decoupling enables:")
	fmt.Println("no single job could have enforced this split from inside its framework.")
}

// run simulates both jobs for the window and returns their read counts.
func run(arbitrate bool) [2]int64 {
	s := sim.New()
	env := conc.NewSimEnv(s)
	var counts [2]int64

	s.Spawn("driver", func(*sim.Process) {
		dev, err := storage.NewDevice(env, storage.DeviceSpec{
			BaseLatency: deviceLatency, BytesPerSecond: 1e12, Channels: 4,
		})
		if err != nil {
			log.Fatal(err)
		}

		var arb *fairness.Arbiter
		if arbitrate {
			arb, err = fairness.NewArbiter(env, 8000)
			if err != nil {
				log.Fatal(err)
			}
			arb.Start(100 * time.Millisecond)
		}

		launch := func(idx int, id string, threads int) *metrics.Counter {
			samples := make([]dataset.Sample, 512)
			for i := range samples {
				samples[i] = dataset.Sample{Name: fmt.Sprintf("%s/%04d", id, i), Size: 50_000}
			}
			backend := storage.NewModeledBackend(dataset.MustNew(samples), dev, nil)
			count := metrics.NewCounter(env)
			var read func(name string) error
			if arbitrate {
				bucket, err := fairness.NewTokenBucket(env, 8000, 1)
				if err != nil {
					log.Fatal(err)
				}
				tb := fairness.ThrottledBackend{Bucket: bucket, Inner: backend}
				if err := arb.Register(id, 1, bucket, count.Value); err != nil {
					log.Fatal(err)
				}
				read = func(name string) error { _, err := tb.ReadFile(name); return err }
			} else {
				read = func(name string) error { _, err := backend.ReadFile(name); return err }
			}
			for w := 0; w < threads; w++ {
				env.Go(fmt.Sprintf("%s-w%d", id, w), func() {
					for env.Now() < window {
						if err := read(samples[int(count.Value())%len(samples)].Name); err != nil {
							return
						}
						count.Inc()
					}
				})
			}
			return count
		}

		cA := launch(0, "jobA", 8)
		cB := launch(1, "jobB", 2)
		env.Sleep(window + 100*time.Millisecond)
		if arb != nil {
			arb.Stop()
		}
		counts[0], counts[1] = cA.Value(), cB.Value()
	})
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
	return counts
}
