// TensorFlow scenario: compare the paper's three §V-A setups — TF baseline
// (single-threaded reads, no prefetch), TF optimized (intrinsic 30-thread
// pool + autotuned prefetch buffer), and PRISMA (the baseline pipeline
// with reads intercepted by a decoupled, auto-tuned data plane) — on an
// I/O-bound LeNet/ImageNet workload in the deterministic virtual-time
// simulator. This regenerates one column of Figure 2 interactively.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/experiments"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/train"
)

func main() {
	cal := experiments.Default()
	cal.Scale = 1.0 / 256 // ~5 k training files; shapes preserved
	cal.Runs = 1

	model := train.LeNet()
	const batch = 256

	fmt.Printf("LeNet on synthetic ImageNet (scale %.4f, %d epochs, batch %d, %d GPUs)\n\n",
		cal.Scale, cal.Epochs, batch, cal.GPUs)

	var baseline time.Duration
	for _, setup := range experiments.TFSetups() {
		m, err := experiments.RunTF(cal, model, batch, setup, cal.Seed)
		if err != nil {
			log.Fatalf("%s: %v", setup, err)
		}
		line := fmt.Sprintf("%-13s %10v  (paper-scale %6.0f s)",
			setup, m.Elapsed.Round(time.Millisecond), cal.PaperScale(m.Elapsed).Seconds())
		if setup == "tf-baseline" {
			baseline = m.Elapsed
		} else if baseline > 0 {
			line += fmt.Sprintf("  %2.0f%% faster than baseline", (1-float64(m.Elapsed)/float64(baseline))*100)
		}
		if setup == "prisma" {
			line += fmt.Sprintf("  [auto-tuned to t=%d N=%d, %d threads max]",
				m.FinalTuning.Producers, m.FinalTuning.BufferCapacity, metrics.MaxValue(m.Readers))
		}
		if setup == "tf-optimized" {
			line += fmt.Sprintf("  [%d reader threads max]", metrics.MaxValue(m.Readers))
		}
		fmt.Println(line)
	}

	fmt.Println("\nThe decoupled PRISMA data plane matches the framework-intrinsic")
	fmt.Println("optimization within a small margin — using a fraction of its threads —")
	fmt.Println("without touching the framework's internals (10 LoC integration, §IV).")
}
