// Tiering scenario (§VII "implementing other optimizations"): a dataset
// lives on a slow NFS-like share; a local NVMe fast tier promotes files on
// first access. The tiering optimization object composes with the
// parallel prefetcher in one PRISMA stage — epoch 1 pays the share (hidden
// behind prefetching), epoch 2 runs at local-flash speed. Runs in the
// deterministic virtual-time simulator.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/tiering"
)

const files = 2000

func main() {
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("driver", func(*sim.Process) {
		man, err := dataset.Synthetic("train", files, 113_000, 0.5, 1)
		if err != nil {
			log.Fatal(err)
		}

		// Slow tier: a contended NFS share. Fast tier: local NVMe.
		nfsDev, err := storage.NewDevice(env, storage.NFSShare())
		if err != nil {
			log.Fatal(err)
		}
		nvmeDev, err := storage.NewDevice(env, storage.DeviceSpec{
			Name: "local-nvme", BaseLatency: 80 * time.Microsecond, BytesPerSecond: 3e9, Channels: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		share := storage.NewModeledBackend(man, nfsDev, nil)
		tiered, err := tiering.NewBackend(env, tiering.Config{
			FastCapacity: 1 << 30, PromoteAfter: 1,
		}, share, nvmeDev)
		if err != nil {
			log.Fatal(err)
		}

		// PRISMA prefetches through the tiered backend.
		pf, err := core.NewPrefetcher(env, tiered, core.PrefetcherConfig{
			InitialProducers: 4, MaxProducers: 16,
			InitialBufferCapacity: 64, MaxBufferCapacity: 512,
		})
		if err != nil {
			log.Fatal(err)
		}
		stage := core.NewStage(env, tiered, core.NewPrefetchObject(pf))
		pf.Start()
		defer stage.Close()

		fmt.Printf("%d files on an NFS share, 1 GiB local NVMe fast tier\n\n", files)
		for epoch := 0; epoch < 3; epoch++ {
			plan := man.EpochFileList(7, epoch)
			if err := stage.SubmitPlan(plan); err != nil {
				log.Fatal(err)
			}
			start := env.Now()
			for _, name := range plan {
				if _, err := stage.Read(name); err != nil {
					log.Fatal(err)
				}
			}
			st := tiered.Stats()
			fmt.Printf("epoch %d: %8v   fast-tier hits %4d / %d reads (%.0f%% resident)\n",
				epoch, (env.Now() - start).Round(time.Millisecond),
				st.FastHits, st.FastHits+st.SlowReads,
				100*float64(st.FastHits)/float64(st.FastHits+st.SlowReads))
		}
		fmt.Println("\nThe tiering object and the prefetcher are independent building")
		fmt.Println("blocks composed in one stage — no framework code knows either exists.")
	})
	if err := s.Run(); err != nil {
		log.Fatal(err)
	}
}
