// Distributed scenario (§VII "distributed training settings"): an 8-node
// cluster trains LeNet in synchronous data parallelism against a shared
// parallel file system, each node fronted by its own PRISMA stage. The
// run contrasts eight independent per-node auto-tuners with one
// coordinated controller that allocates a global producer budget — same
// training throughput, far fewer reader threads cluster-wide.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/distrib"
)

func main() {
	base := distrib.DefaultConfig()

	fmt.Printf("8 nodes × 4 GPUs, %d files/epoch sharded round-robin, shared 8-channel PFS\n\n", base.TrainFiles)

	for _, mode := range []distrib.Mode{distrib.Independent, distrib.Coordinated} {
		cfg := base
		cfg.Mode = mode
		res, err := distrib.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		fmt.Printf("%-12s makespan %v, cluster-wide peak reader threads: %d\n",
			mode.String()+":", res.Makespan.Round(time.Millisecond), res.TotalMaxReaders)
		fmt.Printf("             per-node tuning:")
		for _, n := range res.Nodes {
			fmt.Printf(" t=%d", n.FinalTuning.Producers)
		}
		fmt.Printf("\n             PFS served %d reads, %.1f GiB\n\n",
			res.PFS.Reads, float64(res.PFS.Bytes)/(1<<30))
	}

	fmt.Println("Coordinated control reaches the same makespan with a bounded thread")
	fmt.Println("budget — the cluster-level version of Figure 3's overprovisioning result.")
}
