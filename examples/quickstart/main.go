// Quickstart: generate a small dataset on disk, open PRISMA over it, share
// an epoch plan, and read the epoch through the data plane — the minimal
// integration any DL data loader needs (paper §IV: share the shuffled
// filename list, swap the read call).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	prisma "github.com/dsrhaslab/prisma-go"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
)

func main() {
	dir, err := os.MkdirTemp("", "prisma-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. A small synthetic dataset (stand-in for your training corpus).
	const files = 512
	man, err := dataset.Synthetic("train", files, 64<<10, 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	if err := dataset.Generate(dir, man, 42); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d files, %.1f MiB under %s\n", man.Len(), float64(man.TotalBytes())/(1<<20), dir)

	// 2. Open PRISMA over the directory. The control plane auto-tunes the
	//    producer count t and buffer capacity N while you train.
	p, err := prisma.Open(prisma.Options{Dir: dir, ControlInterval: 50 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// 3. Train for three epochs. Per epoch: share the shuffled filename
	//    list (the same deterministic shuffle your job script would use),
	//    then read files in that order — each read is served from the
	//    in-memory buffer that the producers fill ahead of you.
	const epochs = 3
	start := time.Now()
	var bytes int64
	for epoch := 0; epoch < epochs; epoch++ {
		plan := p.ShuffledFileList(7, epoch)
		if err := p.SubmitPlan(plan); err != nil {
			log.Fatal(err)
		}
		for _, name := range plan {
			data, err := p.Read(name)
			if err != nil {
				log.Fatalf("read %s: %v", name, err)
			}
			bytes += int64(len(data))
			// <- your preprocess + train step goes here
		}
		fmt.Printf("epoch %d done\n", epoch)
	}
	elapsed := time.Since(start)

	st := p.Stats()
	fmt.Printf("\nread %d files (%.1f MiB) in %v (%.0f files/s)\n",
		st.Reads, float64(bytes)/(1<<20), elapsed.Round(time.Millisecond),
		float64(st.Reads)/elapsed.Seconds())
	fmt.Printf("buffer hits: %d / %d reads (every planned read served from memory)\n", st.Hits, st.Reads)
	fmt.Printf("auto-tuned to t=%d producers, N=%d buffer slots\n", st.Producers, st.BufferCapacity)
}
