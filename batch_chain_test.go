package prisma

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/recordio"
	"github.com/dsrhaslab/prisma-go/internal/sharedcache"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/tiering"
	"github.com/dsrhaslab/prisma-go/internal/trace"
)

// chainWrap names one optional layer of the serving chain, in the canonical
// nesting order Open composes them: recorder innermost (sees device reads),
// then shared cache, then tiering, resilient outermost.
type chainWrap struct {
	recorder, cache, tiering, resilient bool
}

func (w chainWrap) String() string {
	s := ""
	for _, part := range []struct {
		on   bool
		name string
	}{{w.recorder, "recorder"}, {w.cache, "cache"}, {w.tiering, "tiering"}, {w.resilient, "resilient"}} {
		if part.on {
			if s != "" {
				s += "<"
			}
			s += part.name
		}
	}
	if s == "" {
		return "bare"
	}
	return s
}

// chainPermutations is every subset of the four optional wrappers.
func chainPermutations() []chainWrap {
	perms := make([]chainWrap, 0, 16)
	for m := 0; m < 16; m++ {
		perms = append(perms, chainWrap{
			recorder:  m&1 != 0,
			cache:     m&2 != 0,
			tiering:   m&4 != 0,
			resilient: m&8 != 0,
		})
	}
	return perms
}

// packChainDataset writes files records into one recordio shard inside a
// fresh MemBackend and returns the store, index, names, and ground-truth
// payloads. compressed packs with CodecLZ (repetitive payloads so the codec
// actually engages), otherwise CodecNone — the path whose views alias the
// coalescer's shared region buffer.
func packChainDataset(t *testing.T, files, size int, compressed bool) (*storage.MemBackend, *recordio.Index, []string, [][]byte) {
	t.Helper()
	mem := storage.NewMemBackend()
	names := make([]string, files)
	contents := make([][]byte, files)
	var shard bytes.Buffer
	w := recordio.NewWriter(&shard)
	ix := recordio.NewIndex()
	const shardName = "chain/shard-00000.rec"
	for i := range names {
		names[i] = fmt.Sprintf("chain%04d.bin", i)
		buf := make([]byte, size)
		for j := range buf {
			if compressed {
				buf[j] = byte((i + j/64) % 7) // repetitive: compresses
			} else {
				buf[j] = byte(i*31 + j*7 + j>>3)
			}
		}
		contents[i] = buf
		payload, codec := buf, recordio.CodecNone
		if compressed {
			comp, ok := recordio.Compress(buf)
			if !ok {
				t.Fatalf("fixture payload %d unexpectedly incompressible", i)
			}
			payload, codec = comp, recordio.CodecLZ
		}
		off, length, err := w.WriteRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		err = ix.Add(names[i], recordio.Entry{
			Shard: shardName, Offset: off, Length: length,
			Codec: codec, Raw: int64(len(buf)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	mem.Add(shardName, shard.Bytes())
	return mem, ix, names, contents
}

// runChainCell streams the packed dataset through the full prefetch
// pipeline over the given wrapper chain with coalescing budget k (0 =
// per-sample), asserting every delivered payload is bit-identical to the
// packed ground truth, nothing leaks from the pool, and — when coalescing
// is on — the batched counters actually moved (the chain did not silently
// fall back sample-by-sample).
func runChainCell(t *testing.T, wrap chainWrap, compressed bool, k int) {
	t.Helper()
	env := conc.NewReal()
	mem, ix, names, contents := packChainDataset(t, 16, 4<<10, compressed)

	var b storage.Backend = mem
	closers := []func(){}
	if wrap.recorder {
		b = trace.NewRecorder(env, b)
	}
	if wrap.cache {
		sc, err := sharedcache.New(env, b, 64<<20)
		if err != nil {
			t.Fatal(err)
		}
		b = sc
		closers = append(closers, sc.Close)
	}
	if wrap.tiering {
		tb, err := tiering.NewBackend(env, tiering.Config{FastCapacity: 64 << 20, PromoteAfter: 1}, b, nil)
		if err != nil {
			t.Fatal(err)
		}
		b = tb
		closers = append(closers, tb.Close)
	}
	if wrap.resilient {
		cfg := storage.DefaultResilienceConfig()
		cfg.ReadDeadline = 10 * time.Second
		rb, err := storage.NewResilientBackend(env, b, cfg)
		if err != nil {
			t.Fatal(err)
		}
		b = rb
	}
	rr, ok := b.(storage.RangeReader)
	if !ok {
		t.Fatalf("%s: chain lost the RangeReader surface (%T)", wrap, b)
	}
	backend := recordio.NewIndexedBackend(ix, rr)
	pool := mempool.New(mempool.Config{Debug: true})
	backend.SetBufferPool(pool)

	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers:      2,
		MaxProducers:          2,
		InitialBufferCapacity: len(names),
		MaxBufferCapacity:     len(names),
		BatchSamples:          k,
	})
	if err != nil {
		t.Fatal(err)
	}
	stage := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	if err := stage.SubmitPlan(names); err != nil {
		stage.Close()
		t.Fatal(err)
	}
	pf.Start()

	for i, name := range names {
		d, err := stage.Read(name)
		if err != nil {
			stage.Close()
			t.Fatalf("%s k=%d: read %s: %v", wrap, k, name, err)
		}
		if !bytes.Equal(d.Bytes, contents[i]) {
			d.Release()
			stage.Close()
			t.Fatalf("%s k=%d: %s: payload differs from ground truth (%d bytes, want %d)",
				wrap, k, name, d.Size, len(contents[i]))
		}
		d.Release()
	}
	batched, fallbacks := pf.BatchedSamples(), pf.BatchFallbacks()
	stage.Close()
	for _, c := range closers {
		c()
	}
	if k > 1 && batched == 0 && fallbacks == 0 {
		t.Fatalf("%s k=%d: coalescer never engaged (0 batched samples, 0 fallbacks)", wrap, k)
	}
	if leaks := pool.Leaks(); len(leaks) != 0 {
		t.Fatalf("%s k=%d: pool leaks:\n%s", wrap, k, mempool.FormatLeaks(leaks))
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("%s k=%d: %d pooled refs still outstanding", wrap, k, n)
	}
}

// TestBatchChainComposition is the chain-composition property suite: for
// every subset of the serving-chain wrappers nested in canonical order
// between the shard store and the recordio view layer, a coalesced run at
// every budget K delivers byte-for-byte what the per-sample run delivers
// (both are checked against the packed ground truth), with no pooled-ref
// leaks. This is the regression net for range-read bypasses: a wrapper
// that mangles, truncates, or double-releases a vectored read fails here.
func TestBatchChainComposition(t *testing.T) {
	for _, wrap := range chainPermutations() {
		wrap := wrap
		t.Run(wrap.String(), func(t *testing.T) {
			for _, k := range []int{0, 1, 2, 3, 4, 8} {
				runChainCell(t, wrap, false, k)
			}
		})
	}
}

// TestBatchChainCompositionCompressed repeats the property over LZ-packed
// shards (decompression copies out of the region instead of aliasing it)
// for the bare store and the full chain at representative budgets.
func TestBatchChainCompositionCompressed(t *testing.T) {
	full := chainWrap{recorder: true, cache: true, tiering: true, resilient: true}
	for _, wrap := range []chainWrap{{}, full} {
		wrap := wrap
		t.Run(wrap.String(), func(t *testing.T) {
			for _, k := range []int{0, 1, 4, 8} {
				runChainCell(t, wrap, true, k)
			}
		})
	}
}
