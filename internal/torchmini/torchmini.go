// Package torchmini is a miniature PyTorch-style DataLoader — the second
// DL framework substrate of the paper's evaluation (§V-B). PyTorch loads
// data with worker *processes*: worker w handles batches round-robin
// (batch_idx % W == w), reads and preprocesses the batch's samples, and
// hands the assembled batch to the consumer, which delivers batches in
// order. num_workers=0 loads synchronously in the consumer process.
//
// Two variants are provided:
//
//   - DataLoader: native PyTorch behaviour, reading straight from backend
//     storage. Its throughput scales with the worker count the user picked
//     manually — "the number of workers must be chosen manually by users,
//     while the optimal configuration may vary according to the targeted
//     AI workload" (§V-B).
//   - PrismaLoader: the same DataLoader with worker reads intercepted and
//     forwarded to a PRISMA stage (over UNIX-domain-socket clients in real
//     deployments — internal/ipc; in simulation the serialized IPC+buffer
//     cost is carried by the stage buffer's AccessCost). The stage
//     prefetches each epoch's plan ahead of consumption, which is why
//     PRISMA wins at low worker counts; the serialized buffer access is
//     why it loses slightly at 8-16 workers (§V-B).
//
// Both implement train.Pipeline.
package torchmini

import (
	"fmt"
	"sync"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/ipc"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/train"
)

// Costs models the DataLoader's CPU-side per-item costs.
type Costs struct {
	// Preprocess is the per-image decode/augment cost, paid in the worker
	// (or the consumer when Workers == 0).
	Preprocess time.Duration
	// Collate is the per-batch tensor assembly cost, paid where the batch
	// is assembled.
	Collate time.Duration
}

// Validate reports whether the costs are usable.
func (c Costs) Validate() error {
	if c.Preprocess < 0 || c.Collate < 0 {
		return fmt.Errorf("torchmini: negative cost")
	}
	return nil
}

// Config parameterizes a DataLoader.
type Config struct {
	// Workers is num_workers; 0 loads in the consumer process.
	Workers int
	// GlobalBatch is the batch size delivered per iterator step (batch
	// per GPU × GPUs, as the trainer consumes it).
	GlobalBatch int
	// PrefetchFactor is PyTorch's prefetch_factor: each worker keeps up
	// to this many batches in flight.
	PrefetchFactor int
	Costs          Costs
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("torchmini: negative worker count")
	}
	if c.GlobalBatch < 1 {
		return fmt.Errorf("torchmini: global batch %d < 1", c.GlobalBatch)
	}
	if c.Workers > 0 && c.PrefetchFactor < 1 {
		return fmt.Errorf("torchmini: prefetch factor %d < 1", c.PrefetchFactor)
	}
	return c.Costs.Validate()
}

// readFunc performs one sample read; the two variants differ only here.
type readFunc func(name string) error

// DataLoader is the native PyTorch-style loader.
type DataLoader struct {
	env     conc.Env
	backend storage.Backend
	train   *dataset.Manifest
	val     *dataset.Manifest
	seed    int64
	cfg     Config
	iters   []*loaderIter
}

// NewDataLoader builds a native loader.
func NewDataLoader(env conc.Env, backend storage.Backend, trainSet, valSet *dataset.Manifest, seed int64, cfg Config) (*DataLoader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DataLoader{env: env, backend: backend, train: trainSet, val: valSet, seed: seed, cfg: cfg}, nil
}

// TrainIter implements train.Pipeline.
func (d *DataLoader) TrainIter(epoch int) (train.Iterator, error) {
	names := d.train.EpochFileList(d.seed, epoch)
	it := newLoaderIter(d.env, d.cfg, names, func(name string) error {
		_, err := d.backend.ReadFile(name)
		return err
	})
	d.iters = append(d.iters, it)
	return it, nil
}

// ValIter implements train.Pipeline.
func (d *DataLoader) ValIter(epoch int) (train.Iterator, error) {
	names := d.val.EpochFileList(d.seed+1, epoch)
	it := newLoaderIter(d.env, d.cfg, names, func(name string) error {
		_, err := d.backend.ReadFile(name)
		return err
	})
	d.iters = append(d.iters, it)
	return it, nil
}

// Close implements train.Pipeline, releasing any live worker pools.
func (d *DataLoader) Close() {
	for _, it := range d.iters {
		it.teardown()
	}
	d.iters = nil
}

// PrismaLoader is the DataLoader with reads intercepted by a PRISMA stage.
// The complete integration diff against DataLoader — the paper's 35 LoC
// PyTorch change — is: (1) submit each epoch's shuffled filename list,
// (2) route worker reads through the per-worker PRISMA client instead of
// the filesystem.
type PrismaLoader struct {
	env   conc.Env
	stage *core.Stage
	train *dataset.Manifest
	val   *dataset.Manifest
	seed  int64
	cfg   Config
	iters []*loaderIter
}

// NewPrismaLoader builds the PRISMA-backed loader over an existing stage.
func NewPrismaLoader(env conc.Env, stage *core.Stage, trainSet, valSet *dataset.Manifest, seed int64, cfg Config) (*PrismaLoader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &PrismaLoader{env: env, stage: stage, train: trainSet, val: valSet, seed: seed, cfg: cfg}, nil
}

// TrainIter implements train.Pipeline: the epoch plan is shared with the
// data plane before consumption starts, so prefetching begins ahead of the
// epoch ("PRISMA starting prefetching samples before the epoch begins",
// §V-B).
func (p *PrismaLoader) TrainIter(epoch int) (train.Iterator, error) {
	names := p.train.EpochFileList(p.seed, epoch)
	if err := p.stage.SubmitPlan(names); err != nil {
		return nil, err
	}
	it := newLoaderIter(p.env, p.cfg, names, func(name string) error {
		_, err := p.stage.Read(name)
		return err
	})
	p.iters = append(p.iters, it)
	return it, nil
}

// ValIter implements train.Pipeline. Validation files are unplanned and
// bypass through the stage to backend storage.
func (p *PrismaLoader) ValIter(epoch int) (train.Iterator, error) {
	names := p.val.EpochFileList(p.seed+1, epoch)
	it := newLoaderIter(p.env, p.cfg, names, func(name string) error {
		_, err := p.stage.Read(name)
		return err
	})
	p.iters = append(p.iters, it)
	return it, nil
}

// Stage exposes the underlying stage.
func (p *PrismaLoader) Stage() *core.Stage { return p.stage }

// NewPrismaLoaderIPC builds a PRISMA-backed loader whose workers read over
// real UNIX-domain-socket clients — the literal §IV deployment ("for each
// spawned process, a PRISMA client instance is created"). It requires a
// real-time environment (sockets cannot run under virtual time); the
// simulated experiments model the same path through BufferAccessCost.
// dial is called once per worker (plus once for the consumer when
// Workers == 0); the returned clients are closed by Close.
func NewPrismaLoaderIPC(env conc.Env, dial func() (*ipc.Client, error), planner *ipc.Client, trainSet, valSet *dataset.Manifest, seed int64, cfg Config) (*PrismaIPCLoader, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	clients := cfg.Workers
	if clients == 0 {
		clients = 1
	}
	l := &PrismaIPCLoader{env: env, planner: planner, train: trainSet, val: valSet, seed: seed, cfg: cfg}
	for i := 0; i < clients; i++ {
		c, err := dial()
		if err != nil {
			l.Close()
			return nil, err
		}
		l.clients = append(l.clients, c)
	}
	return l, nil
}

// PrismaIPCLoader is the real-socket variant of PrismaLoader.
type PrismaIPCLoader struct {
	env     conc.Env
	planner *ipc.Client
	clients []*ipc.Client
	train   *dataset.Manifest
	val     *dataset.Manifest
	seed    int64
	cfg     Config
	iters   []*loaderIter
}

// read builds the per-worker read function: worker w uses its own client.
func (l *PrismaIPCLoader) readVia() readFunc {
	var next int
	var mu sync.Mutex
	return func(name string) error {
		// Round-robin client assignment approximates one client per
		// worker: worker goroutines grab distinct clients because batch
		// handling keeps them out of phase; contention on one client only
		// serializes, never corrupts (Client is mutex-guarded).
		mu.Lock()
		c := l.clients[next%len(l.clients)]
		next++
		mu.Unlock()
		_, err := c.Read(name)
		return err
	}
}

// TrainIter implements train.Pipeline.
func (l *PrismaIPCLoader) TrainIter(epoch int) (train.Iterator, error) {
	names := l.train.EpochFileList(l.seed, epoch)
	if err := l.planner.SubmitPlan(names); err != nil {
		return nil, err
	}
	it := newLoaderIter(l.env, l.cfg, names, l.readVia())
	l.iters = append(l.iters, it)
	return it, nil
}

// ValIter implements train.Pipeline (unplanned: bypass reads).
func (l *PrismaIPCLoader) ValIter(epoch int) (train.Iterator, error) {
	names := l.val.EpochFileList(l.seed+1, epoch)
	it := newLoaderIter(l.env, l.cfg, names, l.readVia())
	l.iters = append(l.iters, it)
	return it, nil
}

// Close tears down worker pools and closes every client.
func (l *PrismaIPCLoader) Close() {
	for _, it := range l.iters {
		it.teardown()
	}
	l.iters = nil
	for _, c := range l.clients {
		_ = c.Close()
	}
	l.clients = nil
}

// Close implements train.Pipeline, releasing any live worker pools; the
// stage itself is owned by the caller.
func (p *PrismaLoader) Close() {
	for _, it := range p.iters {
		it.teardown()
	}
	p.iters = nil
}

// ---------------------------------------------------------------------------
// Iterator machinery

// loaderIter delivers samples batch-by-batch. With Workers == 0 it loads
// synchronously; otherwise worker threads assemble batches round-robin and
// the consumer takes them in order from a bounded reorder buffer.
type loaderIter struct {
	env  conc.Env
	cfg  Config
	read readFunc

	// Synchronous mode state.
	names []string
	i     int

	// Worker mode state.
	batches   [][]string
	nextBatch int
	remaining int
	buf       *core.Buffer
	closed    bool
}

func newLoaderIter(env conc.Env, cfg Config, names []string, read readFunc) *loaderIter {
	it := &loaderIter{env: env, cfg: cfg, read: read, names: names}
	if cfg.Workers == 0 {
		return it
	}
	// Partition into batches.
	for start := 0; start < len(names); start += cfg.GlobalBatch {
		end := start + cfg.GlobalBatch
		if end > len(names) {
			end = len(names)
		}
		it.batches = append(it.batches, names[start:end])
	}
	capacity := cfg.Workers * cfg.PrefetchFactor
	if capacity < 1 {
		capacity = 1
	}
	it.buf = core.NewBuffer(env, capacity, 0)
	for w := 0; w < cfg.Workers; w++ {
		w := w
		env.Go(fmt.Sprintf("torch-worker-%d", w), func() { it.workerLoop(w) })
	}
	return it
}

func batchKey(idx int) string { return fmt.Sprintf("b%07d", idx) }

// workerLoop assembles this worker's round-robin share of batches.
func (it *loaderIter) workerLoop(w int) {
	for idx := w; idx < len(it.batches); idx += it.cfg.Workers {
		var failure error
		for _, name := range it.batches[idx] {
			if err := it.read(name); err != nil {
				failure = err
				break
			}
			if it.cfg.Costs.Preprocess > 0 {
				it.env.Sleep(it.cfg.Costs.Preprocess)
			}
		}
		if failure == nil && it.cfg.Costs.Collate > 0 {
			it.env.Sleep(it.cfg.Costs.Collate)
		}
		if it.buf.Put(core.Item{Name: batchKey(idx), Err: failure}) != nil {
			return // iterator torn down
		}
	}
}

// Next implements train.Iterator.
func (it *loaderIter) Next() (bool, error) {
	if it.cfg.Workers == 0 {
		return it.nextSync()
	}
	if it.remaining > 0 {
		it.remaining--
		return true, nil
	}
	if it.nextBatch >= len(it.batches) {
		return false, nil
	}
	item, ok := it.buf.Take(batchKey(it.nextBatch))
	if !ok {
		return false, core.ErrClosed
	}
	if item.Err != nil {
		it.teardown() // release workers blocked on the reorder buffer
		return false, item.Err
	}
	size := len(it.batches[it.nextBatch])
	it.nextBatch++
	it.remaining = size - 1
	return true, nil
}

// teardown closes the reorder buffer so workers stop producing.
func (it *loaderIter) teardown() {
	if it.buf != nil && !it.closed {
		it.closed = true
		it.buf.Close()
	}
}

// nextSync is the Workers == 0 path: load in the consumer.
func (it *loaderIter) nextSync() (bool, error) {
	if it.i >= len(it.names) {
		return false, nil
	}
	name := it.names[it.i]
	if err := it.read(name); err != nil {
		return false, err
	}
	if it.cfg.Costs.Preprocess > 0 {
		it.env.Sleep(it.cfg.Costs.Preprocess)
	}
	it.i++
	// Collate at each batch boundary.
	if it.cfg.Costs.Collate > 0 && it.i%it.cfg.GlobalBatch == 0 {
		it.env.Sleep(it.cfg.Costs.Collate)
	}
	return true, nil
}
