package torchmini

import (
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/ipc"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/train"
)

func runSim(t *testing.T, body func(env conc.Env)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("test-body", func(*sim.Process) { body(env) })
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func fixtures(env conc.Env, nTrain, nVal int, lat time.Duration, channels int) (*dataset.Manifest, *dataset.Manifest, *storage.ModeledBackend) {
	ts := make([]dataset.Sample, nTrain)
	for i := range ts {
		ts[i] = dataset.Sample{Name: fmt.Sprintf("train/%04d", i), Size: 100_000}
	}
	vs := make([]dataset.Sample, nVal)
	for i := range vs {
		vs[i] = dataset.Sample{Name: fmt.Sprintf("val/%04d", i), Size: 100_000}
	}
	man := dataset.MustNew(append(append([]dataset.Sample{}, ts...), vs...))
	dev, err := storage.NewDevice(env, storage.DeviceSpec{BaseLatency: lat, BytesPerSecond: 1e15, Channels: channels})
	if err != nil {
		panic(err)
	}
	return dataset.MustNew(ts), dataset.MustNew(vs), storage.NewModeledBackend(man, dev, nil)
}

func drain(t *testing.T, it train.Iterator) int {
	t.Helper()
	n := 0
	for {
		ok, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return n
		}
		n++
	}
}

func cfg(workers, batch int) Config {
	return Config{Workers: workers, GlobalBatch: batch, PrefetchFactor: 2}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Workers: -1, GlobalBatch: 4, PrefetchFactor: 2},
		{Workers: 2, GlobalBatch: 0, PrefetchFactor: 2},
		{Workers: 2, GlobalBatch: 4, PrefetchFactor: 0},
		{Workers: 0, GlobalBatch: 4, Costs: Costs{Preprocess: -1}},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := cfg(0, 4).Validate(); err != nil {
		t.Errorf("workers=0 rejected: %v", err)
	}
}

func TestZeroWorkersIsSerial(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 16, 4, time.Millisecond, 8)
		dl, err := NewDataLoader(env, backend, trainMan, valMan, 7, cfg(0, 4))
		if err != nil {
			t.Fatal(err)
		}
		it, _ := dl.TrainIter(0)
		start := env.Now()
		if n := drain(t, it); n != 16 {
			t.Fatalf("drained %d, want 16", n)
		}
		if got := env.Now() - start; got != 16*time.Millisecond {
			t.Fatalf("elapsed %v, want 16ms (serial)", got)
		}
		dl.Close()
	})
}

func TestWorkersParallelize(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 64, 4, time.Millisecond, 8)
		dl, _ := NewDataLoader(env, backend, trainMan, valMan, 7, cfg(4, 8))
		it, _ := dl.TrainIter(0)
		start := env.Now()
		if n := drain(t, it); n != 64 {
			t.Fatalf("drained %d, want 64", n)
		}
		elapsed := env.Now() - start
		// 8 batches over 4 workers: each worker reads 2 batches × 8 samples
		// serially = 16ms; well under the 64ms serial bound.
		if elapsed > 20*time.Millisecond {
			t.Fatalf("elapsed %v, want ≈16ms with 4 workers", elapsed)
		}
		dl.Close()
	})
}

func TestBatchesDeliveredInOrderDespiteWorkerSkew(t *testing.T) {
	// Workers finish out of order (different file sizes), but the consumer
	// must still see batches in index order. We detect misordering through
	// the per-batch boundary: batch i's samples all arrive before batch
	// i+1's first sample.
	runSim(t, func(env conc.Env) {
		// Uneven sample sizes: batch 0 is huge (slow), batch 1 tiny.
		samples := []dataset.Sample{
			{Name: "t0", Size: 50_000_000}, {Name: "t1", Size: 50_000_000},
			{Name: "t2", Size: 1}, {Name: "t3", Size: 1},
		}
		man := dataset.MustNew(samples)
		dev, _ := storage.NewDevice(env, storage.DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e9, Channels: 8})
		backend := storage.NewModeledBackend(man, dev, nil)
		// Identity "shuffle": single epoch list == manifest order is not
		// guaranteed, so read the iterator's own batch layout instead.
		dl, _ := NewDataLoader(env, backend, man, man, 7, cfg(2, 2))
		itRaw, _ := dl.TrainIter(0)
		it := itRaw.(*loaderIter)
		var consumedBatches []int
		for {
			before := it.nextBatch
			ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if it.nextBatch != before {
				consumedBatches = append(consumedBatches, it.nextBatch-1)
			}
		}
		for i, b := range consumedBatches {
			if b != i {
				t.Fatalf("batch order %v, want in-order", consumedBatches)
			}
		}
		dl.Close()
	})
}

func TestPrefetchFactorBoundsReadahead(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 200, 4, time.Millisecond, 8)
		c := cfg(2, 4) // capacity = 2 workers × 2 = 4 batches
		dl, _ := NewDataLoader(env, backend, trainMan, valMan, 7, c)
		itRaw, _ := dl.TrainIter(0)
		it := itRaw.(*loaderIter)
		// Let workers run ahead without consuming.
		env.Sleep(200 * time.Millisecond)
		if got := it.buf.Len(); got > 4+2 { // capacity + in-flight awaited overshoot
			t.Fatalf("readahead %d batches, want <= 6 (bounded)", got)
		}
		drain(t, itRaw)
		dl.Close()
	})
}

func TestWorkerErrorSurfacesAndReleasesWorkers(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("driver", func(*sim.Process) {
		trainMan, valMan, backend := fixtures(env, 40, 4, time.Millisecond, 8)
		faulty := storage.NewFaultyBackend(env, backend)
		faulty.FailName(trainMan.EpochFileList(7, 0)[5]) // inside batch 1
		dl, _ := NewDataLoader(env, faulty, trainMan, valMan, 7, cfg(2, 4))
		it, _ := dl.TrainIter(0)
		sawErr := false
		for i := 0; i < 40; i++ {
			ok, err := it.Next()
			if err != nil {
				sawErr = true
				break
			}
			if !ok {
				break
			}
		}
		if !sawErr {
			t.Error("worker error never surfaced")
		}
		dl.Close()
	})
	// The error teardown must leave no worker parked forever (Run would
	// report a deadlock).
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func prismaStage(env conc.Env, backend storage.Backend, accessCost time.Duration) *core.Stage {
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers: 4, MaxProducers: 16,
		InitialBufferCapacity: 32, MaxBufferCapacity: 256,
		BufferAccessCost: accessCost,
	})
	if err != nil {
		panic(err)
	}
	st := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	pf.Start()
	return st
}

func TestPrismaLoaderBeatsNativeAtLowWorkers(t *testing.T) {
	// The Fig. 4 left side: with 0 workers, native PyTorch loads serially
	// while PRISMA's producers prefetched ahead.
	s := sim.New()
	env := conc.NewSimEnv(s)
	var nativeT, prismaT time.Duration
	s.Spawn("driver", func(*sim.Process) {
		trainMan, valMan, backend := fixtures(env, 400, 4, time.Millisecond, 8)
		dl, _ := NewDataLoader(env, backend, trainMan, valMan, 7, cfg(0, 8))
		it, _ := dl.TrainIter(0)
		start := env.Now()
		drain(t, it)
		nativeT = env.Now() - start
		dl.Close()

		trainMan2, valMan2, backend2 := fixtures(env, 400, 4, time.Millisecond, 8)
		st := prismaStage(env, backend2, 20*time.Microsecond)
		pl, _ := NewPrismaLoader(env, st, trainMan2, valMan2, 7, cfg(0, 8))
		pit, _ := pl.TrainIter(0)
		start = env.Now()
		drain(t, pit)
		prismaT = env.Now() - start
		pl.Close()
		st.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if prismaT*2 > nativeT {
		t.Fatalf("prisma %v not clearly faster than native 0-worker %v", prismaT, nativeT)
	}
}

func TestPrismaLoaderLosesAtHighWorkers(t *testing.T) {
	// The Fig. 4 right side: at 8 workers, native parallel loading beats
	// PRISMA's serialized buffer access.
	s := sim.New()
	env := conc.NewSimEnv(s)
	var nativeT, prismaT time.Duration
	s.Spawn("driver", func(*sim.Process) {
		trainMan, valMan, backend := fixtures(env, 800, 4, time.Millisecond, 8)
		dl, _ := NewDataLoader(env, backend, trainMan, valMan, 7, cfg(8, 8))
		it, _ := dl.TrainIter(0)
		start := env.Now()
		drain(t, it)
		nativeT = env.Now() - start
		dl.Close()

		trainMan2, valMan2, backend2 := fixtures(env, 800, 4, time.Millisecond, 8)
		st := prismaStage(env, backend2, 150*time.Microsecond) // heavy IPC serialization
		pl, _ := NewPrismaLoader(env, st, trainMan2, valMan2, 7, cfg(8, 8))
		pit, _ := pl.TrainIter(0)
		start = env.Now()
		drain(t, pit)
		prismaT = env.Now() - start
		pl.Close()
		st.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if prismaT <= nativeT {
		t.Fatalf("prisma %v not slower than native 8-worker %v (sync bottleneck missing)", prismaT, nativeT)
	}
}

func TestPrismaLoaderValBypasses(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 16, 8, time.Millisecond, 8)
		st := prismaStage(env, backend, 0)
		pl, _ := NewPrismaLoader(env, st, trainMan, valMan, 7, cfg(2, 4))
		it, _ := pl.TrainIter(0)
		drain(t, it)
		vit, _ := pl.ValIter(0)
		if n := drain(t, vit); n != 8 {
			t.Fatalf("val drained %d, want 8", n)
		}
		stats := st.Stats()
		if stats.Hits != 16 || stats.Bypasses != 8 {
			t.Fatalf("hits/bypasses = %d/%d, want 16/8", stats.Hits, stats.Bypasses)
		}
		pl.Close()
		st.Close()
	})
}

func TestEndToEndTorchTraining(t *testing.T) {
	runSim(t, func(env conc.Env) {
		model := train.Model{Name: "tiny", ComputePerImage: 10 * time.Microsecond, StepOverhead: 100 * time.Microsecond, ValComputeFactor: 0.5}
		tcfg := train.Config{Model: model, BatchPerGPU: 2, GPUs: 4, Epochs: 2, Validation: true}
		trainMan, valMan, backend := fixtures(env, 64, 8, time.Millisecond, 8)
		dl, _ := NewDataLoader(env, backend, trainMan, valMan, 7, cfg(2, 8))
		gpus := train.NewGPUCluster(env, 4)
		res, err := train.Run(env, tcfg, dl, gpus)
		if err != nil {
			t.Fatal(err)
		}
		if res.TrainSamples != 128 || res.ValSamples != 16 {
			t.Fatalf("samples = %d/%d, want 128/16", res.TrainSamples, res.ValSamples)
		}
		dl.Close()
	})
}

func TestPrismaLoaderIPCEndToEnd(t *testing.T) {
	// The literal §IV deployment: real UNIX sockets, one client per
	// worker, plan submitted over the wire, reads served from the remote
	// stage's buffer — end-to-end under the real-time environment.
	dir := t.TempDir()
	samples := make([]dataset.Sample, 32)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("train/%03d.jpg", i), Size: 2048}
	}
	vs := []dataset.Sample{{Name: "val/000.jpg", Size: 2048}}
	all := dataset.MustNew(append(append([]dataset.Sample{}, samples...), vs...))
	if err := dataset.Generate(dir, all, 3); err != nil {
		t.Fatal(err)
	}
	trainMan := dataset.MustNew(samples)
	valMan := dataset.MustNew(vs)

	env := conc.NewReal()
	backend := storage.NewDirBackend(dir)
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers: 2, MaxProducers: 8, InitialBufferCapacity: 16, MaxBufferCapacity: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	stage := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	pf.Start()
	defer stage.Close()

	sock := t.TempDir() + "/loader.sock"
	srv, err := ipc.Serve(sock, stage)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	planner, err := ipc.Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer planner.Close()
	loader, err := NewPrismaLoaderIPC(env, func() (*ipc.Client, error) { return ipc.Dial(sock) },
		planner, trainMan, valMan, 7, cfg(4, 8))
	if err != nil {
		t.Fatal(err)
	}
	defer loader.Close()

	it, err := loader.TrainIter(0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 1)
	go func() {
		n := 0
		for {
			ok, err := it.Next()
			if err != nil {
				t.Errorf("Next: %v", err)
				break
			}
			if !ok {
				break
			}
			n++
		}
		done <- n
	}()
	select {
	case n := <-done:
		if n != 32 {
			t.Fatalf("drained %d, want 32", n)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("IPC loader hung")
	}
	if stats := stage.Stats(); stats.Hits != 32 {
		t.Fatalf("remote hits = %d, want 32", stats.Hits)
	}
	// Validation bypasses over the same sockets.
	vit, err := loader.ValIter(0)
	if err != nil {
		t.Fatal(err)
	}
	vdone := make(chan struct{})
	go func() {
		defer close(vdone)
		for {
			ok, err := vit.Next()
			if err != nil || !ok {
				return
			}
		}
	}()
	select {
	case <-vdone:
	case <-time.After(20 * time.Second):
		t.Fatal("val iteration hung")
	}
	if stats := stage.Stats(); stats.Bypasses != 1 {
		t.Fatalf("bypasses = %d, want 1", stats.Bypasses)
	}
}

func TestPrismaLoaderIPCDialFailureCleansUp(t *testing.T) {
	env := conc.NewReal()
	trainMan := dataset.MustNew([]dataset.Sample{{Name: "a", Size: 1}})
	calls := 0
	_, err := NewPrismaLoaderIPC(env, func() (*ipc.Client, error) {
		calls++
		return nil, fmt.Errorf("refused")
	}, nil, trainMan, trainMan, 1, cfg(4, 8))
	if err == nil {
		t.Fatal("dial failure swallowed")
	}
	if calls != 1 {
		t.Fatalf("dial attempts = %d, want fail-fast 1", calls)
	}
}

func TestPrismaFlatAcrossWorkerCounts(t *testing.T) {
	// "PRISMA performs similarly for different combinations of PyTorch
	// workers" (§V-B): spread across 0/2/8 workers should be small.
	s := sim.New()
	env := conc.NewSimEnv(s)
	var times []time.Duration
	s.Spawn("driver", func(*sim.Process) {
		for _, w := range []int{0, 2, 8} {
			trainMan, valMan, backend := fixtures(env, 400, 4, time.Millisecond, 8)
			st := prismaStage(env, backend, 50*time.Microsecond)
			pl, _ := NewPrismaLoader(env, st, trainMan, valMan, 7, cfg(w, 8))
			it, _ := pl.TrainIter(0)
			start := env.Now()
			drain(t, it)
			times = append(times, env.Now()-start)
			pl.Close()
			st.Close()
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	min, max := times[0], times[0]
	for _, d := range times {
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if float64(max) > 1.6*float64(min) {
		t.Fatalf("PRISMA times %v vary too much across worker counts", times)
	}
}
