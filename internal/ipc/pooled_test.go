package ipc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// startPooledServer is startServer with a debug-mode buffer pool threaded
// through backend and stage, returning the pool for leak audits.
func startPooledServer(t *testing.T, nFiles int) (*mempool.Pool, []string, string, string) {
	t.Helper()
	dir := t.TempDir()
	samples := make([]dataset.Sample, nFiles)
	names := make([]string, nFiles)
	for i := range samples {
		samples[i] = dataset.Sample{Name: "p" + string(rune('a'+i%26)) + ".bin", Size: int64(2048 + 61*i)}
		names[i] = samples[i].Name
	}
	man := dataset.MustNew(samples)
	if err := dataset.Generate(dir, man, 43); err != nil {
		t.Fatal(err)
	}
	env := conc.NewReal()
	backend := storage.NewDirBackend(dir)
	pool := mempool.New(mempool.Config{Debug: true})
	backend.SetBufferPool(pool)
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers: 2, MaxProducers: 8, InitialBufferCapacity: 8, MaxBufferCapacity: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	stage := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	stage.SetBufferPool(pool)
	pf.Start()
	sock := filepath.Join(t.TempDir(), "pooled.sock")
	srv, err := Serve(sock, stage)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		stage.Close()
	})
	return pool, names, sock, dir
}

// TestPooledReadRoundTrip drives planned and bypass reads through pooled
// server and client: delivered bytes must match the on-disk files exactly,
// every response must carry a pooled lease, and after the consumer releases
// them both pools must audit clean (zero outstanding, empty leak ledger).
func TestPooledReadRoundTrip(t *testing.T) {
	serverPool, names, sock, dir := startPooledServer(t, 8)
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clientPool := mempool.New(mempool.Config{Debug: true})
	c.SetBufferPool(clientPool)

	if err := c.SubmitPlan(names); err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		d, err := c.Read(n)
		if err != nil {
			t.Fatalf("Read(%s): %v", n, err)
		}
		if d.Ref == nil {
			t.Fatalf("Read(%s): no pooled lease on response", n)
		}
		want, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(d.Bytes, want) {
			t.Fatalf("Read(%s): delivered bytes differ from file content", n)
		}
		d.Release()
	}

	if got := clientPool.Stats().Outstanding; got != 0 {
		t.Fatalf("client pool: %d outstanding leases after release\n%s",
			got, mempool.FormatLeaks(clientPool.Leaks()))
	}
	// The server's leases end when responses hit the socket; poll briefly
	// because the last write completes asynchronously to the client's read.
	deadline := time.Now().Add(2 * time.Second)
	for serverPool.Stats().Outstanding != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("server pool: %d outstanding leases\n%s",
				serverPool.Stats().Outstanding, mempool.FormatLeaks(serverPool.Leaks()))
		}
		time.Sleep(time.Millisecond)
	}
	if got := clientPool.Stats().Gets; got != int64(len(names)) {
		t.Fatalf("client pool served %d leases, want %d (audit must not be vacuous)", got, len(names))
	}
}

// truncatingReadServer answers its first OpRead with a correct frame header
// and half the payload, then hangs up; subsequent connections answer reads
// correctly with deterministic content. It exercises the pooled client's
// broken-mid-payload path.
type truncatingReadServer struct {
	listener net.Listener
	payload  []byte
	conns    int
}

func startTruncatingReadServer(t *testing.T, payload []byte) (*truncatingReadServer, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "trunc.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	ts := &truncatingReadServer{listener: l, payload: payload}
	go ts.acceptLoop()
	t.Cleanup(func() { l.Close() })
	return ts, sock
}

func (ts *truncatingReadServer) acceptLoop() {
	for {
		conn, err := ts.listener.Accept()
		if err != nil {
			return
		}
		ts.conns++
		go ts.serve(conn, ts.conns == 1)
	}
}

func (ts *truncatingReadServer) serve(conn net.Conn, truncate bool) {
	defer conn.Close()
	for {
		opcode, trace, _, err := readFrame(conn)
		if err != nil {
			return
		}
		if opcode != OpRead {
			_ = writeFrame(conn, opcode, trace, okResponse(nil))
			continue
		}
		head := []byte{statusOK}
		head = binary.AppendUvarint(head, uint64(len(ts.payload)))
		head = binary.AppendUvarint(head, uint64(len(ts.payload)))
		full := append(head, ts.payload...)
		if !truncate {
			_ = writeFrame(conn, opcode, trace, full)
			continue
		}
		// Correct frame header, then only half the payload: the client's
		// pooled decode dies inside the payload ReadFull.
		var hdr [13]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(full)+9))
		hdr[4] = opcode
		binary.BigEndian.PutUint64(hdr[5:13], trace)
		_, _ = conn.Write(hdr[:])
		_, _ = conn.Write(full[:len(full)/2])
		return
	}
}

// TestPooledReadBrokenMidPayload breaks the stream halfway through a pooled
// payload: the client must surface ErrConnBroken, release the half-filled
// lease (zero outstanding — no leak), and the next read on the redialed
// connection must deliver the complete, correct payload, never a recycled
// or half-stale buffer.
func TestPooledReadBrokenMidPayload(t *testing.T) {
	payload := make([]byte, 32<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	_, sock := startTruncatingReadServer(t, payload)
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pool := mempool.New(mempool.Config{Debug: true})
	c.SetBufferPool(pool)

	_, err = c.Read("sample.bin")
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("Read over truncated payload = %v, want ErrConnBroken", err)
	}
	if got := pool.Stats().Outstanding; got != 0 {
		t.Fatalf("half-received lease leaked: %d outstanding\n%s", got, mempool.FormatLeaks(pool.Leaks()))
	}
	if !c.Broken() {
		t.Fatal("connection not poisoned after mid-payload failure")
	}

	d, err := c.Read("sample.bin")
	if err != nil {
		t.Fatalf("Read after redial: %v", err)
	}
	if d.Ref == nil {
		t.Fatal("redialed read returned no pooled lease")
	}
	if !bytes.Equal(d.Bytes, payload) {
		t.Fatal("redialed read delivered wrong bytes (stale or recycled buffer?)")
	}
	d.Release()
	if got := pool.Stats().Outstanding; got != 0 {
		t.Fatalf("%d outstanding leases after release", got)
	}
	// In debug mode the aborted lease was poisoned on release; the fresh
	// delivery above proving byte equality shows the recycled buffer was
	// fully overwritten by payload bytes, not served half-stale.
	if got := pool.Stats().Hits; got < 1 {
		t.Fatalf("pool hits = %d, want >= 1 (second read should recycle the aborted buffer)", got)
	}
}

// TestPooledReadRemoteErrorKeepsStream: a clean server-side error on the
// pooled path must surface as RemoteError without poisoning the stream or
// leaking a lease.
func TestPooledReadRemoteErrorKeepsStream(t *testing.T) {
	_, names, sock, _ := startPooledServer(t, 2)
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pool := mempool.New(mempool.Config{Debug: true})
	c.SetBufferPool(pool)

	_, err = c.Read("no-such-file.bin")
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("Read(missing) = %v, want RemoteError", err)
	}
	if c.Broken() {
		t.Fatal("clean remote error poisoned the pooled stream")
	}
	if got := pool.Stats().Outstanding; got != 0 {
		t.Fatalf("remote error leaked %d leases", got)
	}
	d, err := c.Read(names[0])
	if err != nil {
		t.Fatalf("Read after remote error: %v", err)
	}
	d.Release()
	if got := c.Reconnects(); got != 0 {
		t.Fatalf("Reconnects = %d, want 0", got)
	}
}

// TestPooledAndUnpooledClientsAgree runs the same reads through a pooled
// and an unpooled client against one pooled server: the delivered bytes
// must be bit-for-bit identical (the wire format does not change with
// pooling on either side).
func TestPooledAndUnpooledClientsAgree(t *testing.T) {
	_, names, sock, _ := startPooledServer(t, 6)
	pooled, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer pooled.Close()
	pooled.SetBufferPool(mempool.New(mempool.Config{Debug: true}))
	plain, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	for _, n := range names {
		dp, err := pooled.Read(n)
		if err != nil {
			t.Fatalf("pooled Read(%s): %v", n, err)
		}
		du, err := plain.Read(n)
		if err != nil {
			t.Fatalf("plain Read(%s): %v", n, err)
		}
		if !bytes.Equal(dp.Bytes, du.Bytes) {
			t.Fatalf("Read(%s): pooled and unpooled clients delivered different bytes", n)
		}
		if dp.Ref == nil {
			t.Fatalf("pooled client returned no lease for %s", n)
		}
		if du.Ref != nil {
			t.Fatalf("unpooled client returned a lease for %s", n)
		}
		dp.Release()
	}
}
