package ipc

import (
	"errors"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/tenancy"
)

// severConnsForTest force-closes every live server-side connection,
// simulating a server-side drop so client redial paths can be exercised.
func (s *Server) severConnsForTest() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// tenantFixture wires a tenancy manager (with an injectable load) into a
// served stage: the server authenticates hellos against it and the stage
// consults it per read.
func tenantFixture(t *testing.T, nFiles int, cfg tenancy.Config) (*Server, *tenancy.Manager, []string, string) {
	t.Helper()
	srv, stage, names, sock := startServer(t, nFiles)
	if cfg.Capacity == 0 {
		cfg.Capacity = 10_000
	}
	mgr, err := tenancy.New(conc.NewReal(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	stage.SetTenantGate(mgr)
	srv.SetTenantManager(mgr)
	return srv, mgr, names, sock
}

func TestHelloEstablishesTenant(t *testing.T) {
	_, mgr, names, sock := tenantFixture(t, 4, tenancy.Config{})
	if err := mgr.Register(tenancy.Spec{Name: "job-a"}); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Untagged reads land on the default tenant.
	if _, err := c.Read(names[0]); err != nil {
		t.Fatal(err)
	}
	// Hello switches the connection's identity for all later reads.
	resolved, err := c.Hello("job-a", "")
	if err != nil || resolved != "job-a" {
		t.Fatalf("Hello = %q, %v", resolved, err)
	}
	if _, err := c.Read(names[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(names[2]); err != nil {
		t.Fatal(err)
	}

	var def, jobA tenancy.TenantStats
	for _, ts := range mgr.Stats().Tenants {
		switch ts.Name {
		case tenancy.DefaultTenant:
			def = ts
		case "job-a":
			jobA = ts
		}
	}
	if def.Admitted != 1 {
		t.Fatalf("default admitted = %d, want 1", def.Admitted)
	}
	if jobA.Admitted != 2 {
		t.Fatalf("job-a admitted = %d, want 2", jobA.Admitted)
	}
	if jobA.BytesRead == 0 {
		t.Fatal("job-a bytes not attributed")
	}
}

func TestHelloAuthRejected(t *testing.T) {
	_, mgr, _, sock := tenantFixture(t, 1, tenancy.Config{})
	if err := mgr.Register(tenancy.Spec{Name: "secure", Secret: "pw"}); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello("secure", "wrong"); err == nil {
		t.Fatal("bad secret accepted over the wire")
	}
	var remote *RemoteError
	if _, err := c.Hello("secure", "nope"); !errors.As(err, &remote) {
		t.Fatalf("auth failure = %T, want RemoteError", err)
	}
	// The failed hello must not have assumed the identity.
	if resolved, err := c.Hello("", ""); err != nil || resolved != tenancy.DefaultTenant {
		t.Fatalf("fallback hello = %q, %v", resolved, err)
	}
}

func TestHelloWithoutManagerAccepted(t *testing.T) {
	_, _, names, sock := startServer(t, 1)
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resolved, err := c.Hello("anyone", ""); err != nil || resolved != "anyone" {
		t.Fatalf("single-tenant hello = %q, %v", resolved, err)
	}
	if _, err := c.Read(names[0]); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadShedsTypedOverWire drives the server into overload and
// asserts a shed read surfaces client-side as a typed, retryable
// OverloadError with the server's retry-after hint — never a hang, a
// silent drop, or a poisoned connection.
func TestOverloadShedsTypedOverWire(t *testing.T) {
	depth := 0
	_, mgr, names, sock := tenantFixture(t, 4, tenancy.Config{
		Capacity:      1000,
		Burst:         2,
		MaxQueueDepth: 10,
		MaxRetryAfter: time.Second,
		Load:          func() tenancy.Load { return tenancy.Load{QueueDepth: depth} },
	})
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	depth = 100
	mgr.Tick(100 * time.Millisecond)

	var oe *tenancy.OverloadError
	shed := false
	for i := 0; i < 20; i++ {
		_, err := c.Read(names[i%len(names)])
		if err == nil {
			continue
		}
		if !errors.Is(err, tenancy.ErrOverloaded) {
			t.Fatalf("read error %v, want ErrOverloaded", err)
		}
		if !errors.As(err, &oe) {
			t.Fatalf("read error %T does not unwrap to *OverloadError", err)
		}
		shed = true
		break
	}
	if !shed {
		t.Fatal("server never shed with burst 2 and 20 rapid reads")
	}
	if oe.RetryAfter <= 0 || oe.RetryAfter > time.Second {
		t.Fatalf("retry-after %v outside (0, 1s]", oe.RetryAfter)
	}
	if c.Broken() {
		t.Fatal("typed shed poisoned the connection")
	}

	// Recovery: load subsides and the same connection reads again.
	depth = 0
	mgr.Tick(100 * time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.Read(names[0]); err == nil {
			break
		} else if !errors.Is(err, tenancy.ErrOverloaded) {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("no recovery after overload subsided")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestOverloadRetryHonored: with OverloadRetries configured, the client
// waits out the hint and resends, so the caller sees a slow success
// instead of an error.
func TestOverloadRetryHonored(t *testing.T) {
	depth := 0
	_, mgr, names, sock := tenantFixture(t, 2, tenancy.Config{
		Capacity:      1000,
		Burst:         1,
		MaxQueueDepth: 10,
		MaxRetryAfter: 500 * time.Millisecond,
		Load:          func() tenancy.Load { return tenancy.Load{QueueDepth: depth} },
	})
	c, err := DialWithConfig(sock, DialConfig{OverloadRetries: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Establish demand so the arbiter grants a real rate (an idle tenant
	// drops to the 1 req/s no-starvation floor, which would make the
	// retry-after hints pointlessly long for a test).
	for i := 0; i < 30; i++ {
		if _, err := c.Read(names[i%len(names)]); err != nil {
			t.Fatal(err)
		}
	}
	depth = 100
	mgr.Tick(100 * time.Millisecond)
	for i := 0; i < 10; i++ {
		if _, err := c.Read(names[i%len(names)]); err != nil {
			t.Fatalf("read %d with overload retries = %v, want success after backoff", i, err)
		}
	}
}

func TestTenantsAndSetTenantOverWire(t *testing.T) {
	_, _, _, sock := tenantFixture(t, 1, tenancy.Config{Capacity: 500})
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello("job-b", ""); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Capacity != 500 || len(snap.Tenants) != 2 {
		t.Fatalf("snapshot = %+v, want capacity 500 and 2 tenants", snap)
	}
	if err := c.SetTenant("job-b", 4, 1<<20); err != nil {
		t.Fatal(err)
	}
	snap, _ = c.Tenants()
	found := false
	for _, ts := range snap.Tenants {
		if ts.Name == "job-b" {
			found = true
			if ts.Weight != 4 || ts.ByteBudget != 1<<20 {
				t.Fatalf("job-b after SetTenant = %+v", ts)
			}
		}
	}
	if !found {
		t.Fatal("job-b missing from snapshot")
	}
	if err := c.SetTenant("ghost", 2, 0); err == nil {
		t.Fatal("SetTenant on unknown tenant accepted")
	}
}

// TestHelloReplayedAfterRedial: a poisoned connection redials
// transparently, and the replayed hello restores the tenant identity so
// post-reconnect reads are still attributed correctly.
func TestHelloReplayedAfterRedial(t *testing.T) {
	srv, mgr, names, sock := tenantFixture(t, 2, tenancy.Config{})
	c, err := DialWithConfig(sock, DialConfig{MaxReconnects: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Hello("job-c", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(names[0]); err != nil {
		t.Fatal(err)
	}

	// Sever every live server-side connection; the client's next call
	// poisons and redials.
	srv.severConnsForTest()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if c.Reconnects() == 0 {
		t.Fatal("client never redialed")
	}
	if _, err := c.Read(names[1]); err != nil {
		t.Fatal(err)
	}
	for _, ts := range mgr.Stats().Tenants {
		if ts.Name == "job-c" && ts.Admitted != 2 {
			t.Fatalf("job-c admitted = %d, want 2 (identity lost on redial?)", ts.Admitted)
		}
	}
}
