package ipc

import (
	"errors"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer is a hand-rolled peer whose first badConns connections
// misbehave (they answer any request with a truncated frame and hang up)
// and whose later connections speak the protocol correctly, answering
// every request with an empty OK response. It exercises the client's
// poison-and-redial path without needing a fault hook in the real server.
type flakyServer struct {
	listener net.Listener
	badConns int32
	accepted atomic.Int32
}

func startFlakyServer(t *testing.T, badConns int32) (*flakyServer, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "flaky.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	fs := &flakyServer{listener: l, badConns: badConns}
	go fs.acceptLoop()
	t.Cleanup(func() { l.Close() })
	return fs, sock
}

func (fs *flakyServer) acceptLoop() {
	for {
		conn, err := fs.listener.Accept()
		if err != nil {
			return
		}
		n := fs.accepted.Add(1)
		go fs.serve(conn, n <= fs.badConns)
	}
}

func (fs *flakyServer) serve(conn net.Conn, misbehave bool) {
	defer conn.Close()
	for {
		opcode, trace, _, err := readFrame(conn)
		if err != nil {
			return
		}
		if misbehave {
			// A partial header: the client sees a short read mid-frame.
			conn.Write([]byte{0, 0, 0})
			return
		}
		if err := writeFrame(conn, opcode, trace, okResponse(nil)); err != nil {
			return
		}
	}
}

func TestClientPoisonedAfterTruncatedResponse(t *testing.T) {
	_, sock := startFlakyServer(t, 1)
	c, err := Dial(sock) // zero config: no in-call retries
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Ping()
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("Ping after truncated response = %v, want ErrConnBroken", err)
	}
	if !c.Broken() {
		t.Fatal("connection not marked broken after transport failure")
	}
	// The next call redials transparently and lands on a healthy
	// connection.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after redial: %v", err)
	}
	if c.Broken() {
		t.Fatal("connection still marked broken after successful redial")
	}
	if got := c.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
}

func TestClientRetriesIdempotentCallInPlace(t *testing.T) {
	_, sock := startFlakyServer(t, 1)
	c, err := DialWithConfig(sock, DialConfig{
		MaxReconnects:    2,
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// First attempt hits the misbehaving connection; the retry redials and
	// succeeds within the same call.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping with reconnects = %v, want success", err)
	}
	if got := c.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
}

func TestClientReadTimeoutPoisonsConnection(t *testing.T) {
	// A peer that accepts requests and never answers them.
	sock := filepath.Join(t.TempDir(), "mute.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					if _, _, _, err := readFrame(c); err != nil {
						return
					}
					// Swallow the request; never respond.
				}
			}(conn)
		}
	}()
	c, err := DialWithConfig(sock, DialConfig{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.Ping()
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("Ping against mute server = %v, want ErrConnBroken", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline did not bound the wait: took %v", elapsed)
	}
	if !c.Broken() {
		t.Fatal("timed-out connection not poisoned")
	}
}

func TestClientRemoteErrorDoesNotPoison(t *testing.T) {
	_, _, _, sock := startServer(t, 1)
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Read("ghost.bin"); err == nil {
		t.Fatal("read of missing file succeeded")
	}
	if c.Broken() {
		t.Fatal("clean server-side error poisoned the connection")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after remote error: %v", err)
	}
	if got := c.Reconnects(); got != 0 {
		t.Fatalf("Reconnects = %d, want 0", got)
	}
}

func TestServerPanicIsolated(t *testing.T) {
	// A nil stage makes every dispatch panic; safeHandle must convert that
	// into an error response instead of crashing the server.
	srv := &Server{}
	r := srv.safeHandle(newConnState(), OpStats, 0, nil)
	resp := append(append([]byte(nil), r.head...), r.body...)
	if _, err := parseResponse(resp); err == nil {
		t.Fatal("panicking handler produced a success response")
	} else if _, ok := err.(*RemoteError); !ok {
		t.Fatalf("panicking handler produced malformed response: %v", err)
	}
	if got := srv.Panics(); got != 1 {
		t.Fatalf("Panics = %d, want 1", got)
	}
}

func TestServerPanicKeepsConnectionAlive(t *testing.T) {
	// Over the wire: a request that panics the handler yields a RemoteError
	// and the same connection keeps serving later requests. A nil stage
	// makes every stage-touching dispatch panic.
	sock := filepath.Join(t.TempDir(), "panicky.sock")
	srv, err := ServeWithConfig(sock, nil, ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Stats()
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("Stats over panicking stage = %v, want RemoteError", err)
	}
	// OpPing does not touch the stage, so the connection must still work.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after handler panic: %v", err)
	}
	if c.Reconnects() != 0 {
		t.Fatal("handler panic should not have severed the connection")
	}
}

func TestServerIdleTimeoutDropsConnection(t *testing.T) {
	_, _, _, sock := startServerWithConfig(t, 1, ServeConfig{IdleTimeout: 50 * time.Millisecond})
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	// The server dropped the idle connection; the zero-config client sees a
	// transport failure, then recovers by redialing on the following call.
	if err := c.Ping(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("Ping on idle-dropped conn = %v, want ErrConnBroken", err)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after redial: %v", err)
	}
	if got := c.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
}
