package ipc

import (
	"errors"
	"testing"

	"github.com/dsrhaslab/prisma-go/internal/core"
)

func TestClientSubmitEpochRoundTrip(t *testing.T) {
	_, _, names, sock := startServer(t, 4)
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.SubmitEpoch(names)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 1 || res.Enqueued != len(names) {
		t.Fatalf("SubmitEpoch = %+v, want epoch 1 with %d enqueued", res, len(names))
	}
	res2, err := c.SubmitEpoch(names)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Epoch != 2 {
		t.Fatalf("second SubmitEpoch issued id %d, want 2", res2.Epoch)
	}
	eps, err := c.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || eps[0].ID != 1 || eps[0].State != core.EpochActive {
		t.Fatalf("Epochs = %+v, want two active epochs led by id 1", eps)
	}
	if eps[1].Enqueued != len(names) {
		t.Fatalf("epoch 2 enqueued = %d, want %d", eps[1].Enqueued, len(names))
	}
}

func TestClientCancelEpochRoundTrip(t *testing.T) {
	_, _, names, sock := startServer(t, 6)
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.SubmitEpoch(names)
	if err != nil {
		t.Fatal(err)
	}
	removed, err := c.CancelEpoch(res.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(names) {
		t.Fatalf("CancelEpoch removed %d entries, want %d", removed, len(names))
	}
	eps, err := c.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 1 || eps[0].State != core.EpochCancelled {
		t.Fatalf("Epochs after cancel = %+v, want one cancelled epoch", eps)
	}
	// Idempotent on the wire, too.
	if removed, err := c.CancelEpoch(res.Epoch); err != nil || removed != 0 {
		t.Fatalf("repeated CancelEpoch = (%d, %v), want (0, nil)", removed, err)
	}
	// A cancelled plan leaves nothing claimable: reads bypass and succeed.
	if _, err := c.Read(names[0]); err != nil {
		t.Fatalf("Read after cancel: %v", err)
	}
	var remote *RemoteError
	if _, err := c.CancelEpoch(999); !errors.As(err, &remote) {
		t.Fatalf("CancelEpoch(unknown) = %v, want RemoteError", err)
	}
}
