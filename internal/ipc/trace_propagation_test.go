package ipc

import (
	"testing"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/obs"
)

// TestSpanContextPropagatesOverIPC proves the frame header's trace field
// carries the client's span context into the server: the client-side ipc
// span and the server-side ipc-serve span of one read share a trace id.
func TestSpanContextPropagatesOverIPC(t *testing.T) {
	_, stage, names, sock := startServer(t, 2)
	serverTracer := obs.NewTracer(conc.NewReal(), obs.TracerOptions{Sampling: 1, Seed: 2})
	stage.SetTracer(serverTracer)

	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clientTracer := obs.NewTracer(conc.NewReal(), obs.TracerOptions{Sampling: 1, Seed: 99})
	c.SetTracer(clientTracer)

	if err := c.SubmitPlan(names[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(names[0]); err != nil {
		t.Fatal(err)
	}

	ipcSpans := clientTracer.SpansFor(obs.StageIPC)
	if len(ipcSpans) != 1 {
		t.Fatalf("client recorded %d ipc spans, want 1", len(ipcSpans))
	}
	cs := ipcSpans[0]
	if cs.Name != names[0] || cs.Latency <= 0 {
		t.Errorf("client ipc span = %+v", cs)
	}
	if cs.Trace>>32 != 99 {
		t.Errorf("client trace id %#x not in the client tracer's namespace", cs.Trace)
	}

	serveSpans := serverTracer.SpansFor(obs.StageIPCServe)
	if len(serveSpans) != 1 {
		t.Fatalf("server recorded %d ipc-serve spans, want 1", len(serveSpans))
	}
	ss := serveSpans[0]
	if ss.Trace != cs.Trace {
		t.Errorf("trace id did not round-trip: client %#x, server %#x", cs.Trace, ss.Trace)
	}
	if ss.Name != names[0] {
		t.Errorf("server span names %q, want %q", ss.Name, names[0])
	}
	if ss.Latency > cs.Latency {
		t.Errorf("server handling %v exceeds client round trip %v", ss.Latency, cs.Latency)
	}

	// The consumer-wait span the server's buffer recorded for this read
	// carries the propagated trace too (the whole read-side lifecycle is
	// stitched by one id).
	waits := serverTracer.SpansFor(obs.StageConsumerWait)
	if len(waits) != 1 {
		t.Fatalf("server recorded %d consumer-wait spans, want 1", len(waits))
	}
	if waits[0].Trace != cs.Trace {
		t.Errorf("consumer-wait trace %#x, want %#x", waits[0].Trace, cs.Trace)
	}
}

// TestUnsampledReadCrossesIPCSilently: with client sampling off the frame
// carries trace 0 and neither side records read spans — the sampled-off hot
// path stays span-free end to end.
func TestUnsampledReadCrossesIPCSilently(t *testing.T) {
	_, stage, names, sock := startServer(t, 1)
	serverTracer := obs.NewTracer(conc.NewReal(), obs.TracerOptions{Sampling: 1, Seed: 2})
	stage.SetTracer(serverTracer)

	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTracer(obs.NewTracer(conc.NewReal(), obs.TracerOptions{Sampling: 0, Seed: 99}))

	if _, err := c.Read(names[0]); err != nil {
		t.Fatal(err)
	}
	if n := len(serverTracer.SpansFor(obs.StageIPCServe)); n != 0 {
		t.Errorf("server recorded %d ipc-serve spans for an unsampled read", n)
	}
	if n := len(serverTracer.SpansFor(obs.StageConsumerWait)); n != 0 {
		t.Errorf("server recorded %d consumer-wait spans for an unsampled read", n)
	}
}

// TestSetTraceSamplingOpcode: the OpSetTraceSampling control frame adjusts
// the server stage's sampling probability and rejects bad payloads.
func TestSetTraceSamplingOpcode(t *testing.T) {
	_, stage, _, sock := startServer(t, 1)
	stage.SetTracer(obs.NewTracer(conc.NewReal(), obs.TracerOptions{Sampling: 0, Seed: 2}))

	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.SetTraceSampling(0.25); err != nil {
		t.Fatal(err)
	}
	if got := stage.Stats().TraceSampling; got != 0.25 {
		t.Errorf("TraceSampling = %v, want 0.25", got)
	}
	if err := c.SetTraceSampling(1.5); err == nil {
		t.Error("SetTraceSampling(1.5) accepted, want error")
	}
	if got := stage.Stats().TraceSampling; got != 0.25 {
		t.Errorf("TraceSampling after rejected set = %v, want 0.25", got)
	}
}
