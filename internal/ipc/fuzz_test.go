package ipc

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// FuzzFrame hardens the wire decoder against hostile peers: arbitrary
// byte streams must never panic or over-allocate, and every accepted frame
// must re-encode to the bytes consumed.
func FuzzFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = writeFrame(&buf, OpRead, 0x1234, appendString(nil, "train/0001.jpg"))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		opcode, trace, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload)+9 > MaxFrame {
			t.Fatalf("accepted oversized payload %d", len(payload))
		}
		var out bytes.Buffer
		if err := writeFrame(&out, opcode, trace, payload); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("re-encode mismatch")
		}
	})
}

// FuzzServerHandle drives the request dispatcher directly with arbitrary
// opcode/payload pairs: the server must always produce a well-formed
// response and never panic, whatever a client sends.
//
// OpPlan is remapped to OpPing in the fuzzed space: a plan changes stage
// state, and a later OpRead of a planned-but-not-yet-prefetched name
// legitimately blocks that connection (Take waits for the producers),
// which would wedge the fuzz worker. Plan/read interleavings are covered
// by the deterministic tests; here we fuzz the stateless parsing surface.
func FuzzServerHandle(f *testing.F) {
	srv, _, names, _ := fuzzServer(f)
	f.Add(uint8(OpRead), appendString(nil, names[0]))
	f.Add(uint8(OpStats), []byte{})
	f.Add(uint8(OpSetProducers), []byte{0xFF})
	f.Add(uint8(99), []byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, opcode uint8, payload []byte) {
		if opcode == OpPlan {
			opcode = OpPing
		}
		resp := srv.safeHandle(opcode, 0, payload)
		if len(resp) < 1 {
			t.Fatal("empty response")
		}
		if resp[0] != statusOK && resp[0] != statusErr {
			t.Fatalf("unknown status byte %d", resp[0])
		}
		if _, err := parseResponse(resp); err != nil {
			// RemoteError is fine; malformed responses are not.
			if _, ok := err.(*RemoteError); !ok {
				t.Fatalf("server emitted malformed response: %v", err)
			}
		}
	})
}

// fuzzServer builds a server directly (fuzz entry points receive a
// *testing.F, so the testing.T-based startServer helper does not apply).
func fuzzServer(f *testing.F) (*Server, *core.Stage, []string, string) {
	f.Helper()
	dir := f.TempDir()
	samples := make([]dataset.Sample, 4)
	names := make([]string, 4)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("f%03d.bin", i), Size: 1024}
		names[i] = samples[i].Name
	}
	man := dataset.MustNew(samples)
	if err := dataset.Generate(dir, man, 42); err != nil {
		f.Fatal(err)
	}
	env := conc.NewReal()
	backend := storage.NewDirBackend(dir)
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers: 1, MaxProducers: 4, InitialBufferCapacity: 8, MaxBufferCapacity: 32,
	})
	if err != nil {
		f.Fatal(err)
	}
	stage := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	pf.Start()
	sock := filepath.Join(f.TempDir(), "fuzz.sock")
	srv, err := Serve(sock, stage)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		srv.Close()
		stage.Close()
	})
	return srv, stage, names, sock
}
