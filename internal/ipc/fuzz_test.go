package ipc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"path/filepath"
	"testing"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// FuzzFrame hardens the wire decoder against hostile peers: arbitrary
// byte streams must never panic or over-allocate, and every accepted frame
// must re-encode to the bytes consumed.
func FuzzFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = writeFrame(&buf, OpRead, 0x1234, appendString(nil, "train/0001.jpg"))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1})
	// A read response whose payload is the pool's largest size class
	// (mempool's default MaxSize): the shape the vectored server write and
	// the pooled client decode exchange at full size.
	{
		pooledMax := mempool.New(mempool.Config{}).Get(4 << 20)
		body := pooledMax.Bytes()
		for i := range body {
			body[i] = byte(i)
		}
		head := append([]byte{statusOK}, binary.AppendUvarint(nil, uint64(len(body)))...)
		head = binary.AppendUvarint(head, uint64(len(body)))
		var maxFrame bytes.Buffer
		_ = writeFrame(&maxFrame, OpRead, 0x99, append(head, body...))
		f.Add(maxFrame.Bytes())
		pooledMax.Release()
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		opcode, trace, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload)+9 > MaxFrame {
			t.Fatalf("accepted oversized payload %d", len(payload))
		}
		var out bytes.Buffer
		if err := writeFrame(&out, opcode, trace, payload); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data[:out.Len()]) {
			t.Fatal("re-encode mismatch")
		}
		// The zero-copy decoders must agree byte-for-byte with the copying
		// ones on every accepted payload.
		cb, crest, cerr := readBytes(payload)
		nb, nrest, nerr := readBytesNoCopy(payload)
		if (cerr == nil) != (nerr == nil) {
			t.Fatalf("readBytes err=%v, readBytesNoCopy err=%v", cerr, nerr)
		}
		if cerr == nil && (!bytes.Equal(cb, nb) || !bytes.Equal(crest, nrest)) {
			t.Fatal("readBytesNoCopy disagrees with readBytes")
		}
		cs, srest, serr := readString(payload)
		sb, brest, berr := readStringBytes(payload)
		if (serr == nil) != (berr == nil) {
			t.Fatalf("readString err=%v, readStringBytes err=%v", serr, berr)
		}
		if serr == nil && (cs != string(sb) || !bytes.Equal(srest, brest)) {
			t.Fatal("readStringBytes disagrees with readString")
		}
	})
}

// FuzzServerHandle drives the request dispatcher directly with arbitrary
// opcode/payload pairs: the server must always produce a well-formed
// response and never panic, whatever a client sends.
//
// OpPlan is remapped to OpPing in the fuzzed space: a plan changes stage
// state, and a later OpRead of a planned-but-not-yet-prefetched name
// legitimately blocks that connection (Take waits for the producers),
// which would wedge the fuzz worker. Plan/read interleavings are covered
// by the deterministic tests; here we fuzz the stateless parsing surface.
func FuzzServerHandle(f *testing.F) {
	srv, _, names, _ := fuzzServer(f)
	f.Add(uint8(OpRead), appendString(nil, names[0]))
	f.Add(uint8(OpStats), []byte{})
	f.Add(uint8(OpSetProducers), []byte{0xFF})
	f.Add(uint8(99), []byte{1, 2, 3})

	cs := newConnState()
	f.Fuzz(func(t *testing.T, opcode uint8, payload []byte) {
		if opcode == OpPlan {
			opcode = OpPing
		}
		r := srv.safeHandle(cs, opcode, 0, payload)
		resp := append(append([]byte(nil), r.head...), r.body...)
		if r.ref != nil {
			r.ref.Release()
		}
		if len(resp) < 1 {
			t.Fatal("empty response")
		}
		if resp[0] != statusOK && resp[0] != statusErr {
			t.Fatalf("unknown status byte %d", resp[0])
		}
		if _, err := parseResponse(resp); err != nil {
			// RemoteError is fine; malformed responses are not.
			if _, ok := err.(*RemoteError); !ok {
				t.Fatalf("server emitted malformed response: %v", err)
			}
		}
	})
}

// fuzzServer builds a server directly (fuzz entry points receive a
// *testing.F, so the testing.T-based startServer helper does not apply).
func fuzzServer(f *testing.F) (*Server, *core.Stage, []string, string) {
	f.Helper()
	dir := f.TempDir()
	samples := make([]dataset.Sample, 4)
	names := make([]string, 4)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("f%03d.bin", i), Size: 1024}
		names[i] = samples[i].Name
	}
	man := dataset.MustNew(samples)
	if err := dataset.Generate(dir, man, 42); err != nil {
		f.Fatal(err)
	}
	env := conc.NewReal()
	backend := storage.NewDirBackend(dir)
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers: 1, MaxProducers: 4, InitialBufferCapacity: 8, MaxBufferCapacity: 32,
	})
	if err != nil {
		f.Fatal(err)
	}
	stage := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	pf.Start()
	sock := filepath.Join(f.TempDir(), "fuzz.sock")
	srv, err := Serve(sock, stage)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		srv.Close()
		stage.Close()
	})
	return srv, stage, names, sock
}
