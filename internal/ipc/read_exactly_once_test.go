package ipc

import (
	"encoding/binary"
	"errors"
	"net"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/mempool"
)

// countingServer records how many frames of each opcode it receives. Its
// first badConns connections answer any request with a truncated frame and
// hang up; later connections answer OK. It distinguishes "the client
// redialed" (fine) from "the client re-sent the request" (forbidden for
// non-resendable opcodes).
type countingServer struct {
	listener net.Listener
	badConns int32
	accepted atomic.Int32
	reads    atomic.Int32 // OpRead frames received
	pings    atomic.Int32 // OpPing frames received
}

func startCountingServer(t *testing.T, badConns int32) (*countingServer, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "counting.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	cs := &countingServer{listener: l, badConns: badConns}
	go cs.acceptLoop()
	t.Cleanup(func() { l.Close() })
	return cs, sock
}

func (cs *countingServer) acceptLoop() {
	for {
		conn, err := cs.listener.Accept()
		if err != nil {
			return
		}
		n := cs.accepted.Add(1)
		go cs.serve(conn, n <= cs.badConns)
	}
}

func (cs *countingServer) serve(conn net.Conn, misbehave bool) {
	defer conn.Close()
	for {
		opcode, trace, _, err := readFrame(conn)
		if err != nil {
			return
		}
		switch opcode {
		case OpRead:
			cs.reads.Add(1)
		case OpPing:
			cs.pings.Add(1)
		}
		if misbehave {
			conn.Write([]byte{0, 0, 0})
			return
		}
		body := okResponse(nil)
		if opcode == OpRead {
			body = okResponse(appendBytes(binary.AppendUvarint(nil, 3), []byte("abc")))
		}
		if err := writeFrame(conn, opcode, trace, body); err != nil {
			return
		}
	}
}

// TestClientReadNeverResent proves the read-exactly-once invariant at the
// transport layer: a consumer read that dies mid-exchange must surface
// ErrConnBroken instead of being silently re-sent on a fresh connection —
// even when the retry budget would allow it. The server received the
// request before the stream broke; a duplicate send could consume (and
// discard) a second sample from the evict-on-read buffer.
func TestClientReadNeverResent(t *testing.T) {
	cs, sock := startCountingServer(t, 1)
	c, err := DialWithConfig(sock, DialConfig{
		MaxReconnects:    2, // budget exists; Read must not spend it on re-sends
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Read("train/img_000001.jpg")
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("Read over broken stream = %v, want ErrConnBroken", err)
	}
	if got := cs.reads.Load(); got != 1 {
		t.Fatalf("server received %d OpRead frames, want exactly 1 (no silent resend)", got)
	}

	// The same budget on the same client does re-send a resendable opcode:
	// Ping lands once on the broken stream path having already been poisoned
	// above, so this call redials first and succeeds with one send.
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping after poisoned read: %v", err)
	}

	// A second misbehaving window would re-send Ping but never Read: verify
	// the contrast directly on a fresh client against a fresh bad conn.
	cs2, sock2 := startCountingServer(t, 1)
	c2, err := DialWithConfig(sock2, DialConfig{MaxReconnects: 2, ReconnectBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Ping(); err != nil {
		t.Fatalf("resendable Ping with retry budget = %v, want in-call recovery", err)
	}
	if got := cs2.pings.Load(); got != 2 {
		t.Fatalf("server received %d OpPing frames, want 2 (original + one resend)", got)
	}
}

// TestClientReadRedialsBeforeSend verifies the safe half of the policy: a
// connection poisoned by an earlier call is redialed before a Read's
// single send, so non-resendable does not mean non-recoverable.
func TestClientReadRedialsBeforeSend(t *testing.T) {
	cs, sock := startCountingServer(t, 1)
	c, err := Dial(sock) // zero config
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); !errors.Is(err, ErrConnBroken) {
		t.Fatalf("priming Ping = %v, want ErrConnBroken", err)
	}
	if _, err := c.Read("x"); err != nil {
		t.Fatalf("Read after redial = %v, want success", err)
	}
	if got := cs.reads.Load(); got != 1 {
		t.Fatalf("server received %d OpRead frames, want 1", got)
	}
	if got := c.Reconnects(); got != 1 {
		t.Fatalf("Reconnects = %d, want 1", got)
	}
}

// TestPooledClientReadNeverResent re-proves the exactly-once invariant on
// the pooled decode path: with a buffer pool attached, a read that dies
// mid-exchange must still surface ErrConnBroken with exactly one OpRead on
// the wire — and must not leak the lease it acquired for the response.
func TestPooledClientReadNeverResent(t *testing.T) {
	cs, sock := startCountingServer(t, 1)
	c, err := DialWithConfig(sock, DialConfig{
		MaxReconnects:    2,
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pool := mempool.New(mempool.Config{Debug: true})
	c.SetBufferPool(pool)

	_, err = c.Read("train/img_000001.jpg")
	if !errors.Is(err, ErrConnBroken) {
		t.Fatalf("pooled Read over broken stream = %v, want ErrConnBroken", err)
	}
	if got := cs.reads.Load(); got != 1 {
		t.Fatalf("server received %d OpRead frames, want exactly 1 (no silent resend)", got)
	}
	if got := pool.Stats().Outstanding; got != 0 {
		t.Fatalf("broken pooled read leaked %d leases:\n%s", got, mempool.FormatLeaks(pool.Leaks()))
	}

	// The redialed pooled read succeeds, delivers a lease, and still sends
	// the request exactly once.
	d, err := c.Read("train/img_000002.jpg")
	if err != nil {
		t.Fatalf("pooled Read after redial: %v", err)
	}
	if d.Ref == nil {
		t.Fatal("pooled read after redial returned no lease")
	}
	d.Release()
	if got := cs.reads.Load(); got != 2 {
		t.Fatalf("server received %d OpRead frames, want 2", got)
	}
	if got := pool.Stats().Outstanding; got != 0 {
		t.Fatalf("%d leases outstanding after release", got)
	}
}
