package ipc

import (
	"errors"
	"sync"
	"testing"

	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/tenancy"
)

// Without a fabric handler installed, OpPeerRead serves from the local
// stage — a planned sample comes back intact and is consumed from the
// evict-on-read buffer exactly like a local Read.
func TestPeerReadFallsBackToLocalStage(t *testing.T) {
	_, stage, names, sock := startServer(t, 4)
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitPlan(names); err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		d, err := c.PeerRead(n)
		if err != nil {
			t.Fatalf("PeerRead(%s): %v", n, err)
		}
		want := int64(1024 + i)
		if d.Size != want || int64(len(d.Bytes)) != want {
			t.Fatalf("PeerRead(%s): size %d, %d bytes, want %d", n, d.Size, len(d.Bytes), want)
		}
	}
	if hits := stage.Stats().Hits; hits != int64(len(names)) {
		t.Fatalf("stage hits = %d, want %d (peer reads consume the buffer)", hits, len(names))
	}
}

// SetPeerReadHandler reroutes OpPeerRead to the cluster fabric: the
// handler sees the requested name (and the rider trace context) and its
// payload travels back to the requester byte-for-byte.
func TestPeerReadHandlerRouting(t *testing.T) {
	srv, _, _, sock := startServer(t, 1)
	var mu sync.Mutex
	var served []string
	srv.SetPeerReadHandler(func(name string, ctx obs.Ctx) (storage.Data, error) {
		mu.Lock()
		served = append(served, name)
		mu.Unlock()
		if name == "missing.bin" {
			return storage.Data{}, errors.New("not owned here")
		}
		payload := []byte("fabric:" + name)
		return storage.Data{Name: name, Size: int64(len(payload)), Bytes: payload}, nil
	})
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	d, err := c.PeerRead("sample-7.jpg")
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Bytes) != "fabric:sample-7.jpg" {
		t.Fatalf("payload = %q", d.Bytes)
	}

	// Handler errors surface as typed remote errors and do NOT poison the
	// connection: the next call reuses it.
	_, err = c.PeerRead("missing.bin")
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if _, err := c.PeerRead("sample-8.jpg"); err != nil {
		t.Fatalf("connection unusable after remote error: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(served) != 3 {
		t.Fatalf("handler saw %d requests, want 3: %v", len(served), served)
	}
}

// HelloRole's optional third field: old two-string hellos still resolve,
// and a "peer" hello marks the connection without changing the resolved
// identity on a single-tenant server.
func TestHelloRoleBackwardCompatible(t *testing.T) {
	_, _, names, sock := startServer(t, 2)

	legacy, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	resolved, err := legacy.Hello("", "")
	if err != nil {
		t.Fatal(err)
	}
	if resolved != tenancy.DefaultTenant {
		t.Fatalf("legacy hello resolved %q, want %q", resolved, tenancy.DefaultTenant)
	}

	peer, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	resolved, err = peer.HelloRole("", "", "peer")
	if err != nil {
		t.Fatal(err)
	}
	if resolved != tenancy.DefaultTenant {
		t.Fatalf("peer hello resolved %q, want %q", resolved, tenancy.DefaultTenant)
	}
	// The role does not gate data-path use: the peer connection still reads.
	if _, err := peer.Read(names[0]); err != nil {
		t.Fatal(err)
	}
}

// helloPayload encodes two strings for a roleless hello (wire-compatible
// with pre-cluster servers) and three when a role is declared.
func TestHelloPayloadEncoding(t *testing.T) {
	two := helloPayload("alice", "s3cret", "")
	name, rest, err := readString(two)
	if err != nil || name != "alice" {
		t.Fatalf("name = %q, %v", name, err)
	}
	secret, rest, err := readString(rest)
	if err != nil || secret != "s3cret" {
		t.Fatalf("secret = %q, %v", secret, err)
	}
	if len(rest) != 0 {
		t.Fatalf("roleless hello has %d trailing bytes", len(rest))
	}

	three := helloPayload("alice", "s3cret", "peer")
	_, rest, _ = readString(three)
	_, rest, _ = readString(rest)
	role, rest, err := readString(rest)
	if err != nil || role != "peer" {
		t.Fatalf("role = %q, %v", role, err)
	}
	if len(rest) != 0 {
		t.Fatalf("role hello has %d trailing bytes", len(rest))
	}
}
