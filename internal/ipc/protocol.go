// Package ipc implements the UNIX-domain-socket client/server PRISMA uses
// to serve multi-process consumers (paper §IV: "because PyTorch uses
// processes instead of threads, we implemented an inter-process
// communication client-server through UNIX Domain Sockets. For each
// spawned process, a PRISMA client instance is created to intercept all
// read invocations and submit them to the server").
//
// Wire format: every message is a frame of
//
//	uint32 length (big endian) | uint8 opcode | uint64 trace (big endian) | payload
//
// where length covers opcode+trace+payload. The trace field propagates the
// sample's span context across the process boundary (zero = unsampled);
// responses echo the request's trace id, doubling as a desync guard.
// Strings and counts inside payloads are uvarint-prefixed. Responses carry
// a status byte (0 = ok, 1 = error-with-message).
package ipc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Opcodes.
const (
	OpRead         = 1 // request a file read through the stage
	OpPlan         = 2 // submit an epoch filename list
	OpStats        = 3 // fetch stage statistics (control interface)
	OpSetProducers = 4 // control: set t
	OpSetBuffer    = 5 // control: set N
	OpPing         = 6 // liveness probe
	OpSetShards    = 7 // control: set buffer shard count K

	OpSetTraceSampling = 8 // control: set trace head-sampling probability
	OpDecisions        = 9 // fetch the autotuner decision audit log (JSON)
)

// Response status bytes.
const (
	statusOK  = 0
	statusErr = 1
)

// MaxFrame bounds a frame payload; larger frames indicate a corrupt or
// hostile peer.
const MaxFrame = 64 << 20

// ErrFrameTooLarge reports an oversized frame.
var ErrFrameTooLarge = errors.New("ipc: frame exceeds maximum size")

// writeFrame sends opcode+trace+payload as one frame.
func writeFrame(w io.Writer, opcode byte, trace uint64, payload []byte) error {
	if len(payload)+9 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [13]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+9))
	hdr[4] = opcode
	binary.BigEndian.PutUint64(hdr[5:13], trace)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one frame.
func readFrame(r io.Reader) (opcode byte, trace uint64, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 9 {
		return 0, 0, nil, fmt.Errorf("ipc: short frame (%d bytes)", n)
	}
	if n > MaxFrame {
		return 0, 0, nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, err
	}
	return body[0], binary.BigEndian.Uint64(body[1:9]), body[9:], nil
}

// appendString encodes a uvarint-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readString decodes a uvarint-prefixed string, returning the remainder.
func readString(src []byte) (string, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return "", nil, fmt.Errorf("ipc: malformed string length")
	}
	src = src[k:]
	if uint64(len(src)) < n {
		return "", nil, fmt.Errorf("ipc: truncated string (want %d bytes, have %d)", n, len(src))
	}
	return string(src[:n]), src[n:], nil
}

// appendBytes encodes a uvarint-prefixed byte slice.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// readBytes decodes a uvarint-prefixed byte slice, returning the remainder.
func readBytes(src []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("ipc: malformed bytes length")
	}
	src = src[k:]
	if uint64(len(src)) < n {
		return nil, nil, fmt.Errorf("ipc: truncated bytes (want %d, have %d)", n, len(src))
	}
	out := make([]byte, n)
	copy(out, src[:n])
	return out, src[n:], nil
}

// okResponse prefixes a payload with the OK status byte.
func okResponse(payload []byte) []byte {
	return append([]byte{statusOK}, payload...)
}

// errResponse encodes an error message response.
func errResponse(err error) []byte {
	return appendString([]byte{statusErr}, err.Error())
}

// parseResponse splits status from payload, converting remote errors.
func parseResponse(payload []byte) ([]byte, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("ipc: empty response")
	}
	switch payload[0] {
	case statusOK:
		return payload[1:], nil
	case statusErr:
		msg, _, err := readString(payload[1:])
		if err != nil {
			return nil, fmt.Errorf("ipc: malformed error response: %v", err)
		}
		return nil, &RemoteError{Msg: msg}
	default:
		return nil, fmt.Errorf("ipc: unknown response status %d", payload[0])
	}
}

// RemoteError is an error reported by the PRISMA server.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "ipc: remote: " + e.Msg }
