// Package ipc implements the UNIX-domain-socket client/server PRISMA uses
// to serve multi-process consumers (paper §IV: "because PyTorch uses
// processes instead of threads, we implemented an inter-process
// communication client-server through UNIX Domain Sockets. For each
// spawned process, a PRISMA client instance is created to intercept all
// read invocations and submit them to the server").
//
// Wire format: every message is a frame of
//
//	uint32 length (big endian) | uint8 opcode | uint64 trace (big endian) | payload
//
// where length covers opcode+trace+payload. The trace field propagates the
// sample's span context across the process boundary (zero = unsampled);
// responses echo the request's trace id, doubling as a desync guard.
// Strings and counts inside payloads are uvarint-prefixed. Responses carry
// a status byte (0 = ok, 1 = error-with-message).
package ipc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/tenancy"
)

// Opcodes.
const (
	OpRead         = 1 // request a file read through the stage
	OpPlan         = 2 // submit an epoch filename list
	OpStats        = 3 // fetch stage statistics (control interface)
	OpSetProducers = 4 // control: set t
	OpSetBuffer    = 5 // control: set N
	OpPing         = 6 // liveness probe
	OpSetShards    = 7 // control: set buffer shard count K

	OpSetTraceSampling = 8 // control: set trace head-sampling probability
	OpDecisions        = 9 // fetch the autotuner decision audit log (JSON)

	OpCancelEpoch = 10 // control: cancel a plan epoch by id
	OpEpochs      = 11 // fetch plan-epoch statuses (JSON)

	OpHello     = 12 // establish the connection's tenant identity
	OpTenants   = 13 // fetch per-tenant QoS statistics (JSON)
	OpSetTenant = 14 // control: adjust a tenant's weight / byte budget

	OpBundle = 15 // fetch the one-shot diagnostic bundle (JSON)

	// OpPeerRead is a node-to-node forwarded read in the cluster fabric:
	// the requester does not own the sample and asks the owner to serve it
	// from its buffer. Same response shape and non-resendable discipline as
	// OpRead (the owner's evict-on-read buffer consumes the sample), but
	// dispatched through the server's peer router so owner-side accounting
	// (peer-serve spans, cluster counters) stays separate from local reads.
	OpPeerRead = 16
)

// Response status bytes.
const (
	statusOK  = 0
	statusErr = 1
	// statusOverloaded is the typed load-shed rejection: the request was
	// refused at admission (before executing, so resending is safe) and the
	// payload carries a retry-after hint plus the throttled tenant.
	statusOverloaded = 2
)

// MaxFrame bounds a frame payload; larger frames indicate a corrupt or
// hostile peer.
const MaxFrame = 64 << 20

// ErrFrameTooLarge reports an oversized frame.
var ErrFrameTooLarge = errors.New("ipc: frame exceeds maximum size")

// writeFrame sends opcode+trace+payload as one frame.
func writeFrame(w io.Writer, opcode byte, trace uint64, payload []byte) error {
	if len(payload)+9 > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [13]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)+9))
	hdr[4] = opcode
	binary.BigEndian.PutUint64(hdr[5:13], trace)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one frame.
func readFrame(r io.Reader) (opcode byte, trace uint64, payload []byte, err error) {
	return readFrameInto(r, nil)
}

// readFrameInto is readFrame reusing scratch for the frame body when its
// capacity suffices (the returned payload aliases scratch in that case).
// The server's per-connection request loop threads its scratch buffer
// through here so steady-state request decoding allocates nothing.
func readFrameInto(r io.Reader, scratch []byte) (opcode byte, trace uint64, payload []byte, err error) {
	// The length prefix lands in scratch too: a stack array here would
	// escape through the io.Reader interface call and cost one heap
	// allocation per frame.
	if cap(scratch) < 4 {
		scratch = make([]byte, 0, 64)
	}
	lenBuf := scratch[:4]
	if _, err := io.ReadFull(r, lenBuf); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf)
	if n < 9 {
		return 0, 0, nil, fmt.Errorf("ipc: short frame (%d bytes)", n)
	}
	if n > MaxFrame {
		return 0, 0, nil, ErrFrameTooLarge
	}
	body := scratch
	if cap(body) < int(n) {
		body = make([]byte, n)
	}
	body = body[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, 0, nil, err
	}
	return body[0], binary.BigEndian.Uint64(body[1:9]), body[9:], nil
}

// appendString encodes a uvarint-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readString decodes a uvarint-prefixed string, returning the remainder.
func readString(src []byte) (string, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return "", nil, fmt.Errorf("ipc: malformed string length")
	}
	src = src[k:]
	if uint64(len(src)) < n {
		return "", nil, fmt.Errorf("ipc: truncated string (want %d bytes, have %d)", n, len(src))
	}
	return string(src[:n]), src[n:], nil
}

// readStringBytes decodes a uvarint-prefixed string as a sub-slice of src
// (no string allocation — callers intern or copy as needed).
func readStringBytes(src []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("ipc: malformed string length")
	}
	src = src[k:]
	if uint64(len(src)) < n {
		return nil, nil, fmt.Errorf("ipc: truncated string (want %d bytes, have %d)", n, len(src))
	}
	return src[:n], src[n:], nil
}

// appendBytes encodes a uvarint-prefixed byte slice.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// readBytes decodes a uvarint-prefixed byte slice, returning the remainder.
func readBytes(src []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("ipc: malformed bytes length")
	}
	src = src[k:]
	if uint64(len(src)) < n {
		return nil, nil, fmt.Errorf("ipc: truncated bytes (want %d, have %d)", n, len(src))
	}
	out := make([]byte, n)
	copy(out, src[:n])
	return out, src[n:], nil
}

// readBytesNoCopy is readBytes without the defensive copy: the returned
// slice aliases src. Safe only when src is a freshly read frame body that
// no other decoder will touch — the client's read-response path, where the
// frame buffer was allocated for exactly this response and handing the
// sub-slice to the caller saves one full payload copy per read.
func readBytesNoCopy(src []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(src)
	if k <= 0 {
		return nil, nil, fmt.Errorf("ipc: malformed bytes length")
	}
	src = src[k:]
	if uint64(len(src)) < n {
		return nil, nil, fmt.Errorf("ipc: truncated bytes (want %d, have %d)", n, len(src))
	}
	return src[:n:n], src[n:], nil
}

// appendFrameHeader appends the 13-byte frame header for a frame whose body
// (opcode+trace+payload) totals 9+payloadLen bytes.
func appendFrameHeader(dst []byte, opcode byte, trace uint64, payloadLen int) []byte {
	var hdr [13]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(payloadLen+9))
	hdr[4] = opcode
	binary.BigEndian.PutUint64(hdr[5:13], trace)
	return append(dst, hdr[:]...)
}

// okResponse prefixes a payload with the OK status byte.
func okResponse(payload []byte) []byte {
	return append([]byte{statusOK}, payload...)
}

// errResponse encodes an error message response.
func errResponse(err error) []byte {
	return appendString([]byte{statusErr}, err.Error())
}

// overloadResponse encodes a typed load-shed rejection: retry-after in
// nanoseconds, then the throttled tenant's name.
func overloadResponse(oe *tenancy.OverloadError) []byte {
	out := binary.AppendUvarint([]byte{statusOverloaded}, uint64(oe.RetryAfter))
	return appendString(out, oe.Tenant)
}

// parseOverload decodes a statusOverloaded payload (sans status byte).
func parseOverload(payload []byte) (*tenancy.OverloadError, error) {
	retry, k := binary.Uvarint(payload)
	if k <= 0 {
		return nil, fmt.Errorf("ipc: malformed overload response")
	}
	tenant, _, err := readString(payload[k:])
	if err != nil {
		return nil, fmt.Errorf("ipc: malformed overload response: %v", err)
	}
	return &tenancy.OverloadError{Tenant: tenant, RetryAfter: time.Duration(retry)}, nil
}

// parseResponse splits status from payload, converting remote errors.
func parseResponse(payload []byte) ([]byte, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("ipc: empty response")
	}
	switch payload[0] {
	case statusOK:
		return payload[1:], nil
	case statusErr:
		msg, _, err := readString(payload[1:])
		if err != nil {
			return nil, fmt.Errorf("ipc: malformed error response: %v", err)
		}
		return nil, &RemoteError{Msg: msg}
	case statusOverloaded:
		oe, err := parseOverload(payload[1:])
		if err != nil {
			return nil, err
		}
		return nil, oe
	default:
		return nil, fmt.Errorf("ipc: unknown response status %d", payload[0])
	}
}

// RemoteError is an error reported by the PRISMA server.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "ipc: remote: " + e.Msg }
