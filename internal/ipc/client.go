package ipc

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// Client is one consumer process's connection to the PRISMA server. A
// client issues one request at a time (guarded by a mutex); spawn one
// client per worker process, as the prototype does.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to the PRISMA server socket.
func Dial(socketPath string) (*Client, error) {
	conn, err := net.Dial("unix", socketPath)
	if err != nil {
		return nil, fmt.Errorf("ipc: dial %s: %w", socketPath, err)
	}
	return &Client{conn: conn}, nil
}

// roundTrip sends one request frame and awaits the matching response.
func (c *Client) roundTrip(opcode byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, opcode, payload); err != nil {
		return nil, err
	}
	gotOp, resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if gotOp != opcode {
		return nil, fmt.Errorf("ipc: response opcode %d for request %d", gotOp, opcode)
	}
	return parseResponse(resp)
}

// Read requests a file through the server's stage — the intercepted read
// path for multi-process consumers.
func (c *Client) Read(name string) (storage.Data, error) {
	resp, err := c.roundTrip(OpRead, appendString(nil, name))
	if err != nil {
		return storage.Data{}, err
	}
	size, k := binary.Uvarint(resp)
	if k <= 0 {
		return storage.Data{}, fmt.Errorf("ipc: malformed read response")
	}
	bytes, _, err := readBytes(resp[k:])
	if err != nil {
		return storage.Data{}, err
	}
	if len(bytes) == 0 {
		bytes = nil
	}
	return storage.Data{Name: name, Size: int64(size), Bytes: bytes}, nil
}

// SubmitPlan forwards an epoch's shuffled filename list.
func (c *Client) SubmitPlan(names []string) error {
	payload := binary.AppendUvarint(nil, uint64(len(names)))
	for _, n := range names {
		payload = appendString(payload, n)
	}
	_, err := c.roundTrip(OpPlan, payload)
	return err
}

// Stats fetches the stage's monitoring snapshot.
func (c *Client) Stats() (core.StageStats, error) {
	resp, err := c.roundTrip(OpStats, nil)
	if err != nil {
		return core.StageStats{}, err
	}
	var stats core.StageStats
	if err := json.Unmarshal(resp, &stats); err != nil {
		return core.StageStats{}, fmt.Errorf("ipc: decode stats: %w", err)
	}
	return stats, nil
}

// SetProducers adjusts the stage's t remotely (control path).
func (c *Client) SetProducers(n int) error {
	if n < 0 {
		n = 0
	}
	_, err := c.roundTrip(OpSetProducers, binary.AppendUvarint(nil, uint64(n)))
	return err
}

// SetBufferCapacity adjusts the stage's N remotely (control path).
func (c *Client) SetBufferCapacity(n int) error {
	if n < 1 {
		n = 1
	}
	_, err := c.roundTrip(OpSetBuffer, binary.AppendUvarint(nil, uint64(n)))
	return err
}

// Ping checks server liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(OpPing, nil)
	return err
}

// Close severs the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
