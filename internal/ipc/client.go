package ipc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/tenancy"
)

// ErrConnBroken reports a round trip that failed at the transport layer:
// after a partial read or write the request/response stream may be
// desynchronized, so the connection is poisoned and redialed rather than
// reused. Callers can match it with errors.Is.
var ErrConnBroken = errors.New("ipc: connection broken")

// DialConfig tunes client-side resilience. The zero value preserves the
// historical behaviour — no deadlines, no in-call retries — except that a
// poisoned connection is always redialed on the next call instead of
// deadlocking on a desynced stream.
type DialConfig struct {
	// DialTimeout bounds the initial dial and every redial (0 = none).
	DialTimeout time.Duration
	// WriteTimeout bounds sending one request frame (0 = none).
	WriteTimeout time.Duration
	// ReadTimeout bounds waiting for one response frame (0 = none). A
	// timeout poisons the connection: the late response would otherwise be
	// mistaken for the answer to the next request.
	ReadTimeout time.Duration
	// MaxReconnects is the number of automatic redial-and-retry rounds a
	// resendable round trip may use after a transport failure (0 = fail
	// immediately). Non-resendable requests — Read (evict-on-read consumes
	// the sample, so a duplicate send could consume it twice) and
	// SubmitPlan (appends plan state) — never retry in-call; they only
	// redial before the first send.
	MaxReconnects int
	// ReconnectBackoff is the sleep before the first redial, doubled each
	// further redial within one call (default 10ms when redialing).
	ReconnectBackoff time.Duration
	// OverloadRetries is how many times one Read waits out a server-issued
	// retry-after hint and resends after a typed overload rejection
	// (0 = surface the OverloadError to the caller immediately). Sheds
	// happen at admission, before the read executes, so the resend is safe
	// even though reads are otherwise non-resendable.
	OverloadRetries int
}

// Client is one consumer process's connection to the PRISMA server. A
// client issues one request at a time (guarded by a mutex); spawn one
// client per worker process, as the prototype does. After a transport
// error the connection is poisoned and transparently re-established on the
// next call (with bounded in-call retries for idempotent requests).
type Client struct {
	path string
	cfg  DialConfig

	mu         sync.Mutex
	conn       net.Conn
	broken     bool
	closed     bool
	reconnects int64
	tracer     *obs.Tracer   // nil-safe; client-side spans of intercepted reads
	pool       *mempool.Pool // non-nil: Read returns pooled Data (caller releases)
	req        []byte        // request-payload scratch for the pooled read path
	wire       []byte        // outgoing-frame scratch (header + payload, one Write)
	hdr        []byte        // response frame-header scratch (13 bytes)
	pre        []byte        // response head scratch (status + two uvarints)

	// Hello credentials, replayed after every redial so the connection's
	// tenant identity (and cluster role) survives reconnects.
	helloName   string
	helloSecret string
	helloRole   string
	helloSent   bool
}

// Dial connects to the PRISMA server socket with the zero DialConfig.
func Dial(socketPath string) (*Client, error) {
	return DialWithConfig(socketPath, DialConfig{})
}

// DialWithConfig connects with explicit resilience settings.
func DialWithConfig(socketPath string, cfg DialConfig) (*Client, error) {
	conn, err := dialConn(socketPath, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("ipc: dial %s: %w", socketPath, err)
	}
	return &Client{path: socketPath, cfg: cfg, conn: conn}, nil
}

func dialConn(path string, timeout time.Duration) (net.Conn, error) {
	if timeout > 0 {
		return net.DialTimeout("unix", path, timeout)
	}
	return net.Dial("unix", path)
}

// SetTracer attaches a tracer so the client head-samples its reads and
// records the client-observed round-trip span; the sampled trace id rides
// the frame header to the server, which continues the same trace.
func (c *Client) SetTracer(t *obs.Tracer) {
	c.mu.Lock()
	c.tracer = t
	c.mu.Unlock()
}

// SetBufferPool switches Read to pooled responses: the payload is read off
// the socket directly into a pool buffer and returned with Data.Ref set —
// the caller owns that reference and must Release it when done with the
// bytes. Pass nil to revert to plain allocated responses.
func (c *Client) SetBufferPool(p *mempool.Pool) {
	c.mu.Lock()
	c.pool = p
	c.mu.Unlock()
}

// Reconnects reports how many times the client redialed the server.
func (c *Client) Reconnects() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Broken reports whether the connection is currently poisoned (it will be
// redialed on the next call).
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// roundTrip sends one request frame and awaits the matching response.
// Resendable requests may be resent on a fresh connection after transport
// failures, up to MaxReconnects times. Non-resendable requests are sent at
// most once per call: after a transport failure mid-exchange the server may
// or may not have executed them, so a silent resend could execute the
// operation twice (for OpRead that means consuming — and discarding — a
// second sample from the evict-on-read buffer). A poisoned connection is
// still redialed before the single send, which is always safe.
func (c *Client) roundTrip(opcode byte, payload []byte, resendable bool) ([]byte, error) {
	return c.roundTripTrace(opcode, 0, payload, resendable)
}

// roundTripTrace is roundTrip carrying an explicit span context in the
// frame header (zero = unsampled).
func (c *Client) roundTripTrace(opcode byte, trace uint64, payload []byte, resendable bool) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	attempts := 1
	if resendable {
		attempts += c.cfg.MaxReconnects
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if c.closed {
			return nil, net.ErrClosed
		}
		if c.broken {
			if err := c.redialLocked(attempt); err != nil {
				lastErr = err
				continue
			}
		}
		resp, err := c.exchangeLocked(opcode, trace, payload)
		if err == nil {
			return resp, nil
		}
		if isCleanError(err) {
			// A server-reported error (including a typed load shed): the
			// stream is intact.
			return nil, err
		}
		// Transport or framing failure: the stream state is unknown.
		c.poisonLocked()
		lastErr = err
	}
	return nil, fmt.Errorf("%w: %v", ErrConnBroken, lastErr)
}

// isCleanError reports an error the server sent as a well-framed response:
// the stream is synchronized and the connection stays usable. Overload
// rejections are clean by design — shedding must not cost the client its
// connection.
func isCleanError(err error) bool {
	var remote *RemoteError
	if errors.As(err, &remote) {
		return true
	}
	var oe *tenancy.OverloadError
	return errors.As(err, &oe)
}

// exchangeLocked performs one framed request/response on the live
// connection, applying the configured deadlines. Caller holds c.mu.
func (c *Client) exchangeLocked(opcode byte, trace uint64, payload []byte) ([]byte, error) {
	if c.cfg.WriteTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	if err := writeFrame(c.conn, opcode, trace, payload); err != nil {
		return nil, err
	}
	if c.cfg.ReadTimeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	gotOp, gotTrace, resp, err := readFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if gotOp != opcode {
		return nil, fmt.Errorf("ipc: response opcode %d for request %d", gotOp, opcode)
	}
	if gotTrace != trace {
		return nil, fmt.Errorf("ipc: response trace %#x for request %#x", gotTrace, trace)
	}
	return parseResponse(resp)
}

// poisonLocked marks the connection unusable and severs it. Caller holds
// c.mu.
func (c *Client) poisonLocked() {
	c.broken = true
	if c.conn != nil {
		c.conn.Close()
	}
}

// redialLocked re-establishes the connection, backing off before every
// retry round after the first. Caller holds c.mu.
func (c *Client) redialLocked(attempt int) error {
	if attempt > 0 {
		backoff := c.cfg.ReconnectBackoff
		if backoff <= 0 {
			backoff = 10 * time.Millisecond
		}
		time.Sleep(backoff << (attempt - 1))
	}
	conn, err := dialConn(c.path, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("ipc: reconnect %s: %w", c.path, err)
	}
	c.conn = conn
	c.broken = false
	c.reconnects++
	// A fresh connection is anonymous: replay the hello so the tenant
	// identity — and the budgets attached to it — survive the reconnect.
	if c.helloSent {
		if _, err := c.exchangeLocked(OpHello, 0, helloPayload(c.helloName, c.helloSecret, c.helloRole)); err != nil {
			c.poisonLocked()
			return fmt.Errorf("ipc: hello replay on reconnect: %w", err)
		}
	}
	return nil
}

// helloPayload encodes an OpHello request. The role rides as an optional
// third string: pre-cluster servers decode the first two and ignore the
// rest, so sending it is always safe.
func helloPayload(name, secret, role string) []byte {
	out := appendString(appendString(nil, name), secret)
	if role != "" {
		out = appendString(out, role)
	}
	return out
}

// Hello establishes the connection's tenant identity and returns the
// server-resolved tenant name (the default tenant for an empty name). The
// credentials are remembered and replayed after every redial. Resendable:
// hello is idempotent.
func (c *Client) Hello(name, secret string) (string, error) {
	return c.HelloRole(name, secret, "")
}

// HelloRole is Hello additionally declaring the connection's role
// ("worker" for ordinary consumers, "peer" for a cluster node's
// forwarding connection). The role is replayed with the credentials on
// every redial.
func (c *Client) HelloRole(name, secret, role string) (string, error) {
	resp, err := c.roundTrip(OpHello, helloPayload(name, secret, role), true)
	if err != nil {
		return "", err
	}
	resolved, _, err := readString(resp)
	if err != nil {
		return "", fmt.Errorf("ipc: malformed hello response: %v", err)
	}
	c.mu.Lock()
	c.helloName, c.helloSecret, c.helloRole, c.helloSent = name, secret, role, true
	c.mu.Unlock()
	return resolved, nil
}

// Read requests a file through the server's stage — the intercepted read
// path for multi-process consumers. A read consumes its sample from the
// evict-on-read buffer, so it is not resendable: after ErrConnBroken the
// caller must decide whether to reissue (the sample may or may not have
// been consumed server-side).
func (c *Client) Read(name string) (storage.Data, error) {
	c.mu.Lock()
	tracer := c.tracer
	pooled := c.pool != nil
	c.mu.Unlock()
	ctx := tracer.StartTrace()
	start := tracer.Now()
	var (
		data storage.Data
		err  error
	)
	for attempt := 0; ; attempt++ {
		if pooled {
			data, err = c.readPooled(name, ctx.Trace)
		} else {
			data, err = c.readAlloc(name, ctx.Trace)
		}
		// A typed load shed happened before the read executed, so waiting
		// out the server's retry-after hint and resending is safe — the one
		// exception to the read path's never-resend rule. The shed check
		// lives behind the error branch so the success path never pays the
		// errors.As target's heap escape.
		if err == nil {
			break
		}
		var oe *tenancy.OverloadError
		if !errors.As(err, &oe) || attempt >= c.cfg.OverloadRetries {
			break
		}
		time.Sleep(clampRetryAfter(oe.RetryAfter))
	}
	if ctx.Sampled {
		sp := obs.Span{
			Trace:   ctx.Trace,
			Stage:   obs.StageIPC,
			Name:    name,
			At:      start,
			Latency: tracer.Now() - start,
		}
		if err != nil {
			sp.Error = err.Error()
		}
		tracer.Record(sp)
	}
	return data, err
}

// readAlloc is the plain read path: the response frame is decoded from a
// per-call buffer. The payload sub-slice is handed to the caller without a
// defensive copy — the frame buffer was allocated for exactly this
// response, so aliasing it is safe and saves one full payload copy.
func (c *Client) readAlloc(name string, trace uint64) (storage.Data, error) {
	resp, err := c.roundTripTrace(OpRead, trace, appendString(nil, name), false)
	if err != nil {
		return storage.Data{}, err
	}
	return decodeReadResponse(name, resp)
}

// decodeReadResponse parses an OpRead/OpPeerRead OK payload (size +
// uvarint-prefixed bytes) into a Data handed to the caller without a
// defensive copy.
func decodeReadResponse(name string, resp []byte) (storage.Data, error) {
	size, k := binary.Uvarint(resp)
	if k <= 0 {
		return storage.Data{}, fmt.Errorf("ipc: malformed read response")
	}
	bytes, _, err := readBytesNoCopy(resp[k:])
	if err != nil {
		return storage.Data{}, err
	}
	if len(bytes) == 0 {
		bytes = nil
	}
	return storage.Data{Name: name, Size: int64(size), Bytes: bytes}, nil
}

// PeerRead requests a sample from this server's buffer on behalf of
// another cluster node (OpPeerRead): the requester does not own the sample
// and the owner serves it — ideally a buffer hit, thanks to clairvoyant
// placement. Like Read it consumes the sample from the owner's
// evict-on-read buffer, so it is not resendable; the caller (the fabric)
// fails over to the slow store on ErrConnBroken rather than resending. The
// sampled trace id (if any) rides the frame so owner-side peer-serve spans
// join the requester's trace.
func (c *Client) PeerRead(name string) (storage.Data, error) {
	c.mu.Lock()
	tracer := c.tracer
	c.mu.Unlock()
	ctx := tracer.StartTrace()
	resp, err := c.roundTripTrace(OpPeerRead, ctx.Trace, appendString(nil, name), false)
	if err != nil {
		return storage.Data{}, err
	}
	return decodeReadResponse(name, resp)
}

// readPooled performs one read round trip, landing the payload directly in
// a pool buffer: frame header and response head are parsed from small
// stack buffers, then the payload bytes are received straight into the
// lease returned to the caller. Mirrors roundTripTrace's non-resendable
// discipline: redial a poisoned connection before the send, never resend
// after it, and poison on any transport or framing failure.
func (c *Client) readPooled(name string, trace uint64) (storage.Data, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return storage.Data{}, net.ErrClosed
	}
	if c.broken {
		if err := c.redialLocked(0); err != nil {
			return storage.Data{}, fmt.Errorf("%w: %v", ErrConnBroken, err)
		}
	}
	data, err := c.exchangePooledLocked(name, trace)
	if err != nil {
		if isCleanError(err) {
			return storage.Data{}, err // well-framed server response: stream intact
		}
		c.poisonLocked()
		return storage.Data{}, fmt.Errorf("%w: %v", ErrConnBroken, err)
	}
	return data, nil
}

// clampRetryAfter bounds a server-issued retry hint to something sane even
// against a buggy or hostile server.
func clampRetryAfter(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Millisecond
	}
	if d > 10*time.Second {
		return 10 * time.Second
	}
	return d
}

// exchangePooledLocked is the pooled wire exchange. Caller holds c.mu.
func (c *Client) exchangePooledLocked(name string, trace uint64) (storage.Data, error) {
	c.req = appendString(c.req[:0], name)
	if c.cfg.WriteTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.cfg.WriteTimeout))
		defer c.conn.SetWriteDeadline(time.Time{})
	}
	// The request is tiny (one name), so header + payload are assembled in
	// one reused scratch and sent with a single Write — no per-call frame
	// buffer (writeFrame's stack header escapes through conn.Write).
	if len(c.req)+9 > MaxFrame {
		return storage.Data{}, ErrFrameTooLarge
	}
	c.wire = appendFrameHeader(c.wire[:0], OpRead, trace, len(c.req))
	c.wire = append(c.wire, c.req...)
	if _, err := c.conn.Write(c.wire); err != nil {
		return storage.Data{}, err
	}
	if c.cfg.ReadTimeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.cfg.ReadTimeout))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	// Reused header/head scratch: a stack array would escape to the heap
	// through the conn.Read interface call, costing an allocation per read.
	if cap(c.hdr) < 13 {
		c.hdr = make([]byte, 13)
	}
	hdr := c.hdr[:13]
	if _, err := io.ReadFull(c.conn, hdr); err != nil {
		return storage.Data{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 9 {
		return storage.Data{}, fmt.Errorf("ipc: short frame (%d bytes)", n)
	}
	if n > MaxFrame {
		return storage.Data{}, ErrFrameTooLarge
	}
	if op := hdr[4]; op != OpRead {
		return storage.Data{}, fmt.Errorf("ipc: response opcode %d for request %d", op, OpRead)
	}
	if got := binary.BigEndian.Uint64(hdr[5:13]); got != trace {
		return storage.Data{}, fmt.Errorf("ipc: response trace %#x for request %#x", got, trace)
	}
	// The response head (status + size + payload length) is at most
	// 1 + 2*MaxVarintLen64 bytes; read just enough to parse it, then land
	// the payload straight in the pool buffer.
	payloadLen := int(n) - 9
	const preMax = 1 + 2*binary.MaxVarintLen64
	if cap(c.pre) < preMax {
		c.pre = make([]byte, preMax)
	}
	pre := c.pre[:preMax]
	pn := payloadLen
	if pn > len(pre) {
		pn = len(pre)
	}
	if _, err := io.ReadFull(c.conn, pre[:pn]); err != nil {
		return storage.Data{}, err
	}
	if pn < 1 {
		return storage.Data{}, fmt.Errorf("ipc: empty response")
	}
	switch pre[0] {
	case statusOK:
	case statusErr, statusOverloaded:
		// Error paths (cold): drain the rest of the frame and decode;
		// the stream stays synchronized either way.
		rest := make([]byte, payloadLen-pn)
		if _, err := io.ReadFull(c.conn, rest); err != nil {
			return storage.Data{}, err
		}
		full := append(append([]byte(nil), pre[1:pn]...), rest...)
		if pre[0] == statusOverloaded {
			oe, err := parseOverload(full)
			if err != nil {
				return storage.Data{}, err
			}
			return storage.Data{}, oe
		}
		msg, _, err := readString(full)
		if err != nil {
			return storage.Data{}, fmt.Errorf("ipc: malformed error response: %v", err)
		}
		return storage.Data{}, &RemoteError{Msg: msg}
	default:
		return storage.Data{}, fmt.Errorf("ipc: unknown response status %d", pre[0])
	}
	size, k1 := binary.Uvarint(pre[1:pn])
	if k1 <= 0 {
		return storage.Data{}, fmt.Errorf("ipc: malformed read response")
	}
	blen, k2 := binary.Uvarint(pre[1+k1 : pn])
	if k2 <= 0 {
		return storage.Data{}, fmt.Errorf("ipc: malformed bytes length")
	}
	consumed := 1 + k1 + k2
	if consumed+int(blen) != payloadLen {
		return storage.Data{}, fmt.Errorf("ipc: read response length mismatch (head %d + payload %d != frame %d)", consumed, blen, payloadLen)
	}
	if blen == 0 {
		return storage.Data{Name: name, Size: int64(size)}, nil
	}
	ref := c.pool.Get(int(blen))
	buf := ref.Bytes()
	copied := copy(buf, pre[consumed:pn])
	if _, err := io.ReadFull(c.conn, buf[copied:]); err != nil {
		ref.Release()
		return storage.Data{}, err
	}
	return storage.Data{Name: name, Size: int64(size), Bytes: buf, Ref: ref}, nil
}

// SubmitPlan forwards an epoch's shuffled filename list. A plan mutates
// stage state, so it is never retried in-call: on a transport failure the
// caller decides whether resubmitting is safe.
func (c *Client) SubmitPlan(names []string) error {
	_, err := c.SubmitEpoch(names)
	return err
}

// SubmitEpoch is SubmitPlan returning the issued epoch id and how many
// entries the server enqueued. Non-resendable like SubmitPlan: a resend
// would register a second epoch.
func (c *Client) SubmitEpoch(names []string) (core.PlanResult, error) {
	payload := binary.AppendUvarint(nil, uint64(len(names)))
	for _, n := range names {
		payload = appendString(payload, n)
	}
	resp, err := c.roundTrip(OpPlan, payload, false)
	if err != nil {
		return core.PlanResult{}, err
	}
	id, k1 := binary.Uvarint(resp)
	if k1 <= 0 {
		return core.PlanResult{}, fmt.Errorf("ipc: malformed plan response")
	}
	enq, k2 := binary.Uvarint(resp[k1:])
	if k2 <= 0 {
		return core.PlanResult{}, fmt.Errorf("ipc: malformed plan response")
	}
	return core.PlanResult{Epoch: core.EpochID(id), Enqueued: int(enq)}, nil
}

// CancelEpoch cancels a plan epoch remotely, reporting how many plan
// entries the server removed. Resendable: cancellation is idempotent.
func (c *Client) CancelEpoch(id core.EpochID) (int, error) {
	resp, err := c.roundTrip(OpCancelEpoch, binary.AppendUvarint(nil, uint64(id)), true)
	if err != nil {
		return 0, err
	}
	removed, k := binary.Uvarint(resp)
	if k <= 0 {
		return 0, fmt.Errorf("ipc: malformed cancel response")
	}
	return int(removed), nil
}

// Epochs fetches the server's retained plan-epoch statuses.
func (c *Client) Epochs() ([]core.EpochStatus, error) {
	resp, err := c.roundTrip(OpEpochs, nil, true)
	if err != nil {
		return nil, err
	}
	var out []core.EpochStatus
	if err := json.Unmarshal(resp, &out); err != nil {
		return nil, fmt.Errorf("ipc: decode epochs: %w", err)
	}
	return out, nil
}

// Stats fetches the stage's monitoring snapshot.
func (c *Client) Stats() (core.StageStats, error) {
	resp, err := c.roundTrip(OpStats, nil, true)
	if err != nil {
		return core.StageStats{}, err
	}
	var stats core.StageStats
	if err := json.Unmarshal(resp, &stats); err != nil {
		return core.StageStats{}, fmt.Errorf("ipc: decode stats: %w", err)
	}
	return stats, nil
}

// SetProducers adjusts the stage's t remotely (control path).
func (c *Client) SetProducers(n int) error {
	if n < 0 {
		n = 0
	}
	_, err := c.roundTrip(OpSetProducers, binary.AppendUvarint(nil, uint64(n)), true)
	return err
}

// SetBufferCapacity adjusts the stage's N remotely (control path).
func (c *Client) SetBufferCapacity(n int) error {
	if n < 1 {
		n = 1
	}
	_, err := c.roundTrip(OpSetBuffer, binary.AppendUvarint(nil, uint64(n)), true)
	return err
}

// SetBufferShards adjusts the buffer's shard count K remotely (control
// path). Resendable: the knob is an absolute value.
func (c *Client) SetBufferShards(k int) error {
	if k < 1 {
		k = 1
	}
	_, err := c.roundTrip(OpSetShards, binary.AppendUvarint(nil, uint64(k)), true)
	return err
}

// SetTraceSampling adjusts the server tracer's head-sampling probability
// remotely (control path). Resendable: the knob is an absolute value.
func (c *Client) SetTraceSampling(p float64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(p))
	_, err := c.roundTrip(OpSetTraceSampling, buf[:], true)
	return err
}

// Decisions fetches the server's autotuner decision audit log as raw JSON
// (an array of control.DecisionRecord).
func (c *Client) Decisions() ([]byte, error) {
	return c.roundTrip(OpDecisions, nil, true)
}

// Bundle fetches the server's one-shot diagnostic bundle as raw JSON
// (an httpadmin.Bundle document).
func (c *Client) Bundle() ([]byte, error) {
	return c.roundTrip(OpBundle, nil, true)
}

// Tenants fetches the server's per-tenant QoS snapshot.
func (c *Client) Tenants() (tenancy.Snapshot, error) {
	resp, err := c.roundTrip(OpTenants, nil, true)
	if err != nil {
		return tenancy.Snapshot{}, err
	}
	var snap tenancy.Snapshot
	if err := json.Unmarshal(resp, &snap); err != nil {
		return tenancy.Snapshot{}, fmt.Errorf("ipc: decode tenants: %w", err)
	}
	return snap, nil
}

// SetTenant adjusts a tenant's weight and/or byte budget remotely (zero
// leaves the respective knob unchanged). Resendable: the knobs are
// absolute values.
func (c *Client) SetTenant(name string, weight, bytesPerSecond float64) error {
	payload := appendString(nil, name)
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], math.Float64bits(weight))
	binary.BigEndian.PutUint64(buf[8:], math.Float64bits(bytesPerSecond))
	payload = append(payload, buf[:]...)
	_, err := c.roundTrip(OpSetTenant, payload, true)
	return err
}

// Ping checks server liveness.
func (c *Client) Ping() error {
	_, err := c.roundTrip(OpPing, nil, true)
	return err
}

// Close severs the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
