package ipc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/tenancy"
)

// ServeConfig tunes server-side resilience. The zero value preserves the
// historical behaviour (no per-connection deadlines).
type ServeConfig struct {
	// IdleTimeout bounds how long a connection may sit idle between
	// requests, and how long one request frame and its response may take
	// to cross the wire (0 = none). An expired connection is dropped; the
	// client redials.
	IdleTimeout time.Duration
}

// Server exposes one PRISMA stage over a UNIX domain socket. Each consumer
// process holds its own connection; requests on a connection are handled
// sequentially (matching the prototype's one-client-per-worker design),
// while different connections proceed concurrently. A panic in one request
// handler is isolated to an error response on that connection, not a
// server crash.
type Server struct {
	stage    *core.Stage
	listener net.Listener
	cfg      ServeConfig
	panics   atomic.Int64

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	closed    bool
	decisions func() ([]byte, error)                               // OpDecisions source (pre-marshaled JSON)
	bundle    func() ([]byte, error)                               // OpBundle source (pre-marshaled JSON)
	tenancy   *tenancy.Manager                                     // nil = single-tenant (hello still accepted)
	peerRead  func(name string, ctx obs.Ctx) (storage.Data, error) // OpPeerRead router (nil = local stage)
	// readRouter interposes on OpRead (nil = local stage) — the cluster
	// fabric's ownership routing for socket clients.
	readRouter func(tenant, name string, ctx obs.Ctx) (storage.Data, error)
	wg         sync.WaitGroup
}

// Serve starts a server for stage on the given socket path with the zero
// ServeConfig. It returns once the listener is active.
func Serve(socketPath string, stage *core.Stage) (*Server, error) {
	return ServeWithConfig(socketPath, stage, ServeConfig{})
}

// ServeWithConfig starts a server with explicit resilience settings.
func ServeWithConfig(socketPath string, stage *core.Stage, cfg ServeConfig) (*Server, error) {
	l, err := net.Listen("unix", socketPath)
	if err != nil {
		return nil, fmt.Errorf("ipc: listen %s: %w", socketPath, err)
	}
	s := &Server{stage: stage, listener: l, cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetDecisionSource wires the OpDecisions opcode to a provider of the
// autotuner's decision audit log, pre-marshaled as JSON. The indirection
// keeps ipc decoupled from the control package.
func (s *Server) SetDecisionSource(f func() ([]byte, error)) {
	s.mu.Lock()
	s.decisions = f
	s.mu.Unlock()
}

// SetBundleSource wires the OpBundle opcode to a provider of the one-shot
// diagnostic bundle, pre-marshaled as JSON (httpadmin.Bundle in practice).
// The indirection keeps ipc decoupled from the bundle assembly.
func (s *Server) SetBundleSource(f func() ([]byte, error)) {
	s.mu.Lock()
	s.bundle = f
	s.mu.Unlock()
}

// SetTenantManager wires multi-tenant QoS: hello frames authenticate
// against the manager, OpTenants/OpSetTenant expose its registry, and
// admission decisions (made by the stage's tenant gate, which shares this
// manager) surface as typed overload responses. Call before clients
// connect.
func (s *Server) SetTenantManager(m *tenancy.Manager) {
	s.mu.Lock()
	s.tenancy = m
	s.mu.Unlock()
}

// SetPeerReadHandler wires the OpPeerRead opcode to the cluster fabric's
// owner-side service routine (peer-serve accounting and spans happen
// there). Without a handler, OpPeerRead falls back to the local stage —
// a single-node server still answers peers correctly, just without
// cluster counters. Call before peers connect; the indirection keeps ipc
// decoupled from the placement package.
func (s *Server) SetPeerReadHandler(f func(name string, ctx obs.Ctx) (storage.Data, error)) {
	s.mu.Lock()
	s.peerRead = f
	s.mu.Unlock()
}

func (s *Server) peerReadHandler() func(name string, ctx obs.Ctx) (storage.Data, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peerRead
}

// SetReadRouter interposes on client OpRead requests — the cluster fabric
// uses it so socket clients get the same ownership routing (local buffer,
// peer forward, slow-store failover) as in-process readers. Without a
// router, reads go straight to the local stage. The router receives the
// connection's hello-resolved tenant so it can keep tenant-attributed
// reads on the local admission path. Call before clients connect.
func (s *Server) SetReadRouter(f func(tenant, name string, ctx obs.Ctx) (storage.Data, error)) {
	s.mu.Lock()
	s.readRouter = f
	s.mu.Unlock()
}

func (s *Server) readRouterFn() func(tenant, name string, ctx obs.Ctx) (storage.Data, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readRouter
}

func (s *Server) tenantManager() *tenancy.Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenancy
}

// Panics reports how many request handlers panicked and were isolated.
func (s *Server) Panics() int64 { return s.panics.Load() }

// Addr reports the socket address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connState is one connection's reusable scratch: the request-frame body
// buffer, the response head builder, the vectored-write segment list, and
// the interning table for repeated file names. A training epoch re-reads
// the same name set, so after the first epoch the request loop's
// steady-state allocation count is zero.
type connState struct {
	req   []byte      // request frame scratch (oversized requests fall back to alloc)
	head  []byte      // response head builder (status + fixed fields)
	wbuf  []byte      // frame header + head, the vectored write's first segment
	segs  [2][]byte   // backing array for the vectored-write segment list
	bufs  net.Buffers // rebuilt from segs per write: WriteTo consumes the slice
	names map[string]string

	// tenant is the connection's identity, set by the hello frame; empty
	// resolves to the default tenant at the gate. It lives on the
	// connection, not the request: one consumer process = one identity.
	tenant string
	// role is the hello frame's optional third field: "peer" marks a
	// fabric node's forwarding connection, "worker" (or absent, for
	// pre-cluster clients) an ordinary consumer.
	role string
}

func newConnState() *connState {
	return &connState{
		req:   make([]byte, 0, 4096),
		head:  make([]byte, 0, 64),
		wbuf:  make([]byte, 0, 128),
		names: make(map[string]string),
	}
}

// internName converts the wire bytes of a file name to a string, reusing
// the allocation made the first time this connection saw the name.
func (cs *connState) internName(b []byte) string {
	if s, ok := cs.names[string(b)]; ok { // no-alloc map probe
		return s
	}
	s := string(b)
	cs.names[s] = s
	return s
}

// response couples a response head with an optional zero-copy payload: body
// is appended on the wire after head without being copied into it, and ref
// (when non-nil) is the pooled lease backing body, released once the frame
// is written.
type response struct {
	head []byte
	body []byte
	ref  *mempool.Ref
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	cs := newConnState()
	for {
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		opcode, trace, payload, err := readFrameInto(conn, cs.req[:0])
		if err != nil {
			return // EOF, idle timeout, or broken peer: drop the connection
		}
		resp := s.safeHandle(cs, opcode, trace, payload)
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		err = s.writeResponse(conn, cs, opcode, trace, resp)
		if resp.ref != nil {
			// The payload crossed the socket (or failed to); either way the
			// server's reference — inherited from the evicting Take — ends
			// here.
			resp.ref.Release()
		}
		if err != nil {
			return
		}
	}
}

// writeResponse frames head+body with a vectored write, so a pooled
// payload goes from the buffer pool to the socket without an intermediate
// copy. Caller releases resp.ref.
func (s *Server) writeResponse(conn net.Conn, cs *connState, opcode byte, trace uint64, r response) error {
	payloadLen := len(r.head) + len(r.body)
	if payloadLen+9 > MaxFrame {
		return ErrFrameTooLarge
	}
	// One segment carries frame header + head; the payload rides as the
	// second segment (writev on UNIX sockets), untouched.
	cs.wbuf = appendFrameHeader(cs.wbuf[:0], opcode, trace, payloadLen)
	cs.wbuf = append(cs.wbuf, r.head...)
	if len(r.body) == 0 {
		_, err := conn.Write(cs.wbuf)
		return err
	}
	// net.Buffers.WriteTo consumes the slice it is called on (advancing it
	// and dropping capacity), so the segment list is rebuilt from the fixed
	// backing array each time rather than re-appended in place.
	cs.segs[0], cs.segs[1] = cs.wbuf, r.body
	cs.bufs = net.Buffers(cs.segs[:])
	_, err := cs.bufs.WriteTo(conn)
	return err
}

// safeHandle isolates a panicking handler to an error response: one bad
// request (or a bug in one opcode path) must not take down the stage every
// other consumer is reading through.
func (s *Server) safeHandle(cs *connState, opcode byte, trace uint64, payload []byte) (resp response) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			resp = response{head: errResponse(fmt.Errorf("handler panic on opcode %d: %v", opcode, r))}
		}
	}()
	return s.handle(cs, opcode, trace, payload)
}

// handle dispatches one request and builds the response.
func (s *Server) handle(cs *connState, opcode byte, trace uint64, payload []byte) response {
	switch opcode {
	case OpRead:
		nameBytes, _, err := readStringBytes(payload)
		if err != nil {
			return response{head: errResponse(err)}
		}
		name := cs.internName(nameBytes)
		// A non-zero trace continues the client's sampled span; the
		// server-side handling span shares its id so client and server
		// views of one read join into a single trace.
		ctx := obs.Ctx{Trace: trace, Sampled: trace != 0}
		tracer := s.stage.Tracer()
		start := tracer.Now()
		var data storage.Data
		if rr := s.readRouterFn(); rr != nil {
			data, err = rr(cs.tenant, name, ctx)
		} else {
			data, err = s.stage.ReadTenantCtx(cs.tenant, name, ctx)
		}
		if ctx.Sampled {
			sp := obs.Span{
				Trace:   ctx.Trace,
				Stage:   obs.StageIPCServe,
				Name:    name,
				At:      start,
				Latency: tracer.Now() - start,
				Size:    data.Size,
			}
			if err != nil {
				sp.Error = err.Error()
			}
			tracer.Record(sp)
		}
		if err != nil {
			// A load shed is typed end to end: the client's backoff reads
			// the retry-after hint instead of treating it as a read failure.
			var oe *tenancy.OverloadError
			if errors.As(err, &oe) {
				return response{head: overloadResponse(oe)}
			}
			return response{head: errResponse(err)}
		}
		// Head: status + size + payload length; the payload itself is
		// written vectored, straight from the (pooled) read buffer.
		head := append(cs.head[:0], statusOK)
		head = binary.AppendUvarint(head, uint64(data.Size))
		head = binary.AppendUvarint(head, uint64(len(data.Bytes)))
		return response{head: head, body: data.Bytes, ref: data.Ref}

	case OpPeerRead:
		nameBytes, _, err := readStringBytes(payload)
		if err != nil {
			return response{head: errResponse(err)}
		}
		name := cs.internName(nameBytes)
		ctx := obs.Ctx{Trace: trace, Sampled: trace != 0}
		var data storage.Data
		if pr := s.peerReadHandler(); pr != nil {
			// The fabric's owner-side routine: peer-serve counters and
			// spans live there.
			data, err = pr(name, ctx)
		} else {
			data, err = s.stage.ReadCtx(name, ctx)
		}
		if err != nil {
			var oe *tenancy.OverloadError
			if errors.As(err, &oe) {
				return response{head: overloadResponse(oe)}
			}
			return response{head: errResponse(err)}
		}
		head := append(cs.head[:0], statusOK)
		head = binary.AppendUvarint(head, uint64(data.Size))
		head = binary.AppendUvarint(head, uint64(len(data.Bytes)))
		return response{head: head, body: data.Bytes, ref: data.Ref}

	case OpHello:
		name, rest, err := readString(payload)
		if err != nil {
			return response{head: errResponse(err)}
		}
		secret, rest, err := readString(rest)
		if err != nil {
			return response{head: errResponse(err)}
		}
		// Optional third field (cluster fabric: the connection's role).
		// Pre-cluster clients send two strings; the server has always
		// ignored trailing bytes here, so both directions stay compatible.
		if len(rest) > 0 {
			role, _, err := readString(rest)
			if err != nil {
				return response{head: errResponse(err)}
			}
			cs.role = role
		}
		resolved := name
		if m := s.tenantManager(); m != nil {
			resolved, err = m.Authenticate(name, secret)
			if err != nil {
				return response{head: errResponse(err)}
			}
		} else if resolved == "" {
			// Single-tenant server: accept the hello so clients can be
			// written tenancy-first; identity is recorded but unenforced.
			resolved = tenancy.DefaultTenant
		}
		cs.tenant = resolved
		return response{head: okResponse(appendString(nil, resolved))}

	default:
		return response{head: s.handleControl(opcode, payload)}
	}
}

// handleControl dispatches the non-read opcodes, whose responses are small
// head-only frames.
func (s *Server) handleControl(opcode byte, payload []byte) []byte {
	switch opcode {
	case OpPlan:
		count, k := binary.Uvarint(payload)
		if k <= 0 {
			return errResponse(errors.New("malformed plan count"))
		}
		payload = payload[k:]
		// Cap the preallocation: the count is attacker-controlled; the
		// slice still grows to the actual number of parsed names.
		prealloc := count
		if prealloc > 4096 {
			prealloc = 4096
		}
		names := make([]string, 0, prealloc)
		for i := uint64(0); i < count; i++ {
			var name string
			var err error
			name, payload, err = readString(payload)
			if err != nil {
				return errResponse(err)
			}
			names = append(names, name)
		}
		res, err := s.stage.SubmitEpoch(names)
		if err != nil {
			return errResponse(err)
		}
		// Epoch id + enqueued count; pre-epoch clients ignore the payload.
		blob := binary.AppendUvarint(nil, uint64(res.Epoch))
		blob = binary.AppendUvarint(blob, uint64(res.Enqueued))
		return okResponse(blob)

	case OpCancelEpoch:
		id, k := binary.Uvarint(payload)
		if k <= 0 {
			return errResponse(errors.New("malformed epoch id"))
		}
		dropped, err := s.stage.CancelEpoch(core.EpochID(id))
		if err != nil {
			return errResponse(err)
		}
		return okResponse(binary.AppendUvarint(nil, uint64(dropped)))

	case OpEpochs:
		blob, err := json.Marshal(s.stage.Epochs())
		if err != nil {
			return errResponse(err)
		}
		return okResponse(blob)

	case OpStats:
		stats := s.stage.Stats()
		blob, err := json.Marshal(stats)
		if err != nil {
			return errResponse(err)
		}
		return okResponse(blob)

	case OpSetProducers:
		n, k := binary.Uvarint(payload)
		if k <= 0 {
			return errResponse(errors.New("malformed producer count"))
		}
		s.stage.SetProducers(int(n))
		return okResponse(nil)

	case OpSetBuffer:
		n, k := binary.Uvarint(payload)
		if k <= 0 {
			return errResponse(errors.New("malformed buffer capacity"))
		}
		s.stage.SetBufferCapacity(int(n))
		return okResponse(nil)

	case OpSetShards:
		n, k := binary.Uvarint(payload)
		if k <= 0 {
			return errResponse(errors.New("malformed shard count"))
		}
		s.stage.SetBufferShards(int(n))
		return okResponse(nil)

	case OpSetTraceSampling:
		if len(payload) != 8 {
			return errResponse(errors.New("malformed sampling probability"))
		}
		p := math.Float64frombits(binary.BigEndian.Uint64(payload))
		if math.IsNaN(p) || p < 0 || p > 1 {
			return errResponse(fmt.Errorf("sampling probability %v outside [0, 1]", p))
		}
		s.stage.SetTraceSampling(p)
		return okResponse(nil)

	case OpDecisions:
		s.mu.Lock()
		src := s.decisions
		s.mu.Unlock()
		if src == nil {
			return errResponse(errors.New("decision log unavailable: no controller attached"))
		}
		blob, err := src()
		if err != nil {
			return errResponse(err)
		}
		return okResponse(blob)

	case OpBundle:
		s.mu.Lock()
		src := s.bundle
		s.mu.Unlock()
		if src == nil {
			return errResponse(errors.New("diagnostic bundle unavailable: no bundle source attached"))
		}
		blob, err := src()
		if err != nil {
			return errResponse(err)
		}
		return okResponse(blob)

	case OpTenants:
		m := s.tenantManager()
		if m == nil {
			return errResponse(errors.New("tenant stats unavailable: no tenancy manager attached"))
		}
		blob, err := json.Marshal(m.Stats())
		if err != nil {
			return errResponse(err)
		}
		return okResponse(blob)

	case OpSetTenant:
		m := s.tenantManager()
		if m == nil {
			return errResponse(errors.New("tenant control unavailable: no tenancy manager attached"))
		}
		name, rest, err := readString(payload)
		if err != nil {
			return errResponse(err)
		}
		if len(rest) != 16 {
			return errResponse(errors.New("malformed set-tenant payload"))
		}
		weight := math.Float64frombits(binary.BigEndian.Uint64(rest[:8]))
		bytesPerSec := math.Float64frombits(binary.BigEndian.Uint64(rest[8:16]))
		if math.IsNaN(weight) || math.IsNaN(bytesPerSec) || weight < 0 || bytesPerSec < 0 {
			return errResponse(fmt.Errorf("invalid tenant knobs (weight %v, bytes/s %v)", weight, bytesPerSec))
		}
		if err := m.SetTenant(name, weight, bytesPerSec); err != nil {
			return errResponse(err)
		}
		return okResponse(nil)

	case OpPing:
		return okResponse(nil)

	default:
		return errResponse(fmt.Errorf("unknown opcode %d", opcode))
	}
}

// Close stops accepting, severs live connections, and waits for handler
// goroutines to drain. It does not close the stage.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
