package ipc

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/obs"
)

// ServeConfig tunes server-side resilience. The zero value preserves the
// historical behaviour (no per-connection deadlines).
type ServeConfig struct {
	// IdleTimeout bounds how long a connection may sit idle between
	// requests, and how long one request frame and its response may take
	// to cross the wire (0 = none). An expired connection is dropped; the
	// client redials.
	IdleTimeout time.Duration
}

// Server exposes one PRISMA stage over a UNIX domain socket. Each consumer
// process holds its own connection; requests on a connection are handled
// sequentially (matching the prototype's one-client-per-worker design),
// while different connections proceed concurrently. A panic in one request
// handler is isolated to an error response on that connection, not a
// server crash.
type Server struct {
	stage    *core.Stage
	listener net.Listener
	cfg      ServeConfig
	panics   atomic.Int64

	mu        sync.Mutex
	conns     map[net.Conn]struct{}
	closed    bool
	decisions func() ([]byte, error) // OpDecisions source (pre-marshaled JSON)
	wg        sync.WaitGroup
}

// Serve starts a server for stage on the given socket path with the zero
// ServeConfig. It returns once the listener is active.
func Serve(socketPath string, stage *core.Stage) (*Server, error) {
	return ServeWithConfig(socketPath, stage, ServeConfig{})
}

// ServeWithConfig starts a server with explicit resilience settings.
func ServeWithConfig(socketPath string, stage *core.Stage, cfg ServeConfig) (*Server, error) {
	l, err := net.Listen("unix", socketPath)
	if err != nil {
		return nil, fmt.Errorf("ipc: listen %s: %w", socketPath, err)
	}
	s := &Server{stage: stage, listener: l, cfg: cfg, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetDecisionSource wires the OpDecisions opcode to a provider of the
// autotuner's decision audit log, pre-marshaled as JSON. The indirection
// keeps ipc decoupled from the control package.
func (s *Server) SetDecisionSource(f func() ([]byte, error)) {
	s.mu.Lock()
	s.decisions = f
	s.mu.Unlock()
}

// Panics reports how many request handlers panicked and were isolated.
func (s *Server) Panics() int64 { return s.panics.Load() }

// Addr reports the socket address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		opcode, trace, payload, err := readFrame(conn)
		if err != nil {
			return // EOF, idle timeout, or broken peer: drop the connection
		}
		resp := s.safeHandle(opcode, trace, payload)
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		if err := writeFrame(conn, opcode, trace, resp); err != nil {
			return
		}
	}
}

// safeHandle isolates a panicking handler to an error response: one bad
// request (or a bug in one opcode path) must not take down the stage every
// other consumer is reading through.
func (s *Server) safeHandle(opcode byte, trace uint64, payload []byte) (resp []byte) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			resp = errResponse(fmt.Errorf("handler panic on opcode %d: %v", opcode, r))
		}
	}()
	return s.handle(opcode, trace, payload)
}

// handle dispatches one request and builds the response payload.
func (s *Server) handle(opcode byte, trace uint64, payload []byte) []byte {
	switch opcode {
	case OpRead:
		name, _, err := readString(payload)
		if err != nil {
			return errResponse(err)
		}
		// A non-zero trace continues the client's sampled span; the
		// server-side handling span shares its id so client and server
		// views of one read join into a single trace.
		ctx := obs.Ctx{Trace: trace, Sampled: trace != 0}
		tracer := s.stage.Tracer()
		start := tracer.Now()
		data, err := s.stage.ReadCtx(name, ctx)
		if ctx.Sampled {
			sp := obs.Span{
				Trace:   ctx.Trace,
				Stage:   obs.StageIPCServe,
				Name:    name,
				At:      start,
				Latency: tracer.Now() - start,
				Size:    data.Size,
			}
			if err != nil {
				sp.Error = err.Error()
			}
			tracer.Record(sp)
		}
		if err != nil {
			return errResponse(err)
		}
		out := binary.AppendUvarint(nil, uint64(data.Size))
		out = appendBytes(out, data.Bytes)
		return okResponse(out)

	case OpPlan:
		count, k := binary.Uvarint(payload)
		if k <= 0 {
			return errResponse(errors.New("malformed plan count"))
		}
		payload = payload[k:]
		// Cap the preallocation: the count is attacker-controlled; the
		// slice still grows to the actual number of parsed names.
		prealloc := count
		if prealloc > 4096 {
			prealloc = 4096
		}
		names := make([]string, 0, prealloc)
		for i := uint64(0); i < count; i++ {
			var name string
			var err error
			name, payload, err = readString(payload)
			if err != nil {
				return errResponse(err)
			}
			names = append(names, name)
		}
		if err := s.stage.SubmitPlan(names); err != nil {
			return errResponse(err)
		}
		return okResponse(nil)

	case OpStats:
		stats := s.stage.Stats()
		blob, err := json.Marshal(stats)
		if err != nil {
			return errResponse(err)
		}
		return okResponse(blob)

	case OpSetProducers:
		n, k := binary.Uvarint(payload)
		if k <= 0 {
			return errResponse(errors.New("malformed producer count"))
		}
		s.stage.SetProducers(int(n))
		return okResponse(nil)

	case OpSetBuffer:
		n, k := binary.Uvarint(payload)
		if k <= 0 {
			return errResponse(errors.New("malformed buffer capacity"))
		}
		s.stage.SetBufferCapacity(int(n))
		return okResponse(nil)

	case OpSetShards:
		n, k := binary.Uvarint(payload)
		if k <= 0 {
			return errResponse(errors.New("malformed shard count"))
		}
		s.stage.SetBufferShards(int(n))
		return okResponse(nil)

	case OpSetTraceSampling:
		if len(payload) != 8 {
			return errResponse(errors.New("malformed sampling probability"))
		}
		p := math.Float64frombits(binary.BigEndian.Uint64(payload))
		if math.IsNaN(p) || p < 0 || p > 1 {
			return errResponse(fmt.Errorf("sampling probability %v outside [0, 1]", p))
		}
		s.stage.SetTraceSampling(p)
		return okResponse(nil)

	case OpDecisions:
		s.mu.Lock()
		src := s.decisions
		s.mu.Unlock()
		if src == nil {
			return errResponse(errors.New("decision log unavailable: no controller attached"))
		}
		blob, err := src()
		if err != nil {
			return errResponse(err)
		}
		return okResponse(blob)

	case OpPing:
		return okResponse(nil)

	default:
		return errResponse(fmt.Errorf("unknown opcode %d", opcode))
	}
}

// Close stops accepting, severs live connections, and waits for handler
// goroutines to drain. It does not close the stage.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}
