package ipc

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// startServer builds a real-mode PRISMA stage over generated files and
// serves it on a temp socket.
func startServer(t *testing.T, nFiles int) (*Server, *core.Stage, []string, string) {
	t.Helper()
	return startServerWithConfig(t, nFiles, ServeConfig{})
}

// startServerWithConfig is startServer with explicit server resilience
// settings.
func startServerWithConfig(t *testing.T, nFiles int, cfg ServeConfig) (*Server, *core.Stage, []string, string) {
	t.Helper()
	dir := t.TempDir()
	samples := make([]dataset.Sample, nFiles)
	names := make([]string, nFiles)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("f%03d.bin", i), Size: int64(1024 + i)}
		names[i] = samples[i].Name
	}
	man := dataset.MustNew(samples)
	if err := dataset.Generate(dir, man, 42); err != nil {
		t.Fatal(err)
	}
	env := conc.NewReal()
	backend := storage.NewDirBackend(dir)
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers: 2, MaxProducers: 8, InitialBufferCapacity: 8, MaxBufferCapacity: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	stage := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	pf.Start()

	sock := filepath.Join(t.TempDir(), "prisma.sock")
	srv, err := ServeWithConfig(sock, stage, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		stage.Close()
	})
	return srv, stage, names, sock
}

func TestClientReadPlannedFile(t *testing.T) {
	_, _, names, sock := startServer(t, 4)
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.SubmitPlan(names); err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		d, err := c.Read(n)
		if err != nil {
			t.Fatalf("Read(%s): %v", n, err)
		}
		want := int64(1024 + i)
		if d.Size != want || int64(len(d.Bytes)) != want {
			t.Fatalf("Read(%s): size %d, %d bytes, want %d", n, d.Size, len(d.Bytes), want)
		}
	}
}

func TestClientReadBypass(t *testing.T) {
	_, stage, names, sock := startServer(t, 3)
	c, err := Dial(sock)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// No plan submitted: the read bypasses the buffer but still succeeds.
	d, err := c.Read(names[0])
	if err != nil || d.Size != 1024 {
		t.Fatalf("Read = %+v, %v", d, err)
	}
	if stage.Stats().Bypasses != 1 {
		t.Fatalf("Bypasses = %d, want 1", stage.Stats().Bypasses)
	}
}

func TestClientReadMissingFileIsRemoteError(t *testing.T) {
	_, _, _, sock := startServer(t, 1)
	c, _ := Dial(sock)
	defer c.Close()
	_, err := c.Read("ghost.bin")
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestClientStatsAndControl(t *testing.T) {
	_, _, names, sock := startServer(t, 4)
	c, _ := Dial(sock)
	defer c.Close()
	if err := c.SubmitPlan(names[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(names[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.SetProducers(5); err != nil {
		t.Fatal(err)
	}
	if err := c.SetBufferCapacity(32); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reads < 1 {
		t.Fatalf("stats.Reads = %d, want >= 1", stats.Reads)
	}
	if stats.TargetProducers != 5 {
		t.Fatalf("TargetProducers = %d, want 5", stats.TargetProducers)
	}
	if stats.Buffer.Capacity != 32 {
		t.Fatalf("Buffer.Capacity = %d, want 32", stats.Buffer.Capacity)
	}
	if err := c.SetBufferShards(4); err != nil {
		t.Fatal(err)
	}
	stats, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Buffer.Shards != 4 {
		t.Fatalf("Buffer.Shards = %d, want 4", stats.Buffer.Shards)
	}
}

func TestManyConcurrentClients(t *testing.T) {
	// One client per simulated worker process, all reading concurrently —
	// the PyTorch integration shape.
	_, _, names, sock := startServer(t, 64)
	planner, _ := Dial(sock)
	defer planner.Close()
	if err := planner.SubmitPlan(names); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, len(names))
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(sock)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := w; i < len(names); i += workers {
				if _, err := c.Read(names[i]); err != nil {
					errs <- fmt.Errorf("worker %d read %s: %w", w, names[i], err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPing(t *testing.T) {
	_, _, _, sock := startServer(t, 1)
	c, _ := Dial(sock)
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseSeversClients(t *testing.T) {
	srv, _, _, sock := startServer(t, 1)
	c, _ := Dial(sock)
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Ping(); err == nil {
		t.Fatal("Ping succeeded after server close")
	}
	// Idempotent close.
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestDialMissingSocket(t *testing.T) {
	if _, err := Dial(filepath.Join(t.TempDir(), "nope.sock")); err == nil {
		t.Fatal("Dial of missing socket succeeded")
	}
}

func TestStringCodecRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "train/0001.jpg", string(make([]byte, 1000))} {
		buf := appendString([]byte{0xFF}, s) // leading junk survives
		got, rest, err := readString(buf[1:])
		if err != nil || got != s || len(rest) != 0 {
			t.Fatalf("round trip %q: got %q rest %d err %v", s, got, len(rest), err)
		}
	}
}

func TestStringCodecTruncated(t *testing.T) {
	buf := appendString(nil, "hello")
	if _, _, err := readString(buf[:3]); err == nil {
		t.Fatal("truncated string accepted")
	}
	if _, _, err := readString(nil); err == nil {
		t.Fatal("empty buffer accepted")
	}
}

func TestBytesCodecRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3, 4, 5}
	buf := appendBytes(nil, payload)
	got, rest, err := readBytes(buf)
	if err != nil || len(rest) != 0 || string(got) != string(payload) {
		t.Fatalf("round trip failed: %v %v %v", got, rest, err)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	prop := func(opcode byte, trace uint64, payload []byte) bool {
		var buf bytes.Buffer
		if err := writeFrame(&buf, opcode, trace, payload); err != nil {
			return false
		}
		gotOp, gotTrace, gotPayload, err := readFrame(&buf)
		if err != nil || gotOp != opcode || gotTrace != trace {
			return false
		}
		if len(gotPayload) != len(payload) {
			return false
		}
		for i := range payload {
			if gotPayload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, OpRead, 0, make([]byte, MaxFrame)); err != ErrFrameTooLarge {
		t.Fatalf("writeFrame oversize = %v, want ErrFrameTooLarge", err)
	}
	// A hostile length prefix is rejected before allocation.
	var hdr [13]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, _, _, err := readFrame(bytes.NewReader(hdr[:])); err != ErrFrameTooLarge {
		t.Fatalf("readFrame oversize = %v, want ErrFrameTooLarge", err)
	}
	// Frames shorter than opcode+trace are malformed.
	if _, _, _, err := readFrame(bytes.NewReader(make([]byte, 4))); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	short := [4]byte{0, 0, 0, 5} // length 5 < 9: opcode but truncated trace
	if _, _, _, err := readFrame(bytes.NewReader(append(short[:], make([]byte, 5)...))); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	_ = writeFrame(&buf, OpRead, 7, []byte("hello"))
	raw := buf.Bytes()
	if _, _, _, err := readFrame(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestParseResponseStatuses(t *testing.T) {
	if _, err := parseResponse(nil); err == nil {
		t.Error("empty response accepted")
	}
	if out, err := parseResponse(okResponse([]byte("x"))); err != nil || string(out) != "x" {
		t.Errorf("ok response: %v %v", out, err)
	}
	if _, err := parseResponse(errResponse(errors.New("boom"))); err == nil {
		t.Error("error response produced no error")
	}
	if _, err := parseResponse([]byte{99}); err == nil {
		t.Error("unknown status accepted")
	}
}
