package conc

import (
	"time"

	"github.com/dsrhaslab/prisma-go/internal/sim"
)

// SimEnv adapts a sim.Simulation to the Env interface. All threads created
// through Go become simulated processes; Sleep and the synchronization
// primitives consume virtual time only.
type SimEnv struct {
	S *sim.Simulation
}

// NewSimEnv wraps an existing simulation.
func NewSimEnv(s *sim.Simulation) *SimEnv { return &SimEnv{S: s} }

// Now reports the simulation's virtual clock.
func (e *SimEnv) Now() time.Duration { return e.S.Now() }

// Sleep suspends the calling simulated process for virtual duration d. It
// must be called from a process started via Go (or sim.Spawn).
func (e *SimEnv) Sleep(d time.Duration) {
	p := e.S.Current()
	if p == nil {
		panic("conc: SimEnv.Sleep called from outside a simulated process")
	}
	p.Sleep(d)
}

// Go spawns fn as a new simulated process starting at the current instant.
func (e *SimEnv) Go(name string, fn func()) {
	e.S.Spawn(name, func(*sim.Process) { fn() })
}

// NewMutex returns a simulated mutex.
func (e *SimEnv) NewMutex() Mutex { return e.S.NewMutex() }

// NewCond returns a simulated condition variable over m, which must come
// from this environment's NewMutex.
func (e *SimEnv) NewCond(m Mutex) Cond { return e.S.NewCond(m.(*sim.Mutex)) }

// NewWaitGroup returns a simulated wait group.
func (e *SimEnv) NewWaitGroup() WaitGroup { return e.S.NewWaitGroup() }
