package conc

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/sim"
)

// harness runs body under an Env and waits for completion. For the sim env
// it drives the simulation; for the real env it joins spawned goroutines.
type harness struct {
	name string
	run  func(t *testing.T, body func(env Env))
}

func harnesses() []harness {
	return []harness{
		{"sim", func(t *testing.T, body func(Env)) {
			t.Helper()
			s := sim.New()
			env := NewSimEnv(s)
			s.Spawn("test-body", func(*sim.Process) { body(env) })
			if err := s.Run(); err != nil {
				t.Fatalf("sim run: %v", err)
			}
		}},
		{"real", func(t *testing.T, body func(Env)) {
			t.Helper()
			env := NewScaledReal(1000)
			done := make(chan struct{})
			env.Go("test-body", func() {
				defer close(done)
				body(env)
			})
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("real-env test body timed out")
			}
			env.Join()
		}},
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				start := env.Now()
				env.Sleep(50 * time.Millisecond)
				if got := env.Now() - start; got < 50*time.Millisecond {
					t.Errorf("slept %v, want >= 50ms", got)
				}
			})
		})
	}
}

func TestMutexProtectsCounter(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				mu := env.NewMutex()
				wg := env.NewWaitGroup()
				counter := 0
				const workers, iters = 8, 200
				wg.Add(workers)
				for i := 0; i < workers; i++ {
					env.Go(fmt.Sprintf("w%d", i), func() {
						defer wg.Done()
						for j := 0; j < iters; j++ {
							mu.Lock()
							counter++
							mu.Unlock()
						}
					})
				}
				wg.Wait()
				if counter != workers*iters {
					t.Errorf("counter = %d, want %d", counter, workers*iters)
				}
			})
		})
	}
}

func TestCondProducerConsumer(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				mu := env.NewMutex()
				cond := env.NewCond(mu)
				wg := env.NewWaitGroup()
				var box []int
				const n = 50
				wg.Add(2)
				env.Go("producer", func() {
					defer wg.Done()
					for i := 0; i < n; i++ {
						mu.Lock()
						box = append(box, i)
						cond.Signal()
						mu.Unlock()
						env.Sleep(time.Millisecond)
					}
				})
				got := make([]int, 0, n)
				env.Go("consumer", func() {
					defer wg.Done()
					for len(got) < n {
						mu.Lock()
						for len(box) == 0 {
							cond.Wait()
						}
						got = append(got, box[0])
						box = box[1:]
						mu.Unlock()
					}
				})
				wg.Wait()
				for i, v := range got {
					if v != i {
						t.Errorf("got[%d] = %d, want %d", i, v, i)
						break
					}
				}
			})
		})
	}
}

func TestQueueFIFO(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 0)
				for i := 0; i < 10; i++ {
					if err := q.Put(i); err != nil {
						t.Fatalf("Put: %v", err)
					}
				}
				for i := 0; i < 10; i++ {
					v, ok := q.Get()
					if !ok || v != i {
						t.Fatalf("Get = %d,%v, want %d,true", v, ok, i)
					}
				}
			})
		})
	}
}

func TestQueueBlocksWhenFull(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 2)
				wg := env.NewWaitGroup()
				wg.Add(1)
				var putDone time.Duration
				env.Go("producer", func() {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						_ = q.Put(i)
					}
					putDone = env.Now()
				})
				env.Sleep(100 * time.Millisecond)
				drainStart := env.Now()
				if v, ok := q.Get(); !ok || v != 0 {
					t.Errorf("Get = %d,%v, want 0,true", v, ok)
				}
				wg.Wait()
				if putDone < drainStart {
					t.Errorf("third Put completed at %v before a Get freed space at %v", putDone, drainStart)
				}
			})
		})
	}
}

func TestQueueBlocksWhenEmpty(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[string](env, 0)
				wg := env.NewWaitGroup()
				wg.Add(1)
				var got string
				env.Go("consumer", func() {
					defer wg.Done()
					got, _ = q.Get()
				})
				env.Sleep(50 * time.Millisecond)
				_ = q.Put("late")
				wg.Wait()
				if got != "late" {
					t.Errorf("got %q, want \"late\"", got)
				}
			})
		})
	}
}

func TestQueueCloseDrains(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 0)
				_ = q.Put(1)
				_ = q.Put(2)
				q.Close()
				if err := q.Put(3); err != ErrClosed {
					t.Errorf("Put after close = %v, want ErrClosed", err)
				}
				if v, ok := q.Get(); !ok || v != 1 {
					t.Errorf("drain 1: got %d,%v", v, ok)
				}
				if v, ok := q.Get(); !ok || v != 2 {
					t.Errorf("drain 2: got %d,%v", v, ok)
				}
				if _, ok := q.Get(); ok {
					t.Error("Get after drain reported ok")
				}
				if !q.Closed() {
					t.Error("Closed() = false after Close")
				}
			})
		})
	}
}

func TestQueueCloseWakesBlockedConsumer(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 0)
				wg := env.NewWaitGroup()
				wg.Add(1)
				var ok bool
				env.Go("consumer", func() {
					defer wg.Done()
					_, ok = q.Get()
				})
				env.Sleep(20 * time.Millisecond)
				q.Close()
				wg.Wait()
				if ok {
					t.Error("blocked Get returned ok after Close on empty queue")
				}
			})
		})
	}
}

func TestQueueCloseWakesBlockedProducer(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 1)
				_ = q.Put(0)
				wg := env.NewWaitGroup()
				wg.Add(1)
				var err error
				env.Go("producer", func() {
					defer wg.Done()
					err = q.Put(1)
				})
				env.Sleep(20 * time.Millisecond)
				q.Close()
				wg.Wait()
				if err != ErrClosed {
					t.Errorf("blocked Put = %v, want ErrClosed", err)
				}
			})
		})
	}
}

func TestQueueTryGet(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 0)
				if _, ok := q.TryGet(); ok {
					t.Error("TryGet on empty queue reported ok")
				}
				_ = q.Put(7)
				if v, ok := q.TryGet(); !ok || v != 7 {
					t.Errorf("TryGet = %d,%v, want 7,true", v, ok)
				}
			})
		})
	}
}

func TestQueueLen(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 0)
				for i := 0; i < 5; i++ {
					_ = q.Put(i)
				}
				if q.Len() != 5 {
					t.Errorf("Len = %d, want 5", q.Len())
				}
			})
		})
	}
}

func TestQueueSetCapacity(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 1)
				_ = q.Put(0)
				released := false
				wg := env.NewWaitGroup()
				wg.Add(1)
				env.Go("producer", func() {
					defer wg.Done()
					_ = q.Put(1)
					released = true
				})
				env.Sleep(30 * time.Millisecond)
				if released {
					t.Error("Put proceeded while full")
				}
				q.SetCapacity(2) // growing wakes the producer
				wg.Wait()
				if !released {
					t.Error("grow did not release producer")
				}
				if q.Capacity() != 2 {
					t.Errorf("Capacity = %d, want 2", q.Capacity())
				}
				q.SetCapacity(0) // unbounded
				for i := 0; i < 10; i++ {
					if err := q.Put(i); err != nil {
						t.Fatalf("unbounded Put: %v", err)
					}
				}
			})
		})
	}
}

func TestQueueSetCapacityNegativePanics(t *testing.T) {
	q := NewQueue[int](NewReal(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative capacity")
		}
	}()
	q.SetCapacity(-1)
}

func TestNegativeQueueCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative capacity")
		}
	}()
	NewQueue[int](NewReal(), -1)
}

func TestScaledRealClock(t *testing.T) {
	env := NewScaledReal(1000)
	start := env.Now()
	env.Sleep(time.Second) // wall time: ~1ms
	elapsed := env.Now() - start
	if elapsed < time.Second {
		t.Fatalf("scaled clock advanced %v, want >= 1s", elapsed)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("scaled clock advanced %v, implausibly large", elapsed)
	}
}

func TestRealSleepNonPositiveReturnsImmediately(t *testing.T) {
	env := NewReal()
	start := time.Now()
	env.Sleep(0)
	env.Sleep(-time.Hour)
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("non-positive Sleep blocked")
	}
}

// Property: queue preserves order and count for arbitrary input sequences,
// under the simulated environment.
func TestQueueOrderProperty(t *testing.T) {
	prop := func(vals []int32, capRaw uint8) bool {
		capacity := int(capRaw) % 5 // 0 = unbounded
		s := sim.New()
		env := NewSimEnv(s)
		var got []int32
		s.Spawn("driver", func(*sim.Process) {
			q := NewQueue[int32](env, capacity)
			wg := env.NewWaitGroup()
			wg.Add(2)
			env.Go("producer", func() {
				defer wg.Done()
				for _, v := range vals {
					_ = q.Put(v)
				}
				q.Close()
			})
			env.Go("consumer", func() {
				defer wg.Done()
				for {
					v, ok := q.Get()
					if !ok {
						return
					}
					got = append(got, v)
				}
			})
			wg.Wait()
		})
		if err := s.Run(); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
