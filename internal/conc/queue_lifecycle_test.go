package conc

import (
	"testing"
	"time"
)

func TestQueueGetOrStopPredicate(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 0)
				mu := env.NewMutex()
				stop := false
				var gotStopped bool
				done := env.NewCond(mu)
				finished := false
				env.Go("waiter", func() {
					_, ok, stopped := q.GetOr(func() bool {
						mu.Lock()
						defer mu.Unlock()
						return stop
					})
					mu.Lock()
					gotStopped = stopped && !ok
					finished = true
					done.Broadcast()
					mu.Unlock()
				})
				env.Sleep(5 * time.Millisecond)
				mu.Lock()
				if finished {
					mu.Unlock()
					t.Fatal("GetOr returned before stop was requested")
				}
				stop = true
				mu.Unlock()
				q.Wake()
				mu.Lock()
				for !finished {
					done.Wait()
				}
				mu.Unlock()
				if !gotStopped {
					t.Fatal("GetOr = ok, want stopped")
				}
			})
		})
	}
}

func TestQueueGetOrDeliversItems(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 0)
				if err := q.Put(7); err != nil {
					t.Fatal(err)
				}
				// A true stop predicate must not eat an available item.
				v, ok, stopped := q.GetOr(func() bool { return true })
				if !ok || stopped || v != 7 {
					t.Fatalf("GetOr = (%d, %v, %v), want (7, true, false)", v, ok, stopped)
				}
				// Nil predicate degrades to plain Get on a closed queue.
				q.Close()
				_, ok, stopped = q.GetOr(nil)
				if ok || stopped {
					t.Fatalf("GetOr on closed queue = (ok=%v, stopped=%v), want drained", ok, stopped)
				}
			})
		})
	}
}

func TestQueueDropWhere(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 0)
				for i := 1; i <= 6; i++ {
					if err := q.Put(i); err != nil {
						t.Fatal(err)
					}
				}
				if n := q.DropWhere(func(v int) bool { return v%2 == 0 }); n != 3 {
					t.Fatalf("DropWhere removed %d, want 3", n)
				}
				for _, want := range []int{1, 3, 5} {
					v, ok := q.Get()
					if !ok || v != want {
						t.Fatalf("Get = (%d, %v), want (%d, true)", v, ok, want)
					}
				}
				if q.Len() != 0 {
					t.Fatalf("Len = %d after drain, want 0", q.Len())
				}
			})
		})
	}
}

func TestQueueDropWhereUnblocksProducer(t *testing.T) {
	for _, h := range harnesses() {
		h := h
		t.Run(h.name, func(t *testing.T) {
			h.run(t, func(env Env) {
				q := NewQueue[int](env, 2)
				_ = q.Put(1)
				_ = q.Put(2)
				mu := env.NewMutex()
				cond := env.NewCond(mu)
				landed := false
				env.Go("producer", func() {
					_ = q.Put(3) // blocks: queue full
					mu.Lock()
					landed = true
					cond.Broadcast()
					mu.Unlock()
				})
				env.Sleep(time.Millisecond)
				if n := q.DropWhere(func(v int) bool { return v == 1 }); n != 1 {
					t.Fatalf("DropWhere removed %d, want 1", n)
				}
				mu.Lock()
				for !landed {
					cond.Wait()
				}
				mu.Unlock()
				for _, want := range []int{2, 3} {
					v, ok := q.Get()
					if !ok || v != want {
						t.Fatalf("Get = (%d, %v), want (%d, true)", v, ok, want)
					}
				}
			})
		})
	}
}
