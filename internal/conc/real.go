package conc

import (
	"sync"
	"time"
)

// Real is an Env backed by the wall clock and the standard library's
// concurrency primitives. Its epoch is the moment NewReal was called.
type Real struct {
	epoch time.Time
	// TimeScale compresses every Sleep by the given factor (e.g. 1000
	// turns a simulated 1 s device latency into 1 ms of wall time). A
	// scale of 0 or 1 sleeps in real time. Now() is reported in scaled
	// units so measured durations stay comparable with sim runs.
	TimeScale float64
	wg        sync.WaitGroup
}

// NewReal returns a real-time environment anchored at the current instant.
func NewReal() *Real { return &Real{epoch: time.Now()} }

// NewScaledReal returns a real-time environment whose sleeps are divided by
// scale and whose clock readings are multiplied back, so code observes
// durations as if it had slept unscaled.
func NewScaledReal(scale float64) *Real {
	if scale <= 0 {
		scale = 1
	}
	return &Real{epoch: time.Now(), TimeScale: scale}
}

// Now reports (scaled) time since the environment was created.
func (r *Real) Now() time.Duration {
	d := time.Since(r.epoch)
	if r.TimeScale > 1 {
		d = time.Duration(float64(d) * r.TimeScale)
	}
	return d
}

// Sleep pauses the calling goroutine for d (divided by TimeScale, if set).
func (r *Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if r.TimeScale > 1 {
		d = time.Duration(float64(d) / r.TimeScale)
	}
	time.Sleep(d)
}

// Go runs fn in a new goroutine. The name is ignored in the real
// environment; it exists for parity with the simulator's diagnostics.
func (r *Real) Go(name string, fn func()) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		fn()
	}()
}

// Join blocks until every goroutine started via Go has returned. It is a
// convenience for tests and daemons shutting down.
func (r *Real) Join() { r.wg.Wait() }

// NewMutex returns a *sync.Mutex.
func (r *Real) NewMutex() Mutex { return &sync.Mutex{} }

// NewCond returns a sync.Cond over the given mutex.
func (r *Real) NewCond(m Mutex) Cond { return sync.NewCond(m.(*sync.Mutex)) }

// NewWaitGroup returns a *sync.WaitGroup.
func (r *Real) NewWaitGroup() WaitGroup { return &sync.WaitGroup{} }
