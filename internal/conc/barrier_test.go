package conc

import (
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/sim"
)

func TestBarrierReleasesTogether(t *testing.T) {
	s := sim.New()
	env := NewSimEnv(s)
	var released []time.Duration
	s.Spawn("driver", func(*sim.Process) {
		b := NewBarrier(env, 3)
		wg := env.NewWaitGroup()
		wg.Add(3)
		for i := 0; i < 3; i++ {
			i := i
			env.Go(fmt.Sprintf("p%d", i), func() {
				defer wg.Done()
				env.Sleep(time.Duration(i+1) * time.Second) // staggered arrivals
				if !b.Await() {
					t.Error("barrier broken unexpectedly")
				}
				released = append(released, env.Now())
			})
		}
		wg.Wait()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, at := range released {
		if at != 3*time.Second {
			t.Fatalf("released at %v, want all at 3s (last arrival)", at)
		}
	}
}

func TestBarrierIsCyclic(t *testing.T) {
	s := sim.New()
	env := NewSimEnv(s)
	rounds := make([]int, 2)
	s.Spawn("driver", func(*sim.Process) {
		b := NewBarrier(env, 2)
		wg := env.NewWaitGroup()
		wg.Add(2)
		for i := 0; i < 2; i++ {
			i := i
			env.Go(fmt.Sprintf("p%d", i), func() {
				defer wg.Done()
				for r := 0; r < 5; r++ {
					env.Sleep(time.Duration(i) * time.Millisecond)
					if !b.Await() {
						t.Error("broken")
						return
					}
					rounds[i]++
				}
			})
		}
		wg.Wait()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds[0] != 5 || rounds[1] != 5 {
		t.Fatalf("rounds = %v, want 5/5", rounds)
	}
}

func TestBarrierBreakReleasesWaiters(t *testing.T) {
	s := sim.New()
	env := NewSimEnv(s)
	var result bool
	s.Spawn("driver", func(*sim.Process) {
		b := NewBarrier(env, 2)
		wg := env.NewWaitGroup()
		wg.Add(1)
		env.Go("waiter", func() {
			defer wg.Done()
			result = b.Await()
		})
		env.Sleep(time.Second)
		b.Break()
		wg.Wait()
		if !b.Broken() {
			t.Error("Broken() = false after Break")
		}
		// Future waiters fail immediately.
		if b.Await() {
			t.Error("Await succeeded on broken barrier")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if result {
		t.Fatal("broken barrier reported success")
	}
}

func TestBarrierSingleParty(t *testing.T) {
	env := NewReal()
	b := NewBarrier(env, 1)
	for i := 0; i < 3; i++ {
		if !b.Await() {
			t.Fatal("single-party barrier blocked")
		}
	}
}

func TestBarrierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero parties")
		}
	}()
	NewBarrier(NewReal(), 0)
}

func TestBarrierRealEnv(t *testing.T) {
	env := NewReal()
	b := NewBarrier(env, 4)
	done := make(chan bool, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- b.Await() }()
	}
	for i := 0; i < 4; i++ {
		select {
		case ok := <-done:
			if !ok {
				t.Fatal("barrier broken")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("barrier hung")
		}
	}
}
