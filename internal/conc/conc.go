// Package conc abstracts the execution environment of the PRISMA data and
// control planes so the same code can run under real time (goroutines,
// sync primitives, the wall clock) or under the deterministic virtual-time
// engine in internal/sim.
//
// Every blocking operation performed by PRISMA — sleeping, locking,
// condition waits — goes through an Env. The real environment maps directly
// onto the standard library; the simulated environment maps onto sim
// processes, which lets a full multi-epoch training run execute in
// milliseconds of wall time while remaining fully reproducible.
package conc

import "time"

// Mutex is the subset of sync.Mutex semantics PRISMA relies on.
type Mutex interface {
	Lock()
	Unlock()
}

// Cond mirrors sync.Cond: Wait atomically releases the associated mutex and
// blocks; Signal/Broadcast wake waiters.
type Cond interface {
	Wait()
	Signal()
	Broadcast()
}

// WaitGroup mirrors sync.WaitGroup.
type WaitGroup interface {
	Add(delta int)
	Done()
	Wait()
}

// Env is an execution environment: a clock, a spawner, and factories for
// synchronization primitives. Implementations: Real (wall clock) and SimEnv
// (virtual time).
type Env interface {
	// Now reports time elapsed since the environment's epoch.
	Now() time.Duration
	// Sleep suspends the calling thread of execution for d.
	Sleep(d time.Duration)
	// Go starts fn as a new thread of execution. name is used for
	// diagnostics only.
	Go(name string, fn func())
	// NewMutex returns a new unlocked mutex.
	NewMutex() Mutex
	// NewCond returns a condition variable bound to m, which must have
	// been produced by this environment's NewMutex.
	NewCond(m Mutex) Cond
	// NewWaitGroup returns a wait group with a zero counter.
	NewWaitGroup() WaitGroup
}
