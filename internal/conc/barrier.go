package conc

// Barrier is a reusable (cyclic) synchronization barrier for a fixed party
// count: Await blocks until all parties have arrived, then releases the
// generation together. It models the per-step all-reduce of synchronous
// distributed data-parallel training.
type Barrier struct {
	mu      Mutex
	cond    Cond
	parties int
	waiting int
	gen     uint64
	broken  bool
}

// NewBarrier returns a barrier for the given number of parties (>= 1).
func NewBarrier(env Env, parties int) *Barrier {
	if parties < 1 {
		panic("conc: barrier needs >= 1 party")
	}
	b := &Barrier{parties: parties}
	b.mu = env.NewMutex()
	b.cond = env.NewCond(b.mu)
	return b
}

// Await blocks until all parties arrive (the last arrival releases
// everyone and starts the next generation). It reports false if the
// barrier was broken while waiting.
func (b *Barrier) Await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.broken {
		return false
	}
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return true
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	return !b.broken
}

// Break permanently releases all current and future waiters with a false
// result (used when one party fails and the step can never complete).
func (b *Barrier) Break() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Broken reports whether Break was called.
func (b *Barrier) Broken() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.broken
}
