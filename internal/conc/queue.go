package conc

import "errors"

// ErrClosed is returned by Queue.Put after Close.
var ErrClosed = errors.New("conc: queue closed")

// Queue is a FIFO queue usable from any Env. A capacity of zero means
// unbounded; otherwise Put blocks while the queue is full. Get blocks while
// the queue is empty. Close wakes all blocked callers: pending items can
// still be drained, after which Get reports !ok.
type Queue[T any] struct {
	env      Env
	mu       Mutex
	notEmpty Cond
	notFull  Cond
	items    []T
	capacity int
	closed   bool
}

// NewQueue returns a queue bound to env with the given capacity (0 =
// unbounded).
func NewQueue[T any](env Env, capacity int) *Queue[T] {
	if capacity < 0 {
		panic("conc: negative queue capacity")
	}
	q := &Queue[T]{env: env, capacity: capacity}
	q.mu = env.NewMutex()
	q.notEmpty = env.NewCond(q.mu)
	q.notFull = env.NewCond(q.mu)
	return q
}

// Put appends v, blocking while the queue is at capacity. It returns
// ErrClosed if the queue is (or becomes) closed while waiting.
func (q *Queue[T]) Put(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.capacity > 0 && len(q.items) >= q.capacity && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, v)
	q.notEmpty.Signal()
	return nil
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. ok is false once the queue is closed and drained.
func (q *Queue[T]) Get() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.notFull.Signal()
	return v, true
}

// GetOr is Get with an interruptible wait: while the queue is empty, stop
// is consulted (on entry and after every wakeup) and a true return
// abandons the wait with stopped=true instead of parking until the next
// item. Wake forces every blocked getter to re-evaluate its stop
// condition. stop runs under the queue lock and must not call back into
// this queue; it may acquire other locks, which fixes the lock order
// "queue before callee" for those locks.
func (q *Queue[T]) GetOr(stop func() bool) (v T, ok, stopped bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		if stop != nil && stop() {
			return v, false, true
		}
		q.notEmpty.Wait()
	}
	if len(q.items) == 0 {
		return v, false, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.notFull.Signal()
	return v, true, false
}

// GetRunOr is GetOr extended to drain a FIFO run: it blocks for the first
// item exactly like GetOr, then greedily appends up to max-1 further items
// while same(first, candidate) holds, preserving FIFO order (the run is
// always a contiguous prefix of the queue — the first non-matching item
// stays queued, so ordering across runs is untouched). Items are appended
// to out (caller-owned scratch, may be non-empty). same runs under the
// queue lock with the same constraints as stop: it must not call back into
// this queue, and any locks it takes order "queue before callee".
func (q *Queue[T]) GetRunOr(stop func() bool, max int, same func(first, candidate T) bool, out []T) (run []T, ok, stopped bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		if stop != nil && stop() {
			return out, false, true
		}
		q.notEmpty.Wait()
	}
	if len(q.items) == 0 {
		return out, false, false
	}
	first := q.items[0]
	out = append(out, first)
	taken := 1
	for taken < max && taken < len(q.items) && same(first, q.items[taken]) {
		out = append(out, q.items[taken])
		taken++
	}
	q.items = q.items[taken:]
	if taken > 1 {
		q.notFull.Broadcast()
	} else {
		q.notFull.Signal()
	}
	return out, true, false
}

// Wake wakes every blocked getter so GetOr callers re-evaluate their stop
// condition. Plain Get callers just re-check emptiness and park again.
func (q *Queue[T]) Wake() {
	q.mu.Lock()
	q.notEmpty.Broadcast()
	q.mu.Unlock()
}

// DropWhere removes every queued item matching pred, preserving the order
// of the rest, and reports how many were removed. Freed capacity wakes
// blocked putters. pred runs under the queue lock and must not call back
// into the queue.
func (q *Queue[T]) DropWhere(pred func(T) bool) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	kept := q.items[:0]
	for _, it := range q.items {
		if !pred(it) {
			kept = append(kept, it)
		}
	}
	n := len(q.items) - len(kept)
	// Zero the tail so dropped items don't pin referenced memory through
	// the backing array.
	var zero T
	for i := len(kept); i < len(q.items); i++ {
		q.items[i] = zero
	}
	q.items = kept
	if n > 0 {
		q.notFull.Broadcast()
	}
	return n
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.notFull.Signal()
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Capacity reports the current capacity (0 = unbounded).
func (q *Queue[T]) Capacity() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.capacity
}

// SetCapacity adjusts the capacity at runtime (0 = unbounded). Growing (or
// unbounding) the queue wakes blocked producers; shrinking takes effect as
// consumers drain.
func (q *Queue[T]) SetCapacity(capacity int) {
	if capacity < 0 {
		panic("conc: negative queue capacity")
	}
	q.mu.Lock()
	if capacity == 0 || capacity > q.capacity {
		q.notFull.Broadcast()
	}
	q.capacity = capacity
	q.mu.Unlock()
}

// Close marks the queue closed and wakes every blocked producer and
// consumer. It is idempotent.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Broadcast()
	q.notFull.Broadcast()
}

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}
