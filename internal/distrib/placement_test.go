package distrib

import (
	"fmt"
	"math/rand"
	"testing"
)

func ringKeys(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("sample-%08x.jpg", rng.Uint32())
	}
	return out
}

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%d", i)
	}
	return out
}

// Every key has exactly one owner, and that owner is a ring member.
func TestRingSingleOwner(t *testing.T) {
	for _, nodes := range []int{1, 2, 3, 5, 8} {
		r, err := NewRing(ringNodes(nodes), 0)
		if err != nil {
			t.Fatalf("NewRing(%d): %v", nodes, err)
		}
		members := make(map[string]bool)
		for _, n := range r.Nodes() {
			members[n] = true
		}
		for _, k := range ringKeys(2000, 42) {
			owner := r.Owner(k)
			if !members[owner] {
				t.Fatalf("nodes=%d: key %q owned by non-member %q", nodes, k, owner)
			}
			if again := r.Owner(k); again != owner {
				t.Fatalf("nodes=%d: key %q owner unstable: %q then %q", nodes, k, owner, again)
			}
		}
	}
}

// Consistent hashing's defining property: a join or leave moves only about
// 1/N of the keys, and every key that does move involves the changed node.
func TestRingStabilityUnderJoinLeave(t *testing.T) {
	const keys = 4000
	names := ringKeys(keys, 7)

	for _, trial := range []struct {
		nodes int
		seed  int64
	}{{4, 1}, {8, 2}, {16, 3}} {
		r, err := NewRing(ringNodes(trial.nodes), 0)
		if err != nil {
			t.Fatal(err)
		}
		before := make(map[string]string, keys)
		for _, k := range names {
			before[k] = r.Owner(k)
		}

		// Join: keys may only move TO the new node.
		joined := fmt.Sprintf("node-%d", trial.nodes)
		if err := r.Add(joined); err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range names {
			after := r.Owner(k)
			if after != before[k] {
				if after != joined {
					t.Fatalf("nodes=%d: join moved %q from %q to %q (not the joiner)",
						trial.nodes, k, before[k], after)
				}
				moved++
			}
		}
		// Expected share is keys/(nodes+1); allow a generous 2.5x factor for
		// hash variance at 64 vnodes.
		expect := keys / (trial.nodes + 1)
		if moved == 0 || moved > expect*5/2 {
			t.Fatalf("nodes=%d: join moved %d keys, want ~%d", trial.nodes, moved, expect)
		}

		// Leave: removing the joiner restores the original assignment
		// exactly, and keys may only have moved FROM the leaver.
		if err := r.Remove(joined); err != nil {
			t.Fatal(err)
		}
		for _, k := range names {
			if r.Owner(k) != before[k] {
				t.Fatalf("nodes=%d: leave did not restore %q", trial.nodes, k)
			}
		}
	}
}

// PartitionPlan is disjoint and complete: every plan entry lands in exactly
// one node's partition, order is preserved, and the partitions agree with
// Owner.
func TestPartitionPlanDisjointComplete(t *testing.T) {
	r, err := NewRing(ringNodes(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := ringKeys(3000, 11)
	parts := r.PartitionPlan(plan)

	seen := make(map[string]string)
	total := 0
	for node, part := range parts {
		prevIdx := -1
		index := make(map[string]int, len(plan))
		for i, k := range plan {
			index[k] = i
		}
		for _, k := range part {
			if owner, dup := seen[k]; dup {
				t.Fatalf("key %q in partitions of both %q and %q", k, owner, node)
			}
			seen[k] = node
			if r.Owner(k) != node {
				t.Fatalf("key %q partitioned to %q but owned by %q", k, node, r.Owner(k))
			}
			if index[k] < prevIdx {
				t.Fatalf("partition for %q not order-preserving at %q", node, k)
			}
			prevIdx = index[k]
			total++
		}
	}
	if total != len(plan) {
		t.Fatalf("partitions cover %d of %d plan entries", total, len(plan))
	}
}

// Ring construction and mutation edge cases.
func TestRingEdgeCases(t *testing.T) {
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
	r, err := NewRing(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if owner := r.Owner("x"); owner != "" {
		t.Fatalf("empty ring owner = %q, want empty", owner)
	}
	if err := r.Add("solo"); err != nil {
		t.Fatal(err)
	}
	if owner := r.Owner("x"); owner != "solo" {
		t.Fatalf("single-node ring owner = %q, want solo", owner)
	}
	if err := r.Remove("missing"); err == nil {
		t.Fatal("removing unknown node succeeded")
	}
}
