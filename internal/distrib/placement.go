package distrib

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is the cluster's consistent-hash placement map: every sample name
// is owned by exactly one node, membership changes move only ~1/N of the
// keyspace, and the mapping is a pure function of the node set — every
// node computes the same ring locally, so ownership needs no coordination
// traffic (Dryden et al.'s clairvoyant-prefetching observation: placement
// can be decided from shared knowledge alone).
//
// Each node is projected onto the ring at VirtualNodes seeded positions;
// a key is owned by the first virtual node clockwise from its hash. More
// virtual nodes flatten the per-node keyspace share at the cost of a
// larger (still tiny) sorted table.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// DefaultVirtualNodes balances ownership evenness (a few percent spread at
// 64 points per node) against table size.
const DefaultVirtualNodes = 64

// NewRing builds a placement ring over the given node ids. vnodes <= 0
// selects DefaultVirtualNodes. Duplicate node ids are an error.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{vnodes: vnodes, nodes: make(map[string]struct{}, len(nodes))}
	for _, n := range nodes {
		if err := r.Add(n); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// hashKey is FNV-64a: fast, allocation-free, and stable across processes —
// every node derives the identical ring.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

// vnodeHash positions one of a node's virtual points. The replica index is
// folded into the hashed string so points are independent.
func vnodeHash(node string, replica int) uint64 {
	return hashKey(fmt.Sprintf("%s#%d", node, replica))
}

// Add joins a node to the ring, moving ~1/(N+1) of the keyspace to it.
func (r *Ring) Add(node string) error {
	if node == "" {
		return fmt.Errorf("distrib: empty node id")
	}
	if _, ok := r.nodes[node]; ok {
		return fmt.Errorf("distrib: duplicate node id %q", node)
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: vnodeHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return nil
}

// Remove leaves a node, redistributing only its keyspace share to the
// surviving nodes.
func (r *Ring) Remove(node string) error {
	if _, ok := r.nodes[node]; !ok {
		return fmt.Errorf("distrib: unknown node id %q", node)
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Size reports the node count.
func (r *Ring) Size() int { return len(r.nodes) }

// Nodes lists the member node ids, sorted for deterministic iteration.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner reports which node owns a key: the first virtual point clockwise
// from the key's hash. Empty string on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the ring is circular
	}
	return r.points[i].node
}

// PartitionPlan splits an epoch plan into per-node sub-plans by ring
// ownership, preserving the plan's order within each partition. The
// partitions are disjoint and complete: every name lands in exactly the
// owner's slice. Because SubmitEpoch reveals the full shuffled access
// order, each node's partition is exactly the set of samples it will serve
// this epoch, in the order they will be consumed — the clairvoyant
// placement the fabric prefetches against.
func (r *Ring) PartitionPlan(names []string) map[string][]string {
	out := make(map[string][]string, len(r.nodes))
	for _, name := range names {
		owner := r.Owner(name)
		out[owner] = append(out[owner], name)
	}
	return out
}
