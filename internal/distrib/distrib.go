// Package distrib explores the paper's §VII "distributed training
// settings" direction: multiple compute nodes, each with its own PRISMA
// data-plane stage, training one model in synchronous data parallelism
// against a shared parallel file system. It contrasts two control-plane
// arrangements:
//
//   - Independent: every node runs its own feedback auto-tuner, blind to
//     the other nodes (the framework-intrinsic situation the paper argues
//     against, lifted one level up).
//   - Coordinated: one logically centralized coordinator with system-wide
//     visibility allocates a global producer budget across the stages,
//     shifting threads from idle stages to starved ones — "tight
//     coordination and holistic tuning of data plane stages".
//
// Both deliver the same training throughput when the shared backend is the
// bottleneck, but coordination reaches it with far fewer total reader
// threads — the cluster-level version of Figure 3's argument.
package distrib

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/control"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/train"
)

// Mode selects the control-plane arrangement.
type Mode int

const (
	// Independent gives each node its own uncoordinated auto-tuner.
	Independent Mode = iota
	// Coordinated runs the global-budget coordinator.
	Coordinated
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Coordinated {
		return "coordinated"
	}
	return "independent"
}

// Config parameterizes one distributed run.
type Config struct {
	Nodes       int
	GPUsPerNode int
	Model       train.Model
	BatchPerGPU int
	Epochs      int
	PerStepSync time.Duration

	// TrainFiles is the dataset size (files are sharded across nodes
	// every epoch).
	TrainFiles int
	// FileSize is the mean file size (log-normal, sigma 0.5).
	FileSize int64

	// PFS is the shared parallel-file-system device.
	PFS storage.DeviceSpec
	// Link is each node's network path to the PFS (per-node device).
	Link storage.DeviceSpec
	// Links optionally overrides Link per node (heterogeneous clusters:
	// len must equal Nodes). Coordinated control shifts producers toward
	// the nodes with slower paths.
	Links []storage.DeviceSpec

	// Stage configures each node's PRISMA prefetcher.
	Stage core.PrefetcherConfig
	// Policy bounds the tuners.
	Policy control.Policy
	// ControlInterval is the tuning period for both modes.
	ControlInterval time.Duration
	// ProducerBudget caps the cluster-wide producer count in Coordinated
	// mode (a sensible value is the PFS channel count plus slack).
	ProducerBudget int

	Mode Mode
	Seed int64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("distrib: nodes %d < 1", c.Nodes)
	}
	if c.GPUsPerNode < 1 || c.BatchPerGPU < 1 || c.Epochs < 1 {
		return fmt.Errorf("distrib: bad GPU/batch/epoch config")
	}
	if c.TrainFiles < c.Nodes {
		return fmt.Errorf("distrib: %d files cannot shard over %d nodes", c.TrainFiles, c.Nodes)
	}
	if c.Mode == Coordinated && c.ProducerBudget < c.Nodes {
		return fmt.Errorf("distrib: producer budget %d below one per node", c.ProducerBudget)
	}
	if c.Links != nil && len(c.Links) != c.Nodes {
		return fmt.Errorf("distrib: %d per-node links for %d nodes", len(c.Links), c.Nodes)
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if err := c.Stage.Validate(); err != nil {
		return err
	}
	return c.Policy.Validate()
}

// NodeResult is one node's measurements.
type NodeResult struct {
	Elapsed     time.Duration
	Samples     int64
	FinalTuning control.Tuning
	MaxReaders  int
}

// Result is the cluster-level outcome.
type Result struct {
	Makespan time.Duration
	Nodes    []NodeResult
	// TotalMaxReaders sums each node's peak concurrent reader count —
	// the cluster-wide thread footprint.
	TotalMaxReaders int
	// PFS reports shared-device activity.
	PFS storage.DeviceStats
}

// DefaultConfig returns the reference 8-node cluster used by the example
// and the prisma-bench distrib target: LeNet against a shared 8-channel
// Lustre-like PFS over 100 GbE links, with a two-producers-per-node
// coordinated budget.
func DefaultConfig() Config {
	return Config{
		Nodes:       8,
		GPUsPerNode: 4,
		Model:       train.LeNet(),
		BatchPerGPU: 64,
		Epochs:      2,
		PerStepSync: time.Millisecond,
		TrainFiles:  16000,
		FileSize:    113_000,
		PFS: storage.DeviceSpec{
			Name: "lustre", BaseLatency: 400 * time.Microsecond, BytesPerSecond: 2e9, Channels: 8,
		},
		Link: storage.DeviceSpec{
			Name: "100gbe", BaseLatency: 20 * time.Microsecond, BytesPerSecond: 12.5e9, Channels: 8,
		},
		Stage: core.PrefetcherConfig{
			InitialProducers: 1, MaxProducers: 16,
			InitialBufferCapacity: 16, MaxBufferCapacity: 1024,
		},
		Policy:          control.DefaultPolicy(),
		ControlInterval: 100 * time.Millisecond,
		ProducerBudget:  16,
		Seed:            1,
	}
}

// Shard returns node `node`'s round-robin share of an epoch file list.
func Shard(names []string, nodes, node int) []string {
	if nodes < 1 || node < 0 || node >= nodes {
		panic(fmt.Sprintf("distrib: bad shard (%d of %d)", node, nodes))
	}
	out := make([]string, 0, len(names)/nodes+1)
	for i := node; i < len(names); i += nodes {
		out = append(out, names[i])
	}
	return out
}

// linkBackend composes a per-node network link in front of the shared
// backend: a read pays the PFS service and then the link transfer.
type linkBackend struct {
	link  *storage.Device
	inner storage.Backend
}

func (l *linkBackend) ReadFile(name string) (storage.Data, error) {
	data, err := l.inner.ReadFile(name)
	if err != nil {
		return storage.Data{}, err
	}
	l.link.Read(data.Size)
	return data, nil
}

func (l *linkBackend) Size(name string) (int64, error) { return l.inner.Size(name) }

// Run executes one distributed training run in a fresh simulation.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	var out Result
	var runErr error

	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("distrib-driver", func(*sim.Process) {
		man, err := dataset.Synthetic("train", cfg.TrainFiles, cfg.FileSize, 0.5, cfg.Seed)
		if err != nil {
			runErr = err
			return
		}
		pfsDev, err := storage.NewDevice(env, cfg.PFS)
		if err != nil {
			runErr = err
			return
		}
		shared := storage.NewModeledBackend(man, pfsDev, nil)

		// Per-node stages.
		stages := make([]*core.Stage, cfg.Nodes)
		prefetchers := make([]*core.Prefetcher, cfg.Nodes)
		for n := 0; n < cfg.Nodes; n++ {
			linkSpec := cfg.Link
			if cfg.Links != nil {
				linkSpec = cfg.Links[n]
			}
			linkDev, err := storage.NewDevice(env, linkSpec)
			if err != nil {
				runErr = err
				return
			}
			backend := &linkBackend{link: linkDev, inner: shared}
			pf, err := core.NewPrefetcher(env, backend, cfg.Stage)
			if err != nil {
				runErr = err
				return
			}
			prefetchers[n] = pf
			stages[n] = core.NewStage(env, backend, core.NewPrefetchObject(pf))
			pf.Start()
		}

		// Control plane.
		var controllers []*control.Controller
		var coord *coordinator
		switch cfg.Mode {
		case Independent:
			for n, st := range stages {
				ctl := control.NewController(env, cfg.ControlInterval)
				initial := control.Tuning{Producers: cfg.Stage.InitialProducers, BufferCapacity: cfg.Stage.InitialBufferCapacity}
				if err := ctl.Attach(fmt.Sprintf("node-%d", n), st, control.NewAutotuner(), cfg.Policy, initial); err != nil {
					runErr = err
					return
				}
				ctl.Start()
				controllers = append(controllers, ctl)
			}
		case Coordinated:
			planes := make([]control.DataPlane, len(stages))
			for i, st := range stages {
				planes[i] = st
			}
			coord = newCoordinator(env, planes, cfg.Policy, cfg.ProducerBudget)
			coord.start(cfg.ControlInterval)
		}

		// Training: one thread per node, synchronized per step by the
		// all-reduce barrier.
		globalBatch := cfg.BatchPerGPU * cfg.GPUsPerNode
		barrier := conc.NewBarrier(env, cfg.Nodes)
		results := make([]NodeResult, cfg.Nodes)
		wg := env.NewWaitGroup()
		wg.Add(cfg.Nodes)
		for n := 0; n < cfg.Nodes; n++ {
			n := n
			env.Go(fmt.Sprintf("node-%d", n), func() {
				defer wg.Done()
				gpus := train.NewGPUCluster(env, cfg.GPUsPerNode)
				start := env.Now()
				for epoch := 0; epoch < cfg.Epochs; epoch++ {
					full := man.EpochFileList(cfg.Seed+7, epoch)
					shard := Shard(full, cfg.Nodes, n)
					if err := stages[n].SubmitPlan(shard); err != nil {
						runErr = err
						barrier.Break()
						return
					}
					// All nodes execute the same step count; the largest
					// shard defines it (smaller shards pad with empty
					// steps, PyTorch's drop_last=False behaviour).
					maxShard := len(full)/cfg.Nodes + 1
					steps := (maxShard + globalBatch - 1) / globalBatch
					idx := 0
					for step := 0; step < steps; step++ {
						take := globalBatch
						if rem := len(shard) - idx; rem < take {
							take = rem
						}
						for i := 0; i < take; i++ {
							if _, err := stages[n].Read(shard[idx]); err != nil {
								runErr = err
								barrier.Break()
								return
							}
							idx++
						}
						if cfg.PerStepSync > 0 {
							env.Sleep(cfg.PerStepSync)
						}
						if !barrier.Await() { // all-reduce
							return
						}
						if take > 0 {
							d := cfg.Model.StepTime(cfg.BatchPerGPU)
							if take < globalBatch {
								d = time.Duration(float64(d) * float64(take) / float64(globalBatch))
							}
							gpus.IssueStep(d)
						}
						results[n].Samples += int64(take)
					}
					gpus.Drain()
				}
				results[n].Elapsed = env.Now() - start
				results[n].MaxReaders = metrics.MaxValue(prefetchers[n].ActiveReaderDistribution())
			})
		}
		wg.Wait()

		for _, ctl := range controllers {
			ctl.Stop()
		}
		if coord != nil {
			coord.stop()
		}
		for n, st := range stages {
			switch cfg.Mode {
			case Independent:
				results[n].FinalTuning, _ = controllers[n].Applied(fmt.Sprintf("node-%d", n))
			case Coordinated:
				results[n].FinalTuning = coord.applied(n)
			}
			st.Close()
		}
		out.Nodes = results
		for _, r := range results {
			if r.Elapsed > out.Makespan {
				out.Makespan = r.Elapsed
			}
			out.TotalMaxReaders += r.MaxReaders
		}
		out.PFS = pfsDev.Stats()
	})
	if err := s.Run(); err != nil {
		return out, fmt.Errorf("distrib: simulation: %w", err)
	}
	return out, runErr
}
