package distrib

import (
	"errors"
	"fmt"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/control"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// ClusterMode selects how the multi-node fabric places and fetches samples.
type ClusterMode int

const (
	// ClusterIndependent is the no-placement baseline: every node sweeps
	// the full shuffled epoch itself (without coordination, no node can
	// know which subset it is responsible for), so the shared slow store
	// serves each sample once per node.
	ClusterIndependent ClusterMode = iota
	// ClusterCoordinated keeps independent full sweeps but runs the
	// global-budget coordinator over the nodes, bounding the cluster-wide
	// producer count.
	ClusterCoordinated
	// ClusterClairvoyant partitions the epoch plan by consistent-hash
	// ownership: each node prefetches exactly the samples it will serve,
	// workers read non-owned samples over the peer fabric, and the slow
	// store serves each sample exactly once cluster-wide.
	ClusterClairvoyant
)

// String implements fmt.Stringer.
func (m ClusterMode) String() string {
	switch m {
	case ClusterCoordinated:
		return "coordinated"
	case ClusterClairvoyant:
		return "clairvoyant"
	default:
		return "independent"
	}
}

// ClusterConfig parameterizes one cluster-fabric run.
type ClusterConfig struct {
	Nodes      int
	TrainFiles int
	FileSize   int64
	Epochs     int

	// PFS is the shared slow store every node reads.
	PFS storage.DeviceSpec
	// Stage configures each node's prefetcher.
	Stage core.PrefetcherConfig
	// Policy bounds the control plane.
	Policy control.Policy
	// ControlInterval is the tuning period (Coordinated/Clairvoyant).
	ControlInterval time.Duration
	// ProducerBudget caps the cluster-wide producer count
	// (Coordinated/Clairvoyant).
	ProducerBudget int
	// Replicas selects the control-plane arrangement for the coordinated
	// modes: <=1 runs a single centralized coordinator, >1 runs a
	// replicated coordinatorGroup with leader election by lowest live
	// index.
	Replicas int
	// FailLeaderAt, when positive, crashes coordinator replica 0 at that
	// virtual time — the failover exercise for the replicated arrangement
	// (ignored with Replicas <= 1).
	FailLeaderAt time.Duration
	// VirtualNodes is the placement ring's vnode count (0 = default).
	VirtualNodes int
	// SyncEvery is the per-worker sample count between all-reduce
	// barriers (0 = default 8). The barrier bounds worker position skew,
	// which in turn bounds the clairvoyant reorder window each node's
	// buffer must absorb.
	SyncEvery int

	Mode ClusterMode
	Seed int64
}

// DefaultClusterConfig returns the reference 4-node cluster the harness and
// the prisma-bench cluster target sweep.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Nodes:      4,
		TrainFiles: 2000,
		FileSize:   113_000,
		Epochs:     2,
		PFS: storage.DeviceSpec{
			Name: "lustre", BaseLatency: 400 * time.Microsecond, BytesPerSecond: 2e9, Channels: 8,
		},
		Stage: core.PrefetcherConfig{
			InitialProducers: 1, MaxProducers: 16,
			InitialBufferCapacity: 32, MaxBufferCapacity: 1024,
			TakeDeadline: 5 * time.Second,
		},
		Policy:          control.DefaultPolicy(),
		ControlInterval: 100 * time.Millisecond,
		ProducerBudget:  16,
		Seed:            1,
	}
}

// Validate reports whether the configuration is usable.
func (c ClusterConfig) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("distrib: cluster nodes %d < 1", c.Nodes)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("distrib: cluster epochs %d < 1", c.Epochs)
	}
	if c.TrainFiles < c.Nodes {
		return fmt.Errorf("distrib: %d files cannot place over %d nodes", c.TrainFiles, c.Nodes)
	}
	if c.Mode != ClusterIndependent && c.ProducerBudget < c.Nodes {
		return fmt.Errorf("distrib: producer budget %d below one per node", c.ProducerBudget)
	}
	if err := c.Stage.Validate(); err != nil {
		return err
	}
	return c.Policy.Validate()
}

// ClusterResult is the measured outcome of one cluster run.
type ClusterResult struct {
	Mode     ClusterMode
	Makespan time.Duration

	// UniqueSamples is the per-epoch dataset size.
	UniqueSamples int
	// Delivered counts successful sample reads across all nodes and epochs.
	Delivered int64
	// Errors counts failed sample reads.
	Errors int64

	// BackendReads is the shared slow store's total served read count;
	// EpochBackendReads breaks it down per epoch. In clairvoyant mode each
	// epoch's count equals UniqueSamples; independent sweeps show
	// Nodes x UniqueSamples.
	BackendReads      int64
	EpochBackendReads []int64
	// DuplicateReadFactor is BackendReads / (UniqueSamples x Epochs).
	DuplicateReadFactor float64

	// OverDeliveries / MissedDeliveries count per-epoch samples served more
	// or fewer times than the mode's expectation (once cluster-wide in
	// clairvoyant, once per node otherwise). Both zero on a correct run.
	OverDeliveries   int64
	MissedDeliveries int64

	// PeerReads / PeerServes / Failovers aggregate the fabric's cross-node
	// traffic (clairvoyant mode only).
	PeerReads  int64
	PeerServes int64
	Failovers  int64

	// TotalProducers is the cluster-wide producer count at run end.
	TotalProducers int
	// ControlFailovers reports coordinator leadership changes (replicated
	// arrangement only).
	ControlFailovers int64

	// NodeStats carries each node's fabric counters (clairvoyant only).
	NodeStats []ClusterStats
}

// takeRetries bounds how often a worker re-claims a sample after a take
// deadline (the deadline returns the plan entry, so a retry is safe).
const takeRetries = 3

// RunCluster executes one cluster-fabric run in a fresh simulation. The
// whole fabric — placement ring, plan partitioning, peer forwarding,
// coordinated control — runs in-process over sim time, so runs are
// deterministic for a given config and assertable in CI.
func RunCluster(cfg ClusterConfig) (ClusterResult, error) {
	if err := cfg.Validate(); err != nil {
		return ClusterResult{}, err
	}
	syncEvery := cfg.SyncEvery
	if syncEvery <= 0 {
		syncEvery = 8
	}
	out := ClusterResult{Mode: cfg.Mode, UniqueSamples: cfg.TrainFiles}
	var runErr error

	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("cluster-driver", func(*sim.Process) {
		man, err := dataset.Synthetic("train", cfg.TrainFiles, cfg.FileSize, 0.5, cfg.Seed)
		if err != nil {
			runErr = err
			return
		}
		pfsDev, err := storage.NewDevice(env, cfg.PFS)
		if err != nil {
			runErr = err
			return
		}
		shared := storage.NewModeledBackend(man, pfsDev, nil)

		nodeNames := make([]string, cfg.Nodes)
		for n := range nodeNames {
			nodeNames[n] = fmt.Sprintf("node-%d", n)
		}

		stages := make([]*core.Stage, cfg.Nodes)
		fabrics := make([]*Fabric, cfg.Nodes)
		for n := 0; n < cfg.Nodes; n++ {
			pf, err := core.NewPrefetcher(env, shared, cfg.Stage)
			if err != nil {
				runErr = err
				return
			}
			stages[n] = core.NewStage(env, shared, core.NewPrefetchObject(pf))
			pf.Start()
		}
		if cfg.Mode == ClusterClairvoyant {
			for n := 0; n < cfg.Nodes; n++ {
				ring, err := NewRing(nodeNames, cfg.VirtualNodes)
				if err != nil {
					runErr = err
					return
				}
				fabrics[n], err = NewFabric(env, FabricConfig{
					Node: nodeNames[n], Ring: ring, Stage: stages[n],
					Slow: shared, InstallPartitioner: true,
				})
				if err != nil {
					runErr = err
					return
				}
			}
			for n, f := range fabrics {
				for m, owner := range fabrics {
					if n != m {
						f.SetPeer(nodeNames[m], LocalPeer(owner))
					}
				}
			}
		}

		// Control plane.
		var controllers []*control.Controller
		var coord *coordinator
		var group *coordinatorGroup
		if cfg.Mode == ClusterIndependent {
			for n, st := range stages {
				ctl := control.NewController(env, cfg.ControlInterval)
				initial := control.Tuning{Producers: cfg.Stage.InitialProducers, BufferCapacity: cfg.Stage.InitialBufferCapacity}
				if err := ctl.Attach(nodeNames[n], st, control.NewAutotuner(), cfg.Policy, initial); err != nil {
					runErr = err
					return
				}
				ctl.Start()
				controllers = append(controllers, ctl)
			}
		} else {
			planes := make([]control.DataPlane, len(stages))
			for i, st := range stages {
				planes[i] = st
			}
			if cfg.Replicas > 1 {
				group = newCoordinatorGroup(env, planes, cfg.Policy, cfg.ProducerBudget, cfg.Replicas)
				group.start(cfg.ControlInterval)
				if cfg.FailLeaderAt > 0 {
					env.Go("leader-killer", func() {
						env.Sleep(cfg.FailLeaderAt)
						group.fail(0)
					})
				}
			} else {
				coord = newCoordinator(env, planes, cfg.Policy, cfg.ProducerBudget)
				coord.start(cfg.ControlInterval)
			}
		}

		// Per-epoch exactly-once ledger (shared across workers).
		countsMu := env.NewMutex()
		counts := make(map[string]int, cfg.TrainFiles)
		delivered := 0
		errored := 0
		expectPerName := 1
		if cfg.Mode != ClusterClairvoyant {
			expectPerName = cfg.Nodes
		}
		var lastBackendReads int64

		barrier := conc.NewBarrier(env, cfg.Nodes)
		wg := env.NewWaitGroup()
		wg.Add(cfg.Nodes)
		start := env.Now()
		for n := 0; n < cfg.Nodes; n++ {
			n := n
			env.Go(nodeNames[n], func() {
				defer wg.Done()
				for epoch := 0; epoch < cfg.Epochs; epoch++ {
					full := man.EpochFileList(cfg.Seed+7, epoch)
					// In clairvoyant mode the full shuffled order is the
					// clairvoyant signal: every node receives it and the
					// installed partitioner narrows the prefetch plan to the
					// node's ring-owned share.
					if err := stages[n].SubmitPlan(full); err != nil {
						runErr = err
						barrier.Break()
						return
					}
					// No worker reads until every node's plan is in: a
					// forwarded read racing the owner's submission would
					// bypass the plan and duplicate the slow-store read.
					if !barrier.Await() {
						return
					}

					shard := full
					if cfg.Mode == ClusterClairvoyant {
						shard = Shard(full, cfg.Nodes, n)
					}
					maxShard := len(full)
					if cfg.Mode == ClusterClairvoyant {
						maxShard = (len(full) + cfg.Nodes - 1) / cfg.Nodes
					}
					windows := (maxShard + syncEvery - 1) / syncEvery
					idx := 0
					for w := 0; w < windows; w++ {
						take := syncEvery
						if rem := len(shard) - idx; rem < take {
							take = rem
						}
						for i := 0; i < take; i++ {
							name := shard[idx]
							idx++
							var err error
							for attempt := 0; ; attempt++ {
								if cfg.Mode == ClusterClairvoyant {
									_, err = fabrics[n].Read(name)
								} else {
									_, err = stages[n].Read(name)
								}
								if err == nil || attempt >= takeRetries || !errors.Is(err, core.ErrTakeDeadline) {
									break
								}
							}
							countsMu.Lock()
							if err != nil {
								errored++
							} else {
								delivered++
								counts[name]++
							}
							countsMu.Unlock()
						}
						if !barrier.Await() { // all-reduce pacing
							return
						}
					}

					if !barrier.Await() { // epoch drain
						return
					}
					if n == 0 {
						countsMu.Lock()
						for _, name := range full {
							c := counts[name]
							if c > expectPerName {
								out.OverDeliveries += int64(c - expectPerName)
							} else if c < expectPerName {
								out.MissedDeliveries += int64(expectPerName - c)
							}
							delete(counts, name)
						}
						countsMu.Unlock()
						reads := pfsDev.Stats().Reads
						out.EpochBackendReads = append(out.EpochBackendReads, reads-lastBackendReads)
						lastBackendReads = reads
					}
					if !barrier.Await() { // ledger reset before next epoch
						return
					}
				}
			})
		}
		wg.Wait()
		out.Makespan = env.Now() - start

		for _, ctl := range controllers {
			ctl.Stop()
		}
		if coord != nil {
			coord.stop()
			out.TotalProducers = coord.totalProducers()
		}
		if group != nil {
			group.stop()
			out.TotalProducers = group.totalProducers()
			out.ControlFailovers = group.failoverCount()
		}
		for n, ctl := range controllers {
			t, _ := ctl.Applied(nodeNames[n])
			out.TotalProducers += t.Producers
		}
		for n, st := range stages {
			if fabrics[n] != nil {
				fs := fabrics[n].Stats()
				out.NodeStats = append(out.NodeStats, fs)
				out.PeerReads += fs.PeerReads
				out.PeerServes += fs.PeerServes
				out.Failovers += fs.Failovers
			}
			st.Close()
		}
		out.Delivered = int64(delivered)
		out.Errors = int64(errored)
		out.BackendReads = pfsDev.Stats().Reads
		if total := int64(cfg.TrainFiles) * int64(cfg.Epochs); total > 0 {
			out.DuplicateReadFactor = float64(out.BackendReads) / float64(total)
		}
	})
	if err := s.Run(); err != nil {
		return out, fmt.Errorf("distrib: cluster simulation: %w", err)
	}
	return out, runErr
}
