package distrib

import (
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// fabricFixture is the two-node in-sim fabric the unit tests drive.
// t.Fatal cannot be used from sim process goroutines, so construction
// reports errors via t.Errorf and returns nil.
type fabricFixture struct {
	man     *dataset.Manifest
	dev     *storage.Device
	stages  [2]*core.Stage
	fabrics [2]*Fabric
}

func newFabricFixture(t *testing.T, env conc.Env, files int) *fabricFixture {
	fx := &fabricFixture{}
	man, err := dataset.Synthetic("train", files, 4096, 0.5, 3)
	if err != nil {
		t.Errorf("dataset: %v", err)
		return nil
	}
	fx.man = man
	dev, err := storage.NewDevice(env, storage.DeviceSpec{
		Name: "pfs", BaseLatency: 100 * time.Microsecond, BytesPerSecond: 1e9, Channels: 4,
	})
	if err != nil {
		t.Errorf("device: %v", err)
		return nil
	}
	fx.dev = dev
	shared := storage.NewModeledBackend(man, dev, nil)
	names := []string{"node-0", "node-1"}
	for n := 0; n < 2; n++ {
		pf, err := core.NewPrefetcher(env, shared, core.PrefetcherConfig{
			InitialProducers: 2, MaxProducers: 8,
			InitialBufferCapacity: 32, MaxBufferCapacity: 256,
			TakeDeadline: 2 * time.Second,
		})
		if err != nil {
			t.Errorf("prefetcher: %v", err)
			return nil
		}
		fx.stages[n] = core.NewStage(env, shared, core.NewPrefetchObject(pf))
		pf.Start()
		ring, err := NewRing(names, 0)
		if err != nil {
			t.Errorf("ring: %v", err)
			return nil
		}
		fx.fabrics[n], err = NewFabric(env, FabricConfig{
			Node: names[n], Ring: ring, Stage: fx.stages[n],
			Slow: shared, InstallPartitioner: true,
		})
		if err != nil {
			t.Errorf("fabric: %v", err)
			return nil
		}
	}
	fx.fabrics[0].SetPeer("node-1", LocalPeer(fx.fabrics[1]))
	fx.fabrics[1].SetPeer("node-0", LocalPeer(fx.fabrics[0]))
	return fx
}

func (fx *fabricFixture) close() {
	fx.stages[0].Close()
	fx.stages[1].Close()
}

// A single worker sweeping the full epoch through one node's fabric: owned
// samples come from the local buffer, non-owned ones are forwarded to the
// peer's buffer, and the slow store serves every sample exactly once.
func TestFabricRoutesByOwnership(t *testing.T) {
	const files = 200
	s := sim.New()
	env := conc.NewSimEnv(s)
	var done bool
	s.Spawn("driver", func(*sim.Process) {
		fx := newFabricFixture(t, env, files)
		if fx == nil {
			return
		}
		defer fx.close()
		full := fx.man.EpochFileList(9, 0)
		owned0 := len(fx.fabrics[0].OwnedSubset(full))
		if owned0 == 0 || owned0 == len(full) {
			t.Errorf("degenerate split: node-0 owns %d of %d", owned0, len(full))
			return
		}
		for n := 0; n < 2; n++ {
			if err := fx.stages[n].SubmitPlan(full); err != nil {
				t.Errorf("submit node %d: %v", n, err)
				return
			}
		}
		for _, name := range full {
			if _, err := fx.fabrics[0].Read(name); err != nil {
				t.Errorf("read %q: %v", name, err)
				return
			}
		}
		st0, st1 := fx.fabrics[0].Stats(), fx.fabrics[1].Stats()
		if st0.LocalReads != int64(owned0) {
			t.Errorf("node-0 local reads = %d, want %d", st0.LocalReads, owned0)
		}
		if want := int64(len(full) - owned0); st0.PeerReads != want {
			t.Errorf("node-0 peer reads = %d, want %d", st0.PeerReads, want)
		}
		if st1.PeerServes != st0.PeerReads {
			t.Errorf("node-1 peer serves = %d, want %d", st1.PeerServes, st0.PeerReads)
		}
		if st0.Failovers != 0 || st0.PeerErrors != 0 {
			t.Errorf("unexpected failovers=%d peerErrors=%d", st0.Failovers, st0.PeerErrors)
		}
		if st0.PeerWait <= 0 {
			t.Errorf("peer wait = %v, want > 0", st0.PeerWait)
		}
		if reads := fx.dev.Stats().Reads; reads != int64(len(full)) {
			t.Errorf("slow-store reads = %d, want %d (zero duplicates)", reads, len(full))
		}
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !done && !t.Failed() {
		t.Fatal("driver did not finish")
	}
}

// With the peer transport severed, reads of peer-owned samples fail over to
// the slow store and still succeed.
func TestFabricFailoverToSlowStore(t *testing.T) {
	const files = 120
	s := sim.New()
	env := conc.NewSimEnv(s)
	var done bool
	s.Spawn("driver", func(*sim.Process) {
		fx := newFabricFixture(t, env, files)
		if fx == nil {
			return
		}
		defer fx.close()
		full := fx.man.EpochFileList(5, 0)
		// Only node-0 gets a plan; node-1 is "down" from the start.
		fx.fabrics[0].RemovePeer("node-1")
		if err := fx.stages[0].SubmitPlan(full); err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		for _, name := range full {
			if _, err := fx.fabrics[0].Read(name); err != nil {
				t.Errorf("read %q: %v", name, err)
				return
			}
		}
		st0 := fx.fabrics[0].Stats()
		notOwned := int64(len(full)) - int64(len(fx.fabrics[0].OwnedSubset(full)))
		if st0.Failovers != notOwned {
			t.Errorf("failovers = %d, want %d", st0.Failovers, notOwned)
		}
		if st0.PeerReads != 0 {
			t.Errorf("peer reads = %d, want 0 (peer removed)", st0.PeerReads)
		}
		if st0.MaxFailoverLatency <= 0 {
			t.Errorf("max failover latency = %v, want > 0", st0.MaxFailoverLatency)
		}
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !done && !t.Failed() {
		t.Fatal("driver did not finish")
	}
}

// Fabric construction rejects incomplete configurations.
func TestFabricConfigValidation(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	ring, err := NewRing([]string{"a"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cases := []FabricConfig{
		{},                      // everything missing
		{Node: "a"},             // no ring
		{Node: "a", Ring: ring}, // no stage
	}
	for i, cfg := range cases {
		if _, err := NewFabric(env, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
