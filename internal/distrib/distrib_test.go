package distrib

import (
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/control"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/train"
)

// baseConfig is an I/O-bound 4-node cluster against a 16-channel PFS.
func baseConfig() Config {
	return Config{
		Nodes:       4,
		GPUsPerNode: 4,
		Model:       train.LeNet(),
		BatchPerGPU: 64,
		Epochs:      2,
		PerStepSync: time.Millisecond,
		TrainFiles:  8000,
		FileSize:    113_000,
		PFS: storage.DeviceSpec{
			Name:           "lustre",
			BaseLatency:    400 * time.Microsecond,
			BytesPerSecond: 2e9,
			Channels:       16,
		},
		Link: storage.DeviceSpec{
			Name:           "node-link",
			BaseLatency:    20 * time.Microsecond,
			BytesPerSecond: 12.5e9, // 100 Gb/s
			Channels:       8,
		},
		Stage: core.PrefetcherConfig{
			InitialProducers:      1,
			MaxProducers:          16,
			InitialBufferCapacity: 16,
			MaxBufferCapacity:     1024,
		},
		Policy:          control.DefaultPolicy(),
		ControlInterval: 100 * time.Millisecond,
		ProducerBudget:  20,
		Mode:            Independent,
		Seed:            1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := baseConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Nodes = 0
	if bad.Validate() == nil {
		t.Error("zero nodes accepted")
	}
	bad = good
	bad.TrainFiles = 2
	if bad.Validate() == nil {
		t.Error("fewer files than nodes accepted")
	}
	bad = good
	bad.Mode = Coordinated
	bad.ProducerBudget = 1
	if bad.Validate() == nil {
		t.Error("budget below node count accepted")
	}
}

func TestShardPartition(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	seen := map[string]int{}
	total := 0
	for n := 0; n < 3; n++ {
		shard := Shard(names, 3, n)
		total += len(shard)
		for _, s := range shard {
			seen[s]++
		}
	}
	if total != len(names) {
		t.Fatalf("shards cover %d names, want %d", total, len(names))
	}
	for name, c := range seen {
		if c != 1 {
			t.Fatalf("%s appears %d times across shards", name, c)
		}
	}
	// Shard sizes differ by at most one.
	if len(Shard(names, 3, 0))-len(Shard(names, 3, 2)) > 1 {
		t.Fatal("unbalanced shards")
	}
}

func TestShardValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad shard index accepted")
		}
	}()
	Shard([]string{"a"}, 2, 5)
}

func TestModeString(t *testing.T) {
	if Independent.String() != "independent" || Coordinated.String() != "coordinated" {
		t.Fatal("mode strings wrong")
	}
}

func TestRunIndependentCompletes(t *testing.T) {
	cfg := baseConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != cfg.Nodes {
		t.Fatalf("nodes = %d, want %d", len(res.Nodes), cfg.Nodes)
	}
	var samples int64
	for _, n := range res.Nodes {
		samples += n.Samples
	}
	want := int64(cfg.TrainFiles * cfg.Epochs)
	if samples != want {
		t.Fatalf("samples = %d, want %d (every file, every epoch)", samples, want)
	}
	if res.PFS.Reads != want {
		t.Fatalf("PFS reads = %d, want %d", res.PFS.Reads, want)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
}

func TestRunCoordinatedCompletes(t *testing.T) {
	cfg := baseConfig()
	cfg.Mode = Coordinated
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var samples int64
	total := 0
	for _, n := range res.Nodes {
		samples += n.Samples
		total += n.FinalTuning.Producers
	}
	if samples != int64(cfg.TrainFiles*cfg.Epochs) {
		t.Fatalf("samples = %d", samples)
	}
	if total > cfg.ProducerBudget {
		t.Fatalf("cluster producers %d exceed budget %d", total, cfg.ProducerBudget)
	}
}

func TestBarrierKeepsNodesInStep(t *testing.T) {
	// With synchronous data parallelism, every node's elapsed time is the
	// makespan (nobody finishes an epoch early).
	cfg := baseConfig()
	cfg.Epochs = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.Nodes {
		diff := res.Makespan - n.Elapsed
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.05*float64(res.Makespan) {
			t.Fatalf("node %d elapsed %v far from makespan %v", i, n.Elapsed, res.Makespan)
		}
	}
}

func TestCoordinationMatchesThroughputWithFewerThreads(t *testing.T) {
	// The headline claim: coordinated control reaches (approximately) the
	// same makespan while deploying fewer reader threads cluster-wide.
	cfgI := baseConfig()
	cfgI.Nodes = 8
	cfgI.TrainFiles = 16000
	cfgI.PFS.Channels = 8 // scarce shared backend: oversubscription hurts nobody but wastes threads
	// Two producers per node: enough to cover per-request queueing at the
	// saturated PFS, far below what eight independent tuners deploy.
	cfgI.ProducerBudget = 16
	resI, err := Run(cfgI)
	if err != nil {
		t.Fatal(err)
	}

	cfgC := cfgI
	cfgC.Mode = Coordinated
	resC, err := Run(cfgC)
	if err != nil {
		t.Fatal(err)
	}

	if float64(resC.Makespan) > 1.15*float64(resI.Makespan) {
		t.Fatalf("coordinated makespan %v more than 15%% behind independent %v", resC.Makespan, resI.Makespan)
	}
	if resC.TotalMaxReaders >= resI.TotalMaxReaders {
		t.Fatalf("coordinated threads %d not fewer than independent %d", resC.TotalMaxReaders, resI.TotalMaxReaders)
	}
}

func TestHeterogeneousLinksValidation(t *testing.T) {
	cfg := baseConfig()
	cfg.Links = []storage.DeviceSpec{cfg.Link} // wrong length
	if cfg.Validate() == nil {
		t.Fatal("mismatched Links length accepted")
	}
}

func TestCoordinatorShiftsProducersToSlowNode(t *testing.T) {
	// One node sits behind a 10x slower link. The coordinator, seeing that
	// node starve, grants it more producers than its fast peers — the
	// "holistic tuning" a per-node tuner cannot do without more threads
	// everywhere.
	cfg := baseConfig()
	cfg.Mode = Coordinated
	cfg.Nodes = 4
	cfg.ProducerBudget = 12
	cfg.Epochs = 2
	// A finite consumption rate (mixed AlexNet workload) lets satisfied
	// fast nodes go calm while the straggler keeps starving; a bounded
	// buffer keeps producer count (not buffer growth) the binding knob.
	cfg.Model = train.AlexNet()
	cfg.Stage.MaxBufferCapacity = 64
	cfg.Policy.MaxBuffer = 64
	fast := cfg.Link
	slow := fast
	slow.BaseLatency = 50 * fast.BaseLatency // a 1 ms straggler path
	slow.BytesPerSecond = fast.BytesPerSecond / 10
	slow.Channels = 8
	cfg.Links = []storage.DeviceSpec{fast, fast, fast, slow}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	slowT := res.Nodes[3].FinalTuning.Producers
	maxFast := 0
	for _, n := range res.Nodes[:3] {
		if n.FinalTuning.Producers > maxFast {
			maxFast = n.FinalTuning.Producers
		}
	}
	if slowT <= maxFast {
		t.Fatalf("slow node got t=%d, fast peers up to t=%d — coordinator did not shift budget", slowT, maxFast)
	}
	total := slowT
	for _, n := range res.Nodes[:3] {
		total += n.FinalTuning.Producers
	}
	if total > cfg.ProducerBudget {
		t.Fatalf("cluster producers %d exceed budget %d", total, cfg.ProducerBudget)
	}
}

func TestScaleOutReducesEpochTime(t *testing.T) {
	// Doubling nodes against an under-utilized PFS should cut the
	// makespan substantially (near-linear until the PFS saturates).
	small := baseConfig()
	small.Nodes = 2
	small.Epochs = 1
	resSmall, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	big := baseConfig()
	big.Nodes = 4
	big.Epochs = 1
	resBig, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if float64(resBig.Makespan) > 0.75*float64(resSmall.Makespan) {
		t.Fatalf("4 nodes (%v) not clearly faster than 2 (%v)", resBig.Makespan, resSmall.Makespan)
	}
}

func TestLinkCostsShowUp(t *testing.T) {
	// A slow per-node link must dominate a fast PFS.
	fast := baseConfig()
	fast.Nodes = 2
	fast.Epochs = 1
	fast.TrainFiles = 2000
	resFast, err := Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	slow := fast
	slow.Link = storage.DeviceSpec{
		Name: "1gbe", BaseLatency: 200 * time.Microsecond, BytesPerSecond: 125e6, Channels: 1,
	}
	resSlow, err := Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if resSlow.Makespan < 2*resFast.Makespan {
		t.Fatalf("slow link (%v) not clearly worse than fast (%v)", resSlow.Makespan, resFast.Makespan)
	}
}
