package distrib

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// PeerReader is the transport a Fabric uses to forward a read to the
// sample's owner node. *ipc.Client satisfies it (OpPeerRead over the UNIX
// socket); the cluster test harness uses an in-process transport that calls
// the owner fabric's ServePeer directly.
type PeerReader interface {
	PeerRead(name string) (storage.Data, error)
}

// FabricConfig wires one node's Fabric.
type FabricConfig struct {
	// Node is this node's id; it must be a member of Ring.
	Node string
	// Ring is the cluster's consistent-hash placement. The Fabric takes
	// ownership of routing decisions against it; mutate membership only
	// through Fabric.AddNode/RemoveNode so routing and partitioning agree.
	Ring *Ring
	// Stage is the node's local data plane.
	Stage *core.Stage
	// Slow is the shared slow store every node can reach directly — the
	// failover path when a peer is unreachable.
	Slow storage.Backend
	// Tracer records peer-read / peer-serve spans (nil = no tracing).
	Tracer *obs.Tracer
	// InstallPartitioner, when true, installs a plan partitioner on Stage so
	// SubmitEpoch with the full cluster plan prefetches only this node's
	// ring-owned share (clairvoyant placement). Leave false for modes where
	// every node sweeps the full plan itself.
	InstallPartitioner bool
}

// ClusterStats is one node's view of the fabric's traffic.
type ClusterStats struct {
	Node  string   `json:"node"`
	Nodes []string `json:"nodes"`

	// LocalReads were owned by this node and served by its own stage.
	LocalReads int64 `json:"local_reads"`
	// PeerReads were owned elsewhere and forwarded to the owner.
	PeerReads int64 `json:"peer_reads"`
	// PeerServes is the owner-side count: forwarded reads this node served
	// from its buffer on behalf of peers.
	PeerServes int64 `json:"peer_serves"`
	// PeerErrors counts forwarded reads whose peer transport failed.
	PeerErrors int64 `json:"peer_errors"`
	// Failovers counts reads served directly from the slow store after a
	// peer failure (every PeerError becomes either a Failover or an error).
	Failovers int64 `json:"failovers"`
	// PeerWait is cumulative time spent in successful forwarded reads.
	PeerWait time.Duration `json:"peer_wait"`
	// MaxFailoverLatency is the worst observed peer-failure read: from the
	// forwarded read's start to the slow-store fallback's completion. The
	// blackout chaos suite gates this against the read deadline.
	MaxFailoverLatency time.Duration `json:"max_failover_latency"`
}

// Fabric is one node's router in the multi-node prefetch fabric: reads of
// samples this node owns (by consistent-hash placement) go to the local
// stage; reads owned by a peer are forwarded to that peer's buffer; peer
// failures fail over to the shared slow store. With a plan partitioner
// installed, each node prefetches exactly the samples it will serve
// (clairvoyant placement — the epoch plan reveals the full access order),
// so cross-node traffic hits warm buffers instead of duplicating slow-store
// reads.
type Fabric struct {
	env    conc.Env
	node   string
	stage  *core.Stage
	slow   storage.Backend
	tracer *obs.Tracer

	mu    conc.Mutex
	ring  *Ring
	peers map[string]PeerReader

	localReads *metrics.Counter
	peerReads  *metrics.Counter
	peerServes *metrics.Counter
	peerErrors *metrics.Counter
	failovers  *metrics.Counter

	waitMu          conc.Mutex
	peerWait        time.Duration
	maxFailoverWait time.Duration
}

// NewFabric builds a node's fabric router.
func NewFabric(env conc.Env, cfg FabricConfig) (*Fabric, error) {
	if cfg.Node == "" {
		return nil, fmt.Errorf("distrib: fabric needs a node id")
	}
	if cfg.Ring == nil || cfg.Ring.Size() == 0 {
		return nil, fmt.Errorf("distrib: fabric needs a non-empty ring")
	}
	if cfg.Stage == nil {
		return nil, fmt.Errorf("distrib: fabric needs a stage")
	}
	if cfg.Slow == nil {
		return nil, fmt.Errorf("distrib: fabric needs a slow store for failover")
	}
	f := &Fabric{
		env:        env,
		node:       cfg.Node,
		stage:      cfg.Stage,
		slow:       cfg.Slow,
		tracer:     cfg.Tracer,
		mu:         env.NewMutex(),
		ring:       cfg.Ring,
		peers:      make(map[string]PeerReader),
		localReads: metrics.NewCounter(env),
		peerReads:  metrics.NewCounter(env),
		peerServes: metrics.NewCounter(env),
		peerErrors: metrics.NewCounter(env),
		failovers:  metrics.NewCounter(env),
		waitMu:     env.NewMutex(),
	}
	if cfg.InstallPartitioner {
		f.stage.SetPlanPartitioner(f.OwnedSubset)
	}
	return f, nil
}

// Node reports this fabric's node id.
func (f *Fabric) Node() string { return f.node }

// Stage exposes the local data plane.
func (f *Fabric) Stage() *core.Stage { return f.stage }

// SetPeer installs (or replaces) the transport to a peer node.
func (f *Fabric) SetPeer(node string, p PeerReader) {
	f.mu.Lock()
	f.peers[node] = p
	f.mu.Unlock()
}

// RemovePeer drops the transport to a peer node; subsequent reads owned by
// that node fail over to the slow store.
func (f *Fabric) RemovePeer(node string) {
	f.mu.Lock()
	delete(f.peers, node)
	f.mu.Unlock()
}

// AddNode adds a member to the placement ring (join).
func (f *Fabric) AddNode(node string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Add(node)
}

// RemoveNode removes a member from the placement ring (leave); its keys
// redistribute to the survivors.
func (f *Fabric) RemoveNode(node string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.peers, node)
	return f.ring.Remove(node)
}

// Owner reports which node owns name under the current ring.
func (f *Fabric) Owner(name string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring.Owner(name)
}

// OwnedSubset filters names down to the subsequence this node owns,
// preserving order. It is the plan partitioner installed on the stage:
// SubmitEpoch with the full cluster plan prefetches exactly this node's
// serving share.
func (f *Fabric) OwnedSubset(names []string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(names)/max(1, f.ring.Size())+1)
	for _, n := range names {
		if f.ring.Owner(n) == f.node {
			out = append(out, n)
		}
	}
	return out
}

// Read routes a read by ownership: local stage, peer forward, or slow-store
// failover. It draws its own trace context.
func (f *Fabric) Read(name string) (storage.Data, error) {
	return f.ReadCtx(name, f.tracer.StartTrace())
}

// ReadCtx is Read with a caller-provided span context.
func (f *Fabric) ReadCtx(name string, ctx obs.Ctx) (storage.Data, error) {
	f.mu.Lock()
	owner := f.ring.Owner(name)
	var peer PeerReader
	if owner != "" && owner != f.node {
		peer = f.peers[owner]
	}
	f.mu.Unlock()

	if owner == "" || owner == f.node {
		f.localReads.Inc()
		return f.stage.ReadCtx(name, ctx)
	}

	start := f.env.Now()
	if peer != nil {
		data, err := peer.PeerRead(name)
		if err == nil {
			wait := f.env.Now() - start
			f.peerReads.Inc()
			f.waitMu.Lock()
			f.peerWait += wait
			f.waitMu.Unlock()
			if ctx.Sampled {
				f.tracer.Record(obs.Span{
					Trace: ctx.Trace, Stage: obs.StagePeerRead, Name: name,
					At: start, Latency: wait, Size: data.Size,
				})
			}
			return data, nil
		}
		f.peerErrors.Inc()
	}

	// Peer down (or no transport installed): serve from the shared slow
	// store directly. The local plan never claimed this sample, so no plan
	// state needs unwinding; the orphaned entry in the owner's plan is
	// reaped by epoch-end cancellation.
	data, err := storage.ReadFileCtx(f.slow, name, ctx)
	elapsed := f.env.Now() - start
	if err == nil {
		f.failovers.Inc()
		f.waitMu.Lock()
		if elapsed > f.maxFailoverWait {
			f.maxFailoverWait = elapsed
		}
		f.waitMu.Unlock()
	}
	if ctx.Sampled {
		sp := obs.Span{
			Trace: ctx.Trace, Stage: obs.StagePeerRead, Name: name,
			At: start, Latency: elapsed, Size: data.Size,
			Error: "peer unreachable; slow-store failover",
		}
		if err != nil {
			sp.Error = err.Error()
		}
		f.tracer.Record(sp)
	}
	return data, err
}

// ServePeer handles a forwarded read on the owner side: the sample should
// be warm in (or in flight to) this node's buffer.
func (f *Fabric) ServePeer(name string) (storage.Data, error) {
	return f.ServePeerCtx(name, f.tracer.StartTrace())
}

// ServePeerCtx is ServePeer joining a caller-provided span context — the
// IPC server hands over the requester's rider trace id so owner-side
// peer-serve spans land in the same trace as the forwarded read.
func (f *Fabric) ServePeerCtx(name string, ctx obs.Ctx) (storage.Data, error) {
	f.peerServes.Inc()
	start := f.env.Now()
	data, err := f.stage.ReadCtx(name, ctx)
	if ctx.Sampled {
		sp := obs.Span{
			Trace: ctx.Trace, Stage: obs.StagePeerServe, Name: name,
			At: start, Latency: f.env.Now() - start, Size: data.Size,
		}
		if err != nil {
			sp.Error = err.Error()
		}
		f.tracer.Record(sp)
	}
	return data, err
}

// Stats snapshots the fabric's traffic counters.
func (f *Fabric) Stats() ClusterStats {
	f.mu.Lock()
	nodes := f.ring.Nodes()
	f.mu.Unlock()
	f.waitMu.Lock()
	wait := f.peerWait
	maxFail := f.maxFailoverWait
	f.waitMu.Unlock()
	return ClusterStats{
		Node:               f.node,
		Nodes:              nodes,
		LocalReads:         f.localReads.Value(),
		PeerReads:          f.peerReads.Value(),
		PeerServes:         f.peerServes.Value(),
		PeerErrors:         f.peerErrors.Value(),
		Failovers:          f.failovers.Value(),
		PeerWait:           wait,
		MaxFailoverLatency: maxFail,
	}
}

// localPeer is the in-process peer transport used by the sim cluster
// harness: a forwarded read calls the owner fabric's ServePeer directly.
type localPeer struct{ f *Fabric }

// LocalPeer returns an in-process PeerReader serving from f's buffer.
func LocalPeer(f *Fabric) PeerReader { return localPeer{f: f} }

func (p localPeer) PeerRead(name string) (storage.Data, error) {
	return p.f.ServePeer(name)
}
