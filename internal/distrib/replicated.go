package distrib

import (
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/control"
)

// coordinatorGroup is the replicated arrangement of the cluster
// coordinator: R replicas each hold the full coordinator state (previous
// snapshots, applied tunings) over the same stages, but only the leader —
// the lowest-indexed live replica — executes rounds. On leader failure the
// next live replica takes over on the following round. Its snapshots and
// tuning book are slightly stale (frozen at the last round it led, or at
// construction); the first post-failover tick normalizes deltas over the
// long interval since its own last observation and re-applies its own
// tunings, after which it converges like a fresh coordinator. Mirrors
// control.ReplicaGroup one level up.
type coordinatorGroup struct {
	env conc.Env

	mu        conc.Mutex
	replicas  []*coordinator
	alive     []bool
	started   bool
	stopped   bool
	failovers int64
	lastLead  int
}

// newCoordinatorGroup creates n coordinator replicas (n >= 1) over the same
// stages, none started. Every replica applies the same initial tuning (one
// producer each), so repeated construction-time writes are idempotent.
func newCoordinatorGroup(env conc.Env, stages []control.DataPlane, pol control.Policy, budget, n int) *coordinatorGroup {
	if n < 1 {
		panic("distrib: coordinator group needs >= 1 replica")
	}
	g := &coordinatorGroup{env: env, mu: env.NewMutex()}
	for i := 0; i < n; i++ {
		g.replicas = append(g.replicas, newCoordinator(env, stages, pol, budget))
		g.alive = append(g.alive, true)
	}
	return g
}

// leader reports the index of the current leader, or -1 when none is live.
func (g *coordinatorGroup) leader() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leaderLocked()
}

func (g *coordinatorGroup) leaderLocked() int {
	for i, ok := range g.alive {
		if ok {
			return i
		}
	}
	return -1
}

// fail marks replica i dead (simulated crash).
func (g *coordinatorGroup) fail(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.alive[i] = false
}

// recover marks replica i live again; leadership returns to the lowest
// index on the next round.
func (g *coordinatorGroup) recover(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.alive[i] = true
}

// failoverCount reports how many rounds ran on a different replica than the
// previous round.
func (g *coordinatorGroup) failoverCount() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failovers
}

// tick runs one coordination round on the current leader, reporting which
// replica executed it (-1 when all are down).
func (g *coordinatorGroup) tick() int {
	g.mu.Lock()
	lead := g.leaderLocked()
	if lead >= 0 && lead != g.lastLead {
		g.failovers++
	}
	if lead >= 0 {
		g.lastLead = lead
	}
	g.mu.Unlock()
	if lead < 0 {
		return -1
	}
	g.replicas[lead].tick()
	return lead
}

// start launches the group's autonomous loop.
func (g *coordinatorGroup) start(interval time.Duration) {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		panic("distrib: coordinator group started twice")
	}
	g.started = true
	g.mu.Unlock()
	g.env.Go("distrib-coordinator-group", func() {
		for {
			g.env.Sleep(interval)
			g.mu.Lock()
			stopped := g.stopped
			g.mu.Unlock()
			if stopped {
				return
			}
			g.tick()
		}
	})
}

// stop terminates the loop after its current sleep.
func (g *coordinatorGroup) stop() {
	g.mu.Lock()
	g.stopped = true
	g.mu.Unlock()
}

// applied reports the tuning the most recent leader holds for node n.
func (g *coordinatorGroup) applied(n int) control.Tuning {
	g.mu.Lock()
	lead := g.lastLead
	g.mu.Unlock()
	return g.replicas[lead].applied(n)
}

// totalProducers reports the cluster-wide producer count as the most
// recent leader sees it.
func (g *coordinatorGroup) totalProducers() int {
	g.mu.Lock()
	lead := g.lastLead
	g.mu.Unlock()
	return g.replicas[lead].totalProducers()
}
