package distrib

import (
	"sync"
	"testing"
)

// testClusterConfig is a small, fast cluster cell for the harness tests.
func testClusterConfig(mode ClusterMode, nodes int) ClusterConfig {
	cfg := DefaultClusterConfig()
	cfg.Mode = mode
	cfg.Nodes = nodes
	cfg.TrainFiles = 400
	cfg.Epochs = 2
	return cfg
}

// The deterministic cluster harness: every sample is served exactly the
// expected number of times per epoch, and clairvoyant placement issues zero
// duplicate slow-store reads while the uncoordinated sweeps issue N per
// sample.
func TestClusterExactlyOnceAndDuplicateReads(t *testing.T) {
	cases := []struct {
		name  string
		mode  ClusterMode
		nodes int
	}{
		{"independent-2", ClusterIndependent, 2},
		{"independent-4", ClusterIndependent, 4},
		{"coordinated-2", ClusterCoordinated, 2},
		{"coordinated-4", ClusterCoordinated, 4},
		{"clairvoyant-1", ClusterClairvoyant, 1},
		{"clairvoyant-2", ClusterClairvoyant, 2},
		{"clairvoyant-4", ClusterClairvoyant, 4},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := testClusterConfig(tc.mode, tc.nodes)
			res, err := RunCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%d read errors", res.Errors)
			}
			if res.OverDeliveries != 0 || res.MissedDeliveries != 0 {
				t.Fatalf("delivery ledger off: over=%d missed=%d",
					res.OverDeliveries, res.MissedDeliveries)
			}
			perEpoch := int64(cfg.TrainFiles)
			wantDelivered := perEpoch * int64(cfg.Epochs)
			if tc.mode != ClusterClairvoyant {
				wantDelivered *= int64(tc.nodes)
				perEpoch *= int64(tc.nodes)
			}
			if res.Delivered != wantDelivered {
				t.Fatalf("delivered = %d, want %d", res.Delivered, wantDelivered)
			}
			if len(res.EpochBackendReads) != cfg.Epochs {
				t.Fatalf("epoch read samples = %d, want %d", len(res.EpochBackendReads), cfg.Epochs)
			}
			for e, reads := range res.EpochBackendReads {
				if reads != perEpoch {
					t.Fatalf("epoch %d backend reads = %d, want %d", e, reads, perEpoch)
				}
			}
			switch {
			case tc.mode == ClusterClairvoyant:
				if res.DuplicateReadFactor != 1 {
					t.Fatalf("clairvoyant duplicate factor = %v, want 1", res.DuplicateReadFactor)
				}
				if tc.nodes >= 2 && (res.PeerReads == 0 || res.PeerServes != res.PeerReads) {
					t.Fatalf("peer traffic off: reads=%d serves=%d", res.PeerReads, res.PeerServes)
				}
				if res.Failovers != 0 {
					t.Fatalf("unexpected failovers: %d", res.Failovers)
				}
			case tc.nodes >= 2:
				if res.DuplicateReadFactor <= 1 {
					t.Fatalf("uncoordinated duplicate factor = %v, want > 1", res.DuplicateReadFactor)
				}
			}
			if res.Makespan <= 0 {
				t.Fatal("zero makespan")
			}
		})
	}
}

// Clairvoyant placement's economy claim: at N nodes the independent sweep
// reads every sample N times from the slow store; clairvoyant reads it
// once, converting the difference into peer-buffer hits.
func TestClusterClairvoyantEliminatesDuplicateReads(t *testing.T) {
	const nodes = 4
	ind, err := RunCluster(testClusterConfig(ClusterIndependent, nodes))
	if err != nil {
		t.Fatal(err)
	}
	clair, err := RunCluster(testClusterConfig(ClusterClairvoyant, nodes))
	if err != nil {
		t.Fatal(err)
	}
	if ind.BackendReads != int64(nodes)*clair.BackendReads {
		t.Fatalf("independent reads %d != %d x clairvoyant reads %d",
			ind.BackendReads, nodes, clair.BackendReads)
	}
	if clair.PeerReads == 0 {
		t.Fatal("clairvoyant run forwarded nothing")
	}
}

// Centralized and replicated control planes are behaviourally identical
// while the leader is healthy: same producer budget, same data-plane
// outcome. A leader crash mid-run fails over and stays within budget.
func TestClusterControlPlaneConvergence(t *testing.T) {
	base := testClusterConfig(ClusterCoordinated, 4)

	central, err := RunCluster(base)
	if err != nil {
		t.Fatal(err)
	}

	replicated := base
	replicated.Replicas = 3
	repl, err := RunCluster(replicated)
	if err != nil {
		t.Fatal(err)
	}
	if repl.TotalProducers != central.TotalProducers {
		t.Fatalf("replicated budget %d != centralized %d",
			repl.TotalProducers, central.TotalProducers)
	}
	if repl.Delivered != central.Delivered || repl.BackendReads != central.BackendReads {
		t.Fatalf("replicated data plane diverged: delivered %d/%d reads %d/%d",
			repl.Delivered, central.Delivered, repl.BackendReads, central.BackendReads)
	}
	if repl.ControlFailovers != 0 {
		t.Fatalf("healthy replicated run recorded %d failovers", repl.ControlFailovers)
	}

	// Kill the leader mid-run: replica 1 must take over and keep the
	// cluster inside the budget; the training run still completes cleanly.
	failover := replicated
	failover.FailLeaderAt = central.Makespan / 2
	failed, err := RunCluster(failover)
	if err != nil {
		t.Fatal(err)
	}
	if failed.ControlFailovers < 1 {
		t.Fatal("leader crash produced no failover")
	}
	if failed.TotalProducers > base.ProducerBudget {
		t.Fatalf("post-failover producers %d exceed budget %d",
			failed.TotalProducers, base.ProducerBudget)
	}
	if failed.Errors != 0 || failed.OverDeliveries != 0 || failed.MissedDeliveries != 0 {
		t.Fatalf("failover run broke delivery: errors=%d over=%d missed=%d",
			failed.Errors, failed.OverDeliveries, failed.MissedDeliveries)
	}
	if failed.Delivered != central.Delivered {
		t.Fatalf("failover delivered %d, want %d", failed.Delivered, central.Delivered)
	}
}

// Clairvoyant mode also runs under coordinated control arrangements; the
// budget holds there too.
func TestClusterClairvoyantUnderReplicatedControl(t *testing.T) {
	cfg := testClusterConfig(ClusterClairvoyant, 4)
	cfg.Replicas = 2
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.OverDeliveries != 0 || res.MissedDeliveries != 0 {
		t.Fatalf("delivery broke: errors=%d over=%d missed=%d",
			res.Errors, res.OverDeliveries, res.MissedDeliveries)
	}
	if res.DuplicateReadFactor != 1 {
		t.Fatalf("duplicate factor = %v, want 1", res.DuplicateReadFactor)
	}
	if res.TotalProducers > cfg.ProducerBudget {
		t.Fatalf("producers %d exceed budget %d", res.TotalProducers, cfg.ProducerBudget)
	}
}

// The debug-signals observer is installed from the test goroutine and read
// from sim processes every tick; the locked setter keeps that race-free
// under -race, and the observed producer counts never exceed the budget.
func TestClusterDebugSignalsObserver(t *testing.T) {
	var mu sync.Mutex
	ticks := 0
	maxProducers := 0
	prev := setDebugSignals(func(stage int, starvation, idle float64, queue, producers int) {
		mu.Lock()
		ticks++
		if producers > maxProducers {
			maxProducers = producers
		}
		mu.Unlock()
	})
	defer setDebugSignals(prev)

	cfg := testClusterConfig(ClusterCoordinated, 2)
	cfg.Epochs = 1
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if ticks == 0 {
		t.Fatal("observer never fired")
	}
	if maxProducers > cfg.ProducerBudget {
		t.Fatalf("observed %d producers, budget %d", maxProducers, cfg.ProducerBudget)
	}
	if res.Delivered == 0 {
		t.Fatal("no samples delivered")
	}
}

// The harness validates configs before simulating.
func TestClusterConfigValidate(t *testing.T) {
	good := DefaultClusterConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Nodes = 0
	if bad.Validate() == nil {
		t.Error("zero nodes accepted")
	}
	bad = good
	bad.TrainFiles = 2
	bad.Nodes = 4
	if bad.Validate() == nil {
		t.Error("fewer files than nodes accepted")
	}
	bad = good
	bad.Mode = ClusterCoordinated
	bad.ProducerBudget = 1
	bad.Nodes = 4
	if bad.Validate() == nil {
		t.Error("budget below node count accepted")
	}
	if ClusterIndependent.String() != "independent" ||
		ClusterCoordinated.String() != "coordinated" ||
		ClusterClairvoyant.String() != "clairvoyant" {
		t.Error("mode strings wrong")
	}
}
