package distrib

import (
	"sync"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/control"
	"github.com/dsrhaslab/prisma-go/internal/core"
)

// coordinator is the Coordinated-mode control plane: it observes every
// stage's starvation/idleness each interval and redistributes a global
// producer budget, giving threads to starved stages and reclaiming them
// from idle ones. Unlike per-node tuners it can never oversubscribe the
// shared backend: the cluster-wide producer count stays within the budget.
// It drives stages through control.DataPlane, so the same loop tunes
// in-process stages (the sim) and remote nodes behind an IPC adapter
// (control.NewRemoteAdapter over an ipc client).
type coordinator struct {
	env    conc.Env
	stages []control.DataPlane
	pol    control.Policy
	budget int

	mu      conc.Mutex
	prev    []core.StageStats
	tunings []control.Tuning
	stopped bool
	started bool
}

// debugSignalsFn observes each stage's control signals every tick (test
// hook). Guarded by its own mutex, not the coordinator's: distrib tests run
// concurrently under -race, and the observer is installed from the test
// goroutine while coordinator ticks read it from sim processes.
var (
	debugSignalsMu sync.Mutex
	debugSignalsFn func(stage int, starvation, idle float64, queue, producers int)
)

// setDebugSignals installs (or, with nil, removes) the per-tick signal
// observer and returns the previous one so tests can restore it.
func setDebugSignals(f func(stage int, starvation, idle float64, queue, producers int)) (prev func(stage int, starvation, idle float64, queue, producers int)) {
	debugSignalsMu.Lock()
	defer debugSignalsMu.Unlock()
	prev = debugSignalsFn
	debugSignalsFn = f
	return prev
}

// debugSignalsHook snapshots the observer under the lock for one tick.
func debugSignalsHook() func(stage int, starvation, idle float64, queue, producers int) {
	debugSignalsMu.Lock()
	defer debugSignalsMu.Unlock()
	return debugSignalsFn
}

func newCoordinator(env conc.Env, stages []control.DataPlane, pol control.Policy, budget int) *coordinator {
	c := &coordinator{
		env:     env,
		stages:  stages,
		pol:     pol,
		budget:  budget,
		mu:      env.NewMutex(),
		prev:    make([]core.StageStats, len(stages)),
		tunings: make([]control.Tuning, len(stages)),
	}
	// Start every stage at one producer; the budget is distributed on
	// demand from the first tick.
	for i, st := range stages {
		c.tunings[i] = control.Tuning{Producers: 1, BufferCapacity: pol.MinBuffer * 4}
		st.SetProducers(1)
		st.SetBufferCapacity(c.tunings[i].BufferCapacity)
		c.prev[i] = st.Stats()
	}
	return c
}

// applied reports the tuning currently applied to node n.
func (c *coordinator) applied(n int) control.Tuning {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tunings[n]
}

// tick performs one coordination round.
func (c *coordinator) tick() {
	c.mu.Lock()
	defer c.mu.Unlock()

	type signal struct {
		starvation float64
		idle       float64
		queue      int
	}
	signals := make([]signal, len(c.stages))
	used := 0
	for i, st := range c.stages {
		cur := st.Stats()
		interval := cur.Now - c.prev[i].Now
		if interval > 0 {
			consumerWait := cur.Buffer.ConsumerWait - c.prev[i].Buffer.ConsumerWait
			producerWait := cur.Buffer.ProducerWait - c.prev[i].Buffer.ProducerWait
			producers := c.tunings[i].Producers
			if producers < 1 {
				producers = 1
			}
			signals[i] = signal{
				starvation: float64(consumerWait) / float64(interval),
				idle:       float64(producerWait) / (float64(interval) * float64(producers)),
				queue:      cur.QueueLen,
			}
		}
		c.prev[i] = cur
		used += c.tunings[i].Producers
	}

	if hook := debugSignalsHook(); hook != nil {
		for i, sg := range signals {
			hook(i, sg.starvation, sg.idle, sg.queue, c.tunings[i].Producers)
		}
	}

	// Reclaim from idle stages first (frees budget), then grant to the
	// most starved stages while budget remains.
	for i, sg := range signals {
		if sg.starvation < c.pol.StarvationLow && sg.idle > c.pol.ProducerIdleHigh && sg.queue > 0 &&
			c.tunings[i].Producers > c.pol.MinProducers {
			c.tunings[i].Producers--
			used--
			c.stages[i].SetProducers(c.tunings[i].Producers)
		}
	}
	// Grant one producer per round to each starved stage, most starved
	// first, within the global budget.
	for used < c.budget {
		best, bestStarv := -1, c.pol.StarvationHigh
		for i, sg := range signals {
			if sg.starvation > bestStarv && c.tunings[i].Producers < c.pol.MaxProducers {
				best, bestStarv = i, sg.starvation
			}
		}
		if best < 0 {
			break
		}
		c.tunings[best].Producers++
		used++
		c.stages[best].SetProducers(c.tunings[best].Producers)
		signals[best].starvation = 0 // one grant per stage per round
	}

	// Rebalance under a fully spent budget: when one stage starves much
	// harder than another, move a producer from the calmest stage to the
	// hungriest. Absolute thresholds cannot see this case — with a global
	// batch larger than the buffer, every stage shows some starvation, but
	// the straggler's is categorically worse. Relative comparison is what
	// system-wide visibility buys (§III).
	const rebalanceGap = 0.25
	if used >= c.budget {
		hungry, calm := -1, -1
		for i, sg := range signals {
			if hungry < 0 || sg.starvation > signals[hungry].starvation {
				hungry = i
			}
			if c.tunings[i].Producers > c.pol.MinProducers &&
				(calm < 0 || sg.starvation < signals[calm].starvation) {
				calm = i
			}
		}
		if hungry >= 0 && calm >= 0 && hungry != calm &&
			signals[hungry].starvation-signals[calm].starvation > rebalanceGap &&
			c.tunings[hungry].Producers < c.pol.MaxProducers {
			c.tunings[calm].Producers--
			c.stages[calm].SetProducers(c.tunings[calm].Producers)
			c.tunings[hungry].Producers++
			c.stages[hungry].SetProducers(c.tunings[hungry].Producers)
		}
	}

	// Buffer growth mirrors the single-node tuner: a stage starving at
	// its producer grant doubles its buffer within policy bounds.
	for i, sg := range signals {
		if sg.starvation > c.pol.StarvationHigh && c.tunings[i].BufferCapacity < c.pol.MaxBuffer {
			c.tunings[i].BufferCapacity *= 2
			if c.tunings[i].BufferCapacity > c.pol.MaxBuffer {
				c.tunings[i].BufferCapacity = c.pol.MaxBuffer
			}
			c.stages[i].SetBufferCapacity(c.tunings[i].BufferCapacity)
		}
	}
}

// start launches the coordination loop.
func (c *coordinator) start(interval time.Duration) {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		panic("distrib: coordinator started twice")
	}
	c.started = true
	c.mu.Unlock()
	c.env.Go("distrib-coordinator", func() {
		for {
			c.env.Sleep(interval)
			c.mu.Lock()
			stopped := c.stopped
			c.mu.Unlock()
			if stopped {
				return
			}
			c.tick()
		}
	})
}

// stop terminates the loop after its current sleep.
func (c *coordinator) stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
}

// totalProducers reports the cluster-wide producer count.
func (c *coordinator) totalProducers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, t := range c.tunings {
		total += t.Producers
	}
	return total
}
