package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	s := New()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestSingleProcessSleepAdvancesClock(t *testing.T) {
	s := New()
	var at time.Duration
	s.Spawn("p", func(p *Process) {
		p.Sleep(5 * time.Second)
		at = s.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*time.Second {
		t.Fatalf("woke at %v, want 5s", at)
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("final clock %v, want 5s", s.Now())
	}
}

func TestEventsRunInTimestampOrder(t *testing.T) {
	s := New()
	var order []string
	for _, d := range []time.Duration{30, 10, 20} {
		d := d
		s.SpawnAfter(d*time.Millisecond, fmt.Sprintf("p%d", d), func(p *Process) {
			order = append(order, p.Name())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := "p10,p20,p30"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order = %s, want %s", got, want)
	}
}

func TestSimultaneousEventsRunFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Process) { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break)", i, v, i)
		}
	}
}

func TestSleepZeroYields(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Process) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Process) { order = append(order, "b") })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, ","); got != "a1,b,a2" {
		t.Fatalf("order = %s, want a1,b,a2", got)
	}
}

func TestNegativeSleepClampedToYield(t *testing.T) {
	s := New()
	ran := false
	s.Spawn("p", func(p *Process) {
		p.Sleep(-time.Second)
		ran = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || s.Now() != 0 {
		t.Fatalf("ran=%v now=%v, want true/0", ran, s.Now())
	}
}

func TestSpawnFromInsideProcess(t *testing.T) {
	s := New()
	var childAt time.Duration
	s.Spawn("parent", func(p *Process) {
		p.Sleep(time.Second)
		s.Spawn("child", func(c *Process) {
			c.Sleep(2 * time.Second)
			childAt = s.Now()
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if childAt != 3*time.Second {
		t.Fatalf("child finished at %v, want 3s", childAt)
	}
}

func TestSpawnAtRejectsPast(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Process) { p.Sleep(time.Second) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SpawnAt in the past did not panic")
		}
	}()
	s.SpawnAt(0, "late", func(*Process) {})
}

func TestRunUntilStopsAtLimit(t *testing.T) {
	s := New()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		s.SpawnAfter(d*time.Second, "p", func(p *Process) { fired = append(fired, s.Now()) })
	}
	if err := s.RunUntil(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("clock %v, want 2s", s.Now())
	}
	// Resuming runs the rest.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %d events after resume, want 4", len(fired))
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New()
	m := s.NewMutex()
	c := s.NewCond(m)
	s.Spawn("waiter", func(p *Process) {
		m.Lock()
		c.Wait() // nobody ever signals
		m.Unlock()
	})
	err := s.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "waiter") {
		t.Fatalf("deadlock report %q does not name the parked process", err)
	}
}

func TestProcessPanicPropagates(t *testing.T) {
	s := New()
	s.Spawn("bomb", func(p *Process) { panic("boom") })
	err := s.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "bomb") {
		t.Fatalf("err = %v, want panic report naming process", err)
	}
}

func TestPanicAbortsRemainingProcesses(t *testing.T) {
	s := New()
	cleaned := false
	s.Spawn("victim", func(p *Process) {
		defer func() { cleaned = true }()
		p.Sleep(time.Hour)
	})
	s.SpawnAfter(time.Second, "bomb", func(p *Process) { panic("boom") })
	if err := s.Run(); err == nil {
		t.Fatal("expected error")
	}
	if !cleaned {
		t.Fatal("victim's deferred cleanup did not run during shutdown")
	}
}

func TestExternalLockUncontended(t *testing.T) {
	s := New()
	m := s.NewMutex()
	m.Lock() // outside any process: allowed while free
	m.Unlock()
}

func TestExternalUnlockWithoutLockPanics(t *testing.T) {
	s := New()
	m := s.NewMutex()
	defer func() {
		if recover() == nil {
			t.Fatal("external Unlock of free mutex did not panic")
		}
	}()
	m.Unlock()
}

func TestInternalLockWhileExternallyHeldPanics(t *testing.T) {
	s := New()
	m := s.NewMutex()
	m.Lock() // external
	s.Spawn("p", func(p *Process) { m.Lock() })
	if err := s.Run(); err == nil {
		t.Fatal("in-process Lock of externally held mutex did not fail")
	}
}

func TestCondWaitOutsideProcessPanics(t *testing.T) {
	s := New()
	m := s.NewMutex()
	c := s.NewCond(m)
	defer func() {
		if recover() == nil {
			t.Fatal("Cond.Wait outside a process did not panic")
		}
	}()
	c.Wait()
}

func TestMutexMutualExclusion(t *testing.T) {
	s := New()
	m := s.NewMutex()
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Process) {
			m.Lock()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Millisecond) // hold across a yield
			inside--
			m.Unlock()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock %v, want 5ms (serialized critical sections)", s.Now())
	}
}

func TestMutexFIFOOrder(t *testing.T) {
	s := New()
	m := s.NewMutex()
	var order []int
	s.Spawn("holder", func(p *Process) {
		m.Lock()
		p.Sleep(time.Second)
		m.Unlock()
	})
	for i := 0; i < 4; i++ {
		i := i
		s.SpawnAfter(time.Duration(i+1)*time.Millisecond, fmt.Sprintf("w%d", i), func(p *Process) {
			m.Lock()
			order = append(order, i)
			m.Unlock()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("lock order %v, want FIFO", order)
		}
	}
}

func TestMutexDoubleLockPanics(t *testing.T) {
	s := New()
	m := s.NewMutex()
	s.Spawn("p", func(p *Process) {
		m.Lock()
		m.Lock()
	})
	if err := s.Run(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v, want double-lock panic", err)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	s := New()
	m := s.NewMutex()
	s.Spawn("p", func(p *Process) { m.Unlock() })
	if err := s.Run(); err == nil {
		t.Fatal("unlock of unlocked mutex did not fail")
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	s := New()
	m := s.NewMutex()
	c := s.NewCond(m)
	ready := 0
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Process) {
			m.Lock()
			ready++
			c.Wait()
			woken++
			m.Unlock()
		})
	}
	s.SpawnAfter(time.Second, "signaler", func(p *Process) {
		m.Lock()
		c.Signal()
		m.Unlock()
	})
	err := s.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want deadlock (two waiters left)", err)
	}
	if ready != 3 || woken != 1 {
		t.Fatalf("ready=%d woken=%d, want 3/1", ready, woken)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	s := New()
	m := s.NewMutex()
	c := s.NewCond(m)
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Process) {
			m.Lock()
			c.Wait()
			woken++
			m.Unlock()
		})
	}
	s.SpawnAfter(time.Second, "b", func(p *Process) {
		m.Lock()
		c.Broadcast()
		m.Unlock()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestCondWaitWithoutMutexPanics(t *testing.T) {
	s := New()
	m := s.NewMutex()
	c := s.NewCond(m)
	s.Spawn("p", func(p *Process) { c.Wait() })
	if err := s.Run(); err == nil {
		t.Fatal("Cond.Wait without mutex did not fail")
	}
}

func TestCondSignalNoWaitersIsNoop(t *testing.T) {
	s := New()
	m := s.NewMutex()
	c := s.NewCond(m)
	s.Spawn("p", func(p *Process) {
		c.Signal()
		c.Broadcast()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroupReleasesAtZero(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup()
	wg.Add(3)
	var doneAt time.Duration
	s.Spawn("waiter", func(p *Process) {
		wg.Wait()
		doneAt = s.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		s.SpawnAfter(time.Duration(i)*time.Second, "worker", func(p *Process) { wg.Done() })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*time.Second {
		t.Fatalf("waiter released at %v, want 3s", doneAt)
	}
}

func TestWaitGroupZeroCounterDoesNotBlock(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup()
	ok := false
	s.Spawn("p", func(p *Process) {
		wg.Wait()
		ok = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup()
	s.Spawn("p", func(p *Process) { wg.Done() })
	if err := s.Run(); err == nil {
		t.Fatal("negative counter did not fail")
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	s := New()
	sem := s.NewSemaphore(2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Process) {
			sem.Acquire()
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Second)
			inside--
			sem.Release()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 2 {
		t.Fatalf("max concurrency = %d, want 2", maxInside)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("makespan %v, want 3s (6 jobs / 2 slots)", s.Now())
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s := New()
	sem := s.NewSemaphore(1)
	var got1, got2 bool
	s.Spawn("p", func(p *Process) {
		got1 = sem.TryAcquire()
		got2 = sem.TryAcquire()
		sem.Release()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !got1 || got2 {
		t.Fatalf("TryAcquire = %v,%v, want true,false", got1, got2)
	}
	if sem.Free() != 1 {
		t.Fatalf("Free = %d, want 1", sem.Free())
	}
}

func TestShutdownReleasesSleepers(t *testing.T) {
	s := New()
	cleaned := 0
	for i := 0; i < 4; i++ {
		s.Spawn("sleeper", func(p *Process) {
			defer func() { cleaned++ }()
			p.Sleep(time.Hour)
		})
	}
	if err := s.RunUntil(time.Minute); err != nil {
		t.Fatal(err)
	}
	s.Shutdown()
	if cleaned != 4 {
		t.Fatalf("cleaned = %d, want 4", cleaned)
	}
	if s.Live() != 0 {
		t.Fatalf("Live = %d, want 0", s.Live())
	}
}

func TestShutdownIdempotent(t *testing.T) {
	s := New()
	s.Spawn("p", func(p *Process) { p.Sleep(time.Hour) })
	_ = s.RunUntil(0)
	s.Shutdown()
	s.Shutdown() // must not panic or hang
}

func TestRunAfterShutdownFails(t *testing.T) {
	s := New()
	s.Shutdown()
	if err := s.Run(); err == nil {
		t.Fatal("Run after Shutdown succeeded")
	}
}

func TestSpawnAfterNegativePanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay accepted")
		}
	}()
	s.SpawnAfter(-time.Second, "p", func(*Process) {})
}

func TestSpawnNilBodyPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil body accepted")
		}
	}()
	s.Spawn("p", nil)
}

func TestWaitGroupWaitOutsideProcessPanics(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup()
	wg.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("external Wait on nonzero counter did not panic")
		}
	}()
	wg.Wait()
}

func TestSemaphoreAcquireOutsideProcessPanics(t *testing.T) {
	s := New()
	sem := s.NewSemaphore(0)
	defer func() {
		if recover() == nil {
			t.Fatal("external Acquire on empty semaphore did not panic")
		}
	}()
	sem.Acquire()
}

func TestNewCondValidation(t *testing.T) {
	s := New()
	other := New()
	m := other.NewMutex()
	defer func() {
		if recover() == nil {
			t.Fatal("cross-simulation cond accepted")
		}
	}()
	s.NewCond(m)
}

func TestProcessNameAndSim(t *testing.T) {
	s := New()
	var name string
	var owner *Simulation
	s.Spawn("worker-7", func(p *Process) {
		name = p.Name()
		owner = p.Sim()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if name != "worker-7" || owner != s {
		t.Fatalf("Name/Sim = %q/%p", name, owner)
	}
}

// TestDeterminism runs a randomized workload twice with the same seed and
// requires identical traces.
func TestDeterminism(t *testing.T) {
	runOnce := func(seed int64) []string {
		var trace []string
		s := New()
		rng := rand.New(rand.NewSource(seed))
		m := s.NewMutex()
		c := s.NewCond(m)
		pending := 0
		for i := 0; i < 20; i++ {
			i := i
			d := time.Duration(rng.Intn(50)) * time.Millisecond
			s.SpawnAfter(d, fmt.Sprintf("p%d", i), func(p *Process) {
				p.Sleep(time.Duration(rng.Intn(10)) * time.Millisecond)
				m.Lock()
				if i%3 == 0 {
					pending++
					c.Wait()
					trace = append(trace, fmt.Sprintf("woke:%d@%v", i, s.Now()))
				} else {
					if pending > 0 {
						pending--
						c.Signal()
					}
					trace = append(trace, fmt.Sprintf("ran:%d@%v", i, s.Now()))
				}
				m.Unlock()
			})
		}
		err := s.Run()
		if err != nil && !errors.Is(err, ErrDeadlock) {
			t.Fatal(err)
		}
		s.Shutdown()
		return trace
	}
	a := runOnce(42)
	b := runOnce(42)
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Fatalf("nondeterministic traces:\n%v\n%v", a, b)
	}
}

// Property: the clock observed by processes never decreases, regardless of
// the sleep schedule.
func TestClockMonotoneProperty(t *testing.T) {
	prop := func(delays []int16) bool {
		s := New()
		last := time.Duration(-1)
		ok := true
		for _, d16 := range delays {
			d := time.Duration(int(d16)%1000+1000) * time.Microsecond
			s.SpawnAfter(d, "p", func(p *Process) {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
				p.Sleep(d / 2)
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a semaphore of capacity c never admits more than c holders, for
// arbitrary job counts and capacities.
func TestSemaphoreCapacityProperty(t *testing.T) {
	prop := func(jobs, capRaw uint8) bool {
		capacity := int(capRaw)%8 + 1
		n := int(jobs)%40 + 1
		s := New()
		sem := s.NewSemaphore(capacity)
		inside, maxInside := 0, 0
		for i := 0; i < n; i++ {
			s.Spawn("p", func(p *Process) {
				sem.Acquire()
				inside++
				if inside > maxInside {
					maxInside = inside
				}
				p.Sleep(time.Millisecond)
				inside--
				sem.Release()
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return maxInside <= capacity && inside == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMultiCondMultiMutexDeterministic drives the shape the sharded buffer
// relies on — many processes blocking and waking across several
// independent mutex/cond pairs — and pins that repeated runs produce an
// identical event trace and finish at the identical virtual time. All
// lock, wait, and wakeup operations must consume zero virtual time; only
// the explicit sleeps advance the clock.
func TestMultiCondMultiMutexDeterministic(t *testing.T) {
	run := func() (string, time.Duration) {
		s := New()
		const shards = 4
		type cell struct {
			mu    *Mutex
			cond  *Cond
			ready bool
		}
		cells := make([]*cell, shards)
		for i := range cells {
			mu := s.NewMutex()
			cells[i] = &cell{mu: mu, cond: s.NewCond(mu)}
		}
		var trace []string
		var end time.Duration
		for i := 0; i < 12; i++ {
			i := i
			c := cells[i%shards]
			s.Spawn(fmt.Sprintf("waiter-%d", i), func(p *Process) {
				c.mu.Lock()
				for !c.ready {
					c.cond.Wait()
				}
				c.mu.Unlock()
				p.Sleep(time.Duration(i%3+1) * time.Millisecond)
				trace = append(trace, fmt.Sprintf("waiter-%d@%v", i, s.Now()))
				if s.Now() > end {
					end = s.Now()
				}
			})
		}
		s.Spawn("waker", func(p *Process) {
			p.Sleep(10 * time.Millisecond)
			for _, c := range cells {
				c.mu.Lock()
				c.ready = true
				c.cond.Broadcast()
				c.mu.Unlock()
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(trace), end
	}
	trace1, end1 := run()
	for i := 0; i < 3; i++ {
		trace2, end2 := run()
		if trace2 != trace1 || end2 != end1 {
			t.Fatalf("run %d diverged:\n%s (end %v)\nvs\n%s (end %v)", i+2, trace2, end2, trace1, end1)
		}
	}
	if end1 != 13*time.Millisecond {
		t.Fatalf("end = %v, want 13ms (10ms wake + max 3ms sleep; sync ops are zero-time)", end1)
	}
}
