package sim

import "fmt"

// Mutex is a mutual-exclusion lock for simulated processes. Waiters are
// granted the lock in FIFO order. Acquiring a free lock consumes no virtual
// time and does not yield the processor.
//
// As a convenience for test and harness code inspecting state after (or
// between) Run calls, Lock/Unlock may also be called from outside any
// simulated process: the scheduler is synchronous with external code, so an
// uncontended external acquire is safe; a contended one panics because it
// could never be released.
type Mutex struct {
	sim      *Simulation
	owner    *Process
	external bool // held by code outside the simulation
	waiters  []*Process
}

// NewMutex returns an unlocked mutex bound to the simulation.
func (s *Simulation) NewMutex() *Mutex { return &Mutex{sim: s} }

// Lock blocks the calling process until the mutex is available.
func (m *Mutex) Lock() {
	if m.sim.current == nil {
		if m.owner != nil || m.external {
			panic("sim: external Mutex.Lock while the mutex is held")
		}
		m.external = true
		return
	}
	p := m.sim.current
	if m.external {
		panic("sim: Mutex.Lock inside a process while externally held")
	}
	if m.owner == p {
		panic(fmt.Sprintf("sim: process %q locked mutex twice", p.name))
	}
	if m.owner == nil {
		m.owner = p
		return
	}
	m.waiters = append(m.waiters, p)
	p.park("mutex wait")
	// handoff performed the ownership transfer before waking us.
	if m.owner != p {
		panic("sim: mutex handoff corrupted")
	}
}

// Unlock releases the mutex, handing it to the longest-waiting process.
func (m *Mutex) Unlock() {
	if m.sim.current == nil {
		if !m.external {
			panic("sim: external Mutex.Unlock of a mutex not externally held")
		}
		m.external = false
		return
	}
	p := m.sim.current
	if m.owner != p {
		panic(fmt.Sprintf("sim: process %q unlocked mutex owned by %v", p.name, ownerName(m.owner)))
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next // direct handoff: no barging, deterministic order
	m.sim.wake(next)
}

func ownerName(p *Process) string {
	if p == nil {
		return "<nobody>"
	}
	return p.name
}

// Cond is a condition variable bound to a Mutex, mirroring sync.Cond.
type Cond struct {
	m       *Mutex
	waiters []*Process
}

// NewCond returns a condition variable that uses m as its lock.
func (s *Simulation) NewCond(m *Mutex) *Cond {
	if m == nil {
		panic("sim: NewCond with nil mutex")
	}
	if m.sim != s {
		panic("sim: NewCond with mutex from another simulation")
	}
	return &Cond{m: m}
}

// Wait atomically releases the mutex and parks the process; on wakeup it
// re-acquires the mutex before returning. The mutex must be held.
func (c *Cond) Wait() {
	p := c.m.sim.mustCurrent("Cond.Wait")
	if c.m.owner != p {
		panic(fmt.Sprintf("sim: Cond.Wait by %q without holding the mutex", p.name))
	}
	c.waiters = append(c.waiters, p)
	c.m.Unlock()
	p.park("cond wait")
	c.m.Lock()
}

// Signal wakes the longest-waiting process, if any. Unlike sync.Cond, the
// caller conventionally holds the mutex, but this is not required.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	p := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.m.sim.wake(p)
}

// Broadcast wakes every waiting process in FIFO order.
func (c *Cond) Broadcast() {
	for _, p := range c.waiters {
		c.m.sim.wake(p)
	}
	c.waiters = nil
}

// WaitGroup mirrors sync.WaitGroup for simulated processes.
type WaitGroup struct {
	sim     *Simulation
	count   int
	waiters []*Process
}

// NewWaitGroup returns a wait group with a zero counter.
func (s *Simulation) NewWaitGroup() *WaitGroup { return &WaitGroup{sim: s} }

// Add adds delta (which may be negative) to the counter. The counter must
// not go negative. When it reaches zero all waiters are released.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 {
		for _, p := range w.waiters {
			w.sim.wake(p)
		}
		w.waiters = nil
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks the calling process until the counter is zero.
func (w *WaitGroup) Wait() {
	if w.count == 0 {
		return
	}
	p := w.sim.mustCurrent("WaitGroup.Wait")
	w.waiters = append(w.waiters, p)
	p.park("waitgroup wait")
}

// Semaphore is a counting semaphore with FIFO admission, used to model
// bounded resources (e.g. device queue slots).
type Semaphore struct {
	sim     *Simulation
	free    int
	waiters []*Process
}

// NewSemaphore returns a semaphore with n free slots.
func (s *Simulation) NewSemaphore(n int) *Semaphore {
	if n < 0 {
		panic("sim: NewSemaphore with negative capacity")
	}
	return &Semaphore{sim: s, free: n}
}

// Acquire takes one slot, parking the process while none are free.
func (sem *Semaphore) Acquire() {
	if sem.free > 0 {
		sem.free--
		return
	}
	p := sem.sim.mustCurrent("Semaphore.Acquire")
	sem.waiters = append(sem.waiters, p)
	p.park("semaphore wait")
	// The releasing process transferred the slot directly to us.
}

// Release returns one slot, waking the longest waiter if any.
func (sem *Semaphore) Release() {
	if len(sem.waiters) > 0 {
		p := sem.waiters[0]
		sem.waiters = sem.waiters[1:]
		sem.sim.wake(p) // slot handed over, free count unchanged
		return
	}
	sem.free++
}

// TryAcquire takes a slot without blocking, reporting success.
func (sem *Semaphore) TryAcquire() bool {
	if sem.free > 0 {
		sem.free--
		return true
	}
	return false
}

// Free reports the number of currently free slots (waiters imply zero).
func (sem *Semaphore) Free() int { return sem.free }
