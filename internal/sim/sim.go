// Package sim implements a deterministic discrete-event simulation engine
// with virtual time and cooperatively scheduled processes.
//
// Exactly one simulated process executes at any instant: the scheduler pops
// the earliest pending event, hands control to the owning process, and waits
// for that process to block (Sleep, condition wait, ...) or terminate before
// popping the next event. Ties in virtual time are broken by scheduling
// order, so a simulation with fixed inputs is fully reproducible.
//
// Processes are ordinary goroutines under the hood, but their interleaving
// is serialized by the engine, so simulated code may share state guarded by
// the engine's own Mutex/Cond primitives (see sync.go) without data races.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ErrDeadlock is wrapped by the error returned from Run when the event queue
// drains while blocked processes remain.
var ErrDeadlock = errors.New("sim: deadlock")

// errAborted is the sentinel panic value used to unwind process goroutines
// when the simulation shuts down early.
var errAborted = errors.New("sim: process aborted")

// event is a scheduled resumption of a process at a virtual instant.
type event struct {
	at   time.Duration
	seq  uint64 // tie-break: FIFO among equal timestamps
	proc *Process
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Simulation owns the virtual clock, the event queue, and all processes.
// The zero value is not usable; call New.
type Simulation struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	yield   chan struct{}       // processes signal here when they block or finish
	current *Process            // process executing right now (nil inside scheduler)
	nlive   int                 // spawned and not yet finished
	nparked int                 // blocked without a pending event (cond/mutex waits)
	parked  map[*Process]string // parked process -> reason, for deadlock reports
	failure error               // first panic escaping a process
	running bool
	stopped bool
}

// New returns an empty simulation whose clock reads zero.
func New() *Simulation {
	return &Simulation{
		yield:  make(chan struct{}),
		parked: make(map[*Process]string),
	}
}

// Now reports the current virtual time.
func (s *Simulation) Now() time.Duration { return s.now }

// Live reports the number of spawned processes that have not finished.
func (s *Simulation) Live() int { return s.nlive }

// Process is a simulated thread of execution. All blocking methods must be
// called from the goroutine running the process body.
type Process struct {
	sim     *Simulation
	name    string
	fn      func(*Process)
	resume  chan struct{}
	started bool
	aborted bool
}

// Name returns the label given at spawn time.
func (p *Process) Name() string { return p.name }

// Sim returns the owning simulation.
func (p *Process) Sim() *Simulation { return p.sim }

// Spawn registers a new process whose body starts executing at the current
// virtual time (after the caller yields, if called from inside a process).
func (s *Simulation) Spawn(name string, fn func(*Process)) *Process {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAfter registers a process whose body starts after delay d.
func (s *Simulation) SpawnAfter(d time.Duration, name string, fn func(*Process)) *Process {
	if d < 0 {
		panic(fmt.Sprintf("sim: SpawnAfter with negative delay %v", d))
	}
	return s.SpawnAt(s.now+d, name, fn)
}

// SpawnAt registers a process whose body starts at absolute virtual time at,
// which must not precede the current time.
func (s *Simulation) SpawnAt(at time.Duration, name string, fn func(*Process)) *Process {
	if at < s.now {
		panic(fmt.Sprintf("sim: SpawnAt(%v) precedes now (%v)", at, s.now))
	}
	if fn == nil {
		panic("sim: SpawnAt with nil body")
	}
	p := &Process{sim: s, name: name, fn: fn, resume: make(chan struct{}, 1)}
	s.nlive++
	s.schedule(at, p)
	return p
}

func (s *Simulation) schedule(at time.Duration, p *Process) {
	s.seq++
	heap.Push(&s.queue, event{at: at, seq: s.seq, proc: p})
}

// Run executes events until the queue drains. It returns nil on a clean
// drain with no live processes, an ErrDeadlock-wrapped error if blocked
// processes remain, or the first panic raised inside a process body.
func (s *Simulation) Run() error { return s.RunUntil(-1) }

// RunUntil executes events with timestamps <= limit (limit < 0 means no
// bound). Events beyond the limit stay queued; the clock advances to the
// last executed event only.
func (s *Simulation) RunUntil(limit time.Duration) error {
	if s.running {
		panic("sim: Run re-entered")
	}
	if s.stopped {
		return errors.New("sim: simulation already shut down")
	}
	s.running = true
	defer func() { s.running = false }()

	for len(s.queue) > 0 {
		if limit >= 0 && s.queue[0].at > limit {
			return nil
		}
		ev := heap.Pop(&s.queue).(event)
		if ev.at < s.now {
			panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", ev.at, s.now))
		}
		s.now = ev.at
		s.dispatch(ev.proc)
		if s.failure != nil {
			err := s.failure
			s.Shutdown()
			return err
		}
	}
	if s.nparked > 0 {
		err := fmt.Errorf("%w: %d process(es) blocked forever: %s",
			ErrDeadlock, s.nparked, s.parkedSummary())
		s.Shutdown()
		return err
	}
	return nil
}

func (s *Simulation) parkedSummary() string {
	var descs []string
	for p, reason := range s.parked {
		descs = append(descs, fmt.Sprintf("%s (%s)", p.name, reason))
	}
	sort.Strings(descs)
	const max = 8
	if len(descs) > max {
		descs = append(descs[:max], fmt.Sprintf("... and %d more", len(descs)-max))
	}
	return strings.Join(descs, ", ")
}

// dispatch transfers control to p and blocks until p yields back.
func (s *Simulation) dispatch(p *Process) {
	s.current = p
	if !p.started {
		p.started = true
		go p.top()
	} else {
		p.resume <- struct{}{}
	}
	<-s.yield
	s.current = nil
}

// top is the root frame of every process goroutine.
func (p *Process) top() {
	defer func() {
		if r := recover(); r != nil && r != errAborted {
			if p.sim.failure == nil {
				p.sim.failure = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
			}
		}
		p.sim.nlive--
		p.sim.yield <- struct{}{}
	}()
	p.fn(p)
}

// block yields control to the scheduler and waits to be resumed. reason is
// recorded for deadlock diagnostics when no wake event is pending.
func (p *Process) block(parked bool, reason string) {
	if p.sim.current != p {
		panic(fmt.Sprintf("sim: blocking call from outside process %q (current=%v)", p.name, p.sim.currentName()))
	}
	if parked {
		p.sim.nparked++
		p.sim.parked[p] = reason
	}
	p.sim.yield <- struct{}{}
	<-p.resume
	if parked {
		p.sim.nparked--
		delete(p.sim.parked, p)
	}
	if p.aborted {
		panic(errAborted)
	}
}

func (s *Simulation) currentName() string {
	if s.current == nil {
		return "<scheduler>"
	}
	return s.current.name
}

// Sleep suspends the process for virtual duration d (d <= 0 yields the
// processor, letting other processes scheduled at the same instant run).
func (p *Process) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.sim.schedule(p.sim.now+d, p)
	p.block(false, "")
}

// Yield lets any other process scheduled at the current instant run first.
func (p *Process) Yield() { p.Sleep(0) }

// park blocks the process with no wake event; some other process must hand
// it to wake() later. Used by the synchronization primitives.
func (p *Process) park(reason string) { p.block(true, reason) }

// wake schedules a parked process to resume at the current virtual time.
func (s *Simulation) wake(p *Process) { s.schedule(s.now, p) }

// Current returns the process executing right now, or nil when called from
// outside the simulation (e.g. from the scheduler or test code).
func (s *Simulation) Current() *Process { return s.current }

// mustCurrent returns the running process or panics with a helpful message.
func (s *Simulation) mustCurrent(op string) *Process {
	if s.current == nil {
		panic("sim: " + op + " called from outside a simulated process")
	}
	return s.current
}

// Shutdown aborts every live process and releases their goroutines. The
// simulation cannot be used afterwards. It is safe to call multiple times.
//
// Unwinding one process may run its deferred functions, which can signal
// conditions or spawn processes; the loop keeps draining until nothing
// remains, skipping processes that already terminated.
func (s *Simulation) Shutdown() {
	if s.stopped {
		return
	}
	s.stopped = true
	done := make(map[*Process]bool)
	for {
		var p *Process
		switch {
		case len(s.queue) > 0:
			p = heap.Pop(&s.queue).(event).proc
		case len(s.parked) > 0:
			for q := range s.parked {
				p = q
				break
			}
		default:
			return
		}
		if done[p] {
			continue
		}
		done[p] = true
		s.abort(p)
	}
}

func (s *Simulation) abort(p *Process) {
	if !p.started {
		// Never ran: nothing to unwind.
		s.nlive--
		delete(s.parked, p)
		return
	}
	p.aborted = true
	p.resume <- struct{}{}
	<-s.yield // top() recovers errAborted and reports termination
}
