package train

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
)

// Iterator yields training or validation samples in epoch order. Next
// blocks for however long the underlying data path takes (serial device
// reads for a baseline pipeline, a buffer pop for a prefetched one) and
// reports ok=false at the end of the epoch.
type Iterator interface {
	Next() (ok bool, err error)
}

// Pipeline is a framework input pipeline as seen by the trainer: it
// produces per-epoch train and validation iterators. Construction of the
// iterators is where each setup's behaviour lives (serial reads, intrinsic
// parallel prefetching, or PRISMA interception).
type Pipeline interface {
	TrainIter(epoch int) (Iterator, error)
	ValIter(epoch int) (Iterator, error)
	Close()
}

// Config parameterizes one training run.
type Config struct {
	Model       Model
	BatchPerGPU int
	GPUs        int
	Epochs      int
	// PerStepSync is the host-side cost paid synchronously per step
	// (batch collation, feed dispatch). It does not overlap with loading,
	// which is why larger batches (fewer steps) help the optimized setups
	// (paper §V-A).
	PerStepSync time.Duration
	// Validation runs the validation phase after every epoch.
	Validation bool
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if err := c.Model.Validate(); err != nil {
		return err
	}
	if c.BatchPerGPU < 1 {
		return fmt.Errorf("train: batch per GPU %d < 1", c.BatchPerGPU)
	}
	if c.GPUs < 1 {
		return fmt.Errorf("train: GPUs %d < 1", c.GPUs)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("train: epochs %d < 1", c.Epochs)
	}
	if c.PerStepSync < 0 {
		return fmt.Errorf("train: negative per-step sync")
	}
	return nil
}

// Result summarizes one training run.
type Result struct {
	Elapsed      time.Duration
	EpochTimes   []time.Duration
	TrainSamples int64
	ValSamples   int64
	Steps        int64
	GPUBusy      time.Duration
	GPUUtil      float64
}

// Run executes cfg against the pipeline on the cluster and reports timing.
// It must be called from a thread of env. The loop structure implements
// single-step software pipelining: read batch k+1 while step k computes.
func Run(env conc.Env, cfg Config, p Pipeline, gpus *GPUCluster) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if gpus.GPUs() != cfg.GPUs {
		return Result{}, fmt.Errorf("train: cluster has %d GPUs, config wants %d", gpus.GPUs(), cfg.GPUs)
	}
	start := env.Now()
	res := Result{}
	globalBatch := cfg.BatchPerGPU * cfg.GPUs

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		epochStart := env.Now()

		it, err := p.TrainIter(epoch)
		if err != nil {
			return res, fmt.Errorf("train: epoch %d: %w", epoch, err)
		}
		n, steps, err := runPhase(env, it, globalBatch, cfg.PerStepSync, cfg.Model.StepTime(cfg.BatchPerGPU), gpus)
		if err != nil {
			return res, fmt.Errorf("train: epoch %d: %w", epoch, err)
		}
		res.TrainSamples += n
		res.Steps += steps

		if cfg.Validation {
			vit, err := p.ValIter(epoch)
			if err != nil {
				return res, fmt.Errorf("train: epoch %d validation: %w", epoch, err)
			}
			vn, vsteps, err := runPhase(env, vit, globalBatch, cfg.PerStepSync, cfg.Model.ValStepTime(cfg.BatchPerGPU), gpus)
			if err != nil {
				return res, fmt.Errorf("train: epoch %d validation: %w", epoch, err)
			}
			res.ValSamples += vn
			res.Steps += vsteps
		}
		res.EpochTimes = append(res.EpochTimes, env.Now()-epochStart)
	}
	gpus.Drain()
	res.Elapsed = env.Now() - start
	res.GPUBusy = gpus.BusyTime()
	if res.Elapsed > 0 {
		busy := res.GPUBusy
		if busy > res.Elapsed {
			busy = res.Elapsed
		}
		res.GPUUtil = float64(busy) / float64(res.Elapsed)
	}
	return res, nil
}

// runPhase drives one iterator to exhaustion, issuing a GPU step per
// (possibly final partial) batch.
func runPhase(env conc.Env, it Iterator, globalBatch int, perStepSync, stepTime time.Duration, gpus *GPUCluster) (samples, steps int64, err error) {
	for {
		filled := 0
		for filled < globalBatch {
			ok, err := it.Next()
			if err != nil {
				return samples, steps, err
			}
			if !ok {
				break
			}
			filled++
		}
		if filled == 0 {
			break
		}
		samples += int64(filled)
		if perStepSync > 0 {
			env.Sleep(perStepSync) // host-side collation: not overlapped
		}
		// Scale the step to the actual (possibly partial) batch.
		d := stepTime
		if filled < globalBatch {
			d = time.Duration(float64(stepTime) * float64(filled) / float64(globalBatch))
		}
		gpus.IssueStep(d)
		steps++
		if filled < globalBatch {
			break
		}
	}
	gpus.Drain()
	return samples, steps, nil
}
