package train

import (
	"errors"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/sim"
)

func runSim(t *testing.T, body func(env conc.Env)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("test-body", func(*sim.Process) { body(env) })
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestModelProfilesValid(t *testing.T) {
	for _, m := range Models() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	// The paper's ordering: LeNet ≪ AlexNet < ResNet-50 in compute.
	if !(LeNet().ComputePerImage < AlexNet().ComputePerImage && AlexNet().ComputePerImage < ResNet50().ComputePerImage) {
		t.Error("model compute costs not ordered LeNet < AlexNet < ResNet-50")
	}
}

func TestModelByName(t *testing.T) {
	m, err := ModelByName("alexnet")
	if err != nil || m.Name != "alexnet" {
		t.Fatalf("ModelByName = %+v, %v", m, err)
	}
	if _, err := ModelByName("vgg"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestStepTime(t *testing.T) {
	m := Model{Name: "m", ComputePerImage: time.Millisecond, StepOverhead: 10 * time.Millisecond, ValComputeFactor: 0.5}
	if got := m.StepTime(64); got != 74*time.Millisecond {
		t.Fatalf("StepTime(64) = %v, want 74ms", got)
	}
	if got := m.ValStepTime(64); got != 37*time.Millisecond {
		t.Fatalf("ValStepTime(64) = %v, want 32ms + 5ms", got)
	}
}

func TestModelValidateRejectsBad(t *testing.T) {
	bad := []Model{
		{Name: "a", ComputePerImage: 0, StepOverhead: 1, ValComputeFactor: 0.5},
		{Name: "b", ComputePerImage: 1, StepOverhead: -1, ValComputeFactor: 0.5},
		{Name: "c", ComputePerImage: 1, StepOverhead: 1, ValComputeFactor: 0},
		{Name: "d", ComputePerImage: 1, StepOverhead: 1, ValComputeFactor: 1.5},
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Errorf("model %s accepted", m.Name)
		}
	}
}

func TestGPUClusterPipelining(t *testing.T) {
	runSim(t, func(env conc.Env) {
		g := NewGPUCluster(env, 4)
		// Two back-to-back 10ms steps: the second issue stalls 10ms.
		if stall := g.IssueStep(10 * time.Millisecond); stall != 0 {
			t.Errorf("first stall = %v, want 0", stall)
		}
		if stall := g.IssueStep(10 * time.Millisecond); stall != 10*time.Millisecond {
			t.Errorf("second stall = %v, want 10ms", stall)
		}
		g.Drain()
		if env.Now() != 20*time.Millisecond {
			t.Errorf("elapsed = %v, want 20ms", env.Now())
		}
		if g.BusyTime() != 20*time.Millisecond || g.Steps() != 2 {
			t.Errorf("busy=%v steps=%d", g.BusyTime(), g.Steps())
		}
	})
}

func TestGPUClusterOverlap(t *testing.T) {
	runSim(t, func(env conc.Env) {
		g := NewGPUCluster(env, 4)
		g.IssueStep(10 * time.Millisecond)
		env.Sleep(6 * time.Millisecond) // "loading" overlaps the step
		if stall := g.IssueStep(10 * time.Millisecond); stall != 4*time.Millisecond {
			t.Errorf("stall = %v, want 4ms (6ms hidden by loading)", stall)
		}
		g.Drain()
	})
}

func TestGPUClusterValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero GPUs")
		}
	}()
	NewGPUCluster(conc.NewReal(), 0)
}

// delayIter yields n samples, each costing d of loading time.
type delayIter struct {
	env conc.Env
	n   int
	d   time.Duration
	i   int
	err error
}

func (it *delayIter) Next() (bool, error) {
	if it.err != nil {
		return false, it.err
	}
	if it.i >= it.n {
		return false, nil
	}
	it.i++
	if it.d > 0 {
		it.env.Sleep(it.d)
	}
	return true, nil
}

// fakePipeline hands out delayIters.
type fakePipeline struct {
	env          conc.Env
	trainN, valN int
	trainD, valD time.Duration
	trainErr     error
}

func (p *fakePipeline) TrainIter(epoch int) (Iterator, error) {
	return &delayIter{env: p.env, n: p.trainN, d: p.trainD, err: p.trainErr}, nil
}
func (p *fakePipeline) ValIter(epoch int) (Iterator, error) {
	return &delayIter{env: p.env, n: p.valN, d: p.valD}, nil
}
func (p *fakePipeline) Close() {}

func TestRunComputeBound(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m := Model{Name: "m", ComputePerImage: time.Millisecond, StepOverhead: 0, ValComputeFactor: 0.5}
		cfg := Config{Model: m, BatchPerGPU: 10, GPUs: 4, Epochs: 1}
		g := NewGPUCluster(env, 4)
		// 400 samples, instant loading: 10 steps × 10ms compute = 100ms.
		p := &fakePipeline{env: env, trainN: 400}
		res, err := Run(env, cfg, p, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Elapsed != 100*time.Millisecond {
			t.Errorf("Elapsed = %v, want 100ms", res.Elapsed)
		}
		if res.TrainSamples != 400 || res.Steps != 10 {
			t.Errorf("samples=%d steps=%d, want 400/10", res.TrainSamples, res.Steps)
		}
		if res.GPUUtil < 0.99 {
			t.Errorf("GPUUtil = %v, want ≈1 (compute-bound)", res.GPUUtil)
		}
	})
}

func TestRunIOBound(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m := Model{Name: "m", ComputePerImage: 50 * time.Microsecond, StepOverhead: 0, ValComputeFactor: 0.5}
		cfg := Config{Model: m, BatchPerGPU: 10, GPUs: 4, Epochs: 1}
		g := NewGPUCluster(env, 4)
		// 400 samples × 1ms loading = 400ms; compute per step = 0.5ms,
		// hidden by pipelining except the last step.
		p := &fakePipeline{env: env, trainN: 400, trainD: time.Millisecond}
		res, err := Run(env, cfg, p, g)
		if err != nil {
			t.Fatal(err)
		}
		want := 400*time.Millisecond + m.StepTime(10)/2 + m.StepTime(10)/2 // loading + final step
		if res.Elapsed < 400*time.Millisecond || res.Elapsed > want+time.Millisecond {
			t.Errorf("Elapsed = %v, want ≈400.5ms", res.Elapsed)
		}
		if res.GPUUtil > 0.10 {
			t.Errorf("GPUUtil = %v, want low (I/O-bound)", res.GPUUtil)
		}
	})
}

func TestRunPartialFinalBatch(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m := Model{Name: "m", ComputePerImage: time.Millisecond, StepOverhead: 0, ValComputeFactor: 0.5}
		cfg := Config{Model: m, BatchPerGPU: 10, GPUs: 4, Epochs: 1}
		g := NewGPUCluster(env, 4)
		p := &fakePipeline{env: env, trainN: 45} // 1 full step (40) + partial (5)
		res, err := Run(env, cfg, p, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.TrainSamples != 45 || res.Steps != 2 {
			t.Errorf("samples=%d steps=%d, want 45/2", res.TrainSamples, res.Steps)
		}
		// 10ms full step + 10ms×5/40 partial = 11.25ms.
		want := 10*time.Millisecond + 10*time.Millisecond*5/40
		if res.Elapsed != want {
			t.Errorf("Elapsed = %v, want %v", res.Elapsed, want)
		}
	})
}

func TestRunWithValidation(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m := Model{Name: "m", ComputePerImage: time.Millisecond, StepOverhead: 0, ValComputeFactor: 0.5}
		cfg := Config{Model: m, BatchPerGPU: 10, GPUs: 4, Epochs: 2, Validation: true}
		g := NewGPUCluster(env, 4)
		p := &fakePipeline{env: env, trainN: 80, valN: 40}
		res, err := Run(env, cfg, p, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.TrainSamples != 160 || res.ValSamples != 80 {
			t.Errorf("train=%d val=%d, want 160/80", res.TrainSamples, res.ValSamples)
		}
		// Per epoch: 2 train steps (20ms) + 1 val step (5ms) = 25ms.
		if res.Elapsed != 50*time.Millisecond {
			t.Errorf("Elapsed = %v, want 50ms", res.Elapsed)
		}
		if len(res.EpochTimes) != 2 || res.EpochTimes[0] != 25*time.Millisecond {
			t.Errorf("EpochTimes = %v", res.EpochTimes)
		}
	})
}

func TestRunPerStepSync(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m := Model{Name: "m", ComputePerImage: time.Millisecond, StepOverhead: 0, ValComputeFactor: 0.5}
		g := NewGPUCluster(env, 4)
		cfg := Config{Model: m, BatchPerGPU: 10, GPUs: 4, Epochs: 1, PerStepSync: 5 * time.Millisecond}
		p := &fakePipeline{env: env, trainN: 40}
		res, err := Run(env, cfg, p, g)
		if err != nil {
			t.Fatal(err)
		}
		// 1 step: 5ms sync + 10ms compute.
		if res.Elapsed != 15*time.Millisecond {
			t.Errorf("Elapsed = %v, want 15ms", res.Elapsed)
		}
	})
}

func TestRunPropagatesIteratorError(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m := LeNet()
		cfg := Config{Model: m, BatchPerGPU: 4, GPUs: 4, Epochs: 1}
		g := NewGPUCluster(env, 4)
		p := &fakePipeline{env: env, trainN: 10, trainErr: errors.New("disk on fire")}
		if _, err := Run(env, cfg, p, g); err == nil {
			t.Fatal("iterator error swallowed")
		}
	})
}

func TestRunConfigValidation(t *testing.T) {
	runSim(t, func(env conc.Env) {
		g := NewGPUCluster(env, 4)
		p := &fakePipeline{env: env, trainN: 1}
		bad := []Config{
			{Model: LeNet(), BatchPerGPU: 0, GPUs: 4, Epochs: 1},
			{Model: LeNet(), BatchPerGPU: 1, GPUs: 0, Epochs: 1},
			{Model: LeNet(), BatchPerGPU: 1, GPUs: 4, Epochs: 0},
			{Model: LeNet(), BatchPerGPU: 1, GPUs: 4, Epochs: 1, PerStepSync: -1},
			{Model: Model{}, BatchPerGPU: 1, GPUs: 4, Epochs: 1},
		}
		for i, cfg := range bad {
			if _, err := Run(env, cfg, p, g); err == nil {
				t.Errorf("bad config %d accepted", i)
			}
		}
		// GPU count mismatch.
		cfg := Config{Model: LeNet(), BatchPerGPU: 1, GPUs: 2, Epochs: 1}
		if _, err := Run(env, cfg, p, g); err == nil {
			t.Error("GPU mismatch accepted")
		}
	})
}
