package train

import (
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
)

// GPUCluster models synchronous data-parallel execution across n GPUs with
// single-step software pipelining: the host thread may prepare the next
// batch while the previous step executes, but a new step cannot be issued
// until the previous one retires (the implicit overlap every DL framework
// provides even without explicit prefetching).
type GPUCluster struct {
	env conc.Env
	n   int

	mu       conc.Mutex
	freeAt   time.Duration // when the in-flight step retires
	busyNS   int64
	steps    int64
	idleFrom time.Duration

	util *metrics.TimeInState // 0 = idle, 1 = computing
}

// NewGPUCluster returns an idle cluster of n GPUs.
func NewGPUCluster(env conc.Env, n int) *GPUCluster {
	if n < 1 {
		panic("train: GPU cluster needs >= 1 GPU")
	}
	return &GPUCluster{
		env:  env,
		n:    n,
		mu:   env.NewMutex(),
		util: metrics.NewTimeInState(env, 0),
	}
}

// GPUs reports the cluster size.
func (g *GPUCluster) GPUs() int { return g.n }

// IssueStep submits one synchronous step of the given duration. If the
// previous step is still executing, the caller blocks until it retires
// (back-pressure), then the new step runs asynchronously. The returned
// duration is how long the caller was stalled.
func (g *GPUCluster) IssueStep(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	now := g.env.Now()
	g.mu.Lock()
	stall := g.freeAt - now
	g.mu.Unlock()
	if stall > 0 {
		g.env.Sleep(stall) // wait for the in-flight step to retire
	} else {
		stall = 0
	}
	now = g.env.Now()
	g.mu.Lock()
	g.freeAt = now + d
	g.busyNS += int64(d)
	g.steps++
	g.util.Set(1)
	g.mu.Unlock()
	return stall
}

// Drain blocks until the in-flight step (if any) retires.
func (g *GPUCluster) Drain() {
	now := g.env.Now()
	g.mu.Lock()
	wait := g.freeAt - now
	g.mu.Unlock()
	if wait > 0 {
		g.env.Sleep(wait)
	}
	g.mu.Lock()
	g.util.Set(0)
	g.mu.Unlock()
}

// BusyTime reports cumulative issued compute time.
func (g *GPUCluster) BusyTime() time.Duration {
	g.mu.Lock()
	defer g.mu.Unlock()
	return time.Duration(g.busyNS)
}

// Steps reports the number of issued steps.
func (g *GPUCluster) Steps() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.steps
}

// Utilization reports busy time divided by elapsed time since creation.
func (g *GPUCluster) Utilization() float64 {
	elapsed := g.env.Now()
	if elapsed <= 0 {
		return 0
	}
	busy := g.BusyTime()
	if busy > elapsed {
		busy = elapsed // an in-flight step extends past now
	}
	return float64(busy) / float64(elapsed)
}
