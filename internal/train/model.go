// Package train models the compute side of DL training on the paper's
// evaluation node (4× NVIDIA V100, synchronous data parallelism): per-model
// per-batch GPU cost profiles, a GPU cluster that executes steps in
// (virtual or real) time, and the software-pipelined training loop that
// overlaps data loading with the previous step's computation — the
// structure that makes I/O-bound models wait on storage and compute-bound
// models hide it (paper §II, §V).
package train

import (
	"fmt"
	"time"
)

// Model characterizes a neural network's training cost on one GPU.
type Model struct {
	// Name identifies the model in tables ("lenet", "alexnet", "resnet50").
	Name string
	// ComputePerImage is the GPU time to process one image of the
	// per-GPU sub-batch (forward+backward).
	ComputePerImage time.Duration
	// StepOverhead is the fixed per-step cost (kernel launches, gradient
	// all-reduce across the 4 GPUs, optimizer update).
	StepOverhead time.Duration
	// ValComputeFactor scales ComputePerImage for validation (forward
	// pass only).
	ValComputeFactor float64
}

// StepTime reports the duration of one synchronous data-parallel step with
// the given per-GPU batch size (GPUs run their sub-batches concurrently, so
// the step costs one sub-batch plus overhead).
func (m Model) StepTime(batchPerGPU int) time.Duration {
	return time.Duration(batchPerGPU)*m.ComputePerImage + m.StepOverhead
}

// ValStepTime reports the duration of one validation (inference) step.
func (m Model) ValStepTime(batchPerGPU int) time.Duration {
	per := time.Duration(float64(m.ComputePerImage) * m.ValComputeFactor)
	return time.Duration(batchPerGPU)*per + m.StepOverhead/2
}

// Validate reports whether the model profile is usable.
func (m Model) Validate() error {
	if m.ComputePerImage <= 0 {
		return fmt.Errorf("train: model %q has non-positive compute", m.Name)
	}
	if m.StepOverhead < 0 {
		return fmt.Errorf("train: model %q has negative step overhead", m.Name)
	}
	if m.ValComputeFactor <= 0 || m.ValComputeFactor > 1 {
		return fmt.Errorf("train: model %q has bad val factor %v", m.Name, m.ValComputeFactor)
	}
	return nil
}

// The profiles below are calibrated against the paper's evaluation
// (ImageNet on 4× V100): LeNet is strongly I/O-bound (training consumes
// ~100k img/s of compute, far above what the SSD delivers), AlexNet is
// mixed (~3.9k img/s, close to the storage ceiling), and ResNet-50 is
// compute-bound (~1.2k img/s, well below it).

// LeNet returns the I/O-bound LeNet-5 profile.
func LeNet() Model {
	return Model{
		Name:             "lenet",
		ComputePerImage:  8 * time.Microsecond,
		StepOverhead:     2 * time.Millisecond,
		ValComputeFactor: 0.4,
	}
}

// AlexNet returns the mixed AlexNet profile.
func AlexNet() Model {
	return Model{
		Name:             "alexnet",
		ComputePerImage:  1 * time.Millisecond,
		StepOverhead:     2 * time.Millisecond,
		ValComputeFactor: 0.35,
	}
}

// ResNet50 returns the compute-bound ResNet-50 profile.
func ResNet50() Model {
	return Model{
		Name:             "resnet50",
		ComputePerImage:  3300 * time.Microsecond,
		StepOverhead:     3 * time.Millisecond,
		ValComputeFactor: 0.33,
	}
}

// Models returns the paper's three evaluation models.
func Models() []Model { return []Model{LeNet(), AlexNet(), ResNet50()} }

// ModelByName looks a profile up by table name.
func ModelByName(name string) (Model, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("train: unknown model %q", name)
}
