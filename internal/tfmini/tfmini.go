// Package tfmini is a miniature TensorFlow-style input pipeline — the DL
// framework substrate for the paper's §V-A evaluation. It provides the
// three setups the paper compares:
//
//   - Baseline: "a non-optimized deployment with single-threaded disk
//     operations without data prefetching" — the consumer thread reads each
//     sample synchronously from backend storage.
//   - Optimized: "disk I/O parallelism and prefetching, managed by
//     TensorFlow's auto-tuning mechanism" — an intrinsic reader pool
//     (pinned at the framework's thread ceiling, 30 on the evaluation node)
//     fills a sample buffer whose capacity doubles whenever the consumer
//     finds it empty, mirroring prefetch_autotuner.cc. This is the
//     framework-intrinsic optimization the paper argues should be
//     decoupled.
//   - Prisma: the Baseline pipeline with its read call swapped for
//     Stage.Read plus a per-epoch plan submission — the 10-line TensorFlow
//     integration of §IV.
//
// All three implement train.Pipeline.
package tfmini

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/train"
)

// Costs models the host-side per-sample costs of the pipeline.
type Costs struct {
	// Preprocess is the CPU decode/augment cost per image. The baseline
	// pays it in the consumer thread; the optimized pipeline pays it in
	// its reader threads (tf.data map parallelism).
	Preprocess time.Duration
	// Consume is the per-sample cost paid in the consumer thread
	// regardless of setup (tensor handoff, iterator overhead).
	Consume time.Duration
}

// Validate reports whether the costs are usable.
func (c Costs) Validate() error {
	if c.Preprocess < 0 || c.Consume < 0 {
		return fmt.Errorf("tfmini: negative cost")
	}
	return nil
}

// ---------------------------------------------------------------------------
// Baseline

// BaselinePipeline reads every sample synchronously from the backend in the
// consumer thread.
type BaselinePipeline struct {
	env     conc.Env
	backend storage.Backend
	train   *dataset.Manifest
	val     *dataset.Manifest
	seed    int64
	costs   Costs
	readers *metrics.TimeInState // for Fig. 3 parity (always 0/1)
}

// NewBaseline builds the non-optimized setup.
func NewBaseline(env conc.Env, backend storage.Backend, trainSet, valSet *dataset.Manifest, seed int64, costs Costs) (*BaselinePipeline, error) {
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	return &BaselinePipeline{
		env: env, backend: backend, train: trainSet, val: valSet, seed: seed, costs: costs,
		readers: metrics.NewTimeInState(env, 0),
	}, nil
}

// TrainIter implements train.Pipeline.
func (p *BaselinePipeline) TrainIter(epoch int) (train.Iterator, error) {
	return &serialIter{
		env: p.env, backend: p.backend, costs: p.costs, readers: p.readers,
		names: p.train.EpochFileList(p.seed, epoch),
	}, nil
}

// ValIter implements train.Pipeline.
func (p *BaselinePipeline) ValIter(epoch int) (train.Iterator, error) {
	return &serialIter{
		env: p.env, backend: p.backend, costs: p.costs, readers: p.readers,
		names: p.val.EpochFileList(p.seed+1, epoch),
	}, nil
}

// ActiveReaderDistribution reports the single consumer thread's read
// concurrency (0 or 1).
func (p *BaselinePipeline) ActiveReaderDistribution() map[int]time.Duration {
	return p.readers.Distribution()
}

// Close implements train.Pipeline.
func (p *BaselinePipeline) Close() {}

// serialIter performs synchronous per-sample reads.
type serialIter struct {
	env     conc.Env
	backend storage.Backend
	costs   Costs
	readers *metrics.TimeInState
	names   []string
	i       int
}

// Next implements train.Iterator.
func (it *serialIter) Next() (bool, error) {
	if it.i >= len(it.names) {
		return false, nil
	}
	name := it.names[it.i]
	it.i++
	it.readers.Add(1)
	_, err := it.backend.ReadFile(name)
	it.readers.Add(-1)
	if err != nil {
		return false, err
	}
	if c := it.costs.Preprocess + it.costs.Consume; c > 0 {
		it.env.Sleep(c)
	}
	return true, nil
}

// ---------------------------------------------------------------------------
// Optimized (framework-intrinsic parallel I/O + prefetch + autotune)

// OptimizedConfig parameterizes the intrinsic optimization.
type OptimizedConfig struct {
	// ReaderThreads is the parallel-read pool size. TensorFlow's
	// auto-tuning "allocates the maximum number of threads (i.e., 30)
	// regardless of whether they are needed or not" (paper §V-A).
	ReaderThreads int
	// InitialBuffer and MaxBuffer bound the prefetch buffer; capacity
	// doubles whenever the consumer finds the buffer empty
	// (prefetch_autotuner.cc behaviour).
	InitialBuffer int
	MaxBuffer     int
}

// DefaultOptimizedConfig mirrors the paper's evaluation node.
func DefaultOptimizedConfig() OptimizedConfig {
	return OptimizedConfig{ReaderThreads: 30, InitialBuffer: 2, MaxBuffer: 512}
}

// Validate reports whether the config is usable.
func (c OptimizedConfig) Validate() error {
	if c.ReaderThreads < 1 {
		return fmt.Errorf("tfmini: reader threads %d < 1", c.ReaderThreads)
	}
	if c.InitialBuffer < 1 || c.MaxBuffer < c.InitialBuffer {
		return fmt.Errorf("tfmini: bad buffer bounds [%d, %d]", c.InitialBuffer, c.MaxBuffer)
	}
	return nil
}

// OptimizedPipeline is the TF-optimized setup.
type OptimizedPipeline struct {
	env     conc.Env
	backend storage.Backend
	train   *dataset.Manifest
	val     *dataset.Manifest
	seed    int64
	costs   Costs
	cfg     OptimizedConfig

	readers *metrics.TimeInState // concurrent reader threads (Fig. 3)
	grows   *metrics.Counter     // autotune buffer doublings
	iters   []*prefetchIter      // live iterators, closed with the pipeline
}

// NewOptimized builds the TF-optimized setup.
func NewOptimized(env conc.Env, backend storage.Backend, trainSet, valSet *dataset.Manifest, seed int64, costs Costs, cfg OptimizedConfig) (*OptimizedPipeline, error) {
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &OptimizedPipeline{
		env: env, backend: backend, train: trainSet, val: valSet, seed: seed,
		costs: costs, cfg: cfg,
		readers: metrics.NewTimeInState(env, 0),
		grows:   metrics.NewCounter(env),
	}, nil
}

// TrainIter implements train.Pipeline.
func (p *OptimizedPipeline) TrainIter(epoch int) (train.Iterator, error) {
	return p.newIter(p.train.EpochFileList(p.seed, epoch)), nil
}

// ValIter implements train.Pipeline. The optimized setup prefetches
// validation files too ("all read operations are backed by TensorFlow's
// I/O optimizations", §V-A).
func (p *OptimizedPipeline) ValIter(epoch int) (train.Iterator, error) {
	return p.newIter(p.val.EpochFileList(p.seed+1, epoch)), nil
}

func (p *OptimizedPipeline) newIter(names []string) *prefetchIter {
	it := &prefetchIter{
		env:     p.env,
		costs:   p.costs,
		total:   len(names),
		buf:     conc.NewQueue[string](p.env, p.cfg.InitialBuffer),
		maxBuf:  p.cfg.MaxBuffer,
		grows:   p.grows,
		pending: conc.NewQueue[string](p.env, 0),
		mu:      p.env.NewMutex(),
	}
	for _, n := range names {
		_ = it.pending.Put(n)
	}
	it.pending.Close()
	for i := 0; i < p.cfg.ReaderThreads; i++ {
		p.env.Go(fmt.Sprintf("tf-reader-%d", i), func() {
			for {
				name, ok := it.pending.Get()
				if !ok {
					return
				}
				p.readers.Add(1)
				_, err := p.backend.ReadFile(name)
				p.readers.Add(-1)
				if p.costs.Preprocess > 0 {
					p.env.Sleep(p.costs.Preprocess) // map() runs in the pool
				}
				if err != nil {
					it.fail(err)
					return
				}
				if it.buf.Put(name) != nil {
					return // iterator closed early
				}
			}
		})
	}
	p.iters = append(p.iters, it)
	return it
}

// ActiveReaderDistribution reports time at each concurrent reader count —
// the TF-optimized line of Figure 3.
func (p *OptimizedPipeline) ActiveReaderDistribution() map[int]time.Duration {
	return p.readers.Distribution()
}

// BufferGrowths reports how many times the intrinsic autotuner doubled the
// prefetch buffer.
func (p *OptimizedPipeline) BufferGrowths() int64 { return p.grows.Value() }

// Close implements train.Pipeline, releasing any live reader pools.
func (p *OptimizedPipeline) Close() {
	for _, it := range p.iters {
		it.close()
	}
	p.iters = nil
}

// prefetchIter pops prefetched samples, doubling the buffer on empty finds.
type prefetchIter struct {
	env      conc.Env
	costs    Costs
	total    int
	consumed int
	buf      *conc.Queue[string]
	pending  *conc.Queue[string]
	maxBuf   int
	grows    *metrics.Counter

	mu  conc.Mutex
	err error
}

func (it *prefetchIter) fail(err error) {
	it.mu.Lock()
	if it.err == nil {
		it.err = err
	}
	it.mu.Unlock()
	it.buf.Close() // wake a consumer blocked on an empty buffer
}

func (it *prefetchIter) failed() error {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.err
}

// Next implements train.Iterator.
func (it *prefetchIter) Next() (bool, error) {
	if err := it.failed(); err != nil {
		return false, err
	}
	if it.consumed >= it.total {
		return false, nil
	}
	if _, ok := it.buf.TryGet(); ok {
		// Buffer had data: no autotune action.
	} else {
		// Consumer found the buffer empty: prefetch_autotuner doubles the
		// buffer limit, then we block for the next sample.
		if c := it.buf.Capacity(); c > 0 && c < it.maxBuf {
			next := c * 2
			if next > it.maxBuf {
				next = it.maxBuf
			}
			it.buf.SetCapacity(next)
			it.grows.Inc()
		}
		if _, ok := it.buf.Get(); !ok {
			if err := it.failed(); err != nil {
				return false, err
			}
			return false, nil
		}
	}
	it.consumed++
	if it.costs.Consume > 0 {
		it.env.Sleep(it.costs.Consume)
	}
	return true, nil
}

func (it *prefetchIter) close() {
	it.pending.Close()
	it.buf.Close()
}

// ---------------------------------------------------------------------------
// Prisma

// PrismaPipeline is the Baseline pipeline with storage access rerouted
// through a PRISMA stage. The complete integration diff against Baseline —
// mirroring the paper's 10 LoC TensorFlow change — is: (1) submit the
// epoch's shuffled filename list to the stage, (2) call stage.Read instead
// of backend.ReadFile for training samples. Validation reads also go
// through the stage but are unplanned, so they bypass to backend storage.
type PrismaPipeline struct {
	env   conc.Env
	stage *core.Stage
	train *dataset.Manifest
	val   *dataset.Manifest
	seed  int64
	costs Costs
	// Intercept is the extra per-read cost of the interception layer
	// (POSIX shim dispatch).
	intercept time.Duration
	// prefetchVal enables the §V-A extension: validation filename lists
	// are also shared with the data plane, closing the gap to
	// TF-optimized at large batch sizes.
	prefetchVal bool
}

// SetPrefetchValidation toggles validation-file prefetching — the paper's
// noted prototype limitation ("PRISMA's prototype does not perform
// prefetching for validation files... contemplating [it] would be feasible
// and only require a few adjustments", §V-A). Enable before training.
func (p *PrismaPipeline) SetPrefetchValidation(on bool) { p.prefetchVal = on }

// NewPrisma builds the PRISMA-backed setup over an existing stage.
func NewPrisma(env conc.Env, stage *core.Stage, trainSet, valSet *dataset.Manifest, seed int64, costs Costs, intercept time.Duration) (*PrismaPipeline, error) {
	if err := costs.Validate(); err != nil {
		return nil, err
	}
	if intercept < 0 {
		return nil, fmt.Errorf("tfmini: negative interception cost")
	}
	return &PrismaPipeline{env: env, stage: stage, train: trainSet, val: valSet, seed: seed, costs: costs, intercept: intercept}, nil
}

// TrainIter implements train.Pipeline: it shares the epoch's filename list
// with the data plane (the job-script change of §IV) and then reads through
// the stage.
func (p *PrismaPipeline) TrainIter(epoch int) (train.Iterator, error) {
	names := p.train.EpochFileList(p.seed, epoch)
	if err := p.stage.SubmitPlan(names); err != nil {
		return nil, err
	}
	return &stageIter{env: p.env, stage: p.stage, costs: p.costs, intercept: p.intercept, names: names}, nil
}

// ValIter implements train.Pipeline. By default no plan is submitted —
// the prototype does not prefetch validation files (paper §V-A), so these
// reads bypass to backend storage; with SetPrefetchValidation(true) the
// validation list is planned like a training epoch.
func (p *PrismaPipeline) ValIter(epoch int) (train.Iterator, error) {
	names := p.val.EpochFileList(p.seed+1, epoch)
	if p.prefetchVal {
		if err := p.stage.SubmitPlan(names); err != nil {
			return nil, err
		}
	}
	return &stageIter{env: p.env, stage: p.stage, costs: p.costs, intercept: p.intercept, names: names}, nil
}

// ActiveReaderDistribution reports the stage's producer-thread concurrency
// — the PRISMA line of Figure 3.
func (p *PrismaPipeline) ActiveReaderDistribution() map[int]time.Duration {
	if pf := p.stage.Prefetcher(); pf != nil {
		return pf.ActiveReaderDistribution()
	}
	return nil
}

// Stage exposes the underlying stage (for the control plane and stats).
func (p *PrismaPipeline) Stage() *core.Stage { return p.stage }

// Close implements train.Pipeline. The stage is owned by the caller (it may
// serve other jobs), so Close does not shut it down.
func (p *PrismaPipeline) Close() {}

// stageIter reads samples through the PRISMA stage.
type stageIter struct {
	env       conc.Env
	stage     *core.Stage
	costs     Costs
	intercept time.Duration
	names     []string
	i         int
}

// Next implements train.Iterator.
func (it *stageIter) Next() (bool, error) {
	if it.i >= len(it.names) {
		return false, nil
	}
	name := it.names[it.i]
	it.i++
	if _, err := it.stage.Read(name); err != nil {
		return false, err
	}
	// Preprocessing still happens framework-side (PRISMA only moves I/O).
	if c := it.costs.Preprocess + it.costs.Consume + it.intercept; c > 0 {
		it.env.Sleep(c)
	}
	return true, nil
}
