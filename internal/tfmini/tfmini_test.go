package tfmini

import (
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
	"github.com/dsrhaslab/prisma-go/internal/train"
)

func runSim(t *testing.T, body func(env conc.Env)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("test-body", func(*sim.Process) { body(env) })
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// fixtures builds train/val manifests and a modeled backend.
func fixtures(env conc.Env, nTrain, nVal int, lat time.Duration, channels int) (*dataset.Manifest, *dataset.Manifest, *storage.ModeledBackend) {
	ts := make([]dataset.Sample, nTrain)
	for i := range ts {
		ts[i] = dataset.Sample{Name: fmt.Sprintf("train/%04d", i), Size: 100_000}
	}
	vs := make([]dataset.Sample, nVal)
	for i := range vs {
		vs[i] = dataset.Sample{Name: fmt.Sprintf("val/%04d", i), Size: 100_000}
	}
	all := append(append([]dataset.Sample{}, ts...), vs...)
	man := dataset.MustNew(all)
	trainMan := dataset.MustNew(ts)
	valMan := dataset.MustNew(vs)
	dev, err := storage.NewDevice(env, storage.DeviceSpec{BaseLatency: lat, BytesPerSecond: 1e15, Channels: channels})
	if err != nil {
		panic(err)
	}
	return trainMan, valMan, storage.NewModeledBackend(man, dev, nil)
}

func drain(t *testing.T, it train.Iterator) int {
	t.Helper()
	n := 0
	for {
		ok, err := it.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return n
		}
		n++
	}
}

func TestBaselineSerialTiming(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 20, 5, time.Millisecond, 8)
		p, err := NewBaseline(env, backend, trainMan, valMan, 7, Costs{Preprocess: 500 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		it, _ := p.TrainIter(0)
		start := env.Now()
		if n := drain(t, it); n != 20 {
			t.Fatalf("drained %d, want 20", n)
		}
		// Serial: 20 × (1ms + 0.5ms) = 30ms despite 8 device channels.
		if got := env.Now() - start; got != 30*time.Millisecond {
			t.Fatalf("elapsed %v, want 30ms (single-threaded)", got)
		}
		if max := metrics.MaxValue(p.ActiveReaderDistribution()); max != 1 {
			t.Fatalf("max concurrent readers = %d, want 1", max)
		}
		p.Close()
	})
}

func TestBaselineValIterCoversValSet(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 4, 6, time.Millisecond, 2)
		p, _ := NewBaseline(env, backend, trainMan, valMan, 7, Costs{})
		it, _ := p.ValIter(0)
		if n := drain(t, it); n != 6 {
			t.Fatalf("val drained %d, want 6", n)
		}
	})
}

func TestBaselineEpochOrderIsShuffled(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 50, 1, time.Millisecond, 1)
		p, _ := NewBaseline(env, backend, trainMan, valMan, 7, Costs{})
		it0, _ := p.TrainIter(0)
		it1, _ := p.TrainIter(1)
		a := it0.(*serialIter).names
		b := it1.(*serialIter).names
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("epochs 0 and 1 use identical order")
		}
	})
}

func TestOptimizedParallelTiming(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 80, 5, time.Millisecond, 8)
		p, err := NewOptimized(env, backend, trainMan, valMan, 7, Costs{}, OptimizedConfig{
			ReaderThreads: 30, InitialBuffer: 2, MaxBuffer: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		it, _ := p.TrainIter(0)
		start := env.Now()
		if n := drain(t, it); n != 80 {
			t.Fatalf("drained %d, want 80", n)
		}
		elapsed := env.Now() - start
		// 80 reads over 8 channels at 1ms ≈ 10ms; far below the 80ms serial.
		if elapsed > 25*time.Millisecond {
			t.Fatalf("elapsed %v, want ≈10ms (parallel)", elapsed)
		}
		if p.BufferGrowths() == 0 {
			t.Fatal("intrinsic autotuner never grew the buffer")
		}
		p.Close()
	})
}

func TestOptimizedOverallocatesThreads(t *testing.T) {
	// The Fig. 3 behaviour: the TF pool pushes far more concurrent reads
	// than the device can service.
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 200, 5, time.Millisecond, 8)
		p, _ := NewOptimized(env, backend, trainMan, valMan, 7, Costs{}, OptimizedConfig{
			ReaderThreads: 30, InitialBuffer: 2, MaxBuffer: 256,
		})
		it, _ := p.TrainIter(0)
		drain(t, it)
		p.Close()
		if max := metrics.MaxValue(p.ActiveReaderDistribution()); max < 20 {
			t.Fatalf("max concurrent readers = %d, want ≈30 (overallocation)", max)
		}
	})
}

func TestOptimizedValPrefetched(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 5, 64, time.Millisecond, 8)
		p, _ := NewOptimized(env, backend, trainMan, valMan, 7, Costs{}, DefaultOptimizedConfig())
		it, _ := p.ValIter(0)
		start := env.Now()
		if n := drain(t, it); n != 64 {
			t.Fatalf("val drained %d, want 64", n)
		}
		if got := env.Now() - start; got > 30*time.Millisecond {
			t.Fatalf("val elapsed %v, want parallel (≈8ms)", got)
		}
		p.Close()
	})
}

func TestOptimizedPropagatesReaderError(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 10, 2, time.Millisecond, 4)
		faulty := storage.NewFaultyBackend(env, backend)
		faulty.FailEvery(3)
		p, _ := NewOptimized(env, faulty, trainMan, valMan, 7, Costs{}, OptimizedConfig{
			ReaderThreads: 2, InitialBuffer: 2, MaxBuffer: 8,
		})
		it, _ := p.TrainIter(0)
		sawErr := false
		for i := 0; i < 10; i++ {
			ok, err := it.Next()
			if err != nil {
				sawErr = true
				break
			}
			if !ok {
				break
			}
		}
		if !sawErr {
			t.Fatal("reader error never surfaced to the consumer")
		}
		p.Close()
	})
}

// prismaFixture wires a stage over the backend.
func prismaFixture(env conc.Env, backend storage.Backend, producers int) *core.Stage {
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers: producers, MaxProducers: 32,
		InitialBufferCapacity: 16, MaxBufferCapacity: 512,
	})
	if err != nil {
		panic(err)
	}
	st := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	pf.Start()
	return st
}

func TestPrismaTrainHitsValBypasses(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 30, 10, time.Millisecond, 8)
		st := prismaFixture(env, backend, 4)
		p, err := NewPrisma(env, st, trainMan, valMan, 7, Costs{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		it, _ := p.TrainIter(0)
		if n := drain(t, it); n != 30 {
			t.Fatalf("train drained %d, want 30", n)
		}
		vit, _ := p.ValIter(0)
		if n := drain(t, vit); n != 10 {
			t.Fatalf("val drained %d, want 10", n)
		}
		stats := st.Stats()
		if stats.Hits != 30 {
			t.Errorf("Hits = %d, want 30 (train via buffer)", stats.Hits)
		}
		if stats.Bypasses != 10 {
			t.Errorf("Bypasses = %d, want 10 (validation unplanned)", stats.Bypasses)
		}
		st.Close()
	})
}

func TestPrismaValidationPrefetchExtension(t *testing.T) {
	// §V-A: the prototype bypasses validation files; the extension plans
	// them too, so validation reads hit the buffer and run in parallel.
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 10, 40, time.Millisecond, 8)
		stBypass := prismaFixture(env, backend, 4)
		pOff, _ := NewPrisma(env, stBypass, trainMan, valMan, 7, Costs{}, 0)
		vit, _ := pOff.ValIter(0)
		start := env.Now()
		drain(t, vit)
		bypassTime := env.Now() - start
		if stBypass.Stats().Bypasses != 40 {
			t.Fatalf("bypasses = %d, want 40 without the extension", stBypass.Stats().Bypasses)
		}
		stBypass.Close()

		trainMan2, valMan2, backend2 := fixtures(env, 10, 40, time.Millisecond, 8)
		_ = trainMan2
		stPlan := prismaFixture(env, backend2, 4)
		pOn, _ := NewPrisma(env, stPlan, trainMan2, valMan2, 7, Costs{}, 0)
		pOn.SetPrefetchValidation(true)
		vit2, _ := pOn.ValIter(0)
		start = env.Now()
		drain(t, vit2)
		planTime := env.Now() - start
		if stPlan.Stats().Hits != 40 {
			t.Fatalf("hits = %d, want 40 with the extension", stPlan.Stats().Hits)
		}
		stPlan.Close()

		if planTime*2 > bypassTime {
			t.Fatalf("prefetched validation (%v) not clearly faster than bypass (%v)", planTime, bypassTime)
		}
	})
}

func TestPrismaFasterThanBaselineIOBound(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 200, 5, time.Millisecond, 8)
		base, _ := NewBaseline(env, backend, trainMan, valMan, 7, Costs{})
		bit, _ := base.TrainIter(0)
		baseStart := env.Now()
		drain(t, bit)
		baseElapsed := env.Now() - baseStart

		st := prismaFixture(env, backend, 4)
		pp, _ := NewPrisma(env, st, trainMan, valMan, 7, Costs{}, 0)
		pit, _ := pp.TrainIter(1)
		pStart := env.Now()
		drain(t, pit)
		pElapsed := env.Now() - pStart
		st.Close()

		if pElapsed*2 > baseElapsed {
			t.Fatalf("prisma %v not clearly faster than baseline %v", pElapsed, baseElapsed)
		}
	})
}

func TestPrismaReaderConcurrencyBounded(t *testing.T) {
	runSim(t, func(env conc.Env) {
		trainMan, valMan, backend := fixtures(env, 100, 5, time.Millisecond, 8)
		st := prismaFixture(env, backend, 4)
		p, _ := NewPrisma(env, st, trainMan, valMan, 7, Costs{}, 0)
		it, _ := p.TrainIter(0)
		drain(t, it)
		if max := metrics.MaxValue(p.ActiveReaderDistribution()); max > 4 {
			t.Fatalf("max concurrent readers = %d, want <= 4 (t=4)", max)
		}
		st.Close()
	})
}

func TestEndToEndTrainRunComparison(t *testing.T) {
	// Full train.Run over both setups for an I/O-bound model: the shape of
	// paper Fig. 2's LeNet bars.
	s := sim.New()
	env := conc.NewSimEnv(s)
	var baseT, prismaT time.Duration
	s.Spawn("driver", func(*sim.Process) {
		model := train.Model{Name: "tiny", ComputePerImage: time.Microsecond, StepOverhead: 100 * time.Microsecond, ValComputeFactor: 0.5}
		cfg := train.Config{Model: model, BatchPerGPU: 8, GPUs: 4, Epochs: 2, Validation: true}

		trainMan, valMan, backend := fixtures(env, 320, 32, time.Millisecond, 8)
		gpus := train.NewGPUCluster(env, 4)
		base, _ := NewBaseline(env, backend, trainMan, valMan, 7, Costs{})
		res, err := train.Run(env, cfg, base, gpus)
		if err != nil {
			t.Error(err)
			return
		}
		baseT = res.Elapsed

		trainMan2, valMan2, backend2 := fixtures(env, 320, 32, time.Millisecond, 8)
		st := prismaFixture(env, backend2, 4)
		pp, _ := NewPrisma(env, st, trainMan2, valMan2, 7, Costs{}, 0)
		gpus2 := train.NewGPUCluster(env, 4)
		res2, err := train.Run(env, cfg, pp, gpus2)
		if err != nil {
			t.Error(err)
			return
		}
		prismaT = res2.Elapsed
		st.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if prismaT >= baseT {
		t.Fatalf("prisma %v not faster than baseline %v", prismaT, baseT)
	}
	reduction := 1 - float64(prismaT)/float64(baseT)
	if reduction < 0.3 {
		t.Fatalf("reduction %.0f%%, want > 30%% for I/O-bound model", reduction*100)
	}
}

func TestRealModeEndToEnd(t *testing.T) {
	// The whole TF-side stack on real files under the real-time
	// environment: baseline and PRISMA both complete a short training run
	// with correct sample counts and byte-faithful reads.
	dir := t.TempDir()
	ts := make([]dataset.Sample, 24)
	for i := range ts {
		ts[i] = dataset.Sample{Name: fmt.Sprintf("train/%03d.jpg", i), Size: 2048}
	}
	vs := []dataset.Sample{{Name: "val/000.jpg", Size: 2048}, {Name: "val/001.jpg", Size: 2048}}
	all := dataset.MustNew(append(append([]dataset.Sample{}, ts...), vs...))
	if err := dataset.Generate(dir, all, 5); err != nil {
		t.Fatal(err)
	}
	trainMan, valMan := dataset.MustNew(ts), dataset.MustNew(vs)
	env := conc.NewReal()
	backend := storage.NewDirBackend(dir)

	model := train.Model{Name: "tiny", ComputePerImage: time.Microsecond, StepOverhead: 10 * time.Microsecond, ValComputeFactor: 0.5}
	cfg := train.Config{Model: model, BatchPerGPU: 2, GPUs: 4, Epochs: 2, Validation: true}

	run := func(p train.Pipeline) train.Result {
		t.Helper()
		gpus := train.NewGPUCluster(env, 4)
		done := make(chan train.Result, 1)
		errc := make(chan error, 1)
		env.Go("trainer", func() {
			res, err := train.Run(env, cfg, p, gpus)
			if err != nil {
				errc <- err
				return
			}
			done <- res
		})
		select {
		case res := <-done:
			return res
		case err := <-errc:
			t.Fatal(err)
		case <-time.After(30 * time.Second):
			t.Fatal("real-mode training hung")
		}
		panic("unreachable")
	}

	base, err := NewBaseline(env, backend, trainMan, valMan, 7, Costs{})
	if err != nil {
		t.Fatal(err)
	}
	res := run(base)
	if res.TrainSamples != 48 || res.ValSamples != 4 {
		t.Fatalf("baseline samples = %d/%d, want 48/4", res.TrainSamples, res.ValSamples)
	}

	st := prismaFixture(env, backend, 2)
	defer st.Close()
	pp, err := NewPrisma(env, st, trainMan, valMan, 7, Costs{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res = run(pp)
	if res.TrainSamples != 48 || res.ValSamples != 4 {
		t.Fatalf("prisma samples = %d/%d, want 48/4", res.TrainSamples, res.ValSamples)
	}
	if stats := st.Stats(); stats.Hits != 48 || stats.Errors != 0 {
		t.Fatalf("stage stats = %+v, want 48 hits", stats)
	}
}

func TestCostsValidation(t *testing.T) {
	if (Costs{Preprocess: -1}).Validate() == nil {
		t.Error("negative preprocess accepted")
	}
	if err := DefaultOptimizedConfig().Validate(); err != nil {
		t.Errorf("default optimized config: %v", err)
	}
	bad := []OptimizedConfig{
		{ReaderThreads: 0, InitialBuffer: 1, MaxBuffer: 2},
		{ReaderThreads: 1, InitialBuffer: 0, MaxBuffer: 2},
		{ReaderThreads: 1, InitialBuffer: 4, MaxBuffer: 2},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad optimized config %d accepted", i)
		}
	}
	env := conc.NewReal()
	if _, err := NewPrisma(env, nil, nil, nil, 0, Costs{}, -time.Second); err == nil {
		t.Error("negative interception cost accepted")
	}
}
