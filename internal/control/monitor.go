package control

import (
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// Snapshot is one timestamped data-plane observation.
type Snapshot struct {
	At    time.Duration
	Stats core.StageStats
}

// Monitor is the control plane's metric collector (paper §III: the control
// plane "communicates with the data plane for collecting monitoring
// metrics (e.g., cache hits, I/O rate)"): a bounded ring of periodic
// snapshots per stage, with derived rates over arbitrary windows. It is
// what dashboards, policies, and the fairness arbiter read.
type Monitor struct {
	env      conc.Env
	mu       conc.Mutex
	capacity int
	series   map[string][]Snapshot
}

// NewMonitor keeps up to capacity snapshots per stage (older ones are
// dropped FIFO).
func NewMonitor(env conc.Env, capacity int) *Monitor {
	if capacity < 2 {
		panic("control: monitor needs capacity >= 2 (rates need two points)")
	}
	return &Monitor{env: env, mu: env.NewMutex(), capacity: capacity, series: make(map[string][]Snapshot)}
}

// Record appends a snapshot for stage id at the current time.
func (m *Monitor) Record(id string, stats core.StageStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := append(m.series[id], Snapshot{At: m.env.Now(), Stats: stats})
	if len(s) > m.capacity {
		s = s[len(s)-m.capacity:]
	}
	m.series[id] = s
}

// Series returns a copy of the retained snapshots for id, oldest first.
func (m *Monitor) Series(id string) []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	src := m.series[id]
	out := make([]Snapshot, len(src))
	copy(out, src)
	return out
}

// Len reports the retained snapshot count for id.
func (m *Monitor) Len(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.series[id])
}

// Resilience returns the latest recorded resilience snapshot for id. ok is
// false when no snapshot exists yet.
func (m *Monitor) Resilience(id string) (storage.ResilienceStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.series[id]
	if len(s) == 0 {
		return storage.ResilienceStats{}, false
	}
	return s[len(s)-1].Stats.Resilience, true
}

// Degraded reports whether stage id's storage backend was shedding load
// (circuit breaker open or probing) as of the latest snapshot. This is the
// control-plane view of the degraded-mode signal the autotuner acts on.
func (m *Monitor) Degraded(id string) bool {
	r, ok := m.Resilience(id)
	return ok && r.Degraded
}

// Rates summarizes stage activity over the trailing window.
type Rates struct {
	Window            time.Duration
	ReadsPerSec       float64
	HitRate           float64 // hits / reads within the window
	ErrorRate         float64 // errors / reads within the window
	RetriesPerSec     float64 // storage retries within the window
	BufferTakesPerSec float64 // buffer consumptions within the window (aggregated over shards)
}

// counterReset reports whether cur's monotone counters moved backwards
// relative to prev — the signature of a stage restart, whose fresh counters
// would otherwise produce nonsensical negative deltas.
func counterReset(prev, cur Snapshot) bool {
	return cur.Stats.Reads < prev.Stats.Reads ||
		cur.Stats.Buffer.Takes < prev.Stats.Buffer.Takes ||
		cur.Stats.Buffer.ConsumerWait < prev.Stats.Buffer.ConsumerWait
}

// pairLocked selects the (oldest, newest) snapshot pair spanning the
// requested window: the oldest retained snapshot inside the window, widened
// to the last pair when the window is shorter than one sampling interval,
// and advanced past the most recent counter reset so a stage restart never
// yields negative deltas. Caller holds m.mu. ok is false with fewer than
// two usable snapshots.
func (m *Monitor) pairLocked(id string, window time.Duration) (oldest, newest Snapshot, ok bool) {
	s := m.series[id]
	if len(s) < 2 {
		return Snapshot{}, Snapshot{}, false
	}
	newest = s[len(s)-1]
	cutoff := newest.At - window
	idx := 0
	for i, snap := range s {
		if snap.At >= cutoff {
			idx = i
			break
		}
	}
	if s[idx].At >= newest.At {
		// window smaller than one sampling interval: widen to the last pair
		idx = len(s) - 2
	}
	// A restart resets the stage's counters; measuring across it would go
	// backwards. Start the window at the first post-reset snapshot instead.
	for i := idx + 1; i < len(s); i++ {
		if counterReset(s[i-1], s[i]) {
			idx = i
		}
	}
	oldest = s[idx]
	if oldest.At >= newest.At {
		return Snapshot{}, Snapshot{}, false
	}
	return oldest, newest, true
}

// nonneg clamps a counter delta to zero: even within a reset-free pair a
// backend swap can lower an auxiliary counter.
func nonneg(d int64) int64 {
	if d < 0 {
		return 0
	}
	return d
}

// Rate derives windowed rates for id from the two snapshots spanning the
// requested window (the oldest retained one if the window exceeds
// retention). Windows shorter than one sampling interval widen to the last
// snapshot pair, and a counter reset (stage restart) inside the window
// shrinks it to the post-restart span. ok is false with fewer than two
// usable snapshots.
func (m *Monitor) Rate(id string, window time.Duration) (Rates, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldest, newest, ok := m.pairLocked(id, window)
	if !ok {
		return Rates{}, false
	}
	dt := (newest.At - oldest.At).Seconds()
	if dt <= 0 {
		return Rates{}, false
	}
	reads := nonneg(newest.Stats.Reads - oldest.Stats.Reads)
	hits := nonneg(newest.Stats.Hits - oldest.Stats.Hits)
	errors := nonneg(newest.Stats.Errors - oldest.Stats.Errors)
	retries := nonneg(newest.Stats.Resilience.Retries - oldest.Stats.Resilience.Retries)
	takes := nonneg(newest.Stats.Buffer.Takes - oldest.Stats.Buffer.Takes)
	r := Rates{
		Window:            newest.At - oldest.At,
		ReadsPerSec:       float64(reads) / dt,
		RetriesPerSec:     float64(retries) / dt,
		BufferTakesPerSec: float64(takes) / dt,
	}
	if reads > 0 {
		r.HitRate = float64(hits) / float64(reads)
		r.ErrorRate = float64(errors) / float64(reads)
	}
	return r, true
}

// Attribution derives the critical-path latency breakdown for id over the
// trailing window from the always-on wait counters (no span sampling
// needed). consumers < 1 defaults to 1. ok is false with fewer than two
// usable snapshots.
func (m *Monitor) Attribution(id string, window time.Duration, consumers int) (obs.Attribution, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldest, newest, ok := m.pairLocked(id, window)
	if !ok {
		return obs.Attribution{}, false
	}
	return intervalAttribution(oldest.Stats, newest.Stats, consumers), true
}

// EnableMonitoring attaches a monitor to the controller: every Tick also
// records each managed stage's snapshot. Call before Start.
func (c *Controller) EnableMonitoring(capacity int) *Monitor {
	m := NewMonitor(c.env, capacity)
	c.mu.Lock()
	c.monitor = m
	c.mu.Unlock()
	return m
}

// Monitor returns the attached monitor, or nil.
func (c *Controller) Monitor() *Monitor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.monitor
}
