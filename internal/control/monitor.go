package control

import (
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// Snapshot is one timestamped data-plane observation.
type Snapshot struct {
	At    time.Duration
	Stats core.StageStats
}

// Monitor is the control plane's metric collector (paper §III: the control
// plane "communicates with the data plane for collecting monitoring
// metrics (e.g., cache hits, I/O rate)"): a bounded ring of periodic
// snapshots per stage, with derived rates over arbitrary windows. It is
// what dashboards, policies, and the fairness arbiter read.
type Monitor struct {
	env      conc.Env
	mu       conc.Mutex
	capacity int
	series   map[string][]Snapshot
}

// NewMonitor keeps up to capacity snapshots per stage (older ones are
// dropped FIFO).
func NewMonitor(env conc.Env, capacity int) *Monitor {
	if capacity < 2 {
		panic("control: monitor needs capacity >= 2 (rates need two points)")
	}
	return &Monitor{env: env, mu: env.NewMutex(), capacity: capacity, series: make(map[string][]Snapshot)}
}

// Record appends a snapshot for stage id at the current time.
func (m *Monitor) Record(id string, stats core.StageStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := append(m.series[id], Snapshot{At: m.env.Now(), Stats: stats})
	if len(s) > m.capacity {
		s = s[len(s)-m.capacity:]
	}
	m.series[id] = s
}

// Series returns a copy of the retained snapshots for id, oldest first.
func (m *Monitor) Series(id string) []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	src := m.series[id]
	out := make([]Snapshot, len(src))
	copy(out, src)
	return out
}

// Len reports the retained snapshot count for id.
func (m *Monitor) Len(id string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.series[id])
}

// Resilience returns the latest recorded resilience snapshot for id. ok is
// false when no snapshot exists yet.
func (m *Monitor) Resilience(id string) (storage.ResilienceStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.series[id]
	if len(s) == 0 {
		return storage.ResilienceStats{}, false
	}
	return s[len(s)-1].Stats.Resilience, true
}

// Degraded reports whether stage id's storage backend was shedding load
// (circuit breaker open or probing) as of the latest snapshot. This is the
// control-plane view of the degraded-mode signal the autotuner acts on.
func (m *Monitor) Degraded(id string) bool {
	r, ok := m.Resilience(id)
	return ok && r.Degraded
}

// Rates summarizes stage activity over the trailing window.
type Rates struct {
	Window            time.Duration
	ReadsPerSec       float64
	HitRate           float64 // hits / reads within the window
	ErrorRate         float64 // errors / reads within the window
	RetriesPerSec     float64 // storage retries within the window
	BufferTakesPerSec float64 // buffer consumptions within the window (aggregated over shards)
}

// Rate derives windowed rates for id from the two snapshots spanning the
// requested window (the oldest retained one if the window exceeds
// retention). ok is false with fewer than two snapshots.
func (m *Monitor) Rate(id string, window time.Duration) (Rates, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.series[id]
	if len(s) < 2 {
		return Rates{}, false
	}
	newest := s[len(s)-1]
	oldest := s[0]
	cutoff := newest.At - window
	for _, snap := range s {
		if snap.At >= cutoff {
			oldest = snap
			break
		}
	}
	if oldest.At >= newest.At {
		// window smaller than one sampling interval: widen to the last pair
		oldest = s[len(s)-2]
	}
	dt := (newest.At - oldest.At).Seconds()
	if dt <= 0 {
		return Rates{}, false
	}
	reads := newest.Stats.Reads - oldest.Stats.Reads
	hits := newest.Stats.Hits - oldest.Stats.Hits
	errors := newest.Stats.Errors - oldest.Stats.Errors
	retries := newest.Stats.Resilience.Retries - oldest.Stats.Resilience.Retries
	takes := newest.Stats.Buffer.Takes - oldest.Stats.Buffer.Takes
	r := Rates{
		Window:            newest.At - oldest.At,
		ReadsPerSec:       float64(reads) / dt,
		RetriesPerSec:     float64(retries) / dt,
		BufferTakesPerSec: float64(takes) / dt,
	}
	if reads > 0 {
		r.HitRate = float64(hits) / float64(reads)
		r.ErrorRate = float64(errors) / float64(reads)
	}
	return r, true
}

// EnableMonitoring attaches a monitor to the controller: every Tick also
// records each managed stage's snapshot. Call before Start.
func (c *Controller) EnableMonitoring(capacity int) *Monitor {
	m := NewMonitor(c.env, capacity)
	c.mu.Lock()
	c.monitor = m
	c.mu.Unlock()
	return m
}

// Monitor returns the attached monitor, or nil.
func (c *Controller) Monitor() *Monitor {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.monitor
}
