package control

import (
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy invalid: %v", err)
	}
	bad := []Policy{
		{MinProducers: 0, MaxProducers: 4, MinBuffer: 1, MaxBuffer: 2, StarvationHigh: .1, StarvationLow: .01, ProducerIdleHigh: .5},
		{MinProducers: 4, MaxProducers: 1, MinBuffer: 1, MaxBuffer: 2, StarvationHigh: .1, StarvationLow: .01, ProducerIdleHigh: .5},
		{MinProducers: 1, MaxProducers: 4, MinBuffer: 0, MaxBuffer: 2, StarvationHigh: .1, StarvationLow: .01, ProducerIdleHigh: .5},
		{MinProducers: 1, MaxProducers: 4, MinBuffer: 4, MaxBuffer: 2, StarvationHigh: .1, StarvationLow: .01, ProducerIdleHigh: .5},
		{MinProducers: 1, MaxProducers: 4, MinBuffer: 1, MaxBuffer: 2, StarvationHigh: 0, StarvationLow: 0, ProducerIdleHigh: .5},
		{MinProducers: 1, MaxProducers: 4, MinBuffer: 1, MaxBuffer: 2, StarvationHigh: .1, StarvationLow: .2, ProducerIdleHigh: .5},
		{MinProducers: 1, MaxProducers: 4, MinBuffer: 1, MaxBuffer: 2, StarvationHigh: .1, StarvationLow: .01, ProducerIdleHigh: 0},
		{MinProducers: 1, MaxProducers: 4, MinBuffer: 1, MaxBuffer: 2, StarvationHigh: .1, StarvationLow: .01, ProducerIdleHigh: 1.5},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
}

func TestPolicyClamp(t *testing.T) {
	p := Policy{MinProducers: 2, MaxProducers: 8, MinBuffer: 4, MaxBuffer: 64}
	got := p.Clamp(Tuning{Producers: 100, BufferCapacity: 1})
	if got != (Tuning{Producers: 8, BufferCapacity: 4}) {
		t.Fatalf("Clamp = %+v", got)
	}
	got = p.Clamp(Tuning{Producers: 0, BufferCapacity: 1000})
	if got != (Tuning{Producers: 2, BufferCapacity: 64}) {
		t.Fatalf("Clamp = %+v", got)
	}
}

func TestStaticAlgorithm(t *testing.T) {
	alg := StaticAlgorithm{Fixed: Tuning{Producers: 100, BufferCapacity: 5}}
	pol := DefaultPolicy()
	got := alg.Decide(core.StageStats{}, core.StageStats{}, Tuning{Producers: 1, BufferCapacity: 1}, pol)
	if got.Producers != pol.MaxProducers || got.BufferCapacity != 5 {
		t.Fatalf("Decide = %+v", got)
	}
}

// statsAt builds a StageStats snapshot for autotuner unit tests.
func statsAt(now time.Duration, consumerWait, producerWait time.Duration, queueLen int, takes int64) core.StageStats {
	return core.StageStats{
		Now:      now,
		QueueLen: queueLen,
		Buffer: core.BufferStats{
			ConsumerWait: consumerWait,
			ProducerWait: producerWait,
			Takes:        takes,
		},
	}
}

func TestAutotunerRaisesProducersOnStarvation(t *testing.T) {
	pol := DefaultPolicy()
	prev := statsAt(0, 0, 0, 100, 0)
	cur := statsAt(time.Second, 200*time.Millisecond, 0, 100, 50) // 20% starvation
	got := NewAutotuner().Decide(prev, cur, Tuning{Producers: 2, BufferCapacity: 16}, pol)
	if got.Producers != 3 {
		t.Fatalf("Producers = %d, want 3", got.Producers)
	}
	if got.BufferCapacity != 16 {
		t.Fatalf("BufferCapacity changed to %d, want 16", got.BufferCapacity)
	}
}

func TestAutotunerDoublesBufferAtProducerCeiling(t *testing.T) {
	pol := DefaultPolicy()
	pol.MaxProducers = 4
	prev := statsAt(0, 0, 0, 100, 0)
	cur := statsAt(time.Second, 300*time.Millisecond, 0, 100, 50)
	got := NewAutotuner().Decide(prev, cur, Tuning{Producers: 4, BufferCapacity: 16}, pol)
	if got.Producers != 4 || got.BufferCapacity != 32 {
		t.Fatalf("Decide = %+v, want producers 4, buffer 32", got)
	}
}

func TestAutotunerNoBufferGrowthWhenDisabled(t *testing.T) {
	pol := DefaultPolicy()
	pol.MaxProducers = 4
	pol.GrowBufferOnStarvation = false
	prev := statsAt(0, 0, 0, 100, 0)
	cur := statsAt(time.Second, 300*time.Millisecond, 0, 100, 50)
	got := NewAutotuner().Decide(prev, cur, Tuning{Producers: 4, BufferCapacity: 16}, pol)
	if got.BufferCapacity != 16 {
		t.Fatalf("BufferCapacity = %d, want 16", got.BufferCapacity)
	}
}

func TestAutotunerLowersIdleProducers(t *testing.T) {
	pol := DefaultPolicy()
	prev := statsAt(0, 0, 0, 100, 0)
	// No starvation; 4 producers blocked 80% of the interval; queue non-empty.
	cur := statsAt(time.Second, 0, 3200*time.Millisecond, 100, 50)
	got := NewAutotuner().Decide(prev, cur, Tuning{Producers: 4, BufferCapacity: 16}, pol)
	if got.Producers != 3 {
		t.Fatalf("Producers = %d, want 3", got.Producers)
	}
}

func TestAutotunerIgnoresIdlenessWithEmptyQueue(t *testing.T) {
	pol := DefaultPolicy()
	prev := statsAt(0, 0, 0, 0, 0)
	cur := statsAt(time.Second, 0, 3200*time.Millisecond, 0, 50) // epoch boundary
	got := NewAutotuner().Decide(prev, cur, Tuning{Producers: 4, BufferCapacity: 16}, pol)
	if got.Producers != 4 {
		t.Fatalf("Producers = %d, want unchanged 4", got.Producers)
	}
}

func TestAutotunerHoldsInsideHysteresisBand(t *testing.T) {
	pol := DefaultPolicy()
	prev := statsAt(0, 0, 0, 100, 0)
	// Starvation 3% (between Low=1% and High=5%), some idleness.
	cur := statsAt(time.Second, 30*time.Millisecond, 600*time.Millisecond, 100, 50)
	got := NewAutotuner().Decide(prev, cur, Tuning{Producers: 4, BufferCapacity: 16}, pol)
	if got.Producers != 4 || got.BufferCapacity != 16 {
		t.Fatalf("Decide = %+v, want hold", got)
	}
}

func TestAutotunerZeroIntervalHolds(t *testing.T) {
	pol := DefaultPolicy()
	s := statsAt(time.Second, time.Second, 0, 10, 1)
	got := NewAutotuner().Decide(s, s, Tuning{Producers: 2, BufferCapacity: 8}, pol)
	if got != (Tuning{Producers: 2, BufferCapacity: 8}) {
		t.Fatalf("Decide = %+v, want hold on zero interval", got)
	}
}

func TestAutotunerRespectsPolicyFloor(t *testing.T) {
	pol := DefaultPolicy()
	pol.MinProducers = 2
	prev := statsAt(0, 0, 0, 100, 0)
	cur := statsAt(time.Second, 0, 1800*time.Millisecond, 100, 10)
	got := NewAutotuner().Decide(prev, cur, Tuning{Producers: 2, BufferCapacity: 8}, pol)
	if got.Producers != 2 {
		t.Fatalf("Producers = %d, want floor 2", got.Producers)
	}
}

func TestAutotunerPlateauStopsFutileRaises(t *testing.T) {
	// Raising t beyond the device's parallelism yields no throughput gain;
	// the tuner must step back and stop chasing starvation it cannot fix —
	// the behaviour behind PRISMA's ≤4 threads in Fig. 3.
	pol := DefaultPolicy()
	a := NewAutotuner()
	tun := Tuning{Producers: 4, BufferCapacity: 64}
	// Interval 1: starving at rate 1000/s → raise to 5.
	s0 := statsAt(0, 0, 0, 100, 0)
	s1 := statsAt(time.Second, 200*time.Millisecond, 0, 100, 1000)
	tun = a.Decide(s0, s1, tun, pol)
	if tun.Producers != 5 {
		t.Fatalf("after raise: %d, want 5", tun.Producers)
	}
	// Interval 2: still starving, rate unchanged (device-capped) → undo.
	s2 := statsAt(2*time.Second, 400*time.Millisecond, 0, 100, 2000)
	tun = a.Decide(s1, s2, tun, pol)
	if tun.Producers != 4 {
		t.Fatalf("after plateau detection: %d, want back to 4", tun.Producers)
	}
	// Interval 3: starvation persists but t holds at the plateau; the
	// buffer grows instead.
	s3 := statsAt(3*time.Second, 600*time.Millisecond, 0, 100, 3000)
	tun = a.Decide(s2, s3, tun, pol)
	if tun.Producers != 4 {
		t.Fatalf("plateau not honored: %d, want 4", tun.Producers)
	}
	if tun.BufferCapacity != 128 {
		t.Fatalf("buffer = %d, want doubled 128", tun.BufferCapacity)
	}
}

func TestAutotunerPlateauClearsOnEase(t *testing.T) {
	pol := DefaultPolicy()
	a := NewAutotuner()
	a.plateauAt = 4
	tun := Tuning{Producers: 4, BufferCapacity: 64}
	// Calm interval with heavy producer idleness: down-tune and clear the
	// plateau so future exploration is allowed.
	s0 := statsAt(0, 0, 0, 100, 0)
	s1 := statsAt(time.Second, 0, 3500*time.Millisecond, 100, 500)
	tun = a.Decide(s0, s1, tun, pol)
	if tun.Producers != 3 {
		t.Fatalf("producers = %d, want 3", tun.Producers)
	}
	if a.plateauAt != 0 {
		t.Fatalf("plateau not cleared")
	}
}

func TestGrowthAlgorithmPinsMaxAndDoubles(t *testing.T) {
	pol := DefaultPolicy()
	pol.MaxProducers = 30
	prev := statsAt(0, 0, 0, 10, 0)
	cur := statsAt(time.Second, time.Millisecond, 0, 10, 5)
	got := GrowthAlgorithm{}.Decide(prev, cur, Tuning{Producers: 1, BufferCapacity: 8}, pol)
	if got.Producers != 30 {
		t.Fatalf("Producers = %d, want pinned 30", got.Producers)
	}
	if got.BufferCapacity != 16 {
		t.Fatalf("BufferCapacity = %d, want doubled 16", got.BufferCapacity)
	}
	// No starvation increase: buffer holds.
	got = GrowthAlgorithm{}.Decide(cur, cur, got, pol)
	if got.BufferCapacity != 16 {
		t.Fatalf("BufferCapacity = %d, want hold 16", got.BufferCapacity)
	}
}

// fakeDP is a scriptable DataPlane for controller unit tests.
type fakeDP struct {
	stats     core.StageStats
	producers []int
	buffers   []int
}

func (f *fakeDP) Stats() core.StageStats  { return f.stats }
func (f *fakeDP) SetProducers(n int)      { f.producers = append(f.producers, n) }
func (f *fakeDP) SetBufferCapacity(n int) { f.buffers = append(f.buffers, n) }

func TestControllerAttachAppliesInitialTuning(t *testing.T) {
	env := conc.NewReal()
	c := NewController(env, time.Second)
	dp := &fakeDP{}
	if err := c.Attach("s1", dp, NewAutotuner(), DefaultPolicy(), Tuning{Producers: 3, BufferCapacity: 10}); err != nil {
		t.Fatal(err)
	}
	if len(dp.producers) != 1 || dp.producers[0] != 3 {
		t.Fatalf("SetProducers calls = %v, want [3]", dp.producers)
	}
	if len(dp.buffers) != 1 || dp.buffers[0] != 10 {
		t.Fatalf("SetBufferCapacity calls = %v, want [10]", dp.buffers)
	}
	if err := c.Attach("s1", dp, NewAutotuner(), DefaultPolicy(), Tuning{}); err == nil {
		t.Fatal("duplicate Attach accepted")
	}
	if got := c.Stages(); len(got) != 1 || got[0] != "s1" {
		t.Fatalf("Stages = %v", got)
	}
}

func TestControllerAttachRejectsBadPolicy(t *testing.T) {
	c := NewController(conc.NewReal(), time.Second)
	if err := c.Attach("s", &fakeDP{}, NewAutotuner(), Policy{}, Tuning{}); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

func TestControllerTickAppliesDecision(t *testing.T) {
	env := conc.NewReal()
	c := NewController(env, time.Second)
	dp := &fakeDP{}
	pol := DefaultPolicy()
	_ = c.Attach("s1", dp, NewAutotuner(), pol, Tuning{Producers: 1, BufferCapacity: 8})
	// Starving snapshot: controller must raise producers on tick.
	dp.stats = statsAt(time.Second, 500*time.Millisecond, 0, 50, 10)
	c.Tick()
	tun, ok := c.Applied("s1")
	if !ok || tun.Producers != 2 {
		t.Fatalf("Applied = %+v, %v, want producers 2", tun, ok)
	}
	hist := c.History("s1")
	if len(hist) != 1 || hist[0].Before.Producers != 1 || hist[0].After.Producers != 2 {
		t.Fatalf("History = %+v", hist)
	}
	if c.Ticks() != 1 {
		t.Fatalf("Ticks = %d, want 1", c.Ticks())
	}
}

func TestControllerDetach(t *testing.T) {
	c := NewController(conc.NewReal(), time.Second)
	dp := &fakeDP{}
	_ = c.Attach("s1", dp, NewAutotuner(), DefaultPolicy(), Tuning{Producers: 1, BufferCapacity: 8})
	c.Detach("s1")
	if len(c.Stages()) != 0 {
		t.Fatal("stage not detached")
	}
	if _, ok := c.Applied("s1"); ok {
		t.Fatal("Applied found detached stage")
	}
	c.Detach("s1") // idempotent
}

func TestControllerAutonomousLoopInSim(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	var ticks int64
	s.Spawn("driver", func(p *sim.Process) {
		c := NewController(env, 100*time.Millisecond)
		dp := &fakeDP{}
		_ = c.Attach("s1", dp, NewAutotuner(), DefaultPolicy(), Tuning{Producers: 1, BufferCapacity: 8})
		c.Start()
		env.Sleep(time.Second)
		c.Stop()
		ticks = c.Ticks()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 1s / 100ms = 10 sleeps; the stop flag is seen after the wake at 1.0s,
	// so 9 full ticks complete before it.
	if ticks < 8 || ticks > 10 {
		t.Fatalf("ticks = %d, want ≈9", ticks)
	}
}

// buildStage wires a prefetch stage over a modeled device for end-to-end
// control tests.
func buildStage(env conc.Env, nFiles int, deviceLat time.Duration, channels int) (*core.Stage, []string) {
	samples := make([]dataset.Sample, nFiles)
	names := make([]string, nFiles)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("f%05d", i), Size: 100_000}
		names[i] = samples[i].Name
	}
	m := dataset.MustNew(samples)
	dev, err := storage.NewDevice(env, storage.DeviceSpec{
		BaseLatency:    deviceLat,
		BytesPerSecond: 1e15,
		Channels:       channels,
	})
	if err != nil {
		panic(err)
	}
	backend := storage.NewModeledBackend(m, dev, nil)
	pf, err := core.NewPrefetcher(env, backend, core.PrefetcherConfig{
		InitialProducers:      1,
		MaxProducers:          32,
		InitialBufferCapacity: 16,
		MaxBufferCapacity:     1024,
	})
	if err != nil {
		panic(err)
	}
	st := core.NewStage(env, backend, core.NewPrefetchObject(pf))
	pf.Start()
	return st, names
}

func TestAutotunerConvergesUpward(t *testing.T) {
	// Consumer demands 4000 samples/s; one producer delivers 1000/s
	// (1 ms device). The tuner must settle near t=4 — far below the
	// 32-producer ceiling (the Fig. 3 claim).
	s := sim.New()
	env := conc.NewSimEnv(s)
	var applied Tuning
	s.Spawn("driver", func(p *sim.Process) {
		st, names := buildStage(env, 4000, time.Millisecond, 8)
		ctl := NewController(env, 50*time.Millisecond)
		_ = ctl.Attach("stage", st, NewAutotuner(), DefaultPolicy(), Tuning{Producers: 1, BufferCapacity: 16})
		ctl.Start()
		_ = st.SubmitPlan(names)
		for _, n := range names {
			if _, err := st.Read(n); err != nil {
				t.Errorf("Read(%s): %v", n, err)
				break
			}
			env.Sleep(250 * time.Microsecond) // consumer compute: 4000/s
		}
		applied, _ = ctl.Applied("stage")
		ctl.Stop()
		st.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if applied.Producers < 3 || applied.Producers > 7 {
		t.Fatalf("converged producers = %d, want ≈4 (3..7)", applied.Producers)
	}
}

func TestAutotunerConvergesDownward(t *testing.T) {
	// Start overprovisioned at t=8 with a slow consumer (500/s): the tuner
	// must shed producers.
	s := sim.New()
	env := conc.NewSimEnv(s)
	var applied Tuning
	s.Spawn("driver", func(p *sim.Process) {
		st, names := buildStage(env, 1500, time.Millisecond, 8)
		ctl := NewController(env, 50*time.Millisecond)
		_ = ctl.Attach("stage", st, NewAutotuner(), DefaultPolicy(), Tuning{Producers: 8, BufferCapacity: 16})
		ctl.Start()
		_ = st.SubmitPlan(names)
		for _, n := range names {
			if _, err := st.Read(n); err != nil {
				t.Errorf("Read(%s): %v", n, err)
				break
			}
			env.Sleep(2 * time.Millisecond) // 500/s
		}
		applied, _ = ctl.Applied("stage")
		ctl.Stop()
		st.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if applied.Producers > 3 {
		t.Fatalf("converged producers = %d, want <= 3 after down-tuning from 8", applied.Producers)
	}
}

func TestReplicaGroupLeaderAndFailover(t *testing.T) {
	env := conc.NewReal()
	g := NewReplicaGroup(env, time.Second, 3)
	dp := &fakeDP{}
	if err := g.Attach("s1", dp, func() Algorithm { return NewAutotuner() }, DefaultPolicy(), Tuning{Producers: 1, BufferCapacity: 8}); err != nil {
		t.Fatal(err)
	}
	if g.Leader() != 0 {
		t.Fatalf("Leader = %d, want 0", g.Leader())
	}
	dp.stats = statsAt(time.Second, 500*time.Millisecond, 0, 50, 10)
	if lead := g.Tick(); lead != 0 {
		t.Fatalf("Tick executed by %d, want 0", lead)
	}
	g.Fail(0)
	if g.Leader() != 1 {
		t.Fatalf("Leader after Fail(0) = %d, want 1", g.Leader())
	}
	dp.stats = statsAt(2*time.Second, time.Second, 0, 50, 20)
	if lead := g.Tick(); lead != 1 {
		t.Fatalf("Tick executed by %d, want 1", lead)
	}
	if g.Failovers() != 1 {
		t.Fatalf("Failovers = %d, want 1", g.Failovers())
	}
	// Replica 1 continued enforcement: it must have raised producers.
	tun, ok := g.Replica(1).Applied("s1")
	if !ok || tun.Producers < 2 {
		t.Fatalf("replica 1 Applied = %+v, %v", tun, ok)
	}
	g.Recover(0)
	if g.Leader() != 0 {
		t.Fatalf("Leader after Recover(0) = %d, want 0", g.Leader())
	}
}

func TestReplicaGroupFailoverDuringTraining(t *testing.T) {
	// Chaos scenario: the leader controller dies mid-run; the backup must
	// keep tuning the live workload without the consumer noticing.
	s := sim.New()
	env := conc.NewSimEnv(s)
	var consumed int
	var backupDecisions int
	s.Spawn("driver", func(p *sim.Process) {
		st, names := buildStage(env, 4000, time.Millisecond, 8)
		g := NewReplicaGroup(env, 50*time.Millisecond, 2)
		if err := g.Attach("stage", st, func() Algorithm { return NewAutotuner() }, DefaultPolicy(), Tuning{Producers: 1, BufferCapacity: 16}); err != nil {
			t.Error(err)
			return
		}
		g.Start()
		_ = st.SubmitPlan(names)
		for i, n := range names {
			if i == len(names)/3 {
				g.Fail(0) // leader dies one third of the way in
			}
			if _, err := st.Read(n); err != nil {
				t.Errorf("Read(%s): %v", n, err)
				break
			}
			consumed++
			env.Sleep(250 * time.Microsecond)
		}
		g.Stop()
		backupDecisions = len(g.Replica(1).History("stage"))
		st.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if consumed != 4000 {
		t.Fatalf("consumed %d, want 4000 (training survived failover)", consumed)
	}
	if backupDecisions == 0 {
		t.Fatal("backup controller never made a tuning decision after failover")
	}
}

func TestReplicaGroupAllDead(t *testing.T) {
	g := NewReplicaGroup(conc.NewReal(), time.Second, 2)
	g.Fail(0)
	g.Fail(1)
	if g.Leader() != -1 {
		t.Fatalf("Leader = %d, want -1", g.Leader())
	}
	if lead := g.Tick(); lead != -1 {
		t.Fatalf("Tick = %d, want -1", lead)
	}
}

func TestReplicaGroupValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty group")
		}
	}()
	NewReplicaGroup(conc.NewReal(), time.Second, 0)
}

// TestCapacityHalvingNeverWedgesProducers hammers the shrink path the
// autotuner exercises when it halves N mid-epoch: a consumer reads through
// the stage while a controller thread repeatedly halves and restores the
// buffer capacity. If a shrink below the current occupancy could wedge a
// blocked producer (or strand a waiting consumer), the deterministic sim
// run would end in a detected deadlock.
func TestCapacityHalvingNeverWedgesProducers(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	consumed := 0
	s.Spawn("driver", func(p *sim.Process) {
		st, names := buildStage(env, 2000, time.Millisecond, 8)
		st.SetProducers(8)
		stop := false
		env.Go("capacity-halver", func() {
			n := 16
			for !stop {
				n /= 2
				if n < 1 {
					n = 16
				}
				st.SetBufferCapacity(n)
				env.Sleep(10 * time.Millisecond)
			}
		})
		_ = st.SubmitPlan(names)
		for _, n := range names {
			if _, err := st.Read(n); err != nil {
				t.Errorf("Read(%s): %v", n, err)
				break
			}
			consumed++
		}
		stop = true
		st.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err) // a wedged producer surfaces as a sim deadlock here
	}
	if consumed != 2000 {
		t.Fatalf("consumed %d of 2000 samples", consumed)
	}
}

// TestMonitorBufferTakesRate checks the shard-aggregated Takes counter
// flows into the monitor's derived rates.
func TestMonitorBufferTakesRate(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	var rates Rates
	var ok bool
	s.Spawn("driver", func(p *sim.Process) {
		m := NewMonitor(env, 16)
		var stats core.StageStats
		stats.Buffer.Takes = 0
		m.Record("s1", stats)
		env.Sleep(time.Second)
		stats.Buffer.Takes = 500
		m.Record("s1", stats)
		rates, ok = m.Rate("s1", time.Minute)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Rate unavailable with two snapshots")
	}
	if rates.BufferTakesPerSec < 499 || rates.BufferTakesPerSec > 501 {
		t.Fatalf("BufferTakesPerSec = %v, want ≈500", rates.BufferTakesPerSec)
	}
}
