package control

import "github.com/dsrhaslab/prisma-go/internal/core"

// RemoteStage is the fallible control interface a remote node exposes —
// the subset of the IPC client (Stats/SetProducers/SetBufferCapacity over
// the socket) the control plane needs. Declared here as an interface so
// control stays decoupled from the transport package.
type RemoteStage interface {
	Stats() (core.StageStats, error)
	SetProducers(n int) error
	SetBufferCapacity(n int) error
}

// RemoteAdapter adapts a RemoteStage to the infallible DataPlane interface
// controllers and coordinators drive: transport errors are counted and
// absorbed — Stats returns the last good snapshot (so a tuner's deltas
// freeze rather than wildly swing during a node blackout) and knob writes
// are dropped (the next round re-applies them; knobs are absolute values).
// This is what lets the centralized and replicated cluster control planes
// run unchanged over real prisma-server nodes.
type RemoteAdapter struct {
	rs RemoteStage

	// Snapshot state is only touched from control-plane ticks, which are
	// serialized per controller, but Attach-time reads can race a started
	// loop, so guard anyway via a plain mutex-free design: ticks own it.
	last   core.StageStats
	seeded bool
	errs   int64
}

// NewRemoteAdapter wraps a remote node's control connection.
func NewRemoteAdapter(rs RemoteStage) *RemoteAdapter {
	return &RemoteAdapter{rs: rs}
}

// Stats implements DataPlane. On a transport failure it returns the last
// successful snapshot (the zero snapshot before any success), so delta-
// based tuners see a quiet stage rather than garbage.
func (a *RemoteAdapter) Stats() core.StageStats {
	s, err := a.rs.Stats()
	if err != nil {
		a.errs++
		return a.last
	}
	a.last = s
	a.seeded = true
	return s
}

// SetProducers implements DataPlane; a transport failure is counted and
// dropped (the knob is absolute — the next round re-applies it).
func (a *RemoteAdapter) SetProducers(n int) {
	if err := a.rs.SetProducers(n); err != nil {
		a.errs++
	}
}

// SetBufferCapacity implements DataPlane; failures are counted and
// dropped like SetProducers.
func (a *RemoteAdapter) SetBufferCapacity(n int) {
	if err := a.rs.SetBufferCapacity(n); err != nil {
		a.errs++
	}
}

// Errors reports how many remote control calls failed and were absorbed.
func (a *RemoteAdapter) Errors() int64 { return a.errs }

// compile-time check: the adapter satisfies the control interface.
var _ DataPlane = (*RemoteAdapter)(nil)
