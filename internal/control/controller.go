package control

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
)

// managedStage is a stage under a controller's supervision.
type managedStage struct {
	id        string
	dp        DataPlane
	alg       Algorithm
	pol       Policy
	prev      core.StageStats
	applied   Tuning
	history   []TuningDecision
	decisions []DecisionRecord // bounded audit ring, see decisions.go
	consumers int              // attribution denominator (0 -> 1)
}

// TuningDecision records one control action for observability.
type TuningDecision struct {
	At     time.Duration
	Stage  string
	Before Tuning
	After  Tuning
}

// Controller is one (logical) control-plane instance. It periodically
// collects monitoring snapshots from attached stages and applies its
// control algorithms' decisions. A Controller can run autonomously
// (Start/Stop) or be stepped manually (Tick), which the deterministic
// experiment harness uses.
type Controller struct {
	env      conc.Env
	interval time.Duration

	mu      conc.Mutex
	stages  map[string]*managedStage
	order   []string // deterministic iteration order
	started bool
	stopped bool
	ticks   int64
	monitor *Monitor // optional, see EnableMonitoring
}

// NewController creates a controller ticking every interval once started.
func NewController(env conc.Env, interval time.Duration) *Controller {
	if interval <= 0 {
		panic("control: non-positive control interval")
	}
	return &Controller{
		env:      env,
		interval: interval,
		mu:       env.NewMutex(),
		stages:   make(map[string]*managedStage),
	}
}

// Attach registers a stage under id with its algorithm and policy. The
// initial tuning is applied immediately.
func (c *Controller) Attach(id string, dp DataPlane, alg Algorithm, pol Policy, initial Tuning) error {
	if err := pol.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.stages[id]; dup {
		return fmt.Errorf("control: stage %q already attached", id)
	}
	initial = pol.Clamp(initial)
	ms := &managedStage{id: id, dp: dp, alg: alg, pol: pol, applied: initial}
	ms.prev = dp.Stats()
	c.stages[id] = ms
	c.order = append(c.order, id)
	dp.SetProducers(initial.Producers)
	dp.SetBufferCapacity(initial.BufferCapacity)
	return nil
}

// Detach removes a stage from supervision.
func (c *Controller) Detach(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.stages[id]; !ok {
		return
	}
	delete(c.stages, id)
	for i, sid := range c.order {
		if sid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Stages reports the attached stage ids in attachment order.
func (c *Controller) Stages() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Tick performs one control round over all attached stages.
func (c *Controller) Tick() {
	c.mu.Lock()
	ids := make([]string, len(c.order))
	copy(ids, c.order)
	c.ticks++
	mon := c.monitor
	c.mu.Unlock()

	for _, id := range ids {
		c.mu.Lock()
		ms, ok := c.stages[id]
		c.mu.Unlock()
		if !ok {
			continue
		}
		cur := ms.dp.Stats()
		if mon != nil {
			mon.Record(id, cur)
		}
		next := ms.pol.Clamp(ms.alg.Decide(ms.prev, cur, ms.applied, ms.pol))
		changed := next != ms.applied
		if changed {
			ms.dp.SetProducers(next.Producers)
			ms.dp.SetBufferCapacity(next.BufferCapacity)
		}
		rule := "hold"
		if changed {
			rule = "adjust"
		}
		if rr, ok := ms.alg.(RuleReporter); ok {
			rule = rr.LastRule()
		}
		consumers := ms.consumers
		if consumers < 1 {
			consumers = 1
		}
		rec := DecisionRecord{
			At:     c.env.Now(),
			Stage:  id,
			Rule:   rule,
			Before: ms.applied,
			After:  next,
			Inputs: decisionInputs(ms.prev, cur, ms.applied),
			Attrib: intervalAttribution(ms.prev, cur, consumers),
		}
		c.mu.Lock()
		rec.Tick = c.ticks
		ms.recordDecision(rec)
		if changed {
			ms.history = append(ms.history, TuningDecision{
				At:     rec.At,
				Stage:  id,
				Before: ms.applied,
				After:  next,
			})
		}
		// Applied/prev flip under the lock: RecordEvent reads ms.applied
		// concurrently from SLO-action callbacks.
		ms.applied = next
		ms.prev = cur
		c.mu.Unlock()
	}
}

// Ticks reports the number of completed control rounds.
func (c *Controller) Ticks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}

// Applied reports the tuning currently applied to stage id.
func (c *Controller) Applied(id string) (Tuning, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ms, ok := c.stages[id]
	if !ok {
		return Tuning{}, false
	}
	return ms.applied, true
}

// History returns the tuning decisions recorded for stage id.
func (c *Controller) History(id string) []TuningDecision {
	c.mu.Lock()
	defer c.mu.Unlock()
	ms, ok := c.stages[id]
	if !ok {
		return nil
	}
	out := make([]TuningDecision, len(ms.history))
	copy(out, ms.history)
	return out
}

// Start launches the autonomous control loop on a thread of the
// environment. It may be called at most once.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		panic("control: controller started twice")
	}
	c.started = true
	c.mu.Unlock()
	c.env.Go("prisma-controller", func() {
		for {
			c.env.Sleep(c.interval)
			c.mu.Lock()
			stopped := c.stopped
			c.mu.Unlock()
			if stopped {
				return
			}
			c.Tick()
		}
	})
}

// Stop terminates the autonomous loop after its current sleep. Safe to call
// without Start and more than once.
func (c *Controller) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
}
