package control

import (
	"time"

	"github.com/dsrhaslab/prisma-go/internal/core"
)

// Autotuner is the feedback control loop of paper §IV: it observes buffer
// statistics over each control interval and adjusts t (producers) and N
// (buffer capacity) until the configuration balances performance against
// resource usage.
//
// Signals per interval:
//
//   - starvation — cumulative time consumers spent blocked in Take divided
//     by the interval. High starvation means producers cannot keep up:
//     raise t, and (policy permitting) double N once t is at its ceiling.
//   - producer idleness — cumulative time producers spent blocked on a
//     full buffer, divided by (interval × t). High idleness with no
//     starvation means the stage is overprovisioned: lower t.
//
// A hysteresis band between StarvationLow and StarvationHigh prevents
// oscillation; idle intervals with an empty prefetch queue (epoch
// boundaries) are ignored because producer idleness then reflects missing
// work, not overprovisioning; and a plateau detector steps t back when a
// raise produced no throughput gain — the case where the *device*, not the
// thread count, is the bottleneck. The plateau detector is what keeps
// PRISMA at a handful of threads where TensorFlow's intrinsic tuner pins
// thirty (Fig. 3): beyond the device's internal parallelism, more reader
// threads add nothing, and starvation alone cannot tell the difference.
//
// Autotuner is stateful (it remembers the throughput consequence of its
// last action); use one instance per attached stage.
type Autotuner struct {
	lastRaised   bool    // previous decision raised t
	lastRate     float64 // takes/sec observed before the raise
	plateauAt    int     // producer count beyond which no gain was seen (0 = none)
	plateauUntil int64   // consecutive calm intervals before retrying above the plateau
	lastRule     string  // rule that fired on the most recent Decide (audit log)
}

// NewAutotuner returns a fresh feedback controller.
func NewAutotuner() *Autotuner { return &Autotuner{} }

// Name implements Algorithm.
func (a *Autotuner) Name() string { return "prisma-autotune" }

// LastRule implements RuleReporter: the audit-log name of the rule that
// produced the most recent Decide outcome.
func (a *Autotuner) LastRule() string {
	if a.lastRule == "" {
		return "hold"
	}
	return a.lastRule
}

// Decide implements Algorithm.
func (a *Autotuner) Decide(prev, cur core.StageStats, applied Tuning, pol Policy) Tuning {
	a.lastRule = "hold"
	next := pol.Clamp(applied)
	interval := cur.Now - prev.Now
	if interval <= 0 {
		return next
	}

	// Degraded mode: the storage backend's circuit breaker is open (or
	// half-open), so extra reader threads would only pile retries onto a
	// failing device. Back t off one step per interval and skip the normal
	// signals; tuning resumes once the breaker closes.
	if cur.Resilience.Degraded {
		next.Producers--
		a.lastRaised = false
		a.lastRule = "degraded-backoff"
		return pol.Clamp(next)
	}

	consumerWait := cur.Buffer.ConsumerWait - prev.Buffer.ConsumerWait
	producerWait := cur.Buffer.ProducerWait - prev.Buffer.ProducerWait
	starvation := float64(consumerWait) / float64(interval)
	producers := applied.Producers
	if producers < 1 {
		producers = 1
	}
	idle := float64(producerWait) / (float64(interval) * float64(producers))
	rate := float64(cur.Buffer.Takes-prev.Buffer.Takes) / interval.Seconds()

	// Evaluate the consequence of the previous raise: if throughput did
	// not improve meaningfully, the bottleneck is elsewhere (device
	// parallelism, consumer); undo the raise and remember the plateau.
	if a.lastRaised {
		a.lastRaised = false
		if rate > 0 && rate <= a.lastRate*1.03 {
			next.Producers--
			next = pol.Clamp(next)
			a.plateauAt = next.Producers
			a.lastRule = "plateau-undo"
			return next
		}
	}

	switch {
	case starvation > pol.StarvationHigh:
		atPlateau := a.plateauAt > 0 && next.Producers >= a.plateauAt
		if next.Producers < pol.MaxProducers && !atPlateau {
			next.Producers++
			a.lastRaised = true
			a.lastRate = rate
			a.lastRule = "raise-producers"
		} else if pol.GrowBufferOnStarvation && next.BufferCapacity < pol.MaxBuffer {
			next.BufferCapacity *= 2
			a.lastRule = "grow-buffer"
		}
	case starvation < pol.StarvationLow && idle > pol.ProducerIdleHigh && cur.QueueLen > 0:
		// Overprovisioned and there is pending work (so the idleness is
		// genuine back-pressure, not an epoch boundary).
		next.Producers--
		a.plateauAt = 0 // the workload eased; allow future exploration
		a.lastRule = "lower-producers"
	}
	return pol.Clamp(next)
}

// progressed is a small helper reporting whether any consumption happened
// in the interval; exposed for tests of tuning edge cases.
func progressed(prev, cur core.StageStats) bool {
	return cur.Buffer.Takes > prev.Buffer.Takes
}

// GrowthAlgorithm mimics the essence of TensorFlow's prefetch autotuner
// (tensorflow/core/kernels/data/prefetch_autotuner.cc): it only ever grows —
// the buffer doubles whenever the consumer found it empty during the
// interval — and it pins parallelism at the policy maximum, the
// overprovisioning behaviour the paper measures in Figure 3.
type GrowthAlgorithm struct{}

// Name implements Algorithm.
func (GrowthAlgorithm) Name() string { return "tf-growth" }

// Decide implements Algorithm.
func (GrowthAlgorithm) Decide(prev, cur core.StageStats, applied Tuning, pol Policy) Tuning {
	next := applied
	next.Producers = pol.MaxProducers
	if cur.Buffer.ConsumerWait > prev.Buffer.ConsumerWait && progressed(prev, cur) {
		next.BufferCapacity *= 2
	}
	return pol.Clamp(next)
}

// Interval guidance: control decisions should observe enough activity to
// be meaningful. DefaultControlInterval trades reactivity against noise at
// the paper's request rates (hundreds to thousands of reads per second).
const DefaultControlInterval = 500 * time.Millisecond
