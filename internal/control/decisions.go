package control

import (
	"time"

	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/obs"
)

// decisionLogCap bounds the per-stage decision audit ring.
const decisionLogCap = 256

// RuleReporter is the optional interface a control algorithm implements to
// name the rule behind its latest Decide outcome — the audit log records it
// verbatim. Algorithms without it are logged as "adjust"/"hold" depending
// on whether the tuning changed.
type RuleReporter interface {
	LastRule() string
}

// DecisionInputs are the monitoring signals a control algorithm saw when it
// decided — enough to reconstruct why a rule fired.
type DecisionInputs struct {
	// Interval is the observation window between the two snapshots.
	Interval time.Duration `json:"interval"`
	// Starvation is consumer Take-blocked time divided by the interval.
	Starvation float64 `json:"starvation"`
	// ProducerIdle is producer full-buffer-blocked time divided by
	// (interval x producers).
	ProducerIdle float64 `json:"producer_idle"`
	// TakesPerSec is the buffer consumption rate over the interval.
	TakesPerSec float64 `json:"takes_per_sec"`
	// QueueLen is the pending prefetch backlog at decision time.
	QueueLen int `json:"queue_len"`
	// Degraded reports whether the storage circuit breaker was shedding.
	Degraded bool `json:"degraded"`
}

// DecisionRecord is one audit-log entry: every control tick appends one,
// whether or not the tuning changed, so the trail shows both actions and
// deliberate holds alongside the latency attribution that justified them.
type DecisionRecord struct {
	At     time.Duration   `json:"at"`
	Tick   int64           `json:"tick"`
	Stage  string          `json:"stage"`
	Rule   string          `json:"rule"`
	Before Tuning          `json:"before"`
	After  Tuning          `json:"after"`
	Inputs DecisionInputs  `json:"inputs"`
	Attrib obs.Attribution `json:"attribution"`
}

// decisionInputs derives the audit-log signal view from an interval's
// snapshot pair (mirroring the autotuner's own arithmetic).
func decisionInputs(prev, cur core.StageStats, applied Tuning) DecisionInputs {
	in := DecisionInputs{
		Interval: cur.Now - prev.Now,
		QueueLen: cur.QueueLen,
		Degraded: cur.Resilience.Degraded,
	}
	if in.Interval <= 0 {
		return in
	}
	producers := applied.Producers
	if producers < 1 {
		producers = 1
	}
	in.Starvation = float64(cur.Buffer.ConsumerWait-prev.Buffer.ConsumerWait) / float64(in.Interval)
	in.ProducerIdle = float64(cur.Buffer.ProducerWait-prev.Buffer.ProducerWait) /
		(float64(in.Interval) * float64(producers))
	in.TakesPerSec = float64(cur.Buffer.Takes-prev.Buffer.Takes) / in.Interval.Seconds()
	return in
}

// intervalAttribution computes the latency attribution for the interval
// between two snapshots. Consumers < 1 defaults to one consumer (the
// control plane cannot see how many processes sit behind the IPC server).
func intervalAttribution(prev, cur core.StageStats, consumers int) obs.Attribution {
	return obs.Attribute(obs.AttributionInput{
		Window:       cur.Now - prev.Now,
		Consumers:    consumers,
		ConsumerWait: cur.Buffer.ConsumerWait - prev.Buffer.ConsumerWait,
		StorageWait:  cur.Buffer.ConsumerWaitStorage - prev.Buffer.ConsumerWaitStorage,
		BufferWait:   cur.Buffer.ConsumerWaitBufferFull - prev.Buffer.ConsumerWaitBufferFull,
		CacheWait:    cur.Cache.WaitTime - prev.Cache.WaitTime,
		TierWait:     (cur.Tiering.PromoteTime + cur.Tiering.DecodeTime) - (prev.Tiering.PromoteTime + prev.Tiering.DecodeTime),
		ThrottleWait: cur.ThrottleWait - prev.ThrottleWait,
		StorageBusy:  cur.StorageBusy - prev.StorageBusy,
		ProducerPark: cur.Buffer.ProducerWait - prev.Buffer.ProducerWait,
	})
}

// recordDecision appends one audit entry to the stage's bounded ring.
// Caller holds c.mu.
func (ms *managedStage) recordDecision(rec DecisionRecord) {
	ms.decisions = append(ms.decisions, rec)
	if len(ms.decisions) > decisionLogCap {
		ms.decisions = ms.decisions[len(ms.decisions)-decisionLogCap:]
	}
}

// RecordEvent appends an externally-originated control action — e.g. a
// tenancy SLO breach boost — to stage id's decision audit ring, so every
// control-plane actuation lands in one explainable trail. Before/After
// carry the currently applied tuning (the event did not retune the stage);
// the rule string names what happened.
func (c *Controller) RecordEvent(id, rule string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ms, ok := c.stages[id]
	if !ok {
		return
	}
	ms.recordDecision(DecisionRecord{
		At:     c.env.Now(),
		Tick:   c.ticks,
		Stage:  id,
		Rule:   rule,
		Before: ms.applied,
		After:  ms.applied,
	})
}

// Decisions returns the retained decision audit log for stage id, oldest
// first.
func (c *Controller) Decisions(id string) []DecisionRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	ms, ok := c.stages[id]
	if !ok {
		return nil
	}
	out := make([]DecisionRecord, len(ms.decisions))
	copy(out, ms.decisions)
	return out
}

// SetConsumers declares how many consumer threads/processes stage id
// serves, so interval attributions use the right denominator. Defaults to
// one.
func (c *Controller) SetConsumers(id string, n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ms, ok := c.stages[id]; ok {
		ms.consumers = n
	}
}
