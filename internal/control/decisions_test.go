package control

import (
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/sim"
)

// monitorAt runs fn inside a sim process with a fresh monitor, so snapshot
// timestamps are exact virtual instants.
func monitorAt(t *testing.T, fn func(env conc.Env, m *Monitor)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("monitor-test", func(*sim.Process) {
		fn(env, NewMonitor(env, 64))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func rateStats(reads, takes int64, wait time.Duration) core.StageStats {
	st := core.StageStats{Reads: reads}
	st.Buffer.Takes = takes
	st.Buffer.ConsumerWait = wait
	return st
}

// TestRateWindowShorterThanInterval: asking for a 100ms window when
// snapshots arrive every second widens to the last snapshot pair instead of
// failing (the /stats dashboard's "last interval" view).
func TestRateWindowShorterThanInterval(t *testing.T) {
	monitorAt(t, func(env conc.Env, m *Monitor) {
		m.Record("s", rateStats(0, 0, 0))
		env.Sleep(time.Second)
		m.Record("s", rateStats(1000, 900, 0))
		env.Sleep(time.Second)
		m.Record("s", rateStats(3000, 2800, 0))

		r, ok := m.Rate("s", 100*time.Millisecond)
		if !ok {
			t.Fatal("Rate not ok with 3 snapshots")
		}
		if r.Window != time.Second {
			t.Errorf("Window = %v, want 1s (widened to the last pair)", r.Window)
		}
		if r.ReadsPerSec != 2000 {
			t.Errorf("ReadsPerSec = %v, want 2000 (the last interval's delta)", r.ReadsPerSec)
		}
		if r.BufferTakesPerSec != 1900 {
			t.Errorf("BufferTakesPerSec = %v, want 1900", r.BufferTakesPerSec)
		}
	})
}

// TestRateSingleSnapshotNotOK: one snapshot cannot produce a rate.
func TestRateSingleSnapshotNotOK(t *testing.T) {
	monitorAt(t, func(env conc.Env, m *Monitor) {
		m.Record("s", rateStats(100, 0, 0))
		if _, ok := m.Rate("s", time.Second); ok {
			t.Error("Rate ok with a single snapshot")
		}
		if _, ok := m.Rate("missing", time.Second); ok {
			t.Error("Rate ok for an unknown stage")
		}
	})
}

// TestRateCounterReset: a stage restart resets its counters; the rate window
// must start after the reset, never reporting negative deltas.
func TestRateCounterReset(t *testing.T) {
	monitorAt(t, func(env conc.Env, m *Monitor) {
		m.Record("s", rateStats(0, 0, 0))
		env.Sleep(time.Second)
		m.Record("s", rateStats(5000, 4000, time.Second))
		env.Sleep(time.Second)
		m.Record("s", rateStats(40, 30, time.Millisecond)) // restarted: counters fresh
		env.Sleep(time.Second)
		m.Record("s", rateStats(140, 120, 2*time.Millisecond))

		r, ok := m.Rate("s", 10*time.Second)
		if !ok {
			t.Fatal("Rate not ok across a counter reset")
		}
		if r.ReadsPerSec < 0 || r.BufferTakesPerSec < 0 {
			t.Fatalf("negative rate across restart: %+v", r)
		}
		// The pair must span only the post-restart snapshots.
		if r.Window != time.Second {
			t.Errorf("Window = %v, want 1s (post-restart span)", r.Window)
		}
		if r.ReadsPerSec != 100 {
			t.Errorf("ReadsPerSec = %v, want 100 (post-restart delta)", r.ReadsPerSec)
		}
	})
}

// TestRateResetAtTailNotOK: when the reset happens at the newest snapshot
// there is no usable post-reset pair yet.
func TestRateResetAtTailNotOK(t *testing.T) {
	monitorAt(t, func(env conc.Env, m *Monitor) {
		m.Record("s", rateStats(1000, 900, time.Second))
		env.Sleep(time.Second)
		m.Record("s", rateStats(10, 5, 0)) // reset is the newest point
		if _, ok := m.Rate("s", 10*time.Second); ok {
			t.Error("Rate ok when the only pair crosses the reset")
		}
	})
}

// TestMonitorAttribution: the monitor's windowed attribution matches the
// interval's counter deltas.
func TestMonitorAttribution(t *testing.T) {
	monitorAt(t, func(env conc.Env, m *Monitor) {
		a := core.StageStats{Now: env.Now()}
		m.Record("s", a)
		env.Sleep(time.Second)
		b := core.StageStats{Now: env.Now(), StorageBusy: 800 * time.Millisecond}
		b.Buffer.ConsumerWait = 600 * time.Millisecond
		b.Buffer.ConsumerWaitStorage = 500 * time.Millisecond
		b.Buffer.ConsumerWaitBufferFull = 100 * time.Millisecond
		m.Record("s", b)

		at, ok := m.Attribution("s", time.Second, 1)
		if !ok {
			t.Fatal("Attribution not ok")
		}
		if at.StorageShare != 0.5 {
			t.Errorf("StorageShare = %v, want 0.5", at.StorageShare)
		}
		if at.BufferFullShare != 0.1 {
			t.Errorf("BufferFullShare = %v, want 0.1", at.BufferFullShare)
		}
		if got := at.StorageShare + at.BufferFullShare + at.IPCShare + at.ConsumerShare; got != 1 {
			t.Errorf("shares sum to %v", got)
		}
	})
}

// TestDecisionTrailCoherent runs the full feedback loop over a starved data
// plane and audits the decision log: one record per tick, monotone tick
// numbers, a contiguous before/after tuning chain, holds that hold, and the
// starvation-driven raise-producers rule actually firing with starvation
// visible in its recorded inputs.
func TestDecisionTrailCoherent(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	var recs []DecisionRecord
	var ticks int64
	s.Spawn("driver", func(*sim.Process) {
		st, names := buildStage(env, 4000, time.Millisecond, 8)
		ctl := NewController(env, 50*time.Millisecond)
		_ = ctl.Attach("stage", st, NewAutotuner(), DefaultPolicy(), Tuning{Producers: 1, BufferCapacity: 16})
		ctl.Start()
		_ = st.SubmitPlan(names)
		for _, n := range names {
			if _, err := st.Read(n); err != nil {
				t.Errorf("Read(%s): %v", n, err)
				break
			}
			env.Sleep(250 * time.Microsecond)
		}
		recs = ctl.Decisions("stage")
		ticks = ctl.Ticks()
		ctl.Stop()
		st.Close()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	if len(recs) == 0 {
		t.Fatal("no decisions recorded")
	}
	if int64(len(recs)) > ticks {
		t.Fatalf("%d records for %d ticks", len(recs), ticks)
	}
	if len(recs) > decisionLogCap {
		t.Fatalf("log grew past its cap: %d > %d", len(recs), decisionLogCap)
	}
	raised := false
	for i, r := range recs {
		if r.Stage != "stage" {
			t.Fatalf("record %d names stage %q", i, r.Stage)
		}
		if i > 0 {
			if r.Tick <= recs[i-1].Tick {
				t.Fatalf("tick numbers not increasing at record %d: %d then %d", i, recs[i-1].Tick, r.Tick)
			}
			if r.Before != recs[i-1].After {
				t.Fatalf("tuning chain broken at record %d: before %+v, previous after %+v",
					i, r.Before, recs[i-1].After)
			}
		}
		switch r.Rule {
		case "hold":
			if r.Before != r.After {
				t.Fatalf("record %d: rule hold but tuning changed %+v -> %+v", i, r.Before, r.After)
			}
		case "raise-producers":
			raised = true
			if r.After.Producers <= r.Before.Producers {
				t.Fatalf("record %d: raise-producers but t %d -> %d", i, r.Before.Producers, r.After.Producers)
			}
			if r.Inputs.Starvation <= 0 {
				t.Fatalf("record %d: raise-producers with zero recorded starvation", i)
			}
		default:
			if r.Before == r.After && r.Rule != "plateau-undo" {
				t.Fatalf("record %d: rule %q but tuning unchanged", i, r.Rule)
			}
		}
		sum := r.Attrib.StorageShare + r.Attrib.BufferFullShare + r.Attrib.IPCShare + r.Attrib.ConsumerShare
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("record %d: attribution shares sum to %v", i, sum)
		}
	}
	if !raised {
		t.Error("starved run never fired raise-producers")
	}
}
