// Package control implements the PRISMA control plane (paper §III, §IV):
// a logically centralized component that monitors data-plane stages through
// their control interfaces, and enforces storage policies by adjusting the
// stages' tuning knobs — the number of producer threads t and the buffer
// capacity N. The headline control algorithm is a feedback loop
// (Autotuner) that converges to the smallest configuration sustaining the
// workload, avoiding the thread overprovisioning the paper measures in
// TensorFlow's intrinsic autotuning (Fig. 3).
package control

import (
	"fmt"

	"github.com/dsrhaslab/prisma-go/internal/core"
)

// DataPlane is the control interface a data-plane stage exposes to the
// control plane: monitoring (Stats) plus the two tuning knobs.
type DataPlane interface {
	Stats() core.StageStats
	SetProducers(n int)
	SetBufferCapacity(n int)
}

// Tuning is a concrete knob setting for one stage.
type Tuning struct {
	Producers      int // t
	BufferCapacity int // N
}

// Policy is the user-defined envelope a control algorithm must respect,
// plus the thresholds steering the feedback loop. Policies are what make
// optimizations adaptable without touching data-plane code (paper §III).
type Policy struct {
	// Bounds for the knobs.
	MinProducers, MaxProducers int
	MinBuffer, MaxBuffer       int

	// StarvationHigh: fraction of the control interval consumers spent
	// blocked on the buffer above which t is raised.
	StarvationHigh float64
	// StarvationLow: starvation fraction below which down-tuning may be
	// considered (hysteresis band between Low and High).
	StarvationLow float64
	// ProducerIdleHigh: per-producer fraction of the interval spent
	// blocked on a full buffer above which t is lowered.
	ProducerIdleHigh float64
	// GrowBufferOnStarvation doubles N (TensorFlow-autotuner style) when
	// starvation persists at the producer ceiling.
	GrowBufferOnStarvation bool
}

// DefaultPolicy returns the prototype's tuning envelope.
func DefaultPolicy() Policy {
	return Policy{
		MinProducers:           1,
		MaxProducers:           32,
		MinBuffer:              4,
		MaxBuffer:              4096,
		StarvationHigh:         0.05,
		StarvationLow:          0.01,
		ProducerIdleHigh:       0.50,
		GrowBufferOnStarvation: true,
	}
}

// Validate reports whether the policy is self-consistent.
func (p Policy) Validate() error {
	if p.MinProducers < 1 || p.MaxProducers < p.MinProducers {
		return fmt.Errorf("control: bad producer bounds [%d, %d]", p.MinProducers, p.MaxProducers)
	}
	if p.MinBuffer < 1 || p.MaxBuffer < p.MinBuffer {
		return fmt.Errorf("control: bad buffer bounds [%d, %d]", p.MinBuffer, p.MaxBuffer)
	}
	if p.StarvationHigh <= 0 || p.StarvationLow < 0 || p.StarvationLow >= p.StarvationHigh {
		return fmt.Errorf("control: bad starvation band [%v, %v]", p.StarvationLow, p.StarvationHigh)
	}
	if p.ProducerIdleHigh <= 0 || p.ProducerIdleHigh > 1 {
		return fmt.Errorf("control: bad producer idle threshold %v", p.ProducerIdleHigh)
	}
	return nil
}

// Clamp forces a tuning into the policy envelope.
func (p Policy) Clamp(t Tuning) Tuning {
	if t.Producers < p.MinProducers {
		t.Producers = p.MinProducers
	}
	if t.Producers > p.MaxProducers {
		t.Producers = p.MaxProducers
	}
	if t.BufferCapacity < p.MinBuffer {
		t.BufferCapacity = p.MinBuffer
	}
	if t.BufferCapacity > p.MaxBuffer {
		t.BufferCapacity = p.MaxBuffer
	}
	return t
}

// Algorithm is a pluggable centralized control algorithm: given the
// previous and current stage snapshots and the currently applied tuning,
// it returns the next tuning. Implementations must be pure functions of
// their inputs so controllers can be replicated and replayed.
type Algorithm interface {
	Name() string
	Decide(prev, cur core.StageStats, applied Tuning, pol Policy) Tuning
}

// StaticAlgorithm pins the knobs to fixed values (the "manually tuned"
// baseline in ablations).
type StaticAlgorithm struct{ Fixed Tuning }

// Name implements Algorithm.
func (s StaticAlgorithm) Name() string { return "static" }

// Decide implements Algorithm.
func (s StaticAlgorithm) Decide(prev, cur core.StageStats, applied Tuning, pol Policy) Tuning {
	return pol.Clamp(s.Fixed)
}
