package control

import (
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

func TestAutotunerBacksOffWhenDegraded(t *testing.T) {
	pol := DefaultPolicy()
	prev := statsAt(0, 0, 0, 100, 0)
	// Heavy starvation would normally raise t — but the breaker is open, so
	// the autotuner must shed producers instead of piling on retries.
	cur := statsAt(time.Second, 300*time.Millisecond, 0, 100, 50)
	cur.Resilience = storage.ResilienceStats{State: "open", Degraded: true}
	got := NewAutotuner().Decide(prev, cur, Tuning{Producers: 4, BufferCapacity: 16}, pol)
	if got.Producers != 3 {
		t.Fatalf("Producers = %d, want 3 (degraded back-off)", got.Producers)
	}
	if got.BufferCapacity != 16 {
		t.Fatalf("BufferCapacity = %d, want unchanged 16", got.BufferCapacity)
	}
}

func TestAutotunerDegradedRespectsFloor(t *testing.T) {
	pol := DefaultPolicy()
	pol.MinProducers = 2
	prev := statsAt(0, 0, 0, 100, 0)
	cur := statsAt(time.Second, 0, 0, 100, 50)
	cur.Resilience.Degraded = true
	got := NewAutotuner().Decide(prev, cur, Tuning{Producers: 2, BufferCapacity: 16}, pol)
	if got.Producers != 2 {
		t.Fatalf("Producers = %d, want clamped at floor 2", got.Producers)
	}
}

func TestAutotunerResumesAfterDegradedClears(t *testing.T) {
	pol := DefaultPolicy()
	a := NewAutotuner()
	prev := statsAt(0, 0, 0, 100, 0)
	degraded := statsAt(time.Second, 300*time.Millisecond, 0, 100, 50)
	degraded.Resilience.Degraded = true
	tun := a.Decide(prev, degraded, Tuning{Producers: 4, BufferCapacity: 16}, pol)
	if tun.Producers != 3 {
		t.Fatalf("degraded Producers = %d, want 3", tun.Producers)
	}
	// The breaker closed; the same starvation now raises t again.
	healed := statsAt(2*time.Second, 600*time.Millisecond, 0, 100, 100)
	tun = a.Decide(degraded, healed, tun, pol)
	if tun.Producers != 4 {
		t.Fatalf("healed Producers = %d, want 4 (tuning resumed)", tun.Producers)
	}
}

func TestMonitorDegradedSignalAndRetriesRate(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("driver", func(*sim.Process) {
		m := NewMonitor(env, 16)
		if m.Degraded("s") {
			t.Error("Degraded true with no snapshots")
		}
		if _, ok := m.Resilience("s"); ok {
			t.Error("Resilience ok with no snapshots")
		}
		// 10 retries/s while the breaker is open.
		for i := 0; i <= 2; i++ {
			m.Record("s", core.StageStats{
				Reads: int64(i * 100),
				Resilience: storage.ResilienceStats{
					Retries:  int64(i * 10),
					State:    "open",
					Degraded: true,
				},
			})
			if i < 2 {
				env.Sleep(time.Second)
			}
		}
		if !m.Degraded("s") {
			t.Error("Degraded = false, want true")
		}
		res, ok := m.Resilience("s")
		if !ok || res.State != "open" || res.Retries != 20 {
			t.Errorf("Resilience = %+v ok=%v, want open/20", res, ok)
		}
		r, ok := m.Rate("s", 2*time.Second)
		if !ok {
			t.Fatal("Rate not ok")
		}
		if r.RetriesPerSec < 9.9 || r.RetriesPerSec > 10.1 {
			t.Errorf("RetriesPerSec = %v, want ~10", r.RetriesPerSec)
		}
		// Breaker closes: the signal clears on the next snapshot.
		m.Record("s", core.StageStats{
			Reads:      300,
			Resilience: storage.ResilienceStats{Retries: 20, State: "closed"},
		})
		if m.Degraded("s") {
			t.Error("Degraded = true after breaker closed")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
