package control

import (
	"testing"
	"time"
)

func TestAIMDAdditiveIncrease(t *testing.T) {
	pol := DefaultPolicy()
	a := NewAIMD()
	prev := statsAt(0, 0, 0, 100, 0)
	cur := statsAt(time.Second, 200*time.Millisecond, 0, 100, 500)
	got := a.Decide(prev, cur, Tuning{Producers: 4, BufferCapacity: 16}, pol)
	if got.Producers != 5 {
		t.Fatalf("Producers = %d, want 5", got.Producers)
	}
}

func TestAIMDMultiplicativeDecrease(t *testing.T) {
	pol := DefaultPolicy()
	a := NewAIMD()
	prev := statsAt(0, 0, 0, 100, 0)
	cur := statsAt(time.Second, 0, 7000*time.Millisecond, 100, 500) // 8 producers, ~87% idle
	got := a.Decide(prev, cur, Tuning{Producers: 8, BufferCapacity: 16}, pol)
	if got.Producers != 4 {
		t.Fatalf("Producers = %d, want halved to 4", got.Producers)
	}
}

func TestAIMDBufferGrowthAtCeiling(t *testing.T) {
	pol := DefaultPolicy()
	pol.MaxProducers = 4
	a := NewAIMD()
	prev := statsAt(0, 0, 0, 100, 0)
	cur := statsAt(time.Second, 300*time.Millisecond, 0, 100, 500)
	got := a.Decide(prev, cur, Tuning{Producers: 4, BufferCapacity: 16}, pol)
	if got.Producers != 4 || got.BufferCapacity != 32 {
		t.Fatalf("Decide = %+v, want t=4 N=32", got)
	}
}

func TestAIMDZeroIntervalHolds(t *testing.T) {
	a := NewAIMD()
	s := statsAt(time.Second, time.Second, 0, 10, 1)
	got := a.Decide(s, s, Tuning{Producers: 3, BufferCapacity: 8}, DefaultPolicy())
	if got.Producers != 3 {
		t.Fatalf("Producers = %d, want hold", got.Producers)
	}
}

func TestHillClimbFollowsGradientUp(t *testing.T) {
	pol := DefaultPolicy()
	h := NewHillClimb()
	tun := Tuning{Producers: 2, BufferCapacity: 16}
	// Throughput keeps rising while it climbs.
	rates := []int64{0, 1000, 2200, 3500}
	for i := 1; i < len(rates); i++ {
		prev := statsAt(time.Duration(i-1)*time.Second, 0, 0, 100, rates[i-1])
		cur := statsAt(time.Duration(i)*time.Second, 0, 0, 100, rates[i])
		tun = h.Decide(prev, cur, tun, pol)
	}
	if tun.Producers != 5 {
		t.Fatalf("Producers = %d, want 5 after three upward probes", tun.Producers)
	}
}

func TestHillClimbReversesOnRegression(t *testing.T) {
	pol := DefaultPolicy()
	h := NewHillClimb()
	tun := Tuning{Producers: 4, BufferCapacity: 16}
	// First interval primes at 1000/s and probes up.
	prev := statsAt(0, 0, 0, 100, 0)
	cur := statsAt(time.Second, 0, 0, 100, 1000)
	tun = h.Decide(prev, cur, tun, pol)
	if tun.Producers != 5 {
		t.Fatalf("first probe: %d, want 5", tun.Producers)
	}
	// Throughput collapses: reverse and step down.
	prev = cur
	cur = statsAt(2*time.Second, 0, 0, 100, 1500) // +500/s < 1000/s rate
	tun = h.Decide(prev, cur, tun, pol)
	if tun.Producers != 4 {
		t.Fatalf("after regression: %d, want 4", tun.Producers)
	}
}

func TestHillClimbBouncesOffWalls(t *testing.T) {
	pol := DefaultPolicy()
	pol.MaxProducers = 3
	h := NewHillClimb()
	tun := Tuning{Producers: 3, BufferCapacity: 16}
	prev := statsAt(0, 0, 0, 100, 0)
	cur := statsAt(time.Second, 0, 0, 100, 1000)
	tun = h.Decide(prev, cur, tun, pol)
	if tun.Producers != 3 {
		t.Fatalf("Producers = %d, want clamped 3", tun.Producers)
	}
	// Direction flipped: the next improving interval probes downward.
	prev = cur
	cur = statsAt(2*time.Second, 0, 0, 100, 2100)
	tun = h.Decide(prev, cur, tun, pol)
	if tun.Producers != 2 {
		t.Fatalf("Producers = %d, want 2 after bounce", tun.Producers)
	}
}

func TestHillClimbHoldsOnIdleInterval(t *testing.T) {
	h := NewHillClimb()
	pol := DefaultPolicy()
	prev := statsAt(0, 0, 0, 0, 100)
	cur := statsAt(time.Second, 0, 0, 0, 100) // no takes: epoch boundary
	tun := h.Decide(prev, cur, Tuning{Producers: 4, BufferCapacity: 16}, pol)
	if tun.Producers != 4 {
		t.Fatalf("Producers = %d, want hold", tun.Producers)
	}
}

func TestAlgorithmByName(t *testing.T) {
	for _, name := range []string{"prisma-autotune", "aimd", "hill-climb"} {
		alg, ok := AlgorithmByName(name)
		if !ok || alg.Name() != name {
			t.Errorf("AlgorithmByName(%q) = %v, %v", name, alg, ok)
		}
	}
	if _, ok := AlgorithmByName("nonsense"); ok {
		t.Error("unknown algorithm resolved")
	}
	// Instances must be fresh (stateful algorithms cannot be shared).
	a1, _ := AlgorithmByName("hill-climb")
	a2, _ := AlgorithmByName("hill-climb")
	if a1 == a2 {
		t.Error("factory returned a shared instance")
	}
}
