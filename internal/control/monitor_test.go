package control

import (
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/sim"
)

func TestMonitorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity 1 accepted")
		}
	}()
	NewMonitor(conc.NewReal(), 1)
}

func TestMonitorRingRetention(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("driver", func(*sim.Process) {
		m := NewMonitor(env, 3)
		for i := 0; i < 5; i++ {
			m.Record("s", core.StageStats{Reads: int64(i)})
			env.Sleep(time.Second)
		}
		if m.Len("s") != 3 {
			t.Errorf("Len = %d, want 3", m.Len("s"))
		}
		series := m.Series("s")
		if series[0].Stats.Reads != 2 || series[2].Stats.Reads != 4 {
			t.Errorf("series = %+v, want reads 2..4", series)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorRates(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("driver", func(*sim.Process) {
		m := NewMonitor(env, 16)
		// 100 reads/s, 80% hits, over 4 seconds of snapshots.
		for i := 0; i <= 4; i++ {
			m.Record("s", core.StageStats{
				Reads:  int64(i * 100),
				Hits:   int64(i * 80),
				Errors: int64(i * 2),
			})
			if i < 4 {
				env.Sleep(time.Second)
			}
		}
		r, ok := m.Rate("s", 2*time.Second)
		if !ok {
			t.Error("Rate not available")
			return
		}
		if r.ReadsPerSec < 99 || r.ReadsPerSec > 101 {
			t.Errorf("ReadsPerSec = %v, want ≈100", r.ReadsPerSec)
		}
		if r.HitRate < 0.79 || r.HitRate > 0.81 {
			t.Errorf("HitRate = %v, want 0.8", r.HitRate)
		}
		if r.ErrorRate < 0.019 || r.ErrorRate > 0.021 {
			t.Errorf("ErrorRate = %v, want 0.02", r.ErrorRate)
		}
		// Huge window clamps to retention.
		if _, ok := m.Rate("s", time.Hour); !ok {
			t.Error("wide-window Rate not available")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorRateNeedsTwoPoints(t *testing.T) {
	env := conc.NewReal()
	m := NewMonitor(env, 4)
	if _, ok := m.Rate("s", time.Second); ok {
		t.Fatal("Rate with zero snapshots reported ok")
	}
	m.Record("s", core.StageStats{})
	if _, ok := m.Rate("s", time.Second); ok {
		t.Fatal("Rate with one snapshot reported ok")
	}
}

func TestControllerMonitoringIntegration(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("driver", func(*sim.Process) {
		c := NewController(env, 100*time.Millisecond)
		mon := c.EnableMonitoring(32)
		if c.Monitor() != mon {
			t.Error("Monitor() does not return the attached monitor")
		}
		dp := &fakeDP{}
		_ = c.Attach("s1", dp, NewAutotuner(), DefaultPolicy(), Tuning{Producers: 1, BufferCapacity: 8})
		c.Start()
		for i := 0; i < 10; i++ {
			env.Sleep(100 * time.Millisecond)
			dp.stats.Reads += 50
			dp.stats.Hits += 45
			dp.stats.Now = env.Now()
		}
		c.Stop()
		if mon.Len("s1") < 5 {
			t.Errorf("monitor captured %d snapshots, want several", mon.Len("s1"))
		}
		r, ok := mon.Rate("s1", 500*time.Millisecond)
		if !ok {
			t.Error("no rate from controller-fed monitor")
			return
		}
		if r.ReadsPerSec < 400 || r.ReadsPerSec > 600 {
			t.Errorf("ReadsPerSec = %v, want ≈500", r.ReadsPerSec)
		}
		if r.HitRate < 0.85 || r.HitRate > 0.95 {
			t.Errorf("HitRate = %v, want 0.9", r.HitRate)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
