package control

import (
	"github.com/dsrhaslab/prisma-go/internal/core"
)

// This file provides alternative control algorithms for the same knobs the
// Autotuner manages. The paper notes its conclusions hold for its specific
// feedback loop and that "the same may not hold true when considering
// other control algorithms" (§V-A) — these implementations, together with
// the algorithms ablation, make that comparison concrete.

// AIMD applies TCP-style congestion control to the producer count:
// additive increase while consumers starve, multiplicative decrease when
// producers idle against a full buffer. It reacts faster than the
// plateau-guarded Autotuner but oscillates around the operating point,
// trading steady-state thread efficiency for convergence speed.
type AIMD struct {
	// DecreaseFactor scales t on overprovisioning (default 0.5).
	DecreaseFactor float64
}

// NewAIMD returns an AIMD tuner with the default halving decrease.
func NewAIMD() *AIMD { return &AIMD{DecreaseFactor: 0.5} }

// Name implements Algorithm.
func (a *AIMD) Name() string { return "aimd" }

// Decide implements Algorithm.
func (a *AIMD) Decide(prev, cur core.StageStats, applied Tuning, pol Policy) Tuning {
	next := pol.Clamp(applied)
	interval := cur.Now - prev.Now
	if interval <= 0 {
		return next
	}
	consumerWait := cur.Buffer.ConsumerWait - prev.Buffer.ConsumerWait
	producerWait := cur.Buffer.ProducerWait - prev.Buffer.ProducerWait
	starvation := float64(consumerWait) / float64(interval)
	producers := applied.Producers
	if producers < 1 {
		producers = 1
	}
	idle := float64(producerWait) / (float64(interval) * float64(producers))

	factor := a.DecreaseFactor
	if factor <= 0 || factor >= 1 {
		factor = 0.5
	}
	switch {
	case starvation > pol.StarvationHigh:
		if next.Producers < pol.MaxProducers {
			next.Producers++ // additive increase
		} else if pol.GrowBufferOnStarvation && next.BufferCapacity < pol.MaxBuffer {
			next.BufferCapacity *= 2
		}
	case starvation < pol.StarvationLow && idle > pol.ProducerIdleHigh && cur.QueueLen > 0:
		next.Producers = int(float64(next.Producers) * factor) // multiplicative decrease
	}
	return pol.Clamp(next)
}

// HillClimb probes the producer count like a one-dimensional hill climber:
// it perturbs t in its current direction each interval and keeps going
// while measured throughput improves, reversing otherwise. It needs no
// starvation thresholds at all — only the throughput signal — which makes
// it robust to miscalibrated policies but slower to settle.
type HillClimb struct {
	dir      int // +1 or -1
	lastRate float64
	primed   bool
}

// NewHillClimb returns a climber that starts by probing upward.
func NewHillClimb() *HillClimb { return &HillClimb{dir: +1} }

// Name implements Algorithm.
func (h *HillClimb) Name() string { return "hill-climb" }

// Decide implements Algorithm.
func (h *HillClimb) Decide(prev, cur core.StageStats, applied Tuning, pol Policy) Tuning {
	next := pol.Clamp(applied)
	interval := cur.Now - prev.Now
	if interval <= 0 {
		return next
	}
	rate := float64(cur.Buffer.Takes-prev.Buffer.Takes) / interval.Seconds()
	if rate <= 0 {
		// Idle interval (epoch boundary): hold and re-prime so a stale
		// rate does not trigger a bogus reversal later.
		h.primed = false
		return next
	}
	if h.primed && rate < h.lastRate*0.98 {
		h.dir = -h.dir // got worse: reverse
	}
	h.lastRate = rate
	h.primed = true
	next.Producers += h.dir
	// Bounce off the policy walls instead of saturating silently.
	if next.Producers > pol.MaxProducers {
		next.Producers = pol.MaxProducers
		h.dir = -1
	}
	if next.Producers < pol.MinProducers {
		next.Producers = pol.MinProducers
		h.dir = +1
	}
	return pol.Clamp(next)
}

// AlgorithmByName builds a fresh instance of a named algorithm — the
// factory the ablation harness and CLI use.
func AlgorithmByName(name string) (Algorithm, bool) {
	switch name {
	case "prisma-autotune":
		return NewAutotuner(), true
	case "aimd":
		return NewAIMD(), true
	case "hill-climb":
		return NewHillClimb(), true
	default:
		return nil, false
	}
}
