package control

import (
	"errors"
	"testing"

	"github.com/dsrhaslab/prisma-go/internal/core"
)

// fakeRemoteStage scripts a remote node's control connection: it serves a
// canned snapshot until failAfter calls, then returns transport errors.
type fakeRemoteStage struct {
	stats     core.StageStats
	statCalls int
	failAfter int

	producers int
	buffer    int
	setCalls  int
	failSets  bool
}

var errTransport = errors.New("connection reset by peer")

func (f *fakeRemoteStage) Stats() (core.StageStats, error) {
	f.statCalls++
	if f.failAfter > 0 && f.statCalls > f.failAfter {
		return core.StageStats{}, errTransport
	}
	return f.stats, nil
}

func (f *fakeRemoteStage) SetProducers(n int) error {
	f.setCalls++
	if f.failSets {
		return errTransport
	}
	f.producers = n
	return nil
}

func (f *fakeRemoteStage) SetBufferCapacity(n int) error {
	f.setCalls++
	if f.failSets {
		return errTransport
	}
	f.buffer = n
	return nil
}

// A healthy remote passes stats and knob writes straight through.
func TestRemoteAdapterPassthrough(t *testing.T) {
	fake := &fakeRemoteStage{stats: core.StageStats{Reads: 100, Hits: 80, TargetProducers: 4}}
	a := NewRemoteAdapter(fake)
	if got := a.Stats(); got.Reads != 100 || got.Hits != 80 {
		t.Fatalf("stats = %+v, want passthrough", got)
	}
	a.SetProducers(6)
	a.SetBufferCapacity(64)
	if fake.producers != 6 || fake.buffer != 64 {
		t.Fatalf("knobs = (%d, %d), want (6, 64)", fake.producers, fake.buffer)
	}
	if a.Errors() != 0 {
		t.Fatalf("errors = %d, want 0", a.Errors())
	}
}

// On transport failure Stats returns the last good snapshot, so a
// delta-based tuner sees a quiet stage rather than a crash to zero.
func TestRemoteAdapterLastGoodSnapshot(t *testing.T) {
	fake := &fakeRemoteStage{
		stats:     core.StageStats{Reads: 500, Hits: 450, TargetProducers: 8},
		failAfter: 2,
	}
	a := NewRemoteAdapter(fake)
	a.Stats()
	good := a.Stats()
	for i := 0; i < 3; i++ {
		got := a.Stats()
		if got.Reads != good.Reads || got.Hits != good.Hits || got.TargetProducers != good.TargetProducers {
			t.Fatalf("failed call %d returned %+v, want frozen snapshot %+v", i, got, good)
		}
	}
	if a.Errors() != 3 {
		t.Fatalf("errors = %d, want 3", a.Errors())
	}
}

// Before any successful call, a failing remote yields the zero snapshot.
func TestRemoteAdapterZeroBeforeSeed(t *testing.T) {
	a := NewRemoteAdapter(failingRemote{})
	if got := a.Stats(); got.Reads != 0 || got.Hits != 0 || got.TargetProducers != 0 {
		t.Fatalf("unseeded stats = %+v, want zero", got)
	}
	if a.Errors() != 1 {
		t.Fatalf("errors = %d, want 1", a.Errors())
	}
}

type failingRemote struct{}

func (failingRemote) Stats() (core.StageStats, error) { return core.StageStats{}, errTransport }
func (failingRemote) SetProducers(int) error          { return errTransport }
func (failingRemote) SetBufferCapacity(int) error     { return errTransport }

// Knob writes during an outage are counted and dropped; the node keeps its
// last applied values and the next round re-applies the absolute knob.
func TestRemoteAdapterDropsFailedKnobWrites(t *testing.T) {
	fake := &fakeRemoteStage{failSets: true, producers: 2, buffer: 16}
	a := NewRemoteAdapter(fake)
	a.SetProducers(8)
	a.SetBufferCapacity(128)
	if fake.producers != 2 || fake.buffer != 16 {
		t.Fatalf("knobs changed during outage: (%d, %d)", fake.producers, fake.buffer)
	}
	if a.Errors() != 2 {
		t.Fatalf("errors = %d, want 2", a.Errors())
	}
	// Recovery: writes land again and the error count stops growing.
	fake.failSets = false
	a.SetProducers(8)
	if fake.producers != 8 || a.Errors() != 2 {
		t.Fatalf("post-recovery: producers=%d errors=%d", fake.producers, a.Errors())
	}
}
