package control

import (
	"fmt"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"time"
)

// ReplicaGroup addresses the paper's availability requirement (§III): the
// control plane is logically centralized but physically replicated. All
// replicas hold the same stage registrations; only the leader — the
// lowest-indexed live replica — executes control rounds. When the leader
// fails, the next live replica takes over on the following round, resuming
// policy enforcement from its own (slightly stale) snapshots.
type ReplicaGroup struct {
	env      conc.Env
	interval time.Duration

	mu        conc.Mutex
	replicas  []*Controller
	alive     []bool
	started   bool
	stopped   bool
	failovers int64
	lastLead  int
}

// NewReplicaGroup creates n controller replicas (n >= 1), none started.
func NewReplicaGroup(env conc.Env, interval time.Duration, n int) *ReplicaGroup {
	if n < 1 {
		panic("control: replica group needs >= 1 replica")
	}
	g := &ReplicaGroup{env: env, interval: interval, mu: env.NewMutex(), lastLead: 0}
	for i := 0; i < n; i++ {
		g.replicas = append(g.replicas, NewController(env, interval))
		g.alive = append(g.alive, true)
	}
	return g
}

// Attach registers the stage with every replica so any of them can take
// over. Because algorithms may be stateful (e.g. *Autotuner), each replica
// receives its own instance from the factory.
func (g *ReplicaGroup) Attach(id string, dp DataPlane, newAlg func() Algorithm, pol Policy, initial Tuning) error {
	for i, c := range g.replicas {
		if err := c.Attach(id, dp, newAlg(), pol, initial); err != nil {
			return fmt.Errorf("control: replica %d: %w", i, err)
		}
	}
	return nil
}

// Leader reports the index of the current leader, or -1 when none is live.
func (g *ReplicaGroup) Leader() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leaderLocked()
}

func (g *ReplicaGroup) leaderLocked() int {
	for i, ok := range g.alive {
		if ok {
			return i
		}
	}
	return -1
}

// Fail marks replica i dead (simulated crash).
func (g *ReplicaGroup) Fail(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.alive[i] = false
}

// Recover marks replica i live again; leadership returns to the lowest
// index on the next round.
func (g *ReplicaGroup) Recover(i int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.alive[i] = true
}

// Failovers reports how many rounds were executed by a different replica
// than the previous round.
func (g *ReplicaGroup) Failovers() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failovers
}

// Replica exposes replica i (for tests and inspection).
func (g *ReplicaGroup) Replica(i int) *Controller { return g.replicas[i] }

// Tick runs one control round on the current leader. It reports the
// replica index that executed the round, or -1 when all replicas are down.
func (g *ReplicaGroup) Tick() int {
	g.mu.Lock()
	lead := g.leaderLocked()
	if lead >= 0 && lead != g.lastLead {
		g.failovers++
	}
	if lead >= 0 {
		g.lastLead = lead
	}
	g.mu.Unlock()
	if lead < 0 {
		return -1
	}
	g.replicas[lead].Tick()
	return lead
}

// Start launches the group's autonomous loop.
func (g *ReplicaGroup) Start() {
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		panic("control: replica group started twice")
	}
	g.started = true
	g.mu.Unlock()
	g.env.Go("prisma-controller-group", func() {
		for {
			g.env.Sleep(g.interval)
			g.mu.Lock()
			stopped := g.stopped
			g.mu.Unlock()
			if stopped {
				return
			}
			g.Tick()
		}
	})
}

// Stop terminates the autonomous loop after its current sleep.
func (g *ReplicaGroup) Stop() {
	g.mu.Lock()
	g.stopped = true
	g.mu.Unlock()
}
