// Package sharedcache implements a multi-job sample cache — the paper's
// §VII "Access coordination to shared datasets" direction ("it is common
// to have multiple DL jobs (that are oblivious of each other) operating
// concurrently over the same dataset"). Unlike PRISMA's evict-on-read
// training buffer, this cache *retains* samples after a read so a second
// job training on the same dataset is served from memory instead of
// hitting the shared device again (the Quiver insight, lifted into a
// decoupled data-plane building block with system-wide visibility).
//
// The cache is keyed by file name and bounded in bytes with LRU eviction;
// single-flight admission collapses concurrent misses on the same file
// into one device read, which is where most of the multi-job saving comes
// from when jobs run in loose lockstep.
package sharedcache

import (
	"container/list"
	"fmt"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// Stats snapshots cache effectiveness.
type Stats struct {
	Hits        int64
	Misses      int64
	Waits       int64 // misses collapsed onto another job's in-flight read
	Evictions   int64
	UsedBytes   int64
	Residents   int
	DeviceReads int64 // misses that actually hit the backend
	// WaitTime is the cumulative time followers spent blocked on another
	// job's in-flight fetch — the cache's contribution to the attribution
	// split (always on, independent of trace sampling).
	WaitTime time.Duration
}

// Cache is a byte-bounded, single-flight, LRU sample cache over a shared
// backend. It implements storage.Backend so any number of PRISMA stages
// (one per job) can stack on top of it.
type Cache struct {
	env      conc.Env
	inner    storage.Backend
	ranger   storage.RangeReader // inner's range extension, nil if unsupported
	capacity int64

	mu        conc.Mutex
	fetchDone conc.Cond
	resident  map[string]*list.Element
	order     *list.List // front = MRU
	inflight  map[string]bool
	used      int64

	hits      *metrics.Counter
	misses    *metrics.Counter
	waits     *metrics.Counter
	waitTime  *metrics.Counter // nanoseconds followers spent coalesced
	evictions *metrics.Counter
	devReads  *metrics.Counter

	tracer *obs.Tracer // nil-safe: spans only for sampled reads
}

// entry is one resident sample. When the backend serves pooled payloads,
// the cache retains its own reference for as long as the entry is resident
// (ref non-nil): recycling the buffer while it sits in the cache would
// hand later hits a poisoned or reused backing array. Each hit retains one
// more reference on the caller's behalf; eviction and invalidation release
// the cache's.
type entry struct {
	name  string
	size  int64
	bytes []byte // nil under modeled backends
	ref   *mempool.Ref
}

// New builds a cache of capacity bytes over inner.
func New(env conc.Env, inner storage.Backend, capacity int64) (*Cache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("sharedcache: capacity %d < 1", capacity)
	}
	rr, _ := inner.(storage.RangeReader)
	c := &Cache{
		env:       env,
		inner:     inner,
		ranger:    rr,
		capacity:  capacity,
		mu:        env.NewMutex(),
		resident:  make(map[string]*list.Element),
		order:     list.New(),
		inflight:  make(map[string]bool),
		hits:      metrics.NewCounter(env),
		misses:    metrics.NewCounter(env),
		waits:     metrics.NewCounter(env),
		waitTime:  metrics.NewCounter(env),
		evictions: metrics.NewCounter(env),
		devReads:  metrics.NewCounter(env),
	}
	c.fetchDone = env.NewCond(c.mu)
	return c, nil
}

// SetTracer attaches the lifecycle tracer: sampled reads then record
// sharedcache-hit/miss/coalesce spans. Nil (the default) disables spans;
// the wait-time counter stays on either way.
func (c *Cache) SetTracer(t *obs.Tracer) { c.tracer = t }

// ReadFile implements storage.Backend with single-flight caching.
func (c *Cache) ReadFile(name string) (storage.Data, error) {
	return c.ReadFileCtx(name, obs.Ctx{})
}

// ReadFileCtx implements storage.CtxReader: ReadFile recording hit, miss,
// and single-flight-coalesce spans against the read's trace when it is
// sampled, so a follower's wait on another job's fetch is no longer
// invisible to attribution.
func (c *Cache) ReadFileCtx(name string, ctx obs.Ctx) (storage.Data, error) {
	var waitStart, waited time.Duration
	c.mu.Lock()
	for {
		if el, ok := c.resident[name]; ok {
			c.order.MoveToFront(el)
			e := el.Value.(*entry)
			if e.ref != nil {
				// Hand the caller its own reference while the cache's keeps
				// the entry alive; the caller releases as usual (§11).
				e.ref.Retain()
			}
			size := e.size
			bytes := e.bytes
			ref := e.ref
			c.mu.Unlock()
			c.hits.Inc()
			c.noteWait(ctx, name, waitStart, waited)
			if ctx.Sampled {
				c.tracer.Record(obs.Span{Trace: ctx.Trace, Stage: obs.StageCacheHit, Name: name, At: c.env.Now(), Size: size})
			}
			return storage.Data{Name: name, Size: size, Bytes: bytes, Ref: ref}, nil
		}
		if !c.inflight[name] {
			break
		}
		// Another job is already fetching this file: wait for it instead
		// of issuing a duplicate device read.
		c.waits.Inc()
		begin := c.env.Now()
		if waited == 0 {
			waitStart = begin
		}
		c.fetchDone.Wait()
		waited += c.env.Now() - begin
	}
	c.inflight[name] = true
	c.mu.Unlock()
	c.noteWait(ctx, name, waitStart, waited)

	c.misses.Inc()
	c.devReads.Inc()
	fetchStart := time.Duration(0)
	if ctx.Sampled {
		fetchStart = c.env.Now()
	}
	data, err := storage.ReadFileCtx(c.inner, name, ctx)
	if ctx.Sampled {
		sp := obs.Span{Trace: ctx.Trace, Stage: obs.StageCacheMiss, Name: name, At: fetchStart, Latency: c.env.Now() - fetchStart, Size: data.Size}
		if err != nil {
			sp.Error = err.Error()
		}
		c.tracer.Record(sp)
	}

	c.mu.Lock()
	delete(c.inflight, name)
	if err == nil && data.Size <= c.capacity {
		c.admit(name, data)
	}
	c.fetchDone.Broadcast()
	c.mu.Unlock()
	return data, err
}

// noteWait folds one completed coalesced wait into the always-on wait-time
// counter and, for sampled reads, records the follower's coalesce span.
func (c *Cache) noteWait(ctx obs.Ctx, name string, start, waited time.Duration) {
	if waited <= 0 {
		return
	}
	c.waitTime.Add(int64(waited))
	if ctx.Sampled {
		c.tracer.Record(obs.Span{Trace: ctx.Trace, Stage: obs.StageCacheCoalesce, Name: name, At: start, Latency: waited})
	}
}

// admit inserts the fetched sample, evicting LRU residents. The cache
// retains its own pooled reference (the fetcher's stays with the fetcher).
// Caller holds c.mu.
func (c *Cache) admit(name string, data storage.Data) {
	if _, dup := c.resident[name]; dup {
		return
	}
	for c.used+data.Size > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		c.evictLocked(back)
		c.evictions.Inc()
	}
	if data.Ref != nil {
		data.Ref.Retain()
	}
	c.resident[name] = c.order.PushFront(&entry{name: name, size: data.Size, bytes: data.Bytes, ref: data.Ref})
	c.used += data.Size
}

// evictLocked removes one resident entry and drops the cache's pooled
// reference. Caller holds c.mu.
func (c *Cache) evictLocked(el *list.Element) {
	victim := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.resident, victim.name)
	c.used -= victim.size
	if victim.ref != nil {
		victim.ref.Release()
		victim.ref = nil
		victim.bytes = nil
	}
}

// Size implements storage.Backend.
func (c *Cache) Size(name string) (int64, error) { return c.inner.Size(name) }

// rangeKey builds the composite cache key for one byte range of name. The
// NUL separator cannot appear in file names, so range entries can never
// collide with whole-file entries.
func rangeKey(name string, off, n int64) string {
	return fmt.Sprintf("%s\x00%d+%d", name, off, n)
}

// ReadRange implements storage.RangeReader with the same caching and
// single-flight discipline as whole-file reads. A whole-file resident is
// sliced in place (zero-copy, retaining the cache's pool reference on the
// caller's behalf); otherwise the range is cached under a composite
// name\x00off+n key, so concurrent tenants re-reading the same record of a
// packed shard pay the device once instead of once each — previously
// ranges bypassed the cache entirely and every tenant paid. Negative
// ranges pass through for the inner backend to reject, and wrapping a
// rangeless backend still yields an error at call time, not a dropped
// extension (the repo-wide wrapper convention).
func (c *Cache) ReadRange(name string, off, n int64) (storage.Data, error) {
	if c.ranger == nil {
		return storage.Data{}, fmt.Errorf("sharedcache: %T does not support range reads", c.inner)
	}
	if off < 0 || n < 0 {
		return c.ranger.ReadRange(name, off, n)
	}
	key := rangeKey(name, off, n)
	c.mu.Lock()
	if d, ok := c.sliceWholeFileLocked(name, off, n); ok {
		c.mu.Unlock()
		c.hits.Inc()
		return d, nil
	}
	for {
		if el, ok := c.resident[key]; ok {
			c.order.MoveToFront(el)
			e := el.Value.(*entry)
			if e.ref != nil {
				e.ref.Retain()
			}
			d := storage.Data{Name: name, Size: e.size, Bytes: e.bytes, Ref: e.ref}
			c.mu.Unlock()
			c.hits.Inc()
			return d, nil
		}
		if !c.inflight[key] {
			break
		}
		// Another tenant is already fetching this range: wait for it
		// instead of issuing a duplicate device read.
		c.waits.Inc()
		begin := c.env.Now()
		c.fetchDone.Wait()
		c.waitTime.Add(int64(c.env.Now() - begin))
	}
	c.inflight[key] = true
	c.mu.Unlock()

	c.misses.Inc()
	c.devReads.Inc()
	data, err := c.ranger.ReadRange(name, off, n)

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil && data.Size <= c.capacity {
		c.admit(key, data)
	}
	c.fetchDone.Broadcast()
	c.mu.Unlock()
	return data, err
}

// sliceWholeFileLocked serves a range as a view of a whole-file resident,
// clamped per the RangeReader contract. Caller holds c.mu.
func (c *Cache) sliceWholeFileLocked(name string, off, n int64) (storage.Data, bool) {
	el, ok := c.resident[name]
	if !ok {
		return storage.Data{}, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*entry)
	if off > e.size {
		off = e.size
	}
	if off+n > e.size {
		n = e.size - off
	}
	if e.bytes == nil {
		// Modeled resident: sizes only.
		return storage.Data{Name: name, Size: n}, true
	}
	if e.ref != nil {
		e.ref.Retain()
	}
	return storage.Data{Name: name, Size: n, Bytes: e.bytes[off : off+n], Ref: e.ref}, true
}

// ReadRangeBatch implements storage.BatchRangeReader. A whole-file
// resident serves every range as in-place slices (each view retaining the
// cache's reference); otherwise the batch forwards to the inner backend as
// one vectored request — counted as one device read serving K ranges —
// without admitting per-range entries (a coalesced batch is already the
// economical access pattern; caching its K slices would churn the LRU).
func (c *Cache) ReadRangeBatch(name string, ranges []storage.Range, out []storage.Data) ([]storage.Data, error) {
	brr, ok := c.inner.(storage.BatchRangeReader)
	if !ok {
		return out, fmt.Errorf("sharedcache: %T does not support batched range reads", c.inner)
	}
	allValid := true
	for _, r := range ranges {
		if r.Off < 0 || r.N < 0 {
			allValid = false
		}
	}
	if allValid {
		c.mu.Lock()
		if _, resident := c.resident[name]; resident {
			base := len(out)
			served := true
			for _, r := range ranges {
				d, ok := c.sliceWholeFileLocked(name, r.Off, r.N)
				if !ok {
					served = false
					break
				}
				out = append(out, d)
			}
			if served {
				c.mu.Unlock()
				c.hits.Add(int64(len(ranges)))
				return out, nil
			}
			for i := base; i < len(out); i++ {
				out[i].Release()
			}
			out = out[:base]
		}
		c.mu.Unlock()
	}
	c.misses.Add(int64(len(ranges)))
	c.devReads.Inc()
	return brr.ReadRangeBatch(name, ranges, out)
}

// SetBufferPool implements storage.PoolAttacher by delegating to the inner
// backend, so attaching a pool above the cache reaches the backend that
// allocates payloads. Cached entries then carry pooled refs (see entry).
func (c *Cache) SetBufferPool(p *mempool.Pool) {
	if pa, ok := c.inner.(storage.PoolAttacher); ok {
		pa.SetBufferPool(p)
	}
}

// Resident reports whether name is cached.
func (c *Cache) Resident(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.resident[name]
	return ok
}

// Invalidate drops one cached sample (for dataset updates), releasing the
// cache's pooled reference.
func (c *Cache) Invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.resident[name]; ok {
		c.evictLocked(el)
	}
}

// Close drops every resident entry, releasing the cache's pooled
// references so end-of-run leak audits see a clean pool.
func (c *Cache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Back(); el != nil; el = c.order.Back() {
		c.evictLocked(el)
	}
}

// Stats snapshots cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	used, n := c.used, len(c.resident)
	c.mu.Unlock()
	return Stats{
		Hits:        c.hits.Value(),
		Misses:      c.misses.Value(),
		Waits:       c.waits.Value(),
		Evictions:   c.evictions.Value(),
		UsedBytes:   used,
		Residents:   n,
		DeviceReads: c.devReads.Value(),
		WaitTime:    time.Duration(c.waitTime.Value()),
	}
}

// HitRate reports hits / (hits + misses), zero before any traffic.
func (c *Cache) HitRate() float64 {
	h, m := c.hits.Value(), c.misses.Value()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
