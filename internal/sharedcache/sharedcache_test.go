package sharedcache

import (
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

func runSim(t *testing.T, body func(env conc.Env)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("test-body", func(*sim.Process) { body(env) })
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func fixture(env conc.Env, n int, size int64, lat time.Duration, channels int) (storage.Backend, *storage.Device, []string) {
	samples := make([]dataset.Sample, n)
	names := make([]string, n)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("f%04d", i), Size: size}
		names[i] = samples[i].Name
	}
	dev, err := storage.NewDevice(env, storage.DeviceSpec{BaseLatency: lat, BytesPerSecond: 1e15, Channels: channels})
	if err != nil {
		panic(err)
	}
	return storage.NewModeledBackend(dataset.MustNew(samples), dev, nil), dev, names
}

func TestValidation(t *testing.T) {
	env := conc.NewReal()
	if _, err := New(env, nil, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestHitAfterMiss(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, dev, names := fixture(env, 4, 1000, time.Millisecond, 2)
		c, _ := New(env, backend, 1<<20)
		if _, err := c.ReadFile(names[0]); err != nil {
			t.Fatal(err)
		}
		start := env.Now()
		if _, err := c.ReadFile(names[0]); err != nil {
			t.Fatal(err)
		}
		if env.Now() != start {
			t.Fatal("cache hit consumed device time")
		}
		if dev.Stats().Reads != 1 {
			t.Fatalf("device reads = %d, want 1", dev.Stats().Reads)
		}
		st := c.Stats()
		if st.Hits != 1 || st.Misses != 1 || st.Residents != 1 {
			t.Fatalf("stats = %+v", st)
		}
		if c.HitRate() != 0.5 {
			t.Fatalf("hit rate = %v", c.HitRate())
		}
	})
}

func TestSingleFlightCollapsesConcurrentMisses(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, dev, names := fixture(env, 1, 1000, 10*time.Millisecond, 8)
		c, _ := New(env, backend, 1<<20)
		wg := env.NewWaitGroup()
		wg.Add(5)
		for i := 0; i < 5; i++ {
			env.Go(fmt.Sprintf("job-%d", i), func() {
				defer wg.Done()
				if _, err := c.ReadFile(names[0]); err != nil {
					t.Errorf("read: %v", err)
				}
			})
		}
		wg.Wait()
		if dev.Stats().Reads != 1 {
			t.Fatalf("device reads = %d, want 1 (single flight)", dev.Stats().Reads)
		}
		st := c.Stats()
		if st.Waits != 4 {
			t.Fatalf("waits = %d, want 4", st.Waits)
		}
	})
}

// TestSingleFlightSpans proves trace context survives the single-flight
// path: for ONE collapsed backend read, the leader emits a sharedcache-miss
// span against its trace and the follower emits a sharedcache-coalesce span
// (plus the hit it wakes to) against its own, so coalesced waits are no
// longer invisible to attribution.
func TestSingleFlightSpans(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, dev, names := fixture(env, 1, 1000, 10*time.Millisecond, 8)
		c, _ := New(env, backend, 1<<20)
		tracer := obs.NewTracer(env, obs.TracerOptions{Sampling: 1})
		c.SetTracer(tracer)

		leader := tracer.StartTrace()
		follower := tracer.StartTrace()
		if !leader.Sampled || !follower.Sampled || leader.Trace == follower.Trace {
			t.Fatalf("bad trace contexts: %+v %+v", leader, follower)
		}
		wg := env.NewWaitGroup()
		wg.Add(2)
		env.Go("leader", func() {
			defer wg.Done()
			if _, err := c.ReadFileCtx(names[0], leader); err != nil {
				t.Errorf("leader read: %v", err)
			}
		})
		env.Go("follower", func() {
			defer wg.Done()
			env.Sleep(time.Millisecond) // arrive mid-fetch
			if _, err := c.ReadFileCtx(names[0], follower); err != nil {
				t.Errorf("follower read: %v", err)
			}
		})
		wg.Wait()

		if dev.Stats().Reads != 1 {
			t.Fatalf("device reads = %d, want 1 (single flight)", dev.Stats().Reads)
		}
		var miss, coalesce, hit []obs.Span
		for _, sp := range tracer.Spans() {
			switch sp.Stage {
			case obs.StageCacheMiss:
				miss = append(miss, sp)
			case obs.StageCacheCoalesce:
				coalesce = append(coalesce, sp)
			case obs.StageCacheHit:
				hit = append(hit, sp)
			}
		}
		if len(miss) != 1 || len(coalesce) != 1 || len(hit) != 1 {
			t.Fatalf("spans = %d miss / %d coalesce / %d hit, want 1/1/1",
				len(miss), len(coalesce), len(hit))
		}
		if miss[0].Trace != leader.Trace {
			t.Errorf("miss span trace = %d, want leader %d", miss[0].Trace, leader.Trace)
		}
		if coalesce[0].Trace != follower.Trace || hit[0].Trace != follower.Trace {
			t.Errorf("follower spans traces = %d/%d, want %d",
				coalesce[0].Trace, hit[0].Trace, follower.Trace)
		}
		// The follower joined 1ms into a 10ms fetch: its coalesced wait is
		// the remaining 9ms, both on the span and the always-on counter.
		if coalesce[0].Latency != 9*time.Millisecond {
			t.Errorf("coalesce latency = %v, want 9ms", coalesce[0].Latency)
		}
		if c.Stats().WaitTime != 9*time.Millisecond {
			t.Errorf("WaitTime = %v, want 9ms", c.Stats().WaitTime)
		}
	})
}

func TestLRUEviction(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, _, names := fixture(env, 5, 1000, time.Millisecond, 2)
		c, _ := New(env, backend, 3000)
		for _, n := range names[:3] {
			_, _ = c.ReadFile(n)
		}
		_, _ = c.ReadFile(names[0]) // refresh 0
		_, _ = c.ReadFile(names[3]) // evicts 1
		if c.Resident(names[1]) {
			t.Fatal("LRU victim survived")
		}
		if !c.Resident(names[0]) || !c.Resident(names[2]) || !c.Resident(names[3]) {
			t.Fatal("wrong victim")
		}
		if st := c.Stats(); st.Evictions != 1 || st.UsedBytes != 3000 {
			t.Fatalf("stats = %+v", st)
		}
	})
}

func TestOversizedNeverCached(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, _, names := fixture(env, 1, 10_000, time.Millisecond, 1)
		c, _ := New(env, backend, 500)
		if _, err := c.ReadFile(names[0]); err != nil {
			t.Fatal(err)
		}
		if c.Resident(names[0]) {
			t.Fatal("oversized file cached")
		}
	})
}

func TestErrorNotCached(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, _, names := fixture(env, 2, 1000, time.Millisecond, 1)
		faulty := storage.NewFaultyBackend(env, backend)
		faulty.FailName(names[0])
		c, _ := New(env, faulty, 1<<20)
		if _, err := c.ReadFile(names[0]); err == nil {
			t.Fatal("injected fault swallowed")
		}
		if c.Resident(names[0]) {
			t.Fatal("failed read cached")
		}
		// Retry after un-arming succeeds (no negative caching).
		faulty2 := storage.NewFaultyBackend(env, backend)
		c2, _ := New(env, faulty2, 1<<20)
		if _, err := c2.ReadFile(names[0]); err != nil {
			t.Fatal(err)
		}
	})
}

func TestInvalidate(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, dev, names := fixture(env, 1, 1000, time.Millisecond, 1)
		c, _ := New(env, backend, 1<<20)
		_, _ = c.ReadFile(names[0])
		c.Invalidate(names[0])
		if c.Resident(names[0]) {
			t.Fatal("still resident after Invalidate")
		}
		_, _ = c.ReadFile(names[0])
		if dev.Stats().Reads != 2 {
			t.Fatalf("device reads = %d, want 2", dev.Stats().Reads)
		}
		c.Invalidate("ghost") // no-op
	})
}

func TestSizePassthrough(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, _, names := fixture(env, 1, 1234, time.Millisecond, 1)
		c, _ := New(env, backend, 1<<20)
		n, err := c.Size(names[0])
		if err != nil || n != 1234 {
			t.Fatalf("Size = %d, %v", n, err)
		}
	})
}

func TestReadRangeForwarding(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, dev, names := fixture(env, 1, 10_000, time.Millisecond, 1)
		c, _ := New(env, backend, 1<<20)
		var b storage.Backend = c
		rr, ok := b.(storage.RangeReader)
		if !ok {
			t.Fatal("Cache dropped the RangeReader extension")
		}
		d, err := rr.ReadRange(names[0], 100, 200)
		if err != nil || d.Size != 200 {
			t.Fatalf("ReadRange = %d, %v; want 200, nil", d.Size, err)
		}
		if dev.Stats().Reads != 1 {
			t.Fatalf("device reads = %d, want 1 (ranges pass through)", dev.Stats().Reads)
		}
		if c.Resident(names[0]) {
			t.Fatal("range read admitted a whole-file entry")
		}
	})
}

func TestReadRangeUnsupportedInner(t *testing.T) {
	runSim(t, func(env conc.Env) {
		c, _ := New(env, rangelessBackend{}, 1<<20)
		if _, err := c.ReadRange("x", 0, 1); err == nil {
			t.Fatal("range read over a rangeless backend must error")
		}
	})
}

// rangelessBackend is a storage.Backend without the RangeReader extension.
type rangelessBackend struct{}

func (rangelessBackend) ReadFile(name string) (storage.Data, error) {
	return storage.Data{Name: name}, nil
}
func (rangelessBackend) Size(string) (int64, error) { return 0, nil }

// TestPooledLifecycle proves the cache's ownership discipline over pooled
// payloads: admit retains a cache-held reference, every hit hands the
// caller one of its own, eviction/invalidation/Close release the cache's,
// and the debug pool's leak ledger ends empty.
func TestPooledLifecycle(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, _, names := fixture(env, 3, 1000, time.Millisecond, 2)
		pool := mempool.New(mempool.Config{Debug: true})
		c, _ := New(env, backend, 2000) // room for two entries
		c.SetBufferPool(pool)           // delegates through to the modeled backend

		d0, err := c.ReadFile(names[0]) // miss: fetcher owns one ref, cache one
		if err != nil {
			t.Fatal(err)
		}
		if d0.Ref == nil {
			t.Fatal("pooled backend returned unpooled data through the cache")
		}
		if got := d0.Ref.Refs(); got != 2 {
			t.Fatalf("refs after miss = %d, want 2 (caller + cache)", got)
		}
		d0.Release()

		h0, _ := c.ReadFile(names[0]) // hit: caller gets its own ref
		if h0.Ref == nil || h0.Ref.Refs() != 2 {
			t.Fatalf("hit ref state = %+v, want cache + caller", h0.Ref)
		}
		// The hit's bytes must stay valid even while other traffic evicts
		// the entry out from under the cache.
		d1, _ := c.ReadFile(names[1])
		d2, _ := c.ReadFile(names[2]) // evicts names[0] (LRU)
		d1.Release()
		d2.Release()
		if c.Resident(names[0]) {
			t.Fatal("names[0] should have been evicted")
		}
		if got := h0.Ref.Refs(); got != 1 {
			t.Fatalf("refs after eviction = %d, want 1 (caller only)", got)
		}
		h0.Release()

		c.Invalidate(names[1])
		c.Close() // drops names[2]
		if leaks := pool.Leaks(); len(leaks) != 0 {
			t.Fatalf("pool leaks after Close:\n%s", mempool.FormatLeaks(leaks))
		}
		if n := pool.Outstanding(); n != 0 {
			t.Fatalf("outstanding refs = %d, want 0", n)
		}
	})
}

// TestTwoJobsSharedDataset is the §VII scenario: two PRISMA-backed jobs
// train over the same dataset through one shared cache; the second epoch
// of traffic is served almost entirely from memory, halving device load.
func TestTwoJobsSharedDataset(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	var devReads int64
	var total int64
	s.Spawn("driver", func(*sim.Process) {
		backend, dev, names := fixture(env, 200, 100_000, time.Millisecond, 4)
		cache, _ := New(env, backend, 1<<30)

		// Two jobs, each with its own PRISMA stage over the shared cache.
		mkStage := func() *core.Stage {
			pf, err := core.NewPrefetcher(env, cache, core.PrefetcherConfig{
				InitialProducers: 2, MaxProducers: 8,
				InitialBufferCapacity: 16, MaxBufferCapacity: 64,
			})
			if err != nil {
				panic(err)
			}
			st := core.NewStage(env, cache, core.NewPrefetchObject(pf))
			pf.Start()
			return st
		}
		stA, stB := mkStage(), mkStage()

		wg := env.NewWaitGroup()
		wg.Add(2)
		runJob := func(st *core.Stage, seed int64) {
			defer wg.Done()
			plan := dataset.MustNew(samplesOf(names)).EpochFileList(seed, 0)
			if err := st.SubmitPlan(plan); err != nil {
				t.Error(err)
				return
			}
			for _, n := range plan {
				if _, err := st.Read(n); err != nil {
					t.Error(err)
					return
				}
			}
		}
		env.Go("jobA", func() { runJob(stA, 1) })
		env.Go("jobB", func() { runJob(stB, 2) })
		wg.Wait()
		stA.Close()
		stB.Close()
		devReads = dev.Stats().Reads
		total = int64(2 * len(names))
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 400 logical reads, but each file needs the device at most once.
	if devReads != total/2 {
		t.Fatalf("device reads = %d, want %d (each file fetched once)", devReads, total/2)
	}
}

func samplesOf(names []string) []dataset.Sample {
	out := make([]dataset.Sample, len(names))
	for i, n := range names {
		out[i] = dataset.Sample{Name: n, Size: 100_000}
	}
	return out
}

// TestRangeCachedAndSingleFlighted is the regression test for the
// range-read bypass: an identical repeated range must be a cache hit (one
// device read total), and concurrent misses on the same range must
// collapse onto one backend fetch exactly like whole-file reads do.
func TestRangeCachedAndSingleFlighted(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, dev, names := fixture(env, 1, 10_000, 10*time.Millisecond, 8)
		c, _ := New(env, backend, 1<<20)
		d, err := c.ReadRange(names[0], 100, 200)
		if err != nil || d.Size != 200 {
			t.Fatalf("ReadRange = %+v, %v", d, err)
		}
		start := env.Now()
		d, err = c.ReadRange(names[0], 100, 200)
		if err != nil || d.Size != 200 {
			t.Fatalf("repeated ReadRange = %+v, %v", d, err)
		}
		if env.Now() != start {
			t.Fatal("repeated range consumed device time (not served from cache)")
		}
		if dev.Stats().Reads != 1 {
			t.Fatalf("device reads = %d, want 1 (range must be cached)", dev.Stats().Reads)
		}
		st := c.Stats()
		if st.Hits != 1 || st.Misses != 1 {
			t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
		}
		// A different range of the same file is its own entry.
		if _, err := c.ReadRange(names[0], 300, 50); err != nil {
			t.Fatal(err)
		}
		if dev.Stats().Reads != 2 {
			t.Fatalf("device reads = %d, want 2 (distinct range, distinct entry)", dev.Stats().Reads)
		}

		// Concurrent identical ranges: one leader fetch, four coalesced
		// followers.
		preWaits := c.Stats().Waits
		wg := env.NewWaitGroup()
		wg.Add(5)
		for i := 0; i < 5; i++ {
			env.Go(fmt.Sprintf("ranger-%d", i), func() {
				defer wg.Done()
				if _, err := c.ReadRange(names[0], 5000, 1000); err != nil {
					t.Errorf("concurrent range: %v", err)
				}
			})
		}
		wg.Wait()
		if dev.Stats().Reads != 3 {
			t.Fatalf("device reads = %d, want 3 (concurrent ranges single-flighted)", dev.Stats().Reads)
		}
		if got := c.Stats().Waits - preWaits; got != 4 {
			t.Fatalf("waits = %d, want 4", got)
		}
	})
}

// TestRangeSlicedFromWholeFileResident proves a cached whole file serves
// any range of itself by slicing in place: no second device read, counted
// as a hit, and the payload window is byte-identical.
func TestRangeSlicedFromWholeFileResident(t *testing.T) {
	runSim(t, func(env conc.Env) {
		env2 := env
		mem := storage.NewMemBackend()
		content := mem.AddSeeded("s", 1000, 42)
		c, _ := New(env2, mem, 1<<20)
		if _, err := c.ReadFile("s"); err != nil {
			t.Fatal(err)
		}
		d, err := c.ReadRange("s", 100, 300)
		if err != nil || d.Size != 300 {
			t.Fatalf("ReadRange = %+v, %v", d, err)
		}
		if string(d.Bytes) != string(content[100:400]) {
			t.Fatal("sliced range payload mismatch")
		}
		d.Release()
		st := c.Stats()
		if st.DeviceReads != 1 {
			t.Fatalf("device reads = %d, want 1 (range sliced from the resident file)", st.DeviceReads)
		}
		if st.Hits != 1 {
			t.Fatalf("hits = %d, want 1", st.Hits)
		}
		// Clamped and past-EOF windows follow the RangeReader contract
		// without touching the backend.
		d, err = c.ReadRange("s", 900, 500)
		if err != nil || d.Size != 100 {
			t.Fatalf("clamped slice = %+v, %v", d, err)
		}
		d.Release()
		d, err = c.ReadRange("s", 5000, 10)
		if err != nil || d.Size != 0 {
			t.Fatalf("past-EOF slice = %+v, %v", d, err)
		}
		d.Release()
		if st := c.Stats(); st.DeviceReads != 1 {
			t.Fatalf("device reads = %d after clamped slices, want 1 still", st.DeviceReads)
		}
	})
}

// TestReadRangeBatchSharedCache covers the vectored path: a whole-file
// resident serves every range of a batch by slicing (no backend touch),
// and a cold batch forwards to the inner BatchRangeReader as one device
// read without polluting the cache with K partial entries.
func TestReadRangeBatchSharedCache(t *testing.T) {
	runSim(t, func(env conc.Env) {
		mem := storage.NewMemBackend()
		content := mem.AddSeeded("s", 1000, 7)
		c, _ := New(env, mem, 1<<20)
		ranges := []storage.Range{{Off: 0, N: 100}, {Off: 400, N: 100}, {Off: 950, N: 100}}

		// Cold: forwarded as one vector.
		out, err := c.ReadRangeBatch("s", ranges, nil)
		if err != nil || len(out) != 3 {
			t.Fatalf("cold batch = %d results, %v", len(out), err)
		}
		for _, d := range out {
			d.Release()
		}
		st := c.Stats()
		if st.DeviceReads != 1 {
			t.Fatalf("device reads = %d, want 1 (one vector)", st.DeviceReads)
		}
		if st.Residents != 0 {
			t.Fatalf("residents = %d, want 0 (batches must not churn the cache)", st.Residents)
		}

		// Warm the whole file, then the same batch slices from it.
		if _, err := c.ReadFile("s"); err != nil {
			t.Fatal(err)
		}
		out, err = c.ReadRangeBatch("s", ranges, nil)
		if err != nil || len(out) != 3 {
			t.Fatalf("resident batch = %d results, %v", len(out), err)
		}
		wantSizes := []int64{100, 100, 50}
		for i, d := range out {
			if d.Size != wantSizes[i] {
				t.Fatalf("segment %d size = %d, want %d", i, d.Size, wantSizes[i])
			}
			if string(d.Bytes) != string(content[ranges[i].Off:ranges[i].Off+wantSizes[i]]) {
				t.Fatalf("segment %d payload mismatch", i)
			}
			d.Release()
		}
		st = c.Stats()
		if st.DeviceReads != 2 {
			t.Fatalf("device reads = %d, want 2 (resident batch is free)", st.DeviceReads)
		}
		if got := st.Hits; got != 3 {
			t.Fatalf("hits = %d, want 3 (one per sliced range)", got)
		}
	})
}
