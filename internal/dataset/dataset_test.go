package dataset

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func fixture() *Manifest {
	return MustNew([]Sample{
		{Name: "a.jpg", Size: 100},
		{Name: "b.jpg", Size: 200},
		{Name: "c.jpg", Size: 300},
		{Name: "d.jpg", Size: 400},
	})
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		samples []Sample
	}{
		{"empty name", []Sample{{Name: "", Size: 1}}},
		{"negative size", []Sample{{Name: "x", Size: -1}}},
		{"duplicate", []Sample{{Name: "x", Size: 1}, {Name: "x", Size: 2}}},
	}
	for _, c := range cases {
		if _, err := New(c.samples); err == nil {
			t.Errorf("%s: New succeeded, want error", c.name)
		}
	}
}

func TestManifestAccessors(t *testing.T) {
	m := fixture()
	if m.Len() != 4 {
		t.Fatalf("Len = %d, want 4", m.Len())
	}
	if m.TotalBytes() != 1000 {
		t.Fatalf("TotalBytes = %d, want 1000", m.TotalBytes())
	}
	if m.MeanSize() != 250 {
		t.Fatalf("MeanSize = %d, want 250", m.MeanSize())
	}
	s, ok := m.Lookup("c.jpg")
	if !ok || s.Size != 300 {
		t.Fatalf("Lookup(c.jpg) = %+v,%v", s, ok)
	}
	if _, ok := m.Lookup("nope"); ok {
		t.Fatal("Lookup of missing name reported ok")
	}
	if m.Sample(1).Name != "b.jpg" {
		t.Fatalf("Sample(1) = %+v", m.Sample(1))
	}
}

func TestEpochOrderIsPermutation(t *testing.T) {
	m := fixture()
	order := m.EpochOrder(7, 0)
	seen := make(map[int]bool)
	for _, i := range order {
		if i < 0 || i >= m.Len() || seen[i] {
			t.Fatalf("order %v is not a permutation", order)
		}
		seen[i] = true
	}
	if len(seen) != m.Len() {
		t.Fatalf("order %v misses indices", order)
	}
}

func TestEpochOrderDeterministic(t *testing.T) {
	m := fixture()
	a := m.EpochOrder(42, 3)
	b := m.EpochOrder(42, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed,epoch) produced different orders: %v vs %v", a, b)
		}
	}
}

func TestEpochOrderVariesByEpoch(t *testing.T) {
	big, err := Synthetic("t", 100, 10_000, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := big.EpochOrder(42, 0)
	b := big.EpochOrder(42, 1)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epochs 0 and 1 produced identical shuffles")
	}
}

func TestEpochFileListMatchesOrder(t *testing.T) {
	m := fixture()
	order := m.EpochOrder(5, 2)
	names := m.EpochFileList(5, 2)
	for i := range order {
		if names[i] != m.Sample(order[i]).Name {
			t.Fatalf("file list diverges from order at %d", i)
		}
	}
}

// Property: EpochOrder is always a valid permutation for arbitrary seeds
// and epochs.
func TestEpochOrderPermutationProperty(t *testing.T) {
	m, err := Synthetic("p", 50, 10_000, 0.4, 99)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, epoch uint8) bool {
		order := m.EpochOrder(seed, int(epoch))
		if len(order) != m.Len() {
			return false
		}
		seen := make([]bool, m.Len())
		for _, i := range order {
			if i < 0 || i >= m.Len() || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticStatistics(t *testing.T) {
	const n = 20000
	const mean = 113_000
	m, err := Synthetic("train", n, mean, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != n {
		t.Fatalf("Len = %d, want %d", m.Len(), n)
	}
	got := float64(m.MeanSize())
	if math.Abs(got-mean)/mean > 0.05 {
		t.Fatalf("mean size %v deviates >5%% from %v", got, mean)
	}
	// Log-normal with sigma 0.5 is right-skewed: max should be well above
	// the mean, min below it, and no file below the 1 KiB floor.
	var min, max int64 = 1 << 62, 0
	for i := 0; i < n; i++ {
		s := m.Sample(i).Size
		if s < 1024 {
			t.Fatalf("sample below floor: %d", s)
		}
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max < 2*mean || min > mean/2 {
		t.Fatalf("distribution implausibly narrow: min=%d max=%d", min, max)
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := Synthetic("x", 0, 100, 0.5, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Synthetic("x", 1, 0, 0.5, 1); err == nil {
		t.Error("meanSize=0 accepted")
	}
}

func TestSyntheticImageNetScaling(t *testing.T) {
	train, val, err := SyntheticImageNet(0.001, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := train.Len(), 1281; got != want {
		t.Fatalf("train files = %d, want %d", got, want)
	}
	if got, want := val.Len(), 50; got != want {
		t.Fatalf("val files = %d, want %d", got, want)
	}
	// Volume should scale with file count: ≈ 138 GiB * 0.001.
	wantBytes := float64(ImageNetTrainBytes) * 0.001
	if got := float64(train.TotalBytes()); math.Abs(got-wantBytes)/wantBytes > 0.10 {
		t.Fatalf("train bytes %v deviates >10%% from %v", got, wantBytes)
	}
}

func TestSyntheticImageNetRejectsBadScale(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		if _, _, err := SyntheticImageNet(s, 1); err == nil {
			t.Errorf("scale %v accepted", s)
		}
	}
	if _, _, err := SyntheticImageNet(1e-9, 1); err == nil {
		t.Error("scale yielding empty split accepted")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.txt")
	m := fixture()
	if err := WriteManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != m.Len() || got.TotalBytes() != m.TotalBytes() {
		t.Fatalf("round trip mismatch: %d/%d bytes vs %d/%d", got.Len(), got.TotalBytes(), m.Len(), m.TotalBytes())
	}
	for i := 0; i < m.Len(); i++ {
		if got.Sample(i) != m.Sample(i) {
			t.Fatalf("sample %d: %+v vs %+v", i, got.Sample(i), m.Sample(i))
		}
	}
}

func TestReadManifestSkipsCommentsAndBlank(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.txt")
	content := "# header\n\na.jpg 10\n  \nb.jpg 20\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestReadManifestMalformed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.txt")
	if err := os.WriteFile(path, []byte("no-size-here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Fatal("malformed manifest accepted")
	}
}

func TestGenerateAndFromDir(t *testing.T) {
	dir := t.TempDir()
	m := MustNew([]Sample{
		{Name: "train/0000001.jpg", Size: 2048},
		{Name: "train/0000002.jpg", Size: 4096},
		{Name: "val/0000001.jpg", Size: 1024},
	})
	if err := Generate(dir, m, 11); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Len(); i++ {
		s := m.Sample(i)
		info, err := os.Stat(filepath.Join(dir, filepath.FromSlash(s.Name)))
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != s.Size {
			t.Fatalf("%s: size %d, want %d", s.Name, info.Size(), s.Size)
		}
	}
	scanned, err := FromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if scanned.Len() != m.Len() {
		t.Fatalf("FromDir found %d files, want %d", scanned.Len(), m.Len())
	}
	for i := 0; i < m.Len(); i++ {
		got, ok := scanned.Lookup(m.Sample(i).Name)
		if !ok || got.Size != m.Sample(i).Size {
			t.Fatalf("FromDir lost %q", m.Sample(i).Name)
		}
	}
}

func TestMustNewPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew([]Sample{{Name: "", Size: 1}})
}

func TestMeanSizeEmpty(t *testing.T) {
	m := MustNew(nil)
	if m.MeanSize() != 0 || m.Len() != 0 || m.TotalBytes() != 0 {
		t.Fatal("empty manifest stats not zero")
	}
}

func TestWriteManifestBadPath(t *testing.T) {
	if err := WriteManifest(filepath.Join(t.TempDir(), "no", "such", "dir", "m.txt"), fixture()); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
}

func TestReadManifestMissingFile(t *testing.T) {
	if _, err := ReadManifest(filepath.Join(t.TempDir(), "ghost.txt")); err == nil {
		t.Fatal("missing manifest accepted")
	}
}

func TestGenerateBadDir(t *testing.T) {
	// A file where a directory must be created forces a MkdirAll error.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "train")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := MustNew([]Sample{{Name: "train/a.jpg", Size: 10}})
	if err := Generate(dir, m, 1); err == nil {
		t.Fatal("Generate over a blocking file succeeded")
	}
}

func TestManifestRoundTripLarge(t *testing.T) {
	// A profile-scale manifest survives serialization intact.
	train, _, err := SyntheticImageNet(0.0005, 9)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.txt")
	if err := WriteManifest(path, train); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != train.Len() || got.TotalBytes() != train.TotalBytes() {
		t.Fatalf("round trip lost data: %d/%d vs %d/%d",
			got.Len(), got.TotalBytes(), train.Len(), train.TotalBytes())
	}
}

// FuzzReadManifest hardens the manifest parser: arbitrary text never
// panics, and accepted manifests re-serialize to an equivalent manifest.
func FuzzReadManifest(f *testing.F) {
	f.Add("a.jpg 10\nb.jpg 20\n")
	f.Add("# comment\n\n  x 1  \n")
	f.Add("broken line\n")
	f.Add("dup 1\ndup 2\n")
	f.Fuzz(func(t *testing.T, content string) {
		dir := t.TempDir()
		path := filepath.Join(dir, "m.txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Skip()
		}
		m, err := ReadManifest(path)
		if err != nil {
			return
		}
		out := filepath.Join(dir, "out.txt")
		if err := WriteManifest(out, m); err != nil {
			t.Fatal(err)
		}
		back, err := ReadManifest(out)
		if err != nil {
			t.Fatalf("re-read of serialized manifest failed: %v", err)
		}
		if back.Len() != m.Len() || back.TotalBytes() != m.TotalBytes() {
			t.Fatal("serialization not idempotent")
		}
	})
}

func TestEpochSeedSpreads(t *testing.T) {
	// Adjacent epochs must not map to adjacent seeds (the RNG would then
	// correlate shuffles).
	s0 := epochSeed(1, 0)
	s1 := epochSeed(1, 1)
	if s0 == s1 || s0+1 == s1 {
		t.Fatalf("epoch seeds too close: %d, %d", s0, s1)
	}
}
