// Package dataset models DL training datasets as manifests of named,
// sized samples. It provides the deterministic per-epoch shuffling whose
// result is the "filenames list" the DL framework shares with PRISMA
// (paper §IV), a synthetic ImageNet generator matching the paper's
// evaluation dataset (1.28 M training images ≈ 138 GiB, 50 k validation
// images ≈ 6 GiB), and an on-disk generator for real-mode runs.
package dataset

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Sample is one training or validation file.
type Sample struct {
	Name string
	Size int64
}

// Manifest is an immutable ordered collection of samples with name lookup.
type Manifest struct {
	samples []Sample
	index   map[string]int
	total   int64
}

// New builds a manifest from samples. Sample names must be unique and
// non-empty, sizes non-negative.
func New(samples []Sample) (*Manifest, error) {
	m := &Manifest{
		samples: make([]Sample, len(samples)),
		index:   make(map[string]int, len(samples)),
	}
	copy(m.samples, samples)
	for i, s := range m.samples {
		if s.Name == "" {
			return nil, fmt.Errorf("dataset: sample %d has empty name", i)
		}
		if s.Size < 0 {
			return nil, fmt.Errorf("dataset: sample %q has negative size %d", s.Name, s.Size)
		}
		if _, dup := m.index[s.Name]; dup {
			return nil, fmt.Errorf("dataset: duplicate sample name %q", s.Name)
		}
		m.index[s.Name] = i
		m.total += s.Size
	}
	return m, nil
}

// MustNew is New panicking on error, for static test fixtures.
func MustNew(samples []Sample) *Manifest {
	m, err := New(samples)
	if err != nil {
		panic(err)
	}
	return m
}

// Len reports the number of samples.
func (m *Manifest) Len() int { return len(m.samples) }

// Sample returns the i-th sample in manifest order.
func (m *Manifest) Sample(i int) Sample { return m.samples[i] }

// Lookup finds a sample by name.
func (m *Manifest) Lookup(name string) (Sample, bool) {
	i, ok := m.index[name]
	if !ok {
		return Sample{}, false
	}
	return m.samples[i], true
}

// TotalBytes reports the sum of all sample sizes.
func (m *Manifest) TotalBytes() int64 { return m.total }

// MeanSize reports the average sample size, or zero for an empty manifest.
func (m *Manifest) MeanSize() int64 {
	if len(m.samples) == 0 {
		return 0
	}
	return m.total / int64(len(m.samples))
}

// EpochOrder returns the deterministic shuffled visit order for the given
// epoch: a permutation of [0, Len) produced by a Fisher-Yates shuffle
// seeded with (seed, epoch). Identical inputs always yield identical
// permutations — the property that lets the framework and PRISMA agree on
// the request order without coordination (paper §IV: "the filename
// shuffling process is performed identically to the original shuffle
// mechanism of the DL framework").
func (m *Manifest) EpochOrder(seed int64, epoch int) []int {
	order := make([]int, len(m.samples))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewSource(epochSeed(seed, epoch)))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// EpochFileList returns the shuffled filename list for one epoch — the
// artifact the integration shim hands to the PRISMA data plane.
func (m *Manifest) EpochFileList(seed int64, epoch int) []string {
	order := m.EpochOrder(seed, epoch)
	names := make([]string, len(order))
	for i, idx := range order {
		names[i] = m.samples[idx].Name
	}
	return names
}

// epochSeed mixes the dataset seed with the epoch number (splitmix64-style
// finalizer) so epochs produce unrelated permutations.
func epochSeed(seed int64, epoch int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(epoch+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ImageNet scale-1 constants (paper §V: ImageNet ILSVRC-2012).
const (
	ImageNetTrainFiles = 1281167
	ImageNetValFiles   = 50000
	ImageNetTrainBytes = 138 << 30 // ≈ 138 GiB
	ImageNetValBytes   = 6 << 30   // ≈ 6 GiB
)

// SyntheticImageNet builds train and validation manifests that match
// ImageNet's file-count and volume statistics at the given scale in
// (0, 1]. Sizes follow a log-normal distribution (JPEG sizes are heavily
// right-skewed) whose mean matches the real per-file average.
func SyntheticImageNet(scale float64, seed int64) (train, val *Manifest, err error) {
	if scale <= 0 || scale > 1 {
		return nil, nil, fmt.Errorf("dataset: scale %v outside (0, 1]", scale)
	}
	nTrain := int(math.Round(ImageNetTrainFiles * scale))
	nVal := int(math.Round(ImageNetValFiles * scale))
	if nTrain < 1 || nVal < 1 {
		return nil, nil, fmt.Errorf("dataset: scale %v yields an empty split", scale)
	}
	train, err = Synthetic("train", nTrain, ImageNetTrainBytes/ImageNetTrainFiles, 0.5, seed)
	if err != nil {
		return nil, nil, err
	}
	val, err = Synthetic("val", nVal, ImageNetValBytes/ImageNetValFiles, 0.5, seed+1)
	if err != nil {
		return nil, nil, err
	}
	return train, val, nil
}

// Profile describes a dataset family by its file-population statistics —
// the paper motivates PRISMA with training sets "from a few MiB to several
// TiB" (§I cites MNIST/CIFAR at the small end, ImageNet in the middle,
// YouTube-8M and Open Images at the large end). A profile plus a scale
// yields synthetic manifests with matching count/size shape.
type Profile struct {
	Name       string
	TrainFiles int
	ValFiles   int
	TrainBytes int64
	ValBytes   int64
	// Sigma is the log-normal spread of file sizes.
	Sigma float64
}

// Profiles returns the dataset families referenced by the paper, ordered
// by volume.
func Profiles() []Profile {
	return []Profile{
		// 60k 28×28 grayscale digits, ≈45 MiB total: everything fits in
		// any cache; storage optimization is irrelevant (the paper's "few
		// MiB" end).
		{Name: "mnist", TrainFiles: 60_000, ValFiles: 10_000, TrainBytes: 45 << 20, ValBytes: 7 << 20, Sigma: 0.1},
		// 50k 32×32 color images, ≈162 MiB.
		{Name: "cifar10", TrainFiles: 50_000, ValFiles: 10_000, TrainBytes: 162 << 20, ValBytes: 32 << 20, Sigma: 0.15},
		// The paper's evaluation dataset.
		{Name: "imagenet", TrainFiles: ImageNetTrainFiles, ValFiles: ImageNetValFiles, TrainBytes: ImageNetTrainBytes, ValBytes: ImageNetValBytes, Sigma: 0.5},
		// ≈9 M images, ≈ 561 KiB mean (Open Images V4).
		{Name: "openimages", TrainFiles: 9_000_000, ValFiles: 41_620, TrainBytes: 9_000_000 * 561 << 10, ValBytes: 41_620 * 561 << 10, Sigma: 0.6},
		// Frame-level features, ≈1.5 TiB over ≈3.8 M shard-ish files.
		{Name: "youtube8m", TrainFiles: 3_800_000, ValFiles: 100_000, TrainBytes: 15 << 37, ValBytes: 1 << 37, Sigma: 0.4},
	}
}

// ProfileByName finds a profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("dataset: unknown profile %q", name)
}

// Synthesize builds train and validation manifests for a profile at scale
// in (0, 1].
func (p Profile) Synthesize(scale float64, seed int64) (train, val *Manifest, err error) {
	if scale <= 0 || scale > 1 {
		return nil, nil, fmt.Errorf("dataset: scale %v outside (0, 1]", scale)
	}
	nTrain := int(math.Round(float64(p.TrainFiles) * scale))
	nVal := int(math.Round(float64(p.ValFiles) * scale))
	if nTrain < 1 || nVal < 1 {
		return nil, nil, fmt.Errorf("dataset: scale %v yields an empty %s split", scale, p.Name)
	}
	train, err = Synthetic(p.Name+"/train", nTrain, p.TrainBytes/int64(p.TrainFiles), p.Sigma, seed)
	if err != nil {
		return nil, nil, err
	}
	val, err = Synthetic(p.Name+"/val", nVal, p.ValBytes/int64(p.ValFiles), p.Sigma, seed+1)
	if err != nil {
		return nil, nil, err
	}
	return train, val, nil
}

// Synthetic builds a manifest of n samples named "<prefix>/NNNNNNN.jpg"
// whose sizes are log-normally distributed with the given mean and
// log-space sigma, deterministically from seed.
func Synthetic(prefix string, n int, meanSize int64, sigma float64, seed int64) (*Manifest, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dataset: non-positive sample count %d", n)
	}
	if meanSize <= 0 {
		return nil, fmt.Errorf("dataset: non-positive mean size %d", meanSize)
	}
	// For log-normal, E[X] = exp(mu + sigma^2/2); solve for mu.
	mu := math.Log(float64(meanSize)) - sigma*sigma/2
	rng := rand.New(rand.NewSource(seed))
	samples := make([]Sample, n)
	for i := range samples {
		size := int64(math.Exp(mu + sigma*rng.NormFloat64()))
		if size < 1024 {
			size = 1024 // floor: no zero-byte "images"
		}
		samples[i] = Sample{
			Name: fmt.Sprintf("%s/%07d.jpg", prefix, i),
			Size: size,
		}
	}
	return New(samples)
}

// WriteManifest serializes the manifest as "name size" lines.
func WriteManifest(path string, m *Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, s := range m.samples {
		if _, err := fmt.Fprintf(w, "%s %d\n", s.Name, s.Size); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifest parses a manifest written by WriteManifest.
func ReadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var samples []Sample
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var s Sample
		if _, err := fmt.Sscanf(text, "%s %d", &s.Name, &s.Size); err != nil {
			return nil, fmt.Errorf("dataset: %s:%d: malformed line %q: %v", path, line, text, err)
		}
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(samples)
}

// Generate materializes the manifest's files under dir with pseudorandom
// contents of the declared sizes. Intended for small real-mode datasets.
func Generate(dir string, m *Manifest, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, 64<<10)
	for i := 0; i < m.Len(); i++ {
		s := m.Sample(i)
		path := filepath.Join(dir, filepath.FromSlash(s.Name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		remaining := s.Size
		for remaining > 0 {
			chunk := int64(len(buf))
			if remaining < chunk {
				chunk = remaining
			}
			rng.Read(buf[:chunk])
			if _, err := w.Write(buf[:chunk]); err != nil {
				f.Close()
				return err
			}
			remaining -= chunk
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// FromDir scans a directory tree and builds a manifest of every regular
// file, with names relative to dir using forward slashes, sorted for
// determinism.
func FromDir(dir string) (*Manifest, error) {
	var samples []Sample
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		samples = append(samples, Sample{Name: filepath.ToSlash(rel), Size: info.Size()})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	return New(samples)
}
