package metrics

import (
	"sort"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
)

// DefaultLatencyBuckets are Prometheus-style upper bounds covering storage
// and buffer-wait latencies from tens of microseconds to seconds.
var DefaultLatencyBuckets = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
}

// HistogramBucket is one cumulative bucket: Count samples were <= Le.
type HistogramBucket struct {
	Le    time.Duration `json:"le"`
	Count int64         `json:"count"`
}

// HistogramSnapshot is a fixed-bucket histogram view, JSON-friendly so it
// rides inside StageStats over the IPC and HTTP control paths, and directly
// renderable in Prometheus histogram exposition format (the implicit +Inf
// bucket equals Count).
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     time.Duration     `json:"sum"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// BucketedHistogram is a bounded-memory duration histogram for hot paths:
// unlike Histogram it retains only per-bucket counters, never the samples,
// so it can sit on the producer read path and the consumer Take path of a
// long-running server without growing.
type BucketedHistogram struct {
	mu     conc.Mutex
	bounds []time.Duration // ascending upper bounds; +Inf implicit
	counts []int64         // len(bounds)+1, last = overflow
	count  int64
	sum    time.Duration
}

// NewBucketedHistogram returns an empty histogram with the given ascending
// upper bounds (nil selects DefaultLatencyBuckets).
func NewBucketedHistogram(env conc.Env, bounds []time.Duration) *BucketedHistogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	own := make([]time.Duration, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &BucketedHistogram{
		mu:     env.NewMutex(),
		bounds: own,
		counts: make([]int64, len(own)+1),
	}
}

// Observe records one sample. Negative samples clamp to zero.
func (h *BucketedHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	idx := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
	h.mu.Lock()
	h.counts[idx]++
	h.count++
	h.sum += d
	h.mu.Unlock()
}

// Snapshot returns the cumulative-bucket view.
func (h *BucketedHistogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum}
	if h.count == 0 {
		return snap
	}
	snap.Buckets = make([]HistogramBucket, len(h.bounds))
	var cum int64
	for i, le := range h.bounds {
		cum += h.counts[i]
		snap.Buckets[i] = HistogramBucket{Le: le, Count: cum}
	}
	return snap
}

// Bucketize folds the exact sample set into a cumulative fixed-bucket
// snapshot (nil bounds selects DefaultLatencyBuckets) — the bridge from the
// experiment harness's exact histograms to Prometheus exposition.
func (h *Histogram) Bucketize(bounds []time.Duration) HistogramSnapshot {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	samples := h.Snapshot()
	snap := HistogramSnapshot{Count: int64(len(samples))}
	if len(samples) == 0 {
		return snap
	}
	counts := make([]int64, len(bounds))
	for _, d := range samples {
		snap.Sum += d
		idx := sort.Search(len(bounds), func(i int) bool { return bounds[i] >= d })
		if idx < len(bounds) {
			counts[idx]++
		}
	}
	snap.Buckets = make([]HistogramBucket, len(bounds))
	var cum int64
	for i, le := range bounds {
		cum += counts[i]
		snap.Buckets[i] = HistogramBucket{Le: le, Count: cum}
	}
	return snap
}
