// Package metrics provides the measurement primitives used by the PRISMA
// data plane and the experiment harness: counters, gauges, duration
// histograms, and a time-in-state tracker that records how long a discrete
// quantity (e.g. the number of concurrently reading threads) spends at each
// value — the measurement behind the paper's Figure 3 CDF.
//
// All types are safe for use from multiple threads of the owning conc.Env.
package metrics

import (
	"fmt"
	"sort"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	mu conc.Mutex
	n  int64
}

// NewCounter returns a zeroed counter bound to env.
func NewCounter(env conc.Env) *Counter { return &Counter{mu: env.NewMutex()} }

// Add increments the counter by delta, which must be non-negative.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic("metrics: negative Counter delta")
	}
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Gauge is an instantaneous signed value.
type Gauge struct {
	mu conc.Mutex
	v  int64
}

// NewGauge returns a zeroed gauge bound to env.
func NewGauge(env conc.Env) *Gauge { return &Gauge{mu: env.NewMutex()} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v += delta
	return g.v
}

// Value reports the current value.
func (g *Gauge) Value() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// TimeInState tracks how long an integer-valued signal spends at each
// value. Transitions are timestamped with env.Now(); call Finish (or
// Distribution, which finishes implicitly via snapshotting) once the
// observation window ends.
type TimeInState struct {
	env     conc.Env
	mu      conc.Mutex
	current int
	since   time.Duration
	total   map[int]time.Duration
}

// NewTimeInState starts tracking with the signal at initial.
func NewTimeInState(env conc.Env, initial int) *TimeInState {
	return &TimeInState{
		env:     env,
		mu:      env.NewMutex(),
		current: initial,
		since:   env.Now(),
		total:   make(map[int]time.Duration),
	}
}

// Set records a transition of the signal to v at the current time.
func (t *TimeInState) Set(v int) {
	now := t.env.Now()
	t.mu.Lock()
	t.total[t.current] += now - t.since
	t.current = v
	t.since = now
	t.mu.Unlock()
}

// Add shifts the signal by delta (convenience for +1/-1 concurrency
// tracking) and returns the new value.
func (t *TimeInState) Add(delta int) int {
	now := t.env.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total[t.current] += now - t.since
	t.current += delta
	t.since = now
	return t.current
}

// Current reports the present value of the signal.
func (t *TimeInState) Current() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.current
}

// Distribution returns a copy of the accumulated time per value, including
// the in-progress interval up to now.
func (t *TimeInState) Distribution() map[int]time.Duration {
	now := t.env.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]time.Duration, len(t.total)+1)
	for k, v := range t.total {
		out[k] = v
	}
	out[t.current] += now - t.since
	return out
}

// TimeWeightedSum returns Σ value×duration in integer nanoseconds,
// including the in-progress interval up to now. Dividing by the
// observation window length yields the time-weighted mean of the signal;
// keeping the sum in integers makes aggregation across trackers exact and
// deterministic.
func (t *TimeInState) TimeWeightedSum() int64 {
	now := t.env.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum int64
	for v, d := range t.total {
		sum += int64(v) * int64(d)
	}
	sum += int64(t.current) * int64(now-t.since)
	return sum
}

// CDFPoint is one step of a cumulative distribution: the fraction of
// observed time spent at values <= Value.
type CDFPoint struct {
	Value       int
	Fraction    float64 // time share of exactly this value
	CumFraction float64 // time share of all values <= this one
}

// CDF returns the cumulative time distribution over values, sorted
// ascending. It returns nil when no time has been observed.
func (t *TimeInState) CDF() []CDFPoint {
	dist := t.Distribution()
	return CDFOf(dist)
}

// CDFOf converts a value→duration map into sorted CDF points.
func CDFOf(dist map[int]time.Duration) []CDFPoint {
	var total time.Duration
	values := make([]int, 0, len(dist))
	for v, d := range dist {
		if d < 0 {
			panic(fmt.Sprintf("metrics: negative duration %v for value %d", d, v))
		}
		if d == 0 {
			continue
		}
		values = append(values, v)
		total += d
	}
	if total == 0 {
		return nil
	}
	sort.Ints(values)
	out := make([]CDFPoint, 0, len(values))
	var cum float64
	for _, v := range values {
		f := float64(dist[v]) / float64(total)
		cum += f
		out = append(out, CDFPoint{Value: v, Fraction: f, CumFraction: cum})
	}
	// Clamp the final point against floating-point drift.
	out[len(out)-1].CumFraction = 1
	return out
}

// MaxValue returns the largest value with non-zero observed time, or zero
// when nothing was observed.
func MaxValue(dist map[int]time.Duration) int {
	max := 0
	for v, d := range dist {
		if d > 0 && v > max {
			max = v
		}
	}
	return max
}
