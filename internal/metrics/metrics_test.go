package metrics

import (
	"testing"
	"testing/quick"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/sim"
)

func TestCounterBasics(t *testing.T) {
	env := conc.NewReal()
	c := NewCounter(env)
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative delta")
		}
	}()
	NewCounter(conc.NewReal()).Add(-1)
}

func TestGaugeSetAdd(t *testing.T) {
	g := NewGauge(conc.NewReal())
	g.Set(10)
	if got := g.Add(-3); got != 7 {
		t.Fatalf("Add returned %d, want 7", got)
	}
	if g.Value() != 7 {
		t.Fatalf("Value = %d, want 7", g.Value())
	}
}

// simTimeInState runs fn inside a simulation and returns the tracker.
func simTimeInState(t *testing.T, fn func(env conc.Env, ts *TimeInState)) *TimeInState {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	var ts *TimeInState
	s.Spawn("driver", func(*sim.Process) {
		ts = NewTimeInState(env, 0)
		fn(env, ts)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestTimeInStateDistribution(t *testing.T) {
	ts := simTimeInState(t, func(env conc.Env, ts *TimeInState) {
		env.Sleep(2 * time.Second) // 2s at 0
		ts.Set(3)
		env.Sleep(time.Second) // 1s at 3
		ts.Set(1)
		env.Sleep(time.Second) // 1s at 1
	})
	dist := ts.Distribution()
	want := map[int]time.Duration{0: 2 * time.Second, 3: time.Second, 1: time.Second}
	for k, v := range want {
		if dist[k] != v {
			t.Errorf("dist[%d] = %v, want %v", k, dist[k], v)
		}
	}
}

func TestTimeInStateAdd(t *testing.T) {
	ts := simTimeInState(t, func(env conc.Env, ts *TimeInState) {
		if got := ts.Add(2); got != 2 {
			t.Errorf("Add(2) = %d, want 2", got)
		}
		env.Sleep(time.Second)
		if got := ts.Add(-1); got != 1 {
			t.Errorf("Add(-1) = %d, want 1", got)
		}
		env.Sleep(3 * time.Second)
	})
	dist := ts.Distribution()
	if dist[2] != time.Second || dist[1] != 3*time.Second {
		t.Fatalf("dist = %v, want 1s@2, 3s@1", dist)
	}
	if ts.Current() != 1 {
		t.Fatalf("Current = %d, want 1", ts.Current())
	}
}

func TestCDFComputation(t *testing.T) {
	dist := map[int]time.Duration{
		1: 1 * time.Second,
		2: 2 * time.Second,
		4: 1 * time.Second,
	}
	cdf := CDFOf(dist)
	if len(cdf) != 3 {
		t.Fatalf("len(cdf) = %d, want 3", len(cdf))
	}
	if cdf[0].Value != 1 || !close(cdf[0].CumFraction, 0.25) {
		t.Errorf("cdf[0] = %+v, want value 1 cum 0.25", cdf[0])
	}
	if cdf[1].Value != 2 || !close(cdf[1].CumFraction, 0.75) {
		t.Errorf("cdf[1] = %+v, want value 2 cum 0.75", cdf[1])
	}
	if cdf[2].Value != 4 || cdf[2].CumFraction != 1 {
		t.Errorf("cdf[2] = %+v, want value 4 cum 1", cdf[2])
	}
}

func TestCDFEmpty(t *testing.T) {
	if cdf := CDFOf(nil); cdf != nil {
		t.Fatalf("CDFOf(nil) = %v, want nil", cdf)
	}
	if cdf := CDFOf(map[int]time.Duration{1: 0}); cdf != nil {
		t.Fatalf("CDF of zero durations = %v, want nil", cdf)
	}
}

func TestCDFNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for negative duration")
		}
	}()
	CDFOf(map[int]time.Duration{1: -time.Second})
}

// Property: CDF is sorted by value, cumulative fractions are nondecreasing
// within [0,1], and the last point is exactly 1.
func TestCDFMonotoneProperty(t *testing.T) {
	prop := func(raw map[int8]uint16) bool {
		dist := make(map[int]time.Duration)
		for k, v := range raw {
			dist[int(k)] = time.Duration(v) * time.Millisecond
		}
		cdf := CDFOf(dist)
		if cdf == nil {
			total := time.Duration(0)
			for _, d := range dist {
				total += d
			}
			return total == 0
		}
		prevVal := int(-1 << 30)
		prevCum := 0.0
		for _, p := range cdf {
			if p.Value <= prevVal {
				return false
			}
			if p.CumFraction < prevCum-1e-9 || p.CumFraction > 1+1e-9 {
				return false
			}
			prevVal, prevCum = p.Value, p.CumFraction
		}
		return cdf[len(cdf)-1].CumFraction == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxValue(t *testing.T) {
	dist := map[int]time.Duration{3: time.Second, 7: 0, 5: time.Second}
	if got := MaxValue(dist); got != 5 {
		t.Fatalf("MaxValue = %d, want 5 (7 has zero time)", got)
	}
	if got := MaxValue(nil); got != 0 {
		t.Fatalf("MaxValue(nil) = %d, want 0", got)
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram(conc.NewReal())
	for _, d := range []time.Duration{10, 20, 30, 40} {
		h.Observe(d * time.Second)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	if h.Mean() != 25*time.Second {
		t.Fatalf("Mean = %v, want 25s", h.Mean())
	}
	if h.Max() != 40*time.Second {
		t.Fatalf("Max = %v, want 40s", h.Max())
	}
	// Population stddev of {10,20,30,40} = sqrt(125) ≈ 11.18
	sd := h.Stddev().Seconds()
	if sd < 11.1 || sd > 11.3 {
		t.Fatalf("Stddev = %vs, want ≈11.18s", sd)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(conc.NewReal())
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Quantile(0.5); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", got)
	}
	if got := h.Quantile(0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", got)
	}
	if got := h.Quantile(0); got != 1*time.Millisecond {
		t.Fatalf("p0 = %v, want 1ms", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(conc.NewReal())
	if h.Mean() != 0 || h.Stddev() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram stats not all zero")
	}
}

func TestHistogramClampsNegative(t *testing.T) {
	h := NewHistogram(conc.NewReal())
	h.Observe(-time.Second)
	if h.Mean() != 0 {
		t.Fatalf("Mean = %v, want 0 (negative clamped)", h.Mean())
	}
}

func TestHistogramQuantileRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for q > 1")
		}
	}()
	NewHistogram(conc.NewReal()).Quantile(1.5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{2 * time.Second, 4 * time.Second})
	if s.Count != 2 || s.Mean != 3*time.Second || s.Min != 2*time.Second || s.Max != 4*time.Second {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Stddev != time.Second {
		t.Fatalf("Stddev = %v, want 1s", s.Stddev)
	}
	if z := Summarize(nil); z.Count != 0 || z.Mean != 0 {
		t.Fatalf("Summarize(nil) = %+v, want zeroes", z)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestTimeInStateTimeWeightedSum(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	var sum, sum2 int64
	s.Spawn("driver", func(p *sim.Process) {
		ts := NewTimeInState(env, 1)
		env.Sleep(2 * time.Second) // 1 for 2s
		ts.Set(3)
		env.Sleep(time.Second) // 3 for 1s
		ts.Set(0)
		env.Sleep(time.Second) // 0 for 1s
		sum = ts.TimeWeightedSum()
		ts.Set(5)
		env.Sleep(time.Second) // in-progress interval: 5 for 1s
		sum2 = ts.TimeWeightedSum()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := int64(1*2+3*1) * int64(time.Second); sum != want {
		t.Fatalf("TimeWeightedSum = %d, want %d", sum, want)
	}
	if want := int64(1*2+3*1+5*1) * int64(time.Second); sum2 != want {
		t.Fatalf("TimeWeightedSum incl. in-progress = %d, want %d", sum2, want)
	}
}

func TestTimeInStateWeightedSumMatchesDistribution(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("driver", func(p *sim.Process) {
		ts := NewTimeInState(env, 0)
		for i := 1; i <= 5; i++ {
			ts.Set(i)
			env.Sleep(time.Duration(i) * 100 * time.Millisecond)
		}
		var fromDist int64
		for v, d := range ts.Distribution() {
			fromDist += int64(v) * int64(d)
		}
		if got := ts.TimeWeightedSum(); got != fromDist {
			t.Errorf("TimeWeightedSum = %d, Distribution-derived sum = %d", got, fromDist)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
