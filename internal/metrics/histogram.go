package metrics

import (
	"math"
	"sort"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
)

// Histogram records duration samples and answers summary queries. Samples
// are retained exactly (the experiment harness needs faithful means and
// standard deviations over run counts in the single digits to a few
// million, which fits comfortably in memory).
type Histogram struct {
	mu      conc.Mutex
	samples []time.Duration
	sum     time.Duration
}

// NewHistogram returns an empty histogram bound to env.
func NewHistogram(env conc.Env) *Histogram { return &Histogram{mu: env.NewMutex()} }

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.sum += d
	h.mu.Unlock()
}

// Count reports the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean reports the average sample, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Stddev reports the population standard deviation, or zero when fewer
// than two samples exist.
func (h *Histogram) Stddev() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	mean := float64(h.sum) / float64(n)
	var ss float64
	for _, s := range h.samples {
		d := float64(s) - mean
		ss += d * d
	}
	return time.Duration(math.Sqrt(ss / float64(n)))
}

// Quantile reports the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted samples, or zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	if q < 0 || q > 1 {
		panic("metrics: quantile out of [0,1]")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	sorted := make([]time.Duration, n)
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}

// Max reports the largest sample, or zero when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	var max time.Duration
	for _, s := range h.samples {
		if s > max {
			max = s
		}
	}
	return max
}

// Snapshot returns a copy of all samples in insertion order.
func (h *Histogram) Snapshot() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Summary bundles the headline statistics of a sample set. It is what the
// experiment harness reports per configuration ("average and standard
// deviation of 5 runs").
type Summary struct {
	Count  int
	Mean   time.Duration
	Stddev time.Duration
	Min    time.Duration
	Max    time.Duration
}

// Summarize computes a Summary over raw samples.
func Summarize(samples []time.Duration) Summary {
	s := Summary{Count: len(samples)}
	if s.Count == 0 {
		return s
	}
	s.Min = samples[0]
	var sum time.Duration
	for _, d := range samples {
		sum += d
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	s.Mean = sum / time.Duration(s.Count)
	if s.Count >= 2 {
		mean := float64(sum) / float64(s.Count)
		var ss float64
		for _, d := range samples {
			diff := float64(d) - mean
			ss += diff * diff
		}
		s.Stddev = time.Duration(math.Sqrt(ss / float64(s.Count)))
	}
	return s
}
