// Package trace records, serializes, analyzes, and replays storage I/O
// traces. A recorder wraps any storage.Backend and captures one event per
// read (timestamp, file, size, latency, outcome); traces serialize to
// JSON-lines for offline analysis, summarize into latency/throughput
// statistics, and replay against another backend — which turns a captured
// production workload into a repeatable benchmark input, the methodology
// HPC I/O studies rely on (paper §II's "I/O characterization" context).
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// Event is one recorded read.
type Event struct {
	// At is the request's start time on the recorder's clock.
	At time.Duration `json:"at"`
	// Name is the file read.
	Name string `json:"name"`
	// Size is the bytes transferred (0 on error; the reported length for
	// op "size").
	Size int64 `json:"size"`
	// Latency is the request's service duration.
	Latency time.Duration `json:"latency"`
	// Op distinguishes request kinds: "" (whole-file read), "size"
	// (metadata lookup), or "range" (byte-range read).
	Op string `json:"op,omitempty"`
	// Off and N are the byte-range parameters for op "range".
	Off int64 `json:"off,omitempty"`
	N   int64 `json:"n,omitempty"`
	// Error is the failure message, empty on success.
	Error string `json:"error,omitempty"`
}

// Event op tags.
const (
	OpSize  = "size"
	OpRange = "range"
)

// Trace is an ordered sequence of events.
type Trace struct {
	Events []Event
}

// Recorder wraps a backend and appends an Event per request — whole-file
// reads, metadata lookups, and byte-range reads alike (the latter two were
// historically a recording blind spot, which skewed replayed workloads
// toward bulk reads). It is safe for concurrent use; events are kept in
// completion order.
type Recorder struct {
	env   conc.Env
	inner storage.Backend
	rr    storage.RangeReader // inner's range extension, nil when unsupported

	mu     conc.Mutex
	events []Event
}

// NewRecorder wraps inner.
func NewRecorder(env conc.Env, inner storage.Backend) *Recorder {
	rr, _ := inner.(storage.RangeReader)
	return &Recorder{env: env, inner: inner, rr: rr, mu: env.NewMutex()}
}

// SetBufferPool forwards the pool to the wrapped backend (the recorder
// observes reads; payload ownership flows through it untouched).
func (r *Recorder) SetBufferPool(p *mempool.Pool) {
	if pa, ok := r.inner.(storage.PoolAttacher); ok {
		pa.SetBufferPool(p)
	}
}

func (r *Recorder) record(ev Event) {
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// ReadFile implements storage.Backend.
func (r *Recorder) ReadFile(name string) (storage.Data, error) {
	start := r.env.Now()
	data, err := r.inner.ReadFile(name)
	ev := Event{At: start, Name: name, Size: data.Size, Latency: r.env.Now() - start}
	if err != nil {
		ev.Error = err.Error()
		ev.Size = 0
	}
	r.record(ev)
	return data, err
}

// Size implements storage.Backend, recording the lookup with op "size"
// (Size holds the reported length; no bytes move).
func (r *Recorder) Size(name string) (int64, error) {
	start := r.env.Now()
	n, err := r.inner.Size(name)
	ev := Event{At: start, Name: name, Size: n, Latency: r.env.Now() - start, Op: OpSize}
	if err != nil {
		ev.Error = err.Error()
		ev.Size = 0
	}
	r.record(ev)
	return n, err
}

// ReadRange implements storage.RangeReader when the wrapped backend does,
// recording the request with op "range" and its offset/length. Without the
// extension it records the refusal and returns an error.
func (r *Recorder) ReadRange(name string, off, n int64) (storage.Data, error) {
	start := r.env.Now()
	var (
		data storage.Data
		err  error
	)
	if r.rr == nil {
		err = fmt.Errorf("trace: backend %T does not support range reads", r.inner)
	} else {
		data, err = r.rr.ReadRange(name, off, n)
	}
	ev := Event{At: start, Name: name, Size: data.Size, Latency: r.env.Now() - start, Op: OpRange, Off: off, N: n}
	if err != nil {
		ev.Error = err.Error()
		ev.Size = 0
	}
	r.record(ev)
	return data, err
}

// ReadRangeBatch implements storage.BatchRangeReader when the wrapped
// backend does, recording one "range" event per constituent range (all
// sharing the batch's start and latency) so replay and byte accounting see
// the same access stream a per-sample workload would produce.
func (r *Recorder) ReadRangeBatch(name string, ranges []storage.Range, out []storage.Data) ([]storage.Data, error) {
	brr, ok := r.inner.(storage.BatchRangeReader)
	if !ok {
		err := fmt.Errorf("trace: backend %T does not support batched range reads", r.inner)
		start := r.env.Now()
		for _, rg := range ranges {
			r.record(Event{At: start, Name: name, Op: OpRange, Off: rg.Off, N: rg.N, Error: err.Error()})
		}
		return out, err
	}
	start := r.env.Now()
	base := len(out)
	res, err := brr.ReadRangeBatch(name, ranges, out)
	lat := r.env.Now() - start
	for i, rg := range ranges {
		ev := Event{At: start, Name: name, Latency: lat, Op: OpRange, Off: rg.Off, N: rg.N}
		if err != nil {
			ev.Error = err.Error()
		} else {
			ev.Size = res[base+i].Size
		}
		r.record(ev)
	}
	if err != nil {
		return out, err
	}
	return res, nil
}

// Trace snapshots the recorded events.
func (r *Recorder) Trace() *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return &Trace{Events: out}
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Write serializes the trace as JSON lines.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a JSON-lines trace.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	dec := json.NewDecoder(r)
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", len(t.Events)+1, err)
		}
		t.Events = append(t.Events, ev)
	}
	return t, nil
}

// Summary aggregates a trace.
type Summary struct {
	Events        int
	Errors        int
	Bytes         int64
	Duration      time.Duration // last completion − first start
	ReadsPerSec   float64
	MeanLatency   time.Duration
	P50, P95, P99 time.Duration
	MaxLatency    time.Duration
}

// Summarize computes trace statistics.
func (t *Trace) Summarize() Summary {
	s := Summary{Events: len(t.Events)}
	if s.Events == 0 {
		return s
	}
	lat := make([]time.Duration, 0, len(t.Events))
	var sum time.Duration
	first, last := t.Events[0].At, time.Duration(0)
	for _, ev := range t.Events {
		if ev.Error != "" {
			s.Errors++
		}
		if ev.Op != OpSize { // size lookups move no bytes
			s.Bytes += ev.Size
		}
		lat = append(lat, ev.Latency)
		sum += ev.Latency
		if ev.At < first {
			first = ev.At
		}
		if end := ev.At + ev.Latency; end > last {
			last = end
		}
		if ev.Latency > s.MaxLatency {
			s.MaxLatency = ev.Latency
		}
	}
	s.Duration = last - first
	if s.Duration > 0 {
		s.ReadsPerSec = float64(s.Events) / s.Duration.Seconds()
	}
	s.MeanLatency = sum / time.Duration(s.Events)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		idx := int(p*float64(len(lat))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return lat[idx]
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// ConcurrencyTimeline reports, per bucket of the given width, the maximum
// number of overlapping requests — a quick view of workload parallelism.
func (t *Trace) ConcurrencyTimeline(bucket time.Duration) []int {
	if bucket <= 0 || len(t.Events) == 0 {
		return nil
	}
	var end time.Duration
	for _, ev := range t.Events {
		if e := ev.At + ev.Latency; e > end {
			end = e
		}
	}
	n := int(end/bucket) + 1
	depth := make([]int, n)
	for _, ev := range t.Events {
		from := int(ev.At / bucket)
		to := int((ev.At + ev.Latency) / bucket)
		for b := from; b <= to && b < n; b++ {
			depth[b]++
		}
	}
	return depth
}

// Replay re-issues the trace's reads against backend on env, preserving
// inter-arrival times (scaled by speedup > 0; 2 = twice as fast). It
// returns the replay's own recorded trace for comparison.
func (t *Trace) Replay(env conc.Env, backend storage.Backend, speedup float64) (*Trace, error) {
	if speedup <= 0 {
		return nil, fmt.Errorf("trace: non-positive speedup %v", speedup)
	}
	if len(t.Events) == 0 {
		return &Trace{}, nil
	}
	rec := NewRecorder(env, backend)
	base := t.Events[0].At
	start := env.Now()
	wg := env.NewWaitGroup()
	wg.Add(len(t.Events))
	for i, ev := range t.Events {
		ev := ev
		env.Go(fmt.Sprintf("replay-%d", i), func() {
			defer wg.Done()
			due := start + time.Duration(float64(ev.At-base)/speedup)
			if delay := due - env.Now(); delay > 0 {
				env.Sleep(delay)
			}
			switch ev.Op {
			case OpSize:
				_, _ = rec.Size(ev.Name)
			case OpRange:
				d, _ := rec.ReadRange(ev.Name, ev.Off, ev.N)
				d.Release()
			default:
				// Replay discards payloads; release any pooled lease so a
				// pooled backend can be replayed against without leaking.
				d, _ := rec.ReadFile(ev.Name)
				d.Release()
			}
		})
	}
	wg.Wait()
	return rec.Trace(), nil
}
