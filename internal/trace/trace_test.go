package trace

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

func runSim(t *testing.T, body func(env conc.Env)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("test-body", func(*sim.Process) { body(env) })
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func backendFixture(env conc.Env, n int, lat time.Duration, channels int) (storage.Backend, []string) {
	samples := make([]dataset.Sample, n)
	names := make([]string, n)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("f%03d", i), Size: 1000}
		names[i] = samples[i].Name
	}
	dev, err := storage.NewDevice(env, storage.DeviceSpec{BaseLatency: lat, BytesPerSecond: 1e15, Channels: channels})
	if err != nil {
		panic(err)
	}
	return storage.NewModeledBackend(dataset.MustNew(samples), dev, nil), names
}

func TestRecorderCapturesEvents(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, names := backendFixture(env, 3, time.Millisecond, 2)
		rec := NewRecorder(env, backend)
		for _, n := range names {
			if _, err := rec.ReadFile(n); err != nil {
				t.Fatal(err)
			}
		}
		tr := rec.Trace()
		if len(tr.Events) != 3 || rec.Len() != 3 {
			t.Fatalf("events = %d, want 3", len(tr.Events))
		}
		ev := tr.Events[0]
		if ev.Name != names[0] || ev.Size != 1000 || ev.Latency != time.Millisecond || ev.Error != "" {
			t.Fatalf("event = %+v", ev)
		}
		if tr.Events[1].At != time.Millisecond {
			t.Fatalf("second event at %v, want 1ms (serial)", tr.Events[1].At)
		}
	})
}

func TestRecorderCapturesErrors(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, _ := backendFixture(env, 1, time.Millisecond, 1)
		rec := NewRecorder(env, backend)
		if _, err := rec.ReadFile("ghost"); err == nil {
			t.Fatal("missing read succeeded")
		}
		ev := rec.Trace().Events[0]
		if ev.Error == "" || ev.Size != 0 {
			t.Fatalf("error event = %+v", ev)
		}
	})
}

func TestRecorderSizeTraced(t *testing.T) {
	// Size used to be a recording blind spot (passthrough, no event); it
	// must now land in the trace tagged op "size" so replays reproduce
	// metadata traffic too.
	runSim(t, func(env conc.Env) {
		backend, names := backendFixture(env, 1, time.Millisecond, 1)
		rec := NewRecorder(env, backend)
		n, err := rec.Size(names[0])
		if err != nil || n != 1000 {
			t.Fatalf("Size = %d, %v", n, err)
		}
		tr := rec.Trace()
		if len(tr.Events) != 1 {
			t.Fatalf("events = %d, want 1", len(tr.Events))
		}
		ev := tr.Events[0]
		if ev.Op != OpSize || ev.Name != names[0] || ev.Size != 1000 {
			t.Fatalf("size event = %+v", ev)
		}
		// Metadata lookups move no bytes: the summary must not count them.
		if got := tr.Summarize().Bytes; got != 0 {
			t.Fatalf("Summarize().Bytes = %d, want 0 for size-only trace", got)
		}
	})
}

func TestRecorderRangeTraced(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, names := backendFixture(env, 1, time.Millisecond, 1)
		rec := NewRecorder(env, backend)
		d, err := rec.ReadRange(names[0], 100, 200)
		if err != nil || d.Size != 200 {
			t.Fatalf("ReadRange = %+v, %v", d, err)
		}
		tr := rec.Trace()
		if len(tr.Events) != 1 {
			t.Fatalf("events = %d, want 1", len(tr.Events))
		}
		ev := tr.Events[0]
		if ev.Op != OpRange || ev.Off != 100 || ev.N != 200 || ev.Size != 200 {
			t.Fatalf("range event = %+v", ev)
		}
	})
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr := &Trace{Events: []Event{
		{At: 0, Name: "a", Size: 10, Latency: time.Millisecond},
		{At: time.Millisecond, Name: "b", Size: 0, Latency: 2 * time.Millisecond, Error: "boom"},
	}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 2 {
		t.Fatalf("events = %d, want 2", len(got.Events))
	}
	if got.Events[1] != tr.Events[1] {
		t.Fatalf("event = %+v, want %+v", got.Events[1], tr.Events[1])
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 100; i++ {
		tr.Events = append(tr.Events, Event{
			At:      time.Duration(i) * time.Millisecond,
			Name:    "f",
			Size:    1000,
			Latency: time.Duration(i+1) * time.Millisecond,
		})
	}
	s := tr.Summarize()
	if s.Events != 100 || s.Errors != 0 || s.Bytes != 100_000 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 50*time.Millisecond || s.P99 != 99*time.Millisecond || s.MaxLatency != 100*time.Millisecond {
		t.Fatalf("latency quantiles = %v/%v/%v", s.P50, s.P99, s.MaxLatency)
	}
	// Last completion at 99ms+100ms = 199ms.
	if s.Duration != 199*time.Millisecond {
		t.Fatalf("duration = %v, want 199ms", s.Duration)
	}
	if s.ReadsPerSec < 500 || s.ReadsPerSec > 510 {
		t.Fatalf("rate = %v, want ≈502.5", s.ReadsPerSec)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := (&Trace{}).Summarize()
	if s.Events != 0 || s.MeanLatency != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestConcurrencyTimeline(t *testing.T) {
	tr := &Trace{Events: []Event{
		{At: 0, Latency: 10 * time.Millisecond},
		{At: 5 * time.Millisecond, Latency: 10 * time.Millisecond},
		{At: 30 * time.Millisecond, Latency: time.Millisecond},
	}}
	depth := tr.ConcurrencyTimeline(10 * time.Millisecond)
	if len(depth) != 4 {
		t.Fatalf("buckets = %d, want 4", len(depth))
	}
	if depth[0] != 2 { // both first reads overlap bucket [0,10)
		t.Fatalf("depth[0] = %d, want 2", depth[0])
	}
	if depth[3] != 1 {
		t.Fatalf("depth[3] = %d, want 1", depth[3])
	}
	if tl := (&Trace{}).ConcurrencyTimeline(time.Second); tl != nil {
		t.Fatal("empty trace produced a timeline")
	}
}

func TestReplayPreservesArrivals(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	var replayed *Trace
	s.Spawn("driver", func(*sim.Process) {
		backend, names := backendFixture(env, 4, time.Millisecond, 4)
		// Hand-built trace: arrivals at 0, 50, 100, 150 ms.
		orig := &Trace{}
		for i, n := range names {
			orig.Events = append(orig.Events, Event{At: time.Duration(i*50) * time.Millisecond, Name: n})
		}
		var err error
		replayed, err = orig.Replay(env, backend, 1)
		if err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(replayed.Events) != 4 {
		t.Fatalf("replayed %d events, want 4", len(replayed.Events))
	}
	// Completion-ordered events: arrivals preserved at 0/50/100/150ms.
	for i, ev := range replayed.Events {
		want := time.Duration(i*50) * time.Millisecond
		if ev.At != want {
			t.Fatalf("event %d at %v, want %v", i, ev.At, want)
		}
	}
}

func TestReplaySpeedup(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	var elapsed time.Duration
	s.Spawn("driver", func(*sim.Process) {
		backend, names := backendFixture(env, 2, time.Millisecond, 2)
		orig := &Trace{Events: []Event{
			{At: 0, Name: names[0]},
			{At: 100 * time.Millisecond, Name: names[1]},
		}}
		start := env.Now()
		if _, err := orig.Replay(env, backend, 2); err != nil {
			t.Error(err)
		}
		elapsed = env.Now() - start
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 100ms gap at 2x = 50ms + 1ms read.
	if elapsed != 51*time.Millisecond {
		t.Fatalf("elapsed = %v, want 51ms", elapsed)
	}
}

func TestReplayValidation(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, _ := backendFixture(env, 1, time.Millisecond, 1)
		if _, err := (&Trace{}).Replay(env, backend, 0); err == nil {
			t.Error("zero speedup accepted")
		}
		out, err := (&Trace{}).Replay(env, backend, 1)
		if err != nil || len(out.Events) != 0 {
			t.Errorf("empty replay = %v, %v", out, err)
		}
	})
}

func TestRecorderUnderConcurrentReaders(t *testing.T) {
	runSim(t, func(env conc.Env) {
		backend, names := backendFixture(env, 40, time.Millisecond, 8)
		rec := NewRecorder(env, backend)
		wg := env.NewWaitGroup()
		wg.Add(4)
		for w := 0; w < 4; w++ {
			w := w
			env.Go(fmt.Sprintf("r%d", w), func() {
				defer wg.Done()
				for i := w; i < len(names); i += 4 {
					_, _ = rec.ReadFile(names[i])
				}
			})
		}
		wg.Wait()
		if rec.Len() != 40 {
			t.Fatalf("events = %d, want 40", rec.Len())
		}
		// The timeline must show overlap.
		depth := rec.Trace().ConcurrencyTimeline(time.Millisecond)
		max := 0
		for _, d := range depth {
			if d > max {
				max = d
			}
		}
		if max < 4 {
			t.Fatalf("max concurrency %d, want 4", max)
		}
	})
}
