package fairness

import (
	"fmt"
	"sort"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
)

// Demand is how the arbiter observes a tenant: a cumulative request count
// (reads issued so far). The arbiter differentiates it per interval to
// estimate demand.
type Demand func() int64

// tenant is one job under arbitration.
type tenant struct {
	id     string
	weight float64
	bucket *TokenBucket
	demand Demand

	lastCount int64
	lastRate  float64 // measured requests/s over the last interval
}

// Arbiter divides a shared device's request capacity across tenants by
// weighted max-min fairness: tenants demanding less than their fair share
// keep their demand; the slack is redistributed to the rest by weight. It
// is a control-plane policy in the paper's sense — it has the system-wide
// visibility individual DL jobs lack.
type Arbiter struct {
	env      conc.Env
	capacity float64 // total requests/s to distribute
	headroom float64 // over-allocation factor so estimates do not starve tenants

	mu      conc.Mutex
	tenants map[string]*tenant
	order   []string
	started bool
	stopped bool
}

// NewArbiter creates an arbiter over a device capacity (requests/s).
func NewArbiter(env conc.Env, capacity float64) (*Arbiter, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("fairness: non-positive capacity %v", capacity)
	}
	return &Arbiter{
		env:      env,
		capacity: capacity,
		headroom: 1.05,
		mu:       env.NewMutex(),
		tenants:  make(map[string]*tenant),
	}, nil
}

// Register adds a tenant with its weight, throttle bucket, and demand
// probe.
func (a *Arbiter) Register(id string, weight float64, bucket *TokenBucket, demand Demand) error {
	if weight <= 0 {
		return fmt.Errorf("fairness: non-positive weight %v for %q", weight, id)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.tenants[id]; dup {
		return fmt.Errorf("fairness: tenant %q already registered", id)
	}
	a.tenants[id] = &tenant{id: id, weight: weight, bucket: bucket, demand: demand, lastCount: demand()}
	a.order = append(a.order, id)
	return nil
}

// SetWeight adjusts a registered tenant's weight; the new split takes
// effect at the next Tick.
func (a *Arbiter) SetWeight(id string, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("fairness: non-positive weight %v for %q", weight, id)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tenants[id]
	if !ok {
		return fmt.Errorf("fairness: tenant %q not registered", id)
	}
	t.weight = weight
	return nil
}

// Unregister removes a tenant; its bucket is opened wide (no policy).
func (a *Arbiter) Unregister(id string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tenants[id]
	if !ok {
		return
	}
	t.bucket.SetRate(a.capacity)
	delete(a.tenants, id)
	for i, tid := range a.order {
		if tid == id {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
}

// Allocation reports the rate currently granted to a tenant.
func (a *Arbiter) Allocation(id string) (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tenants[id]
	if !ok {
		return 0, false
	}
	return t.bucket.Rate(), true
}

// SetCapacity adjusts the total request rate the arbiter distributes — the
// graceful-degradation knob: while the backend is degraded the control
// plane scales the capacity down and every tenant's grant shrinks
// proportionally at the next Tick, instead of the pipeline collapsing.
func (a *Arbiter) SetCapacity(capacity float64) {
	if capacity <= 0 {
		return
	}
	a.mu.Lock()
	a.capacity = capacity
	a.mu.Unlock()
}

// Capacity reports the rate currently being distributed.
func (a *Arbiter) Capacity() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.capacity
}

// Grant is the monitoring view of one tenant's arbitration state.
type Grant struct {
	ID       string
	Weight   float64
	Granted  float64 // rate currently set on the tenant's bucket
	Measured float64 // demand estimate from the last Tick (requests/s)
}

// Grants snapshots every registered tenant's grant in registration order.
func (a *Arbiter) Grants() []Grant {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Grant, 0, len(a.order))
	for _, id := range a.order {
		t := a.tenants[id]
		out = append(out, Grant{ID: id, Weight: t.weight, Granted: t.bucket.Rate(), Measured: t.lastRate})
	}
	return out
}

// Tick measures per-tenant demand over the elapsed interval and applies a
// weighted max-min allocation.
func (a *Arbiter) Tick(interval time.Duration) {
	if interval <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if len(a.tenants) == 0 {
		return
	}
	// Measure demand. A tenant running at (or near) its granted rate is
	// throttle-limited: its true demand is unknown but at least the grant,
	// so treat it as unbounded — otherwise a tenant suppressed by device
	// contention or a low grant would look permanently satisfied and
	// max-min would never return its fair share (progressive filling needs
	// the "wants more" signal).
	for _, id := range a.order {
		t := a.tenants[id]
		count := t.demand()
		t.lastRate = float64(count-t.lastCount) / interval.Seconds()
		t.lastCount = count
		if t.lastRate >= 0.9*t.bucket.Rate() {
			t.lastRate = a.capacity / a.headroom // saturated: demand ≥ share
		}
	}
	alloc := a.maxMin()
	for id, rate := range alloc {
		a.tenants[id].bucket.SetRate(rate)
	}
}

// maxMin computes the weighted max-min allocation against a.capacity.
// A tenant whose measured demand is below its share is capped slightly
// above that demand (headroom lets growing demand reveal itself); the
// slack is re-split among the remaining tenants by weight. Caller holds
// a.mu.
func (a *Arbiter) maxMin() map[string]float64 {
	type item struct {
		id     string
		weight float64
		demand float64
	}
	items := make([]item, 0, len(a.tenants))
	for _, id := range a.order {
		t := a.tenants[id]
		items = append(items, item{id: id, weight: t.weight, demand: t.lastRate * a.headroom})
	}
	// Sort by demand-per-weight ascending so satisfied tenants freeze
	// first (standard progressive-filling argument).
	sort.Slice(items, func(i, j int) bool {
		return items[i].demand/items[i].weight < items[j].demand/items[j].weight
	})
	alloc := make(map[string]float64, len(items))
	remaining := a.capacity
	weightSum := 0.0
	for _, it := range items {
		weightSum += it.weight
	}
	for _, it := range items {
		share := remaining * it.weight / weightSum
		grant := share
		if it.demand < share {
			grant = it.demand
		}
		if grant < 1 {
			grant = 1 // never starve a tenant to zero rate
		}
		alloc[it.id] = grant
		remaining -= grant
		weightSum -= it.weight
		if remaining < 0 {
			remaining = 0
		}
	}
	return alloc
}

// Start runs the arbitration loop every interval until Stop.
func (a *Arbiter) Start(interval time.Duration) {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		panic("fairness: arbiter started twice")
	}
	a.started = true
	a.mu.Unlock()
	a.env.Go("fairness-arbiter", func() {
		for {
			a.env.Sleep(interval)
			a.mu.Lock()
			stopped := a.stopped
			a.mu.Unlock()
			if stopped {
				return
			}
			a.Tick(interval)
		}
	})
}

// Stop terminates the loop after its current sleep.
func (a *Arbiter) Stop() {
	a.mu.Lock()
	a.stopped = true
	a.mu.Unlock()
}
