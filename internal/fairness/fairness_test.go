package fairness

import (
	"fmt"
	"math"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

func runSim(t *testing.T, body func(env conc.Env)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("test-body", func(*sim.Process) { body(env) })
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	env := conc.NewReal()
	if _, err := NewTokenBucket(env, 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewTokenBucket(env, 1, 0); err == nil {
		t.Error("zero burst accepted")
	}
}

func TestTokenBucketRateLimits(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, err := NewTokenBucket(env, 100, 1) // 100 tokens/s, tiny burst
		if err != nil {
			t.Fatal(err)
		}
		start := env.Now()
		for i := 0; i < 50; i++ {
			b.Acquire(1)
		}
		elapsed := env.Now() - start
		// 50 tokens at 100/s ≈ 0.5s (1 free from the burst).
		if elapsed < 400*time.Millisecond || elapsed > 600*time.Millisecond {
			t.Fatalf("elapsed %v, want ≈490ms", elapsed)
		}
	})
}

func TestTokenBucketBurstIsFree(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, _ := NewTokenBucket(env, 10, 100)
		start := env.Now()
		for i := 0; i < 100; i++ {
			b.Acquire(1)
		}
		if env.Now() != start {
			t.Fatalf("burst consumed %v of time, want 0", env.Now()-start)
		}
	})
}

func TestTokenBucketSetRate(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, _ := NewTokenBucket(env, 10, 1)
		b.Acquire(1) // drain the burst
		b.SetRate(1000)
		if b.Rate() != 1000 {
			t.Fatalf("Rate = %v, want 1000", b.Rate())
		}
		start := env.Now()
		for i := 0; i < 100; i++ {
			b.Acquire(1)
		}
		elapsed := env.Now() - start
		if elapsed > 200*time.Millisecond {
			t.Fatalf("elapsed %v after rate raise, want ≈100ms", elapsed)
		}
	})
}

func TestTokenBucketAcquireZeroIsFree(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, _ := NewTokenBucket(env, 1, 1)
		start := env.Now()
		b.Acquire(0)
		b.Acquire(-5)
		if env.Now() != start {
			t.Fatal("non-positive Acquire consumed time")
		}
	})
}

func TestTokenBucketConcurrentFairSharing(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, _ := NewTokenBucket(env, 1000, 1)
		counts := make([]int, 2)
		wg := env.NewWaitGroup()
		wg.Add(2)
		deadline := env.Now() + time.Second
		for i := 0; i < 2; i++ {
			i := i
			env.Go(fmt.Sprintf("acquirer-%d", i), func() {
				defer wg.Done()
				for env.Now() < deadline {
					b.Acquire(1)
					counts[i]++
				}
			})
		}
		wg.Wait()
		total := counts[0] + counts[1]
		if total < 900 || total > 1200 {
			t.Fatalf("total = %d, want ≈1000 (rate-limited)", total)
		}
	})
}

// stageFixture builds a stage over a shared device with optional throttle.
func stageFixture(env conc.Env, dev *storage.Device, n int, bucket *TokenBucket) (*core.Stage, []string) {
	samples := make([]dataset.Sample, n)
	names := make([]string, n)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("f%04d", i), Size: 1000}
		names[i] = samples[i].Name
	}
	backend := storage.NewModeledBackend(dataset.MustNew(samples), dev, nil)
	if bucket != nil {
		return core.NewStage(env, backend, ThrottleObject{Bucket: bucket}), names
	}
	return core.NewStage(env, backend, nil...), names
}

func TestThrottleObjectLimitsStage(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := storage.NewDevice(env, storage.DeviceSpec{BaseLatency: time.Microsecond, BytesPerSecond: 1e12, Channels: 8})
		bucket, _ := NewTokenBucket(env, 100, 1)
		st, names := stageFixture(env, dev, 50, bucket)
		start := env.Now()
		for _, n := range names {
			if _, err := st.Read(n); err != nil {
				t.Fatal(err)
			}
		}
		elapsed := env.Now() - start
		if elapsed < 400*time.Millisecond {
			t.Fatalf("elapsed %v, want >= ~0.5s at 100 reads/s", elapsed)
		}
		// Reads still completed (pass-through, not rejection).
		if st.Stats().Bypasses != 50 {
			t.Fatalf("Bypasses = %d, want 50", st.Stats().Bypasses)
		}
	})
}

func TestThrottledBackend(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := storage.NewDevice(env, storage.DeviceSpec{BaseLatency: time.Microsecond, BytesPerSecond: 1e12, Channels: 8})
		samples := []dataset.Sample{{Name: "a", Size: 10}}
		inner := storage.NewModeledBackend(dataset.MustNew(samples), dev, nil)
		bucket, _ := NewTokenBucket(env, 10, 1)
		tb := ThrottledBackend{Bucket: bucket, Inner: inner}
		start := env.Now()
		for i := 0; i < 11; i++ {
			if _, err := tb.ReadFile("a"); err != nil {
				t.Fatal(err)
			}
		}
		if env.Now()-start < 900*time.Millisecond {
			t.Fatalf("elapsed %v, want ≈1s at 10 reads/s", env.Now()-start)
		}
		if n, err := tb.Size("a"); err != nil || n != 10 {
			t.Fatalf("Size = %d, %v", n, err)
		}
	})
}

func TestArbiterValidation(t *testing.T) {
	env := conc.NewReal()
	if _, err := NewArbiter(env, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	a, _ := NewArbiter(env, 100)
	bucket, _ := NewTokenBucket(env, 1, 1)
	if err := a.Register("x", 0, bucket, func() int64 { return 0 }); err == nil {
		t.Error("zero weight accepted")
	}
	if err := a.Register("x", 1, bucket, func() int64 { return 0 }); err != nil {
		t.Error(err)
	}
	if err := a.Register("x", 1, bucket, func() int64 { return 0 }); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestArbiterEqualSplitUnderSaturation(t *testing.T) {
	runSim(t, func(env conc.Env) {
		a, _ := NewArbiter(env, 1000)
		var c1, c2 metrics.Counter
		b1, _ := NewTokenBucket(env, 1000, 1)
		b2, _ := NewTokenBucket(env, 1000, 1)
		cnt1 := metrics.NewCounter(env)
		cnt2 := metrics.NewCounter(env)
		_ = a.Register("job1", 1, b1, cnt1.Value)
		_ = a.Register("job2", 1, b2, cnt2.Value)
		// Both tenants demand far above capacity.
		cnt1.Add(5000)
		cnt2.Add(5000)
		env.Sleep(time.Second)
		a.Tick(time.Second)
		r1, _ := a.Allocation("job1")
		r2, _ := a.Allocation("job2")
		if math.Abs(r1-500) > 50 || math.Abs(r2-500) > 50 {
			t.Fatalf("allocations %v/%v, want ≈500/500", r1, r2)
		}
		_ = c1
		_ = c2
	})
}

func TestArbiterWeightedSplit(t *testing.T) {
	runSim(t, func(env conc.Env) {
		a, _ := NewArbiter(env, 900)
		b1, _ := NewTokenBucket(env, 900, 1)
		b2, _ := NewTokenBucket(env, 900, 1)
		cnt1 := metrics.NewCounter(env)
		cnt2 := metrics.NewCounter(env)
		_ = a.Register("gold", 2, b1, cnt1.Value)
		_ = a.Register("bronze", 1, b2, cnt2.Value)
		cnt1.Add(10000)
		cnt2.Add(10000)
		env.Sleep(time.Second)
		a.Tick(time.Second)
		r1, _ := a.Allocation("gold")
		r2, _ := a.Allocation("bronze")
		if math.Abs(r1-600) > 60 || math.Abs(r2-300) > 30 {
			t.Fatalf("allocations %v/%v, want ≈600/300 (2:1)", r1, r2)
		}
	})
}

func TestArbiterLowDemandTenantKeepsDemandOnly(t *testing.T) {
	runSim(t, func(env conc.Env) {
		a, _ := NewArbiter(env, 1000)
		b1, _ := NewTokenBucket(env, 1000, 1)
		b2, _ := NewTokenBucket(env, 1000, 1)
		cnt1 := metrics.NewCounter(env)
		cnt2 := metrics.NewCounter(env)
		_ = a.Register("light", 1, b1, cnt1.Value)
		_ = a.Register("heavy", 1, b2, cnt2.Value)
		cnt1.Add(100)  // demands ≈100/s
		cnt2.Add(5000) // demands far more
		env.Sleep(time.Second)
		a.Tick(time.Second)
		r1, _ := a.Allocation("light")
		r2, _ := a.Allocation("heavy")
		if r1 > 150 {
			t.Fatalf("light tenant granted %v, want ≈its demand (~105)", r1)
		}
		if r2 < 800 {
			t.Fatalf("heavy tenant granted %v, want the slack (≈895)", r2)
		}
	})
}

func TestArbiterNeverStarves(t *testing.T) {
	runSim(t, func(env conc.Env) {
		a, _ := NewArbiter(env, 1000)
		b1, _ := NewTokenBucket(env, 1000, 1)
		cnt := metrics.NewCounter(env)
		_ = a.Register("idle", 1, b1, cnt.Value)
		env.Sleep(time.Second)
		a.Tick(time.Second) // zero demand
		r, _ := a.Allocation("idle")
		if r < 1 {
			t.Fatalf("idle tenant granted %v, want >= 1 (no starvation)", r)
		}
	})
}

func TestArbiterUnregisterOpensBucket(t *testing.T) {
	runSim(t, func(env conc.Env) {
		a, _ := NewArbiter(env, 1000)
		b1, _ := NewTokenBucket(env, 5, 1)
		cnt := metrics.NewCounter(env)
		_ = a.Register("job", 1, b1, cnt.Value)
		a.Unregister("job")
		if b1.Rate() != 1000 {
			t.Fatalf("rate after unregister = %v, want capacity 1000", b1.Rate())
		}
		if _, ok := a.Allocation("job"); ok {
			t.Fatal("unregistered tenant still allocated")
		}
		a.Unregister("job") // idempotent
	})
}

func TestTokenBucketTryAcquire(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, _ := NewTokenBucket(env, 10, 2)
		if ok, _ := b.TryAcquire(2); !ok {
			t.Fatal("full burst refused")
		}
		ok, wait := b.TryAcquire(1)
		if ok {
			t.Fatal("empty bucket granted a token")
		}
		// 1 token at 10/s refills in 100ms; the hint must say so.
		if wait < 50*time.Millisecond || wait > 150*time.Millisecond {
			t.Fatalf("retry-after hint %v, want ≈100ms", wait)
		}
		// A failed TryAcquire must not charge the bucket: after the hinted
		// wait the token really is there.
		env.Sleep(wait)
		if ok, _ := b.TryAcquire(1); !ok {
			t.Fatal("token not available after hinted wait")
		}
		if ok, _ := b.TryAcquire(0); !ok {
			t.Fatal("zero acquire should always succeed")
		}
	})
}

func TestTokenBucketChargeDebt(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, _ := NewTokenBucket(env, 1000, 1)
		b.Charge(500) // byte-style post-hoc charge: 0.5s of debt
		if !b.InDebt() {
			t.Fatal("bucket not in debt after Charge")
		}
		start := env.Now()
		b.AwaitNonNegative()
		elapsed := env.Now() - start
		if elapsed < 400*time.Millisecond || elapsed > 600*time.Millisecond {
			t.Fatalf("debt settled in %v, want ≈0.5s", elapsed)
		}
		if b.InDebt() {
			t.Fatal("still in debt after AwaitNonNegative")
		}
		b.AwaitNonNegative() // settled bucket: immediate
	})
}

func TestThrottledBackendForwardsReadRange(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := storage.NewDevice(env, storage.DeviceSpec{BaseLatency: time.Microsecond, BytesPerSecond: 1e12, Channels: 8})
		samples := []dataset.Sample{{Name: "shard", Size: 1000}}
		inner := storage.NewModeledBackend(dataset.MustNew(samples), dev, nil)
		bucket, _ := NewTokenBucket(env, 10, 1)
		tb := ThrottledBackend{Bucket: bucket, Inner: inner}
		// The wrapper must forward the RangeReader extension...
		var backend storage.Backend = tb
		rr, ok := backend.(storage.RangeReader)
		if !ok {
			t.Fatal("ThrottledBackend dropped the RangeReader extension")
		}
		d, err := rr.ReadRange("shard", 100, 50)
		if err != nil || d.Size != 50 {
			t.Fatalf("ReadRange = %d, %v; want 50, nil", d.Size, err)
		}
		// ...and charge the bucket for range reads too.
		start := env.Now()
		for i := 0; i < 10; i++ {
			if _, err := rr.ReadRange("shard", 0, 10); err != nil {
				t.Fatal(err)
			}
		}
		if env.Now()-start < 900*time.Millisecond {
			t.Fatalf("10 range reads in %v, want ≈1s at 10 reads/s", env.Now()-start)
		}
	})
}

func TestThrottledBackendRangeUnsupported(t *testing.T) {
	runSim(t, func(env conc.Env) {
		bucket, _ := NewTokenBucket(env, 10, 1)
		tb := ThrottledBackend{Bucket: bucket, Inner: rangelessBackend{}}
		if _, err := tb.ReadRange("x", 0, 1); err == nil {
			t.Fatal("range read over a rangeless backend must error")
		}
	})
}

// rangelessBackend is a storage.Backend without the RangeReader extension.
type rangelessBackend struct{}

func (rangelessBackend) ReadFile(name string) (storage.Data, error) {
	return storage.Data{Name: name}, nil
}
func (rangelessBackend) Size(string) (int64, error) { return 0, nil }

func TestArbiterSetCapacityRescalesGrants(t *testing.T) {
	runSim(t, func(env conc.Env) {
		a, _ := NewArbiter(env, 1000)
		b1, _ := NewTokenBucket(env, 1000, 1)
		b2, _ := NewTokenBucket(env, 1000, 1)
		cnt1, cnt2 := metrics.NewCounter(env), metrics.NewCounter(env)
		_ = a.Register("one", 1, b1, cnt1.Value)
		_ = a.Register("two", 1, b2, cnt2.Value)
		cnt1.Add(5000)
		cnt2.Add(5000)
		env.Sleep(time.Second)
		a.Tick(time.Second)
		// Degraded mode: the control plane halves the distributable rate;
		// both saturated tenants shrink proportionally at the next tick.
		a.SetCapacity(500)
		if a.Capacity() != 500 {
			t.Fatalf("Capacity = %v, want 500", a.Capacity())
		}
		cnt1.Add(5000)
		cnt2.Add(5000)
		env.Sleep(time.Second)
		a.Tick(time.Second)
		r1, _ := a.Allocation("one")
		r2, _ := a.Allocation("two")
		if math.Abs(r1-250) > 30 || math.Abs(r2-250) > 30 {
			t.Fatalf("degraded allocations %v/%v, want ≈250/250", r1, r2)
		}
	})
}

// TestArbiterChurnMidTick races Register/Unregister against a running
// arbitration loop in the deterministic sim: the arbiter must neither wedge
// nor allocate to departed tenants, and late joiners must receive a grant.
func TestArbiterChurnMidTick(t *testing.T) {
	runSim(t, func(env conc.Env) {
		a, _ := NewArbiter(env, 1000)
		a.Start(50 * time.Millisecond)
		stable, _ := NewTokenBucket(env, 1000, 1)
		stableCnt := metrics.NewCounter(env)
		_ = a.Register("stable", 1, stable, stableCnt.Value)
		env.Go("stable-load", func() {
			for env.Now() < 2*time.Second {
				stableCnt.Add(50)
				env.Sleep(25 * time.Millisecond)
			}
		})
		// Churner: a tenant that registers and unregisters every 70ms,
		// deliberately out of phase with the 50ms tick.
		env.Go("churner", func() {
			for i := 0; env.Now() < 2*time.Second; i++ {
				b, _ := NewTokenBucket(env, 1000, 1)
				cnt := metrics.NewCounter(env)
				id := fmt.Sprintf("churn-%d", i)
				if err := a.Register(id, 1, b, cnt.Value); err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				cnt.Add(100)
				env.Sleep(70 * time.Millisecond)
				a.Unregister(id)
			}
		})
		env.Sleep(2200 * time.Millisecond)
		a.Stop()
		grants := a.Grants()
		for _, g := range grants {
			if g.ID != "stable" && g.Granted > 0 && env.Now() > 2200*time.Millisecond {
				// Only the stable tenant (and at most one mid-flight churner)
				// may remain registered.
				continue
			}
		}
		r, ok := a.Allocation("stable")
		if !ok || r < 1 {
			t.Fatalf("stable tenant allocation %v (ok=%v), want >= 1 after churn", r, ok)
		}
	})
}

// TestArbiterReclaimAfterUnregister proves a departed tenant's share flows
// back: with two saturated tenants splitting 1000, removing one must let
// the survivor's grant grow to ≈ the full capacity at the next tick.
func TestArbiterReclaimAfterUnregister(t *testing.T) {
	runSim(t, func(env conc.Env) {
		a, _ := NewArbiter(env, 1000)
		b1, _ := NewTokenBucket(env, 1000, 1)
		b2, _ := NewTokenBucket(env, 1000, 1)
		cnt1, cnt2 := metrics.NewCounter(env), metrics.NewCounter(env)
		_ = a.Register("stay", 1, b1, cnt1.Value)
		_ = a.Register("leave", 1, b2, cnt2.Value)
		cnt1.Add(5000)
		cnt2.Add(5000)
		env.Sleep(time.Second)
		a.Tick(time.Second)
		r, _ := a.Allocation("stay")
		if math.Abs(r-500) > 50 {
			t.Fatalf("pre-departure allocation %v, want ≈500", r)
		}
		a.Unregister("leave")
		cnt1.Add(5000)
		env.Sleep(time.Second)
		a.Tick(time.Second)
		r, _ = a.Allocation("stay")
		if r < 900 {
			t.Fatalf("post-departure allocation %v, want ≈1000 (reclaimed share)", r)
		}
		if len(a.Grants()) != 1 {
			t.Fatalf("Grants() has %d entries after unregister, want 1", len(a.Grants()))
		}
	})
}

// TestArbiterZeroDemandAndZeroWeight covers the churn edge cases: a
// zero-weight registration is rejected outright, and a zero-demand tenant
// retains the no-starvation floor while its share flows to active tenants.
func TestArbiterZeroDemandAndZeroWeight(t *testing.T) {
	runSim(t, func(env conc.Env) {
		a, _ := NewArbiter(env, 1000)
		bIdle, _ := NewTokenBucket(env, 1000, 1)
		bBusy, _ := NewTokenBucket(env, 1000, 1)
		idleCnt, busyCnt := metrics.NewCounter(env), metrics.NewCounter(env)
		if err := a.Register("bad", 0, bIdle, idleCnt.Value); err == nil {
			t.Fatal("zero-weight registration accepted")
		}
		if err := a.Register("bad", -1, bIdle, idleCnt.Value); err == nil {
			t.Fatal("negative-weight registration accepted")
		}
		if err := a.SetWeight("ghost", 2); err == nil {
			t.Fatal("SetWeight on unknown tenant accepted")
		}
		_ = a.Register("idle", 1, bIdle, idleCnt.Value)
		_ = a.Register("busy", 1, bBusy, busyCnt.Value)
		for i := 0; i < 5; i++ {
			busyCnt.Add(2000)
			env.Sleep(time.Second)
			a.Tick(time.Second)
		}
		rIdle, _ := a.Allocation("idle")
		rBusy, _ := a.Allocation("busy")
		if rIdle < 1 {
			t.Fatalf("zero-demand tenant granted %v, want >= 1", rIdle)
		}
		if rBusy < 900 {
			t.Fatalf("busy tenant granted %v, want the idle tenant's slack (≈999)", rBusy)
		}
		// Weight changes apply on the next tick.
		if err := a.SetWeight("idle", 3); err != nil {
			t.Fatal(err)
		}
	})
}

func TestEndToEndFairSharing(t *testing.T) {
	// Two greedy jobs share one device through throttled backends; the
	// arbiter loop converges them to an even split — the coordinated
	// control framework-intrinsic optimizations cannot deliver (§II).
	runSim(t, func(env conc.Env) {
		dev, _ := storage.NewDevice(env, storage.DeviceSpec{BaseLatency: 500 * time.Microsecond, BytesPerSecond: 1e12, Channels: 4})
		// Device capacity: 4 / 0.5ms = 8000 reads/s; arbiter manages 8000.
		arb, _ := NewArbiter(env, 8000)
		arb.Start(100 * time.Millisecond)

		mkJob := func(id string, threads int) (*metrics.Counter, *TokenBucket) {
			samples := make([]dataset.Sample, 1000)
			for i := range samples {
				samples[i] = dataset.Sample{Name: fmt.Sprintf("%s-%04d", id, i), Size: 100}
			}
			backend := storage.NewModeledBackend(dataset.MustNew(samples), dev, nil)
			bucket, _ := NewTokenBucket(env, 8000, 1)
			tb := ThrottledBackend{Bucket: bucket, Inner: backend}
			count := metrics.NewCounter(env)
			for w := 0; w < threads; w++ {
				env.Go(fmt.Sprintf("%s-w%d", id, w), func() {
					deadline := 2 * time.Second
					for env.Now() < deadline {
						if _, err := tb.ReadFile(samples[int(count.Value())%1000].Name); err != nil {
							return
						}
						count.Inc()
					}
				})
			}
			return count, bucket
		}

		// Aggressive job with 8 threads vs modest job with 2: without
		// arbitration the aggressor would take ~80% of the device.
		c1, b1 := mkJob("big", 8)
		c2, b2 := mkJob("small", 2)
		_ = arb.Register("big", 1, b1, c1.Value)
		_ = arb.Register("small", 1, b2, c2.Value)

		env.Sleep(2200 * time.Millisecond)
		arb.Stop()
		n1, n2 := c1.Value(), c2.Value()
		share := float64(n1) / float64(n1+n2)
		if share < 0.40 || share > 0.66 {
			t.Fatalf("aggressive job took %.0f%% (counts %d/%d), want ≈50%% under arbitration", share*100, n1, n2)
		}
	})
}
