// Package fairness implements the multi-tenant access-coordination
// policies the paper motivates (§II "partial visibility", §VII "it would
// be interesting to explore and introduce performance isolation and
// resource fairness policies"): a token-bucket rate limiter, a
// pass-through throttling optimization object that slots into a stage's
// object chain, and a control-plane arbiter that divides shared-device
// capacity across jobs by weighted max-min fairness — the system-wide
// coordination a framework-intrinsic optimization cannot provide.
package fairness

import (
	"fmt"
	"math"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// TokenBucket is a rate limiter over a conc.Env clock: tokens refill at
// Rate per second up to Burst; Acquire blocks until its tokens are
// available. Safe for concurrent use.
type TokenBucket struct {
	env conc.Env
	mu  conc.Mutex

	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Duration
}

// NewTokenBucket returns a full bucket. rate and burst must be positive.
func NewTokenBucket(env conc.Env, rate, burst float64) (*TokenBucket, error) {
	if rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("fairness: rate %v and burst %v must be positive", rate, burst)
	}
	return &TokenBucket{env: env, mu: env.NewMutex(), rate: rate, burst: burst, tokens: burst, last: env.Now()}, nil
}

// refill advances the bucket to now. Caller holds mu.
func (b *TokenBucket) refill(now time.Duration) {
	dt := (now - b.last).Seconds()
	if dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		b.last = now
	}
}

// Acquire blocks until n tokens are available and consumes them. n may
// exceed the burst; the debt is simply paid over time.
func (b *TokenBucket) Acquire(n float64) {
	if n <= 0 {
		return
	}
	for {
		now := b.env.Now()
		b.mu.Lock()
		b.refill(now)
		if b.tokens >= n {
			b.tokens -= n
			b.mu.Unlock()
			return
		}
		deficit := n - b.tokens
		// Consume what is there and wait out the deficit; concurrent
		// acquirers serialize naturally through the shared deficit.
		b.tokens = 0
		n = deficit
		rate := b.rate
		b.mu.Unlock()
		wait := time.Duration(deficit / rate * float64(time.Second))
		if wait < time.Microsecond {
			wait = time.Microsecond
		}
		b.env.Sleep(wait)
	}
}

// SetRate adjusts the refill rate (control-plane knob).
func (b *TokenBucket) SetRate(rate float64) {
	if rate <= 0 {
		return
	}
	b.mu.Lock()
	b.refill(b.env.Now())
	b.rate = rate
	b.mu.Unlock()
}

// Rate reports the current refill rate.
func (b *TokenBucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// ThrottleObject is a pass-through optimization object: it charges each
// intercepted read against a token bucket (one token per read) and then
// declines the request so the next object — or backend storage — serves
// it. Placing it first in a stage's chain rate-limits the whole job.
type ThrottleObject struct {
	Bucket *TokenBucket
}

// Name implements core.OptimizationObject.
func (o ThrottleObject) Name() string { return "fair-throttle" }

// Read implements core.OptimizationObject: pay, then pass through.
func (o ThrottleObject) Read(name string) (storage.Data, bool, error) {
	o.Bucket.Acquire(1)
	return storage.Data{}, false, nil
}

// Close implements core.OptimizationObject.
func (o ThrottleObject) Close() {}

// ThrottledBackend wraps a storage.Backend with a bucket, for throttling
// below the prefetcher (producers are then rate-limited too).
type ThrottledBackend struct {
	Bucket *TokenBucket
	Inner  storage.Backend
}

// ReadFile implements storage.Backend.
func (t ThrottledBackend) ReadFile(name string) (storage.Data, error) {
	t.Bucket.Acquire(1)
	return t.Inner.ReadFile(name)
}

// Size implements storage.Backend.
func (t ThrottledBackend) Size(name string) (int64, error) { return t.Inner.Size(name) }
