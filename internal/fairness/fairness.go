// Package fairness implements the multi-tenant access-coordination
// policies the paper motivates (§II "partial visibility", §VII "it would
// be interesting to explore and introduce performance isolation and
// resource fairness policies"): a token-bucket rate limiter, a
// pass-through throttling optimization object that slots into a stage's
// object chain, and a control-plane arbiter that divides shared-device
// capacity across jobs by weighted max-min fairness — the system-wide
// coordination a framework-intrinsic optimization cannot provide.
package fairness

import (
	"fmt"
	"math"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// TokenBucket is a rate limiter over a conc.Env clock: tokens refill at
// Rate per second up to Burst; Acquire blocks until its tokens are
// available. Safe for concurrent use.
type TokenBucket struct {
	env conc.Env
	mu  conc.Mutex

	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Duration
}

// NewTokenBucket returns a full bucket. rate and burst must be positive.
func NewTokenBucket(env conc.Env, rate, burst float64) (*TokenBucket, error) {
	if rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("fairness: rate %v and burst %v must be positive", rate, burst)
	}
	return &TokenBucket{env: env, mu: env.NewMutex(), rate: rate, burst: burst, tokens: burst, last: env.Now()}, nil
}

// refill advances the bucket to now. Caller holds mu.
func (b *TokenBucket) refill(now time.Duration) {
	dt := (now - b.last).Seconds()
	if dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
		b.last = now
	}
}

// Acquire blocks until n tokens are available and consumes them. n may
// exceed the burst; the debt is simply paid over time.
func (b *TokenBucket) Acquire(n float64) {
	if n <= 0 {
		return
	}
	for {
		now := b.env.Now()
		b.mu.Lock()
		b.refill(now)
		if b.tokens >= n {
			b.tokens -= n
			b.mu.Unlock()
			return
		}
		deficit := n - b.tokens
		// Consume what is there and wait out the deficit; concurrent
		// acquirers serialize naturally through the shared deficit.
		b.tokens = 0
		n = deficit
		rate := b.rate
		b.mu.Unlock()
		wait := time.Duration(deficit / rate * float64(time.Second))
		if wait < time.Microsecond {
			wait = time.Microsecond
		}
		b.env.Sleep(wait)
	}
}

// TryAcquire consumes n tokens if they are available right now, without
// blocking. When they are not, it reports how long the caller would have to
// wait for the deficit to refill at the current rate — the retry-after hint
// admission control hands back to a shed client. The bucket is not charged
// on failure.
func (b *TokenBucket) TryAcquire(n float64) (ok bool, wait time.Duration) {
	if n <= 0 {
		return true, 0
	}
	now := b.env.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	wait = time.Duration((n - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Microsecond {
		wait = time.Microsecond
	}
	return false, wait
}

// Charge deducts n tokens immediately, allowing the balance to go negative
// (debt). It never blocks: byte budgets are charged after a read completes,
// when the size is finally known, and the debt throttles subsequent
// acquisitions until the refill pays it off.
func (b *TokenBucket) Charge(n float64) {
	if n <= 0 {
		return
	}
	now := b.env.Now()
	b.mu.Lock()
	b.refill(now)
	b.tokens -= n
	b.mu.Unlock()
}

// AwaitNonNegative blocks until the bucket's balance is non-negative — the
// debt-settlement wait paired with Charge.
func (b *TokenBucket) AwaitNonNegative() {
	for {
		now := b.env.Now()
		b.mu.Lock()
		b.refill(now)
		debt := -b.tokens
		rate := b.rate
		b.mu.Unlock()
		if debt <= 0 {
			return
		}
		wait := time.Duration(debt / rate * float64(time.Second))
		if wait < time.Microsecond {
			wait = time.Microsecond
		}
		b.env.Sleep(wait)
	}
}

// DebtWait reports how long until the balance refills to non-negative —
// zero when not in debt. It is the retry-after hint for a request shed on
// an exhausted byte budget.
func (b *TokenBucket) DebtWait() time.Duration {
	now := b.env.Now()
	b.mu.Lock()
	b.refill(now)
	debt := -b.tokens
	rate := b.rate
	b.mu.Unlock()
	if debt <= 0 {
		return 0
	}
	return time.Duration(debt / rate * float64(time.Second))
}

// InDebt reports a negative balance (bytes consumed ahead of the budget).
func (b *TokenBucket) InDebt() bool {
	now := b.env.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(now)
	return b.tokens < 0
}

// SetRate adjusts the refill rate (control-plane knob).
func (b *TokenBucket) SetRate(rate float64) {
	if rate <= 0 {
		return
	}
	b.mu.Lock()
	b.refill(b.env.Now())
	b.rate = rate
	b.mu.Unlock()
}

// Rate reports the current refill rate.
func (b *TokenBucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// ThrottleObject is a pass-through optimization object: it charges each
// intercepted read against a token bucket (one token per read) and then
// declines the request so the next object — or backend storage — serves
// it. Placing it first in a stage's chain rate-limits the whole job.
type ThrottleObject struct {
	Bucket *TokenBucket
}

// Name implements core.OptimizationObject.
func (o ThrottleObject) Name() string { return "fair-throttle" }

// Read implements core.OptimizationObject: pay, then pass through.
func (o ThrottleObject) Read(name string) (storage.Data, bool, error) {
	o.Bucket.Acquire(1)
	return storage.Data{}, false, nil
}

// Close implements core.OptimizationObject.
func (o ThrottleObject) Close() {}

// ThrottledBackend wraps a storage.Backend with a bucket, for throttling
// below the prefetcher (producers are then rate-limited too).
type ThrottledBackend struct {
	Bucket *TokenBucket
	Inner  storage.Backend
}

// ReadFile implements storage.Backend.
func (t ThrottledBackend) ReadFile(name string) (storage.Data, error) {
	t.Bucket.Acquire(1)
	return t.Inner.ReadFile(name)
}

// Size implements storage.Backend.
func (t ThrottledBackend) Size(name string) (int64, error) { return t.Inner.Size(name) }

// ReadRange implements storage.RangeReader when the wrapped backend does,
// so throttling a range-capable backend (recordio packed shards) keeps the
// extension instead of silently dropping it. A range read pays one token,
// like a whole-file read. Wrapping a backend without range support yields
// an error, not a panic (the repo-wide wrapper convention).
func (t ThrottledBackend) ReadRange(name string, off, n int64) (storage.Data, error) {
	rr, ok := t.Inner.(storage.RangeReader)
	if !ok {
		return storage.Data{}, fmt.Errorf("fairness: %T does not support range reads", t.Inner)
	}
	t.Bucket.Acquire(1)
	return rr.ReadRange(name, off, n)
}
