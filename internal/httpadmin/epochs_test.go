package httpadmin

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dsrhaslab/prisma-go/internal/core"
)

// epochDP is a fakeDP that also implements the epochManager extension.
type epochDP struct {
	fakeDP
	epochs    []core.EpochStatus
	cancelled core.EpochID
}

func (f *epochDP) Epochs() []core.EpochStatus { return f.epochs }

func (f *epochDP) CancelEpoch(id core.EpochID) (int, error) {
	for _, e := range f.epochs {
		if e.ID == id {
			f.cancelled = id
			return e.Total, nil
		}
	}
	return 0, core.ErrUnknownEpoch
}

func TestEpochsEndpoint(t *testing.T) {
	dp := &epochDP{epochs: []core.EpochStatus{
		{ID: 1, State: core.EpochDone, Total: 8, Enqueued: 8, Delivered: 8},
		{ID: 2, State: core.EpochActive, Total: 8, Enqueued: 8, Delivered: 3},
	}}
	srv := httptest.NewServer(New(dp))
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/epochs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /epochs status = %d", resp.StatusCode)
	}
	var eps []core.EpochStatus
	if err := json.NewDecoder(resp.Body).Decode(&eps); err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || eps[1].State != core.EpochActive {
		t.Fatalf("GET /epochs = %+v", eps)
	}

	post, err := http.Post(srv.URL+"/epochs?cancel=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("POST /epochs?cancel=2 status = %d", post.StatusCode)
	}
	var out map[string]uint64
	if err := json.NewDecoder(post.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if dp.cancelled != 2 || out["removed"] != 8 {
		t.Fatalf("cancel applied %d, response %v", dp.cancelled, out)
	}
}

func TestEpochsEndpointValidation(t *testing.T) {
	dp := &epochDP{}
	srv := httptest.NewServer(New(dp))
	t.Cleanup(srv.Close)
	for _, tc := range []struct {
		url  string
		want int
	}{
		{"/epochs?cancel=abc", http.StatusBadRequest},
		{"/epochs?cancel=0", http.StatusBadRequest},
		{"/epochs", http.StatusBadRequest},        // POST with nothing to apply
		{"/epochs?cancel=9", http.StatusNotFound}, // unknown epoch
	} {
		resp, err := http.Post(srv.URL+tc.url, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("POST %s status = %d, want %d", tc.url, resp.StatusCode, tc.want)
		}
	}
}

func TestEpochsEndpointNotSupported(t *testing.T) {
	srv, _ := newServer(t) // plain fakeDP: no epoch manager
	resp, err := http.Get(srv.URL + "/epochs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("GET /epochs status = %d, want 501", resp.StatusCode)
	}
}

func TestMetricsIncludePlanLifecycle(t *testing.T) {
	dp := &epochDP{}
	dp.stats.Plan = core.PlanStats{EpochsSubmitted: 3, EpochsCancelled: 1, Delivered: 40, Dropped: 8}
	srv := httptest.NewServer(New(dp))
	t.Cleanup(srv.Close)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sb := new(strings.Builder)
	if _, err := readAll(sb, resp); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"prisma_plan_epochs_submitted_total 3",
		"prisma_plan_epochs_cancelled_total 1",
		"prisma_plan_delivered_total 40",
		"prisma_plan_dropped_total 8",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
