package httpadmin

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/control"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/obs"
)

// tunableDP extends fakeDP with the optional shard/sampling knobs.
type tunableDP struct {
	fakeDP
	shards   int
	sampling float64
}

func (f *tunableDP) SetBufferShards(k int)      { f.shards = k }
func (f *tunableDP) SetTraceSampling(p float64) { f.sampling = p }

func TestAttributionEndpoint(t *testing.T) {
	dp := &fakeDP{}
	dp.stats.Now = 10 * time.Second
	dp.stats.StorageBusy = 4 * time.Second
	dp.stats.Buffer.ConsumerWait = 6 * time.Second
	dp.stats.Buffer.ConsumerWaitStorage = 5 * time.Second
	dp.stats.Buffer.ConsumerWaitBufferFull = time.Second
	srv := httptest.NewServer(New(dp))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/attribution")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var a obs.Attribution
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	if a.Consumers != 1 || a.Window != 10*time.Second {
		t.Fatalf("attribution header = %+v", a)
	}
	if a.StorageShare != 0.5 || a.BufferFullShare != 0.1 {
		t.Fatalf("shares = %v/%v, want 0.5/0.1", a.StorageShare, a.BufferFullShare)
	}

	// ?consumers=2 halves the shares.
	resp2, err := http.Get(srv.URL + "/attribution?consumers=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&a); err != nil {
		t.Fatal(err)
	}
	if a.Consumers != 2 || a.StorageShare != 0.25 {
		t.Fatalf("2-consumer attribution = %+v", a)
	}

	// Bad denominator is rejected.
	resp3, err := http.Get(srv.URL + "/attribution?consumers=0")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("consumers=0 status = %d, want 400", resp3.StatusCode)
	}
}

func TestDecisionsEndpoint(t *testing.T) {
	// Without a source: 501.
	bare := httptest.NewServer(New(&fakeDP{}))
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/decisions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("no-source status = %d, want 501", resp.StatusCode)
	}

	// With a source: the log round-trips as JSON (empty log is [], not null).
	var recs []control.DecisionRecord
	srv := httptest.NewServer(NewWithConfig(&fakeDP{}, Config{
		Decisions: func() []control.DecisionRecord { return recs },
	}))
	defer srv.Close()

	resp2, err := http.Get(srv.URL + "/decisions")
	if err != nil {
		t.Fatal(err)
	}
	body := new(strings.Builder)
	if _, err := readAll(body, resp2); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(body.String()); got != "[]" {
		t.Fatalf("empty log rendered %q, want []", got)
	}

	recs = []control.DecisionRecord{{
		Tick: 3, Stage: "s", Rule: "raise-producers",
		Before: control.Tuning{Producers: 1, BufferCapacity: 16},
		After:  control.Tuning{Producers: 2, BufferCapacity: 16},
	}}
	resp3, err := http.Get(srv.URL + "/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var got []control.DecisionRecord
	if err := json.NewDecoder(resp3.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Rule != "raise-producers" || got[0].After.Producers != 2 {
		t.Fatalf("decisions = %+v", got)
	}
}

func TestMetricsHistogramExposition(t *testing.T) {
	dp := &fakeDP{}
	h := metrics.NewBucketedHistogram(conc.NewReal(), metrics.DefaultLatencyBuckets)
	h.Observe(80 * time.Microsecond)
	h.Observe(300 * time.Microsecond)
	h.Observe(30 * time.Millisecond)
	dp.stats.StorageReadLatency = h.Snapshot()
	srv := httptest.NewServer(New(dp))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(strings.Builder)
	if _, err := readAll(body, resp); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		"# TYPE prisma_storage_read_latency_seconds histogram",
		`prisma_storage_read_latency_seconds_bucket{le="0.0001"} 1`,
		`prisma_storage_read_latency_seconds_bucket{le="+Inf"} 3`,
		"prisma_storage_read_latency_seconds_count 3",
		"# TYPE prisma_consumer_wait_latency_seconds histogram",
		"prisma_consumer_wait_storage_seconds_total",
		"prisma_consumer_wait_bufferfull_seconds_total",
		"prisma_storage_busy_seconds_total",
		"prisma_trace_sampling",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Buckets are cumulative: each le count must be <= the next.
	var last int64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "prisma_storage_read_latency_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := parseTail(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = n
	}
}

// parseTail reads the trailing integer of an exposition line.
func parseTail(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	v, err := json.Number(line[i+1:]).Int64()
	*n = v
	return 1, err
}

func TestTuningSampling(t *testing.T) {
	dp := &tunableDP{}
	srv := httptest.NewServer(New(dp))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/tuning?sampling=0.25&shards=4", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if dp.sampling != 0.25 || dp.shards != 4 {
		t.Fatalf("applied sampling=%v shards=%d", dp.sampling, dp.shards)
	}

	for _, q := range []string{"sampling=1.5", "sampling=-1", "sampling=abc"} {
		resp, err := http.Post(srv.URL+"/tuning?"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, resp.StatusCode)
		}
	}
	if dp.sampling != 0.25 {
		t.Fatalf("rejected request mutated sampling to %v", dp.sampling)
	}

	// A data plane without the knob gets 501.
	plain := httptest.NewServer(New(&fakeDP{}))
	defer plain.Close()
	resp2, err := http.Post(plain.URL+"/tuning?sampling=0.5", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotImplemented {
		t.Fatalf("plain dp sampling status = %d, want 501", resp2.StatusCode)
	}
}

func TestPprofGating(t *testing.T) {
	off := httptest.NewServer(New(&fakeDP{}))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: status = %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(NewWithConfig(&fakeDP{}, Config{EnablePprof: true}))
	defer on.Close()
	resp2, err := http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: status = %d, want 200", resp2.StatusCode)
	}
	body := new(strings.Builder)
	if _, err := readAll(body, resp2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.String(), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}
