// Package httpadmin exposes a PRISMA stage's control interface over HTTP
// for dashboards and scrapers: JSON statistics, Prometheus-style text
// metrics, liveness, latency attribution, the autotuner decision log, and
// knob updates. It is the observability face of the control plane for real
// deployments (prisma-server -http).
package httpadmin

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/control"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/distrib"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/tenancy"
)

// Config selects the handler's optional surfaces.
type Config struct {
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose heap contents and must be
	// opted into.
	EnablePprof bool
	// Decisions, when set, backs GET /decisions with the autotuner's
	// audit log (typically Controller.Decisions for the managed stage).
	Decisions func() []control.DecisionRecord
	// Consumers is the default attribution denominator for /attribution
	// (overridable per request with ?consumers=N). Zero means one.
	Consumers int
	// Tenants, when set, backs GET /tenants and the prisma_tenant_*
	// Prometheus metrics with the tenancy manager's QoS snapshot.
	Tenants func() tenancy.Snapshot
	// SetTenant, when set, backs POST /tenants?name=X&weight=W&bytes=B
	// (zero leaves the respective knob unchanged).
	SetTenant func(name string, weight, bytesPerSecond float64) error
	// Tracer, when set, lets GET /debug/bundle include the retained spans
	// so one capture carries both counters and recent per-read timelines.
	Tracer *obs.Tracer
	// Cluster, when set, backs GET /cluster and the prisma_cluster_*
	// Prometheus metrics with the multi-node fabric's traffic snapshot.
	Cluster func() distrib.ClusterStats
}

// DefaultBundleSpans bounds the spans embedded in a diagnostic bundle when
// the caller does not ask for a specific number (?spans=N).
const DefaultBundleSpans = 1024

// Bundle is the one-shot diagnostic capture served by GET /debug/bundle
// and OpBundle over IPC: every observability surface of one stage —
// stats (including cache, tiering, pool, and plan counters), latency
// attribution, per-tenant QoS and SLO states, plan epochs, the decision
// audit log, and the most recent spans — in a single JSON document.
type Bundle struct {
	CapturedAt  time.Duration            `json:"captured_at"`
	Stats       core.StageStats          `json:"stats"`
	Attribution obs.Attribution          `json:"attribution"`
	Tenants     *tenancy.Snapshot        `json:"tenants,omitempty"`
	Epochs      []core.EpochStatus       `json:"epochs,omitempty"`
	Decisions   []control.DecisionRecord `json:"decisions,omitempty"`
	Cluster     *distrib.ClusterStats    `json:"cluster,omitempty"`
	Spans       []obs.Span               `json:"spans,omitempty"`
	// SpansDropped counts retained spans omitted by the span limit.
	SpansDropped int `json:"spans_dropped,omitempty"`
}

// BuildBundle assembles the diagnostic bundle for dp using cfg's optional
// sources. spanLimit bounds the embedded spans (most recent kept; <= 0
// means DefaultBundleSpans). Shared by the HTTP handler and the IPC
// OpBundle source so both transports serve the identical document.
func BuildBundle(dp control.DataPlane, cfg Config, spanLimit int) Bundle {
	if spanLimit <= 0 {
		spanLimit = DefaultBundleSpans
	}
	s := dp.Stats()
	consumers := cfg.Consumers
	if consumers < 1 {
		consumers = 1
	}
	b := Bundle{
		CapturedAt: s.Now,
		Stats:      s,
		Attribution: obs.Attribute(obs.AttributionInput{
			Window:       s.Now,
			Consumers:    consumers,
			ConsumerWait: s.Buffer.ConsumerWait,
			StorageWait:  s.Buffer.ConsumerWaitStorage,
			BufferWait:   s.Buffer.ConsumerWaitBufferFull,
			CacheWait:    s.Cache.WaitTime,
			TierWait:     s.Tiering.PromoteTime + s.Tiering.DecodeTime,
			ThrottleWait: s.ThrottleWait,
			StorageBusy:  s.StorageBusy,
			ProducerPark: s.Buffer.ProducerWait,
		}),
	}
	if cfg.Tenants != nil {
		snap := cfg.Tenants()
		b.Tenants = &snap
	}
	if em, ok := dp.(epochManager); ok {
		b.Epochs = em.Epochs()
	}
	if cfg.Decisions != nil {
		b.Decisions = cfg.Decisions()
	}
	if cfg.Cluster != nil {
		cs := cfg.Cluster()
		b.Cluster = &cs
	}
	if cfg.Tracer != nil {
		spans := cfg.Tracer.Spans()
		if over := len(spans) - spanLimit; over > 0 {
			b.SpansDropped = over
			spans = spans[over:] // Spans() is time-ordered; keep the newest.
		}
		b.Spans = spans
	}
	return b
}

// Handler serves the admin API for one data-plane stage.
type Handler struct {
	dp  control.DataPlane
	cfg Config
	mux *http.ServeMux
}

// New builds the admin handler over any control.DataPlane (a *core.Stage
// in practice) with the default Config.
func New(dp control.DataPlane) *Handler { return NewWithConfig(dp, Config{}) }

// NewWithConfig builds the admin handler with explicit options.
func NewWithConfig(dp control.DataPlane, cfg Config) *Handler {
	h := &Handler{dp: dp, cfg: cfg, mux: http.NewServeMux()}
	h.mux.HandleFunc("/healthz", h.healthz)
	h.mux.HandleFunc("/stats", h.stats)
	h.mux.HandleFunc("/metrics", h.metrics)
	h.mux.HandleFunc("/tuning", h.tuning)
	h.mux.HandleFunc("/attribution", h.attribution)
	h.mux.HandleFunc("/decisions", h.decisions)
	h.mux.HandleFunc("/epochs", h.epochs)
	h.mux.HandleFunc("/tenants", h.tenants)
	h.mux.HandleFunc("/tiering", h.tiering)
	h.mux.HandleFunc("/cluster", h.cluster)
	h.mux.HandleFunc("/debug/bundle", h.bundle)
	if cfg.EnablePprof {
		h.mux.HandleFunc("/debug/pprof/", pprof.Index)
		h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// stats returns the full StageStats snapshot as JSON.
func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(h.dp.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeHistogram renders one duration histogram in Prometheus histogram
// exposition format (seconds, cumulative buckets, implicit +Inf).
func writeHistogram(w http.ResponseWriter, name, help string, snap metrics.HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, b := range snap.Buckets {
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b.Le.Seconds(), 'g', -1, 64), b.Count)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
	fmt.Fprintf(w, "%s_sum %g\n", name, snap.Sum.Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
}

// metrics renders Prometheus text exposition format.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s := h.dp.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	write := func(name, help, typ string, value float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, value)
	}
	write("prisma_reads_total", "Intercepted read requests.", "counter", float64(s.Reads))
	write("prisma_buffer_hits_total", "Reads served from the prefetch buffer.", "counter", float64(s.Hits))
	write("prisma_bypasses_total", "Reads passed through to backend storage.", "counter", float64(s.Bypasses))
	write("prisma_errors_total", "Failed reads.", "counter", float64(s.Errors))
	write("prisma_prefetched_files_total", "Files fetched ahead by producers.", "counter", float64(s.PrefetchedFiles))
	write("prisma_read_errors_total", "Producer-side read failures.", "counter", float64(s.ReadErrors))
	write("prisma_queue_length", "Filenames awaiting prefetch.", "gauge", float64(s.QueueLen))
	write("prisma_producers", "Target producer thread count t.", "gauge", float64(s.TargetProducers))
	write("prisma_buffer_length", "Samples currently buffered.", "gauge", float64(s.Buffer.Len))
	write("prisma_buffer_capacity", "Buffer capacity N.", "gauge", float64(s.Buffer.Capacity))
	write("prisma_buffer_shards", "Buffer shard count K.", "gauge", float64(s.Buffer.Shards))
	write("prisma_consumer_wait_seconds_total", "Cumulative consumer blocking time.", "counter", s.Buffer.ConsumerWait.Seconds())
	write("prisma_producer_wait_seconds_total", "Cumulative producer blocking time.", "counter", s.Buffer.ProducerWait.Seconds())
	write("prisma_consumer_wait_storage_seconds_total", "Consumer blocking time attributed to storage reads.", "counter", s.Buffer.ConsumerWaitStorage.Seconds())
	write("prisma_consumer_wait_bufferfull_seconds_total", "Consumer blocking time attributed to buffer capacity.", "counter", s.Buffer.ConsumerWaitBufferFull.Seconds())
	write("prisma_storage_busy_seconds_total", "Cumulative producer time inside backend reads.", "counter", s.StorageBusy.Seconds())
	write("prisma_trace_sampling", "Trace head-sampling probability.", "gauge", s.TraceSampling)
	write("prisma_plan_epochs_submitted_total", "Plan epochs submitted.", "counter", float64(s.Plan.EpochsSubmitted))
	write("prisma_plan_epochs_cancelled_total", "Plan epochs cancelled (including aborted submissions).", "counter", float64(s.Plan.EpochsCancelled))
	write("prisma_plan_epochs_live", "Epochs currently submitting or active.", "gauge", float64(s.Plan.EpochsLive))
	write("prisma_plan_entries_pending", "Registered plan entries not yet claimed by a consumer.", "gauge", float64(s.Plan.EntriesPending))
	write("prisma_plan_claims_in_flight", "Consumer claims awaiting a buffered sample.", "gauge", float64(s.Plan.ClaimsInFlight))
	write("prisma_plan_delivered_total", "Plan entries delivered to consumers.", "counter", float64(s.Plan.Delivered))
	write("prisma_plan_dropped_total", "Plan entries dropped by cancellation or abort.", "counter", float64(s.Plan.Dropped))
	write("prisma_backend_retries_total", "Backend read attempts beyond the first.", "counter", float64(s.Resilience.Retries))
	write("prisma_backend_exhausted_total", "Backend reads that failed after all retry attempts.", "counter", float64(s.Resilience.Exhausted))
	write("prisma_breaker_opens_total", "Circuit breaker trips to the open state.", "counter", float64(s.Resilience.BreakerOpens))
	write("prisma_breaker_fast_fails_total", "Reads rejected without touching the backend while the breaker was open.", "counter", float64(s.Resilience.FastFails))
	degraded := 0.0
	if s.Resilience.Degraded {
		degraded = 1
	}
	write("prisma_backend_degraded", "1 while the circuit breaker is open or half-open.", "gauge", degraded)
	poolEnabled := 0.0
	if s.PoolEnabled {
		poolEnabled = 1
	}
	write("prisma_pool_enabled", "1 when the sample buffer pool is attached.", "gauge", poolEnabled)
	if s.PoolEnabled {
		write("prisma_pool_gets_total", "Buffer leases handed out by the pool.", "counter", float64(s.Pool.Gets))
		write("prisma_pool_hits_total", "Leases served from a recycled buffer.", "counter", float64(s.Pool.Hits))
		write("prisma_pool_misses_total", "Leases that had to allocate a fresh buffer.", "counter", float64(s.Pool.Misses))
		write("prisma_pool_oversize_total", "Leases above the largest size class (unpooled).", "counter", float64(s.Pool.Oversize))
		write("prisma_pool_recycled_total", "Buffers returned to a free list on release.", "counter", float64(s.Pool.Recycled))
		write("prisma_pool_discarded_total", "Buffers dropped on release because their class was full.", "counter", float64(s.Pool.Discarded))
		write("prisma_pool_hit_rate", "Fraction of leases served from recycled buffers.", "gauge", s.Pool.HitRate)
		write("prisma_pool_outstanding_refs", "Buffer leases currently held somewhere in the pipeline.", "gauge", float64(s.Pool.Outstanding))
		write("prisma_pool_free_buffers", "Idle buffers parked on the pool's free lists.", "gauge", float64(s.Pool.FreeBuffers))
		write("prisma_pool_free_bytes", "Bytes held idle by the pool's free lists.", "gauge", float64(s.Pool.FreeBytes))
	}
	tierEnabled := 0.0
	if s.TieringEnabled {
		tierEnabled = 1
	}
	write("prisma_tiering_enabled", "1 when the fast-tier backend stage is wired in.", "gauge", tierEnabled)
	if s.TieringEnabled {
		t := s.Tiering
		write("prisma_tiering_fast_hits_total", "Reads served from the fast tier.", "counter", float64(t.FastHits))
		write("prisma_tiering_slow_reads_total", "Demand misses served by the slow tier.", "counter", float64(t.SlowReads))
		write("prisma_tiering_promotions_total", "Samples copied into the fast tier on the demand path.", "counter", float64(t.Promotions))
		write("prisma_tiering_evictions_total", "Fast-tier residents evicted to make room.", "counter", float64(t.Evictions))
		write("prisma_tiering_prefetch_promotions_total", "Samples warmed in by next-epoch plan prefetch.", "counter", float64(t.PrefetchPromotions))
		write("prisma_tiering_prefetch_skips_total", "Warm-plan entries declined (resident, full tier, or error).", "counter", float64(t.PrefetchSkips))
		write("prisma_tiering_used_bytes", "Physical fast-tier occupancy (compressed where applicable).", "gauge", float64(t.FastUsed))
		write("prisma_tiering_logical_bytes", "Decoded sample volume the fast tier holds.", "gauge", float64(t.FastLogical))
		write("prisma_tiering_capacity_bytes", "Fast-tier byte budget.", "gauge", float64(t.Capacity))
		write("prisma_tiering_residents", "Samples resident on the fast tier.", "gauge", float64(t.Residents))
		write("prisma_tiering_tracked_names", "Names in the promotion-counter map.", "gauge", float64(t.TrackedNames))
		write("prisma_tiering_access_decays_total", "Promotion-counter decay sweeps.", "counter", float64(t.AccessDecays))
	}
	batchEnabled := 0.0
	if s.BatchEnabled {
		batchEnabled = 1
	}
	write("prisma_batch_enabled", "1 when plan-aware read coalescing is active.", "gauge", batchEnabled)
	if s.BatchEnabled {
		write("prisma_batch_reads_total", "Vectored range reads issued by the coalescer.", "counter", float64(s.BatchReads))
		write("prisma_batch_samples_total", "Samples delivered through vectored reads.", "counter", float64(s.BatchedSamples))
		write("prisma_batch_fallbacks_total", "Batches that fell back to per-sample reads.", "counter", float64(s.BatchFallbacks))
	}
	clusterEnabled := 0.0
	if h.cfg.Cluster != nil {
		clusterEnabled = 1
	}
	write("prisma_cluster_enabled", "1 when the multi-node prefetch fabric is wired in.", "gauge", clusterEnabled)
	if h.cfg.Cluster != nil {
		cs := h.cfg.Cluster()
		write("prisma_cluster_nodes", "Nodes in the placement ring (including this one).", "gauge", float64(len(cs.Nodes)))
		write("prisma_cluster_local_reads_total", "Reads served by this node's own stage (ring-owned).", "counter", float64(cs.LocalReads))
		write("prisma_cluster_peer_reads_total", "Reads forwarded to the owning peer's buffer.", "counter", float64(cs.PeerReads))
		write("prisma_cluster_peer_serves_total", "Forwarded reads this node served from its buffer.", "counter", float64(cs.PeerServes))
		write("prisma_cluster_peer_errors_total", "Peer forwards that failed and fell back.", "counter", float64(cs.PeerErrors))
		write("prisma_cluster_failovers_total", "Reads served by the slow store after a peer failure.", "counter", float64(cs.Failovers))
		write("prisma_cluster_peer_wait_seconds_total", "Cumulative time spent waiting on peer forwards.", "counter", cs.PeerWait.Seconds())
		write("prisma_cluster_max_failover_latency_seconds", "Worst single peer-failure read (peer attempt plus slow-store fallback).", "gauge", cs.MaxFailoverLatency.Seconds())
	}
	writeHistogram(w, "prisma_storage_read_latency_seconds", "Producer-observed backend read latency.", s.StorageReadLatency)
	writeHistogram(w, "prisma_consumer_wait_latency_seconds", "Per-Take consumer blocking time.", s.Buffer.WaitHist)
	if h.cfg.Tenants != nil {
		writeTenantMetrics(w, h.cfg.Tenants())
	}
}

// cluster serves the multi-node fabric snapshot: GET /cluster returns the
// ClusterStats as JSON, 501 when this instance is not part of a cluster.
func (h *Handler) cluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if h.cfg.Cluster == nil {
		http.Error(w, "cluster fabric not enabled", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(h.cfg.Cluster()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// bundle serves the one-shot diagnostic capture: GET /debug/bundle
// returns a Bundle as JSON. ?spans=N bounds the embedded spans (0 omits
// them entirely).
func (h *Handler) bundle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	cfg := h.cfg
	limit := 0
	if v := r.URL.Query().Get("spans"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad spans value", http.StatusBadRequest)
			return
		}
		if n == 0 {
			cfg.Tracer = nil // explicit ?spans=0 drops the span section
		}
		limit = n
	}
	b := BuildBundle(h.dp, cfg, limit)
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(b); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// tiering serves the fast-tier snapshot: GET /tiering returns the
// TieringStats carried by the stage snapshot as JSON, 501 when no fast
// tier is wired in.
func (h *Handler) tiering(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s := h.dp.Stats()
	if !s.TieringEnabled {
		http.Error(w, "tiering not enabled on this instance", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.Tiering); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeTenantMetrics renders the per-tenant QoS series, one labeled
// sample per tenant under each family.
func writeTenantMetrics(w http.ResponseWriter, snap tenancy.Snapshot) {
	overloaded := 0.0
	if snap.Overloaded {
		overloaded = 1
	}
	fmt.Fprintf(w, "# HELP prisma_tenant_overloaded 1 while the admission gate sheds instead of queueing.\n# TYPE prisma_tenant_overloaded gauge\nprisma_tenant_overloaded %g\n", overloaded)
	fmt.Fprintf(w, "# HELP prisma_tenant_capacity Total read rate distributed across tenants.\n# TYPE prisma_tenant_capacity gauge\nprisma_tenant_capacity %g\n", snap.Capacity)
	series := func(name, help, typ string, value func(tenancy.TenantStats) float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, ts := range snap.Tenants {
			fmt.Fprintf(w, "%s{tenant=%q} %g\n", name, ts.Name, value(ts))
		}
	}
	series("prisma_tenant_weight", "Arbitration weight.", "gauge",
		func(ts tenancy.TenantStats) float64 { return ts.Weight })
	series("prisma_tenant_granted_rate", "Reads per second granted by the max-min arbiter.", "gauge",
		func(ts tenancy.TenantStats) float64 { return ts.GrantedRate })
	series("prisma_tenant_measured_rate", "Demand estimate from the last arbitration tick.", "gauge",
		func(ts tenancy.TenantStats) float64 { return ts.MeasuredRate })
	series("prisma_tenant_admitted_total", "Reads admitted through the tenant gate.", "counter",
		func(ts tenancy.TenantStats) float64 { return float64(ts.Admitted) })
	series("prisma_tenant_shed_total", "Reads refused at admission with a typed overload error.", "counter",
		func(ts tenancy.TenantStats) float64 { return float64(ts.Shed) })
	series("prisma_tenant_bytes_read_total", "Payload bytes attributed to the tenant.", "counter",
		func(ts tenancy.TenantStats) float64 { return float64(ts.BytesRead) })
	series("prisma_tenant_errors_total", "Failed reads attributed to the tenant.", "counter",
		func(ts tenancy.TenantStats) float64 { return float64(ts.Errors) })
	series("prisma_tenant_byte_budget", "Byte budget in bytes per second (0 = unmetered).", "gauge",
		func(ts tenancy.TenantStats) float64 { return ts.ByteBudget })
	series("prisma_tenant_in_debt", "1 while the tenant's byte budget is in debt.", "gauge",
		func(ts tenancy.TenantStats) float64 {
			if ts.InDebt {
				return 1
			}
			return 0
		})
	fmt.Fprintf(w, "# HELP prisma_tenant_read_latency_seconds End-to-end tenant read latency (admission wait included, sheds excluded).\n# TYPE prisma_tenant_read_latency_seconds histogram\n")
	for _, ts := range snap.Tenants {
		name := "prisma_tenant_read_latency_seconds"
		for _, b := range ts.Latency.Buckets {
			fmt.Fprintf(w, "%s_bucket{tenant=%q,le=%q} %d\n", name, ts.Name, strconv.FormatFloat(b.Le.Seconds(), 'g', -1, 64), b.Count)
		}
		fmt.Fprintf(w, "%s_bucket{tenant=%q,le=\"+Inf\"} %d\n", name, ts.Name, ts.Latency.Count)
		fmt.Fprintf(w, "%s_sum{tenant=%q} %g\n", name, ts.Name, ts.Latency.Sum.Seconds())
		fmt.Fprintf(w, "%s_count{tenant=%q} %d\n", name, ts.Name, ts.Latency.Count)
	}
	writeSLOMetrics(w, snap)
}

// sloStateValue encodes an SLO state for the prisma_slo_state gauge.
func sloStateValue(state string) float64 {
	switch state {
	case obs.SLOWarn:
		return 1
	case obs.SLOBreach:
		return 2
	default:
		return 0
	}
}

// writeSLOMetrics renders the per-tenant SLO series for tenants that have
// an objective configured.
func writeSLOMetrics(w http.ResponseWriter, snap tenancy.Snapshot) {
	any := false
	for _, ts := range snap.Tenants {
		if ts.SLO != nil {
			any = true
			break
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(w, "# HELP prisma_slo_state Tenant SLO state: 0 ok, 1 warn, 2 breach.\n# TYPE prisma_slo_state gauge\n")
	for _, ts := range snap.Tenants {
		if ts.SLO != nil {
			fmt.Fprintf(w, "prisma_slo_state{tenant=%q} %g\n", ts.Name, sloStateValue(ts.SLO.State))
		}
	}
	fmt.Fprintf(w, "# HELP prisma_slo_burn_rate Error-budget burn rate over the short and long windows.\n# TYPE prisma_slo_burn_rate gauge\n")
	for _, ts := range snap.Tenants {
		if ts.SLO != nil {
			fmt.Fprintf(w, "prisma_slo_burn_rate{tenant=%q,window=\"short\"} %g\n", ts.Name, ts.SLO.BurnShort)
			fmt.Fprintf(w, "prisma_slo_burn_rate{tenant=%q,window=\"long\"} %g\n", ts.Name, ts.SLO.BurnLong)
		}
	}
	fmt.Fprintf(w, "# HELP prisma_slo_budget_remaining Fraction of the long-window error budget left.\n# TYPE prisma_slo_budget_remaining gauge\n")
	for _, ts := range snap.Tenants {
		if ts.SLO != nil {
			fmt.Fprintf(w, "prisma_slo_budget_remaining{tenant=%q} %g\n", ts.Name, ts.SLO.BudgetRemaining)
		}
	}
	fmt.Fprintf(w, "# HELP prisma_slo_boosted 1 while the tenant holds an SLO breach weight boost.\n# TYPE prisma_slo_boosted gauge\n")
	for _, ts := range snap.Tenants {
		if ts.SLO != nil {
			boosted := 0.0
			if ts.SLOBoosted {
				boosted = 1
			}
			fmt.Fprintf(w, "prisma_slo_boosted{tenant=%q} %g\n", ts.Name, boosted)
		}
	}
}

// tenants serves per-tenant QoS: GET /tenants returns the snapshot as
// JSON; POST /tenants?name=X&weight=W&bytes=B adjusts one tenant's knobs.
func (h *Handler) tenants(w http.ResponseWriter, r *http.Request) {
	if h.cfg.Tenants == nil {
		http.Error(w, "tenancy not enabled on this instance", http.StatusNotImplemented)
		return
	}
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(h.cfg.Tenants()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case http.MethodPost:
		if h.cfg.SetTenant == nil {
			http.Error(w, "tenant adjustment unavailable", http.StatusNotImplemented)
			return
		}
		q := r.URL.Query()
		name := q.Get("name")
		if name == "" {
			http.Error(w, "missing ?name=", http.StatusBadRequest)
			return
		}
		var weight, bytesPerSec float64
		if v := q.Get("weight"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				http.Error(w, "bad weight value", http.StatusBadRequest)
				return
			}
			weight = f
		}
		if v := q.Get("bytes"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				http.Error(w, "bad bytes value", http.StatusBadRequest)
				return
			}
			bytesPerSec = f
		}
		if weight == 0 && bytesPerSec == 0 {
			http.Error(w, "nothing to apply (use ?weight=W and/or ?bytes=B)", http.StatusBadRequest)
			return
		}
		if err := h.cfg.SetTenant(name, weight, bytesPerSec); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"tenant": name, "weight": weight, "bytes_per_second": bytesPerSec})
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// attribution renders the cumulative critical-path breakdown since stage
// start: how consumer time divides between storage waits, buffer-capacity
// waits, and keeping up. ?consumers=N overrides the configured denominator.
func (h *Handler) attribution(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	consumers := h.cfg.Consumers
	if v := r.URL.Query().Get("consumers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad consumers value", http.StatusBadRequest)
			return
		}
		consumers = n
	}
	s := h.dp.Stats()
	a := obs.Attribute(obs.AttributionInput{
		Window:       s.Now,
		Consumers:    consumers,
		ConsumerWait: s.Buffer.ConsumerWait,
		StorageWait:  s.Buffer.ConsumerWaitStorage,
		BufferWait:   s.Buffer.ConsumerWaitBufferFull,
		CacheWait:    s.Cache.WaitTime,
		TierWait:     s.Tiering.PromoteTime + s.Tiering.DecodeTime,
		ThrottleWait: s.ThrottleWait,
		StorageBusy:  s.StorageBusy,
		ProducerPark: s.Buffer.ProducerWait,
	})
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(a); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// decisions returns the autotuner's decision audit log as JSON.
func (h *Handler) decisions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if h.cfg.Decisions == nil {
		http.Error(w, "decision log unavailable: no controller attached", http.StatusNotImplemented)
		return
	}
	recs := h.cfg.Decisions()
	if recs == nil {
		recs = []control.DecisionRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(recs); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// epochManager is the optional extension for data planes with an
// epoch-aware plan manager (core.Stage has one when a prefetcher is
// attached; its methods degrade gracefully without one).
type epochManager interface {
	Epochs() []core.EpochStatus
	CancelEpoch(id core.EpochID) (int, error)
}

// epochs serves the plan-epoch lifecycle: GET /epochs lists the retained
// epoch statuses; POST /epochs?cancel=ID cancels one epoch and reports how
// many plan entries were removed.
func (h *Handler) epochs(w http.ResponseWriter, r *http.Request) {
	em, ok := h.dp.(epochManager)
	if !ok {
		http.Error(w, "data plane does not support plan epochs", http.StatusNotImplemented)
		return
	}
	switch r.Method {
	case http.MethodGet:
		eps := em.Epochs()
		if eps == nil {
			eps = []core.EpochStatus{}
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(eps); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	case http.MethodPost:
		v := r.URL.Query().Get("cancel")
		if v == "" {
			http.Error(w, "nothing to apply (use ?cancel=ID)", http.StatusBadRequest)
			return
		}
		id, err := strconv.ParseUint(v, 10, 64)
		if err != nil || id == 0 {
			http.Error(w, "bad epoch id", http.StatusBadRequest)
			return
		}
		removed, err := em.CancelEpoch(core.EpochID(id))
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, core.ErrUnknownEpoch) {
				status = http.StatusNotFound
			}
			http.Error(w, err.Error(), status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]uint64{"cancelled": id, "removed": uint64(removed)})
	default:
		http.Error(w, "GET or POST only", http.StatusMethodNotAllowed)
	}
}

// shardTuner is the optional control-interface extension for data planes
// whose buffer supports resharding (core.Stage does). Kept as an interface
// assertion so control.DataPlane stays minimal.
type shardTuner interface {
	SetBufferShards(k int)
}

// samplingTuner is the optional extension for data planes with a runtime
// trace-sampling knob (core.Stage has one).
type samplingTuner interface {
	SetTraceSampling(p float64)
}

// tuning applies knob updates: POST /tuning?producers=N and/or ?buffer=M
// and/or ?shards=K and/or ?sampling=P.
func (h *Handler) tuning(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	applied := map[string]float64{}
	if v := q.Get("producers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad producers value", http.StatusBadRequest)
			return
		}
		h.dp.SetProducers(n)
		applied["producers"] = float64(n)
	}
	if v := q.Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad buffer value", http.StatusBadRequest)
			return
		}
		h.dp.SetBufferCapacity(n)
		applied["buffer"] = float64(n)
	}
	if v := q.Get("shards"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad shards value", http.StatusBadRequest)
			return
		}
		st, ok := h.dp.(shardTuner)
		if !ok {
			http.Error(w, "data plane does not support shard tuning", http.StatusNotImplemented)
			return
		}
		st.SetBufferShards(n)
		applied["shards"] = float64(n)
	}
	if v := q.Get("sampling"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 || p > 1 {
			http.Error(w, "bad sampling value (want [0, 1])", http.StatusBadRequest)
			return
		}
		st, ok := h.dp.(samplingTuner)
		if !ok {
			http.Error(w, "data plane does not support trace sampling", http.StatusNotImplemented)
			return
		}
		st.SetTraceSampling(p)
		applied["sampling"] = p
	}
	if len(applied) == 0 {
		http.Error(w, "nothing to apply (use ?producers=N, ?buffer=M, ?shards=K and/or ?sampling=P)", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(applied)
}
