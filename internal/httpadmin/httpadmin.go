// Package httpadmin exposes a PRISMA stage's control interface over HTTP
// for dashboards and scrapers: JSON statistics, Prometheus-style text
// metrics, liveness, and knob updates. It is the observability face of the
// control plane for real deployments (prisma-server -http).
package httpadmin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/dsrhaslab/prisma-go/internal/control"
)

// Handler serves the admin API for one data-plane stage.
type Handler struct {
	dp  control.DataPlane
	mux *http.ServeMux
}

// New builds the admin handler over any control.DataPlane (a *core.Stage
// in practice).
func New(dp control.DataPlane) *Handler {
	h := &Handler{dp: dp, mux: http.NewServeMux()}
	h.mux.HandleFunc("/healthz", h.healthz)
	h.mux.HandleFunc("/stats", h.stats)
	h.mux.HandleFunc("/metrics", h.metrics)
	h.mux.HandleFunc("/tuning", h.tuning)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// stats returns the full StageStats snapshot as JSON.
func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(h.dp.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// metrics renders Prometheus text exposition format.
func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s := h.dp.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	write := func(name, help, typ string, value float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, value)
	}
	write("prisma_reads_total", "Intercepted read requests.", "counter", float64(s.Reads))
	write("prisma_buffer_hits_total", "Reads served from the prefetch buffer.", "counter", float64(s.Hits))
	write("prisma_bypasses_total", "Reads passed through to backend storage.", "counter", float64(s.Bypasses))
	write("prisma_errors_total", "Failed reads.", "counter", float64(s.Errors))
	write("prisma_prefetched_files_total", "Files fetched ahead by producers.", "counter", float64(s.PrefetchedFiles))
	write("prisma_read_errors_total", "Producer-side read failures.", "counter", float64(s.ReadErrors))
	write("prisma_queue_length", "Filenames awaiting prefetch.", "gauge", float64(s.QueueLen))
	write("prisma_producers", "Target producer thread count t.", "gauge", float64(s.TargetProducers))
	write("prisma_buffer_length", "Samples currently buffered.", "gauge", float64(s.Buffer.Len))
	write("prisma_buffer_capacity", "Buffer capacity N.", "gauge", float64(s.Buffer.Capacity))
	write("prisma_buffer_shards", "Buffer shard count K.", "gauge", float64(s.Buffer.Shards))
	write("prisma_consumer_wait_seconds_total", "Cumulative consumer blocking time.", "counter", s.Buffer.ConsumerWait.Seconds())
	write("prisma_producer_wait_seconds_total", "Cumulative producer blocking time.", "counter", s.Buffer.ProducerWait.Seconds())
	write("prisma_backend_retries_total", "Backend read attempts beyond the first.", "counter", float64(s.Resilience.Retries))
	write("prisma_backend_exhausted_total", "Backend reads that failed after all retry attempts.", "counter", float64(s.Resilience.Exhausted))
	write("prisma_breaker_opens_total", "Circuit breaker trips to the open state.", "counter", float64(s.Resilience.BreakerOpens))
	write("prisma_breaker_fast_fails_total", "Reads rejected without touching the backend while the breaker was open.", "counter", float64(s.Resilience.FastFails))
	degraded := 0.0
	if s.Resilience.Degraded {
		degraded = 1
	}
	write("prisma_backend_degraded", "1 while the circuit breaker is open or half-open.", "gauge", degraded)
}

// shardTuner is the optional control-interface extension for data planes
// whose buffer supports resharding (core.Stage does). Kept as an interface
// assertion so control.DataPlane stays minimal.
type shardTuner interface {
	SetBufferShards(k int)
}

// tuning applies knob updates: POST /tuning?producers=N and/or ?buffer=M
// and/or ?shards=K.
func (h *Handler) tuning(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	applied := map[string]int{}
	if v := q.Get("producers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad producers value", http.StatusBadRequest)
			return
		}
		h.dp.SetProducers(n)
		applied["producers"] = n
	}
	if v := q.Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad buffer value", http.StatusBadRequest)
			return
		}
		h.dp.SetBufferCapacity(n)
		applied["buffer"] = n
	}
	if v := q.Get("shards"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			http.Error(w, "bad shards value", http.StatusBadRequest)
			return
		}
		st, ok := h.dp.(shardTuner)
		if !ok {
			http.Error(w, "data plane does not support shard tuning", http.StatusNotImplemented)
			return
		}
		st.SetBufferShards(n)
		applied["shards"] = n
	}
	if len(applied) == 0 {
		http.Error(w, "nothing to apply (use ?producers=N, ?buffer=M and/or ?shards=K)", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(applied)
}
