package httpadmin

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/control"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/tenancy"
)

// bundleFixture wires every optional source into one server so the bundle
// exercises all its sections at once.
func bundleFixture(t *testing.T) (*httptest.Server, *obs.Tracer) {
	t.Helper()
	dp := &epochDP{epochs: []core.EpochStatus{
		{ID: 1, State: core.EpochDone, Total: 8, Enqueued: 8, Delivered: 8},
	}}
	dp.stats.Reads = 100
	dp.stats.Now = 10 * time.Second
	dp.stats.Buffer.ConsumerWait = 6 * time.Second
	dp.stats.Buffer.ConsumerWaitStorage = 3 * time.Second
	dp.stats.Cache.WaitTime = time.Second
	dp.stats.Tiering.PromoteTime = 500 * time.Millisecond
	dp.stats.Tiering.DecodeTime = 500 * time.Millisecond
	dp.stats.ThrottleWait = 2 * time.Second

	tracer := obs.NewTracer(conc.NewReal(), obs.TracerOptions{Sampling: 1})
	for i := 0; i < 5; i++ {
		ctx := tracer.StartTrace()
		tracer.Record(obs.Span{Trace: ctx.Trace, Stage: obs.StageCacheHit,
			Name: fmt.Sprintf("f%d", i), At: time.Duration(i) * time.Millisecond})
	}

	breach := obs.SLOStatus{Tenant: "victim", State: obs.SLOBreach, BurnShort: 6, BurnLong: 2}
	snap := tenancy.Snapshot{Capacity: 500, Tenants: []tenancy.TenantStats{
		{Name: "victim", Weight: 1, SLOBoosted: true, SLO: &breach},
	}}
	cfg := Config{
		Tracer:  tracer,
		Tenants: func() tenancy.Snapshot { return snap },
		Decisions: func() []control.DecisionRecord {
			return []control.DecisionRecord{{Tick: 1, Stage: "s", Rule: "slo-breach:victim"}}
		},
	}
	srv := httptest.NewServer(NewWithConfig(dp, cfg))
	t.Cleanup(srv.Close)
	return srv, tracer
}

func getBundle(t *testing.T, url string) Bundle {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var b Bundle
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBundleEndpoint checks the one-shot capture carries every section —
// stats, attribution (with the serving-chain buckets), tenants with SLO
// state, epochs, decisions, and spans — in a single document.
func TestBundleEndpoint(t *testing.T) {
	srv, _ := bundleFixture(t)
	b := getBundle(t, srv.URL+"/debug/bundle")

	if b.CapturedAt != 10*time.Second || b.Stats.Reads != 100 {
		t.Fatalf("stats section = captured %v reads %d", b.CapturedAt, b.Stats.Reads)
	}
	a := b.Attribution
	if a.StorageShare != 0.3 || a.CacheShare != 0.1 || a.TierShare != 0.1 || a.ThrottleShare != 0.2 {
		t.Fatalf("attribution shares = %+v, want 0.3/0.1/0.1/0.2", a)
	}
	sum := a.StorageShare + a.BufferFullShare + a.IPCShare + a.CacheShare +
		a.TierShare + a.ThrottleShare + a.ConsumerShare
	if sum < 1-1e-9 || sum > 1+1e-9 {
		t.Fatalf("bundle attribution shares sum to %v, want 1", sum)
	}
	if b.Tenants == nil || len(b.Tenants.Tenants) != 1 {
		t.Fatalf("tenants section = %+v", b.Tenants)
	}
	ts := b.Tenants.Tenants[0]
	if !ts.SLOBoosted || ts.SLO == nil || ts.SLO.State != obs.SLOBreach {
		t.Fatalf("tenant SLO state = %+v", ts)
	}
	if len(b.Epochs) != 1 || b.Epochs[0].ID != 1 {
		t.Fatalf("epochs section = %+v", b.Epochs)
	}
	if len(b.Decisions) != 1 || b.Decisions[0].Rule != "slo-breach:victim" {
		t.Fatalf("decisions section = %+v", b.Decisions)
	}
	if len(b.Spans) != 5 || b.SpansDropped != 0 {
		t.Fatalf("spans section = %d spans, %d dropped; want 5, 0", len(b.Spans), b.SpansDropped)
	}
}

// TestBundleSpanLimit checks ?spans=N keeps the newest N (reporting the
// drop) and ?spans=0 omits the section entirely.
func TestBundleSpanLimit(t *testing.T) {
	srv, _ := bundleFixture(t)

	b := getBundle(t, srv.URL+"/debug/bundle?spans=2")
	if len(b.Spans) != 2 || b.SpansDropped != 3 {
		t.Fatalf("spans=2: %d spans, %d dropped; want 2, 3", len(b.Spans), b.SpansDropped)
	}
	// Spans() is time-ordered: the survivors are the newest.
	if b.Spans[0].Name != "f3" || b.Spans[1].Name != "f4" {
		t.Fatalf("kept spans = %q, %q; want newest f3, f4", b.Spans[0].Name, b.Spans[1].Name)
	}

	b = getBundle(t, srv.URL+"/debug/bundle?spans=0")
	if len(b.Spans) != 0 || b.SpansDropped != 0 {
		t.Fatalf("spans=0: %d spans, %d dropped; want none", len(b.Spans), b.SpansDropped)
	}

	resp, err := http.Get(srv.URL + "/debug/bundle?spans=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("spans=-1 status = %d, want 400", resp.StatusCode)
	}
}

// TestBundleMinimal checks the endpoint works over a bare data plane: no
// tracer, tenants, epochs, or decisions — the optional sections are simply
// absent, never an error.
func TestBundleMinimal(t *testing.T) {
	srv := httptest.NewServer(New(&fakeDP{}))
	defer srv.Close()
	b := getBundle(t, srv.URL+"/debug/bundle")
	if b.Tenants != nil || b.Epochs != nil || b.Decisions != nil || b.Spans != nil {
		t.Fatalf("bare bundle has optional sections: %+v", b)
	}
	if b.Attribution.ConsumerShare != 1 {
		t.Fatalf("idle attribution = %+v, want consumer share 1", b.Attribution)
	}

	resp, err := http.Post(srv.URL+"/debug/bundle", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

// TestMetricsIncludeSLO checks the Prometheus exposition carries the
// per-tenant latency histogram and the prisma_slo_* gauges for tenants
// with an objective.
func TestMetricsIncludeSLO(t *testing.T) {
	breach := obs.SLOStatus{Tenant: "victim", State: obs.SLOBreach,
		BurnShort: 6, BurnLong: 2, BudgetRemaining: 0}
	snap := tenancy.Snapshot{Capacity: 500, Tenants: []tenancy.TenantStats{
		{Name: "quiet", Weight: 1}, // no objective: no slo series
		{Name: "victim", Weight: 1, SLOBoosted: true, SLO: &breach},
	}}
	srv := httptest.NewServer(NewWithConfig(&fakeDP{}, Config{
		Tenants: func() tenancy.Snapshot { return snap },
	}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(strings.Builder)
	if _, err := readAll(body, resp); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		"# TYPE prisma_tenant_read_latency_seconds histogram",
		`prisma_slo_state{tenant="victim"} 2`,
		`prisma_slo_burn_rate{tenant="victim",window="short"} 6`,
		`prisma_slo_burn_rate{tenant="victim",window="long"} 2`,
		`prisma_slo_budget_remaining{tenant="victim"} 0`,
		`prisma_slo_boosted{tenant="victim"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(text, `prisma_slo_state{tenant="quiet"}`) {
		t.Error("tenant without an objective got slo series")
	}
}
