package httpadmin

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dsrhaslab/prisma-go/internal/core"
)

// fakeDP is a scriptable data plane.
type fakeDP struct {
	stats     core.StageStats
	producers int
	buffer    int
}

func (f *fakeDP) Stats() core.StageStats  { return f.stats }
func (f *fakeDP) SetProducers(n int)      { f.producers = n }
func (f *fakeDP) SetBufferCapacity(n int) { f.buffer = n }

func newServer(t *testing.T) (*httptest.Server, *fakeDP) {
	t.Helper()
	dp := &fakeDP{}
	dp.stats.Reads = 100
	dp.stats.Hits = 90
	dp.stats.TargetProducers = 4
	dp.stats.Buffer.Capacity = 64
	srv := httptest.NewServer(New(dp))
	t.Cleanup(srv.Close)
	return srv, dp
}

func TestHealthz(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestStatsJSON(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var got core.StageStats
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Reads != 100 || got.Hits != 90 {
		t.Fatalf("stats = %+v", got)
	}
}

func TestStatsRejectsPost(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Post(srv.URL+"/stats", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	srv, _ := newServer(t)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(strings.Builder)
	if _, err := readAll(body, resp); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		"# TYPE prisma_reads_total counter",
		"prisma_reads_total 100",
		"prisma_buffer_hits_total 90",
		"# TYPE prisma_producers gauge",
		"prisma_producers 4",
		"prisma_buffer_capacity 64",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

func readAll(sb *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 4096)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		sb.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

func TestTuningApplies(t *testing.T) {
	srv, dp := newServer(t)
	resp, err := http.Post(srv.URL+"/tuning?producers=7&buffer=128", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if dp.producers != 7 || dp.buffer != 128 {
		t.Fatalf("applied = %d/%d, want 7/128", dp.producers, dp.buffer)
	}
}

func TestTuningValidation(t *testing.T) {
	srv, dp := newServer(t)
	cases := []string{
		"/tuning?producers=abc",
		"/tuning?buffer=0",
		"/tuning", // nothing to apply
	}
	for _, path := range cases {
		resp, err := http.Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", path, resp.StatusCode)
		}
	}
	if dp.producers != 0 || dp.buffer != 0 {
		t.Fatalf("bad requests mutated the stage: %+v", dp)
	}
	// GET on /tuning is rejected.
	resp, err := http.Get(srv.URL + "/tuning")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /tuning status = %d, want 405", resp.StatusCode)
	}
}
