package httpadmin

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/dsrhaslab/prisma-go/internal/tenancy"
)

// tenantServer wires a scriptable tenancy snapshot (and optional SetTenant
// recorder) into the handler.
func tenantServer(t *testing.T, snap *tenancy.Snapshot, set func(string, float64, float64) error) *httptest.Server {
	t.Helper()
	cfg := Config{
		Tenants:   func() tenancy.Snapshot { return *snap },
		SetTenant: set,
	}
	srv := httptest.NewServer(NewWithConfig(&fakeDP{}, cfg))
	t.Cleanup(srv.Close)
	return srv
}

func sampleSnapshot() tenancy.Snapshot {
	return tenancy.Snapshot{
		Overloaded: true,
		Capacity:   500,
		Tenants: []tenancy.TenantStats{
			{Name: "default", Weight: 1, GrantedRate: 100, Admitted: 10},
			{Name: "job-a", Weight: 4, GrantedRate: 400, Admitted: 90, Shed: 7, BytesRead: 1 << 20, ByteBudget: 2048, InDebt: true},
		},
	}
}

func TestTenantsJSON(t *testing.T) {
	snap := sampleSnapshot()
	srv := tenantServer(t, &snap, nil)
	resp, err := http.Get(srv.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var got tenancy.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Overloaded || got.Capacity != 500 || len(got.Tenants) != 2 {
		t.Fatalf("snapshot = %+v", got)
	}
	if got.Tenants[1].Name != "job-a" || got.Tenants[1].Shed != 7 {
		t.Fatalf("job-a = %+v", got.Tenants[1])
	}
}

func TestTenantsNotEnabled(t *testing.T) {
	srv := httptest.NewServer(New(&fakeDP{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}

func TestTenantsPostSetsKnobs(t *testing.T) {
	snap := sampleSnapshot()
	var gotName string
	var gotWeight, gotBytes float64
	srv := tenantServer(t, &snap, func(name string, w, b float64) error {
		gotName, gotWeight, gotBytes = name, w, b
		if name == "ghost" {
			return fmt.Errorf("tenant %q not registered", name)
		}
		return nil
	})
	resp, err := http.Post(srv.URL+"/tenants?name=job-a&weight=2&bytes=4096", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if gotName != "job-a" || gotWeight != 2 || gotBytes != 4096 {
		t.Fatalf("SetTenant called with (%q, %g, %g)", gotName, gotWeight, gotBytes)
	}

	for query, want := range map[string]int{
		"?name=ghost&weight=2": http.StatusNotFound,
		"?weight=2":            http.StatusBadRequest, // missing name
		"?name=job-a":          http.StatusBadRequest, // nothing to apply
		"?name=job-a&weight=x": http.StatusBadRequest,
		"?name=job-a&bytes=-1": http.StatusBadRequest,
	} {
		resp, err := http.Post(srv.URL+"/tenants"+query, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s status = %d, want %d", query, resp.StatusCode, want)
		}
	}
}

func TestTenantMetricsExposition(t *testing.T) {
	snap := sampleSnapshot()
	srv := tenantServer(t, &snap, nil)
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		"prisma_tenant_overloaded 1",
		"prisma_tenant_capacity 500",
		`prisma_tenant_granted_rate{tenant="job-a"} 400`,
		`prisma_tenant_admitted_total{tenant="job-a"} 90`,
		`prisma_tenant_shed_total{tenant="job-a"} 7`,
		`prisma_tenant_bytes_read_total{tenant="job-a"} 1.048576e+06`,
		`prisma_tenant_in_debt{tenant="job-a"} 1`,
		`prisma_tenant_in_debt{tenant="default"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
