package obs

import (
	"sort"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
)

// SLO states. The tracker follows the SRE multi-window burn-rate pattern:
// a tenant is BREACHING only while both the short and long windows burn
// error budget too fast (fast detection without flapping on noise), WARN
// when the short window alone burns hot, OK otherwise.
const (
	SLOOK     = "ok"
	SLOWarn   = "warn"
	SLOBreach = "breach"
)

// SLOConfig is one tenant's latency objective: "Quantile of reads complete
// within Threshold, and at most ShedBudget of requests may be shed". A read
// is "bad" when it was shed or its latency exceeded Threshold; the error
// budget is the fraction of reads allowed to be bad,
// (1 - Quantile) + ShedBudget.
type SLOConfig struct {
	// Quantile is the target latency quantile in (0, 1), e.g. 0.99.
	Quantile float64 `json:"quantile"`
	// Threshold is the latency bound the quantile must meet.
	Threshold time.Duration `json:"threshold"`
	// ShedBudget is the extra fraction of requests allowed to be shed
	// (load-shedding is budgeted separately from slowness so an overloaded
	// but honest gate doesn't instantly breach). Default 0.
	ShedBudget float64 `json:"shed_budget,omitempty"`
	// Window is the long evaluation window (default 60s of env-clock time).
	Window time.Duration `json:"window,omitempty"`
	// ShortWindow is the fast-detection window (default Window/12). It is
	// also the tracker's bucket width, so Window is rounded up to a whole
	// number of short windows.
	ShortWindow time.Duration `json:"short_window,omitempty"`
	// WarnBurn and BreachBurn are burn-rate thresholds: a burn rate of 1
	// consumes exactly the whole error budget over the window. Defaults 1
	// and 4 (a breach burns the long window's budget in a quarter of it).
	WarnBurn   float64 `json:"warn_burn,omitempty"`
	BreachBurn float64 `json:"breach_burn,omitempty"`
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = 0.99
	}
	if c.ShedBudget < 0 {
		c.ShedBudget = 0
	}
	if c.Window <= 0 {
		c.Window = 60 * time.Second
	}
	if c.ShortWindow <= 0 || c.ShortWindow > c.Window {
		c.ShortWindow = c.Window / 12
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = c.Window
	}
	if c.WarnBurn <= 0 {
		c.WarnBurn = 1
	}
	if c.BreachBurn < c.WarnBurn {
		c.BreachBurn = 4 * c.WarnBurn
	}
	return c
}

// budgetFraction is the fraction of reads allowed to be bad.
func (c SLOConfig) budgetFraction() float64 {
	return (1 - c.Quantile) + c.ShedBudget
}

// SLOStatus is one tenant's current objective evaluation, JSON-shaped for
// /tenants, /debug/bundle, and prisma-ctl.
type SLOStatus struct {
	Tenant      string        `json:"tenant"`
	State       string        `json:"state"`
	Quantile    float64       `json:"quantile"`
	Threshold   time.Duration `json:"threshold"`
	ShedBudget  float64       `json:"shed_budget,omitempty"`
	Window      time.Duration `json:"window"`
	ShortWindow time.Duration `json:"short_window"`
	// BurnShort and BurnLong are the error-budget burn rates over the
	// short and long windows (1 = burning exactly the budget).
	BurnShort float64 `json:"burn_short"`
	BurnLong  float64 `json:"burn_long"`
	// BudgetRemaining is the long window's unburned budget fraction,
	// clamped to [0, 1].
	BudgetRemaining float64 `json:"budget_remaining"`
	// Good/Bad/Shed count the long window's reads (Bad includes Shed).
	Good int64 `json:"good"`
	Bad  int64 `json:"bad"`
	Shed int64 `json:"shed"`
}

// SLOTransition is one state change surfaced by Evaluate, the hook the
// tenancy gate and autotuner act on (and audit).
type SLOTransition struct {
	Tenant string    `json:"tenant"`
	From   string    `json:"from"`
	To     string    `json:"to"`
	Status SLOStatus `json:"status"`
}

// sloBucket is one ShortWindow-wide tally of read outcomes.
type sloBucket struct {
	good int64
	bad  int64 // includes shed
	shed int64
}

// sloTenant is one tenant's sliding window: a ring of ShortWindow-wide
// buckets covering the long window, rotated off the env clock.
type sloTenant struct {
	cfg     SLOConfig
	buckets []sloBucket
	// epoch is the env-clock bucket index (now / ShortWindow) the current
	// ring head corresponds to; buckets[epoch % len(buckets)] is "now".
	epoch int64
	state string
}

// rotate advances the ring to the bucket containing now, zeroing any
// skipped buckets so idle time decays the windows toward empty (and the
// state toward OK).
func (t *sloTenant) rotate(now time.Duration) {
	idx := int64(now / t.cfg.ShortWindow)
	if idx <= t.epoch {
		return
	}
	steps := idx - t.epoch
	if steps > int64(len(t.buckets)) {
		steps = int64(len(t.buckets))
	}
	for i := int64(1); i <= steps; i++ {
		t.buckets[(t.epoch+i)%int64(len(t.buckets))] = sloBucket{}
	}
	t.epoch = idx
}

// burn computes the error-budget burn rate over the most recent n buckets.
// An empty window burns nothing.
func (t *sloTenant) burn(n int) (rate float64, good, bad, shed int64) {
	if n > len(t.buckets) {
		n = len(t.buckets)
	}
	for i := 0; i < n; i++ {
		b := t.buckets[((t.epoch-int64(i))%int64(len(t.buckets))+int64(len(t.buckets)))%int64(len(t.buckets))]
		good += b.good
		bad += b.bad
		shed += b.shed
	}
	total := good + bad
	if total == 0 {
		return 0, good, bad, shed
	}
	budget := t.cfg.budgetFraction()
	if budget <= 0 {
		budget = 1e-9
	}
	return (float64(bad) / float64(total)) / budget, good, bad, shed
}

// status evaluates the tenant's windows at the current ring position. The
// short window spans the current and previous bucket (so a just-rotated,
// nearly empty head bucket doesn't blind fast detection).
func (t *sloTenant) status(name string) SLOStatus {
	burnShort, _, _, _ := t.burn(2)
	burnLong, good, bad, shed := t.burn(len(t.buckets))
	state := SLOOK
	switch {
	case burnShort >= t.cfg.BreachBurn && burnLong >= t.cfg.WarnBurn:
		state = SLOBreach
	case burnShort >= t.cfg.WarnBurn:
		state = SLOWarn
	}
	remaining := 1 - burnLong
	if remaining < 0 {
		remaining = 0
	}
	return SLOStatus{
		Tenant:          name,
		State:           state,
		Quantile:        t.cfg.Quantile,
		Threshold:       t.cfg.Threshold,
		ShedBudget:      t.cfg.ShedBudget,
		Window:          t.cfg.ShortWindow * time.Duration(len(t.buckets)),
		ShortWindow:     t.cfg.ShortWindow,
		BurnShort:       burnShort,
		BurnLong:        burnLong,
		BudgetRemaining: remaining,
		Good:            good,
		Bad:             bad,
		Shed:            shed,
	}
}

// SLOTracker evaluates per-tenant latency objectives over env-clock sliding
// windows. All methods are safe for concurrent use and safe on a nil
// receiver (no-ops), so the observation hot path needs no nil checks. Under
// the simulated clock the whole state machine is deterministic.
type SLOTracker struct {
	env conc.Env

	mu      conc.Mutex
	tenants map[string]*sloTenant
}

// NewSLOTracker builds a tracker on env's clock.
func NewSLOTracker(env conc.Env) *SLOTracker {
	return &SLOTracker{
		env:     env,
		mu:      env.NewMutex(),
		tenants: make(map[string]*sloTenant),
	}
}

// Set installs (or replaces) a tenant's objective. Replacing resets the
// tenant's windows and state.
func (s *SLOTracker) Set(tenant string, cfg SLOConfig) {
	if s == nil {
		return
	}
	cfg = cfg.withDefaults()
	n := int((cfg.Window + cfg.ShortWindow - 1) / cfg.ShortWindow)
	if n < 1 {
		n = 1
	}
	t := &sloTenant{
		cfg:     cfg,
		buckets: make([]sloBucket, n),
		epoch:   int64(s.env.Now() / cfg.ShortWindow),
		state:   SLOOK,
	}
	s.mu.Lock()
	s.tenants[tenant] = t
	s.mu.Unlock()
}

// Remove drops a tenant's objective.
func (s *SLOTracker) Remove(tenant string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.tenants, tenant)
	s.mu.Unlock()
}

// Config reports a tenant's installed objective (with defaults applied).
func (s *SLOTracker) Config(tenant string) (SLOConfig, bool) {
	if s == nil {
		return SLOConfig{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenant]
	if !ok {
		return SLOConfig{}, false
	}
	return t.cfg, true
}

// Observe records one read outcome for tenant: bad when shed, or when the
// latency exceeded the objective's threshold. Tenants without an objective
// are ignored, so the hot path can call unconditionally.
func (s *SLOTracker) Observe(tenant string, latency time.Duration, shed bool) {
	if s == nil {
		return
	}
	now := s.env.Now()
	s.mu.Lock()
	t, ok := s.tenants[tenant]
	if !ok {
		s.mu.Unlock()
		return
	}
	t.rotate(now)
	b := &t.buckets[t.epoch%int64(len(t.buckets))]
	if shed {
		b.bad++
		b.shed++
	} else if latency > t.cfg.Threshold {
		b.bad++
	} else {
		b.good++
	}
	s.mu.Unlock()
}

// Evaluate advances every tenant's windows to now, recomputes states, and
// returns the transitions (sorted by tenant for determinism). The caller —
// the tenancy tick loop — turns transitions into gate/autotuner actions.
func (s *SLOTracker) Evaluate() []SLOTransition {
	if s == nil {
		return nil
	}
	now := s.env.Now()
	s.mu.Lock()
	var out []SLOTransition
	for name, t := range s.tenants {
		t.rotate(now)
		st := t.status(name)
		if st.State != t.state {
			out = append(out, SLOTransition{Tenant: name, From: t.state, To: st.State, Status: st})
			t.state = st.State
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Status reports one tenant's current evaluation (false if no objective).
// Read-only: the reported state is the last Evaluate-committed one.
func (s *SLOTracker) Status(tenant string) (SLOStatus, bool) {
	if s == nil {
		return SLOStatus{}, false
	}
	now := s.env.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenant]
	if !ok {
		return SLOStatus{}, false
	}
	t.rotate(now)
	st := t.status(tenant)
	st.State = t.state
	return st, true
}

// Snapshot reports every tracked tenant's status, sorted by tenant name.
// Like Status, states are the last Evaluate-committed ones.
func (s *SLOTracker) Snapshot() []SLOStatus {
	if s == nil {
		return nil
	}
	now := s.env.Now()
	s.mu.Lock()
	out := make([]SLOStatus, 0, len(s.tenants))
	for name, t := range s.tenants {
		t.rotate(now)
		st := t.status(name)
		st.State = t.state
		out = append(out, st)
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
