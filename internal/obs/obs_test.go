package obs

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
)

func newTestTracer(opts TracerOptions) *Tracer {
	return NewTracer(conc.NewReal(), opts)
}

// TestSamplingDeterministic: the head-sampling decision comes from a seeded
// generator, so two tracers with the same seed make the same keep/drop
// sequence (the property the sim's byte-identical replays rest on).
func TestSamplingDeterministic(t *testing.T) {
	a := newTestTracer(TracerOptions{Sampling: 0.3, Seed: 42})
	b := newTestTracer(TracerOptions{Sampling: 0.3, Seed: 42})
	kept := 0
	for i := 0; i < 1000; i++ {
		ca, cb := a.StartTrace(), b.StartTrace()
		if ca != cb {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, ca, cb)
		}
		if ca.Sampled {
			kept++
		}
	}
	if kept < 200 || kept > 400 {
		t.Errorf("kept %d/1000 traces at sampling 0.3, want ~300", kept)
	}
}

// TestSamplingBounds: 0 keeps nothing, 1 keeps everything, and each kept
// trace gets a distinct id under the seed's namespace.
func TestSamplingBounds(t *testing.T) {
	off := newTestTracer(TracerOptions{Sampling: 0})
	for i := 0; i < 100; i++ {
		if ctx := off.StartTrace(); ctx.Sampled || ctx.Trace != 0 {
			t.Fatalf("sampling 0 produced a sampled ctx: %+v", ctx)
		}
	}
	on := newTestTracer(TracerOptions{Sampling: 1, Seed: 7})
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		ctx := on.StartTrace()
		if !ctx.Sampled {
			t.Fatalf("sampling 1 dropped trace %d", i)
		}
		if ctx.Trace>>32 != 7 {
			t.Fatalf("trace id %#x not namespaced by seed 7", ctx.Trace)
		}
		if seen[ctx.Trace] {
			t.Fatalf("duplicate trace id %#x", ctx.Trace)
		}
		seen[ctx.Trace] = true
	}
}

// TestSetSamplingClamped: runtime adjustments clamp to [0, 1].
func TestSetSamplingClamped(t *testing.T) {
	tr := newTestTracer(TracerOptions{})
	tr.SetSampling(2.5)
	if got := tr.Sampling(); got != 1 {
		t.Errorf("SetSampling(2.5): got %v, want 1", got)
	}
	tr.SetSampling(-1)
	if got := tr.Sampling(); got != 0 {
		t.Errorf("SetSampling(-1): got %v, want 0", got)
	}
	if ctx := tr.StartTrace(); ctx.Sampled {
		t.Error("StartTrace sampled after SetSampling(-1)")
	}
}

// TestRingBounded: each stage ring holds at most RingSize spans, overwrites
// oldest-first, and reports the overflow via Dropped.
func TestRingBounded(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sampling: 1, RingSize: 8})
	for i := 0; i < 20; i++ {
		tr.Record(Span{Trace: uint64(i + 1), Stage: StageStorageRead, Name: fmt.Sprintf("s%02d", i),
			At: time.Duration(i) * time.Millisecond, Latency: time.Millisecond})
	}
	spans := tr.SpansFor(StageStorageRead)
	if len(spans) != 8 {
		t.Fatalf("ring retained %d spans, want 8", len(spans))
	}
	// Oldest first, and only the newest 8 survive (12..19).
	for i, s := range spans {
		if want := uint64(12 + i + 1); s.Trace != want {
			t.Errorf("span %d: trace %d, want %d", i, s.Trace, want)
		}
	}
	if got := tr.Dropped(); got != 12 {
		t.Errorf("Dropped() = %d, want 12", got)
	}
	// Rings are per stage: another stage is unaffected.
	tr.Record(Span{Trace: 1, Stage: StageConsumerWait})
	if got := len(tr.SpansFor(StageConsumerWait)); got != 1 {
		t.Errorf("consumer-wait ring has %d spans, want 1", got)
	}
}

// TestRecordDropsUnsampled: zero-trace spans (unsampled ctx) are discarded.
func TestRecordDropsUnsampled(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sampling: 1})
	tr.Record(Span{Trace: 0, Stage: StageIPC})
	if got := len(tr.Spans()); got != 0 {
		t.Errorf("unsampled span was retained (%d spans)", got)
	}
}

// TestNilTracerSafe: every method is a no-op on a nil receiver, so
// instrumentation sites need no nil checks.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if ctx := tr.StartTrace(); ctx.Sampled {
		t.Error("nil tracer sampled a trace")
	}
	tr.Record(Span{Trace: 1, Stage: StageIPC})
	tr.SetSampling(0.5)
	if got := tr.Sampling(); got != 0 {
		t.Errorf("nil Sampling() = %v", got)
	}
	if got := tr.Now(); got != 0 {
		t.Errorf("nil Now() = %v", got)
	}
	if got := tr.Spans(); got != nil {
		t.Errorf("nil Spans() = %v", got)
	}
	if got := tr.SpansFor(StageIPC); got != nil {
		t.Errorf("nil SpansFor() = %v", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Errorf("nil Dropped() = %d", got)
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Errorf("nil Export: %v", err)
	}
}

// TestSpansOrdered: Spans merges the per-stage rings into a single stream
// ordered by start time.
func TestSpansOrdered(t *testing.T) {
	tr := newTestTracer(TracerOptions{Sampling: 1})
	tr.Record(Span{Trace: 1, Stage: StageConsumerWait, At: 30 * time.Millisecond})
	tr.Record(Span{Trace: 1, Stage: StageFIFOPop, At: 10 * time.Millisecond})
	tr.Record(Span{Trace: 1, Stage: StageStorageRead, At: 20 * time.Millisecond})
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].At < spans[i-1].At {
			t.Fatalf("spans out of order: %v after %v", spans[i].At, spans[i-1].At)
		}
	}
}

// TestWriteReadSpansRoundTrip: the JSONL interchange preserves every field,
// including the omitempty extras.
func TestWriteReadSpansRoundTrip(t *testing.T) {
	in := []Span{
		{Trace: 0x2a_0000_0001, Stage: StageFIFOPop, Name: "a", At: time.Millisecond, Latency: 2 * time.Millisecond},
		{Trace: 0x2a_0000_0001, Stage: StageStorageRead, Name: "a", At: 3 * time.Millisecond,
			Latency: 5 * time.Millisecond, Size: 4096, Retries: 2, Breaker: "half-open"},
		{Trace: 0x2a_0000_0002, Link: 0x2a_0000_0001, Stage: StageConsumerWait, Name: "a",
			At: 8 * time.Millisecond, Latency: time.Millisecond, Shard: 3,
			StorageWait: 600 * time.Microsecond, BufferWait: 400 * time.Microsecond},
		{Trace: 0x2a_0000_0003, Stage: StageIPC, Name: "b", At: 9 * time.Millisecond,
			Latency: 100 * time.Microsecond, Error: "ipc: read b: no such file"},
	}
	var buf bytes.Buffer
	if err := WriteSpans(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip changed count: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("span %d changed:\n in: %+v\nout: %+v", i, in[i], out[i])
		}
	}
}

// TestAttributeShares: the share math clamps, scales, and always sums to 1.
func TestAttributeShares(t *testing.T) {
	a := Attribute(AttributionInput{
		Window: time.Second, Consumers: 2,
		ConsumerWait: time.Second, StorageWait: 800 * time.Millisecond,
		BufferWait: 200 * time.Millisecond, IPCOverhead: 100 * time.Millisecond,
	})
	if got := a.StorageShare + a.BufferFullShare + a.IPCShare + a.ConsumerShare; got < 0.999 || got > 1.001 {
		t.Errorf("shares sum to %v", got)
	}
	if a.StorageShare != 0.4 {
		t.Errorf("StorageShare = %v, want 0.4 (800ms over 2x1s)", a.StorageShare)
	}

	// Degenerate window: everything becomes consumer share.
	z := Attribute(AttributionInput{Consumers: 1})
	if z.ConsumerShare != 1 {
		t.Errorf("zero-window ConsumerShare = %v, want 1", z.ConsumerShare)
	}

	// Oversubscribed blame (counters exceed the window) scales down to 1.
	over := Attribute(AttributionInput{
		Window: time.Second, Consumers: 1,
		StorageWait: 2 * time.Second, BufferWait: 2 * time.Second,
	})
	if got := over.StorageShare + over.BufferFullShare + over.IPCShare; got > 1.0001 {
		t.Errorf("oversubscribed shares sum to %v, want <= 1", got)
	}
	if over.ConsumerShare != 0 {
		t.Errorf("oversubscribed ConsumerShare = %v, want 0", over.ConsumerShare)
	}
}

// TestAttributeSpansIPCOverhead: span-derived attribution computes IPC
// overhead as client round-trip minus server handling, floored at zero.
func TestAttributeSpansIPCOverhead(t *testing.T) {
	spans := []Span{
		{Trace: 1, Stage: StageConsumerWait, At: 0, Latency: 10 * time.Millisecond,
			StorageWait: 6 * time.Millisecond, BufferWait: 2 * time.Millisecond},
		{Trace: 1, Stage: StageIPC, At: 0, Latency: 12 * time.Millisecond},
		{Trace: 1, Stage: StageIPCServe, At: time.Millisecond, Latency: 10 * time.Millisecond},
		{Trace: 2, Stage: StageStorageRead, At: 2 * time.Millisecond, Latency: 8 * time.Millisecond},
	}
	a := AttributeSpans(spans, 1)
	if a.IPCOverhead != 2*time.Millisecond {
		t.Errorf("IPCOverhead = %v, want 2ms", a.IPCOverhead)
	}
	if a.Window != 12*time.Millisecond {
		t.Errorf("Window = %v, want 12ms (span extent)", a.Window)
	}
	if a.StorageBusy != 8*time.Millisecond {
		t.Errorf("StorageBusy = %v, want 8ms", a.StorageBusy)
	}
	if a.ConsumerWait != 10*time.Millisecond || a.StorageWait != 6*time.Millisecond || a.BufferWait != 2*time.Millisecond {
		t.Errorf("wait split = %v/%v/%v", a.ConsumerWait, a.StorageWait, a.BufferWait)
	}

	// Server faster than transport is normal; server slower (clock skew)
	// floors at zero rather than going negative.
	skewed := AttributeSpans([]Span{
		{Trace: 1, Stage: StageIPC, At: 0, Latency: time.Millisecond},
		{Trace: 1, Stage: StageIPCServe, At: 0, Latency: 5 * time.Millisecond},
	}, 1)
	if skewed.IPCOverhead != 0 {
		t.Errorf("skewed IPCOverhead = %v, want 0", skewed.IPCOverhead)
	}
}
