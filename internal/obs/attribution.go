package obs

import "time"

// AttributionInput are the cumulative (or per-window delta) counters the
// attribution math consumes. They come either from StageStats (the always-on
// path: the buffer splits every consumer wait at Take time) or from a span
// file (AttributeSpans).
type AttributionInput struct {
	// Window is the wall (or virtual) time the counters cover.
	Window time.Duration
	// Consumers is the number of consumer threads/processes demanding
	// samples during the window (>= 1). Shares are fractions of
	// Consumers x Window — the epoch's total consumer time.
	Consumers int
	// ConsumerWait is the total time consumers spent blocked in Take.
	ConsumerWait time.Duration
	// StorageWait is the portion of ConsumerWait overlapping the awaited
	// sample's backend read (or spent before it, queued behind busy
	// producers) — time the storage device is to blame for.
	StorageWait time.Duration
	// BufferWait is the portion of ConsumerWait attributable to buffer
	// capacity: the awaited sample's read started late because its producer
	// was parked on a full shard. With a larger N the read would have
	// started (up to) that much earlier.
	BufferWait time.Duration
	// IPCOverhead is the socket/framing cost: client-observed round-trip
	// time minus server-side handling time.
	IPCOverhead time.Duration
	// CacheWait is time lost inside the shared cache: single-flight
	// followers blocked on another tenant's in-flight fetch of the same
	// sample.
	CacheWait time.Duration
	// TierWait is time lost to tiering work on the read path: fast-tier
	// promotion (compression) and transparent decompression of resident
	// entries.
	TierWait time.Duration
	// ThrottleWait is time reads spent blocked in the tenant admission
	// gate (rate/byte budget waits), before any plan state was touched.
	ThrottleWait time.Duration
	// PeerWait is time reads spent forwarded to a peer node's buffer in
	// the cluster fabric — cross-node service time, not local storage.
	PeerWait time.Duration
	// StorageBusy is the total producer time spent inside backend reads
	// (context, not part of the share math).
	StorageBusy time.Duration
	// ProducerPark is the total producer time blocked on full shards
	// (context, not part of the share math).
	ProducerPark time.Duration
}

// Attribution is the per-epoch critical-path breakdown: how the consumers'
// time divides between waiting on storage, waiting on buffer capacity, IPC
// overhead, shared-cache coalescing, tiering work, tenant-gate throttling,
// peer-forwarded cluster reads, and actually consuming (the stage keeping
// up). The eight shares sum to 1 by construction.
type Attribution struct {
	Window    time.Duration `json:"window"`
	Consumers int           `json:"consumers"`

	// StorageShare: fraction of consumer time lost waiting on backend
	// reads — raise t (or the device is saturated).
	StorageShare float64 `json:"storage_share"`
	// BufferFullShare: fraction lost because buffer capacity delayed read
	// start times — raise N.
	BufferFullShare float64 `json:"buffer_full_share"`
	// IPCShare: fraction lost to socket transport and framing.
	IPCShare float64 `json:"ipc_share"`
	// CacheShare: fraction lost blocked on the shared cache's single-flight
	// coalescing — contention for the same hot samples across tenants.
	CacheShare float64 `json:"cache_share"`
	// TierShare: fraction lost to tier promotion and transparent
	// decompression — CPU the tier trades for device reads.
	TierShare float64 `json:"tier_share"`
	// ThrottleShare: fraction lost in the tenant admission gate — lower
	// demand or raise the tenant's budget, the data plane isn't the
	// bottleneck.
	ThrottleShare float64 `json:"throttle_share"`
	// PeerShare: fraction lost waiting on peer nodes' buffers in the
	// cluster fabric — cross-node traffic, not local storage; rebalance
	// placement or the interconnect before blaming the device.
	PeerShare float64 `json:"peer_share"`
	// ConsumerShare: the remainder — time consumers were computing, i.e.
	// the data plane kept up (the pipeline is consumer-bound).
	ConsumerShare float64 `json:"consumer_share"`

	// Raw inputs, for dashboards and decision records.
	ConsumerWait time.Duration `json:"consumer_wait"`
	StorageWait  time.Duration `json:"storage_wait"`
	BufferWait   time.Duration `json:"buffer_wait"`
	IPCOverhead  time.Duration `json:"ipc_overhead"`
	CacheWait    time.Duration `json:"cache_wait"`
	TierWait     time.Duration `json:"tier_wait"`
	ThrottleWait time.Duration `json:"throttle_wait"`
	PeerWait     time.Duration `json:"peer_wait"`
	StorageBusy  time.Duration `json:"storage_busy"`
	ProducerPark time.Duration `json:"producer_park"`
}

// Attribute computes the critical-path breakdown from wait counters. The
// denominator is Consumers x Window (total consumer time); each blame
// bucket is clamped to [0, 1] and the buckets are scaled down
// proportionally if rounding pushes their sum past 1, so the shares always
// sum to exactly 1.
func Attribute(in AttributionInput) Attribution {
	if in.Consumers < 1 {
		in.Consumers = 1
	}
	a := Attribution{
		Window:       in.Window,
		Consumers:    in.Consumers,
		ConsumerWait: clampDur(in.ConsumerWait),
		StorageWait:  clampDur(in.StorageWait),
		BufferWait:   clampDur(in.BufferWait),
		IPCOverhead:  clampDur(in.IPCOverhead),
		CacheWait:    clampDur(in.CacheWait),
		TierWait:     clampDur(in.TierWait),
		ThrottleWait: clampDur(in.ThrottleWait),
		PeerWait:     clampDur(in.PeerWait),
		StorageBusy:  clampDur(in.StorageBusy),
		ProducerPark: clampDur(in.ProducerPark),
	}
	denom := float64(in.Window) * float64(in.Consumers)
	if denom <= 0 {
		a.ConsumerShare = 1
		return a
	}
	a.StorageShare = clampShare(float64(a.StorageWait) / denom)
	a.BufferFullShare = clampShare(float64(a.BufferWait) / denom)
	a.IPCShare = clampShare(float64(a.IPCOverhead) / denom)
	a.CacheShare = clampShare(float64(a.CacheWait) / denom)
	a.TierShare = clampShare(float64(a.TierWait) / denom)
	a.ThrottleShare = clampShare(float64(a.ThrottleWait) / denom)
	a.PeerShare = clampShare(float64(a.PeerWait) / denom)
	total := a.StorageShare + a.BufferFullShare + a.IPCShare +
		a.CacheShare + a.TierShare + a.ThrottleShare + a.PeerShare
	if total > 1 {
		a.StorageShare /= total
		a.BufferFullShare /= total
		a.IPCShare /= total
		a.CacheShare /= total
		a.TierShare /= total
		a.ThrottleShare /= total
		a.PeerShare /= total
		total = 1
	}
	a.ConsumerShare = 1 - total
	return a
}

func clampDur(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

func clampShare(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// AttributeSpans derives the breakdown from an exported span stream: the
// window is the span extent, consumer waits and their storage/buffer splits
// come from consumer-wait spans, and IPC overhead is the client-observed
// round-trip time minus the server-side handling time. With sampling < 1
// the shares describe the sampled traces (an unbiased estimate of the
// population shares under head sampling).
func AttributeSpans(spans []Span, consumers int) Attribution {
	var in AttributionInput
	in.Consumers = consumers
	var first, last time.Duration
	seen := false
	var ipcClient, ipcServe time.Duration
	for _, s := range spans {
		if !seen || s.At < first {
			first = s.At
		}
		if end := s.End(); !seen || end > last {
			last = end
		}
		seen = true
		switch s.Stage {
		case StageConsumerWait:
			in.ConsumerWait += s.Latency
			in.StorageWait += s.StorageWait
			in.BufferWait += s.BufferWait
		case StageStorageRead:
			in.StorageBusy += s.Latency
		case StageBufferPark:
			in.ProducerPark += s.Latency
		case StageIPC:
			ipcClient += s.Latency
		case StageIPCServe:
			ipcServe += s.Latency
		case StageCacheCoalesce:
			in.CacheWait += s.Latency
		case StageTierPromote, StageTierWarm, StageDecompress:
			in.TierWait += s.Latency
		case StageTenantThrottle:
			in.ThrottleWait += s.Latency
		case StagePeerRead:
			in.PeerWait += s.Latency
		}
	}
	if seen {
		in.Window = last - first
	}
	if over := ipcClient - ipcServe; over > 0 {
		in.IPCOverhead = over
	}
	return Attribute(in)
}
