package obs

import (
	"math/rand"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/sim"
)

func runSLOSim(t *testing.T, body func(env conc.Env)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("test-body", func(*sim.Process) { body(env) })
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// sloTestConfig is a tight objective for deterministic sim tests: 90% of
// reads under 1ms over a 12s window with 1s buckets.
func sloTestConfig() SLOConfig {
	return SLOConfig{
		Quantile:    0.9,
		Threshold:   time.Millisecond,
		Window:      12 * time.Second,
		ShortWindow: time.Second,
		WarnBurn:    1,
		BreachBurn:  4,
	}
}

// observeN records n reads with the given latency (shed=false).
func observeN(s *SLOTracker, tenant string, n int, latency time.Duration) {
	for i := 0; i < n; i++ {
		s.Observe(tenant, latency, false)
	}
}

func TestSLODefaults(t *testing.T) {
	runSLOSim(t, func(env conc.Env) {
		s := NewSLOTracker(env)
		s.Set("a", SLOConfig{Threshold: 10 * time.Millisecond})
		cfg, ok := s.Config("a")
		if !ok {
			t.Fatal("Config: tenant missing")
		}
		if cfg.Quantile != 0.99 {
			t.Errorf("Quantile = %v, want 0.99", cfg.Quantile)
		}
		if cfg.Window != 60*time.Second {
			t.Errorf("Window = %v, want 60s", cfg.Window)
		}
		if cfg.ShortWindow != 5*time.Second {
			t.Errorf("ShortWindow = %v, want Window/12 = 5s", cfg.ShortWindow)
		}
		if cfg.WarnBurn != 1 || cfg.BreachBurn != 4 {
			t.Errorf("burns = %v/%v, want 1/4", cfg.WarnBurn, cfg.BreachBurn)
		}
	})
}

// TestSLOStateMachine drives a tenant OK -> WARN -> BREACH -> OK through the
// deterministic sim clock and checks every transition Evaluate surfaces.
func TestSLOStateMachine(t *testing.T) {
	runSLOSim(t, func(env conc.Env) {
		s := NewSLOTracker(env)
		s.Set("victim", sloTestConfig())

		// Healthy traffic: exactly at the quantile, no transitions.
		observeN(s, "victim", 100, 0)
		if tr := s.Evaluate(); len(tr) != 0 {
			t.Fatalf("healthy traffic produced transitions: %+v", tr)
		}
		st, ok := s.Status("victim")
		if !ok || st.State != SLOOK {
			t.Fatalf("Status = %+v, want ok", st)
		}

		// The short window spans this bucket plus the healthy one before
		// it (200 reads); 20 bad burns exactly the 10% budget: burn rate
		// 1 => WARN, not BREACH (BreachBurn is 4).
		env.Sleep(time.Second)
		observeN(s, "victim", 80, 0)
		observeN(s, "victim", 20, 2*time.Millisecond)
		tr := s.Evaluate()
		if len(tr) != 1 || tr[0].From != SLOOK || tr[0].To != SLOWarn {
			t.Fatalf("transitions = %+v, want ok->warn", tr)
		}
		if got := tr[0].Status.BurnShort; got < 0.9 || got > 1.1 {
			t.Errorf("warn BurnShort = %v, want ~1", got)
		}

		// A bucket of 100% bad reads pushes the short-window burn past
		// BreachBurn while the long window is still hot => BREACH.
		env.Sleep(time.Second)
		observeN(s, "victim", 100, 5*time.Millisecond)
		tr = s.Evaluate()
		if len(tr) != 1 || tr[0].From != SLOWarn || tr[0].To != SLOBreach {
			t.Fatalf("transitions = %+v, want warn->breach", tr)
		}
		if tr[0].Status.BurnShort < 4 {
			t.Errorf("breach BurnShort = %v, want >= 4", tr[0].Status.BurnShort)
		}
		if tr[0].Status.BudgetRemaining != 0 {
			t.Errorf("breach BudgetRemaining = %v, want 0", tr[0].Status.BudgetRemaining)
		}

		// Recovery: two buckets of healthy traffic empty the short window,
		// which gates both WARN and BREACH => back to OK.
		for i := 0; i < 2; i++ {
			env.Sleep(time.Second)
			observeN(s, "victim", 100, 0)
		}
		tr = s.Evaluate()
		if len(tr) != 1 || tr[0].From != SLOBreach || tr[0].To != SLOOK {
			t.Fatalf("transitions = %+v, want breach->ok", tr)
		}
	})
}

// TestSLOIdleDecay checks that a breaching tenant with no traffic at all
// decays back to OK once the long window rotates past the bad buckets.
func TestSLOIdleDecay(t *testing.T) {
	runSLOSim(t, func(env conc.Env) {
		s := NewSLOTracker(env)
		s.Set("idle", sloTestConfig())
		observeN(s, "idle", 100, time.Minute) // all bad
		tr := s.Evaluate()
		if len(tr) != 1 || tr[0].To != SLOBreach {
			t.Fatalf("transitions = %+v, want ->breach", tr)
		}

		// Silence for longer than the long window: every bucket rotates
		// to zero and an empty window burns nothing.
		env.Sleep(13 * time.Second)
		tr = s.Evaluate()
		if len(tr) != 1 || tr[0].From != SLOBreach || tr[0].To != SLOOK {
			t.Fatalf("transitions = %+v, want breach->ok", tr)
		}
		st, _ := s.Status("idle")
		if st.Good != 0 || st.Bad != 0 {
			t.Errorf("counts after decay = %d good / %d bad, want 0/0", st.Good, st.Bad)
		}
	})
}

// TestSLOShedBudget checks that shed reads count as bad but the shed budget
// widens the denominator: the same shed-only traffic burns half as fast when
// ShedBudget doubles the error budget.
func TestSLOShedBudget(t *testing.T) {
	runSLOSim(t, func(env conc.Env) {
		s := NewSLOTracker(env)
		cfg := sloTestConfig()
		cfg.Quantile = 0.5 // budget 0.5
		s.Set("strict", cfg)
		cfg.ShedBudget = 0.5 // budget 1.0
		s.Set("lenient", cfg)

		for i := 0; i < 10; i++ {
			s.Observe("strict", 0, true)
			s.Observe("lenient", 0, true)
		}
		s.Evaluate()
		strict, _ := s.Status("strict")
		lenient, _ := s.Status("lenient")
		if strict.Shed != 10 || strict.Bad != 10 || strict.Good != 0 {
			t.Fatalf("strict counts = %+v, want 10 shed = 10 bad, 0 good", strict)
		}
		if strict.BurnLong != 2 {
			t.Errorf("strict BurnLong = %v, want 2 (all bad / 0.5 budget)", strict.BurnLong)
		}
		if lenient.BurnLong != 1 {
			t.Errorf("lenient BurnLong = %v, want 1 (all bad / 1.0 budget)", lenient.BurnLong)
		}
	})
}

// TestSLOSetResets checks that replacing an objective clears the windows and
// committed state.
func TestSLOSetResets(t *testing.T) {
	runSLOSim(t, func(env conc.Env) {
		s := NewSLOTracker(env)
		s.Set("a", sloTestConfig())
		observeN(s, "a", 50, time.Second)
		if tr := s.Evaluate(); len(tr) != 1 || tr[0].To != SLOBreach {
			t.Fatalf("transitions = %+v, want ->breach", tr)
		}
		s.Set("a", sloTestConfig())
		st, ok := s.Status("a")
		if !ok || st.State != SLOOK || st.Bad != 0 {
			t.Fatalf("after re-Set: %+v, want ok with empty windows", st)
		}
	})
}

func TestSLONilAndUnknownTenantSafe(t *testing.T) {
	runSLOSim(t, func(env conc.Env) {
		var nilT *SLOTracker
		nilT.Set("a", SLOConfig{})
		nilT.Observe("a", 0, false)
		nilT.Remove("a")
		if tr := nilT.Evaluate(); tr != nil {
			t.Errorf("nil Evaluate = %+v, want nil", tr)
		}
		if _, ok := nilT.Status("a"); ok {
			t.Error("nil Status ok = true")
		}
		if snap := nilT.Snapshot(); snap != nil {
			t.Errorf("nil Snapshot = %+v, want nil", snap)
		}
		if _, ok := nilT.Config("a"); ok {
			t.Error("nil Config ok = true")
		}

		s := NewSLOTracker(env)
		s.Observe("ghost", time.Hour, true) // no objective: ignored
		if tr := s.Evaluate(); len(tr) != 0 {
			t.Errorf("ghost tenant produced transitions: %+v", tr)
		}
		s.Set("real", sloTestConfig())
		s.Remove("real")
		if _, ok := s.Status("real"); ok {
			t.Error("Status ok after Remove")
		}
	})
}

// TestSLOSnapshotSorted checks Snapshot determinism (sorted by tenant).
func TestSLOSnapshotSorted(t *testing.T) {
	runSLOSim(t, func(env conc.Env) {
		s := NewSLOTracker(env)
		for _, name := range []string{"zeta", "alpha", "mid"} {
			s.Set(name, sloTestConfig())
		}
		snap := s.Snapshot()
		if len(snap) != 3 {
			t.Fatalf("Snapshot len = %d, want 3", len(snap))
		}
		for i := 1; i < len(snap); i++ {
			if snap[i-1].Tenant >= snap[i].Tenant {
				t.Fatalf("Snapshot not sorted: %q before %q", snap[i-1].Tenant, snap[i].Tenant)
			}
		}
	})
}

// TestAttributeSharesSumToOne is the property test from the acceptance
// criteria: for arbitrary wait mixes — including the cache, tier, and
// throttle buckets — every share stays in [0, 1] and the seven shares sum
// to 1.
func TestAttributeSharesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randDur := func() time.Duration {
		// Mix zeros, small, and oversized (> window) values.
		switch rng.Intn(4) {
		case 0:
			return 0
		case 1:
			return -time.Duration(rng.Int63n(int64(time.Second)))
		default:
			return time.Duration(rng.Int63n(int64(10 * time.Second)))
		}
	}
	for i := 0; i < 1000; i++ {
		in := AttributionInput{
			Window:       time.Duration(rng.Int63n(int64(2 * time.Second))),
			Consumers:    rng.Intn(8), // includes 0: clamped to 1
			ConsumerWait: randDur(),
			StorageWait:  randDur(),
			BufferWait:   randDur(),
			IPCOverhead:  randDur(),
			CacheWait:    randDur(),
			TierWait:     randDur(),
			ThrottleWait: randDur(),
		}
		a := Attribute(in)
		shares := []float64{
			a.StorageShare, a.BufferFullShare, a.IPCShare,
			a.CacheShare, a.TierShare, a.ThrottleShare, a.ConsumerShare,
		}
		sum := 0.0
		for _, sh := range shares {
			if sh < 0 || sh > 1 {
				t.Fatalf("case %d: share out of range: %+v", i, a)
			}
			sum += sh
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			t.Fatalf("case %d: shares sum to %v, want 1 (%+v)", i, sum, a)
		}
	}
}

// TestAttributeSpansServingChain checks that cache-coalesce, tier, and
// throttle spans land in their own blame buckets.
func TestAttributeSpansServingChain(t *testing.T) {
	spans := []Span{
		{Stage: StageConsumerWait, At: 0, Latency: 400 * time.Millisecond,
			StorageWait: 100 * time.Millisecond, BufferWait: 50 * time.Millisecond},
		{Stage: StageCacheCoalesce, At: 0, Latency: 100 * time.Millisecond},
		{Stage: StageTierPromote, At: 100 * time.Millisecond, Latency: 40 * time.Millisecond},
		{Stage: StageDecompress, At: 200 * time.Millisecond, Latency: 40 * time.Millisecond},
		{Stage: StageTierWarm, At: 300 * time.Millisecond, Latency: 20 * time.Millisecond},
		{Stage: StageTenantThrottle, At: 400 * time.Millisecond, Latency: 200 * time.Millisecond},
		{Stage: StageCacheHit, At: 500 * time.Millisecond, Latency: 500 * time.Millisecond},
	}
	// Window: 0 .. max end = 1s.
	a := AttributeSpans(spans, 1)
	if a.Window != time.Second {
		t.Fatalf("Window = %v, want 1s", a.Window)
	}
	if a.CacheWait != 100*time.Millisecond {
		t.Errorf("CacheWait = %v, want 100ms (coalesce only, hits are free)", a.CacheWait)
	}
	if a.TierWait != 100*time.Millisecond {
		t.Errorf("TierWait = %v, want 100ms (promote+decode+warm)", a.TierWait)
	}
	if a.ThrottleWait != 200*time.Millisecond {
		t.Errorf("ThrottleWait = %v, want 200ms", a.ThrottleWait)
	}
	if a.CacheShare != 0.1 || a.TierShare != 0.1 || a.ThrottleShare != 0.2 {
		t.Errorf("shares = cache %v tier %v throttle %v, want 0.1/0.1/0.2",
			a.CacheShare, a.TierShare, a.ThrottleShare)
	}
	sum := a.StorageShare + a.BufferFullShare + a.IPCShare +
		a.CacheShare + a.TierShare + a.ThrottleShare + a.ConsumerShare
	if sum < 1-1e-9 || sum > 1+1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}
