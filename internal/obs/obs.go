// Package obs is PRISMA's sample-lifecycle tracing subsystem: a span-based,
// env-clock-driven tracer that follows one sample through the data plane —
// FIFO pop, storage read (with retry/breaker annotations), buffer park,
// consumer take, IPC delivery — and turns the spans (or the stage's
// cumulative wait counters) into a latency-attribution report telling the
// control plane whether an epoch was storage-bound, buffer-capacity-bound,
// consumer-bound, or IPC-bound.
//
// All timestamps come from a conc.Env clock and the head-sampling decision
// comes from a seeded generator, so sim-mode runs are fully deterministic:
// the same seed and workload produce byte-identical span streams.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
)

// Lifecycle stage names. A sampled sample emits at most one span per stage;
// a sampled consumer read emits consumer-wait (and ipc/ipc-serve when the
// read crosses the UNIX socket).
const (
	StageFIFOPop      = "fifo-pop"      // plan submission -> producer pop
	StageStorageRead  = "storage-read"  // producer's backend read
	StageBufferPark   = "buffer-park"   // producer blocked on a full shard
	StageConsumerWait = "consumer-wait" // consumer blocked in Take
	StageIPC          = "ipc"           // client-side socket round trip
	StageIPCServe     = "ipc-serve"     // server-side request handling

	// Control-plane plan-lifecycle spans (name is "epoch-<id>").
	StagePlanSubmit  = "plan-submit"  // one epoch submission (Size = plan length)
	StageEpochCancel = "epoch-cancel" // one epoch cancellation (Size = entries dropped)

	// Serving-chain spans (PR 6/7 surfaces): the shared cache, the tier,
	// the transparent codec, and the tenant gate.
	StageCacheHit       = "sharedcache-hit"      // shared-cache resident hit
	StageCacheMiss      = "sharedcache-miss"     // single-flight leader's backend fetch
	StageCacheCoalesce  = "sharedcache-coalesce" // follower waiting on the leader's fetch
	StageTierPromote    = "tier-promote"         // read-triggered fast-tier admission
	StageTierWarm       = "tier-warm"            // plan-driven prefetch into the tier
	StageDecompress     = "recordio-decompress"  // transparent payload decode
	StageTenantThrottle = "tenant-throttle"      // admission-gate rate/byte wait
	StageTenantShed     = "tenant-shed"          // admission-gate load shed (Error set)

	// Cluster-fabric spans (multi-node placement): a read forwarded to the
	// sample's owner node, and the owner-side service of such a read.
	StagePeerRead  = "peer-read"  // requester-side forwarded read (Error set on peer failure)
	StagePeerServe = "peer-serve" // owner-side buffer service of a forwarded read
)

// Span is one timed step of a sample's (or a read's) lifecycle. The JSON
// field names at/name/latency match trace.Event, so span files parse with
// the same tooling as flat I/O traces (prisma-trace).
type Span struct {
	// Trace groups the spans of one lifecycle. Sample-lifecycle spans
	// (fifo-pop, storage-read, buffer-park) carry the trace id assigned at
	// plan submission; read-side spans (consumer-wait, ipc, ipc-serve)
	// carry the consumer's trace id, propagated over the IPC frame header.
	Trace uint64 `json:"trace"`
	// Link joins a read-side span to the sample-lifecycle trace it
	// consumed, when the two differ.
	Link    uint64        `json:"link,omitempty"`
	Stage   string        `json:"stage"`
	Name    string        `json:"name"`
	At      time.Duration `json:"at"`
	Latency time.Duration `json:"latency"`
	Size    int64         `json:"size,omitempty"`
	// Shard is the buffer shard involved (buffer-park, consumer-wait).
	Shard int `json:"shard,omitempty"`
	// Retries and Breaker annotate storage-read spans with the resilient
	// backend's per-read detail.
	Retries int    `json:"retries,omitempty"`
	Breaker string `json:"breaker,omitempty"`
	// StorageWait and BufferWait split a consumer-wait span's latency into
	// the portion caused by the backend read and the portion caused by
	// buffer capacity delaying the read's start (see Attribute).
	StorageWait time.Duration `json:"storage_wait,omitempty"`
	BufferWait  time.Duration `json:"buffer_wait,omitempty"`
	Error       string        `json:"error,omitempty"`
}

// End reports the span's completion time.
func (s Span) End() time.Duration { return s.At + s.Latency }

// Ctx is the span context threaded through the data plane alongside a
// sample or a read. The zero Ctx is "not sampled".
type Ctx struct {
	Trace   uint64
	Sampled bool
}

// TracerOptions configures a Tracer. The zero value disables sampling but
// keeps the tracer usable (sampling can be raised at runtime).
type TracerOptions struct {
	// Sampling is the head-sampling probability in [0, 1]: each new trace
	// (one per planned sample, one per consumer read) is kept with this
	// probability. 0 records nothing; 1 records everything.
	Sampling float64
	// RingSize bounds the per-stage span ring (default 4096). When a ring
	// is full the oldest span is overwritten.
	RingSize int
	// Seed drives the deterministic sampling decision and namespaces trace
	// ids (ids are Seed<<32 | sequence), so spans from different tracers —
	// e.g. an IPC client and the server — cannot collide. Default 1.
	Seed int64
}

// DefaultRingSize is the per-stage span ring capacity when unset.
const DefaultRingSize = 4096

// Tracer assigns trace contexts and collects spans into bounded per-stage
// rings. All methods are safe for concurrent use and safe on a nil
// receiver (no-ops), so instrumentation sites need no nil checks.
type Tracer struct {
	env  conc.Env
	size int
	base uint64

	// samplingBits mirrors sampling (math.Float64bits) so the sampling-off
	// fast path in StartTrace never touches the mutex: the serving chain
	// draws a context per read, and a shared lock there is contention the
	// ≤5% overhead gate can see.
	samplingBits atomic.Uint64

	mu       conc.Mutex
	sampling float64
	rng      *rand.Rand
	seq      uint64
	rings    map[string]*spanRing
}

// spanRing is a bounded overwrite-oldest span buffer.
type spanRing struct {
	buf   []Span
	next  int
	total int
}

func (r *spanRing) add(s Span) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// spans returns the ring's contents, oldest first.
func (r *spanRing) spans() []Span {
	out := make([]Span, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// NewTracer builds a tracer on env.
func NewTracer(env conc.Env, opts TracerOptions) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = DefaultRingSize
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	t := &Tracer{
		env:      env,
		size:     opts.RingSize,
		base:     uint64(opts.Seed) << 32,
		mu:       env.NewMutex(),
		sampling: clampProb(opts.Sampling),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		rings:    make(map[string]*spanRing),
	}
	t.samplingBits.Store(math.Float64bits(t.sampling))
	return t
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Now reports the tracer's clock (zero on a nil tracer).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return t.env.Now()
}

// Sampling reports the current head-sampling probability.
func (t *Tracer) Sampling() float64 {
	if t == nil {
		return 0
	}
	return math.Float64frombits(t.samplingBits.Load())
}

// SetSampling adjusts the head-sampling probability at runtime (control
// knob: Options, OpSetTraceSampling, /tuning?sampling=). Clamped to [0, 1].
func (t *Tracer) SetSampling(p float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sampling = clampProb(p)
	t.samplingBits.Store(math.Float64bits(t.sampling))
	t.mu.Unlock()
}

// StartTrace makes the head-sampling decision for a new trace and assigns
// its id. Unsampled traces get the zero Ctx, so downstream Record calls
// no-op.
func (t *Tracer) StartTrace() Ctx {
	if t == nil {
		return Ctx{}
	}
	// Lock-free fast path: with sampling off (the default in production)
	// drawing a context costs one atomic load, not a shared lock.
	if math.Float64frombits(t.samplingBits.Load()) <= 0 {
		return Ctx{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sampling <= 0 {
		return Ctx{}
	}
	if t.sampling < 1 && t.rng.Float64() >= t.sampling {
		return Ctx{}
	}
	t.seq++
	return Ctx{Trace: t.base | t.seq, Sampled: true}
}

// Record appends a span to its stage's ring. Spans with a zero trace id
// (unsampled) are dropped.
func (t *Tracer) Record(s Span) {
	if t == nil || s.Trace == 0 {
		return
	}
	t.mu.Lock()
	r := t.rings[s.Stage]
	if r == nil {
		r = &spanRing{buf: make([]Span, 0, t.size)}
		t.rings[s.Stage] = r
	}
	r.add(s)
	t.mu.Unlock()
}

// Dropped reports how many spans were overwritten because their stage ring
// was full.
func (t *Tracer) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, r := range t.rings {
		if over := r.total - len(r.buf); over > 0 {
			n += over
		}
	}
	return n
}

// Spans returns every retained span, ordered by start time (ties broken by
// stage name, then trace id, for deterministic output).
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var out []Span
	for _, r := range t.rings {
		out = append(out, r.spans()...)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].Trace < out[j].Trace
	})
	return out
}

// SpansFor returns the retained spans of one stage, oldest first.
func (t *Tracer) SpansFor(stage string) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.rings[stage]
	if r == nil {
		return nil
	}
	return r.spans()
}

// Export writes the retained spans as JSON lines (one span per line) —
// the interchange format prisma-trace consumes.
func (t *Tracer) Export(w io.Writer) error {
	return WriteSpans(w, t.Spans())
}

// WriteSpans serializes spans as JSON lines.
func WriteSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans parses a JSON-lines span file.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	dec := json.NewDecoder(r)
	for {
		var s Span
		if err := dec.Decode(&s); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("obs: span line %d: %w", len(out)+1, err)
		}
		out = append(out, s)
	}
	return out, nil
}
