package storage

import (
	"errors"
	"fmt"

	"github.com/dsrhaslab/prisma-go/internal/conc"
)

// ErrInjected is the base error wrapped by FaultyBackend failures.
var ErrInjected = errors.New("storage: injected fault")

// FaultyBackend wraps a Backend and fails selected reads, for failure-path
// testing of the data plane (producer I/O errors must surface to the
// consumer that requested the file, not wedge the pipeline).
type FaultyBackend struct {
	inner Backend

	mu conc.Mutex
	// failEvery fails every Nth ReadFile (1-indexed); 0 disables.
	failEvery int64
	// failNames fails reads of specific files.
	failNames map[string]bool
	count     int64
	injected  int64
}

// NewFaultyBackend wraps inner with no faults armed.
func NewFaultyBackend(env conc.Env, inner Backend) *FaultyBackend {
	return &FaultyBackend{inner: inner, mu: env.NewMutex(), failNames: make(map[string]bool)}
}

// FailEvery arms a fault on every nth read (n <= 0 disarms).
func (f *FaultyBackend) FailEvery(n int64) {
	f.mu.Lock()
	f.failEvery = n
	f.mu.Unlock()
}

// FailName arms a persistent fault for one file name.
func (f *FaultyBackend) FailName(name string) {
	f.mu.Lock()
	f.failNames[name] = true
	f.mu.Unlock()
}

// Injected reports how many faults have fired.
func (f *FaultyBackend) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// ReadFile applies armed faults, otherwise delegates.
func (f *FaultyBackend) ReadFile(name string) (Data, error) {
	f.mu.Lock()
	f.count++
	fire := f.failNames[name] || (f.failEvery > 0 && f.count%f.failEvery == 0)
	if fire {
		f.injected++
	}
	f.mu.Unlock()
	if fire {
		return Data{}, fmt.Errorf("%w: read of %q", ErrInjected, name)
	}
	return f.inner.ReadFile(name)
}

// Size delegates to the wrapped backend (metadata is assumed healthy).
func (f *FaultyBackend) Size(name string) (int64, error) { return f.inner.Size(name) }
