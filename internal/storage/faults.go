package storage

import (
	"errors"
	"fmt"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
)

// ErrInjected is the base error wrapped by FaultyBackend failures.
var ErrInjected = errors.New("storage: injected fault")

// FaultyBackend wraps a Backend and fails or delays selected reads, for
// failure-path testing of the data plane (producer I/O errors must surface
// to the consumer that requested the file, not wedge the pipeline). It
// implements RangeReader passthrough when the wrapped backend does, so
// recordio shard paths stay testable, and supports transient faults (fail N
// attempts, then heal) and injected latency for chaos schedules.
type FaultyBackend struct {
	env   conc.Env
	inner Backend
	rr    RangeReader // inner's range extension, nil when unsupported

	mu conc.Mutex
	// failEvery fails every Nth read (1-indexed); 0 disables.
	failEvery int64
	// failNames fails reads of specific files until healed.
	failNames map[string]bool
	// transient maps a name to its remaining injected failures; the fault
	// heals once the count reaches zero, so retrying readers succeed.
	transient map[string]int
	// failNext fails the next N reads regardless of name (a blackout).
	failNext int64
	// latency is injected before every read (slow-read emulation).
	latency  time.Duration
	count    int64
	injected int64
	delayed  int64
}

// NewFaultyBackend wraps inner with no faults armed.
func NewFaultyBackend(env conc.Env, inner Backend) *FaultyBackend {
	rr, _ := inner.(RangeReader)
	return &FaultyBackend{
		env:       env,
		inner:     inner,
		rr:        rr,
		mu:        env.NewMutex(),
		failNames: make(map[string]bool),
		transient: make(map[string]int),
	}
}

// FailEvery arms a fault on every nth read (n <= 0 disarms).
func (f *FaultyBackend) FailEvery(n int64) {
	f.mu.Lock()
	f.failEvery = n
	f.mu.Unlock()
}

// FailName arms a persistent fault for one file name (until Heal).
func (f *FaultyBackend) FailName(name string) {
	f.mu.Lock()
	f.failNames[name] = true
	f.mu.Unlock()
}

// FailNTimes arms a transient fault: the next n reads of name fail, after
// which the fault heals itself (n <= 0 disarms). This is the shape a
// retrying reader must survive.
func (f *FaultyBackend) FailNTimes(name string, n int) {
	f.mu.Lock()
	if n <= 0 {
		delete(f.transient, name)
	} else {
		f.transient[name] = n
	}
	f.mu.Unlock()
}

// FailNext arms a blackout: the next n reads of any name fail (n <= 0
// disarms). Used to drive the circuit breaker past its threshold.
func (f *FaultyBackend) FailNext(n int64) {
	f.mu.Lock()
	if n < 0 {
		n = 0
	}
	f.failNext = n
	f.mu.Unlock()
}

// SetLatency injects d of extra latency into every subsequent read (0
// disables). The sleep goes through the conc.Env, so sim-mode runs charge
// virtual time only.
func (f *FaultyBackend) SetLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	f.mu.Lock()
	f.latency = d
	f.mu.Unlock()
}

// Latency reports the injected per-read latency currently armed.
func (f *FaultyBackend) Latency() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.latency
}

// Heal disarms every fault: persistent names, transient counts, blackout,
// periodic failures, and injected latency.
func (f *FaultyBackend) Heal() {
	f.mu.Lock()
	f.failEvery = 0
	f.failNext = 0
	f.latency = 0
	f.failNames = make(map[string]bool)
	f.transient = make(map[string]int)
	f.mu.Unlock()
}

// Injected reports how many faults have fired.
func (f *FaultyBackend) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Delayed reports how many reads had latency injected.
func (f *FaultyBackend) Delayed() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.delayed
}

// apply decides whether the current read of name fires a fault and how much
// latency to inject, updating the fault bookkeeping.
func (f *FaultyBackend) apply(name string) (fire bool, delay time.Duration) {
	f.mu.Lock()
	f.count++
	switch {
	case f.failNames[name]:
		fire = true
	case f.transient[name] > 0:
		f.transient[name]--
		if f.transient[name] == 0 {
			delete(f.transient, name)
		}
		fire = true
	case f.failNext > 0:
		f.failNext--
		fire = true
	case f.failEvery > 0 && f.count%f.failEvery == 0:
		fire = true
	}
	if fire {
		f.injected++
	}
	if f.latency > 0 {
		f.delayed++
		delay = f.latency
	}
	f.mu.Unlock()
	return fire, delay
}

// ReadFile applies armed faults and latency, otherwise delegates.
func (f *FaultyBackend) ReadFile(name string) (Data, error) {
	fire, delay := f.apply(name)
	if delay > 0 {
		f.env.Sleep(delay)
	}
	if fire {
		return Data{}, fmt.Errorf("%w: read of %q", ErrInjected, name)
	}
	return f.inner.ReadFile(name)
}

// ReadRange implements RangeReader with the same fault application as
// ReadFile, so wrapping a range-capable backend (recordio shards) keeps the
// interface. Wrapping a backend without range support yields an error, not
// a panic.
func (f *FaultyBackend) ReadRange(name string, off, n int64) (Data, error) {
	if f.rr == nil {
		return Data{}, fmt.Errorf("storage: faulty: %T does not support range reads", f.inner)
	}
	fire, delay := f.apply(name)
	if delay > 0 {
		f.env.Sleep(delay)
	}
	if fire {
		return Data{}, fmt.Errorf("%w: range read of %q [%d, +%d)", ErrInjected, name, off, n)
	}
	return f.rr.ReadRange(name, off, n)
}

// ReadRangeBatch implements BatchRangeReader, applying one armed fault to
// the whole vector — a coalesced batch is one physical request, so a fault
// fails all of its samples together, exactly what the coalescer's fallback
// path has to absorb.
func (f *FaultyBackend) ReadRangeBatch(name string, ranges []Range, out []Data) ([]Data, error) {
	brr, ok := f.inner.(BatchRangeReader)
	if !ok {
		return out, fmt.Errorf("storage: faulty: %T does not support batched range reads", f.inner)
	}
	fire, delay := f.apply(name)
	if delay > 0 {
		f.env.Sleep(delay)
	}
	if fire {
		return out, fmt.Errorf("%w: batched range read of %q (%d ranges)", ErrInjected, name, len(ranges))
	}
	return brr.ReadRangeBatch(name, ranges, out)
}

// Size delegates to the wrapped backend (metadata is assumed healthy).
func (f *FaultyBackend) Size(name string) (int64, error) { return f.inner.Size(name) }

// SetBufferPool forwards the pool to the wrapped backend (injected faults
// fire before the inner read, so a fired fault never strands a lease).
func (f *FaultyBackend) SetBufferPool(p *mempool.Pool) {
	if pa, ok := f.inner.(PoolAttacher); ok {
		pa.SetBufferPool(p)
	}
}
