// Package storage provides the backend storage substrate PRISMA sits on:
// an analytically modeled block device with bounded internal parallelism
// (standing in for the paper's Intel SSD DC P4600 + XFS node), a real
// directory-backed backend for live runs, an LRU page cache, and fault
// injection wrappers for failure testing.
package storage

import (
	"fmt"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
)

// DeviceSpec parameterizes the analytic device model.
type DeviceSpec struct {
	// Name identifies the device in logs and tables.
	Name string
	// BaseLatency is the fixed per-request cost (submission, seek, FTL,
	// NAND read) independent of transfer size.
	BaseLatency time.Duration
	// BytesPerSecond is the per-channel transfer bandwidth.
	BytesPerSecond float64
	// Channels is the device's internal parallelism: at most this many
	// requests are serviced concurrently; excess requests queue FIFO.
	Channels int
}

// Validate reports whether the spec is self-consistent.
func (s DeviceSpec) Validate() error {
	if s.BaseLatency < 0 {
		return fmt.Errorf("storage: negative base latency %v", s.BaseLatency)
	}
	if s.BytesPerSecond <= 0 {
		return fmt.Errorf("storage: non-positive bandwidth %v", s.BytesPerSecond)
	}
	if s.Channels < 1 {
		return fmt.Errorf("storage: device needs >= 1 channel, got %d", s.Channels)
	}
	return nil
}

// ServiceTime reports the in-channel service duration for a transfer of
// size bytes (excluding queueing).
func (s DeviceSpec) ServiceTime(size int64) time.Duration {
	if size < 0 {
		size = 0
	}
	transfer := time.Duration(float64(size) / s.BytesPerSecond * float64(time.Second))
	return s.BaseLatency + transfer
}

// P4600 models the evaluation node's 1.6 TiB Intel SSD DC P4600 for the
// small-random-read pattern DL training produces through a filesystem:
// per-file read cost is dominated by a fixed syscall+FTL+NAND latency plus
// transfer. Channels bounds the useful concurrency, which is what makes a
// handful of prefetching producers enough to saturate the device (Fig. 3).
func P4600() DeviceSpec {
	return DeviceSpec{
		Name:           "intel-p4600",
		BaseLatency:    260 * time.Microsecond,
		BytesPerSecond: 1.6e9, // per-channel; 8 channels ≈ 3.2 GB/s ceiling at depth
		Channels:       8,
	}
}

// SATAHDD models a 7.2k SATA disk (for ablations contrasting media).
func SATAHDD() DeviceSpec {
	return DeviceSpec{
		Name:           "sata-hdd",
		BaseLatency:    8 * time.Millisecond,
		BytesPerSecond: 180e6,
		Channels:       1,
	}
}

// NFSShare models a contended remote share (high latency, moderate
// parallelism) for multi-tenant experiments.
func NFSShare() DeviceSpec {
	return DeviceSpec{
		Name:           "nfs-share",
		BaseLatency:    1500 * time.Microsecond,
		BytesPerSecond: 400e6,
		Channels:       4,
	}
}

// DeviceStats is a snapshot of device activity.
type DeviceStats struct {
	Reads     int64
	Bytes     int64
	BusyTime  time.Duration // summed in-channel service time
	QueueTime time.Duration // summed time spent waiting for a channel
}

// Device is the analytic device model. Read blocks the calling thread (of
// the owning conc.Env) for queueing plus service time. It is safe for
// concurrent use.
type Device struct {
	env  conc.Env
	spec DeviceSpec

	mu          conc.Mutex
	channelFree []time.Duration // absolute virtual time each channel frees up

	reads    *metrics.Counter
	bytes    *metrics.Counter
	busyNS   *metrics.Counter
	queueNS  *metrics.Counter
	inFlight *metrics.TimeInState
}

// NewDevice builds a device from spec under env.
func NewDevice(env conc.Env, spec DeviceSpec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Device{
		env:         env,
		spec:        spec,
		mu:          env.NewMutex(),
		channelFree: make([]time.Duration, spec.Channels),
		reads:       metrics.NewCounter(env),
		bytes:       metrics.NewCounter(env),
		busyNS:      metrics.NewCounter(env),
		queueNS:     metrics.NewCounter(env),
		inFlight:    metrics.NewTimeInState(env, 0),
	}, nil
}

// Spec returns the device parameters.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Read services a read request of the given size, blocking for queueing
// plus service time. It returns the total time the request spent at the
// device.
func (d *Device) Read(size int64) time.Duration { return d.request(size) }

// Write services a write request of the given size (used by tiering
// promotions); the cost model matches reads.
func (d *Device) Write(size int64) time.Duration { return d.request(size) }

// request runs one transfer through the channel model.
func (d *Device) request(size int64) time.Duration {
	if size < 0 {
		size = 0
	}
	now := d.env.Now()
	svc := d.spec.ServiceTime(size)

	d.mu.Lock()
	// Pick the earliest-free channel (FIFO among arrivals: callers hold the
	// mutex only instantaneously, so channel claims happen in arrival order).
	best := 0
	for i, free := range d.channelFree {
		if free < d.channelFree[best] {
			best = i
		}
	}
	start := now
	if d.channelFree[best] > start {
		start = d.channelFree[best]
	}
	finish := start + svc
	d.channelFree[best] = finish
	d.mu.Unlock()

	queue := start - now
	d.reads.Inc()
	d.bytes.Add(size)
	d.busyNS.Add(int64(svc))
	d.queueNS.Add(int64(queue))
	d.inFlight.Add(1)
	d.env.Sleep(finish - now)
	d.inFlight.Add(-1)
	return finish - now
}

// Stats snapshots cumulative device activity.
func (d *Device) Stats() DeviceStats {
	return DeviceStats{
		Reads:     d.reads.Value(),
		Bytes:     d.bytes.Value(),
		BusyTime:  time.Duration(d.busyNS.Value()),
		QueueTime: time.Duration(d.queueNS.Value()),
	}
}

// InFlightDistribution reports time spent at each concurrent-request depth.
func (d *Device) InFlightDistribution() map[int]time.Duration {
	return d.inFlight.Distribution()
}
