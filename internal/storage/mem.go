package storage

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/dsrhaslab/prisma-go/internal/mempool"
)

// MemBackend serves reads from an in-memory dataset. It exists for two
// in-repo measurements that must not be polluted by filesystem noise:
//
//   - the hot-path allocation benchmark, where the only unavoidable work
//     per read is one payload copy (so pooled vs unpooled isolates the
//     allocator's contribution), and
//   - the aliasing property tests, which compare every delivered sample
//     byte-for-byte against Content's ground truth.
type MemBackend struct {
	mu    sync.Mutex
	files map[string][]byte
	pool  *mempool.Pool
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{files: make(map[string][]byte)}
}

// SetBufferPool attaches a pool; reads then copy into pooled buffers
// instead of fresh allocations.
func (b *MemBackend) SetBufferPool(p *mempool.Pool) { b.pool = p }

// Add stores a file.
func (b *MemBackend) Add(name string, content []byte) {
	b.mu.Lock()
	b.files[name] = content
	b.mu.Unlock()
}

// AddSeeded stores a file with deterministic pseudo-random content derived
// from seed, and returns the content (ground truth for aliasing checks).
func (b *MemBackend) AddSeeded(name string, size int, seed int64) []byte {
	buf := make([]byte, size)
	rand.New(rand.NewSource(seed)).Read(buf)
	b.Add(name, buf)
	return buf
}

// Content returns the stored bytes for name (the source of truth; callers
// must not mutate it).
func (b *MemBackend) Content(name string) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.files[name]
	return c, ok
}

// ReadFile copies the stored content out — into a pooled buffer when a
// pool is attached, a fresh allocation otherwise. The copy is deliberate
// even unpooled: a real backend never aliases its own storage, and the
// aliasing tests rely on delivered samples being distinct arrays.
func (b *MemBackend) ReadFile(name string) (Data, error) {
	b.mu.Lock()
	src, ok := b.files[name]
	b.mu.Unlock()
	if !ok {
		return Data{}, &NotExistError{Name: name}
	}
	if b.pool != nil {
		ref := b.pool.Get(len(src))
		copy(ref.Bytes(), src)
		return Data{Name: name, Size: int64(len(src)), Bytes: ref.Bytes(), Ref: ref}, nil
	}
	out := make([]byte, len(src))
	copy(out, src)
	return Data{Name: name, Size: int64(len(src)), Bytes: out}, nil
}

// ReadRange implements RangeReader with the same pooled-copy contract as
// ReadFile: [off, off+n) clamped to the stored length (reads past EOF
// truncate rather than error, matching DirBackend). This is what lets
// recordio.IndexedBackend serve packed shards out of memory on the
// zero-allocation hot path.
func (b *MemBackend) ReadRange(name string, off, n int64) (Data, error) {
	b.mu.Lock()
	src, ok := b.files[name]
	b.mu.Unlock()
	if !ok {
		return Data{}, &NotExistError{Name: name}
	}
	if off < 0 || n < 0 {
		return Data{}, fmt.Errorf("storage: invalid range [%d, +%d) for %s", off, n, name)
	}
	if off > int64(len(src)) {
		off = int64(len(src))
	}
	if off+n > int64(len(src)) {
		n = int64(len(src)) - off
	}
	window := src[off : off+n]
	if b.pool != nil {
		ref := b.pool.Get(len(window))
		copy(ref.Bytes(), window)
		return Data{Name: name, Size: n, Bytes: ref.Bytes(), Ref: ref}, nil
	}
	out := make([]byte, len(window))
	copy(out, window)
	return Data{Name: name, Size: n, Bytes: out}, nil
}

// Size reports the stored length.
func (b *MemBackend) Size(name string) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.files[name]
	if !ok {
		return 0, &NotExistError{Name: name}
	}
	return int64(len(c)), nil
}
