package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/obs"
)

// Data is the result of reading a file through a Backend. Modeled backends
// carry no payload (Bytes is nil); real backends return the file contents.
//
// When Ref is non-nil, Bytes aliases a pooled buffer and the holder of the
// Data owns exactly one reference: passing the Data on transfers that
// reference, and whoever drops the Data without passing it on must call
// Release (DESIGN.md §11). Wrapper backends (faults, retries, tracing)
// forward Data unchanged, so the reference flows through them untouched.
type Data struct {
	Name  string
	Size  int64
	Bytes []byte
	Ref   *mempool.Ref
}

// Release drops the pooled reference, if any. Safe on payloadless or
// unpooled Data (no-op).
func (d *Data) Release() {
	if d.Ref != nil {
		d.Ref.Release()
		d.Ref = nil
		d.Bytes = nil
	}
}

// PoolAttacher is implemented by backends (and backend wrappers) that can
// serve reads from a mempool.Pool. Wrappers delegate to the innermost
// backend, so attaching the pool at the top of the stack reaches the
// backend that actually allocates payloads.
type PoolAttacher interface {
	SetBufferPool(p *mempool.Pool)
}

// Backend serves whole-file reads, blocking the calling thread for the
// modeled or actual I/O duration. Implementations must be safe for
// concurrent use from threads of the same conc.Env.
type Backend interface {
	// ReadFile reads name in full.
	ReadFile(name string) (Data, error)
	// Size reports the file size from metadata, without data transfer.
	Size(name string) (int64, error)
}

// CtxReader is the optional trace-context extension of Backend: wrappers
// that do attributable work on the read path (the shared cache's
// single-flight coalescing, the tier's promote/decompress) implement it so
// a sampled read's spans land on the read's own trace instead of being
// invisible. Wrappers forward the ctx inward; use the ReadFileCtx helper at
// call sites so plain Backends keep working unchanged.
type CtxReader interface {
	// ReadFileCtx reads name in full, recording spans against ctx when it
	// is sampled. Semantics are otherwise identical to ReadFile.
	ReadFileCtx(name string, ctx obs.Ctx) (Data, error)
}

// ReadFileCtx dispatches a read through the CtxReader extension when b
// implements it, falling back to the plain ReadFile otherwise.
func ReadFileCtx(b Backend, name string, ctx obs.Ctx) (Data, error) {
	if cr, ok := b.(CtxReader); ok {
		return cr.ReadFileCtx(name, ctx)
	}
	return b.ReadFile(name)
}

// RangeReader is the optional byte-range extension of Backend, needed by
// packed record formats (internal/recordio) that read slices of large
// shard files rather than whole small files.
type RangeReader interface {
	// ReadRange reads n bytes of name starting at off. Reads past the end
	// of the file are truncated (Data.Size reports the bytes actually
	// read); off beyond EOF yields an empty Data.
	ReadRange(name string, off, n int64) (Data, error)
}

// NotExistError reports a read of an unknown file.
type NotExistError struct{ Name string }

func (e *NotExistError) Error() string { return fmt.Sprintf("storage: file %q does not exist", e.Name) }

// ModeledBackend serves reads for a manifest's files against an analytic
// Device, optionally through a page cache. It is the sim-mode storage
// stack: no bytes move, only (virtual) time passes.
type ModeledBackend struct {
	manifest *dataset.Manifest
	device   *Device
	cache    *PageCache // nil = no caching (cold-cache experiments)
	// pool, when attached, makes reads carry synthetic pooled payloads of
	// the modeled size so sim and chaos epochs exercise the full buffer
	// ownership machinery (leak audits would be vacuous on payloadless
	// Data).
	pool *mempool.Pool
}

// SetBufferPool attaches a pool; subsequent reads return pooled synthetic
// payloads (deterministic bytes derived from the file name).
func (b *ModeledBackend) SetBufferPool(p *mempool.Pool) { b.pool = p }

// fillSynthetic writes a cheap deterministic pattern derived from name, so
// pooled sim reads have verifiable content despite carrying no real bytes.
func fillSynthetic(buf []byte, name string) {
	var h byte
	for i := 0; i < len(name); i++ {
		h = h*31 + name[i]
	}
	for i := range buf {
		buf[i] = h + byte(i)
	}
}

// NewModeledBackend builds a backend over manifest and device. cache may be
// nil to model cold-cache behaviour (the paper's training reads are
// effectively uncached: each file is read once per epoch from a 138 GiB
// dataset with random order).
func NewModeledBackend(manifest *dataset.Manifest, device *Device, cache *PageCache) *ModeledBackend {
	return &ModeledBackend{manifest: manifest, device: device, cache: cache}
}

// ReadFile blocks for the device's modeled latency and returns a payloadless
// Data record.
func (b *ModeledBackend) ReadFile(name string) (Data, error) {
	s, ok := b.manifest.Lookup(name)
	if !ok {
		return Data{}, &NotExistError{Name: name}
	}
	if b.cache != nil && b.cache.Touch(name) {
		// Page-cache hit: memory-speed, modeled as free relative to the
		// microsecond-scale device costs.
		return b.payload(name, s.Size), nil
	}
	b.device.Read(s.Size)
	if b.cache != nil {
		b.cache.Insert(name, s.Size)
	}
	return b.payload(name, s.Size), nil
}

// payload builds the Data record, pooled when a pool is attached.
func (b *ModeledBackend) payload(name string, size int64) Data {
	if b.pool == nil {
		return Data{Name: name, Size: size}
	}
	ref := b.pool.Get(int(size))
	fillSynthetic(ref.Bytes(), name)
	return Data{Name: name, Size: size, Bytes: ref.Bytes(), Ref: ref}
}

// ReadRange implements RangeReader: the device is charged for the bytes
// actually transferred (offsets carry no cost in the analytic model).
func (b *ModeledBackend) ReadRange(name string, off, n int64) (Data, error) {
	s, ok := b.manifest.Lookup(name)
	if !ok {
		return Data{}, &NotExistError{Name: name}
	}
	if off < 0 || n < 0 {
		return Data{}, fmt.Errorf("storage: negative range (%d, %d)", off, n)
	}
	if off >= s.Size {
		return Data{Name: name, Size: 0}, nil
	}
	if off+n > s.Size {
		n = s.Size - off
	}
	if b.cache != nil && b.cache.Touch(name) {
		return Data{Name: name, Size: n}, nil
	}
	b.device.Read(n)
	return Data{Name: name, Size: n}, nil
}

// Size reports the manifest size for name.
func (b *ModeledBackend) Size(name string) (int64, error) {
	s, ok := b.manifest.Lookup(name)
	if !ok {
		return 0, &NotExistError{Name: name}
	}
	return s.Size, nil
}

// Device exposes the underlying device (for stats).
func (b *ModeledBackend) Device() *Device { return b.device }

// DirBackend serves reads from a real directory tree. File names use
// forward slashes relative to the root, matching dataset.FromDir.
type DirBackend struct {
	root string
	pool *mempool.Pool
}

// NewDirBackend returns a backend rooted at dir.
func NewDirBackend(dir string) *DirBackend { return &DirBackend{root: dir} }

// SetBufferPool attaches a pool; subsequent whole-file reads land in pooled
// buffers instead of fresh os.ReadFile allocations.
func (b *DirBackend) SetBufferPool(p *mempool.Pool) { b.pool = p }

// ReadFile reads the file from disk. With a pool attached the payload is
// read directly into a pooled buffer sized from the file's metadata.
func (b *DirBackend) ReadFile(name string) (Data, error) {
	path := filepath.Join(b.root, filepath.FromSlash(name))
	if b.pool != nil {
		return readFilePooled(b.pool, name, path)
	}
	bytes, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Data{}, &NotExistError{Name: name}
		}
		return Data{}, err
	}
	return Data{Name: name, Size: int64(len(bytes)), Bytes: bytes}, nil
}

// readFilePooled reads path into a pool buffer sized by fstat. A file that
// grows between stat and read is truncated to the stat size (training
// datasets are immutable during an epoch); one that shrinks yields an
// error. Every error path releases the lease.
func readFilePooled(pool *mempool.Pool, name, path string) (Data, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Data{}, &NotExistError{Name: name}
		}
		return Data{}, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return Data{}, err
	}
	size := info.Size()
	ref := pool.Get(int(size))
	if _, err := io.ReadFull(f, ref.Bytes()); err != nil {
		ref.Release()
		return Data{}, fmt.Errorf("storage: short read of %q: %w", name, err)
	}
	return Data{Name: name, Size: size, Bytes: ref.Bytes(), Ref: ref}, nil
}

// ReadRange implements RangeReader via pread on the underlying file.
func (b *DirBackend) ReadRange(name string, off, n int64) (Data, error) {
	if off < 0 || n < 0 {
		return Data{}, fmt.Errorf("storage: negative range (%d, %d)", off, n)
	}
	path := filepath.Join(b.root, filepath.FromSlash(name))
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Data{}, &NotExistError{Name: name}
		}
		return Data{}, err
	}
	defer f.Close()
	buf := make([]byte, n)
	read, err := f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return Data{}, err
	}
	return Data{Name: name, Size: int64(read), Bytes: buf[:read]}, nil
}

// Size stats the file.
func (b *DirBackend) Size(name string) (int64, error) {
	path := filepath.Join(b.root, filepath.FromSlash(name))
	info, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, &NotExistError{Name: name}
		}
		return 0, err
	}
	return info.Size(), nil
}
