package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/dsrhaslab/prisma-go/internal/dataset"
)

// Data is the result of reading a file through a Backend. Modeled backends
// carry no payload (Bytes is nil); real backends return the file contents.
type Data struct {
	Name  string
	Size  int64
	Bytes []byte
}

// Backend serves whole-file reads, blocking the calling thread for the
// modeled or actual I/O duration. Implementations must be safe for
// concurrent use from threads of the same conc.Env.
type Backend interface {
	// ReadFile reads name in full.
	ReadFile(name string) (Data, error)
	// Size reports the file size from metadata, without data transfer.
	Size(name string) (int64, error)
}

// RangeReader is the optional byte-range extension of Backend, needed by
// packed record formats (internal/recordio) that read slices of large
// shard files rather than whole small files.
type RangeReader interface {
	// ReadRange reads n bytes of name starting at off. Reads past the end
	// of the file are truncated (Data.Size reports the bytes actually
	// read); off beyond EOF yields an empty Data.
	ReadRange(name string, off, n int64) (Data, error)
}

// NotExistError reports a read of an unknown file.
type NotExistError struct{ Name string }

func (e *NotExistError) Error() string { return fmt.Sprintf("storage: file %q does not exist", e.Name) }

// ModeledBackend serves reads for a manifest's files against an analytic
// Device, optionally through a page cache. It is the sim-mode storage
// stack: no bytes move, only (virtual) time passes.
type ModeledBackend struct {
	manifest *dataset.Manifest
	device   *Device
	cache    *PageCache // nil = no caching (cold-cache experiments)
}

// NewModeledBackend builds a backend over manifest and device. cache may be
// nil to model cold-cache behaviour (the paper's training reads are
// effectively uncached: each file is read once per epoch from a 138 GiB
// dataset with random order).
func NewModeledBackend(manifest *dataset.Manifest, device *Device, cache *PageCache) *ModeledBackend {
	return &ModeledBackend{manifest: manifest, device: device, cache: cache}
}

// ReadFile blocks for the device's modeled latency and returns a payloadless
// Data record.
func (b *ModeledBackend) ReadFile(name string) (Data, error) {
	s, ok := b.manifest.Lookup(name)
	if !ok {
		return Data{}, &NotExistError{Name: name}
	}
	if b.cache != nil && b.cache.Touch(name) {
		// Page-cache hit: memory-speed, modeled as free relative to the
		// microsecond-scale device costs.
		return Data{Name: name, Size: s.Size}, nil
	}
	b.device.Read(s.Size)
	if b.cache != nil {
		b.cache.Insert(name, s.Size)
	}
	return Data{Name: name, Size: s.Size}, nil
}

// ReadRange implements RangeReader: the device is charged for the bytes
// actually transferred (offsets carry no cost in the analytic model).
func (b *ModeledBackend) ReadRange(name string, off, n int64) (Data, error) {
	s, ok := b.manifest.Lookup(name)
	if !ok {
		return Data{}, &NotExistError{Name: name}
	}
	if off < 0 || n < 0 {
		return Data{}, fmt.Errorf("storage: negative range (%d, %d)", off, n)
	}
	if off >= s.Size {
		return Data{Name: name, Size: 0}, nil
	}
	if off+n > s.Size {
		n = s.Size - off
	}
	if b.cache != nil && b.cache.Touch(name) {
		return Data{Name: name, Size: n}, nil
	}
	b.device.Read(n)
	return Data{Name: name, Size: n}, nil
}

// Size reports the manifest size for name.
func (b *ModeledBackend) Size(name string) (int64, error) {
	s, ok := b.manifest.Lookup(name)
	if !ok {
		return 0, &NotExistError{Name: name}
	}
	return s.Size, nil
}

// Device exposes the underlying device (for stats).
func (b *ModeledBackend) Device() *Device { return b.device }

// DirBackend serves reads from a real directory tree. File names use
// forward slashes relative to the root, matching dataset.FromDir.
type DirBackend struct {
	root string
}

// NewDirBackend returns a backend rooted at dir.
func NewDirBackend(dir string) *DirBackend { return &DirBackend{root: dir} }

// ReadFile reads the file from disk.
func (b *DirBackend) ReadFile(name string) (Data, error) {
	path := filepath.Join(b.root, filepath.FromSlash(name))
	bytes, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Data{}, &NotExistError{Name: name}
		}
		return Data{}, err
	}
	return Data{Name: name, Size: int64(len(bytes)), Bytes: bytes}, nil
}

// ReadRange implements RangeReader via pread on the underlying file.
func (b *DirBackend) ReadRange(name string, off, n int64) (Data, error) {
	if off < 0 || n < 0 {
		return Data{}, fmt.Errorf("storage: negative range (%d, %d)", off, n)
	}
	path := filepath.Join(b.root, filepath.FromSlash(name))
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return Data{}, &NotExistError{Name: name}
		}
		return Data{}, err
	}
	defer f.Close()
	buf := make([]byte, n)
	read, err := f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return Data{}, err
	}
	return Data{Name: name, Size: int64(read), Bytes: buf[:read]}, nil
}

// Size stats the file.
func (b *DirBackend) Size(name string) (int64, error) {
	path := filepath.Join(b.root, filepath.FromSlash(name))
	info, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, &NotExistError{Name: name}
		}
		return 0, err
	}
	return info.Size(), nil
}
