package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
)

// conformContent is the shared fixture payload for the range-conformance
// suite: 1000 distinct-ish bytes so slicing errors show up as mismatches.
func conformContent() []byte {
	buf := make([]byte, 1000)
	for i := range buf {
		buf[i] = byte(i*7 + i>>4)
	}
	return buf
}

// rangeAndBatch is the combined extension surface the conformance suite
// exercises.
type rangeAndBatch interface {
	RangeReader
	BatchRangeReader
}

// conformRange runs the shared ReadRange/ReadRangeBatch conformance
// assertions against one backend holding conformContent under name "f".
// hasBytes is false for the modeled backend (sizes only).
func conformRange(t *testing.T, label string, b rangeAndBatch, hasBytes bool) {
	t.Helper()
	content := conformContent()
	check := func(what string, d Data, off, n int64) {
		t.Helper()
		if d.Size != n {
			t.Fatalf("%s: %s: size %d, want %d", label, what, d.Size, n)
		}
		if hasBytes && n > 0 && !bytes.Equal(d.Bytes, content[off:off+n]) {
			t.Fatalf("%s: %s: payload mismatch", label, what)
		}
	}

	d, err := b.ReadRange("f", 0, 1000)
	if err != nil {
		t.Fatalf("%s: full range: %v", label, err)
	}
	check("full range", d, 0, 1000)
	d.Release()

	// Truncated at EOF.
	d, err = b.ReadRange("f", 800, 1000)
	if err != nil {
		t.Fatalf("%s: truncated range: %v", label, err)
	}
	check("truncated range", d, 800, 200)
	d.Release()

	// Past EOF: empty, not an error.
	d, err = b.ReadRange("f", 2000, 5)
	if err != nil || d.Size != 0 {
		t.Fatalf("%s: past-EOF range = %+v, %v; want empty, nil", label, d, err)
	}
	d.Release()

	if _, err := b.ReadRange("f", -1, 10); err == nil {
		t.Fatalf("%s: negative offset accepted", label)
	}
	if _, err := b.ReadRange("f", 0, -1); err == nil {
		t.Fatalf("%s: negative length accepted", label)
	}
	if _, err := b.ReadRange("ghost", 0, 10); err == nil {
		t.Fatalf("%s: missing name accepted", label)
	}

	// Vectored read: per-range semantics must match ReadRange exactly,
	// including the clamps, and the results append after the caller's
	// scratch prefix.
	scratch := []Data{{Name: "sentinel"}}
	ranges := []Range{{Off: 0, N: 100}, {Off: 500, N: 250}, {Off: 900, N: 500}, {Off: 1500, N: 10}}
	res, err := b.ReadRangeBatch("f", ranges, scratch)
	if err != nil {
		t.Fatalf("%s: batch: %v", label, err)
	}
	if len(res) != 5 || res[0].Name != "sentinel" {
		t.Fatalf("%s: batch returned %d results (prefix %q), want 5 with sentinel prefix", label, len(res), res[0].Name)
	}
	wantSizes := []int64{100, 250, 100, 0}
	for i, want := range wantSizes {
		check("batch segment", res[i+1], ranges[i].Off, want)
	}
	for _, d := range res[1:] {
		d.Release()
	}

	// A negative range fails the whole batch and returns out at its
	// original length with no views appended.
	res, err = b.ReadRangeBatch("f", []Range{{Off: 0, N: 10}, {Off: 5, N: -1}}, scratch[:1])
	if err == nil {
		t.Fatalf("%s: negative batch range accepted", label)
	}
	if len(res) != 1 {
		t.Fatalf("%s: failed batch returned %d results, want the original 1", label, len(res))
	}
	if _, err := b.ReadRangeBatch("ghost", []Range{{Off: 0, N: 10}}, nil); err == nil {
		t.Fatalf("%s: batch on missing name accepted", label)
	}
}

// TestRangeConformance runs the shared range/batch contract over every
// backend implementing it — the suite that keeps the Mem/Dir/Modeled
// semantics (clamp at EOF, empty past EOF, fail on negatives) identical,
// so chain wrappers can rely on one behavior.
func TestRangeConformance(t *testing.T) {
	t.Run("mem", func(t *testing.T) {
		mem := NewMemBackend()
		mem.Add("f", conformContent())
		pool := mempool.New(mempool.Config{Debug: true})
		mem.SetBufferPool(pool)
		conformRange(t, "mem", mem, true)
		if n := pool.Outstanding(); n != 0 {
			t.Fatalf("mem: %d pooled refs leaked", n)
		}
	})
	t.Run("dir", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "f"), conformContent(), 0o644); err != nil {
			t.Fatal(err)
		}
		b := NewDirBackend(dir)
		pool := mempool.New(mempool.Config{Debug: true})
		b.SetBufferPool(pool)
		conformRange(t, "dir", b, true)
		if n := pool.Outstanding(); n != 0 {
			t.Fatalf("dir: %d pooled refs leaked", n)
		}
	})
	t.Run("modeled", func(t *testing.T) {
		runSim(t, func(env conc.Env) {
			dev, err := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e9, Channels: 4})
			if err != nil {
				t.Fatal(err)
			}
			man := dataset.MustNew([]dataset.Sample{{Name: "f", Size: 1000}})
			conformRange(t, "modeled", NewModeledBackend(man, dev, nil), false)
		})
	})
}

// TestModeledBatchChargesOneRequest proves the economics the coalescer is
// built on: a K-range vectored read against a modeled device pays the base
// latency once plus the total transfer, where K separate ReadRange calls
// pay the base latency K times.
func TestModeledBatchChargesOneRequest(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, err := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e6, Channels: 1})
		if err != nil {
			t.Fatal(err)
		}
		man := dataset.MustNew([]dataset.Sample{{Name: "f", Size: 4000}})
		b := NewModeledBackend(man, dev, nil)

		start := env.Now()
		res, err := b.ReadRangeBatch("f", []Range{{0, 1000}, {1000, 1000}, {2000, 1000}, {3000, 1000}}, nil)
		if err != nil || len(res) != 4 {
			t.Fatalf("batch = %d results, %v", len(res), err)
		}
		// 1ms base + 4000B / 1MBps = 1ms + 4ms, charged once.
		if got := env.Now() - start; got != 5*time.Millisecond {
			t.Fatalf("vectored read took %v, want 5ms (one request)", got)
		}
		if dev.Stats().Reads != 1 {
			t.Fatalf("device reads = %d, want 1", dev.Stats().Reads)
		}

		start = env.Now()
		for off := int64(0); off < 4000; off += 1000 {
			if _, err := b.ReadRange("f", off, 1000); err != nil {
				t.Fatal(err)
			}
		}
		// Per-sample pays the base latency per request: 4 x (1ms + 1ms).
		if got := env.Now() - start; got != 8*time.Millisecond {
			t.Fatalf("per-sample reads took %v, want 8ms (four requests)", got)
		}
	})
}

// TestBatchParallelismHint proves the modeled backend surfaces its device's
// channel count as the coalescer's parallelism clamp.
func TestBatchParallelismHint(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, err := NewDevice(env, P4600())
		if err != nil {
			t.Fatal(err)
		}
		man := dataset.MustNew([]dataset.Sample{{Name: "f", Size: 10}})
		b := NewModeledBackend(man, dev, nil)
		if got, want := b.BatchParallelism(), P4600().Channels; got != want {
			t.Fatalf("BatchParallelism = %d, want %d", got, want)
		}
	})
}
