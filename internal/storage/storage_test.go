package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/sim"
)

// runSim executes body as a simulated process and fails the test on error.
func runSim(t *testing.T, body func(env conc.Env)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("test-body", func(*sim.Process) { body(env) })
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestDeviceSpecValidate(t *testing.T) {
	good := P4600()
	if err := good.Validate(); err != nil {
		t.Fatalf("P4600 invalid: %v", err)
	}
	bad := []DeviceSpec{
		{BaseLatency: -1, BytesPerSecond: 1, Channels: 1},
		{BytesPerSecond: 0, Channels: 1},
		{BytesPerSecond: 1, Channels: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestServiceTime(t *testing.T) {
	spec := DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e6, Channels: 1}
	if got := spec.ServiceTime(0); got != time.Millisecond {
		t.Fatalf("ServiceTime(0) = %v, want 1ms", got)
	}
	// 1 MB at 1 MB/s = 1s transfer.
	if got := spec.ServiceTime(1e6); got != time.Second+time.Millisecond {
		t.Fatalf("ServiceTime(1MB) = %v, want 1.001s", got)
	}
	if got := spec.ServiceTime(-5); got != time.Millisecond {
		t.Fatalf("negative size not clamped: %v", got)
	}
}

func TestDeviceSingleRead(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, err := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e6, Channels: 1})
		if err != nil {
			t.Fatal(err)
		}
		start := env.Now()
		d := dev.Read(1000) // 1ms base + 1ms transfer
		if d != 2*time.Millisecond {
			t.Errorf("Read latency = %v, want 2ms", d)
		}
		if env.Now()-start != 2*time.Millisecond {
			t.Errorf("clock advanced %v, want 2ms", env.Now()-start)
		}
		st := dev.Stats()
		if st.Reads != 1 || st.Bytes != 1000 || st.QueueTime != 0 {
			t.Errorf("stats = %+v", st)
		}
	})
}

func TestDeviceSerializesBeyondChannels(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	var makespan time.Duration
	s.Spawn("driver", func(*sim.Process) {
		dev, _ := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e12, Channels: 2})
		wg := env.NewWaitGroup()
		wg.Add(6)
		for i := 0; i < 6; i++ {
			env.Go(fmt.Sprintf("r%d", i), func() {
				defer wg.Done()
				dev.Read(0)
			})
		}
		wg.Wait()
		makespan = env.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 6 requests of 1ms each over 2 channels = 3ms makespan.
	if makespan != 3*time.Millisecond {
		t.Fatalf("makespan = %v, want 3ms", makespan)
	}
}

func TestDeviceQueueTimeAccounting(t *testing.T) {
	s := sim.New()
	env := conc.NewSimEnv(s)
	var st DeviceStats
	s.Spawn("driver", func(*sim.Process) {
		dev, _ := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e12, Channels: 1})
		wg := env.NewWaitGroup()
		wg.Add(2)
		for i := 0; i < 2; i++ {
			env.Go("r", func() {
				defer wg.Done()
				dev.Read(0)
			})
		}
		wg.Wait()
		st = dev.Stats()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if st.BusyTime != 2*time.Millisecond {
		t.Fatalf("BusyTime = %v, want 2ms", st.BusyTime)
	}
	if st.QueueTime != time.Millisecond {
		t.Fatalf("QueueTime = %v, want 1ms (second request waits out the first)", st.QueueTime)
	}
}

// Property: with c channels and n equal requests, makespan = ceil(n/c) * svc.
func TestDeviceMakespanProperty(t *testing.T) {
	prop := func(nRaw, cRaw uint8) bool {
		n := int(nRaw)%20 + 1
		c := int(cRaw)%4 + 1
		s := sim.New()
		env := conc.NewSimEnv(s)
		ok := true
		s.Spawn("driver", func(*sim.Process) {
			dev, _ := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e12, Channels: c})
			wg := env.NewWaitGroup()
			wg.Add(n)
			for i := 0; i < n; i++ {
				env.Go("r", func() {
					defer wg.Done()
					dev.Read(0)
				})
			}
			wg.Wait()
			want := time.Duration((n+c-1)/c) * time.Millisecond
			if env.Now() != want {
				ok = false
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func manifest3() *dataset.Manifest {
	return dataset.MustNew([]dataset.Sample{
		{Name: "a", Size: 1000},
		{Name: "b", Size: 2000},
		{Name: "c", Size: 3000},
	})
}

func TestModeledBackendReadsTakeModeledTime(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e6, Channels: 1})
		b := NewModeledBackend(manifest3(), dev, nil)
		start := env.Now()
		d, err := b.ReadFile("b")
		if err != nil {
			t.Fatal(err)
		}
		if d.Size != 2000 || d.Bytes != nil {
			t.Errorf("Data = %+v, want size 2000, nil bytes", d)
		}
		if got := env.Now() - start; got != 3*time.Millisecond { // 1ms + 2000B/1MBps
			t.Errorf("elapsed %v, want 3ms", got)
		}
	})
}

func TestModeledBackendMissingFile(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, P4600())
		b := NewModeledBackend(manifest3(), dev, nil)
		_, err := b.ReadFile("nope")
		var ne *NotExistError
		if !errors.As(err, &ne) || ne.Name != "nope" {
			t.Errorf("err = %v, want NotExistError{nope}", err)
		}
		if _, err := b.Size("nope"); err == nil {
			t.Error("Size of missing file succeeded")
		}
	})
}

func TestModeledBackendSizeIsFree(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, P4600())
		b := NewModeledBackend(manifest3(), dev, nil)
		start := env.Now()
		n, err := b.Size("c")
		if err != nil || n != 3000 {
			t.Fatalf("Size = %d, %v", n, err)
		}
		if env.Now() != start {
			t.Error("Size consumed simulated time")
		}
	})
}

func TestModeledBackendWithCache(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e12, Channels: 1})
		cache := NewPageCache(env, 10_000)
		b := NewModeledBackend(manifest3(), dev, cache)
		_, _ = b.ReadFile("a") // miss: device read
		t0 := env.Now()
		_, _ = b.ReadFile("a") // hit: free
		if env.Now() != t0 {
			t.Error("cache hit consumed device time")
		}
		if dev.Stats().Reads != 1 {
			t.Errorf("device reads = %d, want 1", dev.Stats().Reads)
		}
		if cache.HitRate() != 0.5 {
			t.Errorf("hit rate = %v, want 0.5", cache.HitRate())
		}
	})
}

func TestPageCacheLRUEviction(t *testing.T) {
	runSim(t, func(env conc.Env) {
		c := NewPageCache(env, 300)
		c.Insert("a", 100)
		c.Insert("b", 100)
		c.Insert("c", 100)
		c.Touch("a") // refresh a; b is now LRU
		c.Insert("d", 100)
		if c.Touch("b") {
			t.Error("b survived eviction, want LRU eviction")
		}
		if !c.Touch("a") || !c.Touch("c") || !c.Touch("d") {
			t.Error("unexpected eviction of a, c, or d")
		}
		if c.Used() != 300 || c.Len() != 3 {
			t.Errorf("Used=%d Len=%d, want 300/3", c.Used(), c.Len())
		}
	})
}

func TestPageCacheOversizeRejected(t *testing.T) {
	runSim(t, func(env conc.Env) {
		c := NewPageCache(env, 100)
		c.Insert("huge", 1000)
		if c.Len() != 0 {
			t.Error("oversize file was cached")
		}
		c.Insert("neg", -5)
		if c.Len() != 0 {
			t.Error("negative-size file was cached")
		}
	})
}

func TestPageCacheReinsertRefreshes(t *testing.T) {
	runSim(t, func(env conc.Env) {
		c := NewPageCache(env, 200)
		c.Insert("a", 100)
		c.Insert("b", 100)
		c.Insert("a", 100) // refresh, not duplicate
		if c.Used() != 200 {
			t.Errorf("Used = %d, want 200", c.Used())
		}
		c.Insert("c", 100) // evicts b (LRU), not a
		if c.Touch("b") {
			t.Error("b should have been evicted")
		}
		if !c.Touch("a") {
			t.Error("a should have been refreshed by reinsert")
		}
	})
}

func TestPageCacheCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero capacity")
		}
	}()
	NewPageCache(conc.NewReal(), 0)
}

// Property: cache usage never exceeds capacity.
func TestPageCacheCapacityProperty(t *testing.T) {
	prop := func(sizes []uint16, capRaw uint16) bool {
		capacity := int64(capRaw)%5000 + 1
		env := conc.NewReal()
		c := NewPageCache(env, capacity)
		for i, sz := range sizes {
			c.Insert(fmt.Sprintf("f%d", i), int64(sz)%2000)
			if c.Used() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDirBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "train")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	content := []byte("hello prisma")
	if err := os.WriteFile(filepath.Join(sub, "x.jpg"), content, 0o644); err != nil {
		t.Fatal(err)
	}
	b := NewDirBackend(dir)
	d, err := b.ReadFile("train/x.jpg")
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Bytes) != string(content) || d.Size != int64(len(content)) {
		t.Fatalf("Data = %+v", d)
	}
	n, err := b.Size("train/x.jpg")
	if err != nil || n != int64(len(content)) {
		t.Fatalf("Size = %d, %v", n, err)
	}
}

func TestDirBackendMissing(t *testing.T) {
	b := NewDirBackend(t.TempDir())
	_, err := b.ReadFile("ghost")
	var ne *NotExistError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v, want NotExistError", err)
	}
	if _, err := b.Size("ghost"); !errors.As(err, &ne) {
		t.Fatalf("Size err = %v, want NotExistError", err)
	}
}

func TestFaultyBackendFailEvery(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, P4600())
		f := NewFaultyBackend(env, NewModeledBackend(manifest3(), dev, nil))
		f.FailEvery(2)
		var fails int
		for i := 0; i < 6; i++ {
			if _, err := f.ReadFile("a"); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("unexpected error type: %v", err)
				}
				fails++
			}
		}
		if fails != 3 || f.Injected() != 3 {
			t.Errorf("fails = %d injected = %d, want 3/3", fails, f.Injected())
		}
	})
}

func TestFaultyBackendFailName(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, P4600())
		f := NewFaultyBackend(env, NewModeledBackend(manifest3(), dev, nil))
		f.FailName("b")
		if _, err := f.ReadFile("a"); err != nil {
			t.Fatalf("healthy read failed: %v", err)
		}
		if _, err := f.ReadFile("b"); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed read err = %v, want ErrInjected", err)
		}
	})
}

func TestModeledReadRange(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e6, Channels: 1})
		b := NewModeledBackend(manifest3(), dev, nil)
		start := env.Now()
		d, err := b.ReadRange("c", 1000, 1000) // 1ms base + 1ms transfer
		if err != nil || d.Size != 1000 {
			t.Fatalf("ReadRange = %+v, %v", d, err)
		}
		if env.Now()-start != 2*time.Millisecond {
			t.Fatalf("elapsed %v, want 2ms", env.Now()-start)
		}
		// Truncated at EOF.
		d, err = b.ReadRange("a", 800, 1000)
		if err != nil || d.Size != 200 {
			t.Fatalf("truncated ReadRange = %+v, %v", d, err)
		}
		// Past EOF.
		d, err = b.ReadRange("a", 5000, 10)
		if err != nil || d.Size != 0 {
			t.Fatalf("past-EOF ReadRange = %+v, %v", d, err)
		}
		if _, err := b.ReadRange("a", -1, 10); err == nil {
			t.Fatal("negative offset accepted")
		}
		if _, err := b.ReadRange("ghost", 0, 10); err == nil {
			t.Fatal("missing file accepted")
		}
	})
}

func TestDirReadRange(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x"), []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	b := NewDirBackend(dir)
	d, err := b.ReadRange("x", 3, 4)
	if err != nil || string(d.Bytes) != "3456" || d.Size != 4 {
		t.Fatalf("ReadRange = %+v, %v", d, err)
	}
	// Truncated at EOF.
	d, err = b.ReadRange("x", 8, 10)
	if err != nil || string(d.Bytes) != "89" {
		t.Fatalf("truncated = %+v, %v", d, err)
	}
	if _, err := b.ReadRange("x", -1, 1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := b.ReadRange("ghost", 0, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPresetSpecsSane(t *testing.T) {
	for _, spec := range []DeviceSpec{P4600(), SATAHDD(), NFSShare()} {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	// The SSD should service a typical ImageNet file far faster than the HDD.
	ssd := P4600().ServiceTime(113_000)
	hdd := SATAHDD().ServiceTime(113_000)
	if ssd*10 > hdd {
		t.Errorf("SSD (%v) not clearly faster than HDD (%v)", ssd, hdd)
	}
}
