package storage

import (
	"container/list"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
)

// PageCache is a byte-budgeted LRU cache of whole files, modeling the OS
// page cache in sim mode. It stores no payloads, only residency.
type PageCache struct {
	mu       conc.Mutex
	capacity int64
	used     int64
	order    *list.List // front = most recently used; values are *cacheEntry
	entries  map[string]*list.Element

	hits   *metrics.Counter
	misses *metrics.Counter
}

type cacheEntry struct {
	name string
	size int64
}

// NewPageCache returns a cache with the given byte capacity (must be > 0).
func NewPageCache(env conc.Env, capacity int64) *PageCache {
	if capacity <= 0 {
		panic("storage: page cache capacity must be positive")
	}
	return &PageCache{
		mu:       env.NewMutex(),
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
		hits:     metrics.NewCounter(env),
		misses:   metrics.NewCounter(env),
	}
}

// Touch reports whether name is resident, refreshing its recency on a hit.
func (c *PageCache) Touch(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[name]
	if !ok {
		c.misses.Inc()
		return false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return true
}

// Insert records name as resident, evicting least-recently-used files as
// needed. Files larger than the capacity are not cached.
func (c *PageCache) Insert(name string, size int64) {
	if size > c.capacity || size < 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[name]; ok {
		c.order.MoveToFront(el)
		return
	}
	for c.used+size > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		victim := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, victim.name)
		c.used -= victim.size
	}
	c.entries[name] = c.order.PushFront(&cacheEntry{name: name, size: size})
	c.used += size
}

// Used reports resident bytes.
func (c *PageCache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Len reports resident file count.
func (c *PageCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// HitRate reports hits / (hits + misses), or zero before any lookups.
func (c *PageCache) HitRate() float64 {
	h, m := c.hits.Value(), c.misses.Value()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Stats reports raw hit and miss counts.
func (c *PageCache) Stats() (hits, misses int64) {
	return c.hits.Value(), c.misses.Value()
}
