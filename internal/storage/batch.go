package storage

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/dsrhaslab/prisma-go/internal/mempool"
)

// Range is one byte window of a named file, as used by vectored reads.
type Range struct {
	Off int64
	N   int64
}

// BatchRangeReader is the vectored extension of RangeReader: it serves
// several byte ranges of one file in a single backend operation, which is
// what lets the plan-aware read coalescer amortize per-request cost
// (seek/latency on real devices, BaseLatency on the modeled one) across
// K FIFO-adjacent samples packed into the same recordio shard.
//
// Per-range semantics match ReadRange exactly: ranges past EOF truncate,
// a range starting beyond EOF yields an empty Data, and a negative offset
// or length fails the whole batch. One Data is appended to out (a
// caller-owned scratch slice, may be nil) per range, in range order.
//
// Pooled implementations serve every range out of ONE pooled region
// buffer: each returned Data subslices that region and carries its own
// reference to the shared mempool.Ref (the Get's reference plus one
// Retain per additional view), so each view releases independently under
// the usual single-ownership hand-off and the region returns to the pool
// when the last view is dropped. On error, no references leak and out is
// returned at its original length.
type BatchRangeReader interface {
	ReadRangeBatch(name string, ranges []Range, out []Data) ([]Data, error)
}

// BatchLocator maps a sample name to the physical container (recordio
// shard) a batched read must address and the stored length of its record.
// The prefetcher uses it to group FIFO-adjacent plan entries that live in
// the same container without knowing anything about the pack format.
type BatchLocator interface {
	Locate(name string) (container string, storedBytes int64, ok bool)
}

// SampleBatcher reads several samples — which must share one locator
// container — in a single vectored backend operation, appending one Data
// per name to out (caller-owned scratch) in name order. Implementations
// are single-goroutine scratch contexts: each producer thread owns one,
// so steady-state batched reads allocate nothing. Any per-sample failure
// (missing name, CRC mismatch, decode error) fails the whole batch with
// every pooled reference released; callers fall back to per-sample reads.
type SampleBatcher interface {
	ReadSampleBatch(names []string, out []Data) ([]Data, error)
}

// BatchProvider is implemented by backends that can mint per-goroutine
// SampleBatcher contexts (recordio.IndexedBackend). A backend that
// implements BatchProvider implements BatchLocator too; the prefetcher
// requires both before enabling coalescing.
type BatchProvider interface {
	BatchReader() SampleBatcher
}

// BatchParallelismHinter reports how many range segments one vectored
// request can usefully carry — the modeled device's channel count.
// Wrappers forward it inward; zero means no opinion.
type BatchParallelismHinter interface {
	BatchParallelism() int
}

// validateRanges checks every range for negative offsets or lengths,
// matching the per-range error contract of the base backends.
func validateRanges(name string, ranges []Range) error {
	for _, r := range ranges {
		if r.Off < 0 || r.N < 0 {
			return fmt.Errorf("storage: negative range (%d, %d) in batch for %s", r.Off, r.N, name)
		}
	}
	return nil
}

// clampRange applies the RangeReader truncation contract against size.
func clampRange(r Range, size int64) Range {
	if r.Off > size {
		r.Off = size
	}
	if r.Off+r.N > size {
		r.N = size - r.Off
	}
	return r
}

// ReadRangeBatch implements BatchRangeReader: one pooled region buffer
// (or one flat allocation, unpooled) holds every requested window; the
// returned Datas are zero-copy views into it sharing one Ref.
func (b *MemBackend) ReadRangeBatch(name string, ranges []Range, out []Data) ([]Data, error) {
	b.mu.Lock()
	src, ok := b.files[name]
	b.mu.Unlock()
	if !ok {
		return out, &NotExistError{Name: name}
	}
	if err := validateRanges(name, ranges); err != nil {
		return out, err
	}
	size := int64(len(src))
	var total int64
	for _, r := range ranges {
		total += clampRange(r, size).N
	}
	region, ref := b.batchRegion(int(total))
	var pos int64
	for i, r := range ranges {
		r = clampRange(r, size)
		window := region[pos : pos+r.N]
		copy(window, src[r.Off:r.Off+r.N])
		pos += r.N
		if ref != nil && i > 0 {
			ref.Retain()
		}
		out = append(out, Data{Name: name, Size: r.N, Bytes: window, Ref: ref})
	}
	return out, nil
}

// batchRegion allocates the shared region for a batch: pooled when a pool
// is attached (the Get's single reference is shared across the views via
// Retain), a plain allocation otherwise.
func (b *MemBackend) batchRegion(n int) ([]byte, *mempool.Ref) {
	if b.pool != nil {
		r := b.pool.Get(n)
		return r.Bytes(), r
	}
	return make([]byte, n), nil
}

// ReadRangeBatch implements BatchRangeReader over one opened file: every
// window is pread into a single region buffer, so the per-open and
// per-request costs are paid once per batch instead of once per sample.
func (b *DirBackend) ReadRangeBatch(name string, ranges []Range, out []Data) ([]Data, error) {
	if err := validateRanges(name, ranges); err != nil {
		return out, err
	}
	path := filepath.Join(b.root, filepath.FromSlash(name))
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return out, &NotExistError{Name: name}
		}
		return out, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return out, err
	}
	size := info.Size()
	var total int64
	for _, r := range ranges {
		total += clampRange(r, size).N
	}
	region, ref := b.batchRegion(int(total))
	base := len(out)
	var pos int64
	for i, r := range ranges {
		r = clampRange(r, size)
		window := region[pos : pos+r.N]
		if _, rerr := io.ReadFull(io.NewSectionReader(f, r.Off, r.N), window); rerr != nil {
			// Already-appended views each own one reference; the failing
			// segment owns none. With no views out yet the Get's single
			// reference is still pending on ref itself.
			if i == 0 && ref != nil {
				ref.Release()
			}
			for j := base; j < len(out); j++ {
				out[j].Release()
			}
			return out[:base], fmt.Errorf("storage: short range read of %q: %w", name, rerr)
		}
		pos += r.N
		if ref != nil && i > 0 {
			ref.Retain()
		}
		out = append(out, Data{Name: name, Size: r.N, Bytes: window, Ref: ref})
	}
	return out, nil
}

// batchRegion mirrors MemBackend.batchRegion for the directory backend.
func (b *DirBackend) batchRegion(n int) ([]byte, *mempool.Ref) {
	if b.pool != nil {
		r := b.pool.Get(n)
		return r.Bytes(), r
	}
	return make([]byte, n), nil
}

// ReadRangeBatch implements BatchRangeReader against the analytic device:
// the batch is ONE device request charged for the total transferred bytes,
// so BaseLatency is paid once for K samples instead of K times — the
// mechanism behind the coalescer's op reduction. Returned Datas are
// payloadless (sizes only), matching ReadRange.
func (b *ModeledBackend) ReadRangeBatch(name string, ranges []Range, out []Data) ([]Data, error) {
	s, ok := b.manifest.Lookup(name)
	if !ok {
		return out, &NotExistError{Name: name}
	}
	if err := validateRanges(name, ranges); err != nil {
		return out, err
	}
	var total int64
	for _, r := range ranges {
		total += clampRange(r, s.Size).N
	}
	if !(b.cache != nil && b.cache.Touch(name)) {
		b.device.Read(total)
	}
	for _, r := range ranges {
		r = clampRange(r, s.Size)
		out = append(out, Data{Name: name, Size: r.N})
	}
	return out, nil
}

// BatchParallelism implements BatchParallelismHinter: a vectored request
// wider than the device's channel count stops amortizing and starts
// queueing, so the coalescer caps runs at the channel count.
func (b *ModeledBackend) BatchParallelism() int { return b.device.Spec().Channels }
