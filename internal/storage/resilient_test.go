package storage

import (
	"errors"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
)

// testResilience is a fast, deterministic policy for unit tests.
func testResilience() ResilienceConfig {
	return ResilienceConfig{
		MaxAttempts:      3,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
		BackoffFactor:    2,
		JitterSeed:       7,
		BreakerThreshold: 4,
		BreakerCooldown:  20 * time.Millisecond,
		HalfOpenProbes:   1,
	}
}

// newResilientOverFaulty builds modeled -> faulty -> resilient over the
// three-file manifest.
func newResilientOverFaulty(t *testing.T, env conc.Env, cfg ResilienceConfig) (*ResilientBackend, *FaultyBackend) {
	t.Helper()
	dev, err := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e9, Channels: 4})
	if err != nil {
		t.Fatal(err)
	}
	faulty := NewFaultyBackend(env, NewModeledBackend(manifest3(), dev, nil))
	res, err := NewResilientBackend(env, faulty, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, faulty
}

func TestResilienceConfigValidate(t *testing.T) {
	if err := DefaultResilienceConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []ResilienceConfig{
		{MaxAttempts: 0, BackoffFactor: 2, MaxBackoff: 1},
		{MaxAttempts: 1, BackoffFactor: 0.5, MaxBackoff: 1},
		{MaxAttempts: 1, BackoffFactor: 2, BaseBackoff: 2, MaxBackoff: 1},
		{MaxAttempts: 1, BackoffFactor: 2, MaxBackoff: 1, ReadDeadline: -1},
		{MaxAttempts: 1, BackoffFactor: 2, MaxBackoff: 1, BreakerThreshold: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestResilientRetriesTransientFault(t *testing.T) {
	runSim(t, func(env conc.Env) {
		res, faulty := newResilientOverFaulty(t, env, testResilience())
		faulty.FailNTimes("a", 2) // heals within the 3-attempt budget
		d, err := res.ReadFile("a")
		if err != nil || d.Size != 1000 {
			t.Fatalf("ReadFile = %+v, %v, want healed success", d, err)
		}
		st := res.ResilienceStats()
		if st.Retries != 2 || st.Failures != 2 || st.Attempts != 3 || st.Exhausted != 0 {
			t.Errorf("stats = %+v, want 2 retries over 3 attempts", st)
		}
		if st.State != "closed" || st.Degraded {
			t.Errorf("breaker = %s degraded=%v, want closed", st.State, st.Degraded)
		}
	})
}

func TestResilientExhaustsAttempts(t *testing.T) {
	runSim(t, func(env conc.Env) {
		res, faulty := newResilientOverFaulty(t, env, testResilience())
		faulty.FailName("b") // persistent: outlives the attempt budget
		_, err := res.ReadFile("b")
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("err = %v, want wrapped ErrInjected", err)
		}
		st := res.ResilienceStats()
		if st.Exhausted != 1 || st.Attempts != 3 {
			t.Errorf("stats = %+v, want 1 exhausted read of 3 attempts", st)
		}
	})
}

func TestResilientDoesNotRetryMissingFiles(t *testing.T) {
	runSim(t, func(env conc.Env) {
		res, _ := newResilientOverFaulty(t, env, testResilience())
		_, err := res.ReadFile("ghost")
		var ne *NotExistError
		if !errors.As(err, &ne) {
			t.Fatalf("err = %v, want NotExistError", err)
		}
		st := res.ResilienceStats()
		if st.Attempts != 1 || st.Retries != 0 || st.Failures != 0 {
			t.Errorf("stats = %+v, want a single clean attempt", st)
		}
	})
}

func TestResilientBreakerOpensAndFastFails(t *testing.T) {
	runSim(t, func(env conc.Env) {
		res, faulty := newResilientOverFaulty(t, env, testResilience())
		faulty.FailName("a")
		// 4 consecutive failed attempts trip the breaker: the first read
		// burns 3, the second read's first attempt is the 4th.
		_, _ = res.ReadFile("a")
		_, err := res.ReadFile("a")
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("second read err = %v, want breaker fast-fail", err)
		}
		if res.State() != BreakerOpen {
			t.Fatalf("state = %v, want open", res.State())
		}
		// While open, reads shed without touching the backend.
		before := faulty.Injected()
		if _, err := res.ReadFile("b"); !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("open-breaker read err = %v, want ErrCircuitOpen", err)
		}
		if faulty.Injected() != before {
			t.Error("fast-failed read reached the backend")
		}
		st := res.ResilienceStats()
		if st.BreakerOpens != 1 || st.FastFails < 1 || !st.Degraded {
			t.Errorf("stats = %+v, want 1 open and fast fails", st)
		}
	})
}

func TestResilientBreakerHalfOpenRecovery(t *testing.T) {
	runSim(t, func(env conc.Env) {
		cfg := testResilience()
		res, faulty := newResilientOverFaulty(t, env, cfg)
		faulty.FailName("a")
		_, _ = res.ReadFile("a")
		_, _ = res.ReadFile("a") // trips the breaker
		if res.State() != BreakerOpen {
			t.Fatalf("state = %v, want open", res.State())
		}
		faulty.Heal()
		env.Sleep(cfg.BreakerCooldown)
		// First read after the cooldown is the half-open probe; it succeeds
		// and closes the breaker.
		if d, err := res.ReadFile("b"); err != nil || d.Size != 2000 {
			t.Fatalf("probe read = %+v, %v, want success", d, err)
		}
		if res.State() != BreakerClosed {
			t.Fatalf("state = %v, want closed after probe", res.State())
		}
		durations := res.StateDurations()
		if durations[int(BreakerOpen)] < cfg.BreakerCooldown {
			t.Errorf("open-state time = %v, want >= cooldown", durations[int(BreakerOpen)])
		}
	})
}

func TestResilientBreakerReopensOnFailedProbe(t *testing.T) {
	runSim(t, func(env conc.Env) {
		cfg := testResilience()
		cfg.MaxAttempts = 1 // make each read one attempt for precise counting
		res, faulty := newResilientOverFaulty(t, env, cfg)
		faulty.FailName("a")
		for i := 0; i < cfg.BreakerThreshold; i++ {
			_, _ = res.ReadFile("a")
		}
		if res.State() != BreakerOpen {
			t.Fatalf("state = %v, want open", res.State())
		}
		env.Sleep(cfg.BreakerCooldown)
		if _, err := res.ReadFile("a"); !errors.Is(err, ErrInjected) {
			t.Fatalf("probe err = %v, want injected failure", err)
		}
		if res.State() != BreakerOpen {
			t.Fatalf("state = %v, want reopened", res.State())
		}
		if st := res.ResilienceStats(); st.BreakerOpens != 2 {
			t.Errorf("BreakerOpens = %d, want 2", st.BreakerOpens)
		}
	})
}

func TestResilientReadDeadline(t *testing.T) {
	runSim(t, func(env conc.Env) {
		cfg := testResilience()
		cfg.MaxAttempts = 2
		cfg.ReadDeadline = 5 * time.Millisecond
		res, faulty := newResilientOverFaulty(t, env, cfg)
		faulty.SetLatency(50 * time.Millisecond) // every attempt blows the deadline
		_, err := res.ReadFile("a")
		if !errors.Is(err, ErrReadDeadline) {
			t.Fatalf("err = %v, want ErrReadDeadline", err)
		}
		st := res.ResilienceStats()
		if st.DeadlineExceeded != 2 {
			t.Errorf("DeadlineExceeded = %d, want 2", st.DeadlineExceeded)
		}
		// Heal the latency: the same file now reads within the deadline.
		faulty.SetLatency(0)
		if d, err := res.ReadFile("a"); err != nil || d.Size != 1000 {
			t.Fatalf("healed read = %+v, %v", d, err)
		}
	})
}

func TestResilientBackoffDeterministic(t *testing.T) {
	// Two sim runs with the same jitter seed must retry at identical
	// virtual instants.
	timeline := func() []time.Duration {
		var out []time.Duration
		runSim(t, func(env conc.Env) {
			res, faulty := newResilientOverFaulty(t, env, testResilience())
			faulty.FailName("a")
			start := env.Now()
			_, _ = res.ReadFile("a")
			out = append(out, env.Now()-start)
			faulty.FailNTimes("b", 2)
			start = env.Now()
			_, _ = res.ReadFile("b")
			out = append(out, env.Now()-start)
		})
		return out
	}
	first, second := timeline(), timeline()
	if len(first) != len(second) {
		t.Fatalf("timeline lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestResilientRangeReaderPassthrough(t *testing.T) {
	runSim(t, func(env conc.Env) {
		res, faulty := newResilientOverFaulty(t, env, testResilience())
		faulty.FailNTimes("c", 1)
		d, err := res.ReadRange("c", 100, 200)
		if err != nil || d.Size != 200 {
			t.Fatalf("ReadRange = %+v, %v, want retried success", d, err)
		}
		if st := res.ResilienceStats(); st.Retries != 1 {
			t.Errorf("Retries = %d, want 1", st.Retries)
		}
		if sz, err := res.Size("c"); err != nil || sz != 3000 {
			t.Errorf("Size = %d, %v", sz, err)
		}
	})
}

// TestResilientBatchRetries proves the retry machinery covers vectored
// reads: an injected transient failure on the batch is retried and the
// whole vector delivered, with the attempt counted like any other read.
func TestResilientBatchRetries(t *testing.T) {
	runSim(t, func(env conc.Env) {
		res, faulty := newResilientOverFaulty(t, env, testResilience())
		faulty.FailNTimes("c", 1)
		out, err := res.ReadRangeBatch("c", []Range{{Off: 0, N: 100}, {Off: 100, N: 200}}, nil)
		if err != nil {
			t.Fatalf("batched read after transient fault: %v", err)
		}
		if len(out) != 2 || out[0].Size != 100 || out[1].Size != 200 {
			t.Fatalf("batch = %+v, want sizes 100 and 200", out)
		}
		st := res.ResilienceStats()
		if st.Retries != 1 {
			t.Errorf("Retries = %d, want 1", st.Retries)
		}
		if st.UnsupportedOps != 0 {
			t.Errorf("UnsupportedOps = %d, want 0 (batch is supported)", st.UnsupportedOps)
		}
	})
}

// rangelessBackend hides the RangeReader extension of its inner backend.
type rangelessBackend struct{ inner Backend }

func (r rangelessBackend) ReadFile(name string) (Data, error) { return r.inner.ReadFile(name) }
func (r rangelessBackend) Size(name string) (int64, error)    { return r.inner.Size(name) }

func TestResilientRangeReaderUnsupported(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, P4600())
		inner := rangelessBackend{inner: NewModeledBackend(manifest3(), dev, nil)}
		res, err := NewResilientBackend(env, inner, testResilience())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.ReadRange("a", 0, 10); err == nil {
			t.Fatal("ReadRange over rangeless backend succeeded")
		}
		// The refusal must be visible in stats, not a silent error path:
		// operators watching a range-heavy workload against a rangeless
		// chain need to see the unsupported ops counted.
		if st := res.ResilienceStats(); st.UnsupportedOps != 1 {
			t.Fatalf("UnsupportedOps = %d after refused range, want 1", st.UnsupportedOps)
		}
		_, detail, err := res.ReadRangeDetailed("a", 0, 10)
		if err == nil {
			t.Fatal("ReadRangeDetailed over rangeless backend succeeded")
		}
		if !detail.Unsupported {
			t.Fatal("ReadDetail.Unsupported not set on the refused range read")
		}
		if detail.Attempts != 0 {
			t.Fatalf("refused range recorded %d attempts, want 0 (the backend was never touched)", detail.Attempts)
		}
		if _, err := res.ReadRangeBatch("a", []Range{{Off: 0, N: 10}}, nil); err == nil {
			t.Fatal("ReadRangeBatch over batchless backend succeeded")
		}
		if st := res.ResilienceStats(); st.UnsupportedOps != 3 {
			t.Fatalf("UnsupportedOps = %d after three refusals, want 3", st.UnsupportedOps)
		}
		// Supported reads must not move the counter.
		if _, err := res.ReadFile("a"); err != nil {
			t.Fatal(err)
		}
		if st := res.ResilienceStats(); st.UnsupportedOps != 3 {
			t.Fatalf("UnsupportedOps = %d after a whole-file read, want 3 still", st.UnsupportedOps)
		}
	})
}

func TestFaultyBackendTransientHeals(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, P4600())
		f := NewFaultyBackend(env, NewModeledBackend(manifest3(), dev, nil))
		f.FailNTimes("a", 2)
		for i := 0; i < 2; i++ {
			if _, err := f.ReadFile("a"); !errors.Is(err, ErrInjected) {
				t.Fatalf("attempt %d err = %v, want injected", i, err)
			}
		}
		if _, err := f.ReadFile("a"); err != nil {
			t.Fatalf("healed read failed: %v", err)
		}
		if f.Injected() != 2 {
			t.Errorf("Injected = %d, want 2", f.Injected())
		}
	})
}

func TestFaultyBackendFailNextBlackout(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, P4600())
		f := NewFaultyBackend(env, NewModeledBackend(manifest3(), dev, nil))
		f.FailNext(3)
		names := []string{"a", "b", "c", "a"}
		var fails int
		for _, n := range names {
			if _, err := f.ReadFile(n); err != nil {
				fails++
			}
		}
		if fails != 3 {
			t.Errorf("fails = %d, want blackout of 3", fails)
		}
	})
}

func TestFaultyBackendInjectedLatency(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, DeviceSpec{BaseLatency: time.Millisecond, BytesPerSecond: 1e9, Channels: 1})
		f := NewFaultyBackend(env, NewModeledBackend(manifest3(), dev, nil))
		f.SetLatency(10 * time.Millisecond)
		start := env.Now()
		if _, err := f.ReadFile("a"); err != nil {
			t.Fatal(err)
		}
		if got := env.Now() - start; got < 11*time.Millisecond {
			t.Errorf("read took %v, want >= 11ms with injected latency", got)
		}
		if f.Delayed() != 1 {
			t.Errorf("Delayed = %d, want 1", f.Delayed())
		}
		f.Heal()
		start = env.Now()
		if _, err := f.ReadFile("a"); err != nil {
			t.Fatal(err)
		}
		if got := env.Now() - start; got > 2*time.Millisecond {
			t.Errorf("healed read took %v, want device time only", got)
		}
	})
}

func TestFaultyBackendReadRange(t *testing.T) {
	runSim(t, func(env conc.Env) {
		dev, _ := NewDevice(env, P4600())
		f := NewFaultyBackend(env, NewModeledBackend(manifest3(), dev, nil))
		// Passthrough keeps the RangeReader interface usable.
		var rr RangeReader = f
		d, err := rr.ReadRange("b", 500, 1000)
		if err != nil || d.Size != 1000 {
			t.Fatalf("ReadRange = %+v, %v", d, err)
		}
		// Faults apply to range reads too.
		f.FailName("b")
		if _, err := rr.ReadRange("b", 0, 10); !errors.Is(err, ErrInjected) {
			t.Fatalf("armed range read err = %v, want ErrInjected", err)
		}
		// A rangeless inner backend yields an error, not a panic.
		g := NewFaultyBackend(env, rangelessBackend{inner: NewModeledBackend(manifest3(), dev, nil)})
		if _, err := g.ReadRange("a", 0, 1); err == nil {
			t.Fatal("ReadRange over rangeless backend succeeded")
		}
	})
}
