package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/obs"
)

// ErrCircuitOpen reports a read shed by the circuit breaker without touching
// the wrapped backend.
var ErrCircuitOpen = errors.New("storage: circuit breaker open")

// ErrReadDeadline reports a read abandoned because it exceeded the
// per-attempt deadline. The underlying read may still complete; its result
// is discarded.
var ErrReadDeadline = errors.New("storage: read deadline exceeded")

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: healthy, all reads pass through.
	BreakerClosed BreakerState = iota
	// BreakerOpen: shedding load; reads fail fast with ErrCircuitOpen until
	// the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown elapsed; one probe read at a time is
	// admitted to test whether the backend healed.
	BreakerHalfOpen
)

// String renders the state for logs and monitoring snapshots.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ResilienceConfig parameterizes a ResilientBackend. Zero fields take the
// DefaultResilienceConfig values, except BreakerThreshold and ReadDeadline
// where zero keeps the feature disabled only via the explicit constructors
// (see withDefaults).
type ResilienceConfig struct {
	// MaxAttempts is the total number of tries per read, including the
	// first (1 = no retry).
	MaxAttempts int
	// BaseBackoff is the sleep before the first retry; each further retry
	// multiplies it by BackoffFactor, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff.
	MaxBackoff time.Duration
	// BackoffFactor is the exponential growth factor (>= 1).
	BackoffFactor float64
	// JitterSeed seeds the deterministic jitter source: each backoff is
	// scaled by a factor in [0.5, 1.0) drawn from this stream, so sim-mode
	// runs with the same seed reproduce byte-identical schedules.
	JitterSeed int64
	// ReadDeadline bounds one attempt; 0 disables deadlines. An attempt
	// exceeding it fails with ErrReadDeadline and counts as a backend
	// failure.
	ReadDeadline time.Duration
	// BreakerThreshold is the number of consecutive failed attempts that
	// opens the circuit breaker; 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before admitting
	// half-open probes.
	BreakerCooldown time.Duration
	// HalfOpenProbes is the number of consecutive successful probes that
	// close the breaker again.
	HalfOpenProbes int
}

// DefaultResilienceConfig returns the production defaults: three attempts
// with 2ms..100ms exponential backoff, breaker at eight consecutive
// failures, 250ms cooldown, no per-read deadline.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		MaxAttempts:      3,
		BaseBackoff:      2 * time.Millisecond,
		MaxBackoff:       100 * time.Millisecond,
		BackoffFactor:    2,
		JitterSeed:       1,
		BreakerThreshold: 8,
		BreakerCooldown:  250 * time.Millisecond,
		HalfOpenProbes:   1,
	}
}

// withDefaults fills zero values that have no meaningful zero semantics.
// BreakerThreshold and ReadDeadline keep their zeros (disabled).
func (c ResilienceConfig) withDefaults() ResilienceConfig {
	d := DefaultResilienceConfig()
	if c.MaxAttempts == 0 {
		c.MaxAttempts = d.MaxAttempts
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = d.BaseBackoff
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = d.MaxBackoff
	}
	if c.BackoffFactor == 0 {
		c.BackoffFactor = d.BackoffFactor
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = d.JitterSeed
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = d.BreakerCooldown
	}
	if c.HalfOpenProbes == 0 {
		c.HalfOpenProbes = d.HalfOpenProbes
	}
	return c
}

// Validate reports whether the configuration is self-consistent.
func (c ResilienceConfig) Validate() error {
	if c.MaxAttempts < 1 {
		return fmt.Errorf("storage: MaxAttempts %d < 1", c.MaxAttempts)
	}
	if c.BaseBackoff < 0 || c.MaxBackoff < c.BaseBackoff {
		return fmt.Errorf("storage: bad backoff bounds [%v, %v]", c.BaseBackoff, c.MaxBackoff)
	}
	if c.BackoffFactor < 1 {
		return fmt.Errorf("storage: BackoffFactor %v < 1", c.BackoffFactor)
	}
	if c.ReadDeadline < 0 {
		return fmt.Errorf("storage: negative ReadDeadline")
	}
	if c.BreakerThreshold < 0 {
		return fmt.Errorf("storage: negative BreakerThreshold")
	}
	if c.BreakerThreshold > 0 && (c.BreakerCooldown <= 0 || c.HalfOpenProbes < 1) {
		return fmt.Errorf("storage: breaker needs positive cooldown and probes")
	}
	return nil
}

// ResilienceStats is the telemetry snapshot a ResilientBackend exports
// through the data plane's monitoring interface.
type ResilienceStats struct {
	Attempts         int64  // backend attempts issued (incl. retries)
	Retries          int64  // attempts beyond the first per read
	Failures         int64  // attempts that returned a retryable error
	Exhausted        int64  // reads that failed after all attempts
	DeadlineExceeded int64  // attempts abandoned at the read deadline
	FastFails        int64  // reads shed while the breaker was open
	BreakerOpens     int64  // closed/half-open -> open transitions
	UnsupportedOps   int64  // range/batch reads refused: inner lacks the extension
	State            string // current breaker state
	Degraded         bool   // breaker not closed: autotuner backs off
}

// ResilienceReporter is implemented by backends exposing resilience
// telemetry (ResilientBackend); the data-plane stage folds it into its
// monitoring snapshot so the control plane can observe breaker state and
// retry pressure.
type ResilienceReporter interface {
	ResilienceStats() ResilienceStats
}

// ReadDetail is the per-read resilience annotation a DetailedReader returns
// alongside the data: how many attempts the read cost and the breaker state
// observed at completion. The tracing subsystem attaches it to storage-read
// spans.
type ReadDetail struct {
	// Attempts is the number of backend attempts issued for this read
	// (0 when the breaker shed the read without touching the backend).
	Attempts int
	// Breaker is the breaker state at completion ("" when no breaker is
	// configured).
	Breaker string
	// Unsupported reports a range/batch read refused because the wrapped
	// backend lacks the extension — a chain-composition mistake, distinct
	// from a device fault (no attempt was issued, the breaker is untouched).
	Unsupported bool
}

// DetailedReader is implemented by backends that can report per-read
// resilience detail (ResilientBackend).
type DetailedReader interface {
	ReadFileDetailed(name string) (Data, ReadDetail, error)
}

// DetailedCtxReader is DetailedReader with trace-context forwarding: the
// sampled read path uses it so per-read resilience detail and inner-layer
// (cache/tier) spans land on the same trace.
type DetailedCtxReader interface {
	ReadFileDetailedCtx(name string, ctx obs.Ctx) (Data, ReadDetail, error)
}

// ResilientBackend wraps a Backend (and its RangeReader extension, when
// present) with per-read deadlines, bounded retries with exponential
// backoff and deterministic jitter, and a circuit breaker that sheds load
// after consecutive failures and probes before recovering. All waiting goes
// through the conc.Env, so sim-mode runs stay virtual-time and reproducible.
//
// Reads of files that do not exist (NotExistError) are treated as permanent
// conditions: they are returned immediately, are never retried, and count
// as breaker successes (the backend answered correctly).
type ResilientBackend struct {
	env   conc.Env
	inner Backend
	rr    RangeReader      // inner's range extension, nil when unsupported
	brr   BatchRangeReader // inner's vectored extension, nil when unsupported
	cfg   ResilienceConfig

	mu          conc.Mutex
	rng         *rand.Rand
	state       BreakerState
	consecFails int
	openedAt    time.Duration
	probing     bool // a half-open probe is in flight
	probeOK     int  // consecutive successful probes

	attempts     *metrics.Counter
	retries      *metrics.Counter
	failures     *metrics.Counter
	exhausted    *metrics.Counter
	deadlineHits *metrics.Counter
	fastFails    *metrics.Counter
	opens        *metrics.Counter
	unsupported  *metrics.Counter     // range reads refused for lack of an inner extension
	stateTime    *metrics.TimeInState // time spent in each BreakerState
}

// NewResilientBackend wraps inner with the given resilience configuration.
func NewResilientBackend(env conc.Env, inner Backend, cfg ResilienceConfig) (*ResilientBackend, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rr, _ := inner.(RangeReader)
	brr, _ := inner.(BatchRangeReader)
	b := &ResilientBackend{
		env:          env,
		inner:        inner,
		rr:           rr,
		brr:          brr,
		cfg:          cfg,
		mu:           env.NewMutex(),
		rng:          rand.New(rand.NewSource(cfg.JitterSeed)),
		attempts:     metrics.NewCounter(env),
		retries:      metrics.NewCounter(env),
		failures:     metrics.NewCounter(env),
		exhausted:    metrics.NewCounter(env),
		deadlineHits: metrics.NewCounter(env),
		fastFails:    metrics.NewCounter(env),
		opens:        metrics.NewCounter(env),
		unsupported:  metrics.NewCounter(env),
		stateTime:    metrics.NewTimeInState(env, int(BreakerClosed)),
	}
	return b, nil
}

// Inner exposes the wrapped backend.
func (b *ResilientBackend) Inner() Backend { return b.inner }

// SetBufferPool forwards the pool to the wrapped backend (the resilience
// layer allocates no payloads of its own).
func (b *ResilientBackend) SetBufferPool(p *mempool.Pool) {
	if pa, ok := b.inner.(PoolAttacher); ok {
		pa.SetBufferPool(p)
	}
}

// Config returns the effective (default-filled) configuration.
func (b *ResilientBackend) Config() ResilienceConfig { return b.cfg }

// ReadFile reads name through the retry/breaker machinery.
func (b *ResilientBackend) ReadFile(name string) (Data, error) {
	d, _, err := b.do(func() (Data, error) { return b.inner.ReadFile(name) })
	return d, err
}

// ReadFileDetailed implements DetailedReader: ReadFile plus the per-read
// attempt count and breaker state, for span annotation.
func (b *ResilientBackend) ReadFileDetailed(name string) (Data, ReadDetail, error) {
	return b.do(func() (Data, error) { return b.inner.ReadFile(name) })
}

// ReadFileCtx implements CtxReader: ReadFile with the trace context
// forwarded inward, so the shared cache's and tier's spans attach to the
// sampled read's trace.
func (b *ResilientBackend) ReadFileCtx(name string, ctx obs.Ctx) (Data, error) {
	d, _, err := b.do(func() (Data, error) { return ReadFileCtx(b.inner, name, ctx) })
	return d, err
}

// ReadFileDetailedCtx implements DetailedCtxReader: ReadFileDetailed with
// trace-context forwarding.
func (b *ResilientBackend) ReadFileDetailedCtx(name string, ctx obs.Ctx) (Data, ReadDetail, error) {
	return b.do(func() (Data, error) { return ReadFileCtx(b.inner, name, ctx) })
}

// ReadRange implements RangeReader when the wrapped backend supports byte
// ranges.
func (b *ResilientBackend) ReadRange(name string, off, n int64) (Data, error) {
	d, _, err := b.ReadRangeDetailed(name, off, n)
	return d, err
}

// ReadRangeDetailed is ReadRange plus the per-read resilience annotation.
// An unsupported inner backend is a chain-composition mistake, not a
// device fault: it is counted (ResilienceStats.UnsupportedOps) and flagged
// on the detail so it surfaces in stats instead of vanishing into a bare
// error string.
func (b *ResilientBackend) ReadRangeDetailed(name string, off, n int64) (Data, ReadDetail, error) {
	if b.rr == nil {
		detail, err := b.rangeUnsupported("range")
		return Data{}, detail, err
	}
	return b.do(func() (Data, error) { return b.rr.ReadRange(name, off, n) })
}

// ReadRangeBatch implements BatchRangeReader through the full resilience
// policy (breaker admission, per-attempt deadline, bounded retries). Batch
// implementations release every reference on failure, so a retried batch
// never duplicates references.
func (b *ResilientBackend) ReadRangeBatch(name string, ranges []Range, out []Data) ([]Data, error) {
	if b.brr == nil {
		_, err := b.rangeUnsupported("batched range")
		return out, err
	}
	if b.cfg.ReadDeadline <= 0 {
		res, _, err := b.doBatch(func() ([]Data, error) { return b.brr.ReadRangeBatch(name, ranges, out) })
		if err != nil {
			return out, err
		}
		return res, nil
	}
	// With a per-attempt deadline armed, an expired attempt keeps running
	// on its own thread and appends into whatever slice it was given; each
	// attempt therefore gets a fresh slice so an orphan can never race the
	// caller's scratch.
	res, _, err := b.doBatch(func() ([]Data, error) { return b.brr.ReadRangeBatch(name, ranges, nil) })
	if err != nil {
		return out, err
	}
	return append(out, res...), nil
}

// rangeUnsupported records a range request the wrapped backend cannot
// serve: counted, flagged on the detail, breaker untouched (no attempt was
// issued — the chain is miswired, the device is not at fault).
func (b *ResilientBackend) rangeUnsupported(kind string) (ReadDetail, error) {
	b.unsupported.Inc()
	d := b.detail(0)
	d.Unsupported = true
	return d, fmt.Errorf("storage: resilient: %T does not support %s reads", b.inner, kind)
}

// Size delegates to the wrapped backend. Metadata lookups are cheap and
// carry no payload; they bypass retries and the breaker, matching
// FaultyBackend's healthy-metadata assumption.
func (b *ResilientBackend) Size(name string) (int64, error) { return b.inner.Size(name) }

// do runs op under the full resilience policy: breaker admission, per-
// attempt deadline, bounded retries with jittered exponential backoff. The
// returned detail reports the attempts actually issued and the breaker
// state at completion.
func (b *ResilientBackend) do(op func() (Data, error)) (Data, ReadDetail, error) {
	return doResilient(b, op, func(d *Data) { d.Release() })
}

// doBatch is do for vectored reads: the same policy applied to a batch op,
// with every pooled view released when an expired attempt's result arrives
// after the caller has moved on.
func (b *ResilientBackend) doBatch(op func() ([]Data, error)) ([]Data, ReadDetail, error) {
	return doResilient(b, op, func(ds *[]Data) {
		for i := range *ds {
			(*ds)[i].Release()
		}
	})
}

// doResilient is the shared retry/breaker loop behind do and doBatch;
// release drops an orphaned result's pooled references.
func doResilient[T any](b *ResilientBackend, op func() (T, error), release func(*T)) (T, ReadDetail, error) {
	var zero T
	var lastErr error
	issued := 0
	for attempt := 1; ; attempt++ {
		if err := b.admit(); err != nil {
			b.fastFails.Inc()
			if lastErr != nil {
				return zero, b.detail(issued), fmt.Errorf("%w (last failure: %v)", ErrCircuitOpen, lastErr)
			}
			return zero, b.detail(issued), err
		}
		b.attempts.Inc()
		issued++
		d, err := attemptOnceResilient(b, op, release)
		if err == nil {
			b.onSuccess()
			return d, b.detail(issued), nil
		}
		var ne *NotExistError
		if errors.As(err, &ne) {
			// A missing file is a correct answer from a healthy backend,
			// not a device fault: no retry, no breaker penalty.
			b.onSuccess()
			return zero, b.detail(issued), err
		}
		b.failures.Inc()
		if errors.Is(err, ErrReadDeadline) {
			b.deadlineHits.Inc()
		}
		b.onFailure()
		lastErr = err
		if attempt >= b.cfg.MaxAttempts {
			b.exhausted.Inc()
			return zero, b.detail(issued), fmt.Errorf("storage: resilient: %d attempts failed: %w", attempt, err)
		}
		b.retries.Inc()
		b.env.Sleep(b.backoff(attempt))
	}
}

// detail builds the per-read annotation.
func (b *ResilientBackend) detail(issued int) ReadDetail {
	d := ReadDetail{Attempts: issued}
	if b.cfg.BreakerThreshold > 0 {
		d.Breaker = b.State().String()
	}
	return d
}

// attemptOnceResilient runs op, bounded by the configured per-attempt
// deadline. With a deadline armed, the read runs on its own thread and the
// caller waits for completion or timer expiry, whichever comes first — the
// only way to bound a blocking read under both the real and the
// virtual-time environment.
func attemptOnceResilient[T any](b *ResilientBackend, op func() (T, error), release func(*T)) (T, error) {
	if b.cfg.ReadDeadline <= 0 {
		return op()
	}
	mu := b.env.NewMutex()
	done := b.env.NewCond(mu)
	var (
		d        T
		err      error
		finished bool
		expired  bool
	)
	b.env.Go("resilient-read", func() {
		rd, rerr := op()
		mu.Lock()
		if expired {
			// The caller already returned ErrReadDeadline; nobody will ever
			// see this result, so a pooled payload must be released here or
			// its buffer leaks for the life of the process.
			mu.Unlock()
			release(&rd)
			return
		}
		d, err, finished = rd, rerr, true
		done.Broadcast()
		mu.Unlock()
	})
	b.env.Go("resilient-deadline", func() {
		b.env.Sleep(b.cfg.ReadDeadline)
		mu.Lock()
		expired = true
		done.Broadcast()
		mu.Unlock()
	})
	mu.Lock()
	defer mu.Unlock()
	for !finished && !expired {
		done.Wait()
	}
	if finished {
		return d, err
	}
	var zero T
	return zero, ErrReadDeadline
}

// backoff computes the sleep before retry number `attempt` (1-based), with
// deterministic jitter in [0.5, 1.0)× the exponential value.
func (b *ResilientBackend) backoff(attempt int) time.Duration {
	d := float64(b.cfg.BaseBackoff)
	for i := 1; i < attempt; i++ {
		d *= b.cfg.BackoffFactor
		if d >= float64(b.cfg.MaxBackoff) {
			d = float64(b.cfg.MaxBackoff)
			break
		}
	}
	b.mu.Lock()
	jitter := 0.5 + 0.5*b.rng.Float64()
	b.mu.Unlock()
	return time.Duration(d * jitter)
}

// admit applies the breaker's admission decision for one attempt.
func (b *ResilientBackend) admit() error {
	if b.cfg.BreakerThreshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.env.Now()-b.openedAt < b.cfg.BreakerCooldown {
			return ErrCircuitOpen
		}
		b.setStateLocked(BreakerHalfOpen)
		b.probing = true
		b.probeOK = 0
		return nil
	default: // BreakerHalfOpen
		if b.probing {
			return ErrCircuitOpen
		}
		b.probing = true
		return nil
	}
}

// onSuccess records a healthy attempt.
func (b *ResilientBackend) onSuccess() {
	if b.cfg.BreakerThreshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecFails = 0
	case BreakerHalfOpen:
		b.probing = false
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.setStateLocked(BreakerClosed)
			b.consecFails = 0
		}
	}
}

// onFailure records a failed attempt, opening the breaker at the threshold.
func (b *ResilientBackend) onFailure() {
	if b.cfg.BreakerThreshold <= 0 {
		return
	}
	now := b.env.Now()
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.cfg.BreakerThreshold {
			b.setStateLocked(BreakerOpen)
			b.openedAt = now
			b.opens.Inc()
		}
	case BreakerHalfOpen:
		// The probe failed: back to open for another cooldown.
		b.probing = false
		b.probeOK = 0
		b.setStateLocked(BreakerOpen)
		b.openedAt = now
		b.opens.Inc()
	}
}

// setStateLocked transitions the breaker, keeping the time-in-state tracker
// in step. Caller holds b.mu.
func (b *ResilientBackend) setStateLocked(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	b.stateTime.Set(int(s))
}

// State reports the breaker's current position.
func (b *ResilientBackend) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// StateDurations reports virtual/wall time spent in each breaker state,
// keyed by BreakerState value — the control plane's Figure-3-style view of
// degradation windows.
func (b *ResilientBackend) StateDurations() map[int]time.Duration {
	return b.stateTime.Distribution()
}

// ResilienceStats implements ResilienceReporter.
func (b *ResilientBackend) ResilienceStats() ResilienceStats {
	state := b.State()
	return ResilienceStats{
		Attempts:         b.attempts.Value(),
		Retries:          b.retries.Value(),
		Failures:         b.failures.Value(),
		Exhausted:        b.exhausted.Value(),
		DeadlineExceeded: b.deadlineHits.Value(),
		FastFails:        b.fastFails.Value(),
		BreakerOpens:     b.opens.Value(),
		UnsupportedOps:   b.unsupported.Value(),
		State:            state.String(),
		Degraded:         state != BreakerClosed,
	}
}
