package tenancy

import (
	"errors"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/obs"
	"github.com/dsrhaslab/prisma-go/internal/sim"
)

func runSim(t *testing.T, body func(env conc.Env)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("test-body", func(*sim.Process) { body(env) })
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

func TestValidation(t *testing.T) {
	runSim(t, func(env conc.Env) {
		if _, err := New(env, Config{}); err == nil {
			t.Fatal("zero capacity accepted")
		}
		m, err := New(env, Config{Capacity: 100})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(Spec{Name: ""}); err == nil {
			t.Fatal("empty tenant name accepted")
		}
		if err := m.Register(Spec{Name: DefaultTenant}); err == nil {
			t.Fatal("duplicate registration accepted")
		}
		if err := m.Register(Spec{Name: "bad", Weight: -1}); err == nil {
			t.Fatal("negative weight accepted")
		}
		if err := m.Unregister(DefaultTenant); err == nil {
			t.Fatal("default tenant unregistered")
		}
		if err := m.Unregister("ghost"); err == nil {
			t.Fatal("unknown tenant unregistered")
		}
		if err := m.SetTenant("ghost", 2, 0); err == nil {
			t.Fatal("SetTenant on unknown tenant accepted")
		}
	})
}

func TestAuthenticate(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m, _ := New(env, Config{Capacity: 100})
		if id, err := m.Authenticate("", ""); err != nil || id != DefaultTenant {
			t.Fatalf("untagged hello = %q, %v; want default", id, err)
		}
		_ = m.Register(Spec{Name: "secure", Secret: "s3cret"})
		if _, err := m.Authenticate("secure", "wrong"); err == nil {
			t.Fatal("bad secret accepted")
		}
		if id, err := m.Authenticate("secure", "s3cret"); err != nil || id != "secure" {
			t.Fatalf("good secret = %q, %v", id, err)
		}
		// Unknown tenants self-register with defaults.
		if id, err := m.Authenticate("newcomer", ""); err != nil || id != "newcomer" {
			t.Fatalf("auto-register = %q, %v", id, err)
		}
		if len(m.Stats().Tenants) != 3 {
			t.Fatalf("tenants = %d, want 3", len(m.Stats().Tenants))
		}
	})
}

// TestGreedyTenantCannotStarve is the ISSUE acceptance experiment: one
// greedy tenant (8 workers reading as fast as admitted) and one
// well-behaved tenant (steady 300 reads/s offered load) share a 1000
// reads/s gate. Max-min arbitration must keep the well-behaved tenant's
// admitted throughput within 2x of its fair share (here: at its full
// offered load, which is below the 500/s fair share) while the greedy
// tenant absorbs only the slack.
func TestGreedyTenantCannotStarve(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m, err := New(env, Config{Capacity: 1000, TickInterval: 100 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(Spec{Name: "greedy"}); err != nil {
			t.Fatal(err)
		}
		if err := m.Register(Spec{Name: "polite"}); err != nil {
			t.Fatal(err)
		}
		m.Start()
		defer m.Stop()

		const warmup, run = 2 * time.Second, 3 * time.Second
		greedyN := metrics.NewCounter(env)
		politeN := metrics.NewCounter(env)
		wg := env.NewWaitGroup()
		wg.Add(9)
		for i := 0; i < 8; i++ {
			env.Go("greedy-worker", func() {
				defer wg.Done()
				for env.Now() < warmup+run {
					if err := m.Admit("greedy"); err == nil && env.Now() >= warmup {
						greedyN.Inc()
					}
				}
			})
		}
		env.Go("polite-worker", func() {
			defer wg.Done()
			for env.Now() < warmup+run {
				if err := m.Admit("polite"); err == nil && env.Now() >= warmup {
					politeN.Inc()
				}
				env.Sleep(3333 * time.Microsecond) // ~300 reads/s offered
			}
		})
		wg.Wait()

		politeRate := float64(politeN.Value()) / run.Seconds()
		greedyRate := float64(greedyN.Value()) / run.Seconds()
		// The polite tenant's fair share is 500/s; it offers only ~300/s, and
		// the gate must admit essentially all of it (and never less than half
		// the fair share — the ISSUE's 2x bound).
		if politeRate < 250 {
			t.Fatalf("polite tenant throttled to %.0f reads/s (fair share 500, offered 300)", politeRate)
		}
		// The greedy tenant gets the slack but not the polite tenant's share.
		if greedyRate > 900 {
			t.Fatalf("greedy tenant admitted %.0f reads/s, want bounded by capacity minus polite traffic", greedyRate)
		}
		if total := politeRate + greedyRate; total > 1200 {
			t.Fatalf("total admitted %.0f reads/s exceeds 1000 capacity (+burst tolerance)", total)
		}
	})
}

// TestOverloadShedsAndRecovers drives the gate across an overload episode:
// saturated load makes over-budget admits fail fast with a typed
// retryable OverloadError (never a hang), and when load subsides the gate
// admits again.
func TestOverloadShedsAndRecovers(t *testing.T) {
	runSim(t, func(env conc.Env) {
		depth := 0 // mutable load injected into the gate (same sim process)
		m, err := New(env, Config{
			Capacity:      100,
			Burst:         10,
			MaxQueueDepth: 50,
			MaxRetryAfter: 2 * time.Second,
			Load:          func() Load { return Load{QueueDepth: depth} },
		})
		if err != nil {
			t.Fatal(err)
		}
		// Normal load: admits (blocking throttle), never sheds.
		m.Tick(100 * time.Millisecond)
		if m.Overloaded() {
			t.Fatal("overloaded at zero load")
		}
		if err := m.Admit(DefaultTenant); err != nil {
			t.Fatal(err)
		}

		// Saturate. Burst is 10: the 11th rapid-fire admit must shed.
		depth = 100
		m.Tick(100 * time.Millisecond)
		if !m.Overloaded() {
			t.Fatal("not overloaded past MaxQueueDepth")
		}
		var shed error
		for i := 0; i < 30; i++ {
			if err := m.Admit(DefaultTenant); err != nil {
				shed = err
				break
			}
		}
		if shed == nil {
			t.Fatal("over-budget tenant never shed under overload")
		}
		if !errors.Is(shed, ErrOverloaded) {
			t.Fatalf("shed error %v does not match ErrOverloaded", shed)
		}
		var oe *OverloadError
		if !errors.As(shed, &oe) {
			t.Fatalf("shed error %T is not *OverloadError", shed)
		}
		if oe.RetryAfter <= 0 || oe.RetryAfter > 2*time.Second {
			t.Fatalf("retry-after %v outside (0, MaxRetryAfter]", oe.RetryAfter)
		}
		if m.Stats().Tenants[0].Shed == 0 {
			t.Fatal("shed not counted in stats")
		}

		// Recovery: load subsides, the same tenant is admitted again.
		depth = 0
		m.Tick(100 * time.Millisecond)
		if m.Overloaded() {
			t.Fatal("still overloaded after load subsided")
		}
		if err := m.Admit(DefaultTenant); err != nil {
			t.Fatalf("admit after recovery: %v", err)
		}
	})
}

func TestDegradedScalesCapacity(t *testing.T) {
	runSim(t, func(env conc.Env) {
		degraded := false
		m, _ := New(env, Config{
			Capacity:       1000,
			DegradedFactor: 0.5,
			Load:           func() Load { return Load{Degraded: degraded} },
		})
		m.Tick(100 * time.Millisecond)
		if got := m.Stats().Capacity; got != 1000 {
			t.Fatalf("healthy capacity = %v, want 1000", got)
		}
		degraded = true
		m.Tick(100 * time.Millisecond)
		if got := m.Stats().Capacity; got != 500 {
			t.Fatalf("degraded capacity = %v, want 500", got)
		}
		degraded = false
		m.Tick(100 * time.Millisecond)
		if got := m.Stats().Capacity; got != 1000 {
			t.Fatalf("restored capacity = %v, want 1000", got)
		}
	})
}

// TestByteBudgetDebt: bytes are charged after the read; the debt throttles
// the next admit in normal mode and sheds it under overload.
func TestByteBudgetDebt(t *testing.T) {
	runSim(t, func(env conc.Env) {
		over := 0
		m, _ := New(env, Config{
			Capacity:      1000,
			MaxQueueDepth: 1,
			Load:          func() Load { return Load{QueueDepth: over} },
		})
		_ = m.Register(Spec{Name: "metered", BytesPerSecond: 1000})
		if err := m.Admit("metered"); err != nil {
			t.Fatal(err)
		}
		m.ObserveRead("metered", 3000, nil) // 1s of budget + 2s of debt
		st := m.Stats()
		for _, ts := range st.Tenants {
			if ts.Name == "metered" && !ts.InDebt {
				t.Fatal("metered tenant not in debt after 3000-byte read")
			}
		}
		// Normal mode: the debt throttles (blocks ~2s), never errors.
		start := env.Now()
		if err := m.Admit("metered"); err != nil {
			t.Fatal(err)
		}
		if waited := env.Now() - start; waited < 1500*time.Millisecond || waited > 3*time.Second {
			t.Fatalf("debt throttle waited %v, want ≈2s", waited)
		}
		// Overload + fresh debt: shed with a debt-derived retry hint.
		m.ObserveRead("metered", 2000, nil)
		over = 1
		m.Tick(100 * time.Millisecond)
		err := m.Admit("metered")
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("in-debt admit under overload = %v, want ErrOverloaded", err)
		}
		// Errors count against the tenant but do not charge bytes.
		m.ObserveRead("metered", 0, errors.New("boom"))
		for _, ts := range m.Stats().Tenants {
			if ts.Name == "metered" && ts.Errors != 1 {
				t.Fatalf("errors = %d, want 1", ts.Errors)
			}
		}
	})
}

func TestUnknownTenantFallsBackToDefault(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m, _ := New(env, Config{Capacity: 100})
		if err := m.Admit("never-registered"); err != nil {
			t.Fatal(err)
		}
		for _, ts := range m.Stats().Tenants {
			if ts.Name == DefaultTenant && ts.Admitted != 1 {
				t.Fatalf("default tenant admitted = %d, want 1 (fallback)", ts.Admitted)
			}
		}
	})
}

// TestSLONoisyNeighborLifecycle is the ISSUE's deterministic noisy-neighbor
// sim: a victim tenant with a latency objective is driven WARN -> BREACH ->
// OK purely by observed latencies (the noisy neighbor's contention), and the
// gate's actuation is checked at each step — a breach boosts the victim's
// arbitration weight by SLOBoostFactor, recovery restores the base weight,
// and every transition is surfaced through OnSLOAction for audit.
func TestSLONoisyNeighborLifecycle(t *testing.T) {
	runSim(t, func(env conc.Env) {
		var actions []SLOAction
		m, err := New(env, Config{
			Capacity:       1000,
			TickInterval:   100 * time.Millisecond,
			SLOBoostFactor: 3,
			OnSLOAction:    func(a SLOAction) { actions = append(actions, a) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(Spec{Name: "noisy"}); err != nil {
			t.Fatal(err)
		}
		err = m.Register(Spec{Name: "victim", SLO: &obs.SLOConfig{
			Quantile:    0.9,
			Threshold:   time.Millisecond,
			Window:      12 * time.Second,
			ShortWindow: time.Second,
			WarnBurn:    1,
			BreachBurn:  4,
		}})
		if err != nil {
			t.Fatal(err)
		}
		observe := func(n int, lat time.Duration) {
			for i := 0; i < n; i++ {
				m.ObserveLatency("victim", lat, false)
			}
		}
		victim := func() TenantStats {
			for _, ts := range m.Stats().Tenants {
				if ts.Name == "victim" {
					return ts
				}
			}
			t.Fatal("victim missing from snapshot")
			return TenantStats{}
		}

		// Healthy bucket: everything under threshold, no actions.
		observe(100, 100*time.Microsecond)
		m.Tick(100 * time.Millisecond)
		if len(actions) != 0 {
			t.Fatalf("healthy traffic produced actions: %+v", actions)
		}

		// The noisy neighbor starts inflating tail latency: 20 bad reads
		// over the 200-read short window burn exactly the 10% budget =>
		// WARN, observed but not actuated.
		env.Sleep(time.Second)
		observe(80, 100*time.Microsecond)
		observe(20, 5*time.Millisecond)
		m.Tick(100 * time.Millisecond)
		if len(actions) != 1 || actions[0].Rule != "slo-warn" {
			t.Fatalf("actions = %+v, want [slo-warn]", actions)
		}
		if actions[0].WeightAfter != actions[0].WeightBefore {
			t.Fatalf("warn actuated a weight change: %+v", actions[0])
		}

		// Full-bucket contention => BREACH: the gate boosts the victim's
		// arbitration weight so max-min squeezes the noisy neighbor.
		env.Sleep(time.Second)
		observe(100, 20*time.Millisecond)
		m.Tick(100 * time.Millisecond)
		if len(actions) != 2 || actions[1].Rule != "slo-breach" {
			t.Fatalf("actions = %+v, want slo-breach appended", actions)
		}
		if actions[1].WeightBefore != 1 || actions[1].WeightAfter != 3 {
			t.Fatalf("breach weights = %v -> %v, want 1 -> 3", actions[1].WeightBefore, actions[1].WeightAfter)
		}
		vs := victim()
		if !vs.SLOBoosted || vs.SLO == nil || vs.SLO.State != obs.SLOBreach {
			t.Fatalf("victim snapshot = boosted=%v slo=%+v, want boosted breach", vs.SLOBoosted, vs.SLO)
		}

		// Contention ends: two healthy buckets empty the short window and
		// the gate hands the boost back.
		for i := 0; i < 2; i++ {
			env.Sleep(time.Second)
			observe(100, 100*time.Microsecond)
		}
		m.Tick(100 * time.Millisecond)
		if len(actions) != 3 || actions[2].Rule != "slo-recovered" {
			t.Fatalf("actions = %+v, want slo-recovered appended", actions)
		}
		if actions[2].WeightBefore != 3 || actions[2].WeightAfter != 1 {
			t.Fatalf("recovery weights = %v -> %v, want 3 -> 1", actions[2].WeightBefore, actions[2].WeightAfter)
		}
		vs = victim()
		if vs.SLOBoosted || vs.SLO.State != obs.SLOOK {
			t.Fatalf("victim snapshot after recovery = boosted=%v state=%q, want unboosted ok", vs.SLOBoosted, vs.SLO.State)
		}
	})
}

// TestSLOShedObservations checks the gate's shed accounting reaches the
// tracker: shed reads are bad reads against the shed budget even though no
// latency was measured.
func TestSLOShedObservations(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m, err := New(env, Config{Capacity: 1000, TickInterval: 100 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		err = m.Register(Spec{Name: "a", SLO: &obs.SLOConfig{
			Quantile: 0.9, Threshold: time.Millisecond,
			Window: 12 * time.Second, ShortWindow: time.Second,
		}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			m.ObserveLatency("a", 0, true)
		}
		st, ok := m.SLO().Status("a")
		if !ok {
			t.Fatal("no SLO status")
		}
		if st.Shed != 10 || st.Bad != 10 || st.Good != 0 {
			t.Fatalf("status = %+v, want 10 shed = 10 bad", st)
		}
		// Shed reads must not pollute the latency histogram.
		for _, ts := range m.Stats().Tenants {
			if ts.Name == "a" && ts.Latency.Count != 0 {
				t.Fatalf("latency count = %d, want 0 (shed reads skip the histogram)", ts.Latency.Count)
			}
		}
	})
}

// TestSetSLOClearSLO checks runtime objective management: SetSLO on a live
// tenant starts tracking, ClearSLO stops it and drops any active boost.
func TestSetSLOClearSLO(t *testing.T) {
	runSim(t, func(env conc.Env) {
		m, err := New(env, Config{Capacity: 1000, TickInterval: 100 * time.Millisecond, SLOBoostFactor: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Register(Spec{Name: "a"}); err != nil {
			t.Fatal(err)
		}
		if err := m.SetSLO("nope", obs.SLOConfig{Threshold: time.Millisecond}); err == nil {
			t.Fatal("SetSLO on unknown tenant accepted")
		}
		if err := m.SetSLO("a", obs.SLOConfig{
			Quantile: 0.9, Threshold: time.Millisecond,
			Window: 12 * time.Second, ShortWindow: time.Second,
		}); err != nil {
			t.Fatal(err)
		}
		// Breach it, then clear: the boost must not outlive the objective.
		for i := 0; i < 100; i++ {
			m.ObserveLatency("a", time.Second, false)
		}
		m.Tick(100 * time.Millisecond)
		for _, ts := range m.Stats().Tenants {
			if ts.Name == "a" && !ts.SLOBoosted {
				t.Fatal("breach did not boost")
			}
		}
		m.ClearSLO("a")
		for _, ts := range m.Stats().Tenants {
			if ts.Name == "a" {
				if ts.SLOBoosted {
					t.Fatal("boost survived ClearSLO")
				}
				if ts.SLO != nil {
					t.Fatal("SLO status survived ClearSLO")
				}
			}
		}
	})
}
