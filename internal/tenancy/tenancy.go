// Package tenancy is PRISMA's control-plane answer to the paper's §VII
// open problem — access coordination across concurrent, mutually oblivious
// DL jobs sharing one storage data plane. It binds the building blocks
// that already exist (fairness token buckets + max-min arbiter, the
// degraded-mode signal from the resilient backend) into a per-tenant
// admission gate on the serving path:
//
//   - every read is attributed to a tenant (established at IPC hello time;
//     untagged connections map to a default tenant);
//   - in normal operation the gate throttles: a read blocks briefly until
//     the tenant's arbiter-granted rate admits it (weighted max-min, so a
//     greedy tenant is squeezed to its share, never starving the rest);
//   - under overload (queue depth or outstanding pooled bytes past the
//     configured thresholds) the gate sheds instead of queueing: requests
//     from over-budget tenants fail fast with a typed, retryable
//     OverloadError carrying a retry-after hint, so clients back off
//     instead of piling onto a saturated server;
//   - while the storage backend is degraded (circuit breaker open), the
//     distributable capacity is scaled down by DegradedFactor so every
//     tenant's grant shrinks proportionally — graceful, attributable
//     degradation rather than collapse.
//
// Sheds happen at admission, before any stage or plan state changes, which
// is what makes the otherwise at-most-once read safely retryable: a shed
// read provably did not execute.
package tenancy

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/fairness"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/obs"
)

// DefaultTenant is the identity assigned to connections that never send a
// hello frame.
const DefaultTenant = "default"

// ErrOverloaded is the sentinel for typed overload rejections:
// errors.Is(err, tenancy.ErrOverloaded) matches any *OverloadError.
var ErrOverloaded = errors.New("tenancy: server overloaded")

// OverloadError is the typed, retryable load-shed rejection. RetryAfter is
// the server's hint for when the tenant's budget will admit the request —
// the client's backoff honors it before resending.
type OverloadError struct {
	Tenant     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("tenancy: tenant %q over budget, retry after %v", e.Tenant, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) true for any OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// Load is the saturation snapshot the manager evaluates each tick. The
// serving layer injects a probe (Config.Load) so the thresholds see live
// queue depth and pooled-buffer pressure; tests inject deterministic
// loads.
type Load struct {
	// QueueDepth is the number of requests queued or executing server-side.
	QueueDepth int
	// PooledBytes is the outstanding pooled sample-buffer footprint.
	PooledBytes int64
	// Degraded mirrors the resilient backend's circuit-breaker signal.
	Degraded bool
}

// Spec declares one tenant.
type Spec struct {
	// Name identifies the tenant (required, unique).
	Name string
	// Weight is the tenant's share weight for max-min arbitration
	// (default 1).
	Weight float64
	// BytesPerSecond is the tenant's byte budget; 0 means unmetered.
	// Bytes are charged after each read (when the size is known) and the
	// resulting debt throttles — or, under overload, sheds — later reads.
	BytesPerSecond float64
	// Secret, when non-empty, must be presented by the hello frame for a
	// connection to assume this identity.
	Secret string
	// SLO, when non-nil, installs a latency objective for the tenant: its
	// reads feed an env-clock burn-rate tracker whose OK/WARN/BREACH
	// transitions drive gate weight boosts and audited control actions.
	SLO *obs.SLOConfig
}

// Config tunes the manager.
type Config struct {
	// Capacity is the total request rate (reads/s) distributed across
	// tenants (required).
	Capacity float64
	// Burst bounds how far a tenant may briefly exceed its granted rate
	// (default Capacity/4, at least 1).
	Burst float64
	// TickInterval is the arbitration/overload evaluation period
	// (default 100ms).
	TickInterval time.Duration
	// DegradedFactor scales Capacity while the backend is degraded
	// (default 0.5).
	DegradedFactor float64
	// MaxQueueDepth is the saturation threshold on Load.QueueDepth;
	// 0 disables the check.
	MaxQueueDepth int
	// MaxPooledBytes is the saturation threshold on Load.PooledBytes;
	// 0 disables the check.
	MaxPooledBytes int64
	// MaxRetryAfter clamps the retry-after hint handed to shed clients
	// (default 5s).
	MaxRetryAfter time.Duration
	// Load probes current saturation; nil means never overloaded (the
	// gate still throttles by rate and byte budgets).
	Load func() Load
	// SLOBoostFactor multiplies a tenant's arbitration weight while its
	// latency objective is breaching — the victim of a noisy neighbor gets
	// a bigger max-min share until its burn rate recovers (default 2).
	SLOBoostFactor float64
	// OnSLOAction, when non-nil, observes every SLO-driven control action
	// (breach boosts, recoveries, warns). The serving layer wires it into
	// the autotuner's decision audit log so the actions stay explainable.
	OnSLOAction func(SLOAction)
}

func (c Config) withDefaults() Config {
	if c.Burst <= 0 {
		c.Burst = c.Capacity / 4
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 100 * time.Millisecond
	}
	if c.DegradedFactor <= 0 || c.DegradedFactor > 1 {
		c.DegradedFactor = 0.5
	}
	if c.MaxRetryAfter <= 0 {
		c.MaxRetryAfter = 5 * time.Second
	}
	if c.SLOBoostFactor <= 1 {
		c.SLOBoostFactor = 2
	}
	return c
}

// SLOAction is one SLO-driven control action, surfaced through
// Config.OnSLOAction for audit.
type SLOAction struct {
	Tenant string `json:"tenant"`
	// Rule names the action: "slo-breach" (weight boosted), "slo-recovered"
	// (boost removed), "slo-warn" (observed, no actuation).
	Rule         string        `json:"rule"`
	From         string        `json:"from"`
	To           string        `json:"to"`
	WeightBefore float64       `json:"weight_before"`
	WeightAfter  float64       `json:"weight_after"`
	Status       obs.SLOStatus `json:"status"`
}

// state is one tenant's runtime record.
type state struct {
	name   string
	weight float64 // base (operator-set) arbitration weight
	secret string
	// boosted marks an active SLO breach boost: the arbiter currently runs
	// this tenant at weight x SLOBoostFactor.
	boosted bool

	bucket      *fairness.TokenBucket // request-rate budget (arbiter-driven)
	bytes       *fairness.TokenBucket // byte budget, nil when unmetered
	bytesPerSec float64

	admitted  *metrics.Counter
	shed      *metrics.Counter
	bytesRead *metrics.Counter
	errors    *metrics.Counter
	latency   *metrics.BucketedHistogram // end-to-end read latency
}

// Manager is the tenant registry plus the admission-control gate. It
// implements core.TenantGate; the IPC server resolves each connection's
// identity (Authenticate) and the stage consults the gate per read.
type Manager struct {
	env conc.Env
	cfg Config
	arb *fairness.Arbiter
	slo *obs.SLOTracker

	mu         conc.Mutex
	tenants    map[string]*state
	overloaded bool
	started    bool
	stopped    bool
}

// New builds a manager and registers the default tenant (weight 1, no
// byte budget, no secret).
func New(env conc.Env, cfg Config) (*Manager, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("tenancy: non-positive capacity %v", cfg.Capacity)
	}
	cfg = cfg.withDefaults()
	arb, err := fairness.NewArbiter(env, cfg.Capacity)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		env:     env,
		cfg:     cfg,
		arb:     arb,
		slo:     obs.NewSLOTracker(env),
		mu:      env.NewMutex(),
		tenants: make(map[string]*state),
	}
	if err := m.Register(Spec{Name: DefaultTenant}); err != nil {
		return nil, err
	}
	return m, nil
}

// Register adds a tenant. Until the first arbiter tick its bucket runs at
// the full capacity; the tick squeezes it to its max-min share.
func (m *Manager) Register(spec Spec) error {
	if spec.Name == "" {
		return fmt.Errorf("tenancy: empty tenant name")
	}
	if spec.Weight == 0 {
		spec.Weight = 1
	}
	if spec.Weight < 0 {
		return fmt.Errorf("tenancy: negative weight %v for %q", spec.Weight, spec.Name)
	}
	if spec.BytesPerSecond < 0 {
		return fmt.Errorf("tenancy: negative byte budget %v for %q", spec.BytesPerSecond, spec.Name)
	}
	bucket, err := fairness.NewTokenBucket(m.env, m.cfg.Capacity, m.cfg.Burst)
	if err != nil {
		return err
	}
	st := &state{
		name:      spec.Name,
		weight:    spec.Weight,
		secret:    spec.Secret,
		bucket:    bucket,
		admitted:  metrics.NewCounter(m.env),
		shed:      metrics.NewCounter(m.env),
		bytesRead: metrics.NewCounter(m.env),
		errors:    metrics.NewCounter(m.env),
		latency:   metrics.NewBucketedHistogram(m.env, nil),
	}
	if spec.BytesPerSecond > 0 {
		// Burst = one second of budget: post-hoc charging needs room to go
		// negative, and the debt model handles the rest.
		bb, err := fairness.NewTokenBucket(m.env, spec.BytesPerSecond, spec.BytesPerSecond)
		if err != nil {
			return err
		}
		st.bytes = bb
		st.bytesPerSec = spec.BytesPerSecond
	}
	m.mu.Lock()
	if _, dup := m.tenants[spec.Name]; dup {
		m.mu.Unlock()
		return fmt.Errorf("tenancy: tenant %q already registered", spec.Name)
	}
	m.tenants[spec.Name] = st
	m.mu.Unlock()
	if err := m.arb.Register(spec.Name, spec.Weight, bucket, st.admitted.Value); err != nil {
		m.mu.Lock()
		delete(m.tenants, spec.Name)
		m.mu.Unlock()
		return err
	}
	if spec.SLO != nil {
		m.slo.Set(spec.Name, *spec.SLO)
	}
	return nil
}

// SetSLO installs (or replaces) a tenant's latency objective at runtime.
func (m *Manager) SetSLO(name string, cfg obs.SLOConfig) error {
	m.mu.Lock()
	_, ok := m.tenants[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("tenancy: tenant %q not registered", name)
	}
	m.slo.Set(name, cfg)
	return nil
}

// ClearSLO removes a tenant's latency objective (and any active boost).
func (m *Manager) ClearSLO(name string) {
	m.slo.Remove(name)
	m.mu.Lock()
	var base float64
	restore := false
	if st, ok := m.tenants[name]; ok && st.boosted {
		st.boosted = false
		base = st.weight
		restore = true
	}
	m.mu.Unlock()
	if restore {
		m.arb.SetWeight(name, base)
	}
}

// Unregister removes a tenant; its arbiter share flows back to the rest at
// the next tick. The default tenant cannot be removed.
func (m *Manager) Unregister(name string) error {
	if name == DefaultTenant {
		return fmt.Errorf("tenancy: cannot unregister the default tenant")
	}
	m.mu.Lock()
	_, ok := m.tenants[name]
	delete(m.tenants, name)
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("tenancy: tenant %q not registered", name)
	}
	m.arb.Unregister(name)
	m.slo.Remove(name)
	return nil
}

// SetTenant adjusts a tenant's weight and/or byte budget at runtime
// (control interface; zero leaves the respective knob unchanged).
func (m *Manager) SetTenant(name string, weight, bytesPerSecond float64) error {
	m.mu.Lock()
	st, ok := m.tenants[name]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("tenancy: tenant %q not registered", name)
	}
	if weight > 0 {
		if err := m.arb.SetWeight(name, weight); err != nil {
			return err
		}
		m.mu.Lock()
		// An operator-set weight becomes the new base and lands directly in
		// the arbiter, dropping any active SLO boost (it re-applies on the
		// tenant's next transition into breach).
		st.weight = weight
		st.boosted = false
		m.mu.Unlock()
	}
	if bytesPerSecond > 0 {
		m.mu.Lock()
		if st.bytes == nil {
			bb, err := fairness.NewTokenBucket(m.env, bytesPerSecond, bytesPerSecond)
			if err != nil {
				m.mu.Unlock()
				return err
			}
			st.bytes = bb
		} else {
			st.bytes.SetRate(bytesPerSecond)
		}
		st.bytesPerSec = bytesPerSecond
		m.mu.Unlock()
	}
	return nil
}

// Authenticate resolves a hello frame to a tenant identity. An empty name
// maps to the default tenant. A known tenant with a secret requires the
// matching secret. An unknown tenant is auto-registered with defaults
// (weight 1, unmetered) — self-service identity, with the operator
// adjusting weights/budgets afterwards via SetTenant.
func (m *Manager) Authenticate(name, secret string) (string, error) {
	if name == "" {
		return DefaultTenant, nil
	}
	m.mu.Lock()
	st, ok := m.tenants[name]
	m.mu.Unlock()
	if !ok {
		if err := m.Register(Spec{Name: name, Secret: secret}); err != nil {
			// Lost a registration race: re-resolve as a known tenant.
			m.mu.Lock()
			st, ok = m.tenants[name]
			m.mu.Unlock()
			if !ok {
				return "", err
			}
		} else {
			return name, nil
		}
	}
	if st.secret != "" && st.secret != secret {
		return "", fmt.Errorf("tenancy: bad credentials for tenant %q", name)
	}
	return name, nil
}

// lookup resolves a tenant name to its state, falling back to the default
// tenant for unknown names (a connection that never said hello, or said
// hello for a tenant unregistered since).
func (m *Manager) lookup(tenant string) *state {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.tenants[tenant]; ok {
		return st
	}
	return m.tenants[DefaultTenant]
}

// Overloaded reports the gate's current shed-instead-of-queue state.
func (m *Manager) Overloaded() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.overloaded
}

// clampRetry bounds a retry-after hint to (0, MaxRetryAfter].
func (m *Manager) clampRetry(d time.Duration) time.Duration {
	if d <= 0 {
		d = time.Millisecond
	}
	if d > m.cfg.MaxRetryAfter {
		d = m.cfg.MaxRetryAfter
	}
	return d
}

// Admit implements core.TenantGate: it charges one request against the
// tenant's arbiter-granted rate. In normal operation it blocks until the
// budget admits the read (throttling); under overload it refuses to queue
// and sheds over-budget tenants with a typed OverloadError instead. The
// shed happens before the read executes, so retrying it is always safe.
func (m *Manager) Admit(tenant string) error {
	st := m.lookup(tenant)
	m.mu.Lock()
	overloaded := m.overloaded
	m.mu.Unlock()
	if overloaded {
		if st.bytes != nil && st.bytes.InDebt() {
			st.shed.Inc()
			return &OverloadError{Tenant: st.name, RetryAfter: m.clampRetry(st.bytes.DebtWait())}
		}
		ok, wait := st.bucket.TryAcquire(1)
		if !ok {
			st.shed.Inc()
			return &OverloadError{Tenant: st.name, RetryAfter: m.clampRetry(wait)}
		}
	} else {
		st.bucket.Acquire(1)
		if st.bytes != nil {
			st.bytes.AwaitNonNegative()
		}
	}
	st.admitted.Inc()
	return nil
}

// ObserveLatency implements the stage's latencyObserver extension: every
// tenant read's end-to-end latency (including admission waits) lands in the
// tenant's histogram and, when the tenant has a latency objective, in the
// SLO burn-rate tracker. Shed reads count against the shed budget instead
// of the latency threshold.
func (m *Manager) ObserveLatency(tenant string, latency time.Duration, shed bool) {
	st := m.lookup(tenant)
	if !shed {
		st.latency.Observe(latency)
	}
	m.slo.Observe(st.name, latency, shed)
}

// SLO exposes the burn-rate tracker (for bundles and metrics surfaces).
func (m *Manager) SLO() *obs.SLOTracker { return m.slo }

// ObserveRead implements core.TenantGate: byte budgets are charged after
// the read, when the payload size is known; the debt throttles (or, under
// overload, sheds) subsequent reads from the same tenant.
func (m *Manager) ObserveRead(tenant string, bytes int64, err error) {
	st := m.lookup(tenant)
	if err != nil {
		st.errors.Inc()
		return
	}
	if bytes > 0 {
		st.bytesRead.Add(bytes)
		if st.bytes != nil {
			st.bytes.Charge(float64(bytes))
		}
	}
}

// tick evaluates saturation and re-arbitrates grants.
func (m *Manager) tick(interval time.Duration) {
	var load Load
	if m.cfg.Load != nil {
		load = m.cfg.Load()
	}
	over := false
	if m.cfg.MaxQueueDepth > 0 && load.QueueDepth >= m.cfg.MaxQueueDepth {
		over = true
	}
	if m.cfg.MaxPooledBytes > 0 && load.PooledBytes >= m.cfg.MaxPooledBytes {
		over = true
	}
	m.mu.Lock()
	m.overloaded = over
	m.mu.Unlock()
	if load.Degraded {
		m.arb.SetCapacity(m.cfg.Capacity * m.cfg.DegradedFactor)
	} else {
		m.arb.SetCapacity(m.cfg.Capacity)
	}
	m.arb.Tick(interval)
	for _, tr := range m.slo.Evaluate() {
		m.applySLOTransition(tr)
	}
}

// applySLOTransition turns one SLO state change into a gate action: a
// tenant entering BREACH gets its arbitration weight boosted by
// SLOBoostFactor (the noisy neighbor is squeezed by max-min in its favor);
// recovering to OK restores the base weight; WARN is observed without
// actuation. Every transition is reported through OnSLOAction for audit.
func (m *Manager) applySLOTransition(tr obs.SLOTransition) {
	m.mu.Lock()
	st, ok := m.tenants[tr.Tenant]
	if !ok {
		m.mu.Unlock()
		return
	}
	act := SLOAction{Tenant: tr.Tenant, From: tr.From, To: tr.To, Status: tr.Status}
	base := st.weight
	act.WeightBefore = base
	if st.boosted {
		act.WeightBefore = base * m.cfg.SLOBoostFactor
	}
	act.WeightAfter = act.WeightBefore
	switch tr.To {
	case obs.SLOBreach:
		act.Rule = "slo-breach"
		if !st.boosted {
			st.boosted = true
			act.WeightAfter = base * m.cfg.SLOBoostFactor
		}
	case obs.SLOOK:
		act.Rule = "slo-recovered"
		if st.boosted {
			st.boosted = false
			act.WeightAfter = base
		}
	default:
		act.Rule = "slo-warn"
	}
	m.mu.Unlock()
	if act.WeightAfter != act.WeightBefore {
		m.arb.SetWeight(tr.Tenant, act.WeightAfter)
	}
	if m.cfg.OnSLOAction != nil {
		m.cfg.OnSLOAction(act)
	}
}

// Tick runs one arbitration/overload evaluation round (tests drive this
// directly; production uses Start).
func (m *Manager) Tick(interval time.Duration) { m.tick(interval) }

// Start runs the evaluation loop every TickInterval until Stop.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		panic("tenancy: manager started twice")
	}
	m.started = true
	m.mu.Unlock()
	m.env.Go("tenancy-manager", func() {
		for {
			m.env.Sleep(m.cfg.TickInterval)
			m.mu.Lock()
			stopped := m.stopped
			m.mu.Unlock()
			if stopped {
				return
			}
			m.tick(m.cfg.TickInterval)
		}
	})
}

// Stop terminates the loop after its current sleep.
func (m *Manager) Stop() {
	m.mu.Lock()
	m.stopped = true
	m.mu.Unlock()
}

// TenantStats is one tenant's monitoring snapshot (rendered by /tenants,
// prisma-ctl tenants, and the prisma_tenant_* Prometheus metrics).
type TenantStats struct {
	Name         string  `json:"name"`
	Weight       float64 `json:"weight"`
	GrantedRate  float64 `json:"granted_rate"`  // reads/s from the arbiter
	MeasuredRate float64 `json:"measured_rate"` // demand estimate, last tick
	Admitted     int64   `json:"admitted"`
	Shed         int64   `json:"shed"`
	BytesRead    int64   `json:"bytes_read"`
	Errors       int64   `json:"errors"`
	ByteBudget   float64 `json:"byte_budget,omitempty"` // bytes/s, 0 = unmetered
	InDebt       bool    `json:"in_debt"`
	// SLOBoosted marks an active breach boost (Weight is the base weight;
	// the arbiter currently runs Weight x SLOBoostFactor).
	SLOBoosted bool `json:"slo_boosted,omitempty"`
	// Latency is the tenant's end-to-end read latency histogram.
	Latency metrics.HistogramSnapshot `json:"latency"`
	// SLO is the tenant's objective evaluation, nil without an objective.
	SLO *obs.SLOStatus `json:"slo,omitempty"`
}

// Snapshot is the full control-plane view.
type Snapshot struct {
	Overloaded bool          `json:"overloaded"`
	Capacity   float64       `json:"capacity"`
	Tenants    []TenantStats `json:"tenants"`
}

// Stats snapshots every tenant, sorted by name for stable rendering.
func (m *Manager) Stats() Snapshot {
	grants := m.arb.Grants()
	byID := make(map[string]fairness.Grant, len(grants))
	for _, g := range grants {
		byID[g.ID] = g
	}
	m.mu.Lock()
	states := make([]*state, 0, len(m.tenants))
	boosted := make(map[string]bool, len(m.tenants))
	for _, st := range m.tenants {
		states = append(states, st)
		boosted[st.name] = st.boosted
	}
	overloaded := m.overloaded
	m.mu.Unlock()
	snap := Snapshot{Overloaded: overloaded, Capacity: m.arb.Capacity()}
	for _, st := range states {
		g := byID[st.name]
		ts := TenantStats{
			Name:         st.name,
			Weight:       st.weight,
			GrantedRate:  g.Granted,
			MeasuredRate: g.Measured,
			Admitted:     st.admitted.Value(),
			Shed:         st.shed.Value(),
			BytesRead:    st.bytesRead.Value(),
			Errors:       st.errors.Value(),
			ByteBudget:   st.bytesPerSec,
			SLOBoosted:   boosted[st.name],
			Latency:      st.latency.Snapshot(),
		}
		if st.bytes != nil {
			ts.InDebt = st.bytes.InDebt()
		}
		if slo, ok := m.slo.Status(st.name); ok {
			ts.SLO = &slo
		}
		snap.Tenants = append(snap.Tenants, ts)
	}
	sort.Slice(snap.Tenants, func(i, j int) bool { return snap.Tenants[i].Name < snap.Tenants[j].Name })
	return snap
}
