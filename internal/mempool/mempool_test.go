package mempool

import (
	"strings"
	"sync"
	"testing"
)

func TestSizeClassRouting(t *testing.T) {
	p := New(Config{MinSize: 1 << 10, MaxSize: 1 << 14, PerClassCap: 4})
	cases := []struct {
		n    int
		want int // backing array size
	}{
		{1, 1 << 10},
		{1 << 10, 1 << 10},
		{(1 << 10) + 1, 1 << 11},
		{1 << 12, 1 << 12},
		{1 << 14, 1 << 14},
	}
	for _, c := range cases {
		r := p.Get(c.n)
		if len(r.Bytes()) != c.n {
			t.Fatalf("Get(%d): len=%d", c.n, len(r.Bytes()))
		}
		if cap(r.buf) != c.want {
			t.Errorf("Get(%d): backing size %d, want %d", c.n, cap(r.buf), c.want)
		}
		r.Release()
	}
	// Oversize falls back to exact allocation, never recycled.
	r := p.Get((1 << 14) + 1)
	if r.cls != nil {
		t.Fatal("oversize Get was assigned a size class")
	}
	r.Release()
	if s := p.Stats(); s.Oversize != 1 {
		t.Fatalf("oversize count = %d, want 1", s.Oversize)
	}
}

func TestRecycleHitAndPoison(t *testing.T) {
	p := New(Config{MinSize: 64, MaxSize: 64, Debug: true})
	a := p.Get(40)
	buf := a.Bytes()
	for i := range buf {
		buf[i] = 7
	}
	a.Release()
	for i, b := range buf[:40] {
		if b != poisonByte {
			t.Fatalf("byte %d not poisoned after release: %#x", i, b)
		}
	}
	b2 := p.Get(40)
	if &b2.buf[0] != &buf[0] {
		t.Fatal("expected recycled backing array")
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", s.Hits, s.Misses)
	}
	b2.Release()
}

func TestPerClassCapDiscards(t *testing.T) {
	p := New(Config{MinSize: 64, MaxSize: 64, PerClassCap: 2})
	refs := []*Ref{p.Get(10), p.Get(10), p.Get(10)}
	for _, r := range refs {
		r.Release()
	}
	s := p.Stats()
	if s.FreeBuffers != 2 {
		t.Fatalf("free buffers = %d, want cap 2", s.FreeBuffers)
	}
	if s.Recycled != 2 || s.Discarded != 1 {
		t.Fatalf("recycled=%d discarded=%d, want 2/1", s.Recycled, s.Discarded)
	}
}

func TestRetainReleaseCounting(t *testing.T) {
	p := New(Config{Debug: true})
	r := p.Get(100)
	r.Retain()
	r.Release()
	if p.Outstanding() != 1 {
		t.Fatalf("outstanding = %d after partial release, want 1", p.Outstanding())
	}
	r.Release()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d, want 0", p.Outstanding())
	}
	if leaks := p.Leaks(); len(leaks) != 0 {
		t.Fatalf("unexpected leaks: %v", leaks)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p := New(Config{Debug: true})
	r := p.Get(10)
	r.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	r.Release()
}

func TestRetainAfterReleasePanics(t *testing.T) {
	p := New(Config{Debug: true})
	r := p.Get(10)
	r.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("retain-after-free did not panic")
		}
	}()
	r.Retain()
}

func TestLeakLedgerNamesCallSite(t *testing.T) {
	p := New(Config{Debug: true})
	r := p.Get(10) // this line is the leak site
	leaks := p.Leaks()
	if len(leaks) != 1 {
		t.Fatalf("leak ledger = %v, want one site", leaks)
	}
	for site := range leaks {
		if !strings.HasPrefix(site, "mempool_test.go:") {
			t.Fatalf("leak site %q does not point at the Get caller", site)
		}
	}
	if msg := FormatLeaks(leaks); !strings.Contains(msg, "1 outstanding") {
		t.Fatalf("FormatLeaks = %q", msg)
	}
	r.Release()
	if len(p.Leaks()) != 0 {
		t.Fatal("ledger not cleared after release")
	}
}

func TestExternalRefNotRecycled(t *testing.T) {
	p := New(Config{Debug: true})
	b := []byte{1, 2, 3}
	r := p.External(b)
	if &r.Bytes()[0] != &b[0] {
		t.Fatal("External did not alias the given slice")
	}
	r.Release()
	if s := p.Stats(); s.FreeBuffers != 0 {
		t.Fatal("external buffer entered the free list")
	}
	if p.Outstanding() != 0 {
		t.Fatal("external ref still outstanding")
	}
}

func TestStatsHitRate(t *testing.T) {
	p := New(Config{MinSize: 64, MaxSize: 64})
	p.Get(10).Release()
	p.Get(10).Release()
	s := p.Stats()
	if s.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", s.HitRate)
	}
	if len(s.Classes) != 1 || s.Classes[0].Size != 64 {
		t.Fatalf("class stats = %+v", s.Classes)
	}
}

// TestConcurrentGetRelease is the -race smoke: many goroutines churning one
// class must never corrupt the free list or the counters.
func TestConcurrentGetRelease(t *testing.T) {
	p := New(Config{MinSize: 1 << 10, MaxSize: 1 << 12, PerClassCap: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r := p.Get(1 + (g*131+i*17)%(1<<12))
				r.Bytes()[0] = byte(i)
				if i%3 == 0 {
					r.Retain()
					r.Release()
				}
				r.Release()
			}
		}(g)
	}
	wg.Wait()
	if p.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after churn", p.Outstanding())
	}
	s := p.Stats()
	if s.Gets != 4000 {
		t.Fatalf("gets = %d, want 4000", s.Gets)
	}
}
