// Package mempool provides size-classed, reference-counted sample buffers
// for the PRISMA data plane. The hot path moves one payload per sample from
// the storage backend through the prefetch buffer and out an IPC frame; a
// fresh []byte per hop makes the Go GC, not the storage device, the
// throughput ceiling at scale. The pool recycles payload buffers across
// samples so the steady-state allocation rate on the read path is ~zero.
//
// Ownership model (DESIGN.md §11): a Ref is created with one reference held
// by the caller of Get. Passing a Ref to another stage transfers that
// reference; the receiver must eventually Release it (or Retain first if it
// wants to keep the bytes alive past the hand-off). Because the prefetch
// buffer evicts on read, single ownership moves producer → buffer →
// consumer without any Retain in the steady state.
//
// The package is deliberately environment-free: it uses plain sync.Mutex
// and atomics rather than conc.Env primitives. Under the deterministic
// simulator only one process runs at a time, so uncontended mutexes and
// atomics introduce no scheduling nondeterminism, and the same pool code
// serves both real and simulated runs.
package mempool

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// poisonByte overwrites released buffers in debug mode so use-after-release
// reads surface as corrupted data instead of silent aliasing.
const poisonByte = 0xDB

// Config sizes the pool. Zero values select defaults.
type Config struct {
	// MinSize is the smallest size class in bytes (default 4 KiB). Gets
	// smaller than MinSize are served from the MinSize class.
	MinSize int
	// MaxSize is the largest size class in bytes (default 4 MiB). Gets
	// larger than MaxSize fall back to plain allocation (still tracked).
	MaxSize int
	// PerClassCap bounds how many free buffers each size class retains
	// (default 64). Releases beyond the cap discard the buffer to the GC.
	PerClassCap int
	// Debug enables leak tracking by Get call-site, poison-on-release, and
	// panics on double-release / retain-after-free. Test builds turn this
	// on; production keeps it off to avoid the bookkeeping.
	Debug bool
}

func (c Config) withDefaults() Config {
	if c.MinSize <= 0 {
		c.MinSize = 4 << 10
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 4 << 20
	}
	if c.MaxSize < c.MinSize {
		c.MaxSize = c.MinSize
	}
	if c.PerClassCap <= 0 {
		c.PerClassCap = 64
	}
	// Round both bounds up to powers of two so class index math is shifts.
	c.MinSize = ceilPow2(c.MinSize)
	c.MaxSize = ceilPow2(c.MaxSize)
	return c
}

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// class is one power-of-two size bucket with its own free list. Ref structs
// are recycled along with their buffers so a pool hit allocates nothing.
type class struct {
	size int
	mu   sync.Mutex
	free []*Ref
}

// Pool hands out reference-counted buffers bucketed into power-of-two size
// classes. The zero value is not usable; construct with New.
type Pool struct {
	cfg     Config
	classes []*class
	minBits int

	gets        atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	oversize    atomic.Int64
	recycled    atomic.Int64
	discarded   atomic.Int64
	outstanding atomic.Int64

	// Debug-mode leak ledger: Get call-site → refs not yet fully released.
	siteMu sync.Mutex
	sites  map[string]int
}

// New constructs a pool from cfg (zero Config means defaults).
func New(cfg Config) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{cfg: cfg, minBits: bits.TrailingZeros(uint(cfg.MinSize))}
	for sz := cfg.MinSize; sz <= cfg.MaxSize; sz <<= 1 {
		p.classes = append(p.classes, &class{size: sz})
	}
	if cfg.Debug {
		p.sites = make(map[string]int)
	}
	return p
}

// Debug reports whether the pool was built with leak tracking enabled.
func (p *Pool) Debug() bool { return p.cfg.Debug }

// classFor maps a requested length to its size class, or nil when the
// request exceeds MaxSize (oversize requests are plain allocations).
func (p *Pool) classFor(n int) *class {
	if n > p.cfg.MaxSize {
		return nil
	}
	idx := 0
	if n > p.cfg.MinSize {
		idx = bits.Len(uint(n-1)) - p.minBits
	}
	return p.classes[idx]
}

// Get returns a Ref whose Bytes() slice has length n, with one reference
// held by the caller. The backing array may be recycled from an earlier
// Release and contains arbitrary bytes; callers overwrite it in full.
func (p *Pool) Get(n int) *Ref {
	if n < 0 {
		panic("mempool: Get with negative length")
	}
	p.gets.Add(1)
	p.outstanding.Add(1)
	cls := p.classFor(n)
	var r *Ref
	if cls == nil {
		p.oversize.Add(1)
		r = &Ref{pool: p, buf: make([]byte, n)}
	} else {
		cls.mu.Lock()
		if l := len(cls.free); l > 0 {
			r = cls.free[l-1]
			cls.free[l-1] = nil
			cls.free = cls.free[:l-1]
			cls.mu.Unlock()
			p.hits.Add(1)
		} else {
			cls.mu.Unlock()
			p.misses.Add(1)
			r = &Ref{pool: p, cls: cls, buf: make([]byte, cls.size)}
		}
	}
	r.n = n
	r.refs.Store(1)
	if p.cfg.Debug {
		r.site = callSite(2)
		p.siteMu.Lock()
		p.sites[r.site]++
		p.siteMu.Unlock()
	}
	return r
}

// External wraps an existing byte slice in a Ref without pooling it. The
// final Release drops the slice for the GC. It lets code paths that
// sometimes produce unpooled bytes (oversize reads, pool-disabled A/B runs,
// legacy backends) share the same ownership discipline.
func (p *Pool) External(b []byte) *Ref {
	p.outstanding.Add(1)
	r := &Ref{pool: p, buf: b, n: len(b), external: true}
	r.refs.Store(1)
	if p.cfg.Debug {
		r.site = callSite(2)
		p.siteMu.Lock()
		p.sites[r.site]++
		p.siteMu.Unlock()
	}
	return r
}

// release is called by Ref.Release on the final reference.
func (p *Pool) release(r *Ref) {
	p.outstanding.Add(-1)
	if p.cfg.Debug {
		p.siteMu.Lock()
		p.sites[r.site]--
		if p.sites[r.site] <= 0 {
			delete(p.sites, r.site)
		}
		p.siteMu.Unlock()
		// Poison the full backing array, not just [:n], so stale aliases
		// into recycled capacity are caught too.
		for i := range r.buf {
			r.buf[i] = poisonByte
		}
	}
	cls := r.cls
	if cls == nil || r.external {
		p.discarded.Add(1)
		return
	}
	cls.mu.Lock()
	if len(cls.free) < p.cfg.PerClassCap {
		cls.free = append(cls.free, r)
		cls.mu.Unlock()
		p.recycled.Add(1)
		return
	}
	cls.mu.Unlock()
	p.discarded.Add(1)
}

// Outstanding reports how many refs are currently live (created and not yet
// fully released).
func (p *Pool) Outstanding() int64 { return p.outstanding.Load() }

// Leaks returns the debug-mode ledger of Get call-sites with refs still
// outstanding, mapping "file.go:123" to the live count. Nil when Debug is
// off. An end-of-epoch audit asserts the map is empty.
func (p *Pool) Leaks() map[string]int {
	if !p.cfg.Debug {
		return nil
	}
	p.siteMu.Lock()
	defer p.siteMu.Unlock()
	out := make(map[string]int, len(p.sites))
	for k, v := range p.sites {
		out[k] = v
	}
	return out
}

// ClassStats describes one size class's free list.
type ClassStats struct {
	Size int `json:"size"`
	Free int `json:"free"`
}

// Stats is a point-in-time snapshot of pool behaviour.
type Stats struct {
	Gets        int64        `json:"gets"`
	Hits        int64        `json:"hits"`
	Misses      int64        `json:"misses"`
	Oversize    int64        `json:"oversize"`
	Recycled    int64        `json:"recycled"`
	Discarded   int64        `json:"discarded"`
	Outstanding int64        `json:"outstanding"`
	FreeBuffers int          `json:"free_buffers"`
	FreeBytes   int64        `json:"free_bytes"`
	HitRate     float64      `json:"hit_rate"`
	Classes     []ClassStats `json:"classes,omitempty"`
}

// Stats snapshots the pool counters and per-class free lists.
func (p *Pool) Stats() Stats {
	s := Stats{
		Gets:        p.gets.Load(),
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Oversize:    p.oversize.Load(),
		Recycled:    p.recycled.Load(),
		Discarded:   p.discarded.Load(),
		Outstanding: p.outstanding.Load(),
	}
	for _, cls := range p.classes {
		cls.mu.Lock()
		n := len(cls.free)
		cls.mu.Unlock()
		s.FreeBuffers += n
		s.FreeBytes += int64(n) * int64(cls.size)
		s.Classes = append(s.Classes, ClassStats{Size: cls.size, Free: n})
	}
	if pooled := s.Gets - s.Oversize; pooled > 0 {
		s.HitRate = float64(s.Hits) / float64(pooled)
	}
	return s
}

// Ref is one reference-counted buffer lease. Bytes() is valid until the
// holder's reference is Released; after the final Release the backing array
// may be handed to another sample at any moment (and is poisoned first in
// debug builds).
type Ref struct {
	pool     *Pool
	cls      *class
	buf      []byte
	n        int
	external bool
	refs     atomic.Int32
	site     string
}

// Bytes returns the leased payload slice (length = the Get request).
func (r *Ref) Bytes() []byte { return r.buf[:r.n] }

// Len reports the payload length without materialising the slice header.
func (r *Ref) Len() int { return r.n }

// Retain adds a reference. It panics if the buffer has already been fully
// released — retaining a recycled buffer is always a lifecycle bug.
func (r *Ref) Retain() {
	for {
		old := r.refs.Load()
		if old <= 0 {
			panic(fmt.Sprintf("mempool: Retain of released buffer (from %s)", r.site))
		}
		if r.refs.CompareAndSwap(old, old+1) {
			return
		}
	}
}

// Release drops one reference; the final release poisons (debug) and
// recycles the buffer. Releasing more times than retained panics: the
// extra release would free a buffer some other holder still trusts.
func (r *Ref) Release() {
	n := r.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("mempool: double release (from %s)", r.site))
	}
	r.pool.release(r)
}

// Refs reports the current reference count (for tests and diagnostics).
func (r *Ref) Refs() int32 { return r.refs.Load() }

// callSite formats the caller's file:line for the leak ledger.
func callSite(skip int) string {
	var pcs [1]uintptr
	if runtime.Callers(skip+1, pcs[:]) == 0 {
		return "unknown"
	}
	frame, _ := runtime.CallersFrames(pcs[:]).Next()
	file := frame.File
	for i := len(file) - 1; i >= 0; i-- {
		if file[i] == '/' {
			file = file[i+1:]
			break
		}
	}
	return fmt.Sprintf("%s:%d", file, frame.Line)
}

// FormatLeaks renders a leak ledger deterministically for test failures.
func FormatLeaks(leaks map[string]int) string {
	if len(leaks) == 0 {
		return "no leaks"
	}
	keys := make([]string, 0, len(leaks))
	for k := range leaks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("  %s: %d outstanding\n", k, leaks[k])
	}
	return out
}
