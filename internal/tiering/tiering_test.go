package tiering

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/core"
	"github.com/dsrhaslab/prisma-go/internal/dataset"
	"github.com/dsrhaslab/prisma-go/internal/sim"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

func runSim(t *testing.T, body func(env conc.Env)) {
	t.Helper()
	s := sim.New()
	env := conc.NewSimEnv(s)
	s.Spawn("test-body", func(*sim.Process) { body(env) })
	if err := s.Run(); err != nil {
		t.Fatalf("sim: %v", err)
	}
}

// tieredFixture builds a slow NFS-like backend plus a fast NVMe-like
// device with n files of the given size.
func tieredFixture(env conc.Env, cfg Config, n int, size int64) (*Backend, []string) {
	samples := make([]dataset.Sample, n)
	names := make([]string, n)
	for i := range samples {
		samples[i] = dataset.Sample{Name: fmt.Sprintf("f%03d", i), Size: size}
		names[i] = samples[i].Name
	}
	man := dataset.MustNew(samples)
	slowDev, err := storage.NewDevice(env, storage.DeviceSpec{
		BaseLatency: 10 * time.Millisecond, BytesPerSecond: 1e9, Channels: 4,
	})
	if err != nil {
		panic(err)
	}
	fastDev, err := storage.NewDevice(env, storage.DeviceSpec{
		BaseLatency: 100 * time.Microsecond, BytesPerSecond: 1e10, Channels: 8,
	})
	if err != nil {
		panic(err)
	}
	slow := storage.NewModeledBackend(man, slowDev, nil)
	b, err := NewBackend(env, cfg, slow, fastDev)
	if err != nil {
		panic(err)
	}
	return b, names
}

func TestConfigValidate(t *testing.T) {
	if (Config{FastCapacity: 0, PromoteAfter: 1}).Validate() == nil {
		t.Error("zero capacity accepted")
	}
	if (Config{FastCapacity: 1, PromoteAfter: 0}).Validate() == nil {
		t.Error("zero promote-after accepted")
	}
	if err := (Config{FastCapacity: 1 << 20, PromoteAfter: 1}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestPromoteOnFirstAccess(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 4, 1000)
		if _, err := b.ReadFile(names[0]); err != nil {
			t.Fatal(err)
		}
		if !b.Resident(names[0]) {
			t.Fatal("file not promoted after first access")
		}
		st := b.Stats()
		if st.SlowReads != 1 || st.Promotions != 1 || st.FastHits != 0 {
			t.Fatalf("stats = %+v", st)
		}
		// Second read hits the fast tier.
		start := env.Now()
		if _, err := b.ReadFile(names[0]); err != nil {
			t.Fatal(err)
		}
		if env.Now()-start > time.Millisecond {
			t.Fatalf("fast-tier hit took %v, want ≈100µs", env.Now()-start)
		}
		if b.Stats().FastHits != 1 {
			t.Fatal("fast hit not counted")
		}
	})
}

func TestPromoteAfterThreshold(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 3}, 2, 1000)
		for i := 0; i < 2; i++ {
			_, _ = b.ReadFile(names[0])
			if b.Resident(names[0]) {
				t.Fatalf("promoted after %d accesses, want 3", i+1)
			}
		}
		_, _ = b.ReadFile(names[0])
		if !b.Resident(names[0]) {
			t.Fatal("not promoted after 3 accesses")
		}
	})
}

func TestLRUEvictionUnderPressure(t *testing.T) {
	runSim(t, func(env conc.Env) {
		// Fast tier fits 3 files of 1000 bytes.
		b, names := tieredFixture(env, Config{FastCapacity: 3000, PromoteAfter: 1}, 5, 1000)
		for _, n := range names[:3] {
			_, _ = b.ReadFile(n)
		}
		_, _ = b.ReadFile(names[0]) // refresh 0; 1 is now LRU
		_, _ = b.ReadFile(names[3]) // promotes 3, evicts 1
		if b.Resident(names[1]) {
			t.Fatal("LRU file survived eviction")
		}
		if !b.Resident(names[0]) || !b.Resident(names[2]) || !b.Resident(names[3]) {
			t.Fatal("wrong eviction victim")
		}
		if b.Stats().Evictions != 1 {
			t.Fatalf("evictions = %d, want 1", b.Stats().Evictions)
		}
		if b.Stats().FastUsed != 3000 {
			t.Fatalf("FastUsed = %d, want 3000", b.Stats().FastUsed)
		}
	})
}

func TestOversizeNeverPromoted(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 500, PromoteAfter: 1}, 2, 1000)
		_, _ = b.ReadFile(names[0])
		if b.Resident(names[0]) {
			t.Fatal("file larger than the fast tier promoted")
		}
	})
}

func TestSlowErrorPropagates(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, _ := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 2, 1000)
		if _, err := b.ReadFile("ghost"); err == nil {
			t.Fatal("missing file read succeeded")
		}
	})
}

func TestSizeFromSlowTier(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 2, 1234)
		n, err := b.Size(names[0])
		if err != nil || n != 1234 {
			t.Fatalf("Size = %d, %v", n, err)
		}
	})
}

func TestTieringSpeedsUpRepeatedEpochs(t *testing.T) {
	// The headline behaviour: epoch 1 pays the slow tier; epoch 2 runs at
	// fast-tier speed once the working set is promoted.
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 30, PromoteAfter: 1}, 50, 100_000)
		epoch := func() time.Duration {
			start := env.Now()
			for _, n := range names {
				if _, err := b.ReadFile(n); err != nil {
					t.Fatal(err)
				}
			}
			return env.Now() - start
		}
		first := epoch()
		second := epoch()
		if second*5 > first {
			t.Fatalf("second epoch %v not ≪ first %v", second, first)
		}
	})
}

func TestObjectAdapterInStage(t *testing.T) {
	// Tiering composes with the stage as an optimization object.
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 4, 1000)
		st := core.NewStage(env, b, Object{B: b})
		d, err := st.Read(names[0])
		if err != nil || d.Size != 1000 {
			t.Fatalf("stage Read = %+v, %v", d, err)
		}
		if st.Stats().Hits != 1 {
			t.Fatalf("Hits = %d, want 1 (object handled)", st.Stats().Hits)
		}
		if !b.Resident(names[0]) {
			t.Fatal("promotion did not happen through the stage")
		}
		if (Object{B: b}).Name() == "" {
			t.Fatal("object needs a name")
		}
		st.Close()
	})
}

func TestPrefetcherOverTieredBackend(t *testing.T) {
	// Composition: PRISMA's producers read through the tiered backend.
	// Epoch 1 pulls from the slow tier and promotes; epoch 2's prefetch
	// runs at fast-tier speed — the two optimization objects stack.
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 30, PromoteAfter: 1}, 60, 100_000)
		pf, err := core.NewPrefetcher(env, b, core.PrefetcherConfig{
			InitialProducers: 2, MaxProducers: 8,
			InitialBufferCapacity: 16, MaxBufferCapacity: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		st := core.NewStage(env, b, core.NewPrefetchObject(pf))
		pf.Start()
		defer st.Close()

		epoch := func() time.Duration {
			start := env.Now()
			if err := st.SubmitPlan(names); err != nil {
				t.Fatal(err)
			}
			for _, n := range names {
				if _, err := st.Read(n); err != nil {
					t.Fatal(err)
				}
			}
			return env.Now() - start
		}
		first := epoch()
		second := epoch()
		if second*3 > first {
			t.Fatalf("epoch 2 (%v) not ≪ epoch 1 (%v) despite promotion", second, first)
		}
		stats := b.Stats()
		if stats.Promotions != 60 {
			t.Fatalf("promotions = %d, want 60", stats.Promotions)
		}
		if stats.FastHits != 60 {
			t.Fatalf("fast hits = %d, want 60 (all of epoch 2)", stats.FastHits)
		}
	})
}

func TestConcurrentMissesChargeOneWinner(t *testing.T) {
	// Eight readers miss on the same name at once. Each promotes a
	// prepared entry, but only one may enter the tier — the losers must
	// neither inflate the promotion counter nor charge the fast device.
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 1, 1000)
		wg := env.NewWaitGroup()
		wg.Add(8)
		for w := 0; w < 8; w++ {
			env.Go(fmt.Sprintf("reader-%d", w), func() {
				defer wg.Done()
				if _, err := b.ReadFile(names[0]); err != nil {
					t.Errorf("read: %v", err)
				}
			})
		}
		wg.Wait()
		st := b.Stats()
		if st.Promotions != 1 {
			t.Fatalf("promotions = %d, want 1 (one winner per name)", st.Promotions)
		}
		if st.Residents != 1 || st.FastUsed != 1000 {
			t.Fatalf("stats = %+v, want one 1000-byte resident", st)
		}
		if st.SlowReads+st.FastHits != 8 {
			t.Fatalf("8 reads accounted as %d slow + %d fast", st.SlowReads, st.FastHits)
		}
	})
}

func TestEvictionAtExactCapacity(t *testing.T) {
	runSim(t, func(env conc.Env) {
		// Capacity is exactly three files: filling it must not evict,
		// the fourth promotion must evict exactly one.
		b, names := tieredFixture(env, Config{FastCapacity: 3000, PromoteAfter: 1}, 4, 1000)
		for _, n := range names[:3] {
			_, _ = b.ReadFile(n)
		}
		st := b.Stats()
		if st.Evictions != 0 || st.FastUsed != 3000 {
			t.Fatalf("filling to exact capacity: %+v, want 0 evictions and full tier", st)
		}
		_, _ = b.ReadFile(names[3])
		st = b.Stats()
		if st.Evictions != 1 || st.FastUsed != 3000 || st.Residents != 3 {
			t.Fatalf("one past capacity: %+v, want exactly one eviction at full occupancy", st)
		}
	})
}

func TestItemExactlyTierSizedEvictsAll(t *testing.T) {
	runSim(t, func(env conc.Env) {
		// A sample exactly the tier's size is admissible but displaces
		// every resident; one byte larger (TestOversizeNeverPromoted) is
		// not. 3 small files then the big one.
		samples := []dataset.Sample{
			{Name: "small-0", Size: 1000},
			{Name: "small-1", Size: 1000},
			{Name: "big", Size: 3000},
		}
		man := dataset.MustNew(samples)
		slowDev, err := storage.NewDevice(env, storage.DeviceSpec{
			BaseLatency: time.Millisecond, BytesPerSecond: 1e9, Channels: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewBackend(env, Config{FastCapacity: 3000, PromoteAfter: 1},
			storage.NewModeledBackend(man, slowDev, nil), nil)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = b.ReadFile("small-0")
		_, _ = b.ReadFile("small-1")
		_, _ = b.ReadFile("big")
		st := b.Stats()
		if !b.Resident("big") || b.Resident("small-0") || b.Resident("small-1") {
			t.Fatalf("tier-sized item should displace all residents: %+v", st)
		}
		if st.Evictions != 2 || st.FastUsed != 3000 {
			t.Fatalf("stats = %+v, want 2 evictions and a full tier", st)
		}
	})
}

func TestAccessMapBounded(t *testing.T) {
	// Regression for the unbounded accesses map: names that never promote
	// (oversize here) used to accumulate one counter each, forever. The
	// MaxTracked decay sweep must keep the map bounded.
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 500, PromoteAfter: 1, MaxTracked: 8}, 100, 1000)
		for _, n := range names {
			if _, err := b.ReadFile(n); err != nil {
				t.Fatal(err)
			}
		}
		st := b.Stats()
		if st.TrackedNames > 8 {
			t.Fatalf("access map holds %d names, want <= MaxTracked 8", st.TrackedNames)
		}
		if st.AccessDecays == 0 {
			t.Fatal("100 never-promoted names under MaxTracked=8 must trigger decay sweeps")
		}
		if st.Residents != 0 {
			t.Fatalf("oversize files promoted: %+v", st)
		}
	})
}

func TestDecayKeepsPopularity(t *testing.T) {
	// A decay sweep halves counts instead of zeroing them: a name close to
	// the threshold keeps its standing while one-shot names vanish.
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 4, MaxTracked: 4}, 30, 1000)
		// Six accesses of the hot name interleaved with cold singles; the
		// cold names overflow MaxTracked and force sweeps, each halving the
		// hot count — but repeated access still reaches the threshold.
		hot := names[0]
		for i := 1; i < 25; i++ {
			_, _ = b.ReadFile(names[i])
			_, _ = b.ReadFile(hot)
			if b.Resident(hot) {
				break
			}
		}
		if !b.Resident(hot) {
			t.Fatalf("hot name never promoted despite repeated access (stats %+v)", b.Stats())
		}
		if b.Stats().AccessDecays == 0 {
			t.Fatal("expected decay sweeps during the cold flood")
		}
	})
}

func TestPrefetchPlanWarmsFreeSpace(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 4, 1000)
		b.PrefetchPlan(names)
		env.Sleep(time.Second) // virtual time for the warmer to drain
		st := b.Stats()
		if st.PrefetchPromotions != 4 {
			t.Fatalf("warmed %d of 4 planned samples: %+v", st.PrefetchPromotions, st)
		}
		if st.Promotions != 0 || st.SlowReads != 0 {
			t.Fatalf("warming must not count as demand traffic: %+v", st)
		}
		for _, n := range names {
			if !b.Resident(n) {
				t.Fatalf("%s not resident after warming", n)
			}
		}
		// Warmed samples serve as fast hits.
		if _, err := b.ReadFile(names[0]); err != nil {
			t.Fatal(err)
		}
		if b.Stats().FastHits != 1 {
			t.Fatal("warmed sample did not hit the fast tier")
		}
		b.Close()
	})
}

func TestPrefetchNeverEvicts(t *testing.T) {
	runSim(t, func(env conc.Env) {
		// Tier fits two files; two are promoted by demand. Warming the
		// other two must skip (no free space), not evict the working set.
		b, names := tieredFixture(env, Config{FastCapacity: 2000, PromoteAfter: 1}, 4, 1000)
		_, _ = b.ReadFile(names[0])
		_, _ = b.ReadFile(names[1])
		b.PrefetchPlan(names)
		env.Sleep(time.Second)
		st := b.Stats()
		if st.PrefetchPromotions != 0 {
			t.Fatalf("warming promoted %d into a full tier", st.PrefetchPromotions)
		}
		if st.Evictions != 0 {
			t.Fatalf("warming evicted %d demand residents", st.Evictions)
		}
		if st.PrefetchSkips != 4 {
			t.Fatalf("skips = %d, want 4 (2 resident + 2 no-space)", st.PrefetchSkips)
		}
		if !b.Resident(names[0]) || !b.Resident(names[1]) {
			t.Fatal("working set lost during warming")
		}
		b.Close()
	})
}

func TestNewerPlanSupersedesOlder(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 8, 1000)
		b.PrefetchPlan(names[:4])
		b.PrefetchPlan(names[4:]) // latest plan wins
		env.Sleep(time.Second)
		for _, n := range names[4:] {
			if !b.Resident(n) {
				t.Fatalf("%s from the newest plan not warmed", n)
			}
		}
		b.Close()
	})
}

func TestCloseStopsWarmerAndReleasesResidents(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 4, 1000)
		_, _ = b.ReadFile(names[0])
		b.PrefetchPlan(names)
		b.Close()
		b.Close() // idempotent (Prisma.Close and Object.Close may both run)
		st := b.Stats()
		if st.Residents != 0 || st.FastUsed != 0 || st.FastLogical != 0 {
			t.Fatalf("residents survived Close: %+v", st)
		}
		// A plan after Close must not revive the worker.
		b.PrefetchPlan(names)
		env.Sleep(time.Second)
		if b.Stats().PrefetchPromotions != 0 {
			t.Fatal("worker ran after Close")
		}
	})
}

func TestTieringUnderConcurrentReaders(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names := tieredFixture(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 40, 1000)
		wg := env.NewWaitGroup()
		wg.Add(4)
		for w := 0; w < 4; w++ {
			w := w
			env.Go(fmt.Sprintf("reader-%d", w), func() {
				defer wg.Done()
				for i := w; i < len(names); i += 4 {
					if _, err := b.ReadFile(names[i]); err != nil {
						t.Errorf("read %s: %v", names[i], err)
					}
				}
			})
		}
		wg.Wait()
		st := b.Stats()
		if st.SlowReads != 40 || st.Promotions != 40 {
			t.Fatalf("stats = %+v, want 40 slow reads and promotions", st)
		}
	})
}

// memFixture builds a tiering backend over an in-memory slow tier with
// real payloads, so range tests can assert byte identity end to end.
func memFixture(t *testing.T, env conc.Env, cfg Config, n, size int) (*Backend, []string, [][]byte) {
	t.Helper()
	mem := storage.NewMemBackend()
	names := make([]string, n)
	contents := make([][]byte, n)
	for i := range names {
		names[i] = fmt.Sprintf("m%03d", i)
		contents[i] = mem.AddSeeded(names[i], size, int64(i)+1)
	}
	b, err := NewBackend(env, cfg, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	return b, names, contents
}

// TestReadRangeServedFromResident is the regression test for the range-read
// bypass: a range of a fast-tier resident must be served from the resident
// payload and counted as a fast hit, not silently routed to the slow tier.
func TestReadRangeServedFromResident(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names, contents := memFixture(t, env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 2, 1000)
		if _, err := b.ReadFile(names[0]); err != nil {
			t.Fatal(err)
		}
		if !b.Resident(names[0]) {
			t.Fatal("not promoted")
		}
		d, err := b.ReadRange(names[0], 100, 200)
		if err != nil || d.Size != 200 {
			t.Fatalf("ReadRange = %+v, %v", d, err)
		}
		if !bytes.Equal(d.Bytes, contents[0][100:300]) {
			t.Fatal("resident range payload mismatch")
		}
		d.Release()
		st := b.Stats()
		if st.FastHits != 1 {
			t.Fatalf("FastHits = %d, want 1 (range must hit the resident)", st.FastHits)
		}
		if st.SlowReads != 1 {
			t.Fatalf("SlowReads = %d, want 1 (only the promoting read)", st.SlowReads)
		}
		// Clamped at EOF, still a resident hit.
		d, err = b.ReadRange(names[0], 900, 500)
		if err != nil || d.Size != 100 || !bytes.Equal(d.Bytes, contents[0][900:]) {
			t.Fatalf("clamped resident range = %+v, %v", d, err)
		}
		d.Release()
		if st := b.Stats(); st.FastHits != 2 || st.SlowReads != 1 {
			t.Fatalf("stats after clamped hit = %+v", st)
		}
	})
}

// TestReadRangeMissRecordsAccess is the companion regression: a range of a
// non-resident sample goes to the slow tier AND lands in the promotion
// counters, so range-heavy workloads are no longer invisible to tier
// accounting. Ranges alone must never promote (they carry partial payload).
func TestReadRangeMissRecordsAccess(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names, contents := memFixture(t, env, Config{FastCapacity: 1 << 20, PromoteAfter: 2}, 2, 1000)
		for i := 0; i < 3; i++ {
			d, err := b.ReadRange(names[0], 10, 50)
			if err != nil || !bytes.Equal(d.Bytes, contents[0][10:60]) {
				t.Fatalf("slow range %d = %+v, %v", i, d, err)
			}
			d.Release()
		}
		st := b.Stats()
		if st.SlowReads != 3 {
			t.Fatalf("SlowReads = %d, want 3", st.SlowReads)
		}
		if st.TrackedNames != 1 {
			t.Fatalf("TrackedNames = %d, want 1 (range accesses must be recorded)", st.TrackedNames)
		}
		if b.Resident(names[0]) {
			t.Fatal("a partial range must not promote")
		}
		// A compressed resident also declines the resident slice path (it
		// would need a whole-record decode) and serves from the slow tier.
		cb, cnames, ccontents := memFixture(t, env, Config{FastCapacity: 1 << 20, PromoteAfter: 1, Compress: true}, 1, 4096)
		if _, err := cb.ReadFile(cnames[0]); err != nil {
			t.Fatal(err)
		}
		d, err := cb.ReadRange(cnames[0], 0, 64)
		if err != nil || !bytes.Equal(d.Bytes, ccontents[0][:64]) {
			t.Fatalf("compressed-resident range = %+v, %v", d, err)
		}
		d.Release()
	})
}

// TestReadRangeBatchTiering covers the vectored path: a batch against a
// resident slices every range from the resident payload (one fast hit per
// range), and a batch against a cold name is one slow access recorded once.
func TestReadRangeBatchTiering(t *testing.T) {
	runSim(t, func(env conc.Env) {
		b, names, contents := memFixture(t, env, Config{FastCapacity: 1 << 20, PromoteAfter: 1}, 2, 1000)
		if _, err := b.ReadFile(names[0]); err != nil {
			t.Fatal(err)
		}
		ranges := []storage.Range{{Off: 0, N: 100}, {Off: 500, N: 200}, {Off: 900, N: 500}}
		out, err := b.ReadRangeBatch(names[0], ranges, nil)
		if err != nil || len(out) != 3 {
			t.Fatalf("resident batch = %d results, %v", len(out), err)
		}
		wantSizes := []int64{100, 200, 100}
		for i, d := range out {
			if d.Size != wantSizes[i] || !bytes.Equal(d.Bytes, contents[0][ranges[i].Off:ranges[i].Off+wantSizes[i]]) {
				t.Fatalf("resident batch segment %d = %+v", i, d)
			}
			d.Release()
		}
		st := b.Stats()
		if st.FastHits != 3 || st.SlowReads != 1 {
			t.Fatalf("stats after resident batch = %+v", st)
		}

		// Cold name: slow path, one access recorded for the whole vector.
		out, err = b.ReadRangeBatch(names[1], ranges[:2], nil)
		if err != nil || len(out) != 2 {
			t.Fatalf("cold batch = %d results, %v", len(out), err)
		}
		for _, d := range out {
			d.Release()
		}
		st = b.Stats()
		if st.SlowReads != 2 {
			t.Fatalf("SlowReads = %d, want 2 (one per vector, not per range)", st.SlowReads)
		}
		if st.TrackedNames != 1 {
			t.Fatalf("TrackedNames = %d, want 1 (the cold batch's name)", st.TrackedNames)
		}
	})
}
