package tiering

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/mempool"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// patternedContent builds file i's payload: even-indexed files are highly
// compressible (long constant runs), odd ones pseudo-random so the codec
// falls back to verbatim residency — both fast-tier entry kinds stay under
// stress.
func patternedContent(i, size int) []byte {
	buf := make([]byte, size)
	if i%2 == 0 {
		for j := range buf {
			if j%97 == 0 {
				buf[j] = byte(i + j)
			} else {
				buf[j] = 0x5A
			}
		}
		return buf
	}
	rand.New(rand.NewSource(int64(i)*6151 + 7)).Read(buf)
	return buf
}

// TestTieringStressRace hammers the live tiered backend (real goroutines,
// pooled payloads, compression on, eviction pressure, concurrent warming
// plans) and then audits the pool: every reference handed out across
// hit/miss/promote/evict/warm paths must come back. Run under -race this
// doubles as the data-race regression suite for the snapshot-under-lock
// and single-winner-admit fixes.
func TestTieringStressRace(t *testing.T) {
	const (
		files    = 64
		fileSize = 32 << 10
		readers  = 8
		reads    = 300
	)
	env := conc.NewReal()
	mem := storage.NewMemBackend()
	want := make([][]byte, files)
	names := make([]string, files)
	for i := range names {
		names[i] = fmt.Sprintf("stress-%03d", i)
		want[i] = patternedContent(i, fileSize)
		mem.Add(names[i], want[i])
	}

	b, err := NewBackend(env, Config{
		FastCapacity: files * fileSize / 4, // eviction pressure
		PromoteAfter: 1,
		MaxTracked:   16, // decay pressure too
		Compress:     true,
	}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := mempool.New(mempool.Config{})
	b.SetBufferPool(pool)

	wg := env.NewWaitGroup()
	wg.Add(readers)
	for w := 0; w < readers; w++ {
		w := w
		env.Go(fmt.Sprintf("stress-reader-%d", w), func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < reads; i++ {
				idx := rng.Intn(files)
				d, err := b.ReadFile(names[idx])
				if err != nil {
					t.Errorf("read %s: %v", names[idx], err)
					return
				}
				if int(d.Size) != fileSize || !bytes.Equal(d.Bytes, want[idx]) {
					t.Errorf("read %s: corrupted payload (size %d)", names[idx], d.Size)
					d.Release()
					return
				}
				if i%50 == 0 {
					b.PrefetchPlan(names[idx:])
				}
				d.Release()
			}
		})
	}
	wg.Wait()

	st := b.Stats()
	if st.FastHits == 0 || st.Promotions == 0 || st.Evictions == 0 {
		t.Fatalf("stress did not exercise the tier: %+v", st)
	}
	if st.FastUsed > st.Capacity {
		t.Fatalf("tier overcommitted: %+v", st)
	}
	if st.FastUsed >= st.FastLogical && st.Residents > 1 {
		t.Fatalf("compression never engaged: used %d >= logical %d", st.FastUsed, st.FastLogical)
	}

	b.Close()
	// The warmer may still be finishing one in-flight item; give it a
	// moment before auditing the pool for leaked references.
	deadline := time.Now().Add(5 * time.Second)
	for pool.Outstanding() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("%d pooled buffers leaked across the tiering paths", n)
	}
}

// TestCompressedHitDecodesInPlace pins the live compressed hit path: the
// resident is stored compressed (physical < logical) and a hit returns
// the original bytes in a pooled buffer.
func TestCompressedHitDecodesInPlace(t *testing.T) {
	env := conc.NewReal()
	mem := storage.NewMemBackend()
	content := patternedContent(0, 16<<10)
	mem.Add("sample", content)

	b, err := NewBackend(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1, Compress: true}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := mempool.New(mempool.Config{})
	b.SetBufferPool(pool)

	first, err := b.ReadFile("sample") // miss + promote
	if err != nil {
		t.Fatal(err)
	}
	first.Release()
	st := b.Stats()
	if st.Residents != 1 || st.FastUsed >= st.FastLogical {
		t.Fatalf("resident not stored compressed: %+v", st)
	}

	hit, err := b.ReadFile("sample")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hit.Bytes, content) {
		t.Fatal("compressed hit returned wrong bytes")
	}
	if hit.Ref == nil {
		t.Fatal("pooled backend returned an unpooled decode buffer")
	}
	hit.Release()
	if b.Stats().FastHits != 1 {
		t.Fatalf("stats = %+v, want one fast hit", b.Stats())
	}

	b.Close()
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("%d pooled buffers leaked", n)
	}
}

// TestIncompressibleResidentKeepsPooledRef pins the fallback: a resident
// that does not compress retains the slow tier's pooled buffer, and a hit
// hands the caller an additional retained reference to the same payload.
func TestIncompressibleResidentKeepsPooledRef(t *testing.T) {
	env := conc.NewReal()
	mem := storage.NewMemBackend()
	content := patternedContent(1, 16<<10) // odd index: pseudo-random
	mem.Add("sample", content)

	b, err := NewBackend(env, Config{FastCapacity: 1 << 20, PromoteAfter: 1, Compress: true}, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool := mempool.New(mempool.Config{})
	b.SetBufferPool(pool)

	first, err := b.ReadFile("sample")
	if err != nil {
		t.Fatal(err)
	}
	first.Release()
	st := b.Stats()
	if st.FastUsed != st.FastLogical {
		t.Fatalf("incompressible payload stored compressed? %+v", st)
	}

	hit, err := b.ReadFile("sample")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(hit.Bytes, content) {
		t.Fatal("hit returned wrong bytes")
	}
	hit.Release()

	b.Close()
	if n := pool.Outstanding(); n != 0 {
		t.Fatalf("%d pooled buffers leaked", n)
	}
}
