// Package tiering implements the storage-tiering optimization the paper
// lists as future work (§VII: "it would be interesting to explore the
// impact of storage tiering policies under different datasets and
// models"). It is a self-contained data-plane building block in the
// paper's sense: a Backend that fronts a slow tier (parallel file system,
// NFS share) with a capacity-bounded fast tier (local NVMe), promoting
// files after a configurable number of accesses and evicting LRU files
// when the fast tier fills. An adapter exposes it as a
// core.OptimizationObject so stages can chain it with prefetching.
package tiering

import (
	"container/list"
	"fmt"

	"github.com/dsrhaslab/prisma-go/internal/conc"
	"github.com/dsrhaslab/prisma-go/internal/metrics"
	"github.com/dsrhaslab/prisma-go/internal/storage"
)

// Config parameterizes the tiering policy.
type Config struct {
	// FastCapacity is the fast tier's byte budget.
	FastCapacity int64
	// PromoteAfter is the access count at which a file is copied to the
	// fast tier (1 = promote on first access).
	PromoteAfter int
}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	if c.FastCapacity < 1 {
		return fmt.Errorf("tiering: fast capacity %d < 1", c.FastCapacity)
	}
	if c.PromoteAfter < 1 {
		return fmt.Errorf("tiering: promote-after %d < 1", c.PromoteAfter)
	}
	return nil
}

// Stats is a snapshot of tiering activity.
type Stats struct {
	FastHits   int64
	SlowReads  int64
	Promotions int64
	Evictions  int64
	FastUsed   int64
}

// Backend is the tiered storage backend. It is safe for concurrent use
// from threads of its environment.
type Backend struct {
	env  conc.Env
	cfg  Config
	slow storage.Backend
	// fastDevice models the fast tier's transfer costs; residency is
	// tracked here (the slow backend remains the source of truth for
	// content).
	fastDevice *storage.Device

	mu       conc.Mutex
	resident map[string]*list.Element // name -> LRU element
	order    *list.List               // front = most recently used
	used     int64
	accesses map[string]int

	fastHits   *metrics.Counter
	slowReads  *metrics.Counter
	promotions *metrics.Counter
	evictions  *metrics.Counter
}

type entry struct {
	name string
	size int64
}

// NewBackend builds a tiered backend: reads missing the fast tier go to
// slow; promoted copies pay fastDevice write costs; hits pay fastDevice
// read costs.
func NewBackend(env conc.Env, cfg Config, slow storage.Backend, fastDevice *storage.Device) (*Backend, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Backend{
		env:        env,
		cfg:        cfg,
		slow:       slow,
		fastDevice: fastDevice,
		mu:         env.NewMutex(),
		resident:   make(map[string]*list.Element),
		order:      list.New(),
		accesses:   make(map[string]int),
		fastHits:   metrics.NewCounter(env),
		slowReads:  metrics.NewCounter(env),
		promotions: metrics.NewCounter(env),
		evictions:  metrics.NewCounter(env),
	}, nil
}

// ReadFile implements storage.Backend.
func (b *Backend) ReadFile(name string) (storage.Data, error) {
	b.mu.Lock()
	el, hit := b.resident[name]
	if hit {
		b.order.MoveToFront(el)
	}
	b.mu.Unlock()

	if hit {
		b.fastHits.Inc()
		size := el.Value.(*entry).size
		b.fastDevice.Read(size)
		return storage.Data{Name: name, Size: size}, nil
	}

	data, err := b.slow.ReadFile(name)
	if err != nil {
		return storage.Data{}, err
	}
	b.slowReads.Inc()

	b.mu.Lock()
	b.accesses[name]++
	promote := b.accesses[name] >= b.cfg.PromoteAfter &&
		data.Size <= b.cfg.FastCapacity
	if promote {
		b.admit(name, data.Size)
	}
	b.mu.Unlock()

	if promote {
		b.promotions.Inc()
		b.fastDevice.Write(data.Size) // copy-in cost
	}
	return data, nil
}

// admit inserts name into the fast tier, evicting LRU entries as needed.
// Caller holds b.mu.
func (b *Backend) admit(name string, size int64) {
	if _, dup := b.resident[name]; dup {
		return
	}
	for b.used+size > b.cfg.FastCapacity {
		back := b.order.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*entry)
		b.order.Remove(back)
		delete(b.resident, victim.name)
		b.used -= victim.size
		b.evictions.Inc()
	}
	b.resident[name] = b.order.PushFront(&entry{name: name, size: size})
	b.used += size
	delete(b.accesses, name) // reset the promotion counter
}

// Size implements storage.Backend (metadata comes from the slow tier).
func (b *Backend) Size(name string) (int64, error) { return b.slow.Size(name) }

// Resident reports whether name currently lives on the fast tier.
func (b *Backend) Resident(name string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.resident[name]
	return ok
}

// Stats snapshots tiering counters.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	used := b.used
	b.mu.Unlock()
	return Stats{
		FastHits:   b.fastHits.Value(),
		SlowReads:  b.slowReads.Value(),
		Promotions: b.promotions.Value(),
		Evictions:  b.evictions.Value(),
		FastUsed:   used,
	}
}

// Object adapts the tiered backend to the data plane's optimization-object
// interface; it handles every read (it is a complete storage path).
type Object struct{ B *Backend }

// Name implements core.OptimizationObject.
func (o Object) Name() string { return "storage-tiering" }

// Read implements core.OptimizationObject.
func (o Object) Read(name string) (storage.Data, bool, error) {
	data, err := o.B.ReadFile(name)
	return data, true, err
}

// Close implements core.OptimizationObject.
func (o Object) Close() {}
